// Acceptance tests of the multi-tenant Hub: a tenant engine is a full
// engine, so its ranking stream must be bit-identical to a standalone
// enblogue.New engine fed the same item sequence — for every scenario and
// shard count, with other tenants active in the same hub.
package enblogue_test

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"enblogue"
)

// runEngine drains items through e and returns every delivered ranking.
func runEngine(t *testing.T, e *enblogue.Engine, items enblogue.Items) []enblogue.Ranking {
	t.Helper()
	sub := e.Subscribe(context.Background(), enblogue.SubBuffer(8192))
	if err := e.Run(context.Background(), items); err != nil {
		t.Fatal(err)
	}
	e.Flush()
	var out []enblogue.Ranking
	done := make(chan struct{})
	go func() {
		defer close(done)
		for rn := range sub.Notifications() {
			r := rn.Ranking()
			out = append(out, r)
		}
	}()
	sub.Close()
	<-done
	if sub.Dropped() != 0 {
		t.Fatalf("dropped %d frames with a huge buffer", sub.Dropped())
	}
	return out
}

// scenarioOptions tunes the engines down to test scale; shards varies per
// subtest.
func scenarioOptions(shards int) []enblogue.Option {
	return []enblogue.Option{
		enblogue.WithWindow(12, time.Hour),
		enblogue.WithSeedCount(15),
		enblogue.WithSeedMinCount(2),
		enblogue.WithSeedWarmup(30),
		enblogue.WithMinCooccurrence(2),
		enblogue.WithTopK(10),
		enblogue.WithShards(shards),
	}
}

// Acceptance: for each scenario and shard count, a hub tenant's rankings
// are bit-identical to a standalone engine fed the same items — while a
// second tenant in the same hub concurrently consumes the OTHER scenario.
func TestHubTenantBitIdenticalToStandalone(t *testing.T) {
	tweets, _ := enblogue.TweetScenario(12 * time.Hour)
	archive, _ := enblogue.ArchiveScenario(time.Date(2007, 8, 1, 0, 0, 0, 0, time.UTC), 5)
	scenarios := []struct {
		name  string
		items enblogue.Items
		other enblogue.Items
	}{
		{"tweets", tweets, archive},
		{"archive", archive, tweets},
	}
	for _, sc := range scenarios {
		for _, shards := range []int{1, 8} {
			t.Run(fmt.Sprintf("%s/shards-%d", sc.name, shards), func(t *testing.T) {
				standalone := enblogue.New(scenarioOptions(shards)...)
				want := runEngine(t, standalone, sc.items)
				standalone.Close()
				if len(want) == 0 {
					t.Fatal("standalone run produced no rankings")
				}

				hub := enblogue.NewHub(enblogue.HubDefaults(scenarioOptions(shards)...))
				defer hub.Close()
				tenant, err := hub.Open("subject")
				if err != nil {
					t.Fatal(err)
				}
				noise, err := hub.Open("noise")
				if err != nil {
					t.Fatal(err)
				}
				// The noise tenant runs the other scenario concurrently: a
				// tenant's rankings must not depend on its neighbours.
				var wg sync.WaitGroup
				wg.Add(1)
				go func() {
					defer wg.Done()
					_ = noise.Run(context.Background(), sc.other)
				}()
				got := runEngine(t, tenant, sc.items)
				wg.Wait()

				if !reflect.DeepEqual(got, want) {
					if len(got) != len(want) {
						t.Fatalf("shards=%d: %d tenant ticks vs %d standalone",
							shards, len(got), len(want))
					}
					for i := range got {
						if !reflect.DeepEqual(got[i], want[i]) {
							t.Fatalf("shards=%d: tick %d differs:\ntenant:     %+v\nstandalone: %+v",
								shards, i, got[i], want[i])
						}
					}
				}
			})
		}
	}
}

func TestPublicHubOptionLayering(t *testing.T) {
	hub := enblogue.NewHub(
		enblogue.HubDefaults(enblogue.WithTopK(7), enblogue.WithShards(2)),
		enblogue.HubMaxTenants(2),
	)
	defer hub.Close()

	a, err := hub.Open("a")
	if err != nil {
		t.Fatal(err)
	}
	if a.Shards() != 2 {
		t.Errorf("hub default shards not applied: %d", a.Shards())
	}
	// Tenant-level option overrides the hub default.
	b, err := hub.Open("b", enblogue.WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	if b.Shards() != 4 {
		t.Errorf("tenant override not applied: %d shards", b.Shards())
	}
	if _, err := hub.Open("c"); err == nil {
		t.Error("HubMaxTenants(2) admitted a third tenant")
	}
	if got := hub.List(); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Errorf("List = %v", got)
	}
	if _, ok := hub.Get("a"); !ok {
		t.Error("Get(a) = false")
	}
	if err := enblogue.ValidateTenantName("a/b"); err == nil {
		t.Error("ValidateTenantName accepted a slash")
	}
	if !hub.CloseTenant("a") || hub.CloseTenant("a") {
		t.Error("CloseTenant not reporting existence correctly")
	}
	if hub.Len() != 1 {
		t.Errorf("Len = %d", hub.Len())
	}
	if s := hub.Stats(); s.Tenants != 1 {
		t.Errorf("Stats = %+v", s)
	}
}
