package enblogue

// This file is the public engine surface. The package documentation lives
// in doc.go. Types are aliases for their internal definitions, so values
// flow between the public API and in-module code with no conversion, while
// everything under internal/ remains free to change.

import (
	"context"
	"time"

	"enblogue/internal/core"
	"enblogue/internal/entity"
	"enblogue/internal/pairs"
	"enblogue/internal/persona"
	"enblogue/internal/predict"
	"enblogue/internal/shift"
	"enblogue/internal/stream"
)

// Core wire types, re-exported.
type (
	// Item is the stream tuple of the paper: (timestamp, docId, set of
	// tags, set of entities), plus optional raw text for entity tagging.
	Item = stream.Item
	// Key is the canonical identifier of a tag pair (Tag1 <= Tag2).
	Key = pairs.Key
	// Topic is one scored emergent topic: the pair plus its shift-score
	// diagnostics (correlation, prediction, error, co-occurrence).
	Topic = shift.Topic
	// Ranking is one evaluation tick's output: the top-k emergent topics.
	Ranking = core.Ranking
	// Profile is a user's standing preferences: continuous keyword
	// queries, categories, boost, and the exclusive filter.
	Profile = persona.Profile
	// Subscription is a live per-subscriber notification feed; see
	// Engine.Subscribe.
	Subscription = core.Subscription
	// Notification is one delivered tick as a subscription sees it: the
	// matched topics plus the entered/left delta, with the full ranking
	// view materialised lazily on first access.
	Notification = core.Notification
	// SubOption configures one subscription.
	SubOption = core.SubOption
	// TailStats is the tiered exact/sketch memory statistics view; see
	// Engine.TailStats and WithTailSketch.
	TailStats = core.TailStats
	// Measure selects the pair correlation measure.
	Measure = pairs.Measure
	// Predictor selects the correlation forecaster whose error is the
	// shift signal.
	Predictor = predict.Kind
	// PredictorConfig tunes the selected predictor.
	PredictorConfig = predict.Config
	// Tagger annotates raw text with canonical entity names.
	Tagger = entity.Tagger
	// Source produces a stream of items; Run pushes each into emit.
	Source = stream.Source
	// SourceFunc adapts a function to the Source interface.
	SourceFunc = stream.SourceFunc
	// Items is an in-memory item slice that replays in order as a Source.
	Items = stream.SliceSource
)

// Correlation measures.
const (
	Jaccard    = pairs.Jaccard
	Dice       = pairs.Dice
	Cosine     = pairs.Cosine
	NPMI       = pairs.NPMI
	Overlap    = pairs.Overlap
	Confidence = pairs.Confidence
)

// Predictors.
const (
	PredictNaive         = predict.KindNaive
	PredictMovingAverage = predict.KindMovingAverage
	PredictEWMA          = predict.KindEWMA
	PredictHolt          = predict.KindHolt
	PredictOLS           = predict.KindOLS
	PredictAR1           = predict.KindAR1
	PredictSeasonal      = predict.KindSeasonal
)

// MakeKey returns the canonical key for tags a and b.
func MakeKey(a, b string) Key { return pairs.MakeKey(a, b) }

// ParseMeasure resolves a measure by name (jaccard, dice, cosine, npmi,
// overlap, confidence).
func ParseMeasure(name string) (Measure, error) { return pairs.ParseMeasure(name) }

// ParsePredictor resolves a predictor by name (naive, ma, ewma, holt, ols,
// ar1, seasonal).
func ParsePredictor(name string) (Predictor, error) { return predict.ParseKind(name) }

// KeywordQuery renders a topic tag set as the traditional keyword query
// the paper proposes as the hand-off to downstream exploration.
func KeywordQuery(tags []string) string { return core.KeywordQuery(tags) }

// Subscription options, re-exported. See the core definitions for the
// drop-oldest delivery contract.

// SubBuffer sets the subscription's channel capacity (default 16).
func SubBuffer(n int) SubOption { return core.SubBuffer(n) }

// SubTopK trims every delivered ranking to its best k topics.
func SubTopK(k int) SubOption { return core.SubTopK(k) }

// SubProfile attaches a persona: the subscriber receives its personalized
// re-ranking of every tick instead of the broadcast ranking.
func SubProfile(p *Profile) SubOption { return core.SubProfile(p) }

// WithTags restricts the subscription to topics containing at least one of
// the given tags (any-of). Predicates are compiled once at Subscribe time
// into interned tag IDs and indexed invertedly, so ticks that do not move
// a subscribed tag cost the subscription nothing; the subscriber is
// notified only when its filtered view changes. Tags the stream has not
// produced yet resolve automatically when they first appear.
func WithTags(tags ...string) SubOption { return core.SubTags(tags...) }

// WithAllTags restricts the subscription to topics containing every one of
// the given tags (all-of). A topic is a tag pair, so more than two
// all-tags can never match.
func WithAllTags(tags ...string) SubOption { return core.SubAllTags(tags...) }

// WithMinScore suppresses topics scoring below min (values <= 0 mean no
// floor) and makes the subscription delta-driven.
func WithMinScore(min float64) SubOption { return core.SubMinScore(min) }

// WithEmergenceOnly delivers only topics newly entering the subscription's
// filtered view, skipping ticks where nothing new emerged.
func WithEmergenceOnly() SubOption { return core.SubEmergenceOnly() }

// Engine is the public emergent-topic engine. It consumes (timestamp,
// docId, tags, entities) tuples and emits ranked emergent topics at every
// evaluation tick; all methods are safe for concurrent use. Construct with
// New.
type Engine struct {
	core *core.Engine
}

// New returns an engine configured by the given options. With no options
// it uses the paper's defaults: Jaccard correlation, moving-average
// prediction, 2-day half-life, hourly ticks over a 48-hour window, one
// shard per available CPU. Nonsensical options are clamped to those
// defaults rather than building a wedged engine. To host many named
// engines in one process, open them as tenants of a Hub instead.
func New(opts ...Option) *Engine {
	var cfg core.Config
	for _, o := range opts {
		if o != nil {
			o(&cfg)
		}
	}
	return &Engine{core: core.New(cfg)}
}

// Consume feeds one tuple through the engine, firing evaluation ticks as
// event time passes tick boundaries. Safe for concurrent producers.
func (e *Engine) Consume(it *Item) { e.core.Consume(it) }

// ConsumeBatch feeds a run of tuples through the engine, paying the
// engine's bookkeeping lock once per batch and each pair-tracker shard
// lock once per batch chunk. Rankings are bit-identical to calling Consume
// on each item in order. Safe for concurrent producers.
func (e *Engine) ConsumeBatch(items []*Item) { e.core.ConsumeBatch(items) }

// Enqueue appends one tuple to the engine's bounded ingest queue and
// returns without waiting for it to be consumed: producers never block on
// tick evaluation. A background drainer feeds queued items through the
// batched consume path; Flush waits for the queue to empty. When the queue
// is full, Enqueue blocks until space frees — or, configured with
// WithIngestDropOldest, evicts the oldest queued items instead (counted by
// IngestDropped).
func (e *Engine) Enqueue(it *Item) { e.core.Enqueue(it) }

// IngestDepth returns the number of items waiting in the ingest queue.
func (e *Engine) IngestDepth() int { return e.core.IngestDepth() }

// IngestDropped returns the total documents evicted from the ingest queue
// under the drop-oldest backpressure policy.
func (e *Engine) IngestDropped() int64 { return e.core.IngestDropped() }

// Run drains a source into the engine and, when the source ends cleanly,
// flushes a final evaluation tick at the last observed event time. It
// returns the source's error (context cancellation included) without
// flushing, leaving the last completed tick as the published ranking.
//
// Items are fed through the batched consume path in source order — emitted
// items accumulate into runs of up to the configured ingest batch size
// (WithIngestMaxBatch) and each run is consumed in one ConsumeBatch call,
// so rankings are bit-identical to per-item Consume while the engine pays
// its locks per batch instead of per document.
func (e *Engine) Run(ctx context.Context, src Source) error {
	batch := make([]*Item, 0, e.core.Config().IngestMaxBatch)
	flush := func() {
		e.core.ConsumeBatch(batch)
		clear(batch) // release item references
		batch = batch[:0]
	}
	err := src.Run(ctx, func(it *Item) {
		if batch = append(batch, it); len(batch) == cap(batch) {
			flush()
		}
	})
	// Items the source emitted before failing were accepted, so they are
	// consumed either way; only the final flush tick is error-gated.
	flush()
	if err != nil {
		return err
	}
	e.core.Flush()
	return nil
}

// Flush runs a final evaluation tick at the last observed event time and
// blocks until every published ranking has been delivered to subscribers
// and callbacks.
func (e *Engine) Flush() { e.core.Flush() }

// Tick forces an evaluation at time t; see the engine core for the
// monotonicity contract. Returns the resulting (or current) ranking.
func (e *Engine) Tick(t time.Time) Ranking { return e.core.Tick(t) }

// CurrentRanking returns a defensive copy of the most recent ranking.
func (e *Engine) CurrentRanking() Ranking { return e.core.CurrentRanking() }

// Subscribe registers a live notification feed fed by non-blocking,
// delta-driven fan-out: each tick's view — predicate-filtered,
// persona-reranked, and top-k-trimmed per the options — is delivered to
// the returned subscription's bounded channel, dropping the oldest
// buffered notifications for slow consumers (drops are counted).
// Predicated subscriptions (WithTags, WithAllTags, WithMinScore,
// WithEmergenceOnly) are dispatched through an inverted tag index and
// receive only ticks where their filtered view changed. Cancelling ctx
// closes the subscription.
func (e *Engine) Subscribe(ctx context.Context, opts ...SubOption) *Subscription {
	return e.core.Subscribe(ctx, opts...)
}

// Subscribers returns the number of live subscriptions.
func (e *Engine) Subscribers() int { return e.core.Subscribers() }

// IndexedTags returns the number of distinct tags referenced by at least
// one live subscription predicate.
func (e *Engine) IndexedTags() int { return e.core.IndexedTags() }

// MatchedLastTick returns how many subscriptions were handed a
// notification on the most recently dispatched tick.
func (e *Engine) MatchedLastTick() int64 { return e.core.MatchedLastTick() }

// RankingsDropped returns the total rankings discarded across all
// subscriptions because consumers fell behind.
func (e *Engine) RankingsDropped() int64 { return e.core.RankingsDropped() }

// Close stops ranking delivery: it drains in-flight deliveries and closes
// every subscription channel. Call Flush first if the final partial tick
// should still reach subscribers.
func (e *Engine) Close() { e.core.Close() }

// Seeds returns a copy of the current seed tag set, best first.
func (e *Engine) Seeds() []string { return e.core.Seeds() }

// DocsProcessed returns the number of consumed documents.
func (e *Engine) DocsProcessed() int64 { return e.core.DocsProcessed() }

// ActivePairs returns the number of tracked candidate pairs.
func (e *Engine) ActivePairs() int { return e.core.ActivePairs() }

// Shards returns the number of engine shards.
func (e *Engine) Shards() int { return e.core.Shards() }

// TailStats returns the tiered exact/sketch memory statistics: tail size
// and error bound, promotion and eviction counters. The per-shard eviction
// counters are live even without WithTailSketch (Enabled reports false).
func (e *Engine) TailStats() TailStats { return e.core.TailStats() }

// LastEventTime returns the newest event timestamp consumed so far (zero
// before the first document).
func (e *Engine) LastEventTime() time.Time { return e.core.LastEventTime() }

// ExpandTopic grows a detected pair into a tag set: the pair plus up to
// maxExtra tags that currently co-occur with both members.
func (e *Engine) ExpandTopic(k Key, maxExtra int) []string {
	return e.core.ExpandTopic(k, maxExtra)
}
