package enblogue

import (
	"enblogue/internal/core"
)

// Hub is the multi-tenant entry point: one process hosting many named,
// fully independent topic streams — one per community, feed, language, or
// customer — each a complete *Engine. Tenants share nothing except the
// process-wide tag intern table (pure memory reuse; rankings never depend
// on it), so a tenant's ranking stream is bit-identical to a standalone
// engine fed the same items.
//
// A Hub is configured by hub-level options (NewHub), which set engine
// defaults for every tenant and hub-wide limits; Open layers per-tenant
// engine options over those defaults. All methods are safe for concurrent
// use.
type Hub struct {
	core *core.Hub
}

// HubStats aggregates engine counters across a hub's open tenants.
type HubStats = core.HubStats

// NewHub returns an empty hub configured by the given hub-level options.
func NewHub(opts ...HubOption) *Hub {
	var cfg core.HubConfig
	for _, o := range opts {
		if o != nil {
			o(&cfg)
		}
	}
	return &Hub{core: core.NewHub(cfg)}
}

// ValidateTenantName reports whether name is usable as a tenant name: 1–64
// characters drawn from letters, digits, '.', '_' and '-' — exactly the
// names addressable under the server's /v1/tenants/{name} routes.
func ValidateTenantName(name string) error { return core.ValidateTenantName(name) }

// Open returns the named tenant's engine, creating it on first use
// (create-or-get). A new tenant's configuration is the hub's defaults with
// the given engine options applied on top; for an existing tenant the
// options are ignored — the first Open wins, so concurrent racers agree on
// one engine. Tenant names are validated with ValidateTenantName.
func (h *Hub) Open(name string, opts ...Option) (*Engine, error) {
	mutate := make([]func(*core.Config), len(opts))
	for i, o := range opts {
		mutate[i] = o
	}
	ce, err := h.core.Open(name, mutate...)
	if err != nil {
		return nil, err
	}
	return &Engine{core: ce}, nil
}

// Get returns the named tenant's engine without creating it.
func (h *Hub) Get(name string) (*Engine, bool) {
	ce, ok := h.core.Get(name)
	if !ok {
		return nil, false
	}
	return &Engine{core: ce}, true
}

// List returns the open tenant names, sorted.
func (h *Hub) List() []string { return h.core.List() }

// Len returns the number of open tenants.
func (h *Hub) Len() int { return h.core.Len() }

// CloseTenant removes the named tenant and closes its engine (draining
// in-flight ranking deliveries and closing every subscription channel),
// reporting whether it existed. Flush the engine first if its final partial
// tick should still reach subscribers.
func (h *Hub) CloseTenant(name string) bool { return h.core.CloseTenant(name) }

// Flush flushes every open tenant: each runs a final evaluation tick at its
// own last observed event time and blocks until its published rankings have
// been delivered.
func (h *Hub) Flush() { h.core.Flush() }

// Close closes every tenant's engine and marks the hub closed: subsequent
// Opens fail. Call Flush first if final partial ticks should still be
// delivered. Idempotent.
func (h *Hub) Close() { h.core.Close() }

// Stats returns hub-wide aggregate counters.
func (h *Hub) Stats() HubStats { return h.core.Stats() }
