package enblogue_test

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"enblogue"
	"enblogue/internal/stream"
)

// This file holds the subscription-predicate determinism acceptance test:
// a predicate-filtered subscription promises to deliver exactly the ticks
// a full subscriber would have kept after filtering client-side — same
// ticks, same topics, same scores, bit-identical — for any shard count.
// The client-side reference below is deliberately naive string-level
// code, independent of the broker's interned-ID index, diff scratch, and
// candidate collection: if the inverted index ever skips a subscriber it
// should have evaluated (or wakes one it shouldn't), the sequences
// diverge.

// subPredicate mirrors the public predicate surface for the reference
// simulation.
type subPredicate struct {
	any           []string
	all           []string
	minScore      float64
	emergenceOnly bool
}

func (p subPredicate) opts() []enblogue.SubOption {
	var opts []enblogue.SubOption
	if len(p.any) > 0 {
		opts = append(opts, enblogue.WithTags(p.any...))
	}
	if len(p.all) > 0 {
		opts = append(opts, enblogue.WithAllTags(p.all...))
	}
	if p.minScore > 0 {
		opts = append(opts, enblogue.WithMinScore(p.minScore))
	}
	if p.emergenceOnly {
		opts = append(opts, enblogue.WithEmergenceOnly())
	}
	return opts
}

func (p subPredicate) matches(t enblogue.Topic) bool {
	if t.Score < p.minScore {
		return false
	}
	for _, tag := range p.all {
		if !t.Pair.Contains(tag) {
			return false
		}
	}
	if len(p.any) > 0 {
		ok := false
		for _, tag := range p.any {
			if t.Pair.Contains(tag) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// clientFilter replays the full ranking sequence through the predicate
// the way a client-side filter with (pair, score) dedup would: keep only
// matching topics, emit a tick only when the filtered view changed, and
// under emergence-only emit only newly entered topics on ticks where
// something entered.
func clientFilter(full []enblogue.Ranking, p subPredicate) []enblogue.Ranking {
	var out []enblogue.Ranking
	type mark struct {
		pair  enblogue.Key
		score float64
	}
	var prev []mark
	for _, r := range full {
		var view []enblogue.Topic
		for _, t := range r.Topics {
			if p.matches(t) {
				view = append(view, t)
			}
		}
		same := len(view) == len(prev)
		if same {
			for i := range view {
				if prev[i].pair != view[i].Pair || prev[i].score != view[i].Score {
					same = false
					break
				}
			}
		}
		if same {
			continue
		}
		entered := map[enblogue.Key]bool{}
		for _, t := range view {
			seen := false
			for _, m := range prev {
				if m.pair == t.Pair {
					seen = true
					break
				}
			}
			if !seen {
				entered[t.Pair] = true
			}
		}
		next := make([]mark, len(view))
		for i, t := range view {
			next[i] = mark{t.Pair, t.Score}
		}
		if p.emergenceOnly && len(entered) == 0 {
			prev = next
			continue
		}
		payload := view
		if p.emergenceOnly {
			payload = nil
			for _, t := range view {
				if entered[t.Pair] {
					payload = append(payload, t)
				}
			}
		}
		out = append(out, enblogue.Ranking{At: r.At, Seeds: r.Seeds, Topics: payload})
		prev = next
	}
	return out
}

// pickPredicates derives workload-appropriate predicates from the
// reference replay itself, deterministically: the most frequent tag, the
// most frequent pair, and the median score, so every predicate is
// guaranteed to both match and not-match real ticks.
func pickPredicates(t *testing.T, full []enblogue.Ranking) map[string]subPredicate {
	t.Helper()
	tagFreq := map[string]int{}
	pairFreq := map[enblogue.Key]int{}
	var scores []float64
	for _, r := range full {
		for _, tp := range r.Topics {
			tagFreq[tp.Pair.Tag1()]++
			tagFreq[tp.Pair.Tag2()]++
			pairFreq[tp.Pair]++
			scores = append(scores, tp.Score)
		}
	}
	if len(scores) == 0 {
		t.Fatal("reference replay produced no topics; workload too small")
	}
	topTag, topN := "", -1
	for tag, n := range tagFreq {
		if n > topN || (n == topN && tag < topTag) {
			topTag, topN = tag, n
		}
	}
	var topPair enblogue.Key
	topN = -1
	for k, n := range pairFreq {
		if n > topN || (n == topN && k.Less(topPair)) {
			topPair, topN = k, n
		}
	}
	sort.Float64s(scores)
	median := scores[len(scores)/2]
	return map[string]subPredicate{
		"any-top-tag":   {any: []string{topTag}},
		"all-top-pair":  {all: []string{topPair.Tag1(), topPair.Tag2()}},
		"min-median":    {minScore: median},
		"emergence-tag": {any: []string{topTag}, emergenceOnly: true},
	}
}

// filteredReplay feeds the workload into a fresh engine carrying one
// predicated subscription per predicate (subscribed before the first
// document, like the client-side reference starting from an empty view)
// and returns each predicate's delivered sequence.
func filteredReplay(items []*stream.Item, shards int, preds map[string]subPredicate) map[string][]enblogue.Ranking {
	e := enblogue.New(enblogue.WithShards(shards))
	type feed struct {
		rec  []enblogue.Ranking
		done chan struct{}
	}
	feeds := map[string]*feed{}
	for name, p := range preds {
		f := &feed{done: make(chan struct{})}
		feeds[name] = f
		sub := e.Subscribe(nil, append(p.opts(), enblogue.SubBuffer(1<<16))...)
		go func() {
			defer close(f.done)
			for n := range sub.Notifications() {
				f.rec = append(f.rec, n.Ranking())
			}
		}()
	}
	for _, it := range items {
		e.Consume(it)
	}
	e.Flush()
	e.Close()
	out := map[string][]enblogue.Ranking{}
	for name, f := range feeds {
		<-f.done
		out[name] = f.rec
	}
	return out
}

// TestFilteredSubscriberMatchesClientSideFilter is the acceptance test
// for delta-driven predicate dispatch: across {tweets, archive} × shards
// {1, 8}, every predicate's delivered sequence equals the client-side
// filter of the full broadcast replay, tick for tick, bit-identically —
// which also proves filtered deliveries are identical across shard
// counts, since the full replay is.
func TestFilteredSubscriberMatchesClientSideFilter(t *testing.T) {
	for name, items := range equivWorkloads(t) {
		t.Run(name, func(t *testing.T) {
			full := consumeSerial(items, 1)
			if len(full) == 0 {
				t.Fatalf("serial replay of %q published no rankings", name)
			}
			preds := pickPredicates(t, full)
			want := map[string][]enblogue.Ranking{}
			for pname, p := range preds {
				want[pname] = clientFilter(full, p)
				if len(want[pname]) == 0 {
					t.Fatalf("predicate %q never fires in %q; pickPredicates is broken", pname, name)
				}
				if len(want[pname]) >= len(full) && pname != "min-median" {
					t.Logf("predicate %q fires on every tick of %q; weak but still checked", pname, name)
				}
			}
			for _, shards := range []int{1, 8} {
				t.Run(fmt.Sprintf("shards-%d", shards), func(t *testing.T) {
					got := filteredReplay(items, shards, preds)
					for pname := range preds {
						if len(got[pname]) != len(want[pname]) {
							t.Fatalf("predicate %q delivered %d ticks, client-side filter kept %d",
								pname, len(got[pname]), len(want[pname]))
						}
						for i := range want[pname] {
							if !reflect.DeepEqual(want[pname][i], got[pname][i]) {
								t.Fatalf("predicate %q tick %d diverges:\n got  %+v\n want %+v",
									pname, i, got[pname][i], want[pname][i])
							}
						}
					}
				})
			}
		})
	}
}
