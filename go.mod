module enblogue

go 1.24
