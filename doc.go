// Package enblogue is a from-scratch Go reproduction of "EnBlogue —
// Emergent Topic Detection in Web 2.0 Streams" (Alvanaki, Michel,
// Ramamritham, Weikum; SIGMOD 2011).
//
// EnBlogue monitors streams of tagged documents (news, blogs, tweets) and
// detects emergent topics: tag pairs whose correlation suddenly shifts in a
// way that their own history cannot predict. The pipeline has three stages
// — seed tag selection by sliding-window popularity, windowed co-occurrence
// tracking for pairs containing a seed, and shift detection by one-step
// prediction error with an exponentially decaying score maximum (half-life
// ≈ 2 days).
//
// The implementation lives under internal/: the core engine in
// internal/core, one package per substrate (stream DAG, windows, sketches,
// tag statistics, pair correlation, prediction, shift scoring, ranking,
// entity tagging, personalization, burst-detection baseline, data sources,
// metrics, SSE server), runnable binaries under cmd/, and runnable
// examples under examples/. The benchmarks in bench_test.go regenerate
// every evaluation artifact of the paper; see DESIGN.md.
//
// The engine core is sharded and concurrent: the pair space is partitioned
// by hash across shards, ingest fans candidate pairs out to per-shard
// locked trackers, and every evaluation tick scores all shards in parallel
// before a deterministic top-k merge. Rankings are bit-identical for every
// shard count, so sharding is purely a throughput knob; see DESIGN.md §3.
package enblogue
