// Package enblogue is a from-scratch Go reproduction of "EnBlogue —
// Emergent Topic Detection in Web 2.0 Streams" (Alvanaki, Michel,
// Ramamritham, Weikum; SIGMOD 2011), grown into a concurrent,
// subscription-oriented service library.
//
// EnBlogue monitors streams of tagged documents (news, blogs, tweets) and
// detects emergent topics: tag pairs whose correlation suddenly shifts in a
// way that their own history cannot predict. The pipeline has three stages
// — seed tag selection by sliding-window popularity, windowed co-occurrence
// tracking for pairs containing a seed, and shift detection by one-step
// prediction error with an exponentially decaying score maximum (half-life
// ≈ 2 days).
//
// This package is the public API. An Engine is constructed with functional
// options, fed a stream of Items, and observed through subscriptions —
// the paper's "users register continuous keyword queries" model: every
// subscriber may carry its own persona Profile and top-k, so one shared
// ingest pipeline serves many differently-ranked views.
//
//	engine := enblogue.New(
//		enblogue.WithShards(8),
//		enblogue.WithMeasure(enblogue.Jaccard),
//		enblogue.WithTopK(10),
//	)
//	sub := engine.Subscribe(ctx,
//		enblogue.SubProfile(&enblogue.Profile{Keywords: []string{"volcano"}}))
//	go func() {
//		for n := range sub.Notifications() {
//			r := n.Ranking()
//			fmt.Println(r.At, r.IDs())
//		}
//	}()
//	items, _ := enblogue.TweetScenario(48 * time.Hour)
//	err := engine.Run(ctx, items) // Consume each item, then Flush
//	engine.Close()
//
// Delivery is push-based and non-blocking: each subscription owns a
// bounded channel with drop-oldest semantics and a drop counter, so a slow
// consumer always converges on the newest state and can never stall the
// engine or its sibling subscribers. Subscriptions may carry predicates —
// WithTags, WithAllTags, WithMinScore, WithEmergenceOnly — compiled once
// at Subscribe time and dispatched through an inverted tag index: a
// predicated subscription is notified only on ticks where its filtered
// view changed, and ticks that move none of its tags cost it nothing.
//
// One process can host many independent topic streams through a Hub of
// named tenants — one per community, feed, language, or customer. Each
// tenant is a full Engine layering its own options over hub-wide defaults
// (create-or-get Open, CloseTenant, hub-wide Flush/Close, aggregate
// Stats); tenants share only the process-wide tag intern table, a memory
// optimisation that never affects rankings, so a tenant's output is
// bit-identical to a standalone engine fed the same items. The HTTP
// front-end mirrors the hub as the tenant-scoped /v1/tenants wire
// contract; see DESIGN.md §7.
//
// The implementation lives under internal/: the core engine and
// subscription broker in internal/core, one package per substrate (stream
// DAG, windows, sketches, tag statistics, pair correlation, prediction,
// shift scoring, ranking, entity tagging, personalization, burst-detection
// baseline, data sources, metrics, versioned HTTP front-end), runnable
// binaries under cmd/, and runnable examples under examples/ — all the
// examples use only this public package. The benchmarks in bench_test.go
// regenerate every evaluation artifact of the paper; see DESIGN.md.
//
// The engine core is sharded and concurrent: the pair space is partitioned
// by hash across shards, ingest fans candidate pairs out to per-shard
// locked trackers, and every evaluation tick scores all shards in parallel
// before a deterministic top-k merge. Rankings are bit-identical for every
// shard count, so sharding is purely a throughput knob; see DESIGN.md §3.
// The subscription broker and the versioned /v1 wire contract are
// documented in DESIGN.md §5.
package enblogue
