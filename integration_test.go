// End-to-end integration tests: the full production path from dataset
// generation through JSONL persistence, replay, the push DAG with entity
// tagging and sketching, the engine, history, personalization alerts, and
// the SSE front-end — everything a deployment touches, in one flow.
package enblogue_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"enblogue/internal/core"
	"enblogue/internal/entity"
	"enblogue/internal/history"
	"enblogue/internal/pairs"
	"enblogue/internal/persona"
	"enblogue/internal/server"
	"enblogue/internal/sketch"
	"enblogue/internal/source"
	"enblogue/internal/stream"
)

func TestFullPipelineEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end in short mode")
	}

	// 1. Generate a live-style dataset with scripted ground truth and
	//    persist it as JSONL, as a wrapper archiving a feed would.
	span := 24 * time.Hour
	cfg := source.TweetConfig{
		Seed:  3,
		Start: time.Date(2011, 6, 12, 0, 0, 0, 0, time.UTC),
		Span:  span, TweetsPerMinute: 10,
		Happenings: []source.Happening{{
			Name:   "eruption",
			Tags:   [2]string{"volcano", "air-traffic"},
			Offset: span / 2, Duration: span / 6, DocsPerMinute: 3,
			Text: "Eyjafjallajokull ash cloud grounding flights over Iceland",
		}},
	}
	docs := source.GenerateTweets(cfg)
	var buf bytes.Buffer
	if err := source.WriteJSONL(&buf, docs); err != nil {
		t.Fatal(err)
	}

	// 2. Read it back (strict) and replay through the push DAG: dedup →
	//    sketching synopsis → engine, with entity tagging enabled.
	loaded, skipped, err := source.ReadJSONL(&buf, true)
	if err != nil || skipped != 0 {
		t.Fatalf("ReadJSONL: %v (skipped %d)", err, skipped)
	}
	if len(loaded) != len(docs) {
		t.Fatalf("loaded %d of %d docs", len(loaded), len(docs))
	}

	srv := server.New()
	hist := history.New(0)
	srv.AttachHistory(hist)
	srv.Registry().Set(&persona.Profile{
		Name: "traveller", Keywords: []string{"volcano", "air-traffic"},
	})

	g, o := entity.Sample()
	engine := core.New(core.Config{
		WindowBuckets:    12,
		WindowResolution: time.Hour,
		SeedCount:        20,
		SeedMinCount:     4,
		MinCooccurrence:  3,
		TopK:             10,
		UpOnly:           true,
		UseEntities:      true,
		Tagger:           entity.NewTagger(g, o),
	})
	// The server follows the engine's broker, as production wiring does.
	defer srv.Close()
	srv.Follow(engine)

	sketchOp := sketch.NewOperator(0.01, 0.01, 10, 1<<16)
	runner := stream.NewRunner(&source.Replayer{Docs: loaded})
	runner.Add(&stream.Plan{
		Name: "main",
		Stages: []stream.Stage{
			stream.Shared("dedup", func() stream.Operator { return stream.NewDedup(1 << 16) }),
			stream.Shared("sketch", func() stream.Operator { return sketchOp }),
		},
		Sink: engine,
	})
	if err := runner.Run(context.Background()); err != nil {
		t.Fatal(err)
	}

	// 3. The engine found the scripted event.
	target := pairs.MakeKey("volcano", "air-traffic")
	final := engine.CurrentRanking()
	if r := rankOf(final, target); r < 0 {
		t.Fatalf("event pair missing from final ranking: %+v", final.Topics)
	}

	// 4. The sketch operator agrees with reality about volume.
	if sketchOp.Items() != int64(len(loaded)) {
		t.Errorf("sketch saw %d items, want %d", sketchOp.Items(), len(loaded))
	}
	if c := sketchOp.TagCount("volcano"); c < 100 {
		t.Errorf("sketch TagCount(volcano) = %d, want >= event volume", c)
	}

	// The Follow feed publishes asynchronously from the broker dispatcher;
	// wait until the server has broadcast the stream's final tick before
	// asserting on history and served state.
	waitDeadline := time.Now().Add(5 * time.Second)
	for {
		var v server.RankingView
		if b := srv.Hub().Last(); b != nil {
			if err := json.Unmarshal(b, &v); err == nil && v.At.Equal(final.At) {
				break
			}
		}
		if time.Now().After(waitDeadline) {
			t.Fatal("server never published the final tick")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// 5. History answers range queries: the event pair tops the range
	//    covering the surge but is absent before it.
	// The tag pair ties with its entity-mixture siblings (the tagger pulls
	// "eyjafjallajökull" out of the tweet text), so the target need only be
	// in the tied head of the range ranking.
	eventStart := cfg.Start.Add(span / 2)
	top := hist.TopInRange(eventStart, eventStart.Add(span/4), 5, history.MaxScore)
	inHead := false
	for i, e := range top {
		if i < 3 && e.Pair == target {
			inHead = true
		}
	}
	if !inHead {
		t.Errorf("history top during event = %+v", top)
	}
	for _, e := range hist.TopInRange(cfg.Start, eventStart.Add(-time.Hour), 20, history.MaxScore) {
		if e.Pair == target {
			t.Error("event pair ranked before the event")
		}
	}

	// 6. The SSE front-end serves the final state, the traveller's
	//    personalized view, and the range-query endpoint.
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/ranking")
	if err != nil {
		t.Fatal(err)
	}
	var view server.RankingView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(view.Topics) == 0 {
		t.Fatal("served ranking empty")
	}
	found := false
	for _, tv := range view.Profiles["traveller"] {
		if tv.Tag1 == "air-traffic" && tv.Tag2 == "volcano" {
			found = true
		}
	}
	if !found {
		t.Errorf("traveller view missing event: %+v", view.Profiles["traveller"])
	}

	resp, err = http.Get(ts.URL + "/history?k=3")
	if err != nil {
		t.Fatal(err)
	}
	var entries []server.HistoryEntryView
	json.NewDecoder(resp.Body).Decode(&entries)
	resp.Body.Close()
	if len(entries) == 0 {
		t.Error("history endpoint returned nothing")
	}

	// 7. Topic expansion hands off a keyword query for exploration.
	set := engine.ExpandTopic(target, 2)
	q := core.KeywordQuery(set)
	if !strings.Contains(q, "volcano") || !strings.Contains(q, "air-traffic") {
		t.Errorf("keyword query = %q", q)
	}
}

// rankOf returns the 0-based rank of the pair in the ranking, or -1.
func rankOf(r core.Ranking, k pairs.Key) int {
	for i, t := range r.Topics {
		if t.Pair == k {
			return i
		}
	}
	return -1
}
