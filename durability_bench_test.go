package enblogue_test

import (
	"testing"
	"time"

	"enblogue"
)

// Durability cost benchmarks (recorded by scripts/bench.sh alongside the
// throughput matrix):
//
//	BenchmarkWALAppend       — steady-state ingest docs/s with the WAL off
//	                           vs. on; the delta is the per-document price
//	                           of durability (bounded at ≤1 alloc/doc by
//	                           TestWALAppendSteadyStateAllocs)
//	BenchmarkSnapshotRestore — full snapshot write and full recovery of a
//	                           ticked, multi-thousand-document engine

// BenchmarkWALAppend measures the ingest path with and without the WAL.
// Each pass over the workload is re-timestamped one span later so ticks
// keep firing at the stream's real cadence, same as ThroughputSharded.
func BenchmarkWALAppend(b *testing.B) {
	items := throughputDocs(b)
	span := items[len(items)-1].Time.Sub(items[0].Time) + time.Hour
	for _, wal := range []bool{false, true} {
		name := "wal-off"
		opts := []enblogue.Option{enblogue.WithShards(4)}
		if wal {
			name = "wal-on"
			opts = append(opts, enblogue.WithDurability(b.TempDir(),
				enblogue.SnapshotEvery(-1)))
		}
		b.Run(name, func(b *testing.B) {
			e := enblogue.New(opts...)
			defer e.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				it := *items[i%len(items)]
				it.Time = it.Time.Add(time.Duration(i/len(items)) * span)
				e.Consume(&it)
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "docs/s")
		})
	}
}

// BenchmarkSnapshotRestore measures the two halves of the durability
// round trip over a 15k-document, multi-tick engine state: writing one
// full snapshot (state export under the ingest gate + canonical encode +
// temp-file/rename), and recovering a fresh engine from it.
func BenchmarkSnapshotRestore(b *testing.B) {
	items := throughputDocs(b)
	dir := b.TempDir()
	e := enblogue.New(enblogue.WithShards(4),
		enblogue.WithDurability(dir, enblogue.SnapshotEvery(-1)))
	e.ConsumeBatch(items)

	b.Run("snapshot", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := e.Snapshot(); err != nil {
				b.Fatal(err)
			}
		}
	})

	// Leave exactly one final snapshot so the restore half measures
	// snapshot decode + state restore, not WAL replay.
	if err := e.Snapshot(); err != nil {
		b.Fatal(err)
	}
	e.Close()
	b.Run("restore", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r := enblogue.New(enblogue.WithShards(4),
				enblogue.WithDurability(dir, enblogue.SnapshotEvery(-1)))
			if got, want := r.DocsProcessed(), int64(len(items)); got != want {
				b.Fatalf("restored %d docs, want %d", got, want)
			}
			r.Close()
		}
		b.ReportMetric(float64(b.N)*float64(len(items))/b.Elapsed().Seconds(), "docs/s")
	})
}
