#!/usr/bin/env bash
# bench.sh — run the throughput benchmarks and record the results as
# BENCH_<date>.json at the repo root, building the benchmark trajectory the
# ROADMAP calls for. CI runs this and uploads the JSON as an artifact;
# numbers quoted in README.md come from these files.
#
# Usage:
#   scripts/bench.sh [bench-regexp]          # default: throughput + dispatch
#   BENCHTIME=2s scripts/bench.sh            # longer measurement window
set -euo pipefail
cd "$(dirname "$0")/.."

# The default matrix records ingest throughput (BenchmarkThroughput*),
# subscription-dispatch cost (BenchmarkBroadcastSubscribers: population
# × matched-fraction; the 1%-matched column must stay ≥10× cheaper than
# 100%-matched), the durability costs (BenchmarkWALAppend: ingest with
# the WAL off vs. on; BenchmarkSnapshotRestore: snapshot write and full
# recovery), and the tiered-memory accuracy/footprint trade
# (BenchmarkTieredAccuracy: recall@100 and bytes/pair per MaxPairs ×
# sketch-epsilon cell; the tailed cells must beat exact-only recall at
# the same budget).
bench="${1:-BenchmarkThroughput|BenchmarkBroadcastSubscribers|BenchmarkWALAppend|BenchmarkSnapshotRestore|BenchmarkTieredAccuracy}"
out="BENCH_$(date -u +%F).json"
# Never clobber an existing (possibly committed, possibly hand-annotated)
# record: same-day reruns get a time-suffixed file instead.
if [ -e "$out" ]; then
  out="BENCH_$(date -u +%F_%H%M%S).json"
fi

raw="$(go test -run '^$' -bench "$bench" -benchmem -benchtime "${BENCHTIME:-1s}" .)"
printf '%s\n' "$raw" >&2

# go test suffixes every benchmark name with "-GOMAXPROCS" when it is not
# 1 (e.g. shards-1 becomes shards-1-4 on a 4-CPU runner). Strip that
# machine detail at record time so names — and therefore the docs/s diff
# below — stay comparable across machines; the value itself is kept as a
# top-level field. GOMAXPROCS defaults to the processor count go sees.
procs="${GOMAXPROCS:-$(nproc 2>/dev/null || echo 1)}"

{
  printf '{\n'
  printf '  "date": "%s",\n' "$(date -u +%FT%TZ)"
  printf '  "go": "%s",\n' "$(go env GOVERSION)"
  printf '  "gomaxprocs": %s,\n' "$procs"
  printf '  "cpu": %s,\n' "$(printf '%s\n' "$raw" | awk -F': ' '/^cpu:/ {printf "\"%s\"", $2; found=1} END {if (!found) printf "\"unknown\""}')"
  printf '  "benchmarks": [\n'
  printf '%s\n' "$raw" | awk -v procs="$procs" '
    /^Benchmark/ {
      name = $1
      if (procs != 1) sub("-" procs "$", "", name)
      printf "%s    {\"name\": \"%s\", \"iterations\": %s", sep, name, $2
      # Remaining fields come in value-unit pairs (ns/op, docs/s, B/op, ...).
      for (i = 3; i + 1 <= NF; i += 2) {
        unit = $(i + 1)
        gsub(/[^A-Za-z0-9]+/, "_", unit)
        printf ", \"%s\": %s", unit, $i
      }
      printf "}"
      sep = ",\n"
    }
    END { print "" }
  '
  printf '  ]\n}\n'
} > "$out"

echo "wrote $out" >&2

# Diff docs/s against the newest committed benchmark record, so every job
# log shows the throughput trajectory at a glance. The generator writes one
# benchmark per line and the optional hand-annotated "baseline" section
# comes after the main array, so a line-oriented scrape that stops at
# "baseline" is exact.
bench_docs() {
  sed -n '/"baseline"/q; s/.*"name": "\([^"]*\)".*"docs_s": \([0-9.eE+-]*\)[,}].*/\1 \2/p' "$1"
}
prev="$(git ls-files 'BENCH_*.json' | sort | tail -n 1 || true)"
if [ -n "$prev" ] && [ "$prev" != "$out" ]; then
  echo "docs/s delta vs committed $prev:" >&2
  {
    bench_docs "$prev" | sed 's/^/old /'
    bench_docs "$out" | sed 's/^/new /'
  } | awk '
    $1 == "old" { old[$2] = $3; next }
    { new[$2] = $3; order[n++] = $2 }
    END {
      for (i = 0; i < n; i++) {
        name = order[i]
        if (!(name in old)) { printf "  %-45s %12.0f docs/s (new benchmark)\n", name, new[name]; continue }
        if (old[name] == 0) continue
        delta = (new[name] - old[name]) / old[name] * 100
        printf "  %-45s %12.0f -> %.0f docs/s (%+.1f%%)\n", name, old[name], new[name], delta
      }
    }
  ' >&2
else
  echo "no committed BENCH_*.json to diff against" >&2
fi
