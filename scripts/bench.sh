#!/usr/bin/env bash
# bench.sh — run the throughput benchmarks and record the results as
# BENCH_<date>.json at the repo root, building the benchmark trajectory the
# ROADMAP calls for. CI runs this and uploads the JSON as an artifact;
# numbers quoted in README.md come from these files.
#
# Usage:
#   scripts/bench.sh [bench-regexp]          # default: BenchmarkThroughput
#   BENCHTIME=2s scripts/bench.sh            # longer measurement window
set -euo pipefail
cd "$(dirname "$0")/.."

bench="${1:-BenchmarkThroughput}"
out="BENCH_$(date -u +%F).json"
# Never clobber an existing (possibly committed, possibly hand-annotated)
# record: same-day reruns get a time-suffixed file instead.
if [ -e "$out" ]; then
  out="BENCH_$(date -u +%F_%H%M%S).json"
fi

raw="$(go test -run '^$' -bench "$bench" -benchmem -benchtime "${BENCHTIME:-1s}" .)"
printf '%s\n' "$raw" >&2

{
  printf '{\n'
  printf '  "date": "%s",\n' "$(date -u +%FT%TZ)"
  printf '  "go": "%s",\n' "$(go env GOVERSION)"
  printf '  "cpu": %s,\n' "$(printf '%s\n' "$raw" | awk -F': ' '/^cpu:/ {printf "\"%s\"", $2; found=1} END {if (!found) printf "\"unknown\""}')"
  printf '  "benchmarks": [\n'
  printf '%s\n' "$raw" | awk '
    /^Benchmark/ {
      printf "%s    {\"name\": \"%s\", \"iterations\": %s", sep, $1, $2
      # Remaining fields come in value-unit pairs (ns/op, docs/s, B/op, ...).
      for (i = 3; i + 1 <= NF; i += 2) {
        unit = $(i + 1)
        gsub(/[^A-Za-z0-9]+/, "_", unit)
        printf ", \"%s\": %s", unit, $i
      }
      printf "}"
      sep = ",\n"
    }
    END { print "" }
  '
  printf '  ]\n}\n'
} > "$out"

echo "wrote $out" >&2
