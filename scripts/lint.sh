#!/usr/bin/env bash
# lint.sh — the local mirror of CI's static-analysis gauntlet: gofmt,
# go vet, the project's own enbloguevet analyzer suite (determinism, lock
# discipline, hot-path allocations, wire-shape stability — see DESIGN.md
# §9), and, when the tools are installed, staticcheck and govulncheck.
# CI installs those two from the network; locally they are best-effort so
# the script works offline.
#
# Usage:
#   scripts/lint.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt"
out=$(gofmt -l .)
if [ -n "$out" ]; then
  echo "gofmt needed on:" && echo "$out" && exit 1
fi

echo "== go vet"
go vet ./...

echo "== enbloguevet (vettool)"
go build -o /tmp/enbloguevet ./cmd/enbloguevet
go vet -vettool=/tmp/enbloguevet ./...

if command -v staticcheck >/dev/null 2>&1; then
  echo "== staticcheck"
  staticcheck ./...
else
  echo "== staticcheck: not installed, skipping (CI runs it)"
fi

if command -v govulncheck >/dev/null 2>&1; then
  echo "== govulncheck"
  govulncheck ./...
else
  echo "== govulncheck: not installed, skipping (CI runs it)"
fi

echo "lint: ALL CLEAN"
