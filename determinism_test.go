// Acceptance tests for the tiered memory model's determinism contract:
// with the sketch tail disabled (the default), rankings are bit-identical
// across shard counts on both bundled scenarios even under eviction
// pressure — the tier's eviction-path changes (victim collection, the
// admission floor) must be invisible — and an enabled but unpressured tail
// is inert.
package enblogue_test

import (
	"context"
	"reflect"
	"testing"
	"time"

	"enblogue"
)

// runRankings feeds items through a fresh engine and returns every
// broadcast ranking plus the engine for post-run inspection.
func runRankings(t *testing.T, items enblogue.Items, opts ...enblogue.Option) ([]enblogue.Ranking, *enblogue.Engine) {
	t.Helper()
	engine := enblogue.New(opts...)
	sub := engine.Subscribe(context.Background(), enblogue.SubBuffer(1<<14))
	if err := engine.Run(context.Background(), items); err != nil {
		t.Fatal(err)
	}
	engine.Close()
	var got []enblogue.Ranking
	for rn := range sub.Notifications() {
		got = append(got, rn.Ranking())
	}
	if sub.Dropped() != 0 {
		t.Fatalf("dropped %d rankings with a huge buffer", sub.Dropped())
	}
	if len(got) == 0 {
		t.Fatal("no rankings delivered")
	}
	return got, engine
}

func mustEqualRankings(t *testing.T, label string, got, want []enblogue.Ranking) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d ticks vs reference %d", label, len(got), len(want))
	}
	for i := range got {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("%s: tick %d differs from reference:\n%+v\nvs\n%+v", label, i, got[i], want[i])
		}
	}
}

func TestTailDisabledRankingsBitIdentical(t *testing.T) {
	tweets, _ := enblogue.TweetScenario(12 * time.Hour)
	archive, _ := enblogue.ArchiveScenario(time.Date(2007, 8, 1, 0, 0, 0, 0, time.UTC), 5)
	scenarios := []struct {
		name     string
		items    enblogue.Items
		maxPairs int
		// The tweet workload holds ~1650 windowed pairs, so a 300-pair cap
		// keeps the eviction path hot; the archive runs uncapped and covers
		// the no-pressure shape. (The archive under a tight cap exhibits a
		// one-ULP cross-shard score difference that predates the tier — see
		// the pre-existing eviction float-summation ordering — so it is not
		// used to pin the eviction path here.)
		wantEvictions bool
	}{
		{"tweets", tweets, 300, true},
		{"archive", archive, 0, false},
	}

	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			var reference []enblogue.Ranking
			for _, shards := range []int{1, 8} {
				opts := []enblogue.Option{
					enblogue.WithWindow(12, time.Hour),
					enblogue.WithSeedCount(10),
					enblogue.WithSeedWarmup(20),
					enblogue.WithMaxPairs(sc.maxPairs),
					enblogue.WithTopK(10),
					enblogue.WithShards(shards),
				}
				got, engine := runRankings(t, sc.items, opts...)
				ts := engine.TailStats()
				if ts.Enabled || ts.TailPairs != 0 || ts.Promotions != 0 || ts.ApproxSeededPairs != 0 {
					t.Fatalf("shards=%d: tier state without WithTailSketch: %+v", shards, ts)
				}
				var evicted, demoted int64
				for i := range ts.EvictedByShard {
					evicted += ts.EvictedByShard[i]
					demoted += ts.DemotedByShard[i]
				}
				if sc.wantEvictions && evicted == 0 {
					t.Fatalf("shards=%d: no evictions — the cap is not exercising the tier seam", shards)
				}
				if demoted != 0 {
					t.Fatalf("shards=%d: %d demotions with the tail disabled", shards, demoted)
				}
				if reference == nil {
					reference = got
					continue
				}
				mustEqualRankings(t, sc.name, got, reference)
			}
		})
	}
}

// An enabled tail under no eviction pressure must change nothing: no pair
// is ever demoted, so promotion never fires and rankings stay bit-identical
// to the default engine's.
func TestTailSketchInertWithoutEvictionPressure(t *testing.T) {
	tweets, _ := enblogue.TweetScenario(12 * time.Hour)
	base := []enblogue.Option{
		enblogue.WithWindow(12, time.Hour),
		enblogue.WithSeedCount(10),
		enblogue.WithSeedWarmup(20),
		enblogue.WithTopK(10),
		enblogue.WithShards(4),
	}
	want, _ := runRankings(t, tweets, base...)
	got, engine := runRankings(t, tweets,
		append(base, enblogue.WithTailSketch(0.01, 0.01, 256))...)

	ts := engine.TailStats()
	if !ts.Enabled {
		t.Fatal("WithTailSketch did not enable the tier")
	}
	if ts.TailPairs != 0 || ts.Promotions != 0 || ts.ApproxSeededPairs != 0 {
		t.Fatalf("unpressured tail absorbed state: %+v", ts)
	}
	mustEqualRankings(t, "tail-enabled-unpressured", got, want)
}
