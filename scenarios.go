package enblogue

import (
	"io"
	"time"

	"enblogue/internal/entity"
	"enblogue/internal/source"
)

// Built-in data scenarios and stream helpers, so programs against the
// public API (the examples, quickstarts, benchmarks of downstream users)
// need no access to internal data-generation packages.

// ScenarioEvent is one scripted ground-truth happening inside a built-in
// scenario: the tag pair whose correlation shifts, and when.
type ScenarioEvent struct {
	Name  string
	Start time.Time
	End   time.Time
	Pair  Key
}

func scenarioEvents(events []source.Event) []ScenarioEvent {
	out := make([]ScenarioEvent, len(events))
	for i := range events {
		e := &events[i]
		out[i] = ScenarioEvent{
			Name:  e.Name,
			Start: e.Start,
			End:   e.Start.Add(e.Duration),
			Pair:  e.Pair(),
		}
	}
	return out
}

func docsToItems(docs []source.Document) Items {
	items := make(Items, len(docs))
	for i := range docs {
		items[i] = docs[i].Item()
	}
	return items
}

// TweetScenario returns the paper's live-demo workload: a simulated
// Twitter stream over the given span with the scripted SIGMOD/Athens
// surge and a volcano/air-traffic happening, plus the ground-truth events
// for latency measurement. Deterministic for a given span.
func TweetScenario(span time.Duration) (Items, []ScenarioEvent) {
	cfg := source.TweetConfig{
		Seed: 7, Span: span, TweetsPerMinute: 20,
		Happenings: source.SIGMODAthensScenario(span),
	}
	return docsToItems(source.GenerateTweets(cfg)), scenarioEvents(cfg.Events())
}

// ArchiveScenario returns the "revisiting historic events" workload: a
// synthetic news archive of the given length starting at start, with three
// injected events (a hurricane, an election recount, a World Cup upset).
// Deterministic for given arguments.
func ArchiveScenario(start time.Time, days int) (Items, []ScenarioEvent) {
	events := source.HistoricEvents(start)
	docs := source.GenerateArchive(source.ArchiveConfig{
		Seed: 42, Start: start, Days: days, DocsPerDay: 240, Events: events,
	})
	return docsToItems(docs), scenarioEvents(events)
}

// Replay wraps items in a time-lapse source: inter-item gaps are replayed
// at the given speedup (event time / wall time), capped at two seconds of
// wall sleep per gap so archive nights don't stall a demo. A speedup of
// zero replays as fast as possible.
func Replay(items Items, speedup float64) Source {
	docs := make([]source.Document, len(items))
	for i, it := range items {
		docs[i] = source.FromItem(it)
	}
	return &source.Replayer{Docs: docs, Speedup: speedup}
}

// ReadItemsJSONL reads a JSONL dataset (one document per line, as written
// by cmd/datagen) into items sorted by timestamp. Malformed lines are
// skipped and counted rather than failing the load.
func ReadItemsJSONL(r io.Reader) (Items, int, error) {
	docs, skipped, err := source.ReadJSONL(r, false)
	if err != nil {
		return nil, skipped, err
	}
	source.SortDocs(docs)
	return docsToItems(docs), skipped, nil
}

// SampleTagger returns an entity tagger loaded with the repository's small
// built-in gazetteer — enough for the demos and tests; production callers
// load their own gazetteer via internal wiring or provide pre-tagged
// items.
func SampleTagger() *Tagger {
	return entity.NewTagger(entity.Sample())
}
