// Command datagen generates the synthetic datasets that substitute the
// paper's proprietary sources (NYT archive, Twitter, RSS feeds) and writes
// them as JSONL for replay by cmd/enblogue.
//
// Usage:
//
//	datagen -kind archive -days 30 -rate 200 -events -out archive.jsonl
//	datagen -kind tweets -hours 48 -out tweets.jsonl
//	datagen -kind feed   -hours 48 -out feed.jsonl
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"enblogue/internal/source"
)

func main() {
	kind := flag.String("kind", "archive", "dataset kind: archive, tweets, or feed")
	out := flag.String("out", "-", "output file ('-' for stdout)")
	seed := flag.Int64("seed", 1, "generator seed")
	days := flag.Int("days", 30, "archive: period in days")
	rate := flag.Int("rate", 200, "archive: documents per day")
	hours := flag.Int("hours", 48, "tweets/feed: span in hours")
	tpm := flag.Float64("tpm", 20, "tweets: tweets per minute")
	events := flag.Bool("events", true, "inject the scripted ground-truth events")
	flag.Parse()

	var docs []source.Document
	switch *kind {
	case "archive":
		start := time.Date(2007, 8, 1, 0, 0, 0, 0, time.UTC)
		cfg := source.ArchiveConfig{
			Seed: *seed, Start: start, Days: *days, DocsPerDay: *rate,
		}
		if *events {
			cfg.Events = source.HistoricEvents(start)
		}
		docs = source.GenerateArchive(cfg)
	case "tweets":
		span := time.Duration(*hours) * time.Hour
		cfg := source.TweetConfig{
			Seed: *seed, Span: span, TweetsPerMinute: *tpm,
		}
		if *events {
			cfg.Happenings = source.SIGMODAthensScenario(span)
		}
		docs = source.GenerateTweets(cfg)
	case "feed":
		span := time.Duration(*hours) * time.Hour
		cfg := source.FeedConfig{Seed: *seed, Span: span}
		if *events {
			cfg.Happenings = source.SIGMODAthensScenario(span)
		}
		docs = source.GenerateFeed(cfg)
	default:
		fmt.Fprintf(os.Stderr, "datagen: unknown kind %q\n", *kind)
		os.Exit(2)
	}

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := source.WriteJSONL(w, docs); err != nil {
		fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "datagen: wrote %d documents\n", len(docs))
}
