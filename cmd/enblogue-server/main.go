// Command enblogue-server runs the live demo: a simulated Web 2.0 stream is
// replayed in time lapse through the engine while rankings are pushed to
// browsers over Server-Sent Events — the paper's APE-based front-end on
// stdlib HTTP.
//
// Usage:
//
//	enblogue-server -addr :8080 -speedup 600
//
// then open http://localhost:8080/ (the page updates without polling).
// Register a personalization profile with:
//
//	curl -X POST localhost:8080/profile -d '{"name":"me","keywords":["volcano"]}'
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"enblogue/internal/core"
	"enblogue/internal/history"
	"enblogue/internal/server"
	"enblogue/internal/source"
	"enblogue/internal/stream"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	speedup := flag.Float64("speedup", 600, "time-lapse factor (event time / wall time)")
	shards := flag.Int("shards", 0, "engine shards (0: one per CPU; rankings are shard-count independent)")
	flag.Parse()

	span := 48 * time.Hour
	docs := source.Merge(
		source.GenerateTweets(source.TweetConfig{
			Seed: 7, Span: span, TweetsPerMinute: 20,
			Happenings: source.SIGMODAthensScenario(span),
		}),
		source.GenerateFeed(source.FeedConfig{
			Seed: 8, Span: span, Happenings: source.SIGMODAthensScenario(span),
		}),
	)

	srv := server.New()
	srv.AttachHistory(history.New(10000))
	engine := core.New(core.Config{
		WindowBuckets:    24,
		WindowResolution: time.Hour,
		TickEvery:        time.Hour,
		SeedCount:        30,
		MinCooccurrence:  3,
		TopK:             10,
		UpOnly:           true,
		Shards:           *shards,
		OnRanking:        srv.PublishRanking,
	})
	srv.AttachEngine(engine)

	go func() {
		replayer := &source.Replayer{Docs: docs, Speedup: *speedup, MaxSleep: 2 * time.Second}
		if err := replayer.Run(context.Background(), func(it *stream.Item) {
			engine.Consume(it)
		}); err != nil {
			fmt.Fprintf(os.Stderr, "enblogue-server: replay: %v\n", err)
			return
		}
		engine.Flush()
		fmt.Println("enblogue-server: replay finished; final ranking stays live")
	}()

	// Wall-clock watchdog ticker: the engine is safe for concurrent use, so
	// this goroutine calls Tick directly against the ingest goroutine — no
	// external lock around the engine. When event-driven ticks go quiet
	// (stream stall or replay end) it fires one catch-up evaluation at the
	// stream clock, so clients see the final stretch of events scored; it
	// does not fabricate event time beyond what the stream delivered.
	go func() {
		tickWall := time.Duration(float64(time.Hour) / *speedup)
		if tickWall < time.Second {
			tickWall = time.Second
		}
		lastAt := time.Time{}
		lastWall := time.Now()
		for range time.Tick(tickWall) {
			cur := engine.CurrentRanking().At
			if !cur.Equal(lastAt) {
				lastAt, lastWall = cur, time.Now()
				continue // event-driven ticks are keeping up
			}
			if time.Since(lastWall) < 3*tickWall {
				continue
			}
			if at := engine.LastEventTime(); !at.IsZero() && at.After(lastAt) {
				engine.Tick(at)
			}
		}
	}()

	fmt.Printf("enblogue-server: %d docs looping at %.0fx over %d shards; listening on %s\n",
		len(docs), *speedup, engine.Shards(), *addr)
	if err := http.ListenAndServe(*addr, srv.Handler()); err != nil {
		fmt.Fprintf(os.Stderr, "enblogue-server: %v\n", err)
		os.Exit(1)
	}
}
