// Command enblogue-server runs the live demo: a simulated Web 2.0 stream
// is replayed in time lapse through the public engine while rankings are
// pushed to browsers over Server-Sent Events — the paper's APE-based
// front-end on stdlib HTTP, behind the versioned /v1 wire contract.
//
// The process is a multi-tenant hub: the replay feeds the "default"
// tenant, and any number of additional named topic streams run beside it —
// bootstrapped with -tenants or created over the wire — each with its own
// rankings, SSE stream, profiles, history, and a JSONL ingest endpoint.
//
// Usage:
//
//	enblogue-server -addr :8080 -speedup 600 -tenants eu,us
//
// then open http://localhost:8080/ (the page updates without polling).
// Tenant-scoped usage:
//
//	curl -X POST localhost:8080/v1/tenants -d '{"name":"mine"}'
//	curl -X POST localhost:8080/v1/tenants/mine/items --data-binary @docs.jsonl
//	curl -N localhost:8080/v1/tenants/mine/stream
//
// Register a personalization profile and stream its private view with:
//
//	curl -X POST localhost:8080/v1/profiles -d '{"name":"me","keywords":["volcano"]}'
//	curl -N localhost:8080/v1/stream?profile=me
//
// SIGINT/SIGTERM shut down gracefully: in-flight requests drain, the
// replay stops, every tenant engine closes, and every subscription channel
// ends.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"enblogue"
	"enblogue/internal/history"
	"enblogue/internal/server"
	"enblogue/internal/source"
)

// hubOpener adapts the public hub to the server's tenant engine factory,
// so POST /v1/tenants and DELETE /v1/tenants/{name} work over the wire.
type hubOpener struct{ hub *enblogue.Hub }

func (o hubOpener) Open(name string) (server.Engine, error) { return o.hub.Open(name) }
func (o hubOpener) CloseTenant(name string) bool            { return o.hub.CloseTenant(name) }

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	speedup := flag.Float64("speedup", 600, "time-lapse factor (event time / wall time)")
	shards := flag.Int("shards", 0, "engine shards (0: one per CPU; rankings are shard-count independent)")
	historyTicks := flag.Int("history", 10000, "ranking history length in ticks (default tenant; others get the same)")
	tenants := flag.String("tenants", "", "comma-separated tenant names to bootstrap beside the default replay tenant")
	dataDir := flag.String("data-dir", "", "durability root: per-tenant snapshots + WAL live under it; empty disables persistence")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// The demo stream merges the tweet and feed wrappers over the same
	// scripted scenario; data generation is the only internal dependency
	// left here — the hub, engines, and their wiring are all public API.
	span := 48 * time.Hour
	docs := source.Merge(
		source.GenerateTweets(source.TweetConfig{
			Seed: 7, Span: span, TweetsPerMinute: 20,
			Happenings: source.SIGMODAthensScenario(span),
		}),
		source.GenerateFeed(source.FeedConfig{
			Seed: 8, Span: span, Happenings: source.SIGMODAthensScenario(span),
		}),
	)
	items := make(enblogue.Items, len(docs))
	for i := range docs {
		items[i] = docs[i].Item()
	}

	// One hub hosts every tenant. The flags become hub-wide defaults, so
	// tenants created over the wire inherit them too.
	defaults := []enblogue.Option{
		enblogue.WithWindow(24, time.Hour),
		enblogue.WithTickEvery(time.Hour),
		enblogue.WithSeedCount(30),
		enblogue.WithMinCooccurrence(3),
		enblogue.WithTopK(10),
		enblogue.WithUpOnly(),
		enblogue.WithShards(*shards),
	}
	if *dataDir != "" {
		defaults = append(defaults, enblogue.WithDurability(*dataDir))
	}
	hub := enblogue.NewHub(enblogue.HubDefaults(defaults...))

	engine, err := hub.Open(server.DefaultTenant)
	if err != nil {
		fmt.Fprintf(os.Stderr, "enblogue-server: %v\n", err)
		os.Exit(1)
	}

	srv := server.New()
	srv.SetTenantHistoryTicks(*historyTicks)
	srv.AttachHistory(history.New(*historyTicks))
	srv.AttachOpener(hubOpener{hub})
	srv.Follow(engine) // broker subscription feeds SSE, history, personas

	// Bootstrap the extra tenants: empty engines, live immediately, fed
	// over POST /v1/tenants/{name}/items.
	var extra []string
	for _, name := range strings.Split(*tenants, ",") {
		name = strings.TrimSpace(name)
		if name == "" || name == server.DefaultTenant {
			continue
		}
		e, err := hub.Open(name)
		if err != nil {
			fmt.Fprintf(os.Stderr, "enblogue-server: tenant %q: %v\n", name, err)
			os.Exit(1)
		}
		if err := srv.FollowTenant(name, e); err != nil {
			fmt.Fprintf(os.Stderr, "enblogue-server: tenant %q: %v\n", name, err)
			os.Exit(1)
		}
		extra = append(extra, name)
	}

	// With durability on, tenants created over the wire in a previous run
	// left per-tenant subdirectories behind; reopen them so their recovered
	// rankings are live immediately instead of waiting for the next POST.
	if *dataDir != "" {
		entries, err := os.ReadDir(*dataDir)
		if err != nil && !errors.Is(err, os.ErrNotExist) {
			fmt.Fprintf(os.Stderr, "enblogue-server: data dir: %v\n", err)
			os.Exit(1)
		}
		for _, ent := range entries {
			name := ent.Name()
			if !ent.IsDir() || name == server.DefaultTenant {
				continue
			}
			e, err := hub.Open(name) // validates the name; rejects strays
			if err != nil {
				fmt.Fprintf(os.Stderr, "enblogue-server: skipping data dir entry %q: %v\n", name, err)
				continue
			}
			if err := srv.FollowTenant(name, e); err != nil {
				// Already followed via -tenants: fine, it is the same engine.
				continue
			}
			extra = append(extra, name)
		}
	}

	go func() {
		if err := engine.Run(ctx, enblogue.Replay(items, *speedup)); err != nil {
			if !errors.Is(err, context.Canceled) {
				fmt.Fprintf(os.Stderr, "enblogue-server: replay: %v\n", err)
			}
			return
		}
		fmt.Println("enblogue-server: replay finished; final ranking stays live")
	}()

	// Wall-clock watchdog ticker: the engine is safe for concurrent use, so
	// this goroutine calls Tick directly against the ingest goroutine — no
	// external lock around the engine. When event-driven ticks go quiet
	// (stream stall or replay end) it fires one catch-up evaluation at the
	// stream clock, so clients see the final stretch of events scored; it
	// does not fabricate event time beyond what the stream delivered.
	go func() {
		tickWall := time.Duration(float64(time.Hour) / *speedup)
		if tickWall < time.Second {
			tickWall = time.Second
		}
		ticker := time.NewTicker(tickWall)
		defer ticker.Stop()
		lastAt := time.Time{}
		lastWall := time.Now()
		for {
			select {
			case <-ctx.Done():
				return
			case <-ticker.C:
			}
			cur := engine.CurrentRanking().At
			if !cur.Equal(lastAt) {
				lastAt, lastWall = cur, time.Now()
				continue // event-driven ticks are keeping up
			}
			if time.Since(lastWall) < 3*tickWall {
				continue
			}
			if at := engine.LastEventTime(); !at.IsZero() && at.After(lastAt) {
				engine.Tick(at)
			}
		}
	}()

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	shutdownDone := make(chan struct{})
	go func() {
		defer close(shutdownDone)
		<-ctx.Done()
		fmt.Println("\nenblogue-server: shutting down")
		// Close the server context and the hub first: per-profile SSE
		// handlers end when their subscription channels close, broadcast
		// SSE handlers end on the tenant contexts — so Shutdown can drain
		// the remaining requests instead of timing out on parked streams.
		srv.Close()
		hub.Close() // closes every tenant engine, default included
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(shutdownCtx) // drain in-flight requests
	}()

	fmt.Printf("enblogue-server: %d docs looping at %.0fx over %d shards; tenants %v; listening on %s\n",
		len(items), *speedup, engine.Shards(), append([]string{server.DefaultTenant}, extra...), *addr)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "enblogue-server: %v\n", err)
		os.Exit(1)
	}
	// ListenAndServe returns the instant Shutdown closes the listener;
	// wait for the drain to actually finish before exiting.
	<-shutdownDone
}
