// Command enblogue-server runs the live demo: a simulated Web 2.0 stream
// is replayed in time lapse through the public engine while rankings are
// pushed to browsers over Server-Sent Events — the paper's APE-based
// front-end on stdlib HTTP, behind the versioned /v1 wire contract.
//
// Usage:
//
//	enblogue-server -addr :8080 -speedup 600
//
// then open http://localhost:8080/ (the page updates without polling).
// Register a personalization profile and stream its private view with:
//
//	curl -X POST localhost:8080/v1/profiles -d '{"name":"me","keywords":["volcano"]}'
//	curl -N localhost:8080/v1/stream?profile=me
//
// SIGINT/SIGTERM shut down gracefully: in-flight requests drain, the
// replay stops, and every subscription channel closes.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"enblogue"
	"enblogue/internal/history"
	"enblogue/internal/server"
	"enblogue/internal/source"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	speedup := flag.Float64("speedup", 600, "time-lapse factor (event time / wall time)")
	shards := flag.Int("shards", 0, "engine shards (0: one per CPU; rankings are shard-count independent)")
	historyTicks := flag.Int("history", 10000, "ranking history length in ticks")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// The demo stream merges the tweet and feed wrappers over the same
	// scripted scenario; data generation is the only internal dependency
	// left here — the engine and its wiring are all public API.
	span := 48 * time.Hour
	docs := source.Merge(
		source.GenerateTweets(source.TweetConfig{
			Seed: 7, Span: span, TweetsPerMinute: 20,
			Happenings: source.SIGMODAthensScenario(span),
		}),
		source.GenerateFeed(source.FeedConfig{
			Seed: 8, Span: span, Happenings: source.SIGMODAthensScenario(span),
		}),
	)
	items := make(enblogue.Items, len(docs))
	for i := range docs {
		items[i] = docs[i].Item()
	}

	engine := enblogue.New(
		enblogue.WithWindow(24, time.Hour),
		enblogue.WithTickEvery(time.Hour),
		enblogue.WithSeedCount(30),
		enblogue.WithMinCooccurrence(3),
		enblogue.WithTopK(10),
		enblogue.WithUpOnly(),
		enblogue.WithShards(*shards),
	)

	srv := server.New()
	srv.AttachHistory(history.New(*historyTicks))
	srv.Follow(engine) // broker subscription feeds SSE, history, personas

	go func() {
		if err := engine.Run(ctx, enblogue.Replay(items, *speedup)); err != nil {
			if !errors.Is(err, context.Canceled) {
				fmt.Fprintf(os.Stderr, "enblogue-server: replay: %v\n", err)
			}
			return
		}
		fmt.Println("enblogue-server: replay finished; final ranking stays live")
	}()

	// Wall-clock watchdog ticker: the engine is safe for concurrent use, so
	// this goroutine calls Tick directly against the ingest goroutine — no
	// external lock around the engine. When event-driven ticks go quiet
	// (stream stall or replay end) it fires one catch-up evaluation at the
	// stream clock, so clients see the final stretch of events scored; it
	// does not fabricate event time beyond what the stream delivered.
	go func() {
		tickWall := time.Duration(float64(time.Hour) / *speedup)
		if tickWall < time.Second {
			tickWall = time.Second
		}
		ticker := time.NewTicker(tickWall)
		defer ticker.Stop()
		lastAt := time.Time{}
		lastWall := time.Now()
		for {
			select {
			case <-ctx.Done():
				return
			case <-ticker.C:
			}
			cur := engine.CurrentRanking().At
			if !cur.Equal(lastAt) {
				lastAt, lastWall = cur, time.Now()
				continue // event-driven ticks are keeping up
			}
			if time.Since(lastWall) < 3*tickWall {
				continue
			}
			if at := engine.LastEventTime(); !at.IsZero() && at.After(lastAt) {
				engine.Tick(at)
			}
		}
	}()

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	shutdownDone := make(chan struct{})
	go func() {
		defer close(shutdownDone)
		<-ctx.Done()
		fmt.Println("\nenblogue-server: shutting down")
		// Close the broker and the server context first: per-profile SSE
		// handlers end when their subscription channels close, broadcast
		// SSE handlers end on the server context — so Shutdown can drain
		// the remaining requests instead of timing out on parked streams.
		srv.Close()
		engine.Close()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(shutdownCtx) // drain in-flight requests
	}()

	fmt.Printf("enblogue-server: %d docs looping at %.0fx over %d shards; listening on %s\n",
		len(items), *speedup, engine.Shards(), *addr)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "enblogue-server: %v\n", err)
		os.Exit(1)
	}
	// ListenAndServe returns the instant Shutdown closes the listener;
	// wait for the drain to actually finish before exiting.
	<-shutdownDone
}
