// Command experiments regenerates the paper's evaluation artifacts: Figure 1
// and the three demonstration show cases, plus the baseline comparison,
// throughput, ablation, and entity-tagging studies.
//
// Usage:
//
//	experiments              # run everything
//	experiments -run F1,SC2  # run selected experiments
//	experiments -list        # list experiment IDs
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"enblogue/internal/experiments"
)

func main() {
	run := flag.String("run", "all", "comma-separated experiment IDs, or 'all'")
	list := flag.Bool("list", false, "list available experiments and exit")
	flag.Parse()

	if *list {
		for _, e := range experiments.All {
			fmt.Printf("%-4s %s\n", e.ID, e.Name)
		}
		return
	}

	var selected []experiments.Experiment
	if *run == "all" || *run == "" {
		selected = experiments.All
	} else {
		for _, id := range strings.Split(*run, ",") {
			id = strings.TrimSpace(id)
			e, ok := experiments.ByID(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "experiments: unknown id %q (use -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	for _, e := range selected {
		if err := e.Run(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
	}
}
