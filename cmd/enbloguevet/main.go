// Command enbloguevet machine-checks the engine's invariants: the
// determinism perimeter (detdiscipline), the lock annotation contract
// (lockdiscipline), the zero-allocation ingest path (hotpathalloc), and
// the frozen /v1 wire surface (wirestable). See DESIGN.md §9.
//
// It speaks the `go vet -vettool` protocol, so the usual drive is
//
//	go build -o bin/enbloguevet ./cmd/enbloguevet
//	go vet -vettool=bin/enbloguevet ./...
//
// and also runs standalone, loading the module from source with no go
// command in the loop:
//
//	enbloguevet            # check every package in the enclosing module
//	enbloguevet -write-wiremanifest   # regenerate the /v1 wire manifest
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"enblogue/internal/analysis"
	"enblogue/internal/analysis/driver"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "enbloguevet: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	// The three `go vet` tool-protocol entry points come before anything
	// else: version stamp, flag inventory, then one compilation unit per
	// *.cfg invocation.
	if len(args) == 1 {
		switch {
		case args[0] == "-V=full":
			return driver.PrintVersion()
		case args[0] == "-flags":
			return driver.PrintFlagsJSON([]struct {
				Name  string
				Bool  bool
				Usage string
			}{})
		case strings.HasSuffix(args[0], ".cfg"):
			return runUnit(args[0])
		case args[0] == "-write-wiremanifest":
			return writeWireManifest()
		case args[0] == "-h" || args[0] == "-help" || args[0] == "--help":
			usage()
			return nil
		}
	}
	if len(args) == 0 {
		return runStandalone()
	}
	// Tolerate `enbloguevet ./...` spellings: standalone mode always
	// checks the whole module, which is what every caller here wants.
	for _, a := range args {
		if strings.HasPrefix(a, "-") {
			usage()
			return fmt.Errorf("unknown flag %s", a)
		}
	}
	return runStandalone()
}

func usage() {
	fmt.Fprint(os.Stderr, `usage:
  enbloguevet                     check every package in the enclosing module
  enbloguevet -write-wiremanifest regenerate internal/analysis/wiremanifest.json
  go vet -vettool=enbloguevet ./...   drive as a vet tool (recommended in CI)
`)
}

func runUnit(cfgPath string) error {
	suite, err := analysis.Suite()
	if err != nil {
		return err
	}
	fset, diags, err := driver.RunUnit(cfgPath, suite)
	if err != nil {
		return err
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s\n", fset.Position(d.Pos), d.Message)
	}
	if len(diags) > 0 {
		os.Exit(2)
	}
	return nil
}

func runStandalone() error {
	suite, err := analysis.Suite()
	if err != nil {
		return err
	}
	modPath, modDir, err := driver.ModuleRoot(".")
	if err != nil {
		return err
	}
	fset, diags, err := driver.CheckModule(suite, modPath, modDir)
	if err != nil {
		return err
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s\n", fset.Position(d.Pos), d.Message)
	}
	if len(diags) > 0 {
		os.Exit(2)
	}
	return nil
}

// writeWireManifest re-derives the /v1 wire manifest from source and
// rewrites the committed JSON. The resulting diff is the review artifact
// for any wire-surface change.
func writeWireManifest() error {
	modPath, modDir, err := driver.ModuleRoot(".")
	if err != nil {
		return err
	}
	m, err := analysis.GenerateWireManifest(modPath, modDir)
	if err != nil {
		return err
	}
	data, err := m.Encode()
	if err != nil {
		return err
	}
	out := filepath.Join(modDir, filepath.FromSlash(analysis.WireManifestPath))
	if err := os.WriteFile(out, data, 0o666); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "enbloguevet: wrote %s (%d wire structs)\n", out, len(m))
	return nil
}
