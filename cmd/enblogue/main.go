// Command enblogue replays a JSONL dataset (or a built-in scenario)
// through the emergent-topic engine and prints each evaluation tick's
// top-k — the command-line twin of the paper's time-lapse demo, written
// entirely against the public enblogue package.
//
// Usage:
//
//	enblogue -in archive.jsonl -topk 10
//	enblogue -scenario tweets -measure cosine -predictor holt
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"enblogue"
)

func main() {
	in := flag.String("in", "", "JSONL dataset to replay (empty: use -scenario)")
	scenario := flag.String("scenario", "tweets", "built-in scenario when -in is empty: tweets or archive")
	measure := flag.String("measure", "jaccard", "correlation measure (jaccard, dice, cosine, npmi, overlap, confidence)")
	predictor := flag.String("predictor", "ma", "predictor (naive, ma, ewma, holt, ols, ar1)")
	topk := flag.Int("topk", 10, "ranking length")
	seeds := flag.Int("seeds", 40, "seed tag count")
	windowH := flag.Int("window", 24, "sliding window in hours")
	tickH := flag.Int("tick", 1, "evaluation tick in hours")
	halfLifeH := flag.Int("halflife", 48, "score half-life in hours")
	upOnly := flag.Bool("up-only", true, "score only correlation increases")
	shards := flag.Int("shards", 0, "engine shards (0: one per CPU; rankings are shard-count independent)")
	quiet := flag.Bool("quiet", false, "print only the final ranking")
	flag.Parse()

	m, err := enblogue.ParseMeasure(*measure)
	if err != nil {
		fatal(err)
	}
	p, err := enblogue.ParsePredictor(*predictor)
	if err != nil {
		fatal(err)
	}

	var items enblogue.Items
	switch {
	case *in != "":
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		var skipped int
		items, skipped, err = enblogue.ReadItemsJSONL(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		if skipped > 0 {
			fmt.Fprintf(os.Stderr, "enblogue: skipped %d malformed lines\n", skipped)
		}
	case *scenario == "tweets":
		items, _ = enblogue.TweetScenario(48 * time.Hour)
	case *scenario == "archive":
		items, _ = enblogue.ArchiveScenario(time.Date(2007, 8, 1, 0, 0, 0, 0, time.UTC), 25)
	default:
		fatal(fmt.Errorf("unknown scenario %q", *scenario))
	}

	opts := []enblogue.Option{
		enblogue.WithWindow(*windowH, time.Hour),
		enblogue.WithTickEvery(time.Duration(*tickH) * time.Hour),
		enblogue.WithSeedCount(*seeds),
		enblogue.WithMeasure(m),
		enblogue.WithPredictor(p),
		enblogue.WithHalfLife(time.Duration(*halfLifeH) * time.Hour),
		enblogue.WithTopK(*topk),
		enblogue.WithShards(*shards),
	}
	if *upOnly {
		opts = append(opts, enblogue.WithUpOnly())
	}
	engine := enblogue.New(opts...)

	// Per-tick progress arrives over a subscription rather than a
	// callback; the consumer goroutine drains in tick order.
	done := make(chan struct{})
	if !*quiet {
		sub := engine.Subscribe(context.Background(), enblogue.SubBuffer(1<<15))
		go func() {
			defer close(done)
			for rn := range sub.Notifications() {
				r := rn.Ranking()
				printRanking(r)
			}
			if n := sub.Dropped(); n > 0 {
				fmt.Printf("(%d ticks outran the printer and were not shown)\n", n)
			}
		}()
	} else {
		close(done)
	}

	if err := engine.Run(context.Background(), items); err != nil {
		fatal(err)
	}
	engine.Close()
	<-done

	r := engine.CurrentRanking()
	fmt.Printf("\nfinal ranking (%s, %d docs, %d active pairs):\n",
		r.At.Format(time.RFC3339), engine.DocsProcessed(), engine.ActivePairs())
	for i, t := range r.Topics {
		fmt.Printf("  %2d. %-40s score=%.4f corr=%.3f cooc=%.0f\n",
			i+1, t.Pair, t.Score, t.Correlation, t.Cooccurrence)
	}
}

// printRanking logs non-empty ticks compactly.
func printRanking(r enblogue.Ranking) {
	if len(r.Topics) == 0 {
		return
	}
	top := r.Topics[0]
	fmt.Printf("%s  top: %-36s score=%.4f  (%d topics)\n",
		r.At.Format("Jan 02 15:04"), top.Pair, top.Score, len(r.Topics))
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "enblogue: %v\n", err)
	os.Exit(1)
}
