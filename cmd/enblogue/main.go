// Command enblogue replays a JSONL dataset (or a built-in scenario) through
// the emergent-topic engine and prints each evaluation tick's top-k — the
// command-line twin of the paper's time-lapse demo.
//
// Usage:
//
//	enblogue -in archive.jsonl -topk 10
//	enblogue -scenario tweets -measure cosine -predictor holt
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"enblogue/internal/core"
	"enblogue/internal/pairs"
	"enblogue/internal/predict"
	"enblogue/internal/source"
)

func main() {
	in := flag.String("in", "", "JSONL dataset to replay (empty: use -scenario)")
	scenario := flag.String("scenario", "tweets", "built-in scenario when -in is empty: tweets or archive")
	measure := flag.String("measure", "jaccard", "correlation measure (jaccard, dice, cosine, npmi, overlap, confidence)")
	predictor := flag.String("predictor", "ma", "predictor (naive, ma, ewma, holt, ols, ar1)")
	topk := flag.Int("topk", 10, "ranking length")
	seeds := flag.Int("seeds", 40, "seed tag count")
	windowH := flag.Int("window", 24, "sliding window in hours")
	tickH := flag.Int("tick", 1, "evaluation tick in hours")
	halfLifeH := flag.Int("halflife", 48, "score half-life in hours")
	upOnly := flag.Bool("up-only", true, "score only correlation increases")
	shards := flag.Int("shards", 0, "engine shards (0: one per CPU; rankings are shard-count independent)")
	quiet := flag.Bool("quiet", false, "print only the final ranking")
	flag.Parse()

	m, err := pairs.ParseMeasure(*measure)
	if err != nil {
		fatal(err)
	}
	p, err := predict.ParseKind(*predictor)
	if err != nil {
		fatal(err)
	}

	var docs []source.Document
	switch {
	case *in != "":
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		var skipped int
		docs, skipped, err = source.ReadJSONL(f, false)
		f.Close()
		if err != nil {
			fatal(err)
		}
		if skipped > 0 {
			fmt.Fprintf(os.Stderr, "enblogue: skipped %d malformed lines\n", skipped)
		}
		source.SortDocs(docs)
	case *scenario == "tweets":
		span := 48 * time.Hour
		docs = source.GenerateTweets(source.TweetConfig{
			Seed: 7, Span: span, TweetsPerMinute: 20,
			Happenings: source.SIGMODAthensScenario(span),
		})
	case *scenario == "archive":
		start := time.Date(2007, 8, 1, 0, 0, 0, 0, time.UTC)
		docs = source.GenerateArchive(source.ArchiveConfig{
			Seed: 42, Start: start, Days: 25, DocsPerDay: 240,
			Events: source.HistoricEvents(start),
		})
	default:
		fatal(fmt.Errorf("unknown scenario %q", *scenario))
	}

	cfg := core.Config{
		WindowBuckets:    *windowH,
		WindowResolution: time.Hour,
		TickEvery:        time.Duration(*tickH) * time.Hour,
		SeedCount:        *seeds,
		Measure:          m,
		Predictor:        p,
		HalfLife:         time.Duration(*halfLifeH) * time.Hour,
		TopK:             *topk,
		UpOnly:           *upOnly,
		Shards:           *shards,
	}
	if !*quiet {
		cfg.OnRanking = printRanking
	}
	engine := core.New(cfg)
	for i := range docs {
		engine.Consume(docs[i].Item())
	}
	engine.Flush()

	r := engine.CurrentRanking()
	fmt.Printf("\nfinal ranking (%s, %d docs, %d active pairs):\n",
		r.At.Format(time.RFC3339), engine.DocsProcessed(), engine.ActivePairs())
	for i, t := range r.Topics {
		fmt.Printf("  %2d. %-40s score=%.4f corr=%.3f cooc=%.0f\n",
			i+1, t.Pair, t.Score, t.Correlation, t.Cooccurrence)
	}
}

// printRanking logs non-empty ticks compactly.
func printRanking(r core.Ranking) {
	if len(r.Topics) == 0 {
		return
	}
	top := r.Topics[0]
	fmt.Printf("%s  top: %-36s score=%.4f  (%d topics)\n",
		r.At.Format("Jan 02 15:04"), top.Pair, top.Score, len(r.Topics))
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "enblogue: %v\n", err)
	os.Exit(1)
}
