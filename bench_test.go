// Benchmarks regenerating the paper's evaluation artifacts, one target per
// table/figure (see DESIGN.md §4 for the index):
//
//	BenchmarkFigure1            — F1, the correlation-shift illustration
//	BenchmarkShowcase1          — SC1, archive replay with historic events
//	BenchmarkShowcase2          — SC2, live SIGMOD/Athens time lapse
//	BenchmarkShowcase3          — SC3, personalization
//	BenchmarkBaselineComparison — B1, enBlogue vs burst detection
//	BenchmarkThroughput*        — P1, engine docs/sec and plan sharing
//	BenchmarkAblation*          — A1, measure/predictor/half-life sweeps
//	BenchmarkEntityTagging      — E1, tagger accuracy workload
//
// Run: go test -bench=. -benchmem
package enblogue_test

import (
	"fmt"
	"io"
	"runtime"
	"testing"
	"time"

	"enblogue/internal/core"
	"enblogue/internal/experiments"
	"enblogue/internal/pairs"
	"enblogue/internal/predict"
	"enblogue/internal/shift"
	"enblogue/internal/source"
	"enblogue/internal/stream"
)

func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunF1(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkShowcase1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunSC1(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkShowcase2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunSC2(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkShowcase3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunSC3(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBaselineComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunB1(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// benchDocs caches the throughput workload across benchmark targets.
var benchDocs []source.Document

func throughputDocs(b *testing.B) []*stream.Item {
	b.Helper()
	if benchDocs == nil {
		benchDocs = experiments.GenerateArchiveCached(source.ArchiveConfig{
			Seed: 99, Start: time.Date(2007, 1, 1, 0, 0, 0, 0, time.UTC),
			Days: 10, DocsPerDay: 1500,
		})
	}
	items := make([]*stream.Item, len(benchDocs))
	for i := range benchDocs {
		items[i] = benchDocs[i].Item()
	}
	return items
}

// BenchmarkThroughputEngine measures raw engine consumption (P1's core
// rows) at the reference seed count.
func BenchmarkThroughputEngine(b *testing.B) {
	items := throughputDocs(b)
	for _, seeds := range []int{10, 50, 200} {
		b.Run(benchName("seeds", seeds), func(b *testing.B) {
			e := core.New(core.Config{SeedCount: seeds})
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.Consume(items[i%len(items)])
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "docs/s")
		})
	}
}

// BenchmarkThroughputSharded measures engine docs/sec as the shard count
// sweeps 1 → 8 at the default MaxPairs budget (P1's parallel-speedup rows;
// see DESIGN.md §4). Unlike the cyclic benchmarks above, each pass over the
// workload is re-timestamped one window-span later, so evaluation ticks
// keep firing at the stream's real cadence no matter how large b.N grows —
// the number being measured is steady-state docs/sec including tick cost,
// which is what sharding parallelises.
func BenchmarkThroughputSharded(b *testing.B) {
	items := throughputDocs(b)
	span := items[len(items)-1].Time.Sub(items[0].Time) + time.Hour
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(benchName("shards", shards), func(b *testing.B) {
			e := core.New(core.Config{SeedCount: 200, Shards: shards})
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				it := *items[i%len(items)]
				it.Time = it.Time.Add(time.Duration(i/len(items)) * span)
				e.Consume(&it)
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "docs/s")
		})
	}
}

// BenchmarkThroughputBatched measures the batched ingest path across the
// GOMAXPROCS × shards × batch-size matrix (P1's batching rows). Documents
// are handed to the engine through Engine.ConsumeBatch in slices of the
// given size — one lock acquisition and one tick check per batch instead of
// per document, with candidate pairs grouped per tracker shard — while the
// workload and re-timestamping match BenchmarkThroughputSharded exactly, so
// batch-1 here isolates the batch-path overhead and larger batches show the
// amortisation. Rankings are bit-identical to the per-document path (see
// TestConsumeBatchMatchesSerial), so the docs/s column is the only thing
// that moves.
func BenchmarkThroughputBatched(b *testing.B) {
	items := throughputDocs(b)
	span := items[len(items)-1].Time.Sub(items[0].Time) + time.Hour
	for _, procs := range []int{1, 2} {
		for _, shards := range []int{1, 4} {
			for _, batch := range []int{1, 64, 4096} {
				name := fmt.Sprintf("procs-%d/shards-%d/batch-%d", procs, shards, batch)
				b.Run(name, func(b *testing.B) {
					prev := runtime.GOMAXPROCS(procs)
					defer runtime.GOMAXPROCS(prev)
					e := core.New(core.Config{SeedCount: 200, Shards: shards})
					buf := make([]stream.Item, batch)
					ptrs := make([]*stream.Item, batch)
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; {
						n := batch
						if rem := b.N - i; rem < n {
							n = rem
						}
						for j := 0; j < n; j++ {
							idx := i + j
							buf[j] = *items[idx%len(items)]
							buf[j].Time = buf[j].Time.Add(time.Duration(idx/len(items)) * span)
							ptrs[j] = &buf[j]
						}
						e.ConsumeBatch(ptrs[:n])
						i += n
					}
					b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "docs/s")
				})
			}
		}
	}
}

// BenchmarkThroughputSharedPlans measures the multi-plan runner with shared
// vs private operator prefixes (P1's sharing comparison).
func BenchmarkThroughputSharedPlans(b *testing.B) {
	if _, err := experiments.RunP1(io.Discard); err != nil {
		b.Fatal(err)
	}
	// RunP1 prints docs/sec itself in table form; the benchmark target
	// exists so `go test -bench` regenerates P1 alongside the others.
	b.Run("full", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := experiments.RunP1(io.Discard); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationMeasures times one engine pass per correlation measure
// over the archive workload (A1's measure dimension).
func BenchmarkAblationMeasures(b *testing.B) {
	items := throughputDocs(b)
	for _, m := range pairs.AllMeasures() {
		b.Run(m.String(), func(b *testing.B) {
			e := core.New(core.Config{Measure: m})
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.Consume(items[i%len(items)])
			}
		})
	}
}

// BenchmarkAblationPredictors times one engine pass per predictor (A1's
// predictor dimension).
func BenchmarkAblationPredictors(b *testing.B) {
	items := throughputDocs(b)
	for _, k := range predict.AllKinds() {
		b.Run(k.String(), func(b *testing.B) {
			e := core.New(core.Config{Predictor: k})
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.Consume(items[i%len(items)])
			}
		})
	}
}

// BenchmarkAblationFull runs the complete A1 quality sweep (detection and
// precision per configuration).
func BenchmarkAblationFull(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunA1(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEntityTagging(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunE1(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func benchName(prefix string, n int) string {
	return fmt.Sprintf("%s-%d", prefix, n)
}

// BenchmarkBroadcastSubscribers measures per-tick dispatch cost across the
// subscription index as the subscriber population and matched fraction
// sweep: matched subscribers stand on a tag that moves every tick,
// unmatched ones on tags that never appear in the ranking. With inverted
// tag→subscriber dispatch the per-tick cost tracks the matched count, not
// the population — the 1%-matched column must be ≥10× cheaper than the
// 100%-matched (broadcast-equivalent) column, and unmatched subscribers
// contribute zero work and zero allocations (pinned separately by
// TestDispatchUnmatchedZeroAllocs).
func BenchmarkBroadcastSubscribers(b *testing.B) {
	for _, subs := range []int{100, 10_000, 1_000_000} {
		for _, pct := range []int{1, 10, 100} {
			tier := fmt.Sprintf("subs-%d", subs)
			if subs >= 1_000_000 {
				tier = fmt.Sprintf("subs-%d-sim", subs)
			}
			b.Run(fmt.Sprintf("%s/matched-%d", tier, pct), func(b *testing.B) {
				e := core.New(core.Config{})
				defer e.Close()
				matched := subs * pct / 100
				for i := 0; i < subs; i++ {
					if i < matched {
						e.Subscribe(nil, core.SubTags("bench-hot"), core.SubBuffer(1))
					} else {
						// Cold tags are shared across subscribers: posting-list
						// size does not matter for untouched tags, only that
						// they never move.
						e.Subscribe(nil, core.SubTags(fmt.Sprintf("bench-cold-%d", i%1024)), core.SubBuffer(1))
					}
				}
				// A realistic top-k ranking: the hot pair plus stable filler.
				topics := []shift.Topic{{Pair: pairs.MakeKey("bench-hot", "bench-partner"), Score: 1}}
				for i := 0; i < 9; i++ {
					topics = append(topics, shift.Topic{
						Pair:  pairs.MakeKey(fmt.Sprintf("bench-fill-%d", i), "bench-partner"),
						Score: 0.5,
					})
				}
				r := core.Ranking{
					At:     time.Date(2011, 6, 12, 0, 0, 0, 0, time.UTC),
					Seeds:  []string{"bench-hot"},
					Topics: topics,
				}
				// Warm the dispatcher scratch and deliver the initial views.
				for i := 0; i < 2; i++ {
					r.At = r.At.Add(time.Second)
					r.Topics[0].Score += 1
					e.PublishRanking(r)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					r.At = r.At.Add(time.Second)
					r.Topics[0].Score += 1
					e.PublishRanking(r)
				}
				b.StopTimer()
				b.ReportMetric(float64(matched)*float64(b.N)/b.Elapsed().Seconds(), "notifs/s")
			})
		}
	}
}
