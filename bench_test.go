// Benchmarks regenerating the paper's evaluation artifacts, one target per
// table/figure (see DESIGN.md §4 for the index):
//
//	BenchmarkFigure1            — F1, the correlation-shift illustration
//	BenchmarkShowcase1          — SC1, archive replay with historic events
//	BenchmarkShowcase2          — SC2, live SIGMOD/Athens time lapse
//	BenchmarkShowcase3          — SC3, personalization
//	BenchmarkBaselineComparison — B1, enBlogue vs burst detection
//	BenchmarkThroughput*        — P1, engine docs/sec and plan sharing
//	BenchmarkAblation*          — A1, measure/predictor/half-life sweeps
//	BenchmarkEntityTagging      — E1, tagger accuracy workload
//
// Run: go test -bench=. -benchmem
package enblogue_test

import (
	"fmt"
	"io"
	"math"
	"runtime"
	"sort"
	"testing"
	"time"

	"enblogue/internal/core"
	"enblogue/internal/experiments"
	"enblogue/internal/pairs"
	"enblogue/internal/predict"
	"enblogue/internal/shift"
	"enblogue/internal/source"
	"enblogue/internal/stream"
	"enblogue/internal/tier"
)

func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunF1(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkShowcase1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunSC1(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkShowcase2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunSC2(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkShowcase3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunSC3(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBaselineComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunB1(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// benchDocs caches the throughput workload across benchmark targets.
var benchDocs []source.Document

func throughputDocs(b *testing.B) []*stream.Item {
	b.Helper()
	if benchDocs == nil {
		benchDocs = experiments.GenerateArchiveCached(source.ArchiveConfig{
			Seed: 99, Start: time.Date(2007, 1, 1, 0, 0, 0, 0, time.UTC),
			Days: 10, DocsPerDay: 1500,
		})
	}
	items := make([]*stream.Item, len(benchDocs))
	for i := range benchDocs {
		items[i] = benchDocs[i].Item()
	}
	return items
}

// BenchmarkThroughputEngine measures raw engine consumption (P1's core
// rows) at the reference seed count.
func BenchmarkThroughputEngine(b *testing.B) {
	items := throughputDocs(b)
	for _, seeds := range []int{10, 50, 200} {
		b.Run(benchName("seeds", seeds), func(b *testing.B) {
			e := core.New(core.Config{SeedCount: seeds})
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.Consume(items[i%len(items)])
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "docs/s")
		})
	}
}

// BenchmarkThroughputSharded measures engine docs/sec as the shard count
// sweeps 1 → 8 at the default MaxPairs budget (P1's parallel-speedup rows;
// see DESIGN.md §4). Unlike the cyclic benchmarks above, each pass over the
// workload is re-timestamped one window-span later, so evaluation ticks
// keep firing at the stream's real cadence no matter how large b.N grows —
// the number being measured is steady-state docs/sec including tick cost,
// which is what sharding parallelises.
func BenchmarkThroughputSharded(b *testing.B) {
	items := throughputDocs(b)
	span := items[len(items)-1].Time.Sub(items[0].Time) + time.Hour
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(benchName("shards", shards), func(b *testing.B) {
			e := core.New(core.Config{SeedCount: 200, Shards: shards})
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				it := *items[i%len(items)]
				it.Time = it.Time.Add(time.Duration(i/len(items)) * span)
				e.Consume(&it)
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "docs/s")
		})
	}
}

// BenchmarkThroughputBatched measures the batched ingest path across the
// GOMAXPROCS × shards × batch-size matrix (P1's batching rows). Documents
// are handed to the engine through Engine.ConsumeBatch in slices of the
// given size — one lock acquisition and one tick check per batch instead of
// per document, with candidate pairs grouped per tracker shard — while the
// workload and re-timestamping match BenchmarkThroughputSharded exactly, so
// batch-1 here isolates the batch-path overhead and larger batches show the
// amortisation. Rankings are bit-identical to the per-document path (see
// TestConsumeBatchMatchesSerial), so the docs/s column is the only thing
// that moves.
func BenchmarkThroughputBatched(b *testing.B) {
	items := throughputDocs(b)
	span := items[len(items)-1].Time.Sub(items[0].Time) + time.Hour
	for _, procs := range []int{1, 2} {
		for _, shards := range []int{1, 4} {
			for _, batch := range []int{1, 64, 4096} {
				name := fmt.Sprintf("procs-%d/shards-%d/batch-%d", procs, shards, batch)
				b.Run(name, func(b *testing.B) {
					prev := runtime.GOMAXPROCS(procs)
					defer runtime.GOMAXPROCS(prev)
					e := core.New(core.Config{SeedCount: 200, Shards: shards})
					buf := make([]stream.Item, batch)
					ptrs := make([]*stream.Item, batch)
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; {
						n := batch
						if rem := b.N - i; rem < n {
							n = rem
						}
						for j := 0; j < n; j++ {
							idx := i + j
							buf[j] = *items[idx%len(items)]
							buf[j].Time = buf[j].Time.Add(time.Duration(idx/len(items)) * span)
							ptrs[j] = &buf[j]
						}
						e.ConsumeBatch(ptrs[:n])
						i += n
					}
					b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "docs/s")
				})
			}
		}
	}
}

// BenchmarkThroughputSharedPlans measures the multi-plan runner with shared
// vs private operator prefixes (P1's sharing comparison).
func BenchmarkThroughputSharedPlans(b *testing.B) {
	if _, err := experiments.RunP1(io.Discard); err != nil {
		b.Fatal(err)
	}
	// RunP1 prints docs/sec itself in table form; the benchmark target
	// exists so `go test -bench` regenerates P1 alongside the others.
	b.Run("full", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := experiments.RunP1(io.Discard); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationMeasures times one engine pass per correlation measure
// over the archive workload (A1's measure dimension).
func BenchmarkAblationMeasures(b *testing.B) {
	items := throughputDocs(b)
	for _, m := range pairs.AllMeasures() {
		b.Run(m.String(), func(b *testing.B) {
			e := core.New(core.Config{Measure: m})
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.Consume(items[i%len(items)])
			}
		})
	}
}

// BenchmarkAblationPredictors times one engine pass per predictor (A1's
// predictor dimension).
func BenchmarkAblationPredictors(b *testing.B) {
	items := throughputDocs(b)
	for _, k := range predict.AllKinds() {
		b.Run(k.String(), func(b *testing.B) {
			e := core.New(core.Config{Predictor: k})
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.Consume(items[i%len(items)])
			}
		})
	}
}

// BenchmarkAblationFull runs the complete A1 quality sweep (detection and
// precision per configuration).
func BenchmarkAblationFull(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunA1(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEntityTagging(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunE1(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func benchName(prefix string, n int) string {
	return fmt.Sprintf("%s-%d", prefix, n)
}

// tieredDoc is one document of the accuracy workload below.
type tieredDoc struct {
	at   time.Time
	tags []string
}

// tieredAccuracyDocs builds the workload for BenchmarkTieredAccuracy: a
// front-loaded background of 600 independent pairs whose total counts ramp
// linearly from 4 to 27, all posted in the first 20 hours, plus a cohort
// of 60 "event" pairs that trickle in 4-document bursts every six hours
// across the whole 40-hour stream (true count ~28, above every background
// pair). The front-loading makes the capped tracker's eviction cut rise to
// its final height while the event pairs are still small, which is the
// regime the tier exists for: an event pair's between-burst accumulation
// never catches the cut, so the eviction-only tracker forgets it again and
// again and its final count reflects only the last burst or two — while
// the sketch tail accumulates the demoted mass across the whole stream and
// promotes the pair back once its estimate clears the admission floor.
// Fully deterministic, and the whole stream fits inside one 48h window so
// windowed decay never confounds the recall numbers.
var tieredDocsCache []tieredDoc

func tieredAccuracyDocs() []tieredDoc {
	if tieredDocsCache != nil {
		return tieredDocsCache
	}
	start := time.Date(2011, 6, 12, 0, 0, 0, 0, time.UTC)
	bgSpan := 20 * time.Hour
	var docs []tieredDoc
	for i := 0; i < 600; i++ {
		n := 4 + i/25 // occurrences, evenly spaced over the first half
		step := bgSpan / time.Duration(n)
		tags := []string{fmt.Sprintf("bgA%04d", i), fmt.Sprintf("bgB%04d", i)}
		for j := 0; j < n; j++ {
			at := start.Add(time.Duration(j)*step + time.Duration(i)*time.Second)
			docs = append(docs, tieredDoc{at: at, tags: tags})
		}
	}
	for h := 0; h < 40; h++ {
		hour := start.Add(time.Duration(h) * time.Hour)
		for e := 0; e < 60; e++ {
			if h%6 != e%6 {
				continue
			}
			tags := []string{fmt.Sprintf("evA%02d", e), fmt.Sprintf("evB%02d", e)}
			for r := 0; r < 4; r++ {
				docs = append(docs, tieredDoc{
					at:   hour.Add(time.Duration((e*997+r)%60)*time.Minute + 30*time.Second),
					tags: tags,
				})
			}
		}
	}
	sort.Slice(docs, func(i, j int) bool {
		if !docs[i].at.Equal(docs[j].at) {
			return docs[i].at.Before(docs[j].at)
		}
		return docs[i].tags[0] < docs[j].tags[0]
	})
	tieredDocsCache = docs
	return docs
}

// runTieredTracker replays the accuracy workload through a sharded tracker
// at the given pair budget (0 = effectively unbounded), promoting from the
// tail once per stream hour — the cadence the engine's evaluation tick
// gives it in production.
func runTieredTracker(maxPairs int, tail *tier.Config, docs []tieredDoc) *pairs.ShardedTracker {
	tr := pairs.NewShardedTracker(pairs.Config{
		Buckets:    48,
		Resolution: time.Hour,
		MaxPairs:   maxPairs,
		SweepEvery: 256,
		Shards:     4,
		Tail:       tail,
	})
	lastHour := -1
	for i := range docs {
		tr.Observe(docs[i].at, docs[i].tags, nil)
		if h := int(docs[i].at.Sub(docs[0].at) / time.Hour); h != lastHour {
			lastHour = h
			tr.PromoteTail(docs[i].at)
		}
	}
	tr.PromoteTail(docs[len(docs)-1].at)
	return tr
}

// topTieredPairs returns the k tracked pairs with the largest windowed
// co-occurrence, ties broken by key order.
func topTieredPairs(tr *pairs.ShardedTracker, k int) map[pairs.Key]bool {
	keys := tr.Keys()
	counts := make(map[pairs.Key]float64, len(keys))
	for _, key := range keys {
		counts[key] = tr.Cooccurrence(key)
	}
	sort.Slice(keys, func(i, j int) bool {
		if counts[keys[i]] != counts[keys[j]] {
			return counts[keys[i]] > counts[keys[j]]
		}
		return keys[i].Less(keys[j])
	})
	if len(keys) > k {
		keys = keys[:k]
	}
	top := make(map[pairs.Key]bool, len(keys))
	for _, key := range keys {
		top[key] = true
	}
	return top
}

// tieredBytes estimates the tracker's pair-tracking footprint from its
// configuration: the exact tier's arena rows and index entries plus, when
// the tail is on, the two Count-Min generations and both heavy-hitter
// summaries per shard. An arithmetic model rather than a heap measurement
// so the bytes/pair column is deterministic across runs and platforms.
func tieredBytes(maxPairs, buckets, shards int, tail *tier.Config) float64 {
	const perPairOverhead = 64 // index map entry + key + slot bookkeeping
	exact := float64(maxPairs) * float64(buckets*8+perPairOverhead)
	if tail == nil {
		return exact
	}
	width := math.Ceil(math.E / tail.Epsilon)
	depth := math.Ceil(math.Log(1 / tail.Delta))
	perShard := 2*width*depth*8 + float64(tail.TopK)*2*32
	return exact + float64(shards)*perShard
}

// BenchmarkTieredAccuracy is the tiered memory model's accuracy/footprint
// matrix (ISSUE 10): for each pair budget it replays the bursty workload
// through an eviction-only tracker and through sketch-tailed trackers at
// two epsilons, then scores each against the top-100 pairs of an unbounded
// exact run over the same stream. recall@100 is the fraction of the true
// top-100 the capped tracker still ranks in its own top-100; bytes/pair
// spreads the configured footprint over the stream's distinct-pair
// vocabulary. The tail must buy recall at small budgets for a few percent
// of the exact tier's bytes — scripts/bench.sh records the matrix in
// BENCH_<date>.json alongside the throughput trajectory.
func BenchmarkTieredAccuracy(b *testing.B) {
	const k = 100
	docs := tieredAccuracyDocs()
	truth := runTieredTracker(0, nil, docs)
	truthTop := topTieredPairs(truth, k)
	vocab := len(truth.Keys())

	tails := []struct {
		name string
		cfg  *tier.Config
	}{
		{"exact-only", nil},
		{"eps-0.01", &tier.Config{Epsilon: 0.01, Delta: 0.01, TopK: 1024}},
		{"eps-0.001", &tier.Config{Epsilon: 0.001, Delta: 0.01, TopK: 1024}},
	}
	for _, maxPairs := range []int{150, 400} {
		for _, tl := range tails {
			b.Run(fmt.Sprintf("max-%d/%s", maxPairs, tl.name), func(b *testing.B) {
				var tr *pairs.ShardedTracker
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					tr = runTieredTracker(maxPairs, tl.cfg, docs)
				}
				got := topTieredPairs(tr, k)
				hits := 0
				for key := range got {
					if truthTop[key] {
						hits++
					}
				}
				b.ReportMetric(float64(hits)/float64(k), "recall@100")
				b.ReportMetric(tieredBytes(maxPairs, 48, tr.Shards(), tl.cfg)/float64(vocab), "bytes/pair")
				b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "runs/s")
			})
		}
	}
}

// BenchmarkBroadcastSubscribers measures per-tick dispatch cost across the
// subscription index as the subscriber population and matched fraction
// sweep: matched subscribers stand on a tag that moves every tick,
// unmatched ones on tags that never appear in the ranking. With inverted
// tag→subscriber dispatch the per-tick cost tracks the matched count, not
// the population — the 1%-matched column must be ≥10× cheaper than the
// 100%-matched (broadcast-equivalent) column, and unmatched subscribers
// contribute zero work and zero allocations (pinned separately by
// TestDispatchUnmatchedZeroAllocs).
func BenchmarkBroadcastSubscribers(b *testing.B) {
	for _, subs := range []int{100, 10_000, 1_000_000} {
		for _, pct := range []int{1, 10, 100} {
			tier := fmt.Sprintf("subs-%d", subs)
			if subs >= 1_000_000 {
				tier = fmt.Sprintf("subs-%d-sim", subs)
			}
			b.Run(fmt.Sprintf("%s/matched-%d", tier, pct), func(b *testing.B) {
				e := core.New(core.Config{})
				defer e.Close()
				matched := subs * pct / 100
				for i := 0; i < subs; i++ {
					if i < matched {
						e.Subscribe(nil, core.SubTags("bench-hot"), core.SubBuffer(1))
					} else {
						// Cold tags are shared across subscribers: posting-list
						// size does not matter for untouched tags, only that
						// they never move.
						e.Subscribe(nil, core.SubTags(fmt.Sprintf("bench-cold-%d", i%1024)), core.SubBuffer(1))
					}
				}
				// A realistic top-k ranking: the hot pair plus stable filler.
				topics := []shift.Topic{{Pair: pairs.MakeKey("bench-hot", "bench-partner"), Score: 1}}
				for i := 0; i < 9; i++ {
					topics = append(topics, shift.Topic{
						Pair:  pairs.MakeKey(fmt.Sprintf("bench-fill-%d", i), "bench-partner"),
						Score: 0.5,
					})
				}
				r := core.Ranking{
					At:     time.Date(2011, 6, 12, 0, 0, 0, 0, time.UTC),
					Seeds:  []string{"bench-hot"},
					Topics: topics,
				}
				// Warm the dispatcher scratch and deliver the initial views.
				for i := 0; i < 2; i++ {
					r.At = r.At.Add(time.Second)
					r.Topics[0].Score += 1
					e.PublishRanking(r)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					r.At = r.At.Add(time.Second)
					r.Topics[0].Score += 1
					e.PublishRanking(r)
				}
				b.StopTimer()
				b.ReportMetric(float64(matched)*float64(b.N)/b.Elapsed().Seconds(), "notifs/s")
			})
		}
	}
}
