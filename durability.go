package enblogue

// This file wires the durability layer into the public surface. The engine
// core cannot import internal/persist (persist sits above core, encoding
// core's exported state), so core exposes a construction hook and this
// package — which imports both — connects them: every engine built with a
// durability directory recovers and attaches persistence inside core.New.

import (
	"enblogue/internal/core"
	"enblogue/internal/persist"
)

func init() {
	core.SetDurabilityHook(persist.Attach)
}

// FsyncMode selects how aggressively the write-ahead log is flushed; see
// the mode constants.
type FsyncMode = core.FsyncMode

// WAL flush policies, selected with the Fsync durability option.
const (
	// FsyncIntervalMode syncs at most once per FsyncEvery period (default
	// one second): process crashes lose nothing, power loss at most one
	// interval. The default.
	FsyncIntervalMode = core.FsyncInterval
	// FsyncAlwaysMode syncs after every document.
	FsyncAlwaysMode = core.FsyncAlways
	// FsyncNeverMode leaves flushing entirely to the OS.
	FsyncNeverMode = core.FsyncNever
)

// DurabilityStats is a point-in-time view of an engine's persistence layer.
type DurabilityStats = core.DurabilityStats

// Snapshot forces a durable snapshot of the current engine state, rotating
// the WAL at the same instant. It returns core.ErrNoDurability when the
// engine was built without WithDurability.
func (e *Engine) Snapshot() error { return e.core.Snapshot() }

// DurabilityStats reports the persistence layer's state; ok is false when
// the engine was built without WithDurability.
func (e *Engine) DurabilityStats() (st DurabilityStats, ok bool) {
	return e.core.DurabilityStats()
}
