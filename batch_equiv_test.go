package enblogue_test

import (
	"context"
	"fmt"
	"reflect"
	"testing"
	"time"

	"enblogue"
	"enblogue/internal/source"
	"enblogue/internal/stream"
)

// This file holds the batched-ingest determinism acceptance tests: the
// engine promises rankings bit-identical between per-document Consume and
// every batched path (ConsumeBatch at any batch size, the Enqueue ring
// buffer, Run's internal batching), for any shard count. These tests pin
// that promise across two workload shapes — a short synthetic tweet
// stream with scripted happenings and a multi-day archive replay — and a
// matrix of shard counts and batch sizes, including batches that split
// mid-tick and a batch larger than the whole stream.

// equivWorkloads builds the two acceptance workloads, sized so the full
// matrix stays fast: a few thousand documents spanning enough event time
// to fire dozens of evaluation ticks each.
func equivWorkloads(t testing.TB) map[string][]*stream.Item {
	t.Helper()
	toItems := func(docs []source.Document) []*stream.Item {
		items := make([]*stream.Item, len(docs))
		for i := range docs {
			items[i] = docs[i].Item()
		}
		return items
	}
	tweets := source.GenerateTweets(source.TweetConfig{
		Seed: 7, Span: 6 * time.Hour, TweetsPerMinute: 8,
	})
	archive := source.GenerateArchive(source.ArchiveConfig{
		Seed: 99, Start: time.Date(2007, 1, 1, 0, 0, 0, 0, time.UTC),
		Days: 4, DocsPerDay: 500,
	})
	return map[string][]*stream.Item{
		"tweets":  toItems(tweets),
		"archive": toItems(archive),
	}
}

// rankingRecorder collects every published tick from a subscription,
// drained on a dedicated goroutine so even the slowest matrix cell never
// sheds a frame. wait — called after Engine.Close has closed the
// subscription channel — joins the drainer, establishing the
// happens-before edge that makes got safe to read.
type rankingRecorder struct {
	got  []enblogue.Ranking
	done chan struct{}
}

// record subscribes to e and starts draining. The caller must Close the
// engine and then call wait before reading the recording.
func record(e *enblogue.Engine) *rankingRecorder {
	rec := &rankingRecorder{done: make(chan struct{})}
	sub := e.Subscribe(context.Background(), enblogue.SubBuffer(1<<16))
	go func() {
		defer close(rec.done)
		for rn := range sub.Notifications() {
			r := rn.Ranking()
			rec.got = append(rec.got, r)
		}
	}()
	return rec
}

func (r *rankingRecorder) wait() []enblogue.Ranking {
	<-r.done
	return r.got
}

// consumeSerial replays items one Consume at a time and returns every
// published ranking — the reference the batched paths must reproduce
// bit-for-bit.
func consumeSerial(items []*stream.Item, shards int) []enblogue.Ranking {
	e := enblogue.New(enblogue.WithShards(shards))
	rec := record(e)
	for _, it := range items {
		e.Consume(it)
	}
	e.Flush()
	e.Close()
	return rec.wait()
}

// diffRankings fails the test with the first divergence between two
// ranking sequences, or returns quietly when they are deeply equal.
func diffRankings(t *testing.T, want, got []enblogue.Ranking) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("published %d rankings, want %d", len(got), len(want))
	}
	for i := range want {
		if !reflect.DeepEqual(want[i], got[i]) {
			t.Fatalf("ranking %d diverges:\n got  %+v\n want %+v", i, got[i], want[i])
		}
	}
}

// TestConsumeBatchMatchesSerial is the acceptance test for the batched
// ingest pipeline: for every workload × shard count × batch size, feeding
// the stream through ConsumeBatch in fixed-size runs publishes rankings
// bit-identical (reflect.DeepEqual over every tick, scores included) to
// the per-document serial replay with the same shard count.
func TestConsumeBatchMatchesSerial(t *testing.T) {
	for name, items := range equivWorkloads(t) {
		t.Run(name, func(t *testing.T) {
			for _, shards := range []int{1, 4, 8} {
				want := consumeSerial(items, shards)
				if len(want) == 0 {
					t.Fatalf("serial replay of %q published no rankings; workload too small", name)
				}
				for _, batch := range []int{1, 64, 4096} {
					t.Run(fmt.Sprintf("shards-%d/batch-%d", shards, batch), func(t *testing.T) {
						e := enblogue.New(enblogue.WithShards(shards))
						rec := record(e)
						for lo := 0; lo < len(items); lo += batch {
							hi := lo + batch
							if hi > len(items) {
								hi = len(items)
							}
							e.ConsumeBatch(items[lo:hi])
						}
						e.Flush()
						e.Close()
						diffRankings(t, want, rec.wait())
					})
				}
			}
		})
	}
}

// TestEnqueueMatchesSerial pins the full asynchronous pipeline: items
// pushed through the bounded ingest ring and its drainer goroutine (which
// consumes via ConsumeBatch in arbitrary partial batches, depending on
// timing) still publish rankings bit-identical to the serial replay,
// because the ring is FIFO and batch boundaries are semantically
// invisible.
func TestEnqueueMatchesSerial(t *testing.T) {
	items := equivWorkloads(t)["tweets"]
	want := consumeSerial(items, 4)
	e := enblogue.New(
		enblogue.WithShards(4),
		enblogue.WithIngestQueue(256),
		enblogue.WithIngestMaxBatch(64),
		enblogue.WithIngestFlushInterval(time.Millisecond),
	)
	rec := record(e)
	for _, it := range items {
		e.Enqueue(it)
	}
	e.Flush() // waits for the ring to drain, then fires the final tick
	e.Close()
	diffRankings(t, want, rec.wait())
	if d := e.IngestDropped(); d != 0 {
		t.Errorf("blocking ingest queue dropped %d items, want 0", d)
	}
	if d := e.IngestDepth(); d != 0 {
		t.Errorf("ingest depth after Flush = %d, want 0", d)
	}
}

// TestRunMatchesSerial pins Run's internal batching: draining a source
// through Run publishes the same rankings as the per-document loop, and
// the final flush tick is included.
func TestRunMatchesSerial(t *testing.T) {
	items := equivWorkloads(t)["tweets"]
	want := consumeSerial(items, 2)
	e := enblogue.New(enblogue.WithShards(2))
	rec := record(e)
	if err := e.Run(t.Context(), enblogue.Items(items)); err != nil {
		t.Fatalf("Run: %v", err)
	}
	e.Close()
	diffRankings(t, want, rec.wait())
}
