// Multiplan demonstrates the engine architecture's headline efficiency
// feature: "The system allows executing multiple query plans in parallel,
// where overlapping parts ... are shared for efficiency. It hence allows us
// to compare emergent topic rankings obtained from different parameter
// settings in real-time."
//
// Four engines — Jaccard vs cosine correlation, set-overlap vs
// distribution similarity, and a no-damping variant — consume one shared
// stream through a single runner and their final rankings are printed side
// by side.
//
//	go run ./examples/multiplan
package main

import (
	"context"
	"fmt"
	"time"

	"enblogue/internal/core"
	"enblogue/internal/pairs"
	"enblogue/internal/source"
	"enblogue/internal/stream"
)

func main() {
	start := time.Date(2007, 8, 1, 0, 0, 0, 0, time.UTC)
	events := source.HistoricEvents(start)
	docs := source.GenerateArchive(source.ArchiveConfig{
		Seed: 42, Start: start, Days: 25, DocsPerDay: 240, Events: events,
	})

	base := core.Config{
		WindowBuckets:    48,
		WindowResolution: time.Hour,
		TickEvery:        2 * time.Hour,
		SeedCount:        40,
		MinCooccurrence:  3,
		TopK:             5,
		UpOnly:           true,
	}
	variants := []struct {
		name   string
		mutate func(*core.Config)
	}{
		{"jaccard (paper default)", func(c *core.Config) {}},
		{"cosine", func(c *core.Config) { c.Measure = pairs.Cosine }},
		{"distribution (rel. entropy)", func(c *core.Config) { c.DistributionMode = true }},
		{"short half-life (12h)", func(c *core.Config) { c.HalfLife = 12 * time.Hour }},
	}

	items := make(stream.SliceSource, len(docs))
	for i := range docs {
		items[i] = docs[i].Item()
	}
	runner := stream.NewRunner(items)
	engines := make([]*core.Engine, len(variants))
	for i, v := range variants {
		cfg := base
		v.mutate(&cfg)
		engines[i] = core.New(cfg)
		runner.Add(&stream.Plan{
			Name: v.name,
			// All plans share the same upstream counter stage: one pass
			// over the source feeds every engine.
			Stages: []stream.Stage{
				stream.Shared("count", func() stream.Operator { return &stream.Counter{} }),
			},
			Sink: engines[i],
		})
	}
	if err := runner.Run(context.Background()); err != nil {
		panic(err)
	}
	built, shared := runner.Stats()
	fmt.Printf("replayed %d docs through %d plans (%d operator instances built, %d shared)\n\n",
		len(docs), len(variants), built, shared)

	for i, v := range variants {
		r := engines[i].CurrentRanking()
		fmt.Printf("%s — final top-5:\n", v.name)
		for j, t := range r.Topics {
			set := engines[i].ExpandTopic(t.Pair, 1)
			fmt.Printf("  %d. %-28s score=%.4f  query: %s\n",
				j+1, t.Pair, t.Score, core.KeywordQuery(set))
		}
		fmt.Println()
	}
}
