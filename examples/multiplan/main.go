// Multiplan demonstrates the paper's headline efficiency feature through
// the public API: "The system allows executing multiple query plans in
// parallel ... It hence allows us to compare emergent topic rankings
// obtained from different parameter settings in real-time."
//
// Four engines — Jaccard vs cosine correlation, set-overlap vs
// distribution similarity, and a short-half-life variant — consume one
// shared pass over the same archive and their final rankings are printed
// side by side.
//
//	go run ./examples/multiplan
package main

import (
	"fmt"
	"time"

	"enblogue"
)

func main() {
	start := time.Date(2007, 8, 1, 0, 0, 0, 0, time.UTC)
	items, _ := enblogue.ArchiveScenario(start, 25)

	base := []enblogue.Option{
		enblogue.WithWindow(48, time.Hour),
		enblogue.WithTickEvery(2 * time.Hour),
		enblogue.WithSeedCount(40),
		enblogue.WithMinCooccurrence(3),
		enblogue.WithTopK(5),
		enblogue.WithUpOnly(),
	}
	variants := []struct {
		name  string
		extra []enblogue.Option
	}{
		{"jaccard (paper default)", nil},
		{"cosine", []enblogue.Option{enblogue.WithMeasure(enblogue.Cosine)}},
		{"distribution (rel. entropy)", []enblogue.Option{enblogue.WithDistributionMode()}},
		{"short half-life (12h)", []enblogue.Option{enblogue.WithHalfLife(12 * time.Hour)}},
	}

	engines := make([]*enblogue.Engine, len(variants))
	for i, v := range variants {
		engines[i] = enblogue.New(append(append([]enblogue.Option{}, base...), v.extra...)...)
	}

	// One pass over the shared source feeds every engine — the multi-plan
	// sharing pattern, with each engine a differently-parameterised plan.
	for _, it := range items {
		for _, e := range engines {
			e.Consume(it)
		}
	}
	for _, e := range engines {
		e.Flush()
	}
	fmt.Printf("replayed %d docs once through %d engine variants\n\n", len(items), len(variants))

	for i, v := range variants {
		r := engines[i].CurrentRanking()
		fmt.Printf("%s — final top-5:\n", v.name)
		for j, t := range r.Topics {
			set := engines[i].ExpandTopic(t.Pair, 1)
			fmt.Printf("  %d. %-28s score=%.4f  query: %s\n",
				j+1, t.Pair, t.Score, enblogue.KeywordQuery(set))
		}
		fmt.Println()
	}
}
