// Personalization reproduces show case 3: the same emergent-topic ranking
// is viewed by three users — one neutral, one database researcher with a
// continuous keyword query, one traveller with an exclusive interest filter
// — and each sees "completely different or just differently ordered
// emergent topics".
//
//	go run ./examples/personalization
package main

import (
	"fmt"
	"time"

	"enblogue/internal/core"
	"enblogue/internal/persona"
	"enblogue/internal/source"
)

func main() {
	span := 48 * time.Hour
	docs := source.GenerateTweets(source.TweetConfig{
		Seed: 7, Span: span, TweetsPerMinute: 20,
		Happenings: source.SIGMODAthensScenario(span),
	})

	// Capture the ranking at the surge's peak rather than stream end,
	// where the demo's topics are hottest.
	target := docs[0].Time.Add(span/2 + span/8)
	var ranking core.Ranking
	engine := core.New(core.Config{
		WindowBuckets:    24,
		WindowResolution: time.Hour,
		SeedCount:        30,
		SeedMinCount:     5,
		MinCooccurrence:  3,
		TopK:             10,
		UpOnly:           true,
		OnRanking: func(r core.Ranking) {
			if !r.At.After(target) {
				ranking = r
			}
		},
	})
	for i := range docs {
		engine.Consume(docs[i].Item())
	}
	engine.Flush()

	var topics []persona.Topic
	for _, t := range ranking.Topics {
		topics = append(topics, persona.Topic{Pair: t.Pair, Score: t.Score})
	}

	registry := persona.NewRegistry()
	registry.Set(&persona.Profile{Name: "neutral"})
	registry.Set(&persona.Profile{
		Name:     "db-researcher",
		Keywords: []string{"sigmod", "athens"},
		Boost:    5,
	})
	registry.Set(&persona.Profile{
		Name:      "traveller",
		Keywords:  []string{"volcano", "air-traffic", "flight"},
		Exclusive: true, // drop everything off-interest
	})

	views := registry.RerankAll(topics)
	for _, name := range registry.Names() {
		fmt.Printf("%s sees:\n", name)
		for i, t := range views[name] {
			if i >= 5 {
				break
			}
			fmt.Printf("  %d. %-28s score=%.4f\n", i+1, t.Pair, t.Score)
		}
		fmt.Println()
	}
	fmt.Println("users can change preferences at any time; re-running RerankAll")
	fmt.Println("against the next tick's topics updates every view instantly.")
}
