// Personalization reproduces show case 3 with the subscription broker: the
// same shared ingest pipeline is observed by three subscribers — one
// neutral, one database researcher with a continuous keyword query, one
// traveller with an exclusive interest filter — and each sees "completely
// different or just differently ordered emergent topics".
//
//	go run ./examples/personalization
package main

import (
	"context"
	"fmt"
	"time"

	"enblogue"
)

func main() {
	span := 48 * time.Hour
	items, _ := enblogue.TweetScenario(span)

	engine := enblogue.New(
		enblogue.WithWindow(24, time.Hour),
		enblogue.WithSeedCount(30),
		enblogue.WithSeedMinCount(5),
		enblogue.WithMinCooccurrence(3),
		enblogue.WithTopK(10),
		enblogue.WithUpOnly(),
	)

	// One subscription per user, each with its own standing preferences:
	// the broker re-ranks every tick per subscriber, so the users never
	// see each other's views.
	ctx := context.Background()
	users := []struct {
		name    string
		profile *enblogue.Profile
	}{
		{"neutral", nil},
		{"db-researcher", &enblogue.Profile{
			Name:     "db-researcher",
			Keywords: []string{"sigmod", "athens"},
			Boost:    5,
		}},
		{"traveller", &enblogue.Profile{
			Name:      "traveller",
			Keywords:  []string{"volcano", "air-traffic", "flight"},
			Exclusive: true, // drop everything off-interest
		}},
	}
	subs := make([]*enblogue.Subscription, len(users))
	for i, u := range users {
		subs[i] = engine.Subscribe(ctx,
			enblogue.SubProfile(u.profile), enblogue.SubBuffer(128))
	}

	if err := engine.Run(ctx, items); err != nil {
		panic(err)
	}
	engine.Close()

	// Capture each user's view at the surge's peak rather than stream end,
	// where the demo's topics are hottest.
	target := items[0].Time.Add(span/2 + span/8)
	for i, u := range users {
		var view enblogue.Ranking
		for rn := range subs[i].Notifications() {
			r := rn.Ranking()
			if !r.At.After(target) {
				view = r
			}
		}
		fmt.Printf("%s sees:\n", u.name)
		for j, t := range view.Topics {
			if j >= 5 {
				break
			}
			fmt.Printf("  %d. %-28s score=%.4f\n", j+1, t.Pair, t.Score)
		}
		fmt.Println()
	}
	fmt.Println("users can change preferences at any time: close the old")
	fmt.Println("subscription, subscribe with the new profile, and the next")
	fmt.Println("tick is already re-ranked — no other subscriber notices.")
}
