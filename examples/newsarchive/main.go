// Newsarchive reproduces show case 1 ("Revisiting Historic Events"): a
// synthetic 25-day news archive with three injected events — a hurricane,
// an election recount, and a World Cup upset — is replayed through the
// engine, and the example reports when each event surfaced in the top-k.
//
//	go run ./examples/newsarchive
package main

import (
	"context"
	"fmt"
	"time"

	"enblogue"
)

func main() {
	start := time.Date(2007, 8, 1, 0, 0, 0, 0, time.UTC)
	items, events := enblogue.ArchiveScenario(start, 25)
	fmt.Println("generating 25-day archive with injected events:")
	for _, e := range events {
		fmt.Printf("  %-20s %-25s starts %s\n", e.Name, e.Pair, e.Start.Format("Jan 02"))
	}
	fmt.Printf("archive: %d documents\n\n", len(items))

	truth := map[enblogue.Key]bool{}
	for _, e := range events {
		truth[e.Pair] = true
	}

	engine := enblogue.New(
		enblogue.WithWindow(48, time.Hour),
		enblogue.WithTickEvery(2*time.Hour),
		enblogue.WithSeedCount(40),
		enblogue.WithMinCooccurrence(3),
		enblogue.WithTopK(10),
		enblogue.WithUpOnly(),
	)
	sub := engine.Subscribe(context.Background(), enblogue.SubBuffer(512))

	if err := engine.Run(context.Background(), items); err != nil {
		panic(err)
	}
	engine.Close()

	firstSeen := map[enblogue.Key]time.Time{}
	for rn := range sub.Notifications() {
		r := rn.Ranking()
		for i, t := range r.Topics {
			if truth[t.Pair] {
				if _, ok := firstSeen[t.Pair]; !ok {
					firstSeen[t.Pair] = r.At
					fmt.Printf("%s  detected %-25s at rank %d (score %.3f)\n",
						r.At.Format("Jan 02 15:04"), t.Pair, i+1, t.Score)
				}
			}
		}
	}

	fmt.Println("\ndetection latencies:")
	for _, e := range events {
		if at, ok := firstSeen[e.Pair]; ok {
			fmt.Printf("  %-20s %s after event start\n", e.Name, at.Sub(e.Start))
		} else {
			fmt.Printf("  %-20s NOT DETECTED\n", e.Name)
		}
	}
}
