// Newsarchive reproduces show case 1 ("Revisiting Historic Events"): a
// synthetic 25-day news archive with three injected events — a hurricane,
// an election recount, and a World Cup upset — is replayed in time lapse,
// and the example reports when each event surfaced in the top-k.
//
//	go run ./examples/newsarchive
package main

import (
	"fmt"
	"time"

	"enblogue/internal/core"
	"enblogue/internal/pairs"
	"enblogue/internal/source"
)

func main() {
	start := time.Date(2007, 8, 1, 0, 0, 0, 0, time.UTC)
	events := source.HistoricEvents(start)
	fmt.Println("generating 25-day archive with injected events:")
	for _, e := range events {
		fmt.Printf("  %-20s %-25s starts %s\n", e.Name, e.Pair(), e.Start.Format("Jan 02"))
	}
	docs := source.GenerateArchive(source.ArchiveConfig{
		Seed: 42, Start: start, Days: 25, DocsPerDay: 240, Events: events,
	})
	fmt.Printf("archive: %d documents\n\n", len(docs))

	truth := source.TruthPairs(events)
	firstSeen := map[pairs.Key]time.Time{}
	engine := core.New(core.Config{
		WindowBuckets:    48,
		WindowResolution: time.Hour,
		TickEvery:        2 * time.Hour,
		SeedCount:        40,
		MinCooccurrence:  3,
		TopK:             10,
		UpOnly:           true,
		OnRanking: func(r core.Ranking) {
			for i, t := range r.Topics {
				if truth[t.Pair] {
					if _, ok := firstSeen[t.Pair]; !ok {
						firstSeen[t.Pair] = r.At
						fmt.Printf("%s  detected %-25s at rank %d (score %.3f)\n",
							r.At.Format("Jan 02 15:04"), t.Pair, i+1, t.Score)
					}
				}
			}
		},
	})
	for i := range docs {
		engine.Consume(docs[i].Item())
	}
	engine.Flush()

	fmt.Println("\ndetection latencies:")
	for _, e := range events {
		if at, ok := firstSeen[e.Pair()]; ok {
			fmt.Printf("  %-20s %s after event start\n", e.Name, at.Sub(e.Start))
		} else {
			fmt.Printf("  %-20s NOT DETECTED\n", e.Name)
		}
	}
}
