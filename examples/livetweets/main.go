// Livetweets reproduces show case 2 ("Live Data"): a simulated Twitter
// stream runs through the engine with entity tagging enabled, and the
// example prints the rank trajectory of the scripted SIGMOD/Athens surge —
// the paper's conference stunt — as observed through a subscription.
//
//	go run ./examples/livetweets
package main

import (
	"context"
	"fmt"
	"time"

	"enblogue"
)

func main() {
	span := 48 * time.Hour
	items, events := enblogue.TweetScenario(span)
	var surge enblogue.ScenarioEvent
	for _, e := range events {
		if e.Name == "sigmod-athens" {
			surge = e
		}
	}
	target := surge.Pair
	fmt.Printf("replaying %d tweets; #sigmod #athens surge begins %s\n\n",
		len(items), surge.Start.Format(time.RFC3339))

	engine := enblogue.New(
		enblogue.WithWindow(24, time.Hour),
		enblogue.WithSeedCount(30),
		enblogue.WithSeedMinCount(5),
		enblogue.WithMinCooccurrence(3),
		enblogue.WithTopK(10),
		enblogue.WithUpOnly(),
		enblogue.WithEntities(enblogue.SampleTagger()),
	)

	// Watch the stunt pair through a subscription: every tick is pushed,
	// the consumer never polls.
	sub := engine.Subscribe(context.Background(), enblogue.SubBuffer(256))
	done := make(chan struct{})
	go func() {
		defer close(done)
		for rn := range sub.Notifications() {
			r := rn.Ranking()
			for i, t := range r.Topics {
				if t.Pair == target {
					fmt.Printf("%s  %-16s rank %2d  score %.4f\n",
						r.At.Format("Jan 02 15:04"), target, i+1, t.Score)
				}
			}
		}
	}()

	if err := engine.Run(context.Background(), items); err != nil {
		panic(err)
	}
	engine.Close()
	<-done

	r := engine.CurrentRanking()
	fmt.Println("\nfinal top-10:")
	for i, t := range r.Topics {
		marker := ""
		if t.Pair == enblogue.MakeKey("sigmod", "athens") {
			marker = "   <-- the conference stunt"
		}
		fmt.Printf("  %2d. %-28s score=%.4f%s\n", i+1, t.Pair, t.Score, marker)
	}
}
