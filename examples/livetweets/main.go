// Livetweets reproduces show case 2 ("Live Data"): a simulated Twitter
// stream runs through the full push pipeline — wrapper, entity tagging,
// engine — and the example prints the rank trajectory of the scripted
// SIGMOD/Athens surge, the paper's conference stunt.
//
//	go run ./examples/livetweets
package main

import (
	"context"
	"fmt"
	"time"

	"enblogue/internal/core"
	"enblogue/internal/entity"
	"enblogue/internal/pairs"
	"enblogue/internal/source"
	"enblogue/internal/stream"
)

func main() {
	span := 48 * time.Hour
	cfg := source.TweetConfig{
		Seed: 7, Span: span, TweetsPerMinute: 20,
		Happenings: source.SIGMODAthensScenario(span),
	}
	docs := source.GenerateTweets(cfg)
	var surge source.Event
	for _, e := range cfg.Events() {
		if e.Name == "sigmod-athens" {
			surge = e
		}
	}
	target := surge.Pair()
	fmt.Printf("replaying %d tweets; #sigmod #athens surge begins %s\n\n",
		len(docs), surge.Start.Format(time.RFC3339))

	g, o := entity.Sample()
	engine := core.New(core.Config{
		WindowBuckets:    24,
		WindowResolution: time.Hour,
		SeedCount:        30,
		SeedMinCount:     5,
		MinCooccurrence:  3,
		TopK:             10,
		UpOnly:           true,
		UseEntities:      true,
		Tagger:           entity.NewTagger(g, o),
		OnRanking: func(r core.Ranking) {
			for i, t := range r.Topics {
				if t.Pair == target {
					fmt.Printf("%s  %-16s rank %2d  score %.4f\n",
						r.At.Format("Jan 02 15:04"), target, i+1, t.Score)
				}
				_ = i
			}
		},
	})

	// Drive the engine through the push DAG, as the live system does:
	// source → dedup → engine sink.
	runner := stream.NewRunner(&source.Replayer{Docs: docs})
	runner.Add(&stream.Plan{
		Name: "live",
		Stages: []stream.Stage{
			stream.Shared("dedup", func() stream.Operator { return stream.NewDedup(1 << 16) }),
		},
		Sink: engine,
	})
	if err := runner.Run(context.Background()); err != nil {
		panic(err)
	}

	r := engine.CurrentRanking()
	fmt.Println("\nfinal top-10:")
	for i, t := range r.Topics {
		marker := ""
		if t.Pair == pairs.MakeKey("sigmod", "athens") {
			marker = "   <-- the conference stunt"
		}
		fmt.Printf("  %2d. %-28s score=%.4f%s\n", i+1, t.Pair, t.Score, marker)
	}
}
