// Quickstart: feed a small document stream into the enBlogue engine
// through the public API and print the emergent topics it finds — both by
// polling the current ranking and through a live subscription.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"time"

	"enblogue"
)

func main() {
	// The engine consumes (timestamp, docId, tags) tuples and emits ranked
	// emergent topics at every evaluation tick. Unset options keep the
	// paper's defaults (Jaccard, 2-day half-life, hourly ticks).
	engine := enblogue.New(
		enblogue.WithWindow(12, time.Hour),
		enblogue.WithSeedCount(10),
		enblogue.WithSeedWarmup(20),
		enblogue.WithMinCooccurrence(2),
		enblogue.WithTopK(5),
		enblogue.WithUpOnly(),
	)

	// A subscription is the push-based view: every tick's ranking arrives
	// on a channel, independent of other subscribers.
	sub := engine.Subscribe(context.Background(), enblogue.SubBuffer(64))
	done := make(chan struct{})
	go func() {
		defer close(done)
		for rn := range sub.Notifications() {
			r := rn.Ranking()
			if len(r.Topics) > 0 {
				fmt.Printf("%s  top: %s (score %.3f)\n",
					r.At.Format(time.Kitchen), r.Topics[0].Pair, r.Topics[0].Score)
			}
		}
	}()

	start := time.Date(2011, 6, 12, 0, 0, 0, 0, time.UTC)
	id := 0
	emit := func(hour int, minute int, tags ...string) {
		id++
		engine.Consume(&enblogue.Item{
			Time:  start.Add(time.Duration(hour)*time.Hour + time.Duration(minute)*time.Minute),
			DocID: fmt.Sprintf("doc-%04d", id),
			Tags:  tags,
		})
	}

	// Eight hours of steady news chatter: nothing emergent here.
	for h := 0; h < 8; h++ {
		for m := 0; m < 60; m += 5 {
			emit(h, m, "news", "politics")
			emit(h, m+2, "news", "sports")
		}
	}
	// Hours 8-9: a volcano eruption suddenly couples "iceland" with
	// "air-traffic" — the paper's running example. (Background continues,
	// so popularity-based seed selection keeps operating.)
	for h := 8; h < 10; h++ {
		for m := 0; m < 60; m += 5 {
			emit(h, m, "news", "politics")
		}
		for m := 0; m < 60; m += 6 {
			emit(h, m, "news", "iceland", "air-traffic")
		}
	}
	engine.Flush()
	engine.Close()
	<-done

	r := engine.CurrentRanking()
	fmt.Printf("\nemergent topics at %s:\n", r.At.Format(time.Kitchen))
	for i, topic := range r.Topics {
		fmt.Printf("  %d. %-28s score=%.3f (co-occurring in %.0f docs)\n",
			i+1, topic.Pair, topic.Score, topic.Cooccurrence)
	}
}
