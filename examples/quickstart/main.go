// Quickstart: feed a small document stream into the enBlogue engine and
// print the emergent topics it finds.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"time"

	"enblogue/internal/core"
	"enblogue/internal/stream"
)

func main() {
	// The engine consumes (timestamp, docId, tags) tuples and emits ranked
	// emergent topics at every evaluation tick. Zero-value config fields
	// take the paper's defaults (Jaccard, 2-day half-life, hourly ticks).
	engine := core.New(core.Config{
		WindowBuckets:    12,
		WindowResolution: time.Hour,
		SeedCount:        10,
		SeedWarmupDocs:   20,
		MinCooccurrence:  2,
		TopK:             5,
		UpOnly:           true,
	})

	start := time.Date(2011, 6, 12, 0, 0, 0, 0, time.UTC)
	id := 0
	emit := func(hour int, minute int, tags ...string) {
		id++
		engine.Consume(&stream.Item{
			Time:  start.Add(time.Duration(hour)*time.Hour + time.Duration(minute)*time.Minute),
			DocID: fmt.Sprintf("doc-%04d", id),
			Tags:  tags,
		})
	}

	// Eight hours of steady news chatter: nothing emergent here.
	for h := 0; h < 8; h++ {
		for m := 0; m < 60; m += 5 {
			emit(h, m, "news", "politics")
			emit(h, m+2, "news", "sports")
		}
	}
	// Hours 8-9: a volcano eruption suddenly couples "iceland" with
	// "air-traffic" — the paper's running example. (Background continues,
	// so popularity-based seed selection keeps operating.)
	for h := 8; h < 10; h++ {
		for m := 0; m < 60; m += 5 {
			emit(h, m, "news", "politics")
		}
		for m := 0; m < 60; m += 6 {
			emit(h, m, "news", "iceland", "air-traffic")
		}
	}
	engine.Flush()

	r := engine.CurrentRanking()
	fmt.Printf("emergent topics at %s:\n", r.At.Format(time.Kitchen))
	for i, topic := range r.Topics {
		fmt.Printf("  %d. %-28s score=%.3f (co-occurring in %.0f docs)\n",
			i+1, topic.Pair, topic.Score, topic.Cooccurrence)
	}
}
