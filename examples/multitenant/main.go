// Multitenant drives two independent scenarios — the live-tweet stream and
// the historic news archive — through ONE hub in one process, each as a
// named tenant with its own option overrides. The tenants consume
// concurrently, yet each one's final ranking is verified bit-identical to
// a standalone single-engine run of the same scenario: multi-tenancy is
// pure multiplexing, never cross-talk.
//
//	go run ./examples/multitenant
package main

import (
	"context"
	"fmt"
	"os"
	"reflect"
	"sync"
	"time"

	"enblogue"
)

// scenario couples a tenant name with its items and engine options.
type scenario struct {
	tenant string
	items  enblogue.Items
	opts   []enblogue.Option
}

// collect runs items through e and returns every tick's ranking.
func collect(e *enblogue.Engine, items enblogue.Items) []enblogue.Ranking {
	sub := e.Subscribe(context.Background(), enblogue.SubBuffer(8192))
	if err := e.Run(context.Background(), items); err != nil {
		fmt.Fprintf(os.Stderr, "multitenant: run: %v\n", err)
		os.Exit(1)
	}
	var out []enblogue.Ranking
	done := make(chan struct{})
	go func() {
		defer close(done)
		for rn := range sub.Notifications() {
			r := rn.Ranking()
			out = append(out, r)
		}
	}()
	sub.Close()
	<-done
	return out
}

func main() {
	tweets, _ := enblogue.TweetScenario(24 * time.Hour)
	archive, _ := enblogue.ArchiveScenario(time.Date(2007, 8, 1, 0, 0, 0, 0, time.UTC), 10)

	// Hub-wide defaults; each tenant layers its own overrides on top —
	// the tweet stream wants a tight window, the archive a longer one.
	hub := enblogue.NewHub(enblogue.HubDefaults(
		enblogue.WithSeedCount(20),
		enblogue.WithMinCooccurrence(2),
		enblogue.WithTopK(10),
	))
	defer hub.Close()

	scenarios := []scenario{
		{"tweets", tweets, []enblogue.Option{
			enblogue.WithWindow(12, time.Hour), enblogue.WithUpOnly(),
		}},
		{"archive", archive, []enblogue.Option{
			enblogue.WithWindow(48, time.Hour),
		}},
	}

	// Both tenants ingest concurrently in one process.
	results := make([][]enblogue.Ranking, len(scenarios))
	var wg sync.WaitGroup
	for i, sc := range scenarios {
		engine, err := hub.Open(sc.tenant, sc.opts...)
		if err != nil {
			fmt.Fprintf(os.Stderr, "multitenant: open %s: %v\n", sc.tenant, err)
			os.Exit(1)
		}
		wg.Add(1)
		go func(i int, sc scenario, engine *enblogue.Engine) {
			defer wg.Done()
			results[i] = collect(engine, sc.items)
		}(i, sc, engine)
	}
	wg.Wait()

	stats := hub.Stats()
	fmt.Printf("one hub, %d tenants (%v), %d documents total\n\n",
		stats.Tenants, hub.List(), stats.DocsProcessed)

	// Verify isolation: each tenant's ranking stream must be bit-identical
	// to a standalone engine fed the same items with the same options.
	ok := true
	for i, sc := range scenarios {
		standalone := enblogue.New(append([]enblogue.Option{
			enblogue.WithSeedCount(20),
			enblogue.WithMinCooccurrence(2),
			enblogue.WithTopK(10),
		}, sc.opts...)...)
		want := collect(standalone, sc.items)
		standalone.Close()

		verdict := "bit-identical to standalone engine"
		if !reflect.DeepEqual(results[i], want) {
			verdict = "DIVERGED from standalone engine"
			ok = false
		}
		fmt.Printf("tenant %-8s %5d docs, %3d ticks — %s\n",
			sc.tenant+":", len(sc.items), len(results[i]), verdict)
		if last := len(results[i]) - 1; last >= 0 && len(results[i][last].Topics) > 0 {
			top := results[i][last].Topics[0]
			fmt.Printf("  final top topic: %s (score %.3f)\n", top.Pair, top.Score)
		}
	}
	if !ok {
		os.Exit(1)
	}
}
