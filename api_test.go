// Tests of the public enblogue package: the functional-options engine, the
// subscription broker seen through the public surface, and the acceptance
// invariant that the broker's broadcast ranking is bit-identical to
// CurrentRanking for every shard count.
package enblogue_test

import (
	"context"
	"fmt"
	"reflect"
	"testing"
	"time"

	"enblogue"
	"enblogue/internal/persona"
)

// apiStream builds a workload through the public Item type only:
// background chatter plus an injected shift, with enough tag cardinality
// to spread across shards.
func apiStream() enblogue.Items {
	start := time.Date(2011, 6, 12, 0, 0, 0, 0, time.UTC)
	var items enblogue.Items
	id := 0
	add := func(h, m int, tags ...string) {
		id++
		items = append(items, &enblogue.Item{
			Time:  start.Add(time.Duration(h)*time.Hour + time.Duration(m)*time.Minute),
			DocID: fmt.Sprintf("doc-%05d", id),
			Tags:  tags,
		})
	}
	for h := 0; h < 10; h++ {
		for m := 0; m < 60; m += 2 {
			add(h, m, "news", "politics")
			add(h, m, "news", fmt.Sprintf("region%d", (h+m)%7))
		}
	}
	for h := 5; h < 8; h++ {
		for m := 0; m < 60; m += 5 {
			add(h, m, "politics", fmt.Sprintf("scandal%d", m%3))
		}
	}
	// Items must arrive in stream order; interleave by re-sorting.
	for i := 1; i < len(items); i++ {
		for j := i; j > 0 && items[j].Time.Before(items[j-1].Time); j-- {
			items[j], items[j-1] = items[j-1], items[j]
		}
	}
	return items
}

func apiOptions(shards int) []enblogue.Option {
	return []enblogue.Option{
		enblogue.WithWindow(12, time.Hour),
		enblogue.WithSeedCount(10),
		enblogue.WithSeedMinCount(2),
		enblogue.WithSeedWarmup(20),
		enblogue.WithMinCooccurrence(2),
		enblogue.WithTopK(10),
		enblogue.WithShards(shards),
	}
}

// Acceptance: the broker's broadcast ranking must be bit-identical to
// CurrentRanking for every shard count, tick for tick.
func TestBroadcastBitIdenticalToCurrentRankingAllShardCounts(t *testing.T) {
	items := apiStream()
	var reference []enblogue.Ranking
	for _, shards := range []int{1, 2, 4, 8} {
		engine := enblogue.New(apiOptions(shards)...)
		if engine.Shards() != shards {
			t.Fatalf("WithShards(%d) yielded %d shards", shards, engine.Shards())
		}
		sub := engine.Subscribe(context.Background(), enblogue.SubBuffer(4096))
		if err := engine.Run(context.Background(), items); err != nil {
			t.Fatal(err)
		}
		engine.Close()

		var got []enblogue.Ranking
		for rn := range sub.Notifications() {
			r := rn.Ranking()
			got = append(got, r)
		}
		if len(got) == 0 {
			t.Fatalf("shards=%d: no rankings delivered", shards)
		}
		if sub.Dropped() != 0 {
			t.Fatalf("shards=%d: dropped %d frames with a huge buffer", shards, sub.Dropped())
		}
		last := got[len(got)-1]
		cur := engine.CurrentRanking()
		if !reflect.DeepEqual(last, cur) {
			t.Fatalf("shards=%d: broadcast ranking != CurrentRanking\nbroadcast: %+v\ncurrent:   %+v",
				shards, last, cur)
		}
		if reference == nil {
			reference = got
			nonEmpty := false
			for _, r := range reference {
				if len(r.Topics) > 0 {
					nonEmpty = true
				}
			}
			if !nonEmpty {
				t.Fatal("workload produced only empty rankings")
			}
			continue
		}
		if len(got) != len(reference) {
			t.Fatalf("shards=%d: %d ticks vs %d serial", shards, len(got), len(reference))
		}
		for i := range got {
			if !reflect.DeepEqual(got[i], reference[i]) {
				t.Fatalf("shards=%d: tick %d differs from serial:\n%+v\nvs\n%+v",
					shards, i, got[i], reference[i])
			}
		}
	}
}

// A persona subscription through the public API must match the internal
// persona.Registry rerank of the same broadcast topics.
func TestPublicPersonaSubscriptionMatchesRegistry(t *testing.T) {
	profile := &enblogue.Profile{Name: "watcher", Keywords: []string{"scandal"}, Boost: 4}
	engine := enblogue.New(apiOptions(4)...)
	sub := engine.Subscribe(context.Background(),
		enblogue.SubProfile(profile), enblogue.SubBuffer(4096))
	if err := engine.Run(context.Background(), apiStream()); err != nil {
		t.Fatal(err)
	}
	engine.Close()

	var last enblogue.Ranking
	for rn := range sub.Notifications() {
		r := rn.Ranking()
		last = r
	}
	cur := engine.CurrentRanking()
	var topics []persona.Topic
	for _, tp := range cur.Topics {
		topics = append(topics, persona.Topic{Pair: tp.Pair, Score: tp.Score})
	}
	want := persona.Rerank(topics, profile)
	if len(want) != len(last.Topics) {
		t.Fatalf("persona view %d topics, registry %d", len(last.Topics), len(want))
	}
	for i := range want {
		if last.Topics[i].Pair != want[i].Pair || last.Topics[i].Score != want[i].Score {
			t.Errorf("rank %d: (%v, %v) vs registry (%v, %v)",
				i, last.Topics[i].Pair, last.Topics[i].Score, want[i].Pair, want[i].Score)
		}
	}
}

// Run must honour context cancellation without flushing a partial tick.
func TestRunContextCancellation(t *testing.T) {
	engine := enblogue.New(apiOptions(2)...)
	ctx, cancel := context.WithCancel(context.Background())
	n := 0
	src := enblogue.SourceFunc(func(ctx context.Context, emit func(*enblogue.Item)) error {
		for _, it := range apiStream() {
			select {
			case <-ctx.Done():
				return ctx.Err()
			default:
			}
			emit(it)
			n++
			if n == 100 {
				cancel()
			}
		}
		return nil
	})
	if err := engine.Run(ctx, src); err == nil {
		t.Fatal("Run returned nil after cancellation")
	}
	if engine.DocsProcessed() == 0 || engine.DocsProcessed() >= int64(len(apiStream())) {
		t.Errorf("DocsProcessed = %d, want partial consumption", engine.DocsProcessed())
	}
}

// The scenario facades must produce deterministic, ordered item streams
// with ground-truth events.
func TestScenarioFacades(t *testing.T) {
	a1, ev1 := enblogue.TweetScenario(12 * time.Hour)
	a2, ev2 := enblogue.TweetScenario(12 * time.Hour)
	if len(a1) == 0 || len(a1) != len(a2) {
		t.Fatalf("TweetScenario non-deterministic: %d vs %d items", len(a1), len(a2))
	}
	if len(ev1) == 0 || !reflect.DeepEqual(ev1, ev2) {
		t.Fatalf("TweetScenario events differ: %+v vs %+v", ev1, ev2)
	}
	for i := 1; i < len(a1); i++ {
		if a1[i].Time.Before(a1[i-1].Time) {
			t.Fatal("TweetScenario items out of order")
		}
	}
	items, events := enblogue.ArchiveScenario(time.Date(2007, 8, 1, 0, 0, 0, 0, time.UTC), 5)
	if len(items) == 0 || len(events) == 0 {
		t.Fatal("ArchiveScenario empty")
	}
	for _, e := range events {
		if e.Pair == (enblogue.Key{}) || e.Start.IsZero() || !e.End.After(e.Start) {
			t.Errorf("malformed scenario event %+v", e)
		}
	}
}
