package enblogue

import (
	"time"

	"enblogue/internal/core"
)

// Options come in two levels of application:
//
//   - Option (tenant-level) configures one Engine. It applies at New, and
//     per tenant at Hub.Open, where it overrides the hub's defaults.
//   - HubOption (hub-level) configures a Hub at NewHub: engine defaults
//     shared by every tenant (HubDefaults) and hub-wide limits
//     (HubMaxTenants).
//
// Every engine construction path funnels through core.Config normalization,
// so nonsensical settings (negative shards, zero windows, top-k < 1) are
// clamped to the paper's defaults rather than building a wedged engine.

// Option configures an Engine at construction — directly via New, or per
// tenant via Hub.Open. Options replace the raw config struct as the public
// construction surface: unspecified settings keep the paper's defaults, and
// new knobs can be added without breaking callers.
type Option func(*core.Config)

// HubOption configures a Hub at construction (NewHub). Hub-level options
// are distinct from engine-level ones: they describe the registry — shared
// tenant defaults and limits — not any single engine.
type HubOption func(*core.HubConfig)

// HubDefaults sets the engine options every tenant starts from; options
// passed to Hub.Open layer over these per tenant.
func HubDefaults(opts ...Option) HubOption {
	return func(hc *core.HubConfig) {
		for _, o := range opts {
			if o != nil {
				o(&hc.Defaults)
			}
		}
	}
}

// HubMaxTenants caps the number of simultaneously open tenants (Open
// returns an error beyond it). Zero or negative means unlimited — the
// default.
func HubMaxTenants(n int) HubOption {
	return func(hc *core.HubConfig) { hc.MaxTenants = n }
}

// WithWindow sets the sliding statistics window: buckets of the given
// resolution (default 48 × 1 hour).
func WithWindow(buckets int, resolution time.Duration) Option {
	return func(c *core.Config) {
		c.WindowBuckets = buckets
		c.WindowResolution = resolution
	}
}

// WithTickEvery sets the evaluation period in event time (default: one
// window resolution).
func WithTickEvery(d time.Duration) Option {
	return func(c *core.Config) { c.TickEvery = d }
}

// WithSeedCount sets the size of the seed tag set (default 50).
func WithSeedCount(n int) Option {
	return func(c *core.Config) { c.SeedCount = n }
}

// WithSeedMinCount sets the minimum windowed count for seed candidacy
// (default 3).
func WithSeedMinCount(min float64) Option {
	return func(c *core.Config) { c.SeedMinCount = min }
}

// WithSeedWarmup bootstraps the first seed selection after n documents
// instead of waiting for the first tick (default 100).
func WithSeedWarmup(n int) Option {
	return func(c *core.Config) { c.SeedWarmupDocs = n }
}

// WithMaxPairs caps tracked candidate pairs (default 100000).
func WithMaxPairs(n int) Option {
	return func(c *core.Config) { c.MaxPairs = n }
}

// WithTailSketch enables the tiered exact/sketch memory model for
// unbounded tag vocabularies: pairs evicted by the MaxPairs cap are demoted
// into a windowed Count-Min sketch (additive error at most epsilon × tail
// mass with probability 1−delta) plus a Space-Saving heavy-hitter summary
// of topK candidates per shard, and are promoted back into the exact tier —
// counter seeded from the upper-bound estimate, flagged approximate — when
// their estimated count crosses the admission floor. Memory stays bounded
// by MaxPairs + the fixed sketch size no matter how many distinct tags the
// stream carries. Out-of-range epsilon/delta fall back to 0.01, topK < 1 to
// 512. Tier statistics (tailPairs, estimatedErrorBound, promotions, …)
// appear in /v1 stats and Engine.TailStats.
func WithTailSketch(epsilon, delta float64, topK int) Option {
	return func(c *core.Config) {
		c.TailSketch = core.TailSketchConfig{
			Enabled: true,
			Epsilon: epsilon,
			Delta:   delta,
			TopK:    topK,
		}
	}
}

// WithShards partitions the pair space for concurrent tracking and
// parallel tick evaluation. Rankings do not depend on the shard count on a
// sequentially consumed stream, so this is purely a throughput knob
// (default: one shard per available CPU).
func WithShards(n int) Option {
	return func(c *core.Config) { c.Shards = n }
}

// WithMeasure selects the pair correlation measure (default Jaccard).
func WithMeasure(m Measure) Option {
	return func(c *core.Config) { c.Measure = m }
}

// WithDistributionMode switches correlation from set overlap to the
// paper's information-theoretic alternative: pair correlation becomes the
// Jensen–Shannon similarity of the two tags' co-tag usage distributions.
// Overrides WithMeasure.
func WithDistributionMode() Option {
	return func(c *core.Config) { c.DistributionMode = true }
}

// WithPredictor selects the correlation forecaster whose error is the
// shift signal (default moving average).
func WithPredictor(p Predictor) Option {
	return func(c *core.Config) { c.Predictor = p }
}

// WithPredictorConfig tunes the selected predictor.
func WithPredictorConfig(cfg PredictorConfig) Option {
	return func(c *core.Config) { c.PredictorConfig = cfg }
}

// WithHalfLife dampens past prediction errors with the given half-life
// (default 2 days).
func WithHalfLife(d time.Duration) Option {
	return func(c *core.Config) { c.HalfLife = d }
}

// WithMinCooccurrence sets the significance floor for scoring (default 2).
func WithMinCooccurrence(min float64) Option {
	return func(c *core.Config) { c.MinCooccurrence = min }
}

// WithUpOnly restricts shifts to correlation increases.
func WithUpOnly() Option {
	return func(c *core.Config) { c.UpOnly = true }
}

// WithTopK sets the ranking length (default 20).
func WithTopK(k int) Option {
	return func(c *core.Config) { c.TopK = k }
}

// WithEntities merges entity tags into the tag space so tag/entity
// mixtures can emerge as topics. A non-nil tagger additionally annotates
// items that arrive with text but no entities; pass nil to rely on the
// entities already present on each item.
func WithEntities(t *Tagger) Option {
	return func(c *core.Config) {
		c.UseEntities = true
		c.Tagger = t
	}
}

// WithIngestQueue sets the capacity of the bounded ingest ring buffer
// behind Engine.Enqueue (default 8192). Non-positive values restore the
// default.
func WithIngestQueue(size int) Option {
	return func(c *core.Config) { c.IngestQueueSize = size }
}

// WithIngestMaxBatch caps the documents one ingest-queue drain hands to
// the batched consume path, and sizes the runs Engine.Run accumulates
// (default 512, clamped to the queue size).
func WithIngestMaxBatch(n int) Option {
	return func(c *core.Config) { c.IngestMaxBatch = n }
}

// WithIngestFlushInterval bounds how long the ingest drainer waits for a
// partial batch to fill before consuming it anyway (default 2ms).
func WithIngestFlushInterval(d time.Duration) Option {
	return func(c *core.Config) { c.IngestFlushInterval = d }
}

// WithIngestDropOldest switches ingest-queue backpressure from blocking
// producers (the default) to evicting the oldest queued items; evictions
// are counted by Engine.IngestDropped and surfaced in /v1 stats.
func WithIngestDropOldest() Option {
	return func(c *core.Config) { c.IngestDropOldest = true }
}

// DurabilityOption tunes the persistence layer enabled by WithDurability.
type DurabilityOption func(*core.DurabilityConfig)

// WithDurability enables snapshot + write-ahead-log persistence rooted at
// dir: prior state in dir is recovered during New (newest valid snapshot
// plus WAL replay, bit-identical to an engine that never stopped), every
// consumed document is appended to the WAL, and snapshots are written on a
// background ticker and via Engine.Snapshot. On a Hub, each tenant persists
// under its own subdirectory of dir. The directory is created if missing.
func WithDurability(dir string, opts ...DurabilityOption) Option {
	return func(c *core.Config) {
		c.Durability.Dir = dir
		for _, o := range opts {
			if o != nil {
				o(&c.Durability)
			}
		}
	}
}

// SnapshotEvery sets the background snapshot period (default one minute).
// Negative disables the ticker; snapshots then happen only via
// Engine.Snapshot and the WAL alone carries recovery.
func SnapshotEvery(d time.Duration) DurabilityOption {
	return func(c *core.DurabilityConfig) { c.SnapshotEvery = d }
}

// Fsync selects the WAL flush policy (default FsyncInterval: at most one
// sync per second, so a process crash loses nothing and a power loss at
// most one interval).
func Fsync(m FsyncMode) DurabilityOption {
	return func(c *core.DurabilityConfig) { c.Fsync = m }
}

// FsyncEvery sets the FsyncInterval period (default one second).
func FsyncEvery(d time.Duration) DurabilityOption {
	return func(c *core.DurabilityConfig) { c.FsyncEvery = d }
}

// KeepSnapshots sets how many snapshot generations to retain (default 2);
// older snapshots and the WAL segments they cover are pruned after each
// successful snapshot.
func KeepSnapshots(n int) DurabilityOption {
	return func(c *core.DurabilityConfig) { c.KeepSnapshots = n }
}
