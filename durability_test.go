package enblogue_test

import (
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"enblogue"
	"enblogue/internal/stream"
)

// Durability acceptance: an engine that crashes and recovers from its data
// directory (newest snapshot + WAL replay) publishes rankings tick-for-tick
// bit-identical to an engine that never crashed — across both acceptance
// workloads, shard counts, and crash positions that land mid-window, on a
// tick boundary, and inside a consume batch.

// durableOpts builds the standard test durability options: explicit
// snapshots only (no wall-clock ticker — determinism) and no fsync (the
// simulated crash is a process abandon; page-cache writes survive it).
func durableOpts(dir string) enblogue.Option {
	return enblogue.WithDurability(dir,
		enblogue.SnapshotEvery(-1),
		enblogue.Fsync(enblogue.FsyncNeverMode),
	)
}

// crashPoints returns the matrix of crash positions for a workload:
// mid-window (between ticks), tick-boundary (immediately after the first
// item past an hour boundary in the stream's second half), and mid-batch
// (a position that is not a multiple of the feeding batch size).
func crashPoints(items []*stream.Item) map[string]int {
	tickBoundary := len(items) * 2 / 3 // fallback if no boundary found
	for i := len(items) / 2; i < len(items)-1; i++ {
		if !items[i].Time.Truncate(time.Hour).Equal(items[i-1].Time.Truncate(time.Hour)) {
			tickBoundary = i + 1 // crash right after the tick-crossing item
			break
		}
	}
	midBatch := len(items)/2 - len(items)/2%64 + 37 // not a multiple of 64
	return map[string]int{
		"mid-window":    len(items) / 2,
		"tick-boundary": tickBoundary,
		"mid-batch":     midBatch,
	}
}

// crashAndRecover simulates the crash protocol on one workload cell: a
// durable engine consumes items[:crash] in 64-doc batches with a forced
// snapshot partway, then is abandoned mid-flight (no Close — the crash). A
// second engine on the same directory recovers and finishes the stream;
// its recorded rankings are returned.
func crashAndRecover(t *testing.T, items []*stream.Item, dir string, shards, crash int) []enblogue.Ranking {
	t.Helper()
	a := enblogue.New(enblogue.WithShards(shards), durableOpts(dir))
	snapAt := crash / 2
	feed := func(e *enblogue.Engine, lo, hi int) {
		for ; lo < hi; lo += 64 {
			end := lo + 64
			if end > hi {
				end = hi
			}
			e.ConsumeBatch(items[lo:end])
		}
	}
	feed(a, 0, snapAt)
	if err := a.Snapshot(); err != nil {
		t.Fatalf("forced snapshot at %d: %v", snapAt, err)
	}
	feed(a, snapAt, crash)
	// Crash: abandon a without Flush or Close.

	b := enblogue.New(enblogue.WithShards(shards), durableOpts(dir))
	rec := record(b)
	feed(b, crash, len(items))
	b.Flush()
	b.Close()
	return rec.wait()
}

// TestRecoveredEngineBitIdentical is the headline durability proof: for
// every workload × shard count × crash point, the recovered engine's
// post-crash rankings equal — reflect.DeepEqual, scores included — the
// corresponding suffix of the rankings a never-crashed serial engine
// publishes over the full stream.
func TestRecoveredEngineBitIdentical(t *testing.T) {
	for name, items := range equivWorkloads(t) {
		t.Run(name, func(t *testing.T) {
			for _, shards := range []int{1, 8} {
				want := consumeSerial(items, shards)
				if len(want) == 0 {
					t.Fatalf("reference replay of %q published no rankings", name)
				}
				for cpName, crash := range crashPoints(items) {
					t.Run(fmt.Sprintf("shards-%d/crash-%s", shards, cpName), func(t *testing.T) {
						got := crashAndRecover(t, items, t.TempDir(), shards, crash)
						if len(got) == 0 {
							t.Fatal("recovered engine published no rankings after the crash")
						}
						if len(got) > len(want) {
							t.Fatalf("recovered engine published %d rankings, more than the %d-tick reference", len(got), len(want))
						}
						// Ticks fired before the crash (and during the replay
						// inside New, before any subscriber exists) are not
						// recorded; everything after must match the reference
						// suffix exactly, timestamps and scores included.
						diffRankings(t, want[len(want)-len(got):], got)
					})
				}
			}
		})
	}
}

// TestHubRecoveryWithNoiseTenant runs the crash protocol through a Hub:
// the observed tenant crashes and recovers under its own subdirectory
// while a second tenant ingests a different stream concurrently the whole
// time. Tenant isolation must hold through the data directory too — the
// recovered rankings stay bit-identical to the single-engine reference.
func TestHubRecoveryWithNoiseTenant(t *testing.T) {
	workloads := equivWorkloads(t)
	items, noise := workloads["tweets"], workloads["archive"]
	crash := len(items) / 2
	want := consumeSerial(items, 4)
	root := t.TempDir()

	newHub := func() *enblogue.Hub {
		return enblogue.NewHub(enblogue.HubDefaults(
			enblogue.WithShards(4),
			durableOpts(root),
		))
	}
	open := func(h *enblogue.Hub, name string) *enblogue.Engine {
		e, err := h.Open(name)
		if err != nil {
			t.Fatalf("open tenant %q: %v", name, err)
		}
		return e
	}
	startNoise := func(h *enblogue.Hub, lo, hi int) chan struct{} {
		e := open(h, "noise")
		done := make(chan struct{})
		go func() {
			defer close(done)
			for i := lo; i < hi; i++ {
				e.Consume(noise[i])
			}
		}()
		return done
	}

	h1 := newHub()
	noiseDone := startNoise(h1, 0, len(noise)/2)
	main := open(h1, "main")
	main.ConsumeBatch(items[:crash/2])
	if err := main.Snapshot(); err != nil {
		t.Fatalf("snapshot main tenant: %v", err)
	}
	main.ConsumeBatch(items[crash/2 : crash])
	<-noiseDone
	// Crash the whole process: abandon the hub without Close.

	h2 := newHub()
	noiseDone = startNoise(h2, len(noise)/2, len(noise))
	recovered := open(h2, "main")
	rec := record(recovered)
	recovered.ConsumeBatch(items[crash:])
	recovered.Flush()
	<-noiseDone
	noiseEngine := open(h2, "noise")
	if n := noiseEngine.DocsProcessed(); n < int64(len(noise)/2) {
		t.Errorf("noise tenant recovered only %d docs, want at least the pre-crash half (%d)", n, len(noise)/2)
	}
	h2.Close()
	got := rec.wait()
	if len(got) == 0 {
		t.Fatal("recovered tenant published no rankings after the crash")
	}
	diffRankings(t, want[len(want)-len(got):], got)

	// The tenants kept separate subdirectories.
	for _, name := range []string{"main", "noise"} {
		if m, _ := filepath.Glob(filepath.Join(root, name, "wal-*.jsonl")); len(m) == 0 {
			t.Errorf("tenant %q left no WAL segments under its subdirectory", name)
		}
	}
}
