package window_test

import (
	"fmt"
	"time"

	"enblogue/internal/window"
)

func ExampleDecay() {
	// The paper's topic score: the maximum of the current prediction error
	// and past errors dampened with a 2-day half-life.
	d := window.NewDecay(48 * time.Hour)
	t0 := time.Date(2011, 6, 12, 0, 0, 0, 0, time.UTC)

	d.Update(t0, 0.8)                         // a big shift now
	s1 := d.Update(t0.Add(48*time.Hour), 0.1) // small error two days later
	fmt.Printf("after one half-life: %.2f (decayed 0.8 beats current 0.1)\n", s1)

	s2 := d.Update(t0.Add(96*time.Hour), 0.5)
	fmt.Printf("later, fresh 0.5 beats decayed: %.2f\n", s2)
	// Output:
	// after one half-life: 0.40 (decayed 0.8 beats current 0.1)
	// later, fresh 0.5 beats decayed: 0.50
}

func ExampleCounter() {
	c := window.NewCounter(24, time.Hour) // 24-hour sliding window
	t0 := time.Date(2011, 6, 12, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 10; i++ {
		c.Inc(t0.Add(time.Duration(i) * time.Hour))
	}
	fmt.Println("events in window:", c.Value())
	c.Observe(t0.Add(48 * time.Hour)) // two days later: all expired
	fmt.Println("after sliding away:", c.Value())
	// Output:
	// events in window: 10
	// after sliding away: 0
}
