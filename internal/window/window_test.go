package window

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

var t0 = time.Date(2011, 6, 12, 0, 0, 0, 0, time.UTC)

func TestTimeBucketsBasic(t *testing.T) {
	w := NewTimeBuckets(4, time.Minute)
	w.Add(t0, 1)
	w.Add(t0.Add(30*time.Second), 2) // same bucket
	w.Add(t0.Add(time.Minute), 3)
	if got := w.Sum(); got != 6 {
		t.Errorf("Sum = %v, want 6", got)
	}
	if got := w.Count(); got != 3 {
		t.Errorf("Count = %v, want 3", got)
	}
	if got := w.Mean(); got != 2 {
		t.Errorf("Mean = %v, want 2", got)
	}
}

func TestTimeBucketsExpiry(t *testing.T) {
	w := NewTimeBuckets(3, time.Minute)
	w.Add(t0, 10)
	w.Add(t0.Add(1*time.Minute), 20)
	w.Add(t0.Add(2*time.Minute), 30)
	if got := w.Sum(); got != 60 {
		t.Fatalf("Sum = %v, want 60", got)
	}
	// Advancing one bucket expires the t0 bucket.
	w.Observe(t0.Add(3 * time.Minute))
	if got := w.Sum(); got != 50 {
		t.Errorf("after 1 step: Sum = %v, want 50", got)
	}
	// Jumping far beyond the span clears everything.
	w.Observe(t0.Add(100 * time.Minute))
	if got := w.Sum(); got != 0 {
		t.Errorf("after long gap: Sum = %v, want 0", got)
	}
	if got := w.Count(); got != 0 {
		t.Errorf("after long gap: Count = %v, want 0", got)
	}
}

func TestTimeBucketsOutOfOrder(t *testing.T) {
	w := NewTimeBuckets(5, time.Minute)
	w.Add(t0.Add(4*time.Minute), 1)
	// In-window late arrival: counted.
	w.Add(t0.Add(2*time.Minute), 1)
	if got := w.Sum(); got != 2 {
		t.Errorf("late in-window: Sum = %v, want 2", got)
	}
	// Arrival older than the window: dropped.
	w.Add(t0.Add(-10*time.Minute), 5)
	if got := w.Sum(); got != 2 {
		t.Errorf("too-old arrival: Sum = %v, want 2", got)
	}
}

func TestTimeBucketsSeries(t *testing.T) {
	w := NewTimeBuckets(3, time.Minute)
	w.Add(t0, 1)
	w.Add(t0.Add(time.Minute), 2)
	w.Add(t0.Add(2*time.Minute), 3)
	got := w.Series()
	want := []float64{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Series = %v, want %v", got, want)
		}
	}
	w.Add(t0.Add(3*time.Minute), 4)
	got = w.Series()
	want = []float64{2, 3, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Series after slide = %v, want %v", got, want)
		}
	}
}

func TestTimeBucketsSpanRate(t *testing.T) {
	w := NewTimeBuckets(60, time.Second)
	if w.Span() != time.Minute {
		t.Errorf("Span = %v, want 1m", w.Span())
	}
	for i := 0; i < 60; i++ {
		w.Add(t0.Add(time.Duration(i)*time.Second), 2)
	}
	if got := w.Rate(); math.Abs(got-2) > 1e-9 {
		t.Errorf("Rate = %v, want 2", got)
	}
}

func TestTimeBucketsPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero buckets":   func() { NewTimeBuckets(0, time.Second) },
		"neg resolution": func() { NewTimeBuckets(1, -time.Second) },
		"zero half-life": func() { NewDecay(0) },
		"bad alpha":      func() { NewEWMA(1.5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

// Property: for monotone timestamp sequences, the windowed sum equals a
// naive recount of the values whose bucket lies within the last n buckets.
func TestTimeBucketsMatchesNaive(t *testing.T) {
	f := func(seed int64, nEvents uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 8
		res := time.Second
		w := NewTimeBuckets(n, res)
		type ev struct {
			abs int64
			v   float64
		}
		var evs []ev
		cur := t0
		for i := 0; i < int(nEvents); i++ {
			cur = cur.Add(time.Duration(rng.Intn(4000)) * time.Millisecond)
			v := float64(rng.Intn(10))
			w.Add(cur, v)
			evs = append(evs, ev{cur.UnixNano() / int64(res), v})
		}
		if len(evs) == 0 {
			return w.Sum() == 0
		}
		head := evs[len(evs)-1].abs
		var want float64
		for _, e := range evs {
			if e.abs > head-int64(n) {
				want += e.v
			}
		}
		return math.Abs(w.Sum()-want) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCounter(t *testing.T) {
	c := NewCounter(10, time.Second)
	for i := 0; i < 5; i++ {
		c.Inc(t0.Add(time.Duration(i) * time.Second))
	}
	if got := c.Value(); got != 5 {
		t.Errorf("Value = %v, want 5", got)
	}
	c.Observe(t0.Add(30 * time.Second))
	if got := c.Value(); got != 0 {
		t.Errorf("Value after expiry = %v, want 0", got)
	}
	if got := len(c.Series()); got != 10 {
		t.Errorf("Series length = %d, want 10", got)
	}
}

func TestAverage(t *testing.T) {
	a := NewAverage(4, time.Minute)
	a.Add(t0, 10)
	a.Add(t0.Add(time.Minute), 20)
	if got := a.Mean(); got != 15 {
		t.Errorf("Mean = %v, want 15", got)
	}
	if got := a.Sum(); got != 30 {
		t.Errorf("Sum = %v, want 30", got)
	}
	if got := a.Count(); got != 2 {
		t.Errorf("Count = %v, want 2", got)
	}
	a.Observe(t0.Add(time.Hour))
	if got := a.Mean(); got != 0 {
		t.Errorf("Mean after expiry = %v, want 0", got)
	}
}

func TestDecayHalving(t *testing.T) {
	d := NewDecay(2 * 24 * time.Hour) // the paper's ~2-day half-life
	d.Set(t0, 8)
	if got := d.At(t0); got != 8 {
		t.Errorf("At(t0) = %v, want 8", got)
	}
	if got := d.At(t0.Add(2 * 24 * time.Hour)); math.Abs(got-4) > 1e-9 {
		t.Errorf("after one half-life = %v, want 4", got)
	}
	if got := d.At(t0.Add(4 * 24 * time.Hour)); math.Abs(got-2) > 1e-9 {
		t.Errorf("after two half-lives = %v, want 2", got)
	}
	// Decay never rewinds for earlier timestamps.
	if got := d.At(t0.Add(-time.Hour)); got != 8 {
		t.Errorf("before set = %v, want 8", got)
	}
}

func TestDecayUpdateIsMaxOfDecayedHistory(t *testing.T) {
	// Update must equal the brute-force max over the full error history.
	half := time.Hour
	d := NewDecay(half)
	type obs struct {
		at time.Time
		v  float64
	}
	rng := rand.New(rand.NewSource(7))
	var hist []obs
	cur := t0
	for i := 0; i < 200; i++ {
		cur = cur.Add(time.Duration(rng.Intn(120)) * time.Minute)
		v := rng.Float64() * 10
		hist = append(hist, obs{cur, v})
		got := d.Update(cur, v)
		var want float64
		for _, h := range hist {
			decayed := h.v * math.Exp2(-cur.Sub(h.at).Seconds()/half.Seconds())
			if decayed > want {
				want = decayed
			}
		}
		if math.Abs(got-want) > 1e-9*(1+want) {
			t.Fatalf("step %d: Update = %v, brute-force max = %v", i, got, want)
		}
	}
}

func TestDecayZeroBeforeSet(t *testing.T) {
	d := NewDecay(time.Hour)
	if got := d.At(t0); got != 0 {
		t.Errorf("At before any update = %v, want 0", got)
	}
}

func TestEWMA(t *testing.T) {
	e := NewEWMA(0.5)
	if e.Initialized() {
		t.Error("Initialized before Add")
	}
	if got := e.Add(10); got != 10 {
		t.Errorf("first Add = %v, want 10 (seeds with first value)", got)
	}
	if got := e.Add(0); got != 5 {
		t.Errorf("second Add = %v, want 5", got)
	}
	if got := e.Value(); got != 5 {
		t.Errorf("Value = %v, want 5", got)
	}
}

// Property: EWMA output always lies between the min and max of observations.
func TestEWMABounded(t *testing.T) {
	f := func(xs []float64, alphaRaw uint8) bool {
		if len(xs) == 0 {
			return true
		}
		alpha := (float64(alphaRaw%99) + 1) / 100
		e := NewEWMA(alpha)
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
			if x < lo {
				lo = x
			}
			if x > hi {
				hi = x
			}
			v := e.Add(x)
			if v < lo-1e-9 || v > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkTimeBucketsAdd(b *testing.B) {
	w := NewTimeBuckets(3600, time.Second)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w.Add(t0.Add(time.Duration(i)*time.Millisecond), 1)
	}
}

func BenchmarkDecayUpdate(b *testing.B) {
	d := NewDecay(48 * time.Hour)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.Update(t0.Add(time.Duration(i)*time.Second), float64(i%17))
	}
}
