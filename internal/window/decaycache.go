package window

import (
	"math"
	"time"
)

// DecayCache memoizes the decay multiplier exp2(-dt/halfLife) for the last
// (halfLife, dt) it computed. The evaluation tick updates every tracked
// pair's decayed score with the same elapsed duration — one tick period —
// so one exponential per tick serves the entire pair population instead of
// one per pair. The cached factor is the value the uncached path would
// compute (same expression, same rounding), so cached and uncached reads
// are bit-identical.
//
// Not safe for concurrent use; each evaluation worker owns one cache.
type DecayCache struct {
	halfLife time.Duration
	dt       time.Duration
	factor   float64
	set      bool
}

// factorFor returns the decay multiplier for elapsed dt under hl, reusing
// the cached value on a repeat and memoizing otherwise.
func (c *DecayCache) factorFor(hl, dt time.Duration) float64 {
	if dt <= 0 {
		return 1
	}
	if c != nil && c.set && c.halfLife == hl && c.dt == dt {
		return c.factor
	}
	f := math.Exp2(-float64(dt) / float64(hl))
	if c != nil {
		c.halfLife, c.dt, c.factor, c.set = hl, dt, f, true
	}
	return f
}

// AtCached is At with the exponential served from cache; see DecayCache.
// A nil cache degrades to At.
func (d *Decay) AtCached(t time.Time, c *DecayCache) float64 {
	return d.AtCachedNano(t.UnixNano(), c)
}

// AtCachedNano is AtCached taking the time as unix nanoseconds — the
// evaluation tick converts once and shares the integer across every pair.
func (d *Decay) AtCachedNano(nano int64, c *DecayCache) float64 {
	if !d.set || d.value == 0 {
		return 0
	}
	return d.value * c.factorFor(d.halfLife, time.Duration(nano-d.atNano))
}

// UpdateCached is Update with the exponential served from cache; see
// DecayCache. A nil cache degrades to Update.
func (d *Decay) UpdateCached(t time.Time, v float64, c *DecayCache) float64 {
	return d.UpdateCachedNano(t.UnixNano(), v, c)
}

// UpdateCachedNano is UpdateCached taking the time as unix nanoseconds.
func (d *Decay) UpdateCachedNano(nano int64, v float64, c *DecayCache) float64 {
	cur := d.AtCachedNano(nano, c)
	if v > cur {
		cur = v
	}
	d.value = cur
	if !d.set || nano > d.atNano {
		d.atNano = nano
	}
	d.set = true
	return cur
}

// KeepUntilNano returns a conservative unix-nano deadline strictly before
// which At is guaranteed to stay at or above minScore, or 0 when no such
// guarantee can be given (unset value, value already at or below minScore,
// or non-positive minScore). The exact crossing is at dt* = halfLife ·
// log2(value/minScore) past the last update; returning 99% of dt* leaves a
// relative margin that dwarfs the rounding error of the log/exp round-trip,
// so a caller that skips the real At check while now < deadline can never
// skip past an actual crossing. Sweeps use this to avoid recomputing an
// exponential per stale entry per tick: one log2 buys a long run of
// deadline comparisons, and the final expire decision is still made by the
// real At check once the deadline passes.
func (d *Decay) KeepUntilNano(minScore float64) int64 {
	if !d.set || minScore <= 0 || d.value <= minScore {
		return 0
	}
	dt := 0.99 * float64(d.halfLife) * math.Log2(d.value/minScore)
	if dt <= 0 || dt >= math.MaxInt64 {
		return 0
	}
	return d.atNano + int64(dt)
}
