package window

import (
	"fmt"
	"math"
	"time"
)

// CounterArena is a slab allocator for unit-weight sliding-window counters:
// the state of every counter lives in a handful of shared backing slices
// (one bucket slab plus per-slot headers) instead of one heap object per
// counter. A tracker shard that follows a hundred thousand pairs holds one
// CounterArena, not a hundred thousand *Counter allocations — better cache
// locality on the tick-time scan over all slots, and near-zero GC scanning
// (the slabs contain no pointers).
//
// Each slot reproduces Counter/TimeBuckets semantics exactly for unit
// increments: Inc credits the bucket containing t, buckets older than the
// span are lazily zeroed as time advances, increments older than the window
// are dropped. Because every increment adds exactly 1.0, the running total
// stays exact (float64 is exact for integers up to 2^53) and no separate
// event count is needed.
//
// Slots are fixed-size, so freed slots are recycled through a free list.
// Not safe for concurrent use; callers shard and lock around it.
type CounterArena struct {
	res      time.Duration
	nbuckets int
	buckets  []float64 // slot i owns buckets[i*nbuckets : (i+1)*nbuckets]
	heads    []int64   // absolute bucket index of the window head per slot
	totals   []float64 // sum of in-window buckets per slot
	free     []int32   // recycled slot indexes
}

// headUnset marks a slot whose window head has not been initialised.
const headUnset = math.MinInt64

// NewCounterArena returns an arena of sliding counters with the given
// bucket count and resolution. It panics on non-positive parameters, which
// indicate a programming error.
func NewCounterArena(nbuckets int, resolution time.Duration) *CounterArena {
	if nbuckets < 1 {
		panic(fmt.Sprintf("window: bucket count %d < 1", nbuckets))
	}
	if resolution <= 0 {
		panic(fmt.Sprintf("window: resolution %v <= 0", resolution))
	}
	return &CounterArena{res: resolution, nbuckets: nbuckets}
}

// Buckets returns the per-counter bucket count.
func (a *CounterArena) Buckets() int { return a.nbuckets }

// Span returns the window span covered by each counter.
func (a *CounterArena) Span() time.Duration {
	return time.Duration(a.nbuckets) * a.res
}

// Len returns the number of live slots.
func (a *CounterArena) Len() int { return len(a.heads) - len(a.free) }

// Alloc returns a fresh zeroed counter slot.
func (a *CounterArena) Alloc() int32 {
	if n := len(a.free); n > 0 {
		slot := a.free[n-1]
		a.free = a.free[:n-1]
		base := int(slot) * a.nbuckets
		clear(a.buckets[base : base+a.nbuckets])
		a.heads[slot] = headUnset
		a.totals[slot] = 0
		return slot
	}
	slot := int32(len(a.heads))
	a.buckets = append(a.buckets, make([]float64, a.nbuckets)...)
	a.heads = append(a.heads, headUnset)
	a.totals = append(a.totals, 0)
	return slot
}

// Release returns a slot to the free list. The slot must not be used again
// until re-issued by Alloc.
func (a *CounterArena) Release(slot int32) {
	a.free = append(a.free, slot)
}

// bucketIndex maps a timestamp to its absolute bucket number.
func (a *CounterArena) bucketIndex(t time.Time) int64 {
	return t.UnixNano() / int64(a.res)
}

// advance moves slot's window head to cover abs, zeroing buckets that fall
// out of the window — the arena transcription of TimeBuckets.advance.
func (a *CounterArena) advance(slot int32, abs int64) {
	head := a.heads[slot]
	if head == headUnset {
		a.heads[slot] = abs
		return
	}
	if abs <= head {
		return
	}
	n := int64(a.nbuckets)
	base := int(slot) * a.nbuckets
	if abs-head >= n {
		clear(a.buckets[base : base+a.nbuckets])
		a.totals[slot] = 0
		a.heads[slot] = abs
		return
	}
	total := a.totals[slot]
	for b := head + 1; b <= abs; b++ {
		i := base + int(mod(b, n))
		total -= a.buckets[i]
		a.buckets[i] = 0
	}
	a.totals[slot] = total
	a.heads[slot] = abs
}

// Inc records one event at time t in the slot. Events older than the
// current window are dropped; newer events advance the window.
func (a *CounterArena) Inc(slot int32, t time.Time) {
	abs := a.bucketIndex(t)
	a.advance(slot, abs)
	if abs <= a.heads[slot]-int64(a.nbuckets) {
		return // too old: outside the window
	}
	a.buckets[int(slot)*a.nbuckets+int(mod(abs, int64(a.nbuckets)))]++
	a.totals[slot]++
}

// Observe advances the slot's window to time t without recording anything,
// expiring stale buckets.
func (a *CounterArena) Observe(slot int32, t time.Time) {
	a.advance(slot, a.bucketIndex(t))
}

// Value returns the number of events inside the slot's window, as last
// advanced. Call Observe first to expire stale buckets.
func (a *CounterArena) Value(slot int32) float64 { return a.totals[slot] }

// ValueAt advances the slot's window to t and returns the in-window count:
// the common Observe+Value read.
func (a *CounterArena) ValueAt(slot int32, t time.Time) float64 {
	a.advance(slot, a.bucketIndex(t))
	return a.totals[slot]
}

// Series returns the slot's per-bucket counts oldest-first. The slice is
// freshly allocated (Series is a boundary read, not a hot-path one).
func (a *CounterArena) Series(slot int32) []float64 {
	out := make([]float64, a.nbuckets)
	head := a.heads[slot]
	if head == headUnset {
		return out
	}
	n := int64(a.nbuckets)
	base := int(slot) * a.nbuckets
	for i := int64(0); i < n; i++ {
		b := head - (n - 1) + i
		out[i] = a.buckets[base+int(mod(b, n))]
	}
	return out
}
