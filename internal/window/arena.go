package window

import (
	"fmt"
	"math"
	"time"
)

// CounterArena is a slab allocator for unit-weight sliding-window counters:
// the state of every counter lives in a handful of shared backing slices
// (one bucket slab plus per-slot headers) instead of one heap object per
// counter. A tracker shard that follows a hundred thousand pairs holds one
// CounterArena, not a hundred thousand *Counter allocations — better cache
// locality on the tick-time scan over all slots, and near-zero GC scanning
// (the slabs contain no pointers).
//
// The bucket slab is laid out bucket-major: row p holds bucket position p
// of every slot, so buckets[p*stride+slot] is slot's bucket p. The layout
// is chosen for the tick-time walk: callers visit slots in slot order and
// every slot expires the same bucket positions (they share one absolute
// clock), so the expiry scan reads one dense row sequentially instead of
// striding across per-slot sub-slabs one cache line per slot.
//
// Each slot reproduces Counter/TimeBuckets semantics exactly for unit
// increments: Inc credits the bucket containing t, buckets older than the
// span are lazily zeroed as time advances, increments older than the window
// are dropped. Because every increment adds exactly 1.0, the running total
// stays exact (float64 is exact for integers up to 2^53) and no separate
// event count is needed.
//
// Slots are fixed-size, so freed slots are recycled through a free list.
// Not safe for concurrent use; callers shard and lock around it.
type CounterArena struct {
	res      time.Duration
	nbuckets int
	stride   int       // row length: slot capacity of the bucket slab
	buckets  []float64 // bucket-major: buckets[p*stride+slot], see type doc
	heads    []int64   // absolute bucket index of the window head per slot
	totals   []float64 // sum of in-window buckets per slot
	free     []int32   // recycled slot indexes
}

// headUnset marks a slot whose window head has not been initialised.
const headUnset = math.MinInt64

// NewCounterArena returns an arena of sliding counters with the given
// bucket count and resolution. It panics on non-positive parameters, which
// indicate a programming error.
func NewCounterArena(nbuckets int, resolution time.Duration) *CounterArena {
	if nbuckets < 1 {
		panic(fmt.Sprintf("window: bucket count %d < 1", nbuckets))
	}
	if resolution <= 0 {
		panic(fmt.Sprintf("window: resolution %v <= 0", resolution))
	}
	return &CounterArena{res: resolution, nbuckets: nbuckets}
}

// Buckets returns the per-counter bucket count.
func (a *CounterArena) Buckets() int { return a.nbuckets }

// Span returns the window span covered by each counter.
func (a *CounterArena) Span() time.Duration {
	return time.Duration(a.nbuckets) * a.res
}

// Len returns the number of live slots.
func (a *CounterArena) Len() int { return len(a.heads) - len(a.free) }

// grow doubles the slab's slot capacity, re-laying every row at the new
// stride. Amortised over the doubling schedule the per-slot cost is O(1).
func (a *CounterArena) grow() {
	stride := a.stride * 2
	if stride == 0 {
		stride = 64
	}
	slab := make([]float64, a.nbuckets*stride)
	for p := 0; p < a.nbuckets; p++ {
		copy(slab[p*stride:p*stride+len(a.heads)], a.buckets[p*a.stride:p*a.stride+len(a.heads)])
	}
	a.buckets = slab
	a.stride = stride
}

// clearSlot zeroes the slot's column across all bucket rows.
func (a *CounterArena) clearSlot(slot int32) {
	for p, i := 0, int(slot); p < a.nbuckets; p++ {
		a.buckets[i] = 0
		i += a.stride
	}
}

// Alloc returns a fresh zeroed counter slot.
func (a *CounterArena) Alloc() int32 {
	if n := len(a.free); n > 0 {
		slot := a.free[n-1]
		a.free = a.free[:n-1]
		a.clearSlot(slot)
		a.heads[slot] = headUnset
		a.totals[slot] = 0
		return slot
	}
	if len(a.heads) == a.stride {
		a.grow()
	}
	// A never-issued slot's column is zero already: grow() allocates
	// zero-filled slabs and columns past len(heads) are never written.
	slot := int32(len(a.heads))
	a.heads = append(a.heads, headUnset)
	a.totals = append(a.totals, 0)
	return slot
}

// Release returns a slot to the free list. The slot must not be used again
// until re-issued by Alloc.
func (a *CounterArena) Release(slot int32) {
	a.free = append(a.free, slot)
}

// bucketIndex maps a timestamp to its absolute bucket number.
func (a *CounterArena) bucketIndex(t time.Time) int64 {
	return t.UnixNano() / int64(a.res)
}

// BucketIndex exposes the timestamp → absolute bucket mapping so batch
// observers can convert each document's time once and replay increments via
// IncAbs, instead of re-deriving the bucket per (pair, document) increment.
func (a *CounterArena) BucketIndex(t time.Time) int64 { return a.bucketIndex(t) }

// advance moves slot's window head to cover abs, zeroing buckets that fall
// out of the window — the arena transcription of TimeBuckets.advance.
func (a *CounterArena) advance(slot int32, abs int64) {
	head := a.heads[slot]
	if head == headUnset {
		a.heads[slot] = abs
		return
	}
	if abs <= head {
		return
	}
	if a.totals[slot] == 0 {
		// Nothing in the window: every bucket is already zero (only
		// in-window buckets are ever non-zero, and they are non-negative),
		// so the head can jump without touching the slab.
		a.heads[slot] = abs
		return
	}
	n := int64(a.nbuckets)
	s := int(slot)
	if abs-head >= n {
		a.clearSlot(slot)
		a.totals[slot] = 0
		a.heads[slot] = abs
		return
	}
	// One modulo for the first expired bucket, then wrap by comparison:
	// the per-bucket integer division would otherwise dominate this loop.
	// Most expiring buckets are zero (sparse slots), so the stores are
	// guarded — reading a clean cache line is much cheaper than dirtying
	// it, and this loop touches every live slot every tick.
	total := a.totals[slot]
	p := int(mod(head+1, n))
	for b := head + 1; b <= abs; b++ {
		if i := p*a.stride + s; a.buckets[i] != 0 {
			total -= a.buckets[i]
			a.buckets[i] = 0
		}
		if p++; p == a.nbuckets {
			p = 0
		}
	}
	if total != a.totals[slot] {
		a.totals[slot] = total
	}
	a.heads[slot] = abs
}

// Inc records one event at time t in the slot. Events older than the
// current window are dropped; newer events advance the window.
func (a *CounterArena) Inc(slot int32, t time.Time) {
	a.IncAbs(slot, a.bucketIndex(t))
}

// IncAbs is Inc with the timestamp pre-converted through BucketIndex: the
// batch ingest path converts each document's time once and then applies all
// of its pair increments by absolute bucket.
func (a *CounterArena) IncAbs(slot int32, abs int64) {
	a.advance(slot, abs)
	if abs <= a.heads[slot]-int64(a.nbuckets) {
		return // too old: outside the window
	}
	a.buckets[int(mod(abs, int64(a.nbuckets)))*a.stride+int(slot)]++
	a.totals[slot]++
}

// AddAbs records weight w at absolute bucket abs in the slot — IncAbs with
// a weight. It exists for the tier promotion path, which seeds a freshly
// re-admitted pair's counter with its whole sketch-estimated windowed count
// in one call; the weight is always integer-valued there, so the "totals
// stay exact" invariant of the unit-increment arena carries over (float64
// is exact for integers up to 2^53). Non-positive weights are ignored.
func (a *CounterArena) AddAbs(slot int32, abs int64, w float64) {
	if w <= 0 {
		return
	}
	a.advance(slot, abs)
	if abs <= a.heads[slot]-int64(a.nbuckets) {
		return // too old: outside the window
	}
	a.buckets[int(mod(abs, int64(a.nbuckets)))*a.stride+int(slot)] += w
	a.totals[slot] += w
}

// Observe advances the slot's window to time t without recording anything,
// expiring stale buckets.
func (a *CounterArena) Observe(slot int32, t time.Time) {
	a.advance(slot, a.bucketIndex(t))
}

// Value returns the number of events inside the slot's window, as last
// advanced. Call Observe first to expire stale buckets.
func (a *CounterArena) Value(slot int32) float64 { return a.totals[slot] }

// ValueAt advances the slot's window to t and returns the in-window count:
// the common Observe+Value read.
func (a *CounterArena) ValueAt(slot int32, t time.Time) float64 {
	a.advance(slot, a.bucketIndex(t))
	return a.totals[slot]
}

// ValueAtAbs is ValueAt with the timestamp pre-converted through
// BucketIndex: snapshot walks advance every slot to one shared bucket.
func (a *CounterArena) ValueAtAbs(slot int32, abs int64) float64 {
	a.advance(slot, abs)
	return a.totals[slot]
}

// PeekAbs returns the slot's in-window count as of abs, mutating nothing
// when the answer is provably current: an empty window stays empty under
// any advance (only in-window buckets are ever non-zero), and an
// already-advanced window needs no expiry. Snapshot walks touch every
// live slot every tick and many slots are empty or already advanced by an
// increment, so the pure-read paths keep those slots' header cache lines
// clean. Slots that do need expiry fall through to the same advance as
// ValueAtAbs.
func (a *CounterArena) PeekAbs(slot int32, abs int64) float64 {
	t := a.totals[slot]
	if t == 0 {
		return 0
	}
	if abs <= a.heads[slot] {
		return t
	}
	a.advance(slot, abs)
	return a.totals[slot]
}

// Series returns the slot's per-bucket counts oldest-first. The slice is
// freshly allocated (Series is a boundary read, not a hot-path one).
func (a *CounterArena) Series(slot int32) []float64 {
	out := make([]float64, a.nbuckets)
	head := a.heads[slot]
	if head == headUnset {
		return out
	}
	n := int64(a.nbuckets)
	for i := int64(0); i < n; i++ {
		b := head - (n - 1) + i
		out[i] = a.buckets[int(mod(b, n))*a.stride+int(slot)]
	}
	return out
}
