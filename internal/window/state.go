package window

import "fmt"

// This file is the window package's durability surface: full-fidelity
// export/restore of every stateful primitive, used by internal/persist to
// build versioned engine snapshots. Exports are canonical — bucket series
// are emitted oldest-first, independent of the circular buffer's physical
// layout — so two windows holding the same logical state serialize to the
// same bytes regardless of how they arrived there. Restores are exact
// inverses: a restored window is bit-identical in every observable value
// (and in every stored float, so incremental-rounding history round-trips).

// TimeBucketsState is the full serializable state of a TimeBuckets window.
// Buckets and Counts are oldest-first (index len-1 is the head bucket).
type TimeBucketsState struct {
	Buckets []float64
	Counts  []int64
	Head    int64
	HeadSet bool
	Total   float64
	N       int64
}

// ExportState returns the window's state with the bucket series rotated to
// oldest-first order. The slices are freshly allocated.
func (w *TimeBuckets) ExportState() TimeBucketsState {
	s := TimeBucketsState{
		Buckets: make([]float64, len(w.buckets)),
		Counts:  make([]int64, len(w.buckets)),
		Head:    w.head,
		HeadSet: w.headSet,
		Total:   w.total,
		N:       w.n,
	}
	if !w.headSet {
		return s
	}
	n := int64(len(w.buckets))
	for i := int64(0); i < n; i++ {
		slot := int(mod(w.head-(n-1)+i, n))
		s.Buckets[i] = w.buckets[slot]
		s.Counts[i] = w.counts[slot]
	}
	return s
}

// RestoreState overwrites the window with s. The window must have been
// constructed with the same bucket count as the exporter; a length mismatch
// is an error and leaves the window unchanged.
func (w *TimeBuckets) RestoreState(s TimeBucketsState) error {
	if len(s.Buckets) != len(w.buckets) || len(s.Counts) != len(w.buckets) {
		return fmt.Errorf("window: restore with %d/%d buckets into a %d-bucket window",
			len(s.Buckets), len(s.Counts), len(w.buckets))
	}
	for i := range w.buckets {
		w.buckets[i] = 0
		w.counts[i] = 0
	}
	w.headSet = s.HeadSet
	w.total = s.Total
	w.n = s.N
	if !s.HeadSet {
		w.head = 0
		return nil
	}
	w.head = s.Head
	n := int64(len(w.buckets))
	for i := int64(0); i < n; i++ {
		slot := int(mod(s.Head-(n-1)+i, n))
		w.buckets[slot] = s.Buckets[i]
		w.counts[slot] = s.Counts[i]
	}
	return nil
}

// ExportState returns the counter's underlying window state.
func (c *Counter) ExportState() TimeBucketsState { return c.tb.ExportState() }

// RestoreState overwrites the counter's underlying window state.
func (c *Counter) RestoreState(s TimeBucketsState) error { return c.tb.RestoreState(s) }

// DecayState is the dynamic state of a Decay value; the half-life itself is
// configuration and travels separately (the restorer is constructed with it).
type DecayState struct {
	Value  float64
	AtNano int64
	Set    bool
}

// ExportState returns the decay's dynamic state.
func (d *Decay) ExportState() DecayState {
	return DecayState{Value: d.value, AtNano: d.atNano, Set: d.set}
}

// RestoreState overwrites the decay's dynamic state, keeping the configured
// half-life.
func (d *Decay) RestoreState(s DecayState) {
	d.value = s.Value
	d.atNano = s.AtNano
	d.set = s.Set
}

// SlotState is the full serializable state of one CounterArena slot: the
// per-bucket values oldest-first (index len-1 is the head bucket), the
// absolute head index, and the in-window total.
type SlotState struct {
	Vals    []float64
	Head    int64
	HeadSet bool
	Total   float64
}

// ExportSlot returns slot's column with buckets rotated to oldest-first
// order. The slice is freshly allocated. Callers wanting canonical output
// across slots should advance every slot to a shared clock first
// (ValueAtAbs), so all heads agree.
func (a *CounterArena) ExportSlot(slot int32) SlotState {
	head := a.heads[slot]
	if head == headUnset {
		return SlotState{Vals: make([]float64, a.nbuckets)}
	}
	s := SlotState{
		Vals:    make([]float64, a.nbuckets),
		Head:    head,
		HeadSet: true,
		Total:   a.totals[slot],
	}
	n := int64(a.nbuckets)
	for i := int64(0); i < n; i++ {
		s.Vals[i] = a.buckets[int(mod(head-(n-1)+i, n))*a.stride+int(slot)]
	}
	return s
}

// RestoreSlot overwrites slot's column with s. The slot must be freshly
// issued by Alloc (its column zeroed); the arena must have the exporter's
// bucket count. A length mismatch is an error.
func (a *CounterArena) RestoreSlot(slot int32, s SlotState) error {
	if len(s.Vals) != a.nbuckets {
		return fmt.Errorf("window: restore slot with %d buckets into a %d-bucket arena",
			len(s.Vals), a.nbuckets)
	}
	a.clearSlot(slot)
	if !s.HeadSet {
		a.heads[slot] = headUnset
		a.totals[slot] = 0
		return nil
	}
	a.heads[slot] = s.Head
	a.totals[slot] = s.Total
	n := int64(a.nbuckets)
	for i := int64(0); i < n; i++ {
		if v := s.Vals[i]; v != 0 {
			a.buckets[int(mod(s.Head-(n-1)+i, n))*a.stride+int(slot)] = v
		}
	}
	return nil
}
