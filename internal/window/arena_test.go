package window

import (
	"math/rand"
	"testing"
	"time"
)

var arT0 = time.Date(2011, 6, 12, 0, 0, 0, 0, time.UTC)

// The arena must reproduce Counter semantics exactly under an arbitrary
// interleaving of increments, advances, and out-of-order timestamps.
func TestCounterArenaMatchesCounter(t *testing.T) {
	const nbuckets = 12
	res := time.Hour
	a := NewCounterArena(nbuckets, res)
	rng := rand.New(rand.NewSource(3))

	const slots = 8
	refs := make([]*Counter, slots)
	ids := make([]int32, slots)
	for i := range refs {
		refs[i] = NewCounter(nbuckets, res)
		ids[i] = a.Alloc()
	}
	now := arT0
	for step := 0; step < 5000; step++ {
		i := rng.Intn(slots)
		// Mostly forward movement, occasionally out-of-order or a big jump.
		switch rng.Intn(10) {
		case 0:
			now = now.Add(time.Duration(nbuckets+2) * res) // full-window jump
		case 1:
			now = now.Add(-3 * res) // out of order
		default:
			now = now.Add(time.Duration(rng.Intn(90)) * time.Minute)
		}
		refs[i].Inc(now)
		a.Inc(ids[i], now)
		if step%37 == 0 {
			j := rng.Intn(slots)
			refs[j].Observe(now)
			if got, want := a.ValueAt(ids[j], now), refs[j].Value(); got != want {
				t.Fatalf("step %d slot %d: Value = %v, want %v", step, j, got, want)
			}
		}
	}
	for i := range refs {
		refs[i].Observe(now)
		if got, want := a.ValueAt(ids[i], now), refs[i].Value(); got != want {
			t.Fatalf("slot %d: final Value = %v, want %v", i, got, want)
		}
		ref := refs[i].Series()
		got := a.Series(ids[i])
		for b := range ref {
			if got[b] != ref[b] {
				t.Fatalf("slot %d: Series = %v, want %v", i, got, ref)
			}
		}
	}
}

func TestCounterArenaAllocReleaseRecycles(t *testing.T) {
	a := NewCounterArena(4, time.Hour)
	s1 := a.Alloc()
	a.Inc(s1, arT0)
	a.Inc(s1, arT0)
	if got := a.ValueAt(s1, arT0); got != 2 {
		t.Fatalf("Value = %v, want 2", got)
	}
	a.Release(s1)
	if a.Len() != 0 {
		t.Fatalf("Len after release = %d, want 0", a.Len())
	}
	s2 := a.Alloc()
	if s2 != s1 {
		t.Fatalf("expected slot reuse, got %d vs %d", s2, s1)
	}
	// The recycled slot must come back zeroed with no stale window head: an
	// increment far before the slot's former life must be accepted as the
	// new head (value 1, not 3, and not dropped as stale).
	a.Inc(s2, arT0.Add(-100*time.Hour))
	if got := a.ValueAt(s2, arT0.Add(-100*time.Hour)); got != 1 {
		t.Fatalf("recycled slot after old-time Inc = %v, want 1", got)
	}
	if a.Len() != 1 {
		t.Fatalf("Len = %d, want 1", a.Len())
	}
}

func TestCounterArenaGrowth(t *testing.T) {
	a := NewCounterArena(6, time.Minute)
	var ids []int32
	for i := 0; i < 100; i++ {
		id := a.Alloc()
		ids = append(ids, id)
		for j := 0; j <= i%5; j++ {
			a.Inc(id, arT0)
		}
	}
	for i, id := range ids {
		if got, want := a.ValueAt(id, arT0), float64(i%5+1); got != want {
			t.Fatalf("slot %d: Value = %v, want %v", i, got, want)
		}
	}
	if a.Len() != 100 {
		t.Fatalf("Len = %d", a.Len())
	}
}

func TestCounterArenaPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero-buckets":    func() { NewCounterArena(0, time.Hour) },
		"zero-resolution": func() { NewCounterArena(4, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func BenchmarkCounterArenaInc(b *testing.B) {
	a := NewCounterArena(48, time.Hour)
	const slots = 1024
	ids := make([]int32, slots)
	for i := range ids {
		ids[i] = a.Alloc()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Inc(ids[i%slots], arT0.Add(time.Duration(i)*time.Second))
	}
}
