// Package window implements the time-based sliding-window primitives that
// underlie every statistic in enBlogue: bucketed counters, sliding averages,
// and exponential decay with a configurable half-life.
//
// The paper computes tag popularity as "a sliding-window average on the
// document stream" and dampens past prediction errors "using an exponential
// decline factor with a half life of approximately 2 days"; Counter,
// Average, and Decay are the direct implementations of those mechanisms.
package window

import (
	"fmt"
	"math"
	"time"
)

// TimeBuckets is a circular buffer of per-bucket float64 accumulators
// covering a sliding window of span = n × resolution. Adding a value at time
// t credits the bucket containing t; buckets older than the span are lazily
// zeroed as time advances. Reads are exact at bucket granularity.
//
// The zero value is not usable; construct with NewTimeBuckets.
type TimeBuckets struct {
	res     time.Duration
	buckets []float64
	counts  []int64
	// head is the absolute bucket index (unix time / res) stored at slot
	// head % len(buckets). headSet records whether head is initialised.
	head    int64
	headSet bool
	total   float64
	n       int64
}

// NewTimeBuckets returns a window of n buckets of the given resolution.
// It panics if n < 1 or resolution <= 0: both indicate a programming error,
// not a runtime condition.
func NewTimeBuckets(n int, resolution time.Duration) *TimeBuckets {
	if n < 1 {
		panic(fmt.Sprintf("window: bucket count %d < 1", n))
	}
	if resolution <= 0 {
		panic(fmt.Sprintf("window: resolution %v <= 0", resolution))
	}
	return &TimeBuckets{
		res:     resolution,
		buckets: make([]float64, n),
		counts:  make([]int64, n),
	}
}

// Span returns the total duration covered by the window.
func (w *TimeBuckets) Span() time.Duration {
	return time.Duration(len(w.buckets)) * w.res
}

// Resolution returns the bucket width.
func (w *TimeBuckets) Resolution() time.Duration { return w.res }

// bucketIndex maps a timestamp to its absolute bucket number.
func (w *TimeBuckets) bucketIndex(t time.Time) int64 {
	return t.UnixNano() / int64(w.res)
}

// advance moves the window head to cover abs, zeroing any buckets that fall
// out of the window. Out-of-order timestamps that still land inside the
// window are credited to their (old) bucket; ones older than the window are
// ignored by Add.
func (w *TimeBuckets) advance(abs int64) {
	if !w.headSet {
		w.head = abs
		w.headSet = true
		return
	}
	if abs <= w.head {
		return
	}
	steps := abs - w.head
	if steps >= int64(len(w.buckets)) {
		for i := range w.buckets {
			w.buckets[i] = 0
			w.counts[i] = 0
		}
		w.total, w.n = 0, 0
		w.head = abs
		return
	}
	// One modulo for the first expired bucket, then wrap by comparison:
	// a per-bucket integer division would dominate this loop.
	slot := int(mod(w.head+1, int64(len(w.buckets))))
	for b := w.head + 1; b <= abs; b++ {
		w.total -= w.buckets[slot]
		w.n -= w.counts[slot]
		w.buckets[slot] = 0
		w.counts[slot] = 0
		if slot++; slot == len(w.buckets) {
			slot = 0
		}
	}
	w.head = abs
	// Guard against floating-point drift pushing the running total negative.
	if w.n == 0 {
		w.total = 0
	}
}

// Add credits value v to the bucket containing t. Values older than the
// current window are dropped; values newer than the head advance the window.
func (w *TimeBuckets) Add(t time.Time, v float64) {
	abs := w.bucketIndex(t)
	w.advance(abs)
	if abs <= w.head-int64(len(w.buckets)) {
		return // too old: outside the window
	}
	slot := int(mod(abs, int64(len(w.buckets))))
	w.buckets[slot] += v
	w.counts[slot]++
	w.total += v
	w.n++
}

// Observe advances the window to time t without adding anything, expiring
// stale buckets. Useful before reading during quiet periods.
func (w *TimeBuckets) Observe(t time.Time) {
	w.advance(w.bucketIndex(t))
}

// AbsIndex returns the absolute bucket number containing t. Callers
// advancing many same-resolution windows to one timestamp convert once and
// share the result through ObserveAbs.
func (w *TimeBuckets) AbsIndex(t time.Time) int64 { return w.bucketIndex(t) }

// ObserveAbs is Observe taking a pre-computed absolute bucket number.
func (w *TimeBuckets) ObserveAbs(abs int64) { w.advance(abs) }

// Sum returns the sum of all values currently inside the window.
func (w *TimeBuckets) Sum() float64 { return w.total }

// Count returns the number of Add calls currently inside the window.
func (w *TimeBuckets) Count() int64 { return w.n }

// Mean returns the average added value inside the window, or 0 if empty.
func (w *TimeBuckets) Mean() float64 {
	if w.n == 0 {
		return 0
	}
	return w.total / float64(w.n)
}

// Rate returns Sum divided by the window span in seconds: the per-second
// arrival rate of mass into the window.
func (w *TimeBuckets) Rate() float64 {
	return w.total / w.Span().Seconds()
}

// Series returns the per-bucket sums oldest-first. The slice has one entry
// per bucket and is freshly allocated.
func (w *TimeBuckets) Series() []float64 {
	out := make([]float64, len(w.buckets))
	if !w.headSet {
		return out
	}
	n := int64(len(w.buckets))
	for i := int64(0); i < n; i++ {
		b := w.head - (n - 1) + i
		out[i] = w.buckets[int(mod(b, n))]
	}
	return out
}

// mod returns a % m normalised to [0, m). Go's % can return negatives for
// negative operands (pre-1970 timestamps in tests).
func mod(a, m int64) int64 {
	r := a % m
	if r < 0 {
		r += m
	}
	return r
}

// Counter counts events in a sliding window. It is a thin veneer over
// TimeBuckets with unit weights, matching the paper's document counts per
// tag and per tag pair.
type Counter struct {
	tb *TimeBuckets
}

// NewCounter returns a sliding event counter with the given number of
// buckets and bucket resolution.
func NewCounter(n int, resolution time.Duration) *Counter {
	return &Counter{tb: NewTimeBuckets(n, resolution)}
}

// Inc records one event at time t.
func (c *Counter) Inc(t time.Time) { c.tb.Add(t, 1) }

// Observe advances the window to t, expiring old events.
func (c *Counter) Observe(t time.Time) { c.tb.Observe(t) }

// AbsIndex returns the absolute bucket number containing t; see
// TimeBuckets.AbsIndex.
func (c *Counter) AbsIndex(t time.Time) int64 { return c.tb.AbsIndex(t) }

// ObserveAbs is Observe taking a pre-computed absolute bucket number.
func (c *Counter) ObserveAbs(abs int64) { c.tb.ObserveAbs(abs) }

// Value returns the number of events inside the window.
func (c *Counter) Value() float64 { return c.tb.Sum() }

// Rate returns events per second over the window span.
func (c *Counter) Rate() float64 { return c.tb.Rate() }

// Span returns the window span.
func (c *Counter) Span() time.Duration { return c.tb.Span() }

// Series returns per-bucket event counts, oldest first.
func (c *Counter) Series() []float64 { return c.tb.Series() }

// Average maintains a sliding-window average of observed values — the
// paper's popularity measure ("a sliding-window average on the document
// stream").
type Average struct {
	tb *TimeBuckets
}

// NewAverage returns a sliding average over n buckets of the given
// resolution.
func NewAverage(n int, resolution time.Duration) *Average {
	return &Average{tb: NewTimeBuckets(n, resolution)}
}

// Add records value v at time t.
func (a *Average) Add(t time.Time, v float64) { a.tb.Add(t, v) }

// Observe advances the window to t.
func (a *Average) Observe(t time.Time) { a.tb.Observe(t) }

// Mean returns the sliding-window mean, or 0 when the window is empty.
func (a *Average) Mean() float64 { return a.tb.Mean() }

// Sum returns the sliding-window sum.
func (a *Average) Sum() float64 { return a.tb.Sum() }

// Count returns the number of observations inside the window.
func (a *Average) Count() int64 { return a.tb.Count() }

// Decay is an exponentially decaying value with a fixed half-life: after one
// half-life the stored value has halved. It implements the paper's damping
// of past prediction errors ("an exponential decline factor with a half life
// of approximately 2 days").
//
// The zero value is unusable; construct with NewDecay.
//
// Time is carried internally as unix nanoseconds: the detector's evaluation
// tick updates one Decay per tracked pair, and an int64 stamp makes that
// update a plain integer store where a time.Time field would cost a
// monotonic-clock branch on every subtraction and a GC write barrier (for
// the location pointer) on every store.
type Decay struct {
	halfLife time.Duration
	value    float64
	atNano   int64
	set      bool
}

// NewDecay returns a decaying value with the given half-life. It panics if
// halfLife <= 0.
func NewDecay(halfLife time.Duration) *Decay {
	d := MakeDecay(halfLife)
	return &d
}

// MakeDecay returns a decaying value by value, for embedding directly in a
// larger struct (one allocation for the struct instead of one per Decay).
// It panics if halfLife <= 0.
func MakeDecay(halfLife time.Duration) Decay {
	if halfLife <= 0 {
		panic(fmt.Sprintf("window: half-life %v <= 0", halfLife))
	}
	return Decay{halfLife: halfLife}
}

// HalfLife returns the configured half-life.
func (d *Decay) HalfLife() time.Duration { return d.halfLife }

// Value returns the stored (undecayed) value: the value as of the last
// update, which upper-bounds At for any later time. Evaluation loops use it
// as a one-load admission test before paying for the exponential.
func (d *Decay) Value() float64 { return d.value }

// factor returns the decay multiplier for elapsed duration dt. The
// exponent divides the raw nanosecond counts directly — one division
// instead of two Seconds() conversions; the ratio is the same quantity.
func (d *Decay) factor(dt time.Duration) float64 {
	if dt <= 0 {
		return 1
	}
	return math.Exp2(-float64(dt) / float64(d.halfLife))
}

// At returns the decayed value as of time t without modifying state.
// Times before the last update return the stored value undecayed (the decay
// never "rewinds"). A zero stored value short-circuits: the evaluation tick
// calls At once per tracked pair, and pairs that never erred skip the
// exponential entirely.
func (d *Decay) At(t time.Time) float64 {
	return d.AtNano(t.UnixNano())
}

// AtNano is At taking the time as unix nanoseconds — the evaluation tick
// converts the tick time once and shares the integer across every pair.
func (d *Decay) AtNano(nano int64) float64 {
	if !d.set || d.value == 0 {
		return 0
	}
	return d.value * d.factor(time.Duration(nano-d.atNano))
}

// Update decays the stored value to time t and then applies max with v: the
// stored value becomes max(decayed, v). This is exactly the paper's topic
// score maintenance — the maximum of the current prediction error and
// exponentially dampened past errors — computed incrementally in O(1).
// It returns the new value.
func (d *Decay) Update(t time.Time, v float64) float64 {
	return d.UpdateNano(t.UnixNano(), v)
}

// UpdateNano is Update taking the time as unix nanoseconds; see AtNano.
func (d *Decay) UpdateNano(nano int64, v float64) float64 {
	cur := d.AtNano(nano)
	if v > cur {
		cur = v
	}
	d.value = cur
	if !d.set || nano > d.atNano {
		d.atNano = nano
	}
	d.set = true
	return cur
}

// Set overwrites the value at time t, discarding history.
func (d *Decay) Set(t time.Time, v float64) {
	d.value = v
	d.atNano = t.UnixNano()
	d.set = true
}

// EWMA is an exponentially weighted moving average with smoothing factor
// alpha in (0, 1]: next = alpha*x + (1-alpha)*prev. It is time-agnostic
// (per-observation), used by predictors and the burst baseline.
type EWMA struct {
	alpha float64
	value float64
	set   bool
}

// NewEWMA returns an EWMA with the given alpha. It panics if alpha is
// outside (0, 1].
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 || alpha > 1 {
		panic(fmt.Sprintf("window: EWMA alpha %v outside (0,1]", alpha))
	}
	return &EWMA{alpha: alpha}
}

// Add folds observation x into the average and returns the new value.
func (e *EWMA) Add(x float64) float64 {
	if !e.set {
		e.value = x
		e.set = true
		return x
	}
	e.value = e.alpha*x + (1-e.alpha)*e.value
	return e.value
}

// Value returns the current average (0 before any observation).
func (e *EWMA) Value() float64 { return e.value }

// Initialized reports whether at least one observation has been folded in.
func (e *EWMA) Initialized() bool { return e.set }
