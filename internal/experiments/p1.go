package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"enblogue/internal/core"
	"enblogue/internal/entity"
	"enblogue/internal/source"
	"enblogue/internal/stream"
)

// P1Result holds the throughput measurements.
type P1Result struct {
	// EngineRows: docs/sec for (seedCount, windowBuckets) combinations.
	EngineRows []P1EngineRow
	// SharedDocsPerSec and PrivateDocsPerSec compare a 4-plan runner with
	// shared vs per-plan entity tagging — the paper's shared-operator
	// optimisation quantified.
	SharedDocsPerSec  float64
	PrivateDocsPerSec float64
	SharedSpeedup     float64
}

// P1EngineRow is one engine-throughput measurement.
type P1EngineRow struct {
	SeedCount     int
	WindowBuckets int
	DocsPerSec    float64
	ActivePairs   int
}

// p1Docs generates the throughput workload once.
func p1Docs() []source.Document {
	return GenerateArchiveCached(source.ArchiveConfig{
		Seed: 99, Start: time.Date(2007, 1, 1, 0, 0, 0, 0, time.UTC),
		Days: 10, DocsPerDay: 1500,
	})
}

// measureEngine times a full consume of docs through one engine.
func measureEngine(cfg core.Config, docs []source.Document) (docsPerSec float64, activePairs int) {
	items := make([]*stream.Item, len(docs))
	for i := range docs {
		items[i] = docs[i].Item()
	}
	e := core.New(cfg)
	startT := time.Now()
	for _, it := range items {
		e.Consume(it)
	}
	e.Flush()
	el := time.Since(startT).Seconds()
	if el <= 0 {
		el = 1e-9
	}
	return float64(len(docs)) / el, e.ActivePairs()
}

// measurePlans times a 4-plan runner over docs; shared selects whether the
// entity-tagging stage is one shared instance or four private ones.
func measurePlans(docs []source.Document, shared bool) float64 {
	items := make(stream.SliceSource, len(docs))
	for i := range docs {
		it := docs[i].Item()
		it.Text = "Barack Obama visited New York City while flights over Iceland resumed"
		items[i] = it
	}
	g, o := entity.Sample()
	newTagStage := func() stream.Operator {
		tagger := entity.NewTagger(g, o)
		return stream.NewMap(func(it *stream.Item) *stream.Item {
			cp := it.Clone()
			cp.Entities = tagger.Entities(cp.Text)
			return cp
		})
	}
	r := stream.NewRunner(items)
	for p := 0; p < 4; p++ {
		var st stream.Stage
		if shared {
			st = stream.Shared("entity", newTagStage)
		} else {
			st = stream.Private(newTagStage)
		}
		n := 0
		r.Add(&stream.Plan{
			Name:   fmt.Sprintf("plan%d", p),
			Stages: []stream.Stage{st},
			Sink:   stream.SinkFunc(func(*stream.Item) { n++ }),
		})
	}
	startT := time.Now()
	if err := r.Run(context.Background()); err != nil {
		return 0
	}
	el := time.Since(startT).Seconds()
	if el <= 0 {
		el = 1e-9
	}
	return float64(len(docs)) / el
}

// RunP1 measures engine throughput across configurations and the benefit of
// operator sharing across plans.
func RunP1(w io.Writer) (P1Result, error) {
	docs := p1Docs()
	var res P1Result
	for _, seeds := range []int{10, 50, 200} {
		for _, buckets := range []int{24, 48} {
			cfg := core.Config{
				WindowBuckets:    buckets,
				WindowResolution: time.Hour,
				SeedCount:        seeds,
				TopK:             20,
			}
			dps, pairs := measureEngine(cfg, docs)
			res.EngineRows = append(res.EngineRows, P1EngineRow{
				SeedCount: seeds, WindowBuckets: buckets,
				DocsPerSec: dps, ActivePairs: pairs,
			})
		}
	}
	res.SharedDocsPerSec = measurePlans(docs[:5000], true)
	res.PrivateDocsPerSec = measurePlans(docs[:5000], false)
	if res.PrivateDocsPerSec > 0 {
		res.SharedSpeedup = res.SharedDocsPerSec / res.PrivateDocsPerSec
	}

	section(w, "P1", "engine throughput and shared-plan speedup")
	fmt.Fprintf(w, "workload: %d archive documents\n", len(docs))
	tw := table(w)
	fmt.Fprintln(tw, "seeds\twindow-buckets\tdocs/sec\tactive-pairs")
	for _, r := range res.EngineRows {
		fmt.Fprintf(tw, "%d\t%d\t%.0f\t%d\n",
			r.SeedCount, r.WindowBuckets, r.DocsPerSec, r.ActivePairs)
	}
	tw.Flush()
	fmt.Fprintf(w, "\n4 plans, shared entity tagging:  %.0f docs/sec\n", res.SharedDocsPerSec)
	fmt.Fprintf(w, "4 plans, private entity tagging: %.0f docs/sec\n", res.PrivateDocsPerSec)
	fmt.Fprintf(w, "sharing speedup: %.2fx\n", res.SharedSpeedup)
	return res, nil
}

func runP1(w io.Writer) error {
	_, err := RunP1(w)
	return err
}
