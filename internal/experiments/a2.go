package experiments

import (
	"fmt"
	"io"
	"time"

	"enblogue/internal/core"
	"enblogue/internal/metrics"
)

// A2Row is one sensitivity configuration's outcome.
type A2Row struct {
	Dimension string
	Value     string
	Detected  int
	Events    int
	MeanDelay time.Duration
	Precision float64
}

// A2Result is the parameter-sensitivity sweep.
type A2Result struct {
	Rows []A2Row
}

// RunA2 sweeps the engine's operational parameters — seed-set size,
// co-occurrence significance floor, and evaluation tick period — on the
// archive workload. Where A1 ablates the algorithmic choices of Section 3,
// A2 probes how forgiving the system is to deployment tuning: the
// quantities a demo operator would actually turn.
func RunA2(w io.Writer) (A2Result, error) {
	docs, events := sc1Workload(42)
	var res A2Result

	eval := func(dim, val string, mutate func(cfg *core.Config)) {
		cfg := sc1Config()
		mutate(&cfg)
		log := runEngine(cfg, docs)
		s := metrics.Summarize(log.detectionSummary(events, 10))
		res.Rows = append(res.Rows, A2Row{
			Dimension: dim, Value: val,
			Detected: s.Detected, Events: s.Events, MeanDelay: s.MeanDelay,
			Precision: log.meanPrecisionDuringEvents(events, 10),
		})
	}

	for _, seeds := range []int{10, 20, 40, 80, 160} {
		seeds := seeds
		eval("seed-count", fmt.Sprintf("%d", seeds),
			func(cfg *core.Config) { cfg.SeedCount = seeds })
	}
	for _, minCo := range []float64{1, 3, 6, 12} {
		minCo := minCo
		eval("min-cooccurrence", fmt.Sprintf("%.0f", minCo),
			func(cfg *core.Config) { cfg.MinCooccurrence = minCo })
	}
	for _, tick := range []time.Duration{time.Hour, 2 * time.Hour, 6 * time.Hour, 12 * time.Hour} {
		tick := tick
		eval("tick-period", fmtDur(tick),
			func(cfg *core.Config) { cfg.TickEvery = tick })
	}

	section(w, "A2", "parameter sensitivity on the archive workload")
	tw := table(w)
	fmt.Fprintln(tw, "dimension\tvalue\tdetected\tmean-latency\tprecision")
	for _, r := range res.Rows {
		fmt.Fprintf(tw, "%s\t%s\t%d/%d\t%s\t%.3f\n",
			r.Dimension, r.Value, r.Detected, r.Events, fmtDur(r.MeanDelay), r.Precision)
	}
	tw.Flush()
	fmt.Fprintln(w, "\nexpected shape: detection robust to seed count above ~20; latency grows")
	fmt.Fprintln(w, "with tick period; very high significance floors delay small events")
	return res, nil
}

func runA2(w io.Writer) error {
	_, err := RunA2(w)
	return err
}
