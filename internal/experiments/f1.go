package experiments

import (
	"fmt"
	"io"
	"time"

	"enblogue/internal/baseline"
	"enblogue/internal/core"
	"enblogue/internal/pairs"
	"enblogue/internal/predict"
	"enblogue/internal/source"
)

// F1Result captures the quantities behind Figure 1: a popular tag's solo
// peaks leave the pair overlap (and hence enBlogue's score) untouched,
// while the later correlation shift spikes it — and the burst baseline sees
// only rate, so it misses the shift.
type F1Result struct {
	// Series is the hourly data of the figure.
	Series []F1Point
	// ShiftStart is when the injected correlation shift begins.
	ShiftStart time.Time
	// PairScoreDuringSoloBurst is the max enBlogue score of (t1,t2) during
	// t1's solo peaks.
	PairScoreDuringSoloBurst float64
	// PairScoreDuringShift is the max score during the correlation shift.
	PairScoreDuringShift float64
	// ShiftDetectedAt is when the pair first topped the enBlogue ranking.
	ShiftDetectedAt time.Time
	// ShiftDetected reports whether it ever did.
	ShiftDetected bool
	// BaselineFlaggedSoloBurst: burst detector fires on t1's solo peak (it
	// should — that's what it is built for).
	BaselineFlaggedSoloBurst bool
	// BaselineFlaggedShift: burst detector fires on either tag during the
	// correlation shift (it should NOT — total rates barely move).
	BaselineFlaggedShift bool
}

// F1Point is one hour of the figure's series.
type F1Point struct {
	Hour         int
	T1Docs       int
	T2Docs       int
	Intersection int
	Jaccard      float64
	PairScore    float64
	T1Burst      bool
}

const (
	f1Hours      = 48
	f1T1Base     = 40 // docs/hour carrying t1 only
	f1T2Base     = 8  // docs/hour carrying t2 only
	f1Overlap    = 2  // docs/hour carrying both (background correlation)
	f1PeakRate   = 120
	f1ShiftRate  = 12 // joint docs/hour during the correlation shift
	f1Peak1Start = 10
	f1PeakLen    = 3
	f1Peak2Start = 28
	f1ShiftHour  = 38
	f1ShiftLen   = 6
)

// f1Workload builds the Figure-1 stream: hour-by-hour documents over tags
// t1 (popular, with two solo peaks), t2 (small, steady), their overlap
// (steady, then shifting), and background chatter that keeps the seed
// statistics realistic.
func f1Workload(start time.Time) (docs []source.Document, truth [][3]int) {
	id := 0
	emit := func(h, i int, tags ...string) {
		at := start.Add(time.Duration(h)*time.Hour + time.Duration(i*librandStep(h, i))*time.Second)
		id++
		docs = append(docs, source.Document{
			Time: at, ID: fmt.Sprintf("f1-%06d", id), Tags: tags, Source: "f1",
		})
	}
	truth = make([][3]int, f1Hours)
	for h := 0; h < f1Hours; h++ {
		t1 := f1T1Base
		if (h >= f1Peak1Start && h < f1Peak1Start+f1PeakLen) ||
			(h >= f1Peak2Start && h < f1Peak2Start+f1PeakLen) {
			t1 = f1PeakRate
		}
		t2 := f1T2Base
		both := f1Overlap
		if h >= f1ShiftHour && h < f1ShiftHour+f1ShiftLen {
			both = f1ShiftRate
			// The shift converts t2's solo documents into joint documents:
			// t2's total stays flat, exactly the paper's point that the
			// individual frequencies explain nothing.
			t2 = f1T2Base + f1Overlap - both
			if t2 < 0 {
				t2 = 0
			}
		}
		for i := 0; i < t1; i++ {
			emit(h, i, "t1", "chatter")
		}
		for i := 0; i < t2; i++ {
			emit(h, i, "t2", "misc")
		}
		for i := 0; i < both; i++ {
			emit(h, i, "t1", "t2")
		}
		// Background so seeds and doc totals are realistic.
		for i := 0; i < 30; i++ {
			emit(h, i, "news", fmt.Sprintf("bg%d", i%5))
		}
		truth[h] = [3]int{t1 + both, t2 + both, both}
	}
	source.SortDocs(docs)
	return docs, truth
}

// librandStep spreads same-hour documents over the hour deterministically.
func librandStep(h, i int) int { return (h*31+i*17)%50 + 1 }

// RunF1 executes the Figure-1 experiment and returns its result.
func RunF1(w io.Writer) (F1Result, error) {
	start := time.Date(2011, 6, 1, 0, 0, 0, 0, time.UTC)
	docs, truth := f1Workload(start)
	pair := pairs.MakeKey("t1", "t2")

	// enBlogue engine, hourly ticks over a 6-hour window.
	log := runEngine(core.Config{
		WindowBuckets:    6,
		WindowResolution: time.Hour,
		TickEvery:        time.Hour,
		SeedCount:        10,
		SeedMinCount:     3,
		SeedWarmupDocs:   50,
		Predictor:        predict.KindMovingAverage,
		PredictorConfig:  predict.Config{Window: 4},
		MinCooccurrence:  3,
		TopK:             10,
		HalfLife:         12 * time.Hour,
		UpOnly:           true, // the paper scores "sudden ... increases"
	}, docs)

	// Burst baseline on the identical stream with hourly ticks. A 1-hour
	// rate window keeps it sensitive to hourly peaks (a wide window would
	// dilute them — and hide the baseline's genuine strength).
	bd := baseline.NewBurstDetector(baseline.Config{
		Buckets: 1, Resolution: time.Hour, Alpha: 0.3, Threshold: 2.5, MinCount: 10,
	})
	burstByHour := make(map[int]map[string]bool, f1Hours)
	next := start.Add(time.Hour)
	hour := 0
	for i := range docs {
		for !next.After(docs[i].Time) {
			// Tick just inside the completing hour: at the exact boundary
			// the 1-bucket window would already have rotated to empty.
			bs := bd.Tick(next.Add(-time.Millisecond))
			m := map[string]bool{}
			for _, b := range bs {
				m[b.Tag] = true
			}
			burstByHour[hour] = m
			hour++
			next = next.Add(time.Hour)
		}
		bd.Observe(docs[i].Time, docs[i].Tags)
	}

	res := F1Result{ShiftStart: start.Add(f1ShiftHour * time.Hour)}
	scoreAt := make(map[int]float64, len(log.rankings))
	for _, r := range log.rankings {
		h := int(r.At.Sub(start) / time.Hour)
		for _, t := range r.Topics {
			if t.Pair == pair {
				scoreAt[h] = t.Score
			}
		}
	}
	for h := 0; h < f1Hours; h++ {
		p := F1Point{
			Hour:         h,
			T1Docs:       truth[h][0],
			T2Docs:       truth[h][1],
			Intersection: truth[h][2],
			PairScore:    scoreAt[h+1], // tick at end of hour h lands in hour h+1 slot
			T1Burst:      burstByHour[h]["t1"],
		}
		union := float64(p.T1Docs + p.T2Docs - p.Intersection)
		if union > 0 {
			p.Jaccard = float64(p.Intersection) / union
		}
		res.Series = append(res.Series, p)

		inSolo := (h >= f1Peak1Start && h < f1Peak1Start+f1PeakLen+2) ||
			(h >= f1Peak2Start && h < f1Peak2Start+f1PeakLen+2)
		inShift := h >= f1ShiftHour && h < f1ShiftHour+f1ShiftLen+2
		if inSolo && p.PairScore > res.PairScoreDuringSoloBurst {
			res.PairScoreDuringSoloBurst = p.PairScore
		}
		if inShift && p.PairScore > res.PairScoreDuringShift {
			res.PairScoreDuringShift = p.PairScore
		}
		if inSolo && burstByHour[h]["t1"] {
			res.BaselineFlaggedSoloBurst = true
		}
		if inShift && (burstByHour[h]["t1"] || burstByHour[h]["t2"]) {
			res.BaselineFlaggedShift = true
		}
	}
	if at, ok := log.firstTopK(pair, 1); ok && !at.Before(res.ShiftStart) {
		res.ShiftDetected = true
		res.ShiftDetectedAt = at
	}

	// Print the figure's series.
	section(w, "F1", "shift in correlation of two tags (paper Figure 1)")
	tw := table(w)
	fmt.Fprintln(tw, "hour\t|t1|\t|t2|\t|t1∩t2|\tjaccard\tenblogue-score\tt1-burst")
	for _, p := range res.Series {
		fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%.4f\t%.4f\t%v\n",
			p.Hour, p.T1Docs, p.T2Docs, p.Intersection, p.Jaccard, p.PairScore, p.T1Burst)
	}
	tw.Flush()
	fmt.Fprintf(w, "\nsolo-burst max pair score: %.4f\n", res.PairScoreDuringSoloBurst)
	fmt.Fprintf(w, "shift max pair score:      %.4f\n", res.PairScoreDuringShift)
	if res.ShiftDetected {
		fmt.Fprintf(w, "shift first ranked #1 at:  %s (+%s after shift start)\n",
			res.ShiftDetectedAt.Format(time.RFC3339),
			fmtDur(res.ShiftDetectedAt.Sub(res.ShiftStart)))
	} else {
		fmt.Fprintln(w, "shift never ranked #1")
	}
	fmt.Fprintf(w, "baseline flags t1 solo peak: %v  |  baseline flags shift: %v\n",
		res.BaselineFlaggedSoloBurst, res.BaselineFlaggedShift)
	return res, nil
}

func runF1(w io.Writer) error {
	_, err := RunF1(w)
	return err
}
