package experiments

import (
	"fmt"
	"io"
	"time"

	"enblogue/internal/core"
	"enblogue/internal/metrics"
	"enblogue/internal/pairs"
	"enblogue/internal/persona"
	"enblogue/internal/predict"
	"enblogue/internal/rank"
	"enblogue/internal/source"
)

// sc1Config is the engine configuration used by the archive show case and
// reused by the ablation as its reference point.
func sc1Config() core.Config {
	return core.Config{
		WindowBuckets:    48,
		WindowResolution: time.Hour,
		TickEvery:        2 * time.Hour,
		SeedCount:        40,
		SeedMinCount:     3,
		Predictor:        predict.KindMovingAverage,
		PredictorConfig:  predict.Config{Window: 6},
		MinCooccurrence:  3,
		TopK:             15,
		UpOnly:           true, // paper: "sudden (but significant) increases"
	}
}

// sc1Workload generates the synthetic 25-day archive with the scripted
// historic events.
func sc1Workload(seed int64) ([]source.Document, []source.Event) {
	start := time.Date(2007, 8, 1, 0, 0, 0, 0, time.UTC)
	events := source.HistoricEvents(start)
	docs := GenerateArchiveCached(source.ArchiveConfig{
		Seed: seed, Start: start, Days: 25, DocsPerDay: 240, Events: events,
	})
	return docs, events
}

// SC1Result is show case 1's quantitative outcome.
type SC1Result struct {
	Latencies []metrics.Latency
	Summary   metrics.Summary
	// MeanPrecision is precision@|active| averaged over event-active ticks.
	MeanPrecision float64
}

// RunSC1 replays the synthetic archive and measures how enBlogue recovers
// the injected historic events.
func RunSC1(w io.Writer) (SC1Result, error) {
	docs, events := sc1Workload(42)
	log := runEngine(sc1Config(), docs)

	res := SC1Result{
		Latencies:     log.detectionSummary(events, 10),
		MeanPrecision: log.meanPrecisionDuringEvents(events, 10),
	}
	res.Summary = metrics.Summarize(res.Latencies)

	section(w, "SC1", "revisiting historic events — synthetic NYT archive replay")
	fmt.Fprintf(w, "archive: %d documents over 25 days; %d injected events; top-k=10\n",
		len(docs), len(events))
	tw := table(w)
	fmt.Fprintln(tw, "event\tpair\tstart\tdetected\tlatency\tbest-rank")
	for _, ev := range events {
		var row metrics.Latency
		for _, l := range res.Latencies {
			if l.ID == ev.Pair().String() {
				row = l
			}
		}
		best := log.bestRank(ev.Pair())
		det, lat := "no", "-"
		if row.Detected {
			det, lat = "yes", fmtDur(row.Delay)
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%s\t%d\n",
			ev.Name, ev.Pair(), ev.Start.Format("Jan 02 15:04"), det, lat, best)
	}
	tw.Flush()
	fmt.Fprintf(w, "\ndetected %d/%d events; mean latency %s; mean precision during events %.3f\n",
		res.Summary.Detected, res.Summary.Events, fmtDur(res.Summary.MeanDelay), res.MeanPrecision)
	return res, nil
}

func runSC1(w io.Writer) error {
	_, err := RunSC1(w)
	return err
}

// SC2Result is show case 2's outcome: the SIGMOD/Athens rank trajectory.
type SC2Result struct {
	Pair       pairs.Key
	EventStart time.Time
	// TimeToTop10 is how long after the happening started the pair entered
	// the top 10; -1 when it never did.
	TimeToTop10 time.Duration
	Reached     bool
	// BestRank is the best rank achieved (0-based).
	BestRank int
	// Trajectory holds (tick, rank) samples around the event.
	Trajectory []trajPoint
}

// RunSC2 simulates the live Twitter demo with the scripted SIGMOD/Athens
// surge and reports the pair's climb through the ranking.
func RunSC2(w io.Writer) (SC2Result, error) {
	span := 48 * time.Hour
	cfg := source.TweetConfig{
		Seed:            7,
		Start:           time.Date(2011, 6, 12, 0, 0, 0, 0, time.UTC),
		Span:            span,
		TweetsPerMinute: 20,
		Happenings:      source.SIGMODAthensScenario(span),
	}
	docs := GenerateTweetsCached(cfg)
	events := cfg.Events()
	var sigmod source.Event
	for _, e := range events {
		if e.Name == "sigmod-athens" {
			sigmod = e
		}
	}

	log := runEngine(core.Config{
		WindowBuckets:    24,
		WindowResolution: time.Hour,
		TickEvery:        time.Hour,
		SeedCount:        30,
		SeedMinCount:     5,
		Predictor:        predict.KindMovingAverage,
		PredictorConfig:  predict.Config{Window: 4},
		MinCooccurrence:  3,
		TopK:             10,
		UpOnly:           true,
	}, docs)

	res := SC2Result{Pair: sigmod.Pair(), EventStart: sigmod.Start, TimeToTop10: -1}
	res.BestRank = log.bestRank(res.Pair)
	if at, ok := log.firstTopK(res.Pair, 10); ok {
		res.Reached = true
		res.TimeToTop10 = at.Sub(sigmod.Start)
		if res.TimeToTop10 < 0 {
			res.TimeToTop10 = 0
		}
	}
	res.Trajectory = log.rankTrajectory(res.Pair)

	section(w, "SC2", "live data time lapse — SIGMOD/Athens surge")
	fmt.Fprintf(w, "stream: %d tweets over %s; happening starts %s\n",
		len(docs), span, sigmod.Start.Format(time.RFC3339))
	tw := table(w)
	fmt.Fprintln(tw, "tick\toffset-from-event\trank\tscore")
	for _, p := range res.Trajectory {
		if p.Rank < 0 && p.At.Before(sigmod.Start) {
			continue // uneventful warm-up ticks
		}
		fmt.Fprintf(tw, "%s\t%+.1fh\t%d\t%.4f\n",
			p.At.Format("15:04"), p.At.Sub(sigmod.Start).Hours(), p.Rank, p.Score)
	}
	tw.Flush()
	if res.Reached {
		fmt.Fprintf(w, "\nsigmod+athens reached top-10 %s after surge start (best rank %d)\n",
			fmtDur(res.TimeToTop10), res.BestRank)
	} else {
		fmt.Fprintln(w, "\nsigmod+athens never reached top-10")
	}
	return res, nil
}

func runSC2(w io.Writer) error {
	_, err := RunSC2(w)
	return err
}

// SC3Result quantifies personalization: the same ranking viewed by three
// users diverges in order and content.
type SC3Result struct {
	// Lists maps profile name → ranked pair IDs.
	Lists map[string][]string
	// TauVsDefault maps profile name → Kendall tau against the default view.
	TauVsDefault map[string]float64
	// OverlapVsDefault maps profile name → shared-ID fraction.
	OverlapVsDefault map[string]float64
}

// RunSC3 applies three user profiles to the show-case-2 stream's final
// ranking and measures how the views diverge.
func RunSC3(w io.Writer) (SC3Result, error) {
	span := 48 * time.Hour
	cfg := source.TweetConfig{
		Seed:            7,
		Start:           time.Date(2011, 6, 12, 0, 0, 0, 0, time.UTC),
		Span:            span,
		TweetsPerMinute: 20,
		Happenings:      source.SIGMODAthensScenario(span),
	}
	docs := GenerateTweetsCached(cfg)
	log := runEngine(core.Config{
		WindowBuckets:    24,
		WindowResolution: time.Hour,
		TickEvery:        time.Hour,
		SeedCount:        30,
		SeedMinCount:     5,
		Predictor:        predict.KindMovingAverage,
		PredictorConfig:  predict.Config{Window: 4},
		MinCooccurrence:  3,
		TopK:             10,
		UpOnly:           true,
	}, docs)
	if len(log.rankings) == 0 {
		return SC3Result{}, fmt.Errorf("experiments: SC3 produced no rankings")
	}
	// Use the tick at the surge's end, where both happenings score: the
	// richest ranking of the stream.
	var pick core.Ranking
	target := cfg.Start.Add(span/2 + span/8)
	for _, r := range log.rankings {
		if !r.At.After(target) {
			pick = r
		}
	}
	var topics []persona.Topic
	for _, t := range pick.Topics {
		topics = append(topics, persona.Topic{Pair: t.Pair, Score: t.Score})
	}

	reg := persona.NewRegistry()
	reg.Set(&persona.Profile{Name: "default"})
	reg.Set(&persona.Profile{Name: "db-researcher", Keywords: []string{"sigmod", "athens"}, Boost: 5})
	// The traveller uses an exclusive profile: non-matching topics are
	// dropped entirely ("completely different ... emergent topics").
	reg.Set(&persona.Profile{Name: "traveller", Keywords: []string{"volcano", "air-traffic", "flight"}, Boost: 5, Exclusive: true})

	views := reg.RerankAll(topics)
	toList := func(ts []persona.Topic) rank.List {
		l := make(rank.List, len(ts))
		for i, t := range ts {
			l[i] = rank.Entry{ID: t.Pair.String(), Score: t.Score}
		}
		return l
	}
	def := toList(views["default"])

	res := SC3Result{
		Lists:            map[string][]string{},
		TauVsDefault:     map[string]float64{},
		OverlapVsDefault: map[string]float64{},
	}
	for name, ts := range views {
		l := toList(ts)
		res.Lists[name] = l.IDs()
		res.TauVsDefault[name] = rank.KendallTau(def, l)
		res.OverlapVsDefault[name] = rank.Overlap(def, l)
	}

	section(w, "SC3", "personalization — three users, one stream")
	fmt.Fprintf(w, "ranking tick: %s; %d topics\n", pick.At.Format(time.RFC3339), len(topics))
	tw := table(w)
	fmt.Fprintln(tw, "profile\ttop-5\tkendall-tau\toverlap")
	for _, name := range sortedKeys(res.Lists) {
		ids := res.Lists[name]
		if len(ids) > 5 {
			ids = ids[:5]
		}
		fmt.Fprintf(tw, "%s\t%v\t%.3f\t%.3f\n",
			name, ids, res.TauVsDefault[name], res.OverlapVsDefault[name])
	}
	tw.Flush()
	return res, nil
}

func runSC3(w io.Writer) error {
	_, err := RunSC3(w)
	return err
}
