package experiments

import (
	"fmt"
	"io"
	"time"

	"enblogue/internal/core"
	"enblogue/internal/metrics"
	"enblogue/internal/pairs"
	"enblogue/internal/predict"
)

// A1Row is one ablation configuration's outcome on the SC1 workload.
type A1Row struct {
	Dimension string // "measure", "predictor", or "half-life"
	Value     string
	Detected  int
	Events    int
	MeanDelay time.Duration
	Precision float64
}

// A1Result is the full ablation sweep.
type A1Result struct {
	Rows []A1Row
}

// RunA1 sweeps the design choices Section 3 leaves open — correlation
// measure, prediction model, and damping half-life — on the archive
// workload, holding everything else at the SC1 reference configuration.
func RunA1(w io.Writer) (A1Result, error) {
	docs, events := sc1Workload(42)
	var res A1Result

	eval := func(dim, val string, mutate func(cfg *core.Config)) {
		cfg := sc1Config()
		mutate(&cfg)
		log := runEngine(cfg, docs)
		ls := log.detectionSummary(events, 10)
		s := metrics.Summarize(ls)
		res.Rows = append(res.Rows, A1Row{
			Dimension: dim, Value: val,
			Detected: s.Detected, Events: s.Events,
			MeanDelay: s.MeanDelay,
			Precision: log.meanPrecisionDuringEvents(events, 10),
		})
	}

	for _, m := range pairs.AllMeasures() {
		m := m
		eval("measure", m.String(), func(cfg *core.Config) { cfg.Measure = m })
	}
	for _, k := range predict.AllKinds() {
		k := k
		eval("predictor", k.String(), func(cfg *core.Config) { cfg.Predictor = k })
	}
	for _, hl := range []time.Duration{12 * time.Hour, 48 * time.Hour, 96 * time.Hour} {
		hl := hl
		eval("half-life", fmtDur(hl), func(cfg *core.Config) { cfg.HalfLife = hl })
	}

	section(w, "A1", "ablation on the archive workload (reference: jaccard + ma + 48h)")
	tw := table(w)
	fmt.Fprintln(tw, "dimension\tvalue\tdetected\tmean-latency\tprecision")
	for _, r := range res.Rows {
		fmt.Fprintf(tw, "%s\t%s\t%d/%d\t%s\t%.3f\n",
			r.Dimension, r.Value, r.Detected, r.Events, fmtDur(r.MeanDelay), r.Precision)
	}
	tw.Flush()
	return res, nil
}

func runA1(w io.Writer) error {
	_, err := RunA1(w)
	return err
}
