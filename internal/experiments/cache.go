package experiments

import (
	"fmt"
	"sync"

	"enblogue/internal/source"
)

// tweetCache memoises generated tweet streams: SC2, SC3 and the benchmarks
// replay the identical scripted scenario, and generation dominates their
// runtime otherwise. Generators are deterministic, so caching is safe.
var tweetCache sync.Map // string → []source.Document

// GenerateTweetsCached is source.GenerateTweets behind a process-wide cache.
// Callers must not mutate the returned slice.
func GenerateTweetsCached(cfg source.TweetConfig) []source.Document {
	key := fmt.Sprintf("%+v", cfg)
	if v, ok := tweetCache.Load(key); ok {
		return v.([]source.Document)
	}
	docs := source.GenerateTweets(cfg)
	tweetCache.Store(key, docs)
	return docs
}

// archiveCache memoises the SC1/A1 archive for the same reason.
var archiveCache sync.Map // string → []source.Document

// GenerateArchiveCached is source.GenerateArchive behind a process-wide
// cache. Callers must not mutate the returned slice.
func GenerateArchiveCached(cfg source.ArchiveConfig) []source.Document {
	key := fmt.Sprintf("%+v", cfg)
	if v, ok := archiveCache.Load(key); ok {
		return v.([]source.Document)
	}
	docs := source.GenerateArchive(cfg)
	archiveCache.Store(key, docs)
	return docs
}
