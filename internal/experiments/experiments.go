// Package experiments regenerates every evaluation artifact of the paper:
// Figure 1 (the correlation-shift illustration), the three demonstration
// show cases of Section 5 as quantitative experiments, the implicit
// comparison against burst-based trend detection, plus engine-throughput
// and ablation studies. Each experiment prints a table or series to a
// writer and returns a structured result that the test suite asserts on.
//
// See DESIGN.md §4 for the experiment index.
package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"
	"text/tabwriter"
	"time"

	"enblogue/internal/core"
	"enblogue/internal/metrics"
	"enblogue/internal/pairs"
	"enblogue/internal/source"
)

// Experiment is one reproducible evaluation artifact.
type Experiment struct {
	ID   string
	Name string
	Run  func(w io.Writer) error
}

// All lists every experiment in paper order. cmd/experiments iterates this.
var All = []Experiment{
	{"F1", "Figure 1: shift in tag-pair correlation vs solo burst", runF1},
	{"SC1", "Show case 1: revisiting historic events (archive replay)", runSC1},
	{"SC2", "Show case 2: live data — SIGMOD/Athens time lapse", runSC2},
	{"SC3", "Show case 3: personalization", runSC3},
	{"B1", "Baseline: enBlogue vs TwitterMonitor-style burst detection", runB1},
	{"P1", "Performance: engine throughput and plan sharing", runP1},
	{"A1", "Ablation: measures, predictors, half-life", runA1},
	{"A2", "Sensitivity: seed count, significance floor, tick period", runA2},
	{"E1", "Entity tagging: accuracy and throughput", runE1},
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, bool) {
	for _, e := range All {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// tickLog collects every ranking an engine emits.
type tickLog struct {
	rankings []core.Ranking
}

// runEngine feeds docs through a fresh engine with cfg and returns the tick
// log, collected through a broker subscription.
func runEngine(cfg core.Config, docs []source.Document) *tickLog {
	log := &tickLog{}
	e := core.New(cfg)
	// Sized beyond any experiment's tick count so no tick is dropped.
	sub := e.Subscribe(context.Background(), core.SubBuffer(1<<14))
	for i := range docs {
		e.Consume(docs[i].Item())
	}
	e.Flush()
	e.Close()
	for rn := range sub.Notifications() {
		r := rn.Ranking()
		log.rankings = append(log.rankings, r)
	}
	return log
}

// firstTopK returns when pair first appeared within the top k of a ranking.
func (l *tickLog) firstTopK(p pairs.Key, k int) (time.Time, bool) {
	for _, r := range l.rankings {
		for i, t := range r.Topics {
			if i >= k {
				break
			}
			if t.Pair == p {
				return r.At, true
			}
		}
	}
	return time.Time{}, false
}

// bestRank returns the best (lowest) rank the pair ever achieved, or -1.
func (l *tickLog) bestRank(p pairs.Key) int {
	best := -1
	for _, r := range l.rankings {
		for i, t := range r.Topics {
			if t.Pair == p && (best == -1 || i < best) {
				best = i
			}
		}
	}
	return best
}

// rankTrajectory returns (time, rank) samples of the pair across ticks;
// rank -1 marks ticks where it was absent.
func (l *tickLog) rankTrajectory(p pairs.Key) []trajPoint {
	out := make([]trajPoint, 0, len(l.rankings))
	for _, r := range l.rankings {
		pt := trajPoint{At: r.At, Rank: -1}
		for i, t := range r.Topics {
			if t.Pair == p {
				pt.Rank = i
				pt.Score = t.Score
				break
			}
		}
		out = append(out, pt)
	}
	return out
}

type trajPoint struct {
	At    time.Time
	Rank  int
	Score float64
}

// meanPrecisionDuringEvents averages precision@min(k, |relevant|) over the
// ticks that fall inside any event's active span. Relevant pairs are every
// pair among the event's tags and its category tag: the generator stamps
// the category onto event documents, so those pairs' correlations genuinely
// shift too — flagging them is a correct answer, not noise.
func (l *tickLog) meanPrecisionDuringEvents(events []source.Event, k int) float64 {
	var sum float64
	n := 0
	for _, r := range l.rankings {
		active := map[string]bool{}
		for i := range events {
			// Grace period: an event remains "relevant" for a window after
			// its end, while its shift score is still legitimately high.
			e := &events[i]
			if !r.At.Before(e.Start) && r.At.Before(e.Start.Add(e.Duration+12*time.Hour)) {
				tags := []string{e.Tags[0], e.Tags[1]}
				if e.Category != "" {
					tags = append(tags, e.Category)
				}
				for x := 0; x < len(tags); x++ {
					for y := x + 1; y < len(tags); y++ {
						active[pairs.MakeKey(tags[x], tags[y]).String()] = true
					}
				}
			}
		}
		if len(active) == 0 {
			continue
		}
		kk := k
		if len(active) < kk {
			kk = len(active)
		}
		sum += metrics.PrecisionAtK(r.IDs(), active, kk)
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// detectionSummary computes per-event latency rows against the log.
func (l *tickLog) detectionSummary(events []source.Event, k int) []metrics.Latency {
	starts := make(map[string]time.Time, len(events))
	var dets []metrics.Detection
	for i := range events {
		e := &events[i]
		starts[e.Pair().String()] = e.Start
		if at, ok := l.firstTopK(e.Pair(), k); ok {
			dets = append(dets, metrics.Detection{ID: e.Pair().String(), At: at})
		}
	}
	return metrics.DetectionLatencies(starts, dets)
}

// table starts an aligned table on w.
func table(w io.Writer) *tabwriter.Writer {
	return tabwriter.NewWriter(w, 0, 4, 2, ' ', 0)
}

// section prints an experiment header.
func section(w io.Writer, id, name string) {
	fmt.Fprintf(w, "\n=== %s — %s ===\n", id, name)
}

// fmtDur renders a duration in compact hours.
func fmtDur(d time.Duration) string {
	return fmt.Sprintf("%.1fh", d.Hours())
}

// sortedKeys returns map keys sorted, for deterministic table output.
func sortedKeys[M ~map[string]V, V any](m M) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
