package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"strings"
	"time"

	"enblogue/internal/entity"
)

// E1Result holds the entity-tagging accuracy and throughput outcome.
type E1Result struct {
	// Docs is the number of evaluated documents.
	Docs int
	// Precision and Recall of canonical-entity extraction (set semantics
	// per document) without a type filter.
	Precision float64
	Recall    float64
	// FilteredPrecision/FilteredRecall restrict truth and output to
	// locations, exercising the ontology filter.
	FilteredPrecision float64
	FilteredRecall    float64
	// MBPerSec is the tagging throughput.
	MBPerSec float64
}

// e1Doc is a generated document with known entity ground truth.
type e1Doc struct {
	text     string
	truth    map[string]bool // canonical entities present
	locTruth map[string]bool // subset of truth that IsA location
}

// e1Corpus builds documents by splicing gazetteer aliases (including
// redirects and the canonical forms) into filler sentences. Truth is exact
// because we control the splice.
func e1Corpus(n int, seed int64, g *entity.Gazetteer, o *entity.Ontology) []e1Doc {
	type alias struct {
		surface   string
		canonical string
	}
	aliases := []alias{
		{"Barack Obama", "barack obama"},
		{"Obama", "barack obama"},
		{"President Obama", "barack obama"},
		{"Angela Merkel", "angela merkel"},
		{"the United Nations", "united nations"},
		{"BP", "british petroleum"},
		{"Iceland", "iceland"},
		{"Athens", "athens"},
		{"New York", "new york city"},
		{"NYC", "new york city"},
		{"the Gulf of Mexico", "gulf of mexico"},
		{"Eyjafjallajokull", "eyjafjallajökull"},
		{"Hurricane Katrina", "hurricane katrina"},
		{"the World Cup", "world cup"},
		{"SIGMOD", "sigmod"},
		{"Roger Federer", "roger federer"},
	}
	fillers := []string{
		"yesterday the markets reacted strongly",
		"officials declined further comment today",
		"analysts expect developments soon",
		"the report was published this morning",
		"crowds gathered despite the rain",
	}
	rng := rand.New(rand.NewSource(seed))
	docs := make([]e1Doc, n)
	for i := range docs {
		k := 1 + rng.Intn(3)
		var parts []string
		truth := map[string]bool{}
		locTruth := map[string]bool{}
		for j := 0; j < k; j++ {
			a := aliases[rng.Intn(len(aliases))]
			parts = append(parts, fillers[rng.Intn(len(fillers))], a.surface)
			truth[a.canonical] = true
			if e, ok := g.Lookup(a.canonical); ok {
				for _, typ := range e.Types {
					if o.IsA(typ, "location") {
						locTruth[a.canonical] = true
					}
				}
			}
		}
		parts = append(parts, fillers[rng.Intn(len(fillers))])
		docs[i] = e1Doc{
			text:     strings.Join(parts, ". ") + ".",
			truth:    truth,
			locTruth: locTruth,
		}
	}
	return docs
}

// prf accumulates set precision/recall over documents.
type prf struct {
	tp, fp, fn int
}

func (p *prf) add(got []string, truth map[string]bool) {
	seen := map[string]bool{}
	for _, e := range got {
		seen[e] = true
		if truth[e] {
			p.tp++
		} else {
			p.fp++
		}
	}
	for e := range truth {
		if !seen[e] {
			p.fn++
		}
	}
}

func (p *prf) precision() float64 {
	if p.tp+p.fp == 0 {
		return 1
	}
	return float64(p.tp) / float64(p.tp+p.fp)
}

func (p *prf) recall() float64 {
	if p.tp+p.fn == 0 {
		return 1
	}
	return float64(p.tp) / float64(p.tp+p.fn)
}

// RunE1 measures the tagger against spliced ground truth and times it.
func RunE1(w io.Writer) (E1Result, error) {
	g, o := entity.Sample()
	corpus := e1Corpus(2000, 11, g, o)

	plain := entity.NewTagger(g, o)
	loc := entity.NewTagger(g, o)
	loc.AllowTypes = []string{"location"}

	var all, filtered prf
	var bytes int
	startT := time.Now()
	for _, d := range corpus {
		bytes += len(d.text)
		all.add(plain.Entities(d.text), d.truth)
		filtered.add(loc.Entities(d.text), d.locTruth)
	}
	el := time.Since(startT).Seconds()
	if el <= 0 {
		el = 1e-9
	}

	res := E1Result{
		Docs:              len(corpus),
		Precision:         all.precision(),
		Recall:            all.recall(),
		FilteredPrecision: filtered.precision(),
		FilteredRecall:    filtered.recall(),
		MBPerSec:          float64(bytes) / 1e6 / el / 2, // two taggers ran
	}

	section(w, "E1", "entity tagging — redirects, type filter, throughput")
	tw := table(w)
	fmt.Fprintln(tw, "configuration\tprecision\trecall")
	fmt.Fprintf(tw, "all entity types\t%.3f\t%.3f\n", res.Precision, res.Recall)
	fmt.Fprintf(tw, "location filter (YAGO-style)\t%.3f\t%.3f\n",
		res.FilteredPrecision, res.FilteredRecall)
	tw.Flush()
	fmt.Fprintf(w, "\n%d docs; tagging throughput %.1f MB/s\n", res.Docs, res.MBPerSec)
	return res, nil
}

func runE1(w io.Writer) error {
	_, err := RunE1(w)
	return err
}
