package experiments

import (
	"fmt"
	"io"
	"time"

	"enblogue/internal/baseline"
	"enblogue/internal/pairs"
	"enblogue/internal/source"
)

// B1Result is the head-to-head outcome of enBlogue vs the
// TwitterMonitor-style burst baseline on two event types.
type B1Result struct {
	// CorrelationShift: an event that changes only the pair's overlap,
	// not either tag's total rate (Figure 1's phenomenon).
	CorrelationShift B1Row
	// RateBurst: a classic burst where two co-occurring tags spike
	// together — both systems should see this one.
	RateBurst B1Row
}

// B1Row compares the two systems on one event.
type B1Row struct {
	Pair             pairs.Key
	EventStart       time.Time
	EnBlogueDetected bool
	EnBlogueLatency  time.Duration
	BaselineDetected bool
	BaselineLatency  time.Duration
}

// b1ShiftWorkload builds the rate-preserving correlation-shift stream:
// tags x and y hold constant total rates; at shiftStart their documents
// merge so the pair co-occurs heavily.
func b1ShiftWorkload(start time.Time, hours, shiftHour int) []source.Document {
	var docs []source.Document
	id := 0
	emit := func(at time.Time, tags ...string) {
		id++
		docs = append(docs, source.Document{
			Time: at, ID: fmt.Sprintf("b1s-%06d", id), Tags: tags, Source: "b1",
		})
	}
	for h := 0; h < hours; h++ {
		base := start.Add(time.Duration(h) * time.Hour)
		joint := 1
		if h >= shiftHour {
			joint = 10
		}
		xSolo, ySolo := 30-joint, 12-joint
		for i := 0; i < xSolo; i++ {
			emit(base.Add(time.Duration(i*90)*time.Second), "x", "chatter")
		}
		for i := 0; i < ySolo; i++ {
			emit(base.Add(time.Duration(i*240)*time.Second), "y", "misc")
		}
		for i := 0; i < joint; i++ {
			emit(base.Add(time.Duration(i*300)*time.Second), "x", "y")
		}
		for i := 0; i < 40; i++ {
			emit(base.Add(time.Duration(i*80)*time.Second), "news", fmt.Sprintf("bg%d", i%6))
		}
	}
	source.SortDocs(docs)
	return docs
}

// b1BurstWorkload builds the classic burst: background chatter, then tags
// p and q appear from nothing at high joint rate.
func b1BurstWorkload(start time.Time, hours, burstHour int) []source.Document {
	var docs []source.Document
	id := 0
	emit := func(at time.Time, tags ...string) {
		id++
		docs = append(docs, source.Document{
			Time: at, ID: fmt.Sprintf("b1b-%06d", id), Tags: tags, Source: "b1",
		})
	}
	for h := 0; h < hours; h++ {
		base := start.Add(time.Duration(h) * time.Hour)
		for i := 0; i < 40; i++ {
			emit(base.Add(time.Duration(i*80)*time.Second), "news", fmt.Sprintf("bg%d", i%6))
		}
		for i := 0; i < 20; i++ {
			emit(base.Add(time.Duration(i*150)*time.Second), "x", "chatter")
		}
		if h >= burstHour {
			for i := 0; i < 25; i++ {
				emit(base.Add(time.Duration(i*120)*time.Second), "p", "q")
			}
		}
	}
	source.SortDocs(docs)
	return docs
}

// b1RunBaseline drives the burst detector with hourly ticks and reports
// when the target pair first appeared in a burst group (or, failing
// grouping, when both tags burst in the same tick).
func b1RunBaseline(docs []source.Document, start time.Time, hours int, target pairs.Key) (time.Time, bool) {
	bd := baseline.NewBurstDetector(baseline.Config{
		Buckets: 6, Resolution: time.Hour, Alpha: 0.3,
		Threshold: 2.5, MinCount: 8, GroupJaccard: 0.2,
	})
	next := start.Add(time.Hour)
	i := 0
	for h := 0; h < hours; h++ {
		for i < len(docs) && docs[i].Time.Before(next) {
			bd.Observe(docs[i].Time, docs[i].Tags)
			i++
		}
		bursts := bd.Tick(next)
		for _, k := range baseline.TopicPairs(bd.Groups(bursts)) {
			if k == target {
				return next, true
			}
		}
		both := 0
		for _, b := range bursts {
			if target.Contains(b.Tag) {
				both++
			}
		}
		if both == 2 {
			return next, true
		}
		next = next.Add(time.Hour)
	}
	return time.Time{}, false
}

// RunB1 executes the baseline comparison.
func RunB1(w io.Writer) (B1Result, error) {
	start := time.Date(2011, 6, 1, 0, 0, 0, 0, time.UTC)
	const hours, eventHour = 36, 24
	eventStart := start.Add(eventHour * time.Hour)

	cfg := sc1Config()
	cfg.WindowBuckets = 6
	cfg.TickEvery = time.Hour
	cfg.SeedCount = 10
	cfg.HalfLife = 12 * time.Hour

	row := func(docs []source.Document, target pairs.Key) B1Row {
		r := B1Row{Pair: target, EventStart: eventStart}
		log := runEngine(cfg, docs)
		if at, ok := log.firstTopK(target, 3); ok && !at.Before(eventStart) {
			r.EnBlogueDetected = true
			r.EnBlogueLatency = at.Sub(eventStart)
		}
		if at, ok := b1RunBaseline(docs, start, hours, target); ok && !at.Before(eventStart) {
			r.BaselineDetected = true
			r.BaselineLatency = at.Sub(eventStart)
		}
		return r
	}

	res := B1Result{
		CorrelationShift: row(b1ShiftWorkload(start, hours, eventHour), pairs.MakeKey("x", "y")),
		RateBurst:        row(b1BurstWorkload(start, hours, eventHour), pairs.MakeKey("p", "q")),
	}

	section(w, "B1", "enBlogue vs burst baseline — who sees what")
	tw := table(w)
	fmt.Fprintln(tw, "event type\tpair\tenblogue\tlatency\tbaseline\tlatency")
	p := func(name string, r B1Row) {
		eb, el, bl, bll := "miss", "-", "miss", "-"
		if r.EnBlogueDetected {
			eb, el = "detect", fmtDur(r.EnBlogueLatency)
		}
		if r.BaselineDetected {
			bl, bll = "detect", fmtDur(r.BaselineLatency)
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%s\t%s\n", name, r.Pair, eb, el, bl, bll)
	}
	p("correlation shift (rates flat)", res.CorrelationShift)
	p("rate burst (co-occurring)", res.RateBurst)
	tw.Flush()
	fmt.Fprintln(w, "\nexpected shape: enBlogue detects both; baseline detects only the rate burst")
	return res, nil
}

func runB1(w io.Writer) error {
	_, err := RunB1(w)
	return err
}
