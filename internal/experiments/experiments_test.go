package experiments

import (
	"io"
	"os"
	"strings"
	"testing"
	"time"
)

// sink returns a writer for experiment tables: verbose mode shows them.
func sink(t *testing.T) io.Writer {
	t.Helper()
	if testing.Verbose() {
		return os.Stdout
	}
	return io.Discard
}

func TestByID(t *testing.T) {
	for _, e := range All {
		got, ok := ByID(e.ID)
		if !ok || got.Name != e.Name {
			t.Errorf("ByID(%s) = %+v, %v", e.ID, got, ok)
		}
	}
	if _, ok := ByID("nope"); ok {
		t.Error("ByID(nope) should fail")
	}
}

func TestF1ReproducesFigure1(t *testing.T) {
	res, err := RunF1(sink(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != f1Hours {
		t.Fatalf("series length = %d", len(res.Series))
	}
	// The figure's qualitative content:
	// (1) the popular tag's solo peaks leave the intersection flat;
	for _, p := range res.Series {
		if p.Hour >= f1Peak1Start && p.Hour < f1Peak1Start+f1PeakLen && p.Intersection != f1Overlap {
			t.Errorf("hour %d: intersection %d changed during solo peak", p.Hour, p.Intersection)
		}
	}
	// (2) enBlogue's pair score during the shift dwarfs its score during
	// the solo peaks;
	if res.PairScoreDuringShift <= 3*res.PairScoreDuringSoloBurst {
		t.Errorf("shift score %v vs solo-burst score %v: shift must dominate",
			res.PairScoreDuringShift, res.PairScoreDuringSoloBurst)
	}
	// (3) the shift tops the ranking promptly;
	if !res.ShiftDetected {
		t.Fatal("shift never ranked #1")
	}
	if lag := res.ShiftDetectedAt.Sub(res.ShiftStart); lag > 3*time.Hour {
		t.Errorf("shift detection lag %v > 3h", lag)
	}
	// (4) the burst baseline sees the solo peak but is blind to the shift.
	if !res.BaselineFlaggedSoloBurst {
		t.Error("baseline missed the solo burst it is designed for")
	}
	if res.BaselineFlaggedShift {
		t.Error("baseline flagged the rate-preserving correlation shift")
	}
}

func TestSC1DetectsHistoricEvents(t *testing.T) {
	res, err := RunSC1(sink(t))
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.Events != 3 {
		t.Fatalf("events = %d", res.Summary.Events)
	}
	if res.Summary.Detected != 3 {
		t.Errorf("detected %d/3 events", res.Summary.Detected)
	}
	if res.Summary.MeanDelay > 12*time.Hour {
		t.Errorf("mean latency %v > 12h", res.Summary.MeanDelay)
	}
	if res.MeanPrecision < 0.4 {
		t.Errorf("mean precision during events = %v, want >= 0.4", res.MeanPrecision)
	}
}

func TestSC2SigmodAthensClimbs(t *testing.T) {
	res, err := RunSC2(sink(t))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reached {
		t.Fatal("sigmod+athens never reached top-10")
	}
	if res.TimeToTop10 > 4*time.Hour {
		t.Errorf("time to top-10 = %v, want <= 4h", res.TimeToTop10)
	}
	if res.BestRank > 2 {
		t.Errorf("best rank = %d, want <= 2", res.BestRank)
	}
}

func TestSC3PersonalizationDiverges(t *testing.T) {
	res, err := RunSC3(sink(t))
	if err != nil {
		t.Fatal(err)
	}
	def := res.Lists["default"]
	if len(def) == 0 {
		t.Fatal("default list empty")
	}
	// The db-researcher must see sigmod+athens first.
	if got := res.Lists["db-researcher"]; len(got) == 0 || got[0] != "athens+sigmod" {
		t.Errorf("db-researcher list = %v, want athens+sigmod first", got)
	}
	// The exclusive traveller profile filters to matching topics only —
	// a strictly smaller list headed by a travel topic.
	trav := res.Lists["traveller"]
	if len(trav) == 0 || len(trav) >= len(def) {
		t.Errorf("traveller list = %v (default %d entries), want proper subset", trav, len(def))
	}
	if len(trav) > 0 && trav[0] != "air-traffic+volcano" {
		t.Errorf("traveller head = %s, want air-traffic+volcano", trav[0])
	}
	if res.OverlapVsDefault["traveller"] >= 1 {
		t.Errorf("traveller overlap = %v, want < 1", res.OverlapVsDefault["traveller"])
	}
}

func TestB1BaselineComparison(t *testing.T) {
	res, err := RunB1(sink(t))
	if err != nil {
		t.Fatal(err)
	}
	if !res.CorrelationShift.EnBlogueDetected {
		t.Error("enBlogue missed the correlation shift")
	}
	if res.CorrelationShift.BaselineDetected {
		t.Error("baseline detected the rate-preserving shift (should be blind)")
	}
	if !res.RateBurst.EnBlogueDetected {
		t.Error("enBlogue missed the rate burst")
	}
	if !res.RateBurst.BaselineDetected {
		t.Error("baseline missed the rate burst it is designed for")
	}
}

func TestP1Throughput(t *testing.T) {
	if testing.Short() {
		t.Skip("throughput in short mode")
	}
	res, err := RunP1(sink(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.EngineRows) != 6 {
		t.Fatalf("rows = %d", len(res.EngineRows))
	}
	for _, r := range res.EngineRows {
		if r.DocsPerSec < 1000 {
			t.Errorf("engine throughput %0.f docs/sec (seeds=%d) below sanity floor",
				r.DocsPerSec, r.SeedCount)
		}
	}
	if res.SharedSpeedup < 1.2 {
		t.Errorf("shared-plan speedup = %.2f, want >= 1.2 (4 plans share one tagger)",
			res.SharedSpeedup)
	}
}

func TestA1AblationRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation in short mode")
	}
	res, err := RunA1(sink(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 16 { // 6 measures + 7 predictors + 3 half-lives
		t.Fatalf("ablation rows = %d, want 16", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r.Events != 3 {
			t.Errorf("%s=%s events = %d", r.Dimension, r.Value, r.Events)
		}
		// Every configuration should find at least 2 of the 3 strong events.
		if r.Detected < 2 {
			t.Errorf("%s=%s detected only %d/3", r.Dimension, r.Value, r.Detected)
		}
	}
}

func TestA2Sensitivity(t *testing.T) {
	if testing.Short() {
		t.Skip("sensitivity sweep in short mode")
	}
	res, err := RunA2(sink(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 13 { // 5 seed counts + 4 floors + 4 tick periods
		t.Fatalf("rows = %d, want 13", len(res.Rows))
	}
	var latByTick []time.Duration
	for _, r := range res.Rows {
		if r.Detected != 3 {
			t.Errorf("%s=%s detected %d/3 — the events are strong; every config should find them",
				r.Dimension, r.Value, r.Detected)
		}
		if r.Dimension == "tick-period" {
			latByTick = append(latByTick, r.MeanDelay)
		}
	}
	// Detection latency must grow with the tick period (coarser ticks see
	// shifts later).
	for i := 1; i < len(latByTick); i++ {
		if latByTick[i] < latByTick[i-1] {
			t.Errorf("latency decreased with coarser ticks: %v", latByTick)
		}
	}
}

func TestE1EntityTagging(t *testing.T) {
	res, err := RunE1(sink(t))
	if err != nil {
		t.Fatal(err)
	}
	if res.Precision < 0.95 || res.Recall < 0.95 {
		t.Errorf("entity P/R = %.3f/%.3f, want >= 0.95 on spliced truth",
			res.Precision, res.Recall)
	}
	if res.FilteredPrecision < 0.95 || res.FilteredRecall < 0.95 {
		t.Errorf("filtered P/R = %.3f/%.3f", res.FilteredPrecision, res.FilteredRecall)
	}
	if res.MBPerSec <= 0 {
		t.Error("throughput not measured")
	}
}

func TestAllExperimentsRunCleanly(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep in short mode")
	}
	var sb strings.Builder
	for _, e := range All {
		if err := e.Run(&sb); err != nil {
			t.Errorf("%s failed: %v", e.ID, err)
		}
	}
	out := sb.String()
	for _, e := range All {
		if !strings.Contains(out, "=== "+e.ID) {
			t.Errorf("output missing section %s", e.ID)
		}
	}
}
