package ingest

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"enblogue/internal/stream"
)

func item(i int) *stream.Item {
	return &stream.Item{DocID: fmt.Sprintf("d%d", i)}
}

// drainAll pulls every queued item in Drain-sized batches until the queue
// reports closed-and-empty, returning the items in arrival order.
func drainAll(q *Queue) []*stream.Item {
	var out []*stream.Item
	for {
		batch, ok := q.Drain(nil)
		out = append(out, batch...)
		if len(batch) > 0 {
			q.Done()
		}
		if !ok {
			return out
		}
	}
}

func TestQueueFIFOAcrossBatches(t *testing.T) {
	q := New(Config{Size: 64, MaxBatch: 7})
	const n = 50
	for i := 0; i < n; i++ {
		if !q.Put(item(i)) {
			t.Fatalf("Put(%d) rejected on open queue", i)
		}
	}
	q.Close()
	got := drainAll(q)
	if len(got) != n {
		t.Fatalf("drained %d items, want %d", len(got), n)
	}
	for i, it := range got {
		if want := fmt.Sprintf("d%d", i); it.DocID != want {
			t.Fatalf("item %d = %q, want %q (FIFO violated)", i, it.DocID, want)
		}
	}
	if q.Enqueued() != n || q.Dropped() != 0 {
		t.Errorf("(enqueued, dropped) = (%d, %d), want (%d, 0)", q.Enqueued(), q.Dropped(), n)
	}
}

func TestQueueDrainRespectsMaxBatch(t *testing.T) {
	q := New(Config{Size: 32, MaxBatch: 5})
	for i := 0; i < 12; i++ {
		q.Put(item(i))
	}
	batch, ok := q.Drain(nil)
	if !ok || len(batch) != 5 {
		t.Fatalf("first drain = %d items (ok=%v), want 5", len(batch), ok)
	}
	q.Done()
	if d := q.Depth(); d != 7 {
		t.Errorf("depth after drain = %d, want 7", d)
	}
}

func TestQueueDropOldestEvictsAndCounts(t *testing.T) {
	q := New(Config{Size: 4, MaxBatch: 4, DropOldest: true})
	for i := 0; i < 10; i++ {
		if !q.Put(item(i)) {
			t.Fatalf("Put(%d) rejected: drop-oldest must never block or reject while open", i)
		}
	}
	if got := q.Dropped(); got != 6 {
		t.Errorf("Dropped = %d, want 6", got)
	}
	q.Close()
	got := drainAll(q)
	if len(got) != 4 {
		t.Fatalf("drained %d items, want the 4 newest", len(got))
	}
	// The survivors are the newest four, still in FIFO order.
	for i, it := range got {
		if want := fmt.Sprintf("d%d", i+6); it.DocID != want {
			t.Fatalf("survivor %d = %q, want %q", i, it.DocID, want)
		}
	}
}

func TestQueueBlockingPutWaitsForSpace(t *testing.T) {
	q := New(Config{Size: 2, MaxBatch: 2})
	q.Put(item(0))
	q.Put(item(1))
	unblocked := make(chan struct{})
	go func() {
		q.Put(item(2)) // ring full: must block until the drainer makes room
		close(unblocked)
	}()
	select {
	case <-unblocked:
		t.Fatal("Put on a full blocking queue returned before space freed")
	case <-time.After(20 * time.Millisecond):
	}
	batch, ok := q.Drain(nil)
	if !ok || len(batch) == 0 {
		t.Fatalf("drain = (%d, %v), want items", len(batch), ok)
	}
	q.Done()
	select {
	case <-unblocked:
	case <-time.After(2 * time.Second):
		t.Fatal("Put still blocked after space freed")
	}
	if q.Dropped() != 0 {
		t.Errorf("blocking policy dropped %d items, want 0", q.Dropped())
	}
}

func TestQueueCloseRejectsAndDrainsRemainder(t *testing.T) {
	q := New(Config{Size: 8, MaxBatch: 8})
	q.Put(item(0))
	q.Put(item(1))
	q.Close()
	if q.Put(item(2)) {
		t.Error("Put after Close accepted an item")
	}
	got := drainAll(q)
	if len(got) != 2 {
		t.Fatalf("drained %d items after close, want the 2 queued before it", len(got))
	}
	// A closed empty queue keeps returning ok=false without blocking.
	if _, ok := q.Drain(nil); ok {
		t.Error("Drain on closed empty queue returned ok=true")
	}
}

func TestQueueWaitIdleCoversInFlightBatch(t *testing.T) {
	q := New(Config{Size: 8, MaxBatch: 8})
	q.Put(item(0))
	batch, ok := q.Drain(nil)
	if !ok || len(batch) != 1 {
		t.Fatalf("drain = (%d, %v), want the queued item", len(batch), ok)
	}
	// Ring is empty but the batch is still being consumed: WaitIdle must
	// not return until Done.
	idle := make(chan struct{})
	go func() {
		q.WaitIdle()
		close(idle)
	}()
	select {
	case <-idle:
		t.Fatal("WaitIdle returned while a drained batch was in flight")
	case <-time.After(20 * time.Millisecond):
	}
	q.Done()
	select {
	case <-idle:
	case <-time.After(2 * time.Second):
		t.Fatal("WaitIdle still blocked after Done")
	}
}

func TestQueueFlushIntervalReleasesPartialBatch(t *testing.T) {
	q := New(Config{Size: 64, MaxBatch: 64, FlushInterval: 5 * time.Millisecond})
	q.Put(item(0))
	start := time.Now()
	batch, ok := q.Drain(nil) // MaxBatch unreachable: must give up at the interval
	if !ok || len(batch) != 1 {
		t.Fatalf("drain = (%d, %v), want the single queued item", len(batch), ok)
	}
	q.Done()
	if waited := time.Since(start); waited > 2*time.Second {
		t.Fatalf("partial batch held for %v, want ~FlushInterval", waited)
	}
}

func TestQueueConcurrentProducersLoseNothing(t *testing.T) {
	q := New(Config{Size: 128, MaxBatch: 16})
	const producers, per = 8, 200
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				q.Put(item(p*per + i))
			}
		}(p)
	}
	done := make(chan []*stream.Item, 1)
	go func() { done <- drainAll(q) }()
	wg.Wait()
	q.Close()
	got := <-done
	if len(got) != producers*per {
		t.Fatalf("drained %d items, want %d", len(got), producers*per)
	}
	seen := make(map[string]bool, len(got))
	for _, it := range got {
		if seen[it.DocID] {
			t.Fatalf("item %q drained twice", it.DocID)
		}
		seen[it.DocID] = true
	}
}
