// Package ingest provides the bounded ring-buffer queue that decouples
// document producers from engine consumption: producers append items and
// return immediately (or apply a backpressure policy when the ring is
// full), while a single drainer goroutine dequeues in batches sized for the
// engine's batched ingest path. The ring preserves FIFO order, so a
// sequentially produced stream reaches the engine in the same order it
// would have under direct per-document consumption — the determinism
// contract batching upholds.
package ingest

import (
	"sync"
	"sync/atomic"
	"time"

	"enblogue/internal/stream"
)

// Config parameterises a Queue.
type Config struct {
	// Size is the ring capacity in items. Must be ≥ 1.
	Size int
	// MaxBatch caps the items one Drain returns. Must be ≥ 1 and is
	// clamped to Size.
	MaxBatch int
	// FlushInterval bounds how long Drain waits for a partial batch to
	// fill once at least one item is available. Zero drains whatever is
	// available immediately.
	FlushInterval time.Duration
	// DropOldest switches the backpressure policy: when true, Put on a
	// full ring evicts the oldest queued item (counted in Dropped) instead
	// of blocking the producer.
	DropOldest bool
}

// Queue is a bounded MPSC ring buffer of stream items. Any number of
// producers may Put concurrently; one drainer at a time is expected to
// Drain. All methods are safe for concurrent use.
type Queue struct {
	mu   sync.Mutex
	cond *sync.Cond // broadcast on every state change; waiters recheck
	cfg  Config

	buf  []*stream.Item
	head int // index of the oldest item
	n    int // queued items

	inFlight bool // a drained batch is still being consumed (until Done)
	closed   bool
	timedOut bool // flush-interval timer fired for the current drain wait

	dropped  atomic.Int64
	enqueued atomic.Int64
}

// New returns a queue with the given configuration. Size and MaxBatch are
// clamped to sane minima so a zero-ish config still yields a working queue.
func New(cfg Config) *Queue {
	if cfg.Size < 1 {
		cfg.Size = 1
	}
	if cfg.MaxBatch < 1 {
		cfg.MaxBatch = 1
	}
	if cfg.MaxBatch > cfg.Size {
		cfg.MaxBatch = cfg.Size
	}
	q := &Queue{cfg: cfg, buf: make([]*stream.Item, cfg.Size)}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// Put appends one item. On a full ring it blocks until space frees up —
// or, under DropOldest, evicts the oldest queued item and returns
// immediately. It returns false (discarding the item) if the queue is
// closed. Nil items are ignored.
func (q *Queue) Put(it *stream.Item) bool {
	if it == nil {
		return true
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.n == len(q.buf) && !q.closed && !q.cfg.DropOldest {
		q.cond.Wait()
	}
	if q.closed {
		return false
	}
	if q.n == len(q.buf) { // DropOldest policy
		q.head = (q.head + 1) % len(q.buf)
		q.n--
		q.dropped.Add(1)
	}
	q.buf[(q.head+q.n)%len(q.buf)] = it
	q.n++
	q.enqueued.Add(1)
	q.cond.Broadcast()
	return true
}

// Drain blocks until at least one item is queued or the queue is closed,
// optionally waits up to FlushInterval for a partial batch to fill, then
// appends up to MaxBatch items (FIFO) to buf and returns it with ok=true.
// It returns ok=false only when the queue is closed and empty. A non-empty
// drain marks the queue in-flight until Done is called, so WaitIdle covers
// the batch currently being consumed, not just the ring.
func (q *Queue) Drain(buf []*stream.Item) (_ []*stream.Item, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.n == 0 && !q.closed {
		q.cond.Wait()
	}
	if q.n == 0 {
		return buf, false // closed and empty
	}
	if q.n < q.cfg.MaxBatch && q.cfg.FlushInterval > 0 && !q.closed {
		q.timedOut = false
		tm := time.AfterFunc(q.cfg.FlushInterval, func() {
			q.mu.Lock()
			q.timedOut = true
			q.cond.Broadcast()
			q.mu.Unlock()
		})
		for q.n < q.cfg.MaxBatch && !q.closed && !q.timedOut {
			q.cond.Wait()
		}
		tm.Stop()
	}
	take := q.n
	if take > q.cfg.MaxBatch {
		take = q.cfg.MaxBatch
	}
	for i := 0; i < take; i++ {
		buf = append(buf, q.buf[q.head])
		q.buf[q.head] = nil
		q.head = (q.head + 1) % len(q.buf)
	}
	q.n -= take
	q.inFlight = true
	q.cond.Broadcast()
	return buf, true
}

// Done marks the batch returned by the last non-empty Drain as fully
// consumed, unblocking WaitIdle once the ring is also empty.
func (q *Queue) Done() {
	q.mu.Lock()
	q.inFlight = false
	q.cond.Broadcast()
	q.mu.Unlock()
}

// WaitIdle blocks until the ring is empty and no drained batch is being
// consumed — the happens-before edge Engine.Flush needs: every item Put
// before WaitIdle was called has been handed to the consumer and consumed
// by the time it returns, provided the drainer keeps draining.
func (q *Queue) WaitIdle() {
	q.mu.Lock()
	for q.n > 0 || q.inFlight {
		q.cond.Wait()
	}
	q.mu.Unlock()
}

// Close marks the queue closed: subsequent Puts are rejected, blocked Puts
// return false, and Drain returns ok=false once the remaining items have
// been drained. Idempotent.
func (q *Queue) Close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

// Depth returns the number of items currently queued.
func (q *Queue) Depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.n
}

// Dropped returns the total items evicted under the DropOldest policy.
func (q *Queue) Dropped() int64 { return q.dropped.Load() }

// Enqueued returns the total items accepted by Put.
func (q *Queue) Enqueued() int64 { return q.enqueued.Load() }
