package pairs

import (
	"fmt"
	"reflect"
	"sort"
	"testing"
	"time"
)

// batchDocsFrom pairs a random tag stream with one-minute-spaced
// timestamps, the shape ObserveBatch consumes.
func batchDocsFrom(stream [][]string) []BatchDoc {
	docs := make([]BatchDoc, len(stream))
	for i, tags := range stream {
		docs[i] = BatchDoc{Time: shT0.Add(time.Duration(i) * time.Minute), Tags: tags}
	}
	return docs
}

// trackerState flattens a sharded tracker into a comparable form: every
// tracked pair with its windowed co-occurrence as of the tracker clock.
func trackerState(tr *ShardedTracker) map[Key]float64 {
	out := make(map[Key]float64)
	for i := 0; i < tr.Shards(); i++ {
		for _, pc := range tr.Snapshot(i) {
			out[pc.Key] = pc.Count
		}
	}
	return out
}

// seedEven marks half the vocabulary as seeds so candidate generation
// exercises both accepted and rejected pairs.
func seedEven(tag string) bool {
	var n int
	fmt.Sscanf(tag, "t%d", &n)
	return n%2 == 0
}

// TestObserveBatchMatchesSerial pins the tracker half of the batched
// determinism contract: for every shard count and batch size — batch
// boundaries chosen to split documents arbitrarily — feeding the stream
// through ObserveBatch leaves the tracker with exactly the pairs and
// windowed counts that per-document Observe produces, including the sweep
// schedule (sweeps are document-count driven and ObserveBatch replays the
// count document by document).
func TestObserveBatchMatchesSerial(t *testing.T) {
	stream := randomStream(42, 3000, 60, 4)
	docs := batchDocsFrom(stream)
	for _, shards := range []int{1, 4, 8} {
		cfg := Config{Shards: shards, SweepEvery: 256}
		serial := NewShardedTracker(cfg)
		for _, d := range docs {
			serial.Observe(d.Time, d.Tags, seedEven)
		}
		want := trackerState(serial)
		if len(want) == 0 {
			t.Fatal("serial tracker tracked no pairs; workload too small")
		}
		for _, batch := range []int{1, 7, 64, 4096} {
			t.Run(fmt.Sprintf("shards-%d/batch-%d", shards, batch), func(t *testing.T) {
				tr := NewShardedTracker(cfg)
				for lo := 0; lo < len(docs); lo += batch {
					hi := lo + batch
					if hi > len(docs) {
						hi = len(docs)
					}
					tr.ObserveBatch(docs[lo:hi], seedEven)
				}
				if got := trackerState(tr); !reflect.DeepEqual(got, want) {
					t.Fatalf("batched state diverges: %d pairs vs %d serial", len(got), len(want))
				}
				if got, wantN := tr.ActivePairs(), serial.ActivePairs(); got != wantN {
					t.Errorf("ActivePairs = %d, want %d", got, wantN)
				}
			})
		}
	}
}

// TestObserveBatchMatchesSerialUnderEviction repeats the equivalence check
// with a pair budget far below the stream's pair cardinality, so sweeps
// evict continuously: eviction order (smallest windowed count first, ties
// broken deterministically) must be reproduced exactly, since which pairs
// survive feeds directly into which topics can emerge.
func TestObserveBatchMatchesSerialUnderEviction(t *testing.T) {
	stream := randomStream(7, 4000, 120, 5)
	docs := batchDocsFrom(stream)
	for _, shards := range []int{1, 4} {
		cfg := Config{Shards: shards, MaxPairs: 150, SweepEvery: 128}
		serial := NewShardedTracker(cfg)
		for _, d := range docs {
			serial.Observe(d.Time, d.Tags, seedEven)
		}
		want := trackerState(serial)
		for _, batch := range []int{3, 64, 1000} {
			t.Run(fmt.Sprintf("shards-%d/batch-%d", shards, batch), func(t *testing.T) {
				tr := NewShardedTracker(cfg)
				for lo := 0; lo < len(docs); lo += batch {
					hi := lo + batch
					if hi > len(docs) {
						hi = len(docs)
					}
					tr.ObserveBatch(docs[lo:hi], seedEven)
				}
				got := trackerState(tr)
				if !reflect.DeepEqual(got, want) {
					var missing, extra []Key
					for k := range want {
						if _, ok := got[k]; !ok {
							missing = append(missing, k)
						}
					}
					for k := range got {
						if _, ok := want[k]; !ok {
							extra = append(extra, k)
						}
					}
					t.Fatalf("eviction diverges: %d missing, %d extra of %d serial pairs",
						len(missing), len(extra), len(want))
				}
			})
		}
	}
}

// TestDistTrackerObserveBatchMatchesSerial pins the distribution-mode
// equivalent: batched observation must leave identical per-tag co-tag
// distributions, since those distributions are the correlation signal in
// distribution mode.
func TestDistTrackerObserveBatchMatchesSerial(t *testing.T) {
	stream := randomStream(13, 1500, 40, 4)
	docs := batchDocsFrom(stream)
	cfg := Config{}
	serial := NewDistTracker(cfg)
	for _, d := range docs {
		serial.Observe(d.Time, d.Tags)
	}
	batched := NewDistTracker(cfg)
	for lo := 0; lo < len(docs); lo += 64 {
		hi := lo + 64
		if hi > len(docs) {
			hi = len(docs)
		}
		batched.ObserveBatch(docs[lo:hi])
	}
	// Compare through the public read: every tag's co-tag distribution at
	// the final clock. Collect the tag universe from the stream itself.
	tags := map[string]bool{}
	for _, d := range docs {
		for _, tag := range d.Tags {
			tags[tag] = true
		}
	}
	var names []string
	for tag := range tags {
		names = append(names, tag)
	}
	sort.Strings(names)
	for _, tag := range names {
		want := serial.Distribution(tag)
		got := batched.Distribution(tag)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("distribution for %q diverges:\n got  %v\n want %v", tag, got, want)
		}
	}
}
