package pairs

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

var t0 = time.Date(2011, 6, 12, 0, 0, 0, 0, time.UTC)

func TestMakeKeyCanonical(t *testing.T) {
	k1 := MakeKey("volcano", "iceland")
	k2 := MakeKey("iceland", "volcano")
	if k1 != k2 {
		t.Errorf("keys differ: %v vs %v", k1, k2)
	}
	if k1.Tag1() != "iceland" || k1.Tag2() != "volcano" {
		t.Errorf("not canonical: %v", k1)
	}
	if k1.String() != "iceland+volcano" {
		t.Errorf("String = %q", k1.String())
	}
}

func TestKeyContainsOther(t *testing.T) {
	k := MakeKey("a", "b")
	if !k.Contains("a") || !k.Contains("b") || k.Contains("c") {
		t.Error("Contains wrong")
	}
	if o, ok := k.Other("a"); !ok || o != "b" {
		t.Errorf("Other(a) = %q,%v", o, ok)
	}
	if o, ok := k.Other("b"); !ok || o != "a" {
		t.Errorf("Other(b) = %q,%v", o, ok)
	}
	if _, ok := k.Other("z"); ok {
		t.Error("Other(z) should not be found")
	}
}

func TestMeasureValues(t *testing.T) {
	// nab=2, na=4, nb=6, n=20
	tests := []struct {
		m    Measure
		want float64
	}{
		{Jaccard, 2.0 / 8.0},
		{Dice, 4.0 / 10.0},
		{Cosine, 2.0 / math.Sqrt(24)},
		{Overlap, 2.0 / 4.0},
		{Confidence, 2.0 / 4.0},
	}
	for _, tc := range tests {
		if got := tc.m.Compute(2, 4, 6, 20); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("%v.Compute = %v, want %v", tc.m, got, tc.want)
		}
	}
}

func TestNPMI(t *testing.T) {
	// Perfect co-occurrence: a and b always together → NPMI = 1.
	if got := NPMI.Compute(5, 5, 5, 100); math.Abs(got-1) > 1e-9 {
		t.Errorf("perfect NPMI = %v, want 1", got)
	}
	// Independence: p(ab) = p(a)p(b) → pmi=0 → NPMI = 0.5.
	if got := NPMI.Compute(1, 10, 10, 100); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("independent NPMI = %v, want 0.5", got)
	}
	if got := NPMI.Compute(0, 10, 10, 100); got != 0 {
		t.Errorf("zero co-occurrence NPMI = %v, want 0", got)
	}
}

func TestMeasureDegenerateInputs(t *testing.T) {
	for _, m := range AllMeasures() {
		if got := m.Compute(0, 0, 0, 0); got != 0 {
			t.Errorf("%v on zeros = %v, want 0", m, got)
		}
		if got := m.Compute(-1, 5, 5, 10); got != 0 {
			t.Errorf("%v on negative nab = %v, want 0", m, got)
		}
		// Inconsistent counts (nab > na) are clamped, not out of range.
		if got := m.Compute(10, 2, 3, 10); got < 0 || got > 1 {
			t.Errorf("%v clamped = %v out of [0,1]", m, got)
		}
	}
}

// Property: every measure stays within [0, 1] and equals 1 (or close) when
// the two tags always co-occur exactly.
func TestMeasureRange(t *testing.T) {
	f := func(nab8, na8, nb8, n8 uint8) bool {
		nab := float64(nab8)
		na := float64(na8) + 1
		nb := float64(nb8) + 1
		n := na + nb + float64(n8)
		for _, m := range AllMeasures() {
			v := m.Compute(nab, na, nb, n)
			if v < 0 || v > 1 || math.IsNaN(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: all measures are symmetric in (na, nb).
func TestMeasureSymmetry(t *testing.T) {
	f := func(nab8, na8, nb8 uint8) bool {
		nab := float64(nab8 % 50)
		na := float64(na8) + 1
		nb := float64(nb8) + 1
		n := na + nb + 100
		for _, m := range AllMeasures() {
			if math.Abs(m.Compute(nab, na, nb, n)-m.Compute(nab, nb, na, n)) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: measures are monotone non-decreasing in nab (more overlap can
// only raise correlation) for fixed na, nb, n.
func TestMeasureMonotoneInOverlap(t *testing.T) {
	f := func(na8, nb8 uint8) bool {
		na := float64(na8%40) + 10
		nb := float64(nb8%40) + 10
		n := 200.0
		for _, m := range AllMeasures() {
			prev := -1.0
			for nab := 0.0; nab <= math.Min(na, nb); nab++ {
				v := m.Compute(nab, na, nb, n)
				if v < prev-1e-12 {
					return false
				}
				prev = v
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestParseMeasure(t *testing.T) {
	for _, m := range AllMeasures() {
		got, err := ParseMeasure(m.String())
		if err != nil || got != m {
			t.Errorf("ParseMeasure(%q) = %v, %v", m.String(), got, err)
		}
	}
	if _, err := ParseMeasure("bogus"); err == nil {
		t.Error("ParseMeasure(bogus) should fail")
	}
	if Measure(42).String() != "measure(42)" {
		t.Errorf("unknown measure String = %q", Measure(42).String())
	}
}

func TestKLDivergence(t *testing.T) {
	p := map[string]float64{"a": 10, "b": 10}
	if d := KLDivergence(p, p, 0.01); d > 1e-9 {
		t.Errorf("KL(p,p) = %v, want ~0", d)
	}
	q := map[string]float64{"a": 19, "b": 1}
	d1 := KLDivergence(p, q, 0.01)
	if d1 <= 0 {
		t.Errorf("KL(p,q) = %v, want > 0", d1)
	}
	// Non-symmetric in general.
	d2 := KLDivergence(q, p, 0.01)
	if math.Abs(d1-d2) < 1e-12 {
		t.Log("KL symmetric here (possible but unusual)")
	}
	if d := KLDivergence(nil, nil, 0); d != 0 {
		t.Errorf("KL(nil,nil) = %v, want 0", d)
	}
	// Default lambda path.
	if d := KLDivergence(p, q, 0); d <= 0 {
		t.Errorf("KL with default lambda = %v, want > 0", d)
	}
}

func TestJSDistance(t *testing.T) {
	p := map[string]float64{"a": 5, "b": 5}
	if d := JSDistance(p, p); d > 1e-9 {
		t.Errorf("JSD(p,p) = %v, want 0", d)
	}
	q := map[string]float64{"c": 7}
	if d := JSDistance(p, q); math.Abs(d-1) > 1e-9 {
		t.Errorf("JSD(disjoint) = %v, want 1", d)
	}
	if d := JSDistance(nil, nil); d != 0 {
		t.Errorf("JSD(nil,nil) = %v, want 0", d)
	}
	if d := JSDistance(p, nil); d != 1 {
		t.Errorf("JSD(p,nil) = %v, want 1", d)
	}
}

// Property: JS distance is symmetric and in [0,1].
func TestJSDistanceProperties(t *testing.T) {
	f := func(av, bv, cv, dv uint8) bool {
		p := map[string]float64{"a": float64(av), "b": float64(bv)}
		q := map[string]float64{"b": float64(cv), "c": float64(dv)}
		d1, d2 := JSDistance(p, q), JSDistance(q, p)
		return math.Abs(d1-d2) < 1e-9 && d1 >= 0 && d1 <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func allSeeds(string) bool { return true }

func TestTrackerObserve(t *testing.T) {
	tr := NewTracker(Config{Buckets: 24, Resolution: time.Hour})
	tr.Observe(t0, []string{"iceland", "volcano", "travel"}, allSeeds)
	tr.Observe(t0.Add(time.Hour), []string{"iceland", "volcano"}, allSeeds)
	if got := tr.Cooccurrence(MakeKey("iceland", "volcano")); got != 2 {
		t.Errorf("cooc(iceland,volcano) = %v, want 2", got)
	}
	if got := tr.Cooccurrence(MakeKey("volcano", "travel")); got != 1 {
		t.Errorf("cooc(volcano,travel) = %v, want 1", got)
	}
	if got := tr.Cooccurrence(MakeKey("x", "y")); got != 0 {
		t.Errorf("cooc(absent) = %v, want 0", got)
	}
	if got := tr.ActivePairs(); got != 3 {
		t.Errorf("ActivePairs = %d, want 3", got)
	}
}

func TestTrackerSeedFiltering(t *testing.T) {
	tr := NewTracker(Config{Buckets: 4, Resolution: time.Hour})
	isSeed := func(tag string) bool { return tag == "hot" }
	tr.Observe(t0, []string{"hot", "a", "b"}, isSeed)
	// (hot,a) and (hot,b) are candidates; (a,b) is not.
	if got := tr.Cooccurrence(MakeKey("hot", "a")); got != 1 {
		t.Errorf("cooc(hot,a) = %v, want 1", got)
	}
	if got := tr.Cooccurrence(MakeKey("a", "b")); got != 0 {
		t.Errorf("cooc(a,b) = %v, want 0 (no seed in pair)", got)
	}
	if tr.ActivePairs() != 2 {
		t.Errorf("ActivePairs = %d, want 2", tr.ActivePairs())
	}
}

func TestTrackerNilSeedTracksAll(t *testing.T) {
	tr := NewTracker(Config{Buckets: 4, Resolution: time.Hour})
	tr.Observe(t0, []string{"a", "b", "c"}, nil)
	if tr.ActivePairs() != 3 {
		t.Errorf("ActivePairs = %d, want 3 with nil seed predicate", tr.ActivePairs())
	}
}

func TestTrackerDuplicateAndEmptyTags(t *testing.T) {
	tr := NewTracker(Config{Buckets: 4, Resolution: time.Hour})
	tr.Observe(t0, []string{"a", "a", "", "b"}, allSeeds)
	if got := tr.Cooccurrence(MakeKey("a", "b")); got != 1 {
		t.Errorf("cooc = %v, want 1 (dedup within doc)", got)
	}
	if got := tr.Cooccurrence(MakeKey("a", "a")); got != 0 {
		t.Errorf("self-pair tracked: %v", got)
	}
	// Single-tag and empty docs are no-ops.
	tr.Observe(t0, []string{"solo"}, allSeeds)
	tr.Observe(t0, nil, allSeeds)
	if tr.ActivePairs() != 1 {
		t.Errorf("ActivePairs = %d, want 1", tr.ActivePairs())
	}
}

func TestTrackerWindowExpiry(t *testing.T) {
	tr := NewTracker(Config{Buckets: 2, Resolution: time.Hour})
	tr.Observe(t0, []string{"a", "b"}, allSeeds)
	tr.Observe(t0.Add(10*time.Hour), []string{"c", "d"}, allSeeds)
	if got := tr.Cooccurrence(MakeKey("a", "b")); got != 0 {
		t.Errorf("expired cooc = %v, want 0", got)
	}
}

func TestTrackerSweepEvictsEmptyPairs(t *testing.T) {
	tr := NewTracker(Config{Buckets: 2, Resolution: time.Minute, SweepEvery: 4})
	tr.Observe(t0, []string{"a", "b"}, allSeeds)
	for i := 0; i < 6; i++ {
		tr.Observe(t0.Add(time.Hour+time.Duration(i)*time.Minute),
			[]string{"x", "y"}, allSeeds)
	}
	if tr.ActivePairs() != 1 {
		t.Errorf("ActivePairs = %d, want 1 after sweep", tr.ActivePairs())
	}
}

func TestTrackerMaxPairsEviction(t *testing.T) {
	tr := NewTracker(Config{Buckets: 4, Resolution: time.Hour, MaxPairs: 3, SweepEvery: 1})
	// Strong pair observed repeatedly.
	for i := 0; i < 5; i++ {
		tr.Observe(t0.Add(time.Duration(i)*time.Minute), []string{"hot", "topic"}, allSeeds)
	}
	// Weak pairs flood in.
	for i := 0; i < 10; i++ {
		tr.Observe(t0.Add(time.Duration(5+i)*time.Minute),
			[]string{fmt.Sprintf("w%d", i), fmt.Sprintf("v%d", i)}, allSeeds)
	}
	if tr.ActivePairs() > 3 {
		t.Errorf("ActivePairs = %d, want <= 3", tr.ActivePairs())
	}
	if got := tr.Cooccurrence(MakeKey("hot", "topic")); got != 5 {
		t.Errorf("strong pair evicted; cooc = %v, want 5", got)
	}
}

func TestTrackerSeries(t *testing.T) {
	tr := NewTracker(Config{Buckets: 3, Resolution: time.Hour})
	k := MakeKey("a", "b")
	tr.Observe(t0, []string{"a", "b"}, allSeeds)
	tr.Observe(t0.Add(2*time.Hour), []string{"a", "b"}, allSeeds)
	got := tr.Series(k)
	want := []float64{1, 0, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Series = %v, want %v", got, want)
		}
	}
	if tr.Series(MakeKey("no", "pair")) != nil {
		t.Error("Series of unknown pair should be nil")
	}
}

func TestTrackerKeysSorted(t *testing.T) {
	tr := NewTracker(Config{Buckets: 4, Resolution: time.Hour})
	tr.Observe(t0, []string{"c", "a", "b"}, allSeeds)
	keys := tr.KeysSorted()
	if len(keys) != 3 {
		t.Fatalf("got %d keys", len(keys))
	}
	for i := 1; i < len(keys); i++ {
		if keys[i-1].String() >= keys[i].String() {
			t.Errorf("keys not sorted: %v", keys)
		}
	}
	if got := len(tr.Keys()); got != 3 {
		t.Errorf("Keys len = %d", got)
	}
}

func TestTrackerCorrelation(t *testing.T) {
	tr := NewTracker(Config{Buckets: 24, Resolution: time.Hour})
	for i := 0; i < 4; i++ {
		tr.Observe(t0.Add(time.Duration(i)*time.Minute), []string{"a", "b"}, allSeeds)
	}
	// na = nb = 4, nab = 4 → Jaccard 1.
	if got := tr.Correlation(MakeKey("a", "b"), Jaccard, 4, 4, 10); got != 1 {
		t.Errorf("Correlation = %v, want 1", got)
	}
}

// Property: co-occurrence counts from the tracker equal a naive recount for
// in-window observations.
func TestTrackerMatchesNaive(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := NewTracker(Config{Buckets: 128, Resolution: time.Minute, SweepEvery: 1 << 30})
		truth := map[Key]int{}
		cur := t0
		for i := 0; i < int(n); i++ {
			cur = cur.Add(time.Duration(rng.Intn(50)) * time.Second)
			var tags []string
			for j := 0; j < 2+rng.Intn(3); j++ {
				tags = append(tags, fmt.Sprintf("t%d", rng.Intn(5)))
			}
			tr.Observe(cur, tags, allSeeds)
			seen := map[string]bool{}
			var uniq []string
			for _, tg := range tags {
				if !seen[tg] {
					seen[tg] = true
					uniq = append(uniq, tg)
				}
			}
			for x := 0; x < len(uniq); x++ {
				for y := x + 1; y < len(uniq); y++ {
					truth[MakeKey(uniq[x], uniq[y])]++
				}
			}
		}
		for k, want := range truth {
			if int(tr.Cooccurrence(k)) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestDistTracker(t *testing.T) {
	dt := NewDistTracker(Config{Buckets: 24, Resolution: time.Hour})
	// a and b share identical co-tag usage {x}; c co-occurs only with y.
	for i := 0; i < 5; i++ {
		ts := t0.Add(time.Duration(i) * time.Minute)
		dt.Observe(ts, []string{"a", "x"})
		dt.Observe(ts, []string{"b", "x"})
		dt.Observe(ts, []string{"c", "y"})
	}
	simAB := dt.Similarity("a", "b")
	simAC := dt.Similarity("a", "c")
	if simAB <= simAC {
		t.Errorf("Similarity(a,b)=%v not greater than Similarity(a,c)=%v", simAB, simAC)
	}
	if math.Abs(simAB-1) > 1e-9 {
		t.Errorf("identical distributions similarity = %v, want 1", simAB)
	}
	d := dt.Distribution("a")
	if d["x"] != 5 {
		t.Errorf("Distribution(a) = %v", d)
	}
	if dt.Distribution("unknown") != nil {
		t.Error("Distribution of unknown tag should be nil")
	}
}

func TestDistTrackerSweep(t *testing.T) {
	dt := NewDistTracker(Config{Buckets: 2, Resolution: time.Minute, SweepEvery: 3})
	dt.Observe(t0, []string{"a", "b"})
	for i := 0; i < 4; i++ {
		dt.Observe(t0.Add(time.Hour+time.Duration(i)*time.Second), []string{"x", "y"})
	}
	if dt.Distribution("a") != nil && len(dt.Distribution("a")) > 0 {
		t.Error("stale distribution not evicted")
	}
}

func BenchmarkTrackerObserve(b *testing.B) {
	tr := NewTracker(Config{Buckets: 48, Resolution: time.Hour})
	rng := rand.New(rand.NewSource(9))
	docs := make([][]string, 512)
	for i := range docs {
		for j := 0; j < 4; j++ {
			docs[i] = append(docs[i], fmt.Sprintf("tag%d", rng.Intn(500)))
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Observe(t0.Add(time.Duration(i)*time.Second), docs[i%len(docs)], allSeeds)
	}
}

func BenchmarkMeasureCompute(b *testing.B) {
	for _, m := range AllMeasures() {
		b.Run(m.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m.Compute(float64(i%50), 100, 80, 1000)
			}
		})
	}
}
