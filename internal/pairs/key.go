package pairs

import "enblogue/internal/intern"

// Key identifies an unordered tag pair. It is one packed word: the two
// tags' interned IDs (see internal/intern), each biased by +1 so the zero
// Key means "no pair", packed smaller-ID-first. Packing is canonical —
// MakeKey(a, b) == MakeKey(b, a) — so Key works directly as a comparable
// map key, and the hot path (candidate generation, co-occurrence counting,
// shift detection) hashes and compares a single uint64 instead of two
// strings. The tag strings are recovered from the interner only at the
// boundaries: ranking renders, eviction tie-breaks, and the public
// accessors below.
type Key struct {
	packed uint64
}

// MakeKey returns the canonical key for tags a and b, interning both.
func MakeKey(a, b string) Key {
	return KeyFromIDs(intern.Intern(a), intern.Intern(b))
}

// KeyFromIDs returns the canonical key for two interned tag IDs.
func KeyFromIDs(a, b uint32) Key {
	lo, hi := uint64(a)+1, uint64(b)+1
	if lo > hi {
		lo, hi = hi, lo
	}
	return Key{packed: lo<<32 | hi}
}

// IDs returns the pair's interned tag IDs in unspecified order. Only valid
// for non-zero keys.
func (k Key) IDs() (uint32, uint32) {
	return uint32(k.packed>>32) - 1, uint32(k.packed) - 1
}

// tags returns the pair's tag strings in lexicographic order — the
// rendering order every Key accessor and tie-break uses, independent of
// interning order.
func (k Key) tags() (string, string) {
	if k.packed == 0 {
		return "", ""
	}
	a := intern.Lookup(uint32(k.packed>>32) - 1)
	b := intern.Lookup(uint32(k.packed) - 1)
	if b < a {
		a, b = b, a
	}
	return a, b
}

// Tags returns both tags of the pair in lexicographic order, with a single
// pass through the interner — the form hot boundaries use when they need
// both tags.
func (k Key) Tags() (tag1, tag2 string) { return k.tags() }

// Tag1 returns the lexicographically smaller tag of the pair.
func (k Key) Tag1() string { a, _ := k.tags(); return a }

// Tag2 returns the lexicographically larger tag of the pair.
func (k Key) Tag2() string { _, b := k.tags(); return b }

// Contains reports whether the pair includes tag.
func (k Key) Contains(tag string) bool {
	a, b := k.tags()
	return a == tag || b == tag
}

// Other returns the tag paired with the given one, and whether tag is part
// of the pair at all.
func (k Key) Other(tag string) (string, bool) {
	a, b := k.tags()
	switch tag {
	case a:
		return b, true
	case b:
		return a, true
	}
	return "", false
}

// String renders the pair as "tag1+tag2".
func (k Key) String() string {
	a, b := k.tags()
	return a + "+" + b
}

// Compare orders keys exactly as strings.Compare would order their
// String() renderings, without materialising the renderings — the
// allocation-free form of the engine's deterministic tie-break.
func (k Key) Compare(o Key) int {
	if k.packed == o.packed {
		return 0
	}
	a1, a2 := k.tags()
	b1, b2 := o.tags()
	return compareJoined(a1, a2, b1, b2)
}

// Less reports whether k orders before o under Compare.
func (k Key) Less(o Key) bool { return k.Compare(o) < 0 }

// compareJoined compares the virtual strings (a1 + "+" + a2) and
// (b1 + "+" + b2) byte-wise without concatenating them.
func compareJoined(a1, a2, b1, b2 string) int {
	la, lb := len(a1)+1+len(a2), len(b1)+1+len(b2)
	n := la
	if lb < n {
		n = lb
	}
	for i := 0; i < n; i++ {
		ca, cb := joinedByte(a1, a2, i), joinedByte(b1, b2, i)
		if ca != cb {
			if ca < cb {
				return -1
			}
			return 1
		}
	}
	switch {
	case la == lb:
		return 0
	case la < lb:
		return -1
	default:
		return 1
	}
}

// joinedByte returns byte i of the virtual string s1 + "+" + s2.
func joinedByte(s1, s2 string, i int) byte {
	if i < len(s1) {
		return s1[i]
	}
	if i == len(s1) {
		return '+'
	}
	return s2[i-len(s1)-1]
}

// Shard maps the pair to one of n shards. The function is pure in the key
// contents: the same key always lands on the same shard for a given n, and
// for n == 1 every key lands on shard 0.
func (k Key) Shard(n int) int {
	if n <= 1 {
		return 0
	}
	return int(k.hash() % uint64(n))
}

// hash mixes the packed ID pair through splitmix64's finaliser so shard
// assignment spreads evenly for any shard count. Interned IDs are assigned
// in first-seen stream order, so replaying the same stream in two runs
// yields the same IDs and therefore the same shard assignment — the
// property the previous string-FNV hash provided, now at word cost.
func (k Key) hash() uint64 {
	h := k.packed
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}
