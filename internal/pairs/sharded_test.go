package pairs

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

var shT0 = time.Date(2011, 6, 12, 0, 0, 0, 0, time.UTC)

// randomStream generates a reproducible tag stream with enough cardinality
// to exercise sweeps and eviction.
func randomStream(seed int64, docs, vocab, maxTags int) [][]string {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]string, docs)
	for i := range out {
		n := 2 + rng.Intn(maxTags-1)
		tags := make([]string, n)
		for j := range tags {
			tags[j] = fmt.Sprintf("t%d", rng.Intn(vocab))
		}
		out[i] = tags
	}
	return out
}

func sortedKeys(keys []Key) []Key {
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Tag1() != keys[j].Tag1() {
			return keys[i].Tag1() < keys[j].Tag1()
		}
		return keys[i].Tag2() < keys[j].Tag2()
	})
	return keys
}

func TestKeyShardStableAndInRange(t *testing.T) {
	k := MakeKey("volcano", "iceland")
	if k.Shard(1) != 0 {
		t.Errorf("Shard(1) = %d, want 0", k.Shard(1))
	}
	for _, n := range []int{2, 4, 8, 16} {
		s := k.Shard(n)
		if s < 0 || s >= n {
			t.Errorf("Shard(%d) = %d out of range", n, s)
		}
		if again := k.Shard(n); again != s {
			t.Errorf("Shard(%d) unstable: %d then %d", n, s, again)
		}
	}
	// Canonicalised keys shard identically regardless of argument order.
	if MakeKey("a", "b").Shard(8) != MakeKey("b", "a").Shard(8) {
		t.Error("shard differs for swapped tag order")
	}
}

func TestKeyShardSpreads(t *testing.T) {
	const n = 8
	seen := make(map[int]int)
	for i := 0; i < 1000; i++ {
		k := MakeKey(fmt.Sprintf("a%d", i), fmt.Sprintf("b%d", i))
		seen[k.Shard(n)]++
	}
	for s := 0; s < n; s++ {
		if seen[s] == 0 {
			t.Errorf("shard %d never hit over 1000 keys", s)
		}
	}
}

// The sharded tracker must hold exactly the serial tracker's state at every
// point of a sequential stream, for any shard count — including through
// zero-eviction sweeps and over-budget eviction.
func TestShardedTrackerMatchesSerial(t *testing.T) {
	stream := randomStream(7, 4000, 60, 5)
	for _, shards := range []int{1, 2, 4, 8} {
		t.Run(fmt.Sprintf("shards-%d", shards), func(t *testing.T) {
			cfg := Config{
				Buckets: 12, Resolution: time.Hour,
				MaxPairs: 300, SweepEvery: 128,
			}
			serial := NewTracker(cfg)
			cfg.Shards = shards
			sharded := NewShardedTracker(cfg)
			isSeed := func(tag string) bool { return tag[len(tag)-1]%2 == 0 }

			for i, tags := range stream {
				at := shT0.Add(time.Duration(i) * 5 * time.Minute)
				serial.Observe(at, tags, isSeed)
				sharded.Observe(at, tags, isSeed)
				if i%500 != 0 {
					continue
				}
				if got, want := sharded.ActivePairs(), serial.ActivePairs(); got != want {
					t.Fatalf("doc %d: ActivePairs = %d, want %d", i, got, want)
				}
			}
			sk, gk := sortedKeys(serial.Keys()), sortedKeys(sharded.Keys())
			if len(sk) != len(gk) {
				t.Fatalf("key count %d vs serial %d", len(gk), len(sk))
			}
			for i := range sk {
				if sk[i] != gk[i] {
					t.Fatalf("key %d: %v vs serial %v", i, gk[i], sk[i])
				}
				if got, want := sharded.Cooccurrence(sk[i]), serial.Cooccurrence(sk[i]); got != want {
					t.Errorf("cooccurrence %v: %v vs serial %v", sk[i], got, want)
				}
			}
		})
	}
}

func TestShardedTrackerMaxPairsBudget(t *testing.T) {
	cfg := Config{Buckets: 4, Resolution: time.Hour, MaxPairs: 50, Shards: 4}
	tr := NewShardedTracker(cfg)
	// One wide doc generates ~45 pairs; several in the same bucket overflow
	// the budget and must be cut back to MaxPairs by the immediate sweep.
	for d := 0; d < 20; d++ {
		tags := make([]string, 10)
		for i := range tags {
			tags[i] = fmt.Sprintf("w%d-%d", d, i)
		}
		tr.Observe(shT0.Add(time.Duration(d)*time.Minute), tags, nil)
		if got := tr.ActivePairs(); got > cfg.MaxPairs {
			t.Fatalf("doc %d: ActivePairs = %d exceeds budget %d", d, got, cfg.MaxPairs)
		}
	}
}

// Snapshot must agree with Cooccurrence and cover each shard disjointly.
func TestShardedTrackerSnapshot(t *testing.T) {
	tr := NewShardedTracker(Config{Buckets: 6, Resolution: time.Hour, Shards: 4})
	stream := randomStream(11, 500, 30, 4)
	for i, tags := range stream {
		tr.Observe(shT0.Add(time.Duration(i)*time.Minute), tags, nil)
	}
	total := 0
	for i := 0; i < tr.Shards(); i++ {
		for _, pc := range tr.Snapshot(i) {
			total++
			if pc.Key.Shard(tr.Shards()) != i {
				t.Errorf("pair %v in snapshot of wrong shard %d", pc.Key, i)
			}
			if got := tr.Cooccurrence(pc.Key); got != pc.Count {
				t.Errorf("pair %v: snapshot %v vs Cooccurrence %v", pc.Key, pc.Count, got)
			}
		}
	}
	if total != tr.ActivePairs() {
		t.Errorf("snapshots cover %d pairs, ActivePairs = %d", total, tr.ActivePairs())
	}
}

// Concurrent observers and readers must not race (run with -race) and must
// conserve the pair budget.
func TestShardedTrackerConcurrent(t *testing.T) {
	tr := NewShardedTracker(Config{
		Buckets: 6, Resolution: time.Hour, MaxPairs: 200, SweepEvery: 64, Shards: 4,
	})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			stream := randomStream(int64(w), 1000, 40, 4)
			for i, tags := range stream {
				tr.Observe(shT0.Add(time.Duration(i)*time.Minute), tags, nil)
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			for _, k := range tr.Keys() {
				tr.Cooccurrence(k)
			}
			tr.ActivePairs()
		}
	}()
	wg.Wait()
	tr.Sweep()
	if got := tr.ActivePairs(); got > 200 {
		t.Errorf("ActivePairs = %d after concurrent load, want <= 200", got)
	}
}

// DistTracker must bound its counter total by MaxPairs via smallest-count
// eviction, mirroring the plain Tracker's policy.
func TestDistTrackerEviction(t *testing.T) {
	dt := NewDistTracker(Config{
		Buckets: 4, Resolution: time.Hour, MaxPairs: 40, SweepEvery: 1 << 30,
	})
	// High-cardinality stream: every doc introduces fresh tags, so without
	// eviction the counter total grows without bound.
	for d := 0; d < 50; d++ {
		tags := []string{
			fmt.Sprintf("fresh%d-a", d), fmt.Sprintf("fresh%d-b", d), "anchor",
		}
		dt.Observe(shT0.Add(time.Duration(d)*time.Minute), tags)
		if got := dt.Counters(); got > 40 {
			t.Fatalf("doc %d: %d counters exceed budget 40", d, got)
		}
	}
	// The anchor tag's distribution survives (it is in every doc, so its
	// counters are never the smallest when fresher ones exist at equal
	// count — eviction is by count then name, so just assert boundedness
	// and that lookups still work).
	if dt.Distribution("anchor") == nil && dt.Counters() > 0 {
		t.Log("anchor distribution evicted; boundedness still holds")
	}
}

func TestDistTrackerConcurrent(t *testing.T) {
	dt := NewDistTracker(Config{Buckets: 4, Resolution: time.Hour, MaxPairs: 100})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				dt.Observe(shT0.Add(time.Duration(i)*time.Minute),
					[]string{fmt.Sprintf("a%d", i%7), fmt.Sprintf("b%d", w), "c"})
				dt.Similarity(fmt.Sprintf("a%d", i%7), "c")
			}
		}(w)
	}
	wg.Wait()
	if dt.Counters() == 0 {
		t.Error("no counters after concurrent load")
	}
}
