package pairs

import (
	"sync"
	"sync/atomic"
	"time"

	"enblogue/internal/intern"
	"enblogue/internal/window"
)

// PairCount is one tracked pair and its windowed co-occurrence count, as
// returned by ShardedTracker.Snapshot. Slot is the pair's arena slot within
// its shard — stable for the pair's whole tracked lifetime — which the
// engine forwards to the shift detector as a state-cache hint.
type PairCount struct {
	Key   Key
	Count float64
	Slot  int32
}

// trackerShard owns one partition of the pair space: an ID-keyed slot map
// into a slab-allocated counter arena (one backing slice of buckets per
// shard instead of one heap object per pair), and the lock that guards
// them. The window clock is tracker-global (nowNano), not per shard, so
// quiet shards expire their counters at the same times the serial Tracker
// would.
type trackerShard struct {
	//enblogue:lock pairsShard 50
	mu    sync.Mutex
	slots map[Key]int32
	arena *window.CounterArena
	// keys is the reverse index: keys[slot] names the pair occupying that
	// arena slot, zero Key for free slots (a valid pair key is never zero —
	// interned IDs are biased by +1 before packing). Snapshots walk it in
	// slot order, turning the per-tick scan into sequential slab reads
	// instead of a map iteration; slot order is insertion-stable across
	// ticks, which also keeps downstream detector-state access sequential.
	keys []Key
}

// ShardedTracker is the concurrent counterpart of Tracker: the pair space is
// partitioned by hash(Key) % Shards, each shard guarded by its own lock.
// Observe groups a document's candidate pairs by shard and takes each shard
// lock once; readers (Cooccurrence, Snapshot, Keys) lock only the shards
// they touch, so ingest and evaluation proceed in parallel on disjoint
// shards.
//
// Semantics are shard-count independent for a sequentially observed stream:
// sweeps trigger on the same global document counts as the serial Tracker,
// and over-budget eviction ranks all pairs globally by (count, key) before
// deleting — so a ShardedTracker with 1 shard and one with N shards hold
// exactly the same pairs with the same counts at every point. This is what
// lets the sharded engine reproduce the serial engine's rankings
// bit-identically.
type ShardedTracker struct {
	cfg     Config
	shards  []*trackerShard
	npairs  atomic.Int64 // total tracked pairs across shards
	nowNano atomic.Int64 // max observed event time, unix nanos
	sinceGC atomic.Int64 // Observe calls since the last sweep
	// sweepMu serialises whole-tracker sweeps. It is taken before any
	// shard lock (sweepLocked walks the shards under it), never after.
	//
	//enblogue:lock pairsSweep 40
	sweepMu sync.Mutex
}

// NewShardedTracker returns a sharded pair tracker. cfg.Shards <= 1 yields a
// single shard, which behaves exactly like the serial Tracker.
func NewShardedTracker(cfg Config) *ShardedTracker {
	c := cfg.withDefaults()
	n := c.Shards
	if n < 1 {
		n = 1
	}
	shards := make([]*trackerShard, n)
	for i := range shards {
		shards[i] = &trackerShard{
			slots: make(map[Key]int32),
			arena: window.NewCounterArena(c.Buckets, c.Resolution),
		}
	}
	return &ShardedTracker{cfg: c, shards: shards}
}

// Shards returns the number of shards.
func (tr *ShardedTracker) Shards() int { return len(tr.shards) }

// Span returns the co-occurrence window span.
func (tr *ShardedTracker) Span() time.Duration {
	return time.Duration(tr.cfg.Buckets) * tr.cfg.Resolution
}

// now returns the tracker-global clock: the max event time observed so far.
func (tr *ShardedTracker) now() time.Time {
	n := tr.nowNano.Load()
	if n == 0 {
		return time.Time{}
	}
	return time.Unix(0, n)
}

// advanceNow lifts the global clock to t if t is newer.
func (tr *ShardedTracker) advanceNow(t time.Time) {
	tr.advanceNowNano(t.UnixNano())
}

// advanceNowNano is advanceNow on a pre-converted unix-nano timestamp.
func (tr *ShardedTracker) advanceNowNano(n int64) {
	for {
		cur := tr.nowNano.Load()
		if n <= cur && cur != 0 {
			return
		}
		if tr.nowNano.CompareAndSwap(cur, n) {
			return
		}
	}
}

// observeScratch carries one Observe call's per-document working set —
// interned IDs, seed flags, and the per-shard key groups — so the steady
// state allocates nothing. Pooled because Observe is safe for concurrent
// producers.
type observeScratch struct {
	ids     []uint32
	seed    []bool
	byShard [][]Key
}

var scratchPool = sync.Pool{New: func() any { return new(observeScratch) }}

// getScratch returns a scratch with at least n empty per-shard groups.
func getScratch(n int) *observeScratch {
	sc := scratchPool.Get().(*observeScratch)
	for len(sc.byShard) < n {
		sc.byShard = append(sc.byShard, nil)
	}
	return sc
}

// Observe records one document's tag set at time t, incrementing the
// co-occurrence count of every candidate pair (pairs with at least one tag
// satisfying isSeed; nil isSeed tracks all pairs). Safe for concurrent use;
// concurrent observers contend only on the shards their pairs hash to, and
// each shard lock is taken at most once per document.
//
//enblogue:acquires pairsShard
//enblogue:acquires pairsSweep
//enblogue:hotpath
func (tr *ShardedTracker) Observe(t time.Time, tags []string, isSeed func(string) bool) {
	tr.advanceNow(t)
	if len(tags) >= 2 {
		uniq := dedupTags(tags)
		sc := getScratch(len(tr.shards))
		sc.ids = sc.ids[:0]
		sc.seed = sc.seed[:0]
		for _, tag := range uniq {
			sc.ids = append(sc.ids, intern.Intern(tag))
			if isSeed != nil {
				sc.seed = append(sc.seed, isSeed(tag))
			}
		}
		if len(tr.shards) == 1 {
			// Serial-reference fast path: one lock, counters updated
			// inline, no grouping.
			sh := tr.shards[0]
			sh.mu.Lock()
			for i := 0; i < len(sc.ids); i++ {
				for j := i + 1; j < len(sc.ids); j++ {
					if isSeed != nil && !sc.seed[i] && !sc.seed[j] {
						continue
					}
					tr.incLocked(sh, KeyFromIDs(sc.ids[i], sc.ids[j]), t)
				}
			}
			sh.mu.Unlock()
		} else {
			// Group this document's candidate pairs by shard so each shard
			// lock is taken at most once per document.
			n := len(tr.shards)
			for i := 0; i < len(sc.ids); i++ {
				for j := i + 1; j < len(sc.ids); j++ {
					if isSeed != nil && !sc.seed[i] && !sc.seed[j] {
						continue
					}
					k := KeyFromIDs(sc.ids[i], sc.ids[j])
					s := k.Shard(n)
					sc.byShard[s] = append(sc.byShard[s], k)
				}
			}
			for s, keys := range sc.byShard[:n] {
				if len(keys) == 0 {
					continue
				}
				sh := tr.shards[s]
				sh.mu.Lock()
				for _, k := range keys {
					tr.incLocked(sh, k, t)
				}
				sh.mu.Unlock()
				sc.byShard[s] = keys[:0]
			}
		}
		scratchPool.Put(sc)
	}
	// Sweep on the same global triggers as the serial Tracker: every
	// SweepEvery observed documents, or immediately when over budget.
	tr.sinceGC.Add(1)
	if tr.sweepDue() {
		tr.sweepMu.Lock()
		// Re-check after acquiring the lock: a concurrent producer that
		// crossed the threshold at the same time may have already swept.
		if tr.sweepDue() {
			tr.sweepLocked()
		}
		tr.sweepMu.Unlock()
	}
}

// incLocked upserts pair k's counter slot in sh and records the event at
// time t. The caller must hold sh.mu.
//
//enblogue:requires pairsShard
//enblogue:hotpath
func (tr *ShardedTracker) incLocked(sh *trackerShard, k Key, t time.Time) {
	tr.incLockedAbs(sh, k, sh.arena.BucketIndex(t))
}

// incLockedAbs is incLocked with the event time pre-converted to an
// absolute bucket index — the batch path converts once per document. The
// caller must hold sh.mu.
//
//enblogue:requires pairsShard
//enblogue:hotpath
func (tr *ShardedTracker) incLockedAbs(sh *trackerShard, k Key, abs int64) {
	slot, ok := sh.slots[k]
	if !ok {
		slot = sh.arena.Alloc()
		sh.slots[k] = slot
		for int(slot) >= len(sh.keys) {
			sh.keys = append(sh.keys, Key{})
		}
		sh.keys[slot] = k
		tr.npairs.Add(1)
	}
	sh.arena.IncAbs(slot, abs)
}

// dropLocked removes pair k's slot from sh. The caller must hold sh.mu.
//
//enblogue:requires pairsShard
func (tr *ShardedTracker) dropLocked(sh *trackerShard, k Key, slot int32) {
	delete(sh.slots, k)
	sh.keys[slot] = Key{}
	sh.arena.Release(slot)
	tr.npairs.Add(-1)
}

// sweepDue reports whether a sweep trigger is pending.
func (tr *ShardedTracker) sweepDue() bool {
	return tr.sinceGC.Load() >= int64(tr.cfg.SweepEvery) ||
		tr.npairs.Load() > int64(tr.cfg.MaxPairs)
}

// Sweep advances every counter to the tracker clock, drops pairs whose
// windows have emptied, and — if the tracker is still over MaxPairs —
// evicts the pairs with the smallest windowed counts, ties broken by key,
// ranked globally across all shards. Safe for concurrent use.
//
//enblogue:acquires pairsSweep
func (tr *ShardedTracker) Sweep() {
	tr.sweepMu.Lock()
	defer tr.sweepMu.Unlock()
	tr.sweepLocked()
}

// sweepLocked is Sweep's body; callers must hold sweepMu.
//
//enblogue:requires pairsSweep
//enblogue:acquires pairsShard
func (tr *ShardedTracker) sweepLocked() {
	tr.sinceGC.Store(0)
	now := tr.now()
	if now.IsZero() {
		return
	}
	for _, sh := range tr.shards {
		sh.mu.Lock()
		for slot, k := range sh.keys {
			if k == (Key{}) {
				continue
			}
			if sh.arena.ValueAt(int32(slot), now) == 0 {
				tr.dropLocked(sh, k, int32(slot))
			}
		}
		sh.mu.Unlock()
	}
	if tr.npairs.Load() <= int64(tr.cfg.MaxPairs) {
		return
	}
	// Still over budget: rank all pairs globally and evict the smallest,
	// with the same ordering every tracker uses (evictSmallest).
	all := make([]counted[Key], 0, tr.npairs.Load())
	for _, sh := range tr.shards {
		sh.mu.Lock()
		//enblogue:unordered collects every pair; evictSmallest ranks by (count, key), a strict total order independent of input order
		for k, slot := range sh.slots {
			all = append(all, counted[Key]{k, sh.arena.Value(slot)})
		}
		sh.mu.Unlock()
	}
	evictSmallest(all, evictTarget(tr.cfg.MaxPairs), keyLess, func(k Key) {
		sh := tr.shards[k.Shard(len(tr.shards))]
		sh.mu.Lock()
		if slot, ok := sh.slots[k]; ok {
			tr.dropLocked(sh, k, slot)
		}
		sh.mu.Unlock()
	})
}

// Cooccurrence returns the number of windowed documents carrying both tags
// of the pair. Safe for concurrent use.
//
//enblogue:acquires pairsShard
func (tr *ShardedTracker) Cooccurrence(k Key) float64 {
	sh := tr.shards[k.Shard(len(tr.shards))]
	now := tr.now()
	sh.mu.Lock()
	defer sh.mu.Unlock()
	slot, ok := sh.slots[k]
	if !ok {
		return 0
	}
	return sh.arena.ValueAt(slot, now)
}

// Series returns the per-bucket co-occurrence counts of the pair, oldest
// first, or nil if the pair is not tracked. Safe for concurrent use.
func (tr *ShardedTracker) Series(k Key) []float64 {
	sh := tr.shards[k.Shard(len(tr.shards))]
	now := tr.now()
	sh.mu.Lock()
	defer sh.mu.Unlock()
	slot, ok := sh.slots[k]
	if !ok {
		return nil
	}
	sh.arena.Observe(slot, now)
	return sh.arena.Series(slot)
}

// ActivePairs returns the number of pairs currently tracked across shards.
func (tr *ShardedTracker) ActivePairs() int { return int(tr.npairs.Load()) }

// Keys returns all tracked pair keys across shards in unspecified order.
//
//enblogue:acquires pairsShard
func (tr *ShardedTracker) Keys() []Key {
	out := make([]Key, 0, tr.npairs.Load())
	for _, sh := range tr.shards {
		sh.mu.Lock()
		//enblogue:unordered documented unspecified order; ranking consumers sort or select with a strict total order
		for k := range sh.slots {
			out = append(out, k)
		}
		sh.mu.Unlock()
	}
	return out
}

// Snapshot returns shard i's pairs with counters advanced to the tracker
// clock. It takes shard i's lock exactly once, making it the preferred read
// path for per-shard evaluation workers.
func (tr *ShardedTracker) Snapshot(i int) []PairCount {
	return tr.AppendSnapshot(i, nil)
}

// AppendSnapshot appends shard i's pairs — counters advanced to the
// tracker clock — to buf and returns it. Evaluation workers pass a
// per-shard buffer reused across ticks (buf[:0]) so the steady-state tick
// allocates nothing for snapshots.
//
// Pairs are emitted in arena slot order (via the reverse key index), not
// map order: the walk reads the counter slabs sequentially, and the order
// is insertion-stable across ticks so downstream per-pair state allocated
// in first-snapshot order is also visited sequentially. Snapshot order
// cannot affect rankings — per-pair evaluation is independent, and every
// downstream selection (top-k heaps, final sorts) uses a strict total
// order, so any input order yields the same ranking.
//
//enblogue:acquires pairsShard
func (tr *ShardedTracker) AppendSnapshot(i int, buf []PairCount) []PairCount {
	sh := tr.shards[i]
	now := tr.now()
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if cap(buf)-len(buf) < len(sh.slots) {
		grown := make([]PairCount, len(buf), len(buf)+len(sh.slots))
		copy(grown, buf)
		buf = grown
	}
	if now.IsZero() {
		for slot, k := range sh.keys {
			if k == (Key{}) {
				continue
			}
			buf = append(buf, PairCount{Key: k, Count: sh.arena.Value(int32(slot)), Slot: int32(slot)})
		}
		return buf
	}
	abs := sh.arena.BucketIndex(now) // one conversion for the whole walk
	for slot, k := range sh.keys {
		if k == (Key{}) {
			continue
		}
		buf = append(buf, PairCount{Key: k, Count: sh.arena.PeekAbs(int32(slot), abs), Slot: int32(slot)})
	}
	return buf
}
