package pairs

import (
	"sync"
	"sync/atomic"
	"time"

	"enblogue/internal/window"
)

// Shard maps the pair to one of n shards. The function is pure in the key
// contents: the same key always lands on the same shard for a given n, and
// for n == 1 every key lands on shard 0.
func (k Key) Shard(n int) int {
	if n <= 1 {
		return 0
	}
	return int(k.hash() % uint64(n))
}

// hash returns a stable 64-bit hash of the canonical pair rendering: FNV-1a
// with a final avalanche mix. FNV is used instead of maphash so shard
// assignment is identical across processes — replaying the same stream in
// two runs shards identically. The avalanche step (splitmix64's finaliser)
// fixes FNV's weak low bits, which otherwise skew modulo power-of-two shard
// counts.
func (k Key) hash() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(k.Tag1); i++ {
		h ^= uint64(k.Tag1[i])
		h *= prime64
	}
	h ^= '+'
	h *= prime64
	for i := 0; i < len(k.Tag2); i++ {
		h ^= uint64(k.Tag2[i])
		h *= prime64
	}
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// PairCount is one tracked pair and its windowed co-occurrence count, as
// returned by ShardedTracker.Snapshot.
type PairCount struct {
	Key   Key
	Count float64
}

// trackerShard owns one partition of the pair space: its counters and the
// lock that guards them. The window clock is tracker-global (nowNano), not
// per shard, so quiet shards expire their counters at the same times the
// serial Tracker would.
type trackerShard struct {
	mu    sync.Mutex
	pairs map[Key]*window.Counter
}

// ShardedTracker is the concurrent counterpart of Tracker: the pair space is
// partitioned by hash(Key) % Shards, each shard guarded by its own lock.
// Observe groups a document's candidate pairs by shard and takes each shard
// lock once; readers (Cooccurrence, Snapshot, Keys) lock only the shards
// they touch, so ingest and evaluation proceed in parallel on disjoint
// shards.
//
// Semantics are shard-count independent for a sequentially observed stream:
// sweeps trigger on the same global document counts as the serial Tracker,
// and over-budget eviction ranks all pairs globally by (count, key) before
// deleting — so a ShardedTracker with 1 shard and one with N shards hold
// exactly the same pairs with the same counts at every point. This is what
// lets the sharded engine reproduce the serial engine's rankings
// bit-identically.
type ShardedTracker struct {
	cfg     Config
	shards  []*trackerShard
	npairs  atomic.Int64 // total tracked pairs across shards
	nowNano atomic.Int64 // max observed event time, unix nanos
	sinceGC atomic.Int64 // Observe calls since the last sweep
	sweepMu sync.Mutex   // serialises whole-tracker sweeps
}

// NewShardedTracker returns a sharded pair tracker. cfg.Shards <= 1 yields a
// single shard, which behaves exactly like the serial Tracker.
func NewShardedTracker(cfg Config) *ShardedTracker {
	c := cfg.withDefaults()
	n := c.Shards
	if n < 1 {
		n = 1
	}
	shards := make([]*trackerShard, n)
	for i := range shards {
		shards[i] = &trackerShard{pairs: make(map[Key]*window.Counter)}
	}
	return &ShardedTracker{cfg: c, shards: shards}
}

// Shards returns the number of shards.
func (tr *ShardedTracker) Shards() int { return len(tr.shards) }

// Span returns the co-occurrence window span.
func (tr *ShardedTracker) Span() time.Duration {
	return time.Duration(tr.cfg.Buckets) * tr.cfg.Resolution
}

// now returns the tracker-global clock: the max event time observed so far.
func (tr *ShardedTracker) now() time.Time {
	n := tr.nowNano.Load()
	if n == 0 {
		return time.Time{}
	}
	return time.Unix(0, n)
}

// advanceNow lifts the global clock to t if t is newer.
func (tr *ShardedTracker) advanceNow(t time.Time) {
	n := t.UnixNano()
	for {
		cur := tr.nowNano.Load()
		if n <= cur && cur != 0 {
			return
		}
		if tr.nowNano.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Observe records one document's tag set at time t, incrementing the
// co-occurrence count of every candidate pair (pairs with at least one tag
// satisfying isSeed; nil isSeed tracks all pairs). Safe for concurrent use;
// concurrent observers contend only on the shards their pairs hash to.
func (tr *ShardedTracker) Observe(t time.Time, tags []string, isSeed func(string) bool) {
	tr.advanceNow(t)
	if len(tags) >= 2 {
		uniq := dedupTags(tags)
		if len(tr.shards) == 1 {
			// Serial-reference fast path: one lock, counters updated
			// inline, no grouping buffers.
			sh := tr.shards[0]
			sh.mu.Lock()
			forEachCandidatePair(uniq, isSeed, func(k Key) { tr.incLocked(sh, k, t) })
			sh.mu.Unlock()
		} else {
			// Group this document's candidate pairs by shard so each shard
			// lock is taken at most once per document.
			byShard := make([][]Key, len(tr.shards))
			forEachCandidatePair(uniq, isSeed, func(k Key) {
				s := k.Shard(len(tr.shards))
				byShard[s] = append(byShard[s], k)
			})
			for s, keys := range byShard {
				if len(keys) == 0 {
					continue
				}
				sh := tr.shards[s]
				sh.mu.Lock()
				for _, k := range keys {
					tr.incLocked(sh, k, t)
				}
				sh.mu.Unlock()
			}
		}
	}
	// Sweep on the same global triggers as the serial Tracker: every
	// SweepEvery observed documents, or immediately when over budget.
	tr.sinceGC.Add(1)
	if tr.sweepDue() {
		tr.sweepMu.Lock()
		// Re-check after acquiring the lock: a concurrent producer that
		// crossed the threshold at the same time may have already swept.
		if tr.sweepDue() {
			tr.sweepLocked()
		}
		tr.sweepMu.Unlock()
	}
}

// incLocked upserts pair k's counter in sh and records the event at time
// t. The caller must hold sh.mu.
func (tr *ShardedTracker) incLocked(sh *trackerShard, k Key, t time.Time) {
	c, ok := sh.pairs[k]
	if !ok {
		c = window.NewCounter(tr.cfg.Buckets, tr.cfg.Resolution)
		sh.pairs[k] = c
		tr.npairs.Add(1)
	}
	c.Inc(t)
}

// sweepDue reports whether a sweep trigger is pending.
func (tr *ShardedTracker) sweepDue() bool {
	return tr.sinceGC.Load() >= int64(tr.cfg.SweepEvery) ||
		tr.npairs.Load() > int64(tr.cfg.MaxPairs)
}

// Sweep advances every counter to the tracker clock, drops pairs whose
// windows have emptied, and — if the tracker is still over MaxPairs —
// evicts the pairs with the smallest windowed counts, ties broken by key,
// ranked globally across all shards. Safe for concurrent use.
func (tr *ShardedTracker) Sweep() {
	tr.sweepMu.Lock()
	defer tr.sweepMu.Unlock()
	tr.sweepLocked()
}

// sweepLocked is Sweep's body; callers must hold sweepMu.
func (tr *ShardedTracker) sweepLocked() {
	tr.sinceGC.Store(0)
	now := tr.now()
	if now.IsZero() {
		return
	}
	for _, sh := range tr.shards {
		sh.mu.Lock()
		for k, c := range sh.pairs {
			c.Observe(now)
			if c.Value() == 0 {
				delete(sh.pairs, k)
				tr.npairs.Add(-1)
			}
		}
		sh.mu.Unlock()
	}
	if tr.npairs.Load() <= int64(tr.cfg.MaxPairs) {
		return
	}
	// Still over budget: rank all pairs globally and evict the smallest,
	// with the same ordering every tracker uses (evictSmallest).
	all := make([]counted[Key], 0, tr.npairs.Load())
	for _, sh := range tr.shards {
		sh.mu.Lock()
		for k, c := range sh.pairs {
			all = append(all, counted[Key]{k, k.String(), c.Value()})
		}
		sh.mu.Unlock()
	}
	evictSmallest(all, evictTarget(tr.cfg.MaxPairs), func(k Key) {
		sh := tr.shards[k.Shard(len(tr.shards))]
		sh.mu.Lock()
		if _, ok := sh.pairs[k]; ok {
			delete(sh.pairs, k)
			tr.npairs.Add(-1)
		}
		sh.mu.Unlock()
	})
}

// Cooccurrence returns the number of windowed documents carrying both tags
// of the pair. Safe for concurrent use.
func (tr *ShardedTracker) Cooccurrence(k Key) float64 {
	sh := tr.shards[k.Shard(len(tr.shards))]
	now := tr.now()
	sh.mu.Lock()
	defer sh.mu.Unlock()
	c, ok := sh.pairs[k]
	if !ok {
		return 0
	}
	c.Observe(now)
	return c.Value()
}

// Series returns the per-bucket co-occurrence counts of the pair, oldest
// first, or nil if the pair is not tracked. Safe for concurrent use.
func (tr *ShardedTracker) Series(k Key) []float64 {
	sh := tr.shards[k.Shard(len(tr.shards))]
	now := tr.now()
	sh.mu.Lock()
	defer sh.mu.Unlock()
	c, ok := sh.pairs[k]
	if !ok {
		return nil
	}
	c.Observe(now)
	return c.Series()
}

// ActivePairs returns the number of pairs currently tracked across shards.
func (tr *ShardedTracker) ActivePairs() int { return int(tr.npairs.Load()) }

// Keys returns all tracked pair keys across shards in unspecified order.
func (tr *ShardedTracker) Keys() []Key {
	out := make([]Key, 0, tr.npairs.Load())
	for _, sh := range tr.shards {
		sh.mu.Lock()
		for k := range sh.pairs {
			out = append(out, k)
		}
		sh.mu.Unlock()
	}
	return out
}

// Snapshot returns shard i's pairs with counters advanced to the tracker
// clock. It takes shard i's lock exactly once, making it the preferred read
// path for per-shard evaluation workers: each worker snapshots its own
// shard and then computes without holding any lock.
func (tr *ShardedTracker) Snapshot(i int) []PairCount {
	sh := tr.shards[i]
	now := tr.now()
	sh.mu.Lock()
	defer sh.mu.Unlock()
	out := make([]PairCount, 0, len(sh.pairs))
	for k, c := range sh.pairs {
		if !now.IsZero() {
			c.Observe(now)
		}
		out = append(out, PairCount{Key: k, Count: c.Value()})
	}
	return out
}
