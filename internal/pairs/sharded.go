package pairs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"enblogue/internal/intern"
	"enblogue/internal/tier"
	"enblogue/internal/window"
)

// PairCount is one tracked pair and its windowed co-occurrence count, as
// returned by ShardedTracker.Snapshot. Slot is the pair's arena slot within
// its shard — stable for the pair's whole tracked lifetime — which the
// engine forwards to the shift detector as a state-cache hint.
type PairCount struct {
	Key   Key
	Count float64
	Slot  int32
}

// trackerShard owns one partition of the pair space: an ID-keyed slot map
// into a slab-allocated counter arena (one backing slice of buckets per
// shard instead of one heap object per pair), and the lock that guards
// them. The window clock is tracker-global (nowNano), not per shard, so
// quiet shards expire their counters at the same times the serial Tracker
// would.
type trackerShard struct {
	//enblogue:lock pairsShard 50
	mu    sync.Mutex
	slots map[Key]int32
	arena *window.CounterArena
	// keys is the reverse index: keys[slot] names the pair occupying that
	// arena slot, zero Key for free slots (a valid pair key is never zero —
	// interned IDs are biased by +1 before packing). Snapshots walk it in
	// slot order, turning the per-tick scan into sequential slab reads
	// instead of a map iteration; slot order is insertion-stable across
	// ticks, which also keeps downstream detector-state access sequential.
	keys []Key
	// approx maps pairs whose counters were seeded from a tail-tier sketch
	// estimate at promotion (upper bounds, not exact counts) to the seeded
	// amount. The sweep subtracts the seed when such a pair is re-evicted:
	// the seed's mass never left the Count-Min sketch, so re-demoting it
	// would compound the estimate on every promote→evict cycle. Nil until
	// the first promotion; guarded by mu; entries are cleared when the pair
	// is dropped.
	approx map[Key]float64
	// evicted counts lifetime over-budget evictions from this shard;
	// demoted counts those absorbed by the tail tier (equal to evicted
	// while the tier is enabled, zero when disabled).
	evicted atomic.Int64
	demoted atomic.Int64
}

// ShardedTracker is the concurrent counterpart of Tracker: the pair space is
// partitioned by hash(Key) % Shards, each shard guarded by its own lock.
// Observe groups a document's candidate pairs by shard and takes each shard
// lock once; readers (Cooccurrence, Snapshot, Keys) lock only the shards
// they touch, so ingest and evaluation proceed in parallel on disjoint
// shards.
//
// Semantics are shard-count independent for a sequentially observed stream:
// sweeps trigger on the same global document counts as the serial Tracker,
// and over-budget eviction ranks all pairs globally by (count, key) before
// deleting — so a ShardedTracker with 1 shard and one with N shards hold
// exactly the same pairs with the same counts at every point. This is what
// lets the sharded engine reproduce the serial engine's rankings
// bit-identically.
type ShardedTracker struct {
	cfg     Config
	shards  []*trackerShard
	npairs  atomic.Int64 // total tracked pairs across shards
	nowNano atomic.Int64 // max observed event time, unix nanos
	sinceGC atomic.Int64 // Observe calls since the last sweep
	// sweepMu serialises whole-tracker sweeps. It is taken before any
	// shard lock (sweepLocked walks the shards under it), never after.
	//
	//enblogue:lock pairsSweep 40
	sweepMu sync.Mutex

	// tails is the cold tier, one Tail per shard (nil when disabled): the
	// sweep demotes every over-budget eviction victim into its shard's
	// tail, and PromoteTail re-admits tail pairs whose estimates cross the
	// admission floor. Each Tail carries its own mutex (lockdiscipline
	// class tier, order 45) — demotion locks it after every shard lock has
	// been released (holding only sweepMu, 40 < 45) and promotion locks it
	// before taking shard locks (45 < 50), both ascending.
	tails []*tier.Tail
	// floorBits is the admission floor as float64 bits: the windowed count
	// of the largest pair the last over-budget sweep evicted. A tail pair
	// must beat it to be promoted — i.e. its estimate must show it would
	// have survived that eviction.
	floorBits atomic.Uint64
	// promotions counts lifetime tail→exact promotions.
	promotions atomic.Int64
	// onEvict, when set via SetOnEvict, observes every over-budget
	// eviction with the victim's windowed count — the test seam for
	// cross-validating tail estimates against exact ground truth. Called
	// under sweepMu with no shard lock held.
	onEvict func(Key, float64)
	// sweepAll and sweepVictims are the over-budget sweep's ranking and
	// victim buffers, reused across sweeps so a tracker under sustained
	// eviction pressure does not allocate per sweep. Guarded by sweepMu.
	sweepAll     []counted[Key]
	sweepVictims []counted[Key]
	// sweepSeeds[i] is the sketch-seeded portion of sweepVictims[i]'s
	// counter (zero for pairs never promoted), captured under the shard
	// lock at drop time for the demotion pass. Guarded by sweepMu.
	sweepSeeds []float64
}

// NewShardedTracker returns a sharded pair tracker. cfg.Shards <= 1 yields a
// single shard, which behaves exactly like the serial Tracker.
func NewShardedTracker(cfg Config) *ShardedTracker {
	c := cfg.withDefaults()
	n := c.Shards
	if n < 1 {
		n = 1
	}
	shards := make([]*trackerShard, n)
	for i := range shards {
		shards[i] = &trackerShard{
			slots: make(map[Key]int32),
			arena: window.NewCounterArena(c.Buckets, c.Resolution),
		}
	}
	tr := &ShardedTracker{cfg: c, shards: shards}
	if c.Tail != nil {
		tcfg := *c.Tail
		tcfg.Span = int64(c.Buckets) * int64(c.Resolution)
		tr.tails = make([]*tier.Tail, n)
		for i := range tr.tails {
			tr.tails[i] = tier.New(tcfg)
		}
	}
	return tr
}

// SetOnEvict installs the eviction observer; see the field doc. Must be
// set before the first Observe.
func (tr *ShardedTracker) SetOnEvict(fn func(Key, float64)) { tr.onEvict = fn }

// TailEnabled reports whether the cold tier is active.
func (tr *ShardedTracker) TailEnabled() bool { return tr.tails != nil }

// floor returns the current admission floor (0 until the first
// over-budget eviction).
func (tr *ShardedTracker) floor() float64 {
	return math.Float64frombits(tr.floorBits.Load())
}

// Shards returns the number of shards.
func (tr *ShardedTracker) Shards() int { return len(tr.shards) }

// Span returns the co-occurrence window span.
func (tr *ShardedTracker) Span() time.Duration {
	return time.Duration(tr.cfg.Buckets) * tr.cfg.Resolution
}

// now returns the tracker-global clock: the max event time observed so far.
func (tr *ShardedTracker) now() time.Time {
	n := tr.nowNano.Load()
	if n == 0 {
		return time.Time{}
	}
	return time.Unix(0, n)
}

// advanceNow lifts the global clock to t if t is newer.
func (tr *ShardedTracker) advanceNow(t time.Time) {
	tr.advanceNowNano(t.UnixNano())
}

// advanceNowNano is advanceNow on a pre-converted unix-nano timestamp.
func (tr *ShardedTracker) advanceNowNano(n int64) {
	for {
		cur := tr.nowNano.Load()
		if n <= cur && cur != 0 {
			return
		}
		if tr.nowNano.CompareAndSwap(cur, n) {
			return
		}
	}
}

// observeScratch carries one Observe call's per-document working set —
// interned IDs, seed flags, and the per-shard key groups — so the steady
// state allocates nothing. Pooled because Observe is safe for concurrent
// producers.
type observeScratch struct {
	ids     []uint32
	seed    []bool
	byShard [][]Key
}

var scratchPool = sync.Pool{New: func() any { return new(observeScratch) }}

// getScratch returns a scratch with at least n empty per-shard groups.
func getScratch(n int) *observeScratch {
	sc := scratchPool.Get().(*observeScratch)
	for len(sc.byShard) < n {
		sc.byShard = append(sc.byShard, nil)
	}
	return sc
}

// Observe records one document's tag set at time t, incrementing the
// co-occurrence count of every candidate pair (pairs with at least one tag
// satisfying isSeed; nil isSeed tracks all pairs). Safe for concurrent use;
// concurrent observers contend only on the shards their pairs hash to, and
// each shard lock is taken at most once per document.
//
//enblogue:acquires pairsShard
//enblogue:acquires pairsSweep
//enblogue:acquires tier
//enblogue:hotpath
func (tr *ShardedTracker) Observe(t time.Time, tags []string, isSeed func(string) bool) {
	tr.advanceNow(t)
	if len(tags) >= 2 {
		uniq := dedupTags(tags)
		sc := getScratch(len(tr.shards))
		sc.ids = sc.ids[:0]
		sc.seed = sc.seed[:0]
		for _, tag := range uniq {
			sc.ids = append(sc.ids, intern.Intern(tag))
			if isSeed != nil {
				sc.seed = append(sc.seed, isSeed(tag))
			}
		}
		if len(tr.shards) == 1 {
			// Serial-reference fast path: one lock, counters updated
			// inline, no grouping.
			sh := tr.shards[0]
			sh.mu.Lock()
			for i := 0; i < len(sc.ids); i++ {
				for j := i + 1; j < len(sc.ids); j++ {
					if isSeed != nil && !sc.seed[i] && !sc.seed[j] {
						continue
					}
					tr.incLocked(sh, KeyFromIDs(sc.ids[i], sc.ids[j]), t)
				}
			}
			sh.mu.Unlock()
		} else {
			// Group this document's candidate pairs by shard so each shard
			// lock is taken at most once per document.
			n := len(tr.shards)
			for i := 0; i < len(sc.ids); i++ {
				for j := i + 1; j < len(sc.ids); j++ {
					if isSeed != nil && !sc.seed[i] && !sc.seed[j] {
						continue
					}
					k := KeyFromIDs(sc.ids[i], sc.ids[j])
					s := k.Shard(n)
					sc.byShard[s] = append(sc.byShard[s], k)
				}
			}
			for s, keys := range sc.byShard[:n] {
				if len(keys) == 0 {
					continue
				}
				sh := tr.shards[s]
				sh.mu.Lock()
				for _, k := range keys {
					tr.incLocked(sh, k, t)
				}
				sh.mu.Unlock()
				sc.byShard[s] = keys[:0]
			}
		}
		scratchPool.Put(sc)
	}
	// Sweep on the same global triggers as the serial Tracker: every
	// SweepEvery observed documents, or immediately when over budget.
	tr.sinceGC.Add(1)
	if tr.sweepDue() {
		tr.sweepMu.Lock()
		// Re-check after acquiring the lock: a concurrent producer that
		// crossed the threshold at the same time may have already swept.
		if tr.sweepDue() {
			tr.sweepLocked()
		}
		tr.sweepMu.Unlock()
	}
}

// incLocked upserts pair k's counter slot in sh and records the event at
// time t. The caller must hold sh.mu.
//
//enblogue:requires pairsShard
//enblogue:hotpath
func (tr *ShardedTracker) incLocked(sh *trackerShard, k Key, t time.Time) {
	tr.incLockedAbs(sh, k, sh.arena.BucketIndex(t))
}

// incLockedAbs is incLocked with the event time pre-converted to an
// absolute bucket index — the batch path converts once per document. The
// caller must hold sh.mu.
//
//enblogue:requires pairsShard
//enblogue:hotpath
func (tr *ShardedTracker) incLockedAbs(sh *trackerShard, k Key, abs int64) {
	slot, ok := sh.slots[k]
	if !ok {
		slot = sh.arena.Alloc()
		sh.slots[k] = slot
		for int(slot) >= len(sh.keys) {
			sh.keys = append(sh.keys, Key{})
		}
		sh.keys[slot] = k
		tr.npairs.Add(1)
	}
	sh.arena.IncAbs(slot, abs)
}

// dropLocked removes pair k's slot from sh. The caller must hold sh.mu.
//
//enblogue:requires pairsShard
func (tr *ShardedTracker) dropLocked(sh *trackerShard, k Key, slot int32) {
	delete(sh.slots, k)
	delete(sh.approx, k)
	sh.keys[slot] = Key{}
	sh.arena.Release(slot)
	tr.npairs.Add(-1)
}

// sweepDue reports whether a sweep trigger is pending.
func (tr *ShardedTracker) sweepDue() bool {
	return tr.sinceGC.Load() >= int64(tr.cfg.SweepEvery) ||
		tr.npairs.Load() > int64(tr.cfg.MaxPairs)
}

// Sweep advances every counter to the tracker clock, drops pairs whose
// windows have emptied, and — if the tracker is still over MaxPairs —
// evicts the pairs with the smallest windowed counts, ties broken by key,
// ranked globally across all shards. Safe for concurrent use.
//
//enblogue:acquires pairsSweep
//enblogue:acquires pairsShard
//enblogue:acquires tier
func (tr *ShardedTracker) Sweep() {
	tr.sweepMu.Lock()
	defer tr.sweepMu.Unlock()
	tr.sweepLocked()
}

// sweepLocked is Sweep's body; callers must hold sweepMu.
//
//enblogue:requires pairsSweep
//enblogue:acquires pairsShard
//enblogue:acquires tier
func (tr *ShardedTracker) sweepLocked() {
	tr.sinceGC.Store(0)
	now := tr.now()
	if now.IsZero() {
		return
	}
	for _, sh := range tr.shards {
		sh.mu.Lock()
		for slot, k := range sh.keys {
			if k == (Key{}) {
				continue
			}
			if sh.arena.ValueAt(int32(slot), now) == 0 {
				tr.dropLocked(sh, k, int32(slot))
			}
		}
		sh.mu.Unlock()
	}
	if tr.npairs.Load() <= int64(tr.cfg.MaxPairs) {
		return
	}
	// Still over budget: rank all pairs globally and evict the smallest,
	// with the same ordering every tracker uses (evictSmallest). Victims
	// are collected (not demoted) inside the drop closure: demotion takes
	// each tail's tier lock (order 45), which must never be acquired while
	// a shard lock (order 50) is held.
	all := tr.sweepAll[:0]
	for _, sh := range tr.shards {
		sh.mu.Lock()
		//enblogue:unordered collects every pair; evictSmallest ranks by (count, key), a strict total order independent of input order
		for k, slot := range sh.slots {
			all = append(all, counted[Key]{k, sh.arena.Value(slot)})
		}
		sh.mu.Unlock()
	}
	victims := tr.sweepVictims[:0]
	seeds := tr.sweepSeeds[:0]
	evictSmallest(all, evictTarget(tr.cfg.MaxPairs), keyLess, func(k Key, count float64) {
		sh := tr.shards[k.Shard(len(tr.shards))]
		sh.mu.Lock()
		if slot, ok := sh.slots[k]; ok {
			seed := sh.approx[k] // zero for never-promoted pairs
			tr.dropLocked(sh, k, slot)
			sh.evicted.Add(1)
			victims = append(victims, counted[Key]{k, count})
			seeds = append(seeds, seed)
		}
		sh.mu.Unlock()
	})
	tr.sweepAll, tr.sweepVictims, tr.sweepSeeds = all, victims, seeds
	if len(victims) == 0 {
		return
	}
	// Victims arrive smallest-first, so the last one defines the admission
	// floor: the count a tail pair's estimate must beat to earn its way
	// back into the exact tier.
	tr.floorBits.Store(math.Float64bits(victims[len(victims)-1].v))
	if tr.tails != nil {
		// Demote with no shard lock held (only sweepMu): sweepMu (40) →
		// tier (45) is an ascending acquisition. Victim order is the
		// deterministic eviction order, so per-shard summary contents are
		// replay-identical too. A victim whose counter was sketch-seeded
		// demotes only its excess over the seed — the seed's mass is still
		// resident in the sketch, and re-adding it would double the
		// estimate on every promote→evict cycle until inflated tail pairs
		// crowd out genuinely heavy ones. The floor of one event keeps the
		// pair in the heavy-hitter summary (and so promotable) even when
		// nothing new was observed; the overshoot stays on the safe,
		// upper-bound side.
		nowNano := tr.nowNano.Load()
		for i, v := range victims {
			amt := v.v
			if seeds[i] > 0 {
				if amt = amt - seeds[i]; amt < 1 {
					amt = 1
				}
			}
			s := v.key.Shard(len(tr.shards))
			tr.tails[s].Demote(nowNano, v.key.packed, uint64(amt))
			tr.shards[s].demoted.Add(1)
		}
	}
	if tr.onEvict != nil {
		for _, v := range victims {
			tr.onEvict(v.key, v.v)
		}
	}
}

// PromoteTail re-admits every tail pair whose windowed estimate strictly
// exceeds the admission floor, seeding its exact counter with the estimate
// (an upper bound — see internal/tier) at the bucket containing t and
// flagging it approximate. Promotions are capped at the tracker's current
// headroom under MaxPairs, best estimates first (ties broken by rendered
// key order, like eviction), so a promotion burst cannot blow the memory
// budget and then thrash the next sweep. Promoted keys leave the tail
// summaries; their sketch mass decays on the generation schedule. Returns
// the number of pairs promoted. The engine calls this at tick time, before
// evaluation snapshots, so promoted pairs are scored in the same tick.
//
//enblogue:acquires tier
//enblogue:acquires pairsShard
func (tr *ShardedTracker) PromoteTail(t time.Time) int {
	if tr.tails == nil {
		return 0
	}
	headroom := tr.cfg.MaxPairs - int(tr.npairs.Load())
	if headroom <= 0 {
		return 0
	}
	nowNano := tr.nowNano.Load()
	if nowNano == 0 {
		// No document observed yet: the tail is necessarily empty.
		return 0
	}
	floor := uint64(tr.floor())
	var cands []tier.Candidate
	for _, tl := range tr.tails {
		cands = tl.AppendCandidates(nowNano, floor, cands)
	}
	if len(cands) == 0 {
		return 0
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].Est != cands[j].Est {
			return cands[i].Est > cands[j].Est
		}
		return Key{packed: cands[i].Key}.Less(Key{packed: cands[j].Key})
	})
	if len(cands) > headroom {
		cands = cands[:headroom]
	}
	abs := nowNano / int64(tr.cfg.Resolution)
	for _, c := range cands {
		k := Key{packed: c.Key}
		s := k.Shard(len(tr.shards))
		sh := tr.shards[s]
		sh.mu.Lock()
		slot, ok := sh.slots[k]
		if !ok {
			slot = sh.arena.Alloc()
			sh.slots[k] = slot
			for int(slot) >= len(sh.keys) {
				sh.keys = append(sh.keys, Key{})
			}
			sh.keys[slot] = k
			tr.npairs.Add(1)
		}
		// If the pair re-emerged on its own since demotion, the counter
		// holds only post-eviction events; the estimate covers the
		// pre-eviction mass, so adding keeps the seeded total an upper
		// bound on the true windowed count.
		sh.arena.AddAbs(slot, abs, float64(c.Est))
		if sh.approx == nil {
			sh.approx = make(map[Key]float64)
		}
		// Accumulate, not assign: a pair promoted twice without an eviction
		// in between (impossible today — Remove gates re-candidacy on a
		// fresh demotion — but cheap to keep correct) carries both seeds.
		sh.approx[k] += float64(c.Est)
		sh.mu.Unlock()
		tr.tails[s].Remove(c.Key)
	}
	tr.promotions.Add(int64(len(cands)))
	return len(cands)
}

// ApproxSeeded reports whether pair k is currently tracked with a counter
// seeded from a tail-tier estimate (an upper bound, not an exact count).
//
//enblogue:acquires pairsShard
func (tr *ShardedTracker) ApproxSeeded(k Key) bool {
	sh := tr.shards[k.Shard(len(tr.shards))]
	sh.mu.Lock()
	_, ok := sh.approx[k]
	sh.mu.Unlock()
	return ok
}

// TailStats is a point-in-time view of the cold tier and the eviction
// counters feeding it, aggregated across shards. The per-shard slices are
// always populated (eviction counting predates the tier and works with it
// disabled); the tier fields are zero when Enabled is false.
type TailStats struct {
	Enabled           bool
	TailPairs         int     // distinct pairs in the live tail summaries
	Epsilon           float64 // configured Count-Min error fraction
	ErrorBound        float64 // epsilon × live windowed tail mass
	Promotions        int64   // lifetime tail→exact promotions
	ApproxSeededPairs int     // tracked pairs whose counters are sketch-seeded
	EvictedByShard    []int64 // lifetime over-budget evictions per shard
	DemotedByShard    []int64 // of those, absorbed by the tail, per shard
}

// TailStats returns the current tier statistics. Safe for concurrent use.
//
//enblogue:acquires tier
//enblogue:acquires pairsShard
func (tr *ShardedTracker) TailStats() TailStats {
	ts := TailStats{
		EvictedByShard: make([]int64, len(tr.shards)),
		DemotedByShard: make([]int64, len(tr.shards)),
	}
	for i, sh := range tr.shards {
		ts.EvictedByShard[i] = sh.evicted.Load()
		ts.DemotedByShard[i] = sh.demoted.Load()
		sh.mu.Lock()
		ts.ApproxSeededPairs += len(sh.approx)
		sh.mu.Unlock()
	}
	if tr.tails == nil {
		return ts
	}
	ts.Enabled = true
	ts.Promotions = tr.promotions.Load()
	var mass uint64
	for _, tl := range tr.tails {
		s := tl.Stats()
		ts.TailPairs += s.Pairs
		mass += s.Mass
		ts.Epsilon = s.Epsilon
	}
	ts.ErrorBound = ts.Epsilon * float64(mass)
	return ts
}

// Cooccurrence returns the number of windowed documents carrying both tags
// of the pair. Safe for concurrent use.
//
//enblogue:acquires pairsShard
func (tr *ShardedTracker) Cooccurrence(k Key) float64 {
	sh := tr.shards[k.Shard(len(tr.shards))]
	now := tr.now()
	sh.mu.Lock()
	defer sh.mu.Unlock()
	slot, ok := sh.slots[k]
	if !ok {
		return 0
	}
	return sh.arena.ValueAt(slot, now)
}

// Series returns the per-bucket co-occurrence counts of the pair, oldest
// first, or nil if the pair is not tracked. Safe for concurrent use.
func (tr *ShardedTracker) Series(k Key) []float64 {
	sh := tr.shards[k.Shard(len(tr.shards))]
	now := tr.now()
	sh.mu.Lock()
	defer sh.mu.Unlock()
	slot, ok := sh.slots[k]
	if !ok {
		return nil
	}
	sh.arena.Observe(slot, now)
	return sh.arena.Series(slot)
}

// ActivePairs returns the number of pairs currently tracked across shards.
func (tr *ShardedTracker) ActivePairs() int { return int(tr.npairs.Load()) }

// Keys returns all tracked pair keys across shards in unspecified order.
//
//enblogue:acquires pairsShard
func (tr *ShardedTracker) Keys() []Key {
	out := make([]Key, 0, tr.npairs.Load())
	for _, sh := range tr.shards {
		sh.mu.Lock()
		//enblogue:unordered documented unspecified order; ranking consumers sort or select with a strict total order
		for k := range sh.slots {
			out = append(out, k)
		}
		sh.mu.Unlock()
	}
	return out
}

// Snapshot returns shard i's pairs with counters advanced to the tracker
// clock. It takes shard i's lock exactly once, making it the preferred read
// path for per-shard evaluation workers.
func (tr *ShardedTracker) Snapshot(i int) []PairCount {
	return tr.AppendSnapshot(i, nil)
}

// AppendSnapshot appends shard i's pairs — counters advanced to the
// tracker clock — to buf and returns it. Evaluation workers pass a
// per-shard buffer reused across ticks (buf[:0]) so the steady-state tick
// allocates nothing for snapshots.
//
// Pairs are emitted in arena slot order (via the reverse key index), not
// map order: the walk reads the counter slabs sequentially, and the order
// is insertion-stable across ticks so downstream per-pair state allocated
// in first-snapshot order is also visited sequentially. Snapshot order
// cannot affect rankings — per-pair evaluation is independent, and every
// downstream selection (top-k heaps, final sorts) uses a strict total
// order, so any input order yields the same ranking.
//
//enblogue:acquires pairsShard
func (tr *ShardedTracker) AppendSnapshot(i int, buf []PairCount) []PairCount {
	sh := tr.shards[i]
	now := tr.now()
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if cap(buf)-len(buf) < len(sh.slots) {
		grown := make([]PairCount, len(buf), len(buf)+len(sh.slots))
		copy(grown, buf)
		buf = grown
	}
	if now.IsZero() {
		for slot, k := range sh.keys {
			if k == (Key{}) {
				continue
			}
			buf = append(buf, PairCount{Key: k, Count: sh.arena.Value(int32(slot)), Slot: int32(slot)})
		}
		return buf
	}
	abs := sh.arena.BucketIndex(now) // one conversion for the whole walk
	for slot, k := range sh.keys {
		if k == (Key{}) {
			continue
		}
		buf = append(buf, PairCount{Key: k, Count: sh.arena.PeekAbs(int32(slot), abs), Slot: int32(slot)})
	}
	return buf
}
