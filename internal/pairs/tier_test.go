package pairs

import (
	"fmt"
	"testing"
	"time"

	"enblogue/internal/tier"
)

// tierTestConfig is a single-shard tracker with a tiny pair budget and a
// tail tier sized so the test's demotions cannot collide in the sketch.
// SweepEvery is effectively disabled: sweeps fire only on budget overflow.
func tierTestConfig() Config {
	return Config{
		Buckets: 8, Resolution: time.Hour,
		MaxPairs: 30, SweepEvery: 1 << 30, Shards: 1,
		Tail: &tier.Config{Epsilon: 0.001, Delta: 0.001, TopK: 256},
	}
}

// TestTailDemoteRepromoteSeedsUpperBound walks one pair through the full
// two-tier cycle — evicted, demoted, demoted again, promoted back — and
// checks that the repromoted counter carries the sketch-seeded upper bound
// and the approximate flag.
//
// The construction is exact. Pair P ("a0","a1") has the smallest rendered
// key, so whenever every tracked pair holds count 1, an over-budget sweep
// evicts P first (eviction ranks by (count, key)). MaxPairs 30 gives an
// eviction target of 27, so a sweep fires when the 31st pair lands and
// evicts the 4 smallest.
func TestTailDemoteRepromoteSeedsUpperBound(t *testing.T) {
	tr := NewShardedTracker(tierTestConfig())
	p := MakeKey("a0", "a1")
	demoted := map[Key]float64{}
	events := 0
	tr.SetOnEvict(func(k Key, count float64) { demoted[k] += count; events++ })

	at := shT0
	single := func(prefix string, i int) {
		tr.Observe(at, []string{fmt.Sprintf("%sa%02d", prefix, i), fmt.Sprintf("%sb%02d", prefix, i)}, nil)
	}

	// Phase A: P enters, 34 singleton pairs overflow the budget twice.
	// Sweep 1 (at 31 pairs) evicts P and the 3 smallest z-pairs; sweep 2
	// evicts 4 more z-pairs; the phase ends exactly at the 27-pair target.
	tr.Observe(at, []string{"a0", "a1"}, nil)
	for i := 0; i < 34; i++ {
		single("z", i)
	}
	if got := tr.ActivePairs(); got != 27 {
		t.Fatalf("after phase A: %d active pairs, want 27", got)
	}
	if demoted[p] != 1 {
		t.Fatalf("P demoted mass %v after phase A, want 1", demoted[p])
	}

	// Phase B: P re-enters (count 1 again — eviction destroyed its history),
	// three fresh pairs push the tracker to 31, and the sweep evicts P a
	// second time. Its sketch estimate is now 2; every other victim holds 1,
	// and the admission floor is 1.
	tr.Observe(at, []string{"a0", "a1"}, nil)
	for i := 0; i < 3; i++ {
		single("y", i)
	}
	if got := tr.ActivePairs(); got != 27 {
		t.Fatalf("after phase B: %d active pairs, want 27", got)
	}
	if demoted[p] != 2 {
		t.Fatalf("P demoted mass %v after phase B, want 2", demoted[p])
	}

	// Promotion: only P's estimate (2) strictly beats the floor (1).
	if got := tr.PromoteTail(at); got != 1 {
		t.Fatalf("PromoteTail promoted %d pairs, want exactly P", got)
	}
	if !tr.ApproxSeeded(p) {
		t.Fatal("repromoted pair not flagged approximate")
	}
	if got := tr.Cooccurrence(p); got != demoted[p] {
		t.Fatalf("repromoted counter %v, want sketch-seeded upper bound %v", got, demoted[p])
	}
	// Promotion removed P from the tail summaries: nothing left to promote.
	if got := tr.PromoteTail(at); got != 0 {
		t.Fatalf("second PromoteTail promoted %d pairs, want 0", got)
	}

	ts := tr.TailStats()
	if !ts.Enabled {
		t.Fatal("TailStats.Enabled false with tail configured")
	}
	if ts.Promotions != 1 || ts.ApproxSeededPairs != 1 {
		t.Fatalf("promotions %d / approx-seeded %d, want 1 / 1", ts.Promotions, ts.ApproxSeededPairs)
	}
	if len(ts.EvictedByShard) != 1 || len(ts.DemotedByShard) != 1 {
		t.Fatalf("per-shard slices sized %d/%d, want 1/1", len(ts.EvictedByShard), len(ts.DemotedByShard))
	}
	if got := ts.EvictedByShard[0]; got != int64(events) {
		t.Fatalf("evicted counter %d, want %d observed evictions", got, events)
	}
	if got := ts.DemotedByShard[0]; got != int64(events) {
		t.Fatalf("demoted counter %d, want %d — every eviction feeds the tail", got, events)
	}
	if ts.TailPairs == 0 || ts.ErrorBound <= 0 {
		t.Fatalf("tail pairs %d / error bound %v, want both positive", ts.TailPairs, ts.ErrorBound)
	}

	// A fresh observation of the promoted pair accumulates on top of the
	// seed — the counter keeps covering pre-eviction mass.
	tr.Observe(at, []string{"a0", "a1"}, nil)
	if got := tr.Cooccurrence(p); got != demoted[p]+1 {
		t.Fatalf("counter %v after one more observation, want %v", got, demoted[p]+1)
	}
}

// TestTailStatsWithTierDisabled pins the counters that predate the tier:
// per-shard eviction counts are live without a tail, demotion counts and
// tier fields stay zero.
func TestTailStatsWithTierDisabled(t *testing.T) {
	cfg := tierTestConfig()
	cfg.Tail = nil
	cfg.Shards = 4
	tr := NewShardedTracker(cfg)
	if tr.TailEnabled() {
		t.Fatal("TailEnabled true without a tail config")
	}

	at := shT0
	for i := 0; i < 64; i++ {
		tr.Observe(at, []string{fmt.Sprintf("za%02d", i), fmt.Sprintf("zb%02d", i)}, nil)
	}
	ts := tr.TailStats()
	if ts.Enabled {
		t.Fatal("TailStats.Enabled true without a tail")
	}
	if len(ts.EvictedByShard) != 4 || len(ts.DemotedByShard) != 4 {
		t.Fatalf("per-shard slices sized %d/%d, want 4/4", len(ts.EvictedByShard), len(ts.DemotedByShard))
	}
	var evicted, demotedN int64
	for i := range ts.EvictedByShard {
		evicted += ts.EvictedByShard[i]
		demotedN += ts.DemotedByShard[i]
	}
	if evicted == 0 {
		t.Fatal("no evictions counted despite budget overflow")
	}
	if demotedN != 0 || ts.TailPairs != 0 || ts.Promotions != 0 {
		t.Fatalf("tier-disabled stats carry tier state: %+v", ts)
	}
	if got := tr.PromoteTail(at); got != 0 {
		t.Fatalf("PromoteTail promoted %d pairs without a tail", got)
	}
}
