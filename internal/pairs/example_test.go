package pairs_test

import (
	"fmt"
	"time"

	"enblogue/internal/pairs"
)

func ExampleMeasure_Compute() {
	// 6 documents carry both tags, 10 carry "iceland", 8 carry "volcano",
	// 100 documents total in the window.
	fmt.Printf("jaccard: %.3f\n", pairs.Jaccard.Compute(6, 10, 8, 100))
	fmt.Printf("cosine:  %.3f\n", pairs.Cosine.Compute(6, 10, 8, 100))
	fmt.Printf("overlap: %.3f\n", pairs.Overlap.Compute(6, 10, 8, 100))
	// Output:
	// jaccard: 0.500
	// cosine:  0.671
	// overlap: 0.750
}

func ExampleTracker() {
	tr := pairs.NewTracker(pairs.Config{Buckets: 24, Resolution: time.Hour})
	isSeed := func(tag string) bool { return tag == "iceland" }

	t0 := time.Date(2011, 6, 12, 0, 0, 0, 0, time.UTC)
	tr.Observe(t0, []string{"iceland", "volcano", "travel"}, isSeed)
	tr.Observe(t0.Add(time.Hour), []string{"iceland", "volcano"}, isSeed)

	k := pairs.MakeKey("volcano", "iceland") // canonical regardless of order
	fmt.Println(k, "co-occurs in", tr.Cooccurrence(k), "documents")
	// The (volcano, travel) pair contains no seed: not tracked.
	fmt.Println("tracked pairs:", tr.ActivePairs())
	// Output:
	// iceland+volcano co-occurs in 2 documents
	// tracked pairs: 2
}

func ExampleMakeKey() {
	a := pairs.MakeKey("volcano", "iceland")
	b := pairs.MakeKey("iceland", "volcano")
	fmt.Println(a == b, a.String())
	// Output:
	// true iceland+volcano
}
