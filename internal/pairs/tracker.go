package pairs

import (
	"sort"
	"time"

	"enblogue/internal/window"
)

// Key identifies an unordered tag pair; Tag1 < Tag2 canonically.
type Key struct {
	Tag1, Tag2 string
}

// MakeKey returns the canonical key for tags a and b.
func MakeKey(a, b string) Key {
	if b < a {
		a, b = b, a
	}
	return Key{Tag1: a, Tag2: b}
}

// Contains reports whether the pair includes tag.
func (k Key) Contains(tag string) bool { return k.Tag1 == tag || k.Tag2 == tag }

// Other returns the tag paired with the given one, and whether tag is part
// of the pair at all.
func (k Key) Other(tag string) (string, bool) {
	switch tag {
	case k.Tag1:
		return k.Tag2, true
	case k.Tag2:
		return k.Tag1, true
	}
	return "", false
}

// String renders the pair as "tag1+tag2".
func (k Key) String() string { return k.Tag1 + "+" + k.Tag2 }

// Config parameterises a Tracker.
type Config struct {
	// Buckets and Resolution define the co-occurrence sliding window.
	Buckets    int
	Resolution time.Duration
	// MaxPairs caps tracked pairs; when exceeded at sweep time the pairs
	// with the smallest windowed co-occurrence are evicted first. Zero
	// means 100000.
	MaxPairs int
	// SweepEvery controls eviction frequency in observed documents.
	// Zero means 2048.
	SweepEvery int
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.Buckets == 0 {
		out.Buckets = 48
	}
	if out.Resolution == 0 {
		out.Resolution = time.Hour
	}
	if out.MaxPairs == 0 {
		out.MaxPairs = 100000
	}
	if out.SweepEvery == 0 {
		out.SweepEvery = 2048
	}
	return out
}

// Tracker maintains windowed co-occurrence counts for candidate tag pairs.
// Candidates are generated per document: every unordered pair of distinct
// document tags of which at least one satisfies the seed predicate ("pairs
// of tags that contain at least one seed tag"). Not safe for concurrent use.
type Tracker struct {
	cfg     Config
	pairs   map[Key]*window.Counter
	now     time.Time
	sinceGC int
}

// NewTracker returns a pair tracker with the given configuration.
func NewTracker(cfg Config) *Tracker {
	c := cfg.withDefaults()
	return &Tracker{cfg: c, pairs: make(map[Key]*window.Counter)}
}

// Span returns the co-occurrence window span.
func (tr *Tracker) Span() time.Duration {
	return time.Duration(tr.cfg.Buckets) * tr.cfg.Resolution
}

// Observe records one document's tag set at time t, incrementing the
// co-occurrence count of every candidate pair. isSeed decides candidacy; a
// nil isSeed treats every tag as a seed (all pairs tracked).
func (tr *Tracker) Observe(t time.Time, tags []string, isSeed func(string) bool) {
	if t.After(tr.now) {
		tr.now = t
	}
	if len(tags) < 2 {
		tr.maybeSweep()
		return
	}
	// Deduplicate the document's tags; pair generation assumes a set.
	uniq := tags[:0:0]
	seen := make(map[string]bool, len(tags))
	for _, tag := range tags {
		if tag == "" || seen[tag] {
			continue
		}
		seen[tag] = true
		uniq = append(uniq, tag)
	}
	for i := 0; i < len(uniq); i++ {
		for j := i + 1; j < len(uniq); j++ {
			if isSeed != nil && !isSeed(uniq[i]) && !isSeed(uniq[j]) {
				continue
			}
			k := MakeKey(uniq[i], uniq[j])
			c, ok := tr.pairs[k]
			if !ok {
				c = window.NewCounter(tr.cfg.Buckets, tr.cfg.Resolution)
				tr.pairs[k] = c
			}
			c.Inc(t)
		}
	}
	tr.maybeSweep()
}

func (tr *Tracker) maybeSweep() {
	tr.sinceGC++
	if tr.sinceGC < tr.cfg.SweepEvery && len(tr.pairs) <= tr.cfg.MaxPairs {
		return
	}
	tr.sinceGC = 0
	for k, c := range tr.pairs {
		c.Observe(tr.now)
		if c.Value() == 0 {
			delete(tr.pairs, k)
		}
	}
	if len(tr.pairs) <= tr.cfg.MaxPairs {
		return
	}
	// Still over budget: evict the smallest co-occurrence counts.
	type kc struct {
		k Key
		v float64
	}
	all := make([]kc, 0, len(tr.pairs))
	for k, c := range tr.pairs {
		all = append(all, kc{k, c.Value()})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].v != all[j].v {
			return all[i].v < all[j].v
		}
		return all[i].k.String() < all[j].k.String()
	})
	for _, e := range all[:len(all)-tr.cfg.MaxPairs] {
		delete(tr.pairs, e.k)
	}
}

// Cooccurrence returns the number of windowed documents carrying both tags
// of the pair.
func (tr *Tracker) Cooccurrence(k Key) float64 {
	c, ok := tr.pairs[k]
	if !ok {
		return 0
	}
	c.Observe(tr.now)
	return c.Value()
}

// Series returns the per-bucket co-occurrence counts of the pair, oldest
// first, or nil if the pair is not tracked.
func (tr *Tracker) Series(k Key) []float64 {
	c, ok := tr.pairs[k]
	if !ok {
		return nil
	}
	c.Observe(tr.now)
	return c.Series()
}

// ActivePairs returns the number of pairs currently tracked.
func (tr *Tracker) ActivePairs() int { return len(tr.pairs) }

// Keys returns all tracked pair keys in unspecified order. The slice is
// freshly allocated.
func (tr *Tracker) Keys() []Key {
	out := make([]Key, 0, len(tr.pairs))
	for k := range tr.pairs {
		out = append(out, k)
	}
	return out
}

// KeysSorted returns all tracked pair keys sorted lexicographically, for
// deterministic iteration in evaluation ticks.
func (tr *Tracker) KeysSorted() []Key {
	out := tr.Keys()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Tag1 != out[j].Tag1 {
			return out[i].Tag1 < out[j].Tag1
		}
		return out[i].Tag2 < out[j].Tag2
	})
	return out
}

// Correlation evaluates measure m for the pair using the supplied per-tag
// windowed counts and total document count.
func (tr *Tracker) Correlation(k Key, m Measure, na, nb, n float64) float64 {
	return m.Compute(tr.Cooccurrence(k), na, nb, n)
}

// DistTracker maintains, per tag, the windowed distribution of tags that
// co-occur with it — the "documents represented by their entire tag sets"
// variant. Correlation between two tags is then a relative-entropy
// similarity of their co-tag usage distributions.
type DistTracker struct {
	cfg     Config
	byTag   map[string]map[string]*window.Counter
	now     time.Time
	sinceGC int
}

// NewDistTracker returns a distribution tracker with the given window.
func NewDistTracker(cfg Config) *DistTracker {
	c := cfg.withDefaults()
	return &DistTracker{cfg: c, byTag: make(map[string]map[string]*window.Counter)}
}

// Observe records the co-tag distribution contributions of one document.
func (dt *DistTracker) Observe(t time.Time, tags []string) {
	if t.After(dt.now) {
		dt.now = t
	}
	seen := make(map[string]bool, len(tags))
	uniq := tags[:0:0]
	for _, tag := range tags {
		if tag == "" || seen[tag] {
			continue
		}
		seen[tag] = true
		uniq = append(uniq, tag)
	}
	for _, a := range uniq {
		for _, b := range uniq {
			if a == b {
				continue
			}
			m, ok := dt.byTag[a]
			if !ok {
				m = make(map[string]*window.Counter)
				dt.byTag[a] = m
			}
			c, ok := m[b]
			if !ok {
				c = window.NewCounter(dt.cfg.Buckets, dt.cfg.Resolution)
				m[b] = c
			}
			c.Inc(t)
		}
	}
	dt.sinceGC++
	if dt.sinceGC >= dt.cfg.SweepEvery {
		dt.sweep()
	}
}

func (dt *DistTracker) sweep() {
	dt.sinceGC = 0
	for tag, m := range dt.byTag {
		for co, c := range m {
			c.Observe(dt.now)
			if c.Value() == 0 {
				delete(m, co)
			}
		}
		if len(m) == 0 {
			delete(dt.byTag, tag)
		}
	}
}

// Distribution returns tag's windowed co-tag counts as a map. The map is
// freshly allocated.
func (dt *DistTracker) Distribution(tag string) map[string]float64 {
	m, ok := dt.byTag[tag]
	if !ok {
		return nil
	}
	out := make(map[string]float64, len(m))
	for co, c := range m {
		c.Observe(dt.now)
		if v := c.Value(); v > 0 {
			out[co] = v
		}
	}
	return out
}

// Similarity returns 1 − JSDistance between the co-tag distributions of the
// two tags: 1 for identical usage, 0 for disjoint. This is the bounded
// relative-entropy correlation the paper sketches for distribution-valued
// documents. The pair members themselves are excluded from both
// distributions: the comparison asks whether a and b keep the same
// *company*, and each is trivially its partner's company.
func (dt *DistTracker) Similarity(a, b string) float64 {
	da := dt.Distribution(a)
	delete(da, b)
	db := dt.Distribution(b)
	delete(db, a)
	return 1 - JSDistance(da, db)
}
