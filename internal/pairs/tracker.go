package pairs

import (
	"sort"
	"sync"
	"time"

	"enblogue/internal/window"
)

// Key identifies an unordered tag pair; Tag1 < Tag2 canonically.
type Key struct {
	Tag1, Tag2 string
}

// MakeKey returns the canonical key for tags a and b.
func MakeKey(a, b string) Key {
	if b < a {
		a, b = b, a
	}
	return Key{Tag1: a, Tag2: b}
}

// Contains reports whether the pair includes tag.
func (k Key) Contains(tag string) bool { return k.Tag1 == tag || k.Tag2 == tag }

// Other returns the tag paired with the given one, and whether tag is part
// of the pair at all.
func (k Key) Other(tag string) (string, bool) {
	switch tag {
	case k.Tag1:
		return k.Tag2, true
	case k.Tag2:
		return k.Tag1, true
	}
	return "", false
}

// String renders the pair as "tag1+tag2".
func (k Key) String() string { return k.Tag1 + "+" + k.Tag2 }

// Config parameterises a Tracker.
type Config struct {
	// Buckets and Resolution define the co-occurrence sliding window.
	Buckets    int
	Resolution time.Duration
	// MaxPairs caps tracked pairs; when exceeded at sweep time the pairs
	// with the smallest windowed co-occurrence are evicted first, down to
	// 10% below the cap so a saturated tracker does not re-sweep on every
	// document. Zero means 100000.
	MaxPairs int
	// SweepEvery controls eviction frequency in observed documents.
	// Zero means 2048.
	SweepEvery int
	// Shards partitions the pair space for ShardedTracker; the serial
	// Tracker ignores it. Zero or one means a single shard.
	Shards int
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.Buckets == 0 {
		out.Buckets = 48
	}
	if out.Resolution == 0 {
		out.Resolution = time.Hour
	}
	if out.MaxPairs == 0 {
		out.MaxPairs = 100000
	}
	if out.SweepEvery == 0 {
		out.SweepEvery = 2048
	}
	return out
}

// dedupTags returns tags with empties and duplicates removed, preserving
// first-seen order; pair generation assumes a set. Shared by the serial,
// sharded, and distribution trackers so candidate generation stays
// identical across them — the sharded engine's bit-identical-rankings
// guarantee depends on it.
func dedupTags(tags []string) []string {
	uniq := tags[:0:0]
	seen := make(map[string]bool, len(tags))
	for _, tag := range tags {
		if tag == "" || seen[tag] {
			continue
		}
		seen[tag] = true
		uniq = append(uniq, tag)
	}
	return uniq
}

// forEachCandidatePair invokes fn for every unordered pair of distinct
// tags from uniq (already deduplicated) of which at least one satisfies
// isSeed; nil isSeed admits every pair. Shared by the serial and sharded
// trackers so the candidate rule stays identical across them — another
// leg of the bit-identical-rankings guarantee.
func forEachCandidatePair(uniq []string, isSeed func(string) bool, fn func(Key)) {
	for i := 0; i < len(uniq); i++ {
		for j := i + 1; j < len(uniq); j++ {
			if isSeed != nil && !isSeed(uniq[i]) && !isSeed(uniq[j]) {
				continue
			}
			fn(MakeKey(uniq[i], uniq[j]))
		}
	}
}

// counted pairs an evictable entry with its windowed count and a stable
// identifier used for deterministic tie-breaking.
type counted[K any] struct {
	key K
	id  string
	v   float64
}

// evictTarget is the post-eviction size for an over-budget tracker: 10%
// below MaxPairs (never below 1). The hysteresis keeps a saturated tracker
// from re-triggering a full collect-and-sort sweep on every subsequent
// document that adds one new entry.
func evictTarget(maxPairs int) int {
	t := maxPairs - maxPairs/10
	if t < 1 {
		t = 1
	}
	return t
}

// evictSmallest deletes the entries with the smallest counts (ties broken
// by id ascending) until at most keep remain, invoking drop for each
// victim. Every tracker's over-budget eviction routes through here so the
// ordering stays identical across the serial, sharded, and distribution
// paths — the sharded engine's bit-identical-rankings guarantee depends on
// it.
func evictSmallest[K any](all []counted[K], keep int, drop func(K)) {
	if len(all) <= keep {
		return
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].v != all[j].v {
			return all[i].v < all[j].v
		}
		return all[i].id < all[j].id
	})
	for _, e := range all[:len(all)-keep] {
		drop(e.key)
	}
}

// Tracker maintains windowed co-occurrence counts for candidate tag pairs.
// Candidates are generated per document: every unordered pair of distinct
// document tags of which at least one satisfies the seed predicate ("pairs
// of tags that contain at least one seed tag"). Not safe for concurrent use.
type Tracker struct {
	cfg     Config
	pairs   map[Key]*window.Counter
	now     time.Time
	sinceGC int
}

// NewTracker returns a pair tracker with the given configuration.
func NewTracker(cfg Config) *Tracker {
	c := cfg.withDefaults()
	return &Tracker{cfg: c, pairs: make(map[Key]*window.Counter)}
}

// Span returns the co-occurrence window span.
func (tr *Tracker) Span() time.Duration {
	return time.Duration(tr.cfg.Buckets) * tr.cfg.Resolution
}

// Observe records one document's tag set at time t, incrementing the
// co-occurrence count of every candidate pair. isSeed decides candidacy; a
// nil isSeed treats every tag as a seed (all pairs tracked).
func (tr *Tracker) Observe(t time.Time, tags []string, isSeed func(string) bool) {
	if t.After(tr.now) {
		tr.now = t
	}
	if len(tags) < 2 {
		tr.maybeSweep()
		return
	}
	forEachCandidatePair(dedupTags(tags), isSeed, func(k Key) {
		c, ok := tr.pairs[k]
		if !ok {
			c = window.NewCounter(tr.cfg.Buckets, tr.cfg.Resolution)
			tr.pairs[k] = c
		}
		c.Inc(t)
	})
	tr.maybeSweep()
}

func (tr *Tracker) maybeSweep() {
	tr.sinceGC++
	if tr.sinceGC < tr.cfg.SweepEvery && len(tr.pairs) <= tr.cfg.MaxPairs {
		return
	}
	tr.sinceGC = 0
	for k, c := range tr.pairs {
		c.Observe(tr.now)
		if c.Value() == 0 {
			delete(tr.pairs, k)
		}
	}
	if len(tr.pairs) <= tr.cfg.MaxPairs {
		return
	}
	// Still over budget: evict the smallest co-occurrence counts.
	all := make([]counted[Key], 0, len(tr.pairs))
	for k, c := range tr.pairs {
		all = append(all, counted[Key]{k, k.String(), c.Value()})
	}
	evictSmallest(all, evictTarget(tr.cfg.MaxPairs), func(k Key) { delete(tr.pairs, k) })
}

// Cooccurrence returns the number of windowed documents carrying both tags
// of the pair.
func (tr *Tracker) Cooccurrence(k Key) float64 {
	c, ok := tr.pairs[k]
	if !ok {
		return 0
	}
	c.Observe(tr.now)
	return c.Value()
}

// Series returns the per-bucket co-occurrence counts of the pair, oldest
// first, or nil if the pair is not tracked.
func (tr *Tracker) Series(k Key) []float64 {
	c, ok := tr.pairs[k]
	if !ok {
		return nil
	}
	c.Observe(tr.now)
	return c.Series()
}

// ActivePairs returns the number of pairs currently tracked.
func (tr *Tracker) ActivePairs() int { return len(tr.pairs) }

// Keys returns all tracked pair keys in unspecified order. The slice is
// freshly allocated.
func (tr *Tracker) Keys() []Key {
	out := make([]Key, 0, len(tr.pairs))
	for k := range tr.pairs {
		out = append(out, k)
	}
	return out
}

// KeysSorted returns all tracked pair keys sorted lexicographically, for
// deterministic iteration in evaluation ticks.
func (tr *Tracker) KeysSorted() []Key {
	out := tr.Keys()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Tag1 != out[j].Tag1 {
			return out[i].Tag1 < out[j].Tag1
		}
		return out[i].Tag2 < out[j].Tag2
	})
	return out
}

// Correlation evaluates measure m for the pair using the supplied per-tag
// windowed counts and total document count.
func (tr *Tracker) Correlation(k Key, m Measure, na, nb, n float64) float64 {
	return m.Compute(tr.Cooccurrence(k), na, nb, n)
}

// DistTracker maintains, per tag, the windowed distribution of tags that
// co-occur with it — the "documents represented by their entire tag sets"
// variant. Correlation between two tags is then a relative-entropy
// similarity of their co-tag usage distributions.
//
// Memory is bounded: the total number of (tag, co-tag) counters is capped at
// MaxPairs; when a sweep finds the tracker over budget, the counters with
// the smallest windowed counts are evicted first — the same policy the
// plain Tracker applies to pairs. Safe for concurrent use: all methods are
// serialised by an internal mutex.
type DistTracker struct {
	mu       sync.Mutex
	cfg      Config
	byTag    map[string]map[string]*window.Counter
	counters int // total (tag, co-tag) counters across byTag
	now      time.Time
	sinceGC  int
}

// NewDistTracker returns a distribution tracker with the given window.
func NewDistTracker(cfg Config) *DistTracker {
	c := cfg.withDefaults()
	return &DistTracker{cfg: c, byTag: make(map[string]map[string]*window.Counter)}
}

// Observe records the co-tag distribution contributions of one document.
func (dt *DistTracker) Observe(t time.Time, tags []string) {
	dt.mu.Lock()
	defer dt.mu.Unlock()
	if t.After(dt.now) {
		dt.now = t
	}
	uniq := dedupTags(tags)
	for _, a := range uniq {
		for _, b := range uniq {
			if a == b {
				continue
			}
			m, ok := dt.byTag[a]
			if !ok {
				m = make(map[string]*window.Counter)
				dt.byTag[a] = m
			}
			c, ok := m[b]
			if !ok {
				c = window.NewCounter(dt.cfg.Buckets, dt.cfg.Resolution)
				m[b] = c
				dt.counters++
			}
			c.Inc(t)
		}
	}
	dt.sinceGC++
	if dt.sinceGC >= dt.cfg.SweepEvery || dt.counters > dt.cfg.MaxPairs {
		dt.sweep()
	}
}

// sweep drops emptied counters and, if still over the MaxPairs budget,
// evicts the smallest-count (tag, co-tag) entries first, ties broken by the
// "tag→co" rendering for determinism. Callers must hold dt.mu.
func (dt *DistTracker) sweep() {
	dt.sinceGC = 0
	for tag, m := range dt.byTag {
		for co, c := range m {
			c.Observe(dt.now)
			if c.Value() == 0 {
				delete(m, co)
				dt.counters--
			}
		}
		if len(m) == 0 {
			delete(dt.byTag, tag)
		}
	}
	if dt.counters <= dt.cfg.MaxPairs {
		return
	}
	type distKey struct{ tag, co string }
	all := make([]counted[distKey], 0, dt.counters)
	for tag, m := range dt.byTag {
		for co, c := range m {
			// "\x00" sorts before any tag byte, so the concatenated id
			// orders exactly like comparing (tag, co) pairwise.
			all = append(all, counted[distKey]{distKey{tag, co}, tag + "\x00" + co, c.Value()})
		}
	}
	evictSmallest(all, evictTarget(dt.cfg.MaxPairs), func(k distKey) {
		delete(dt.byTag[k.tag], k.co)
		if len(dt.byTag[k.tag]) == 0 {
			delete(dt.byTag, k.tag)
		}
		dt.counters--
	})
}

// Counters returns the total number of (tag, co-tag) counters tracked.
func (dt *DistTracker) Counters() int {
	dt.mu.Lock()
	defer dt.mu.Unlock()
	return dt.counters
}

// Distribution returns tag's windowed co-tag counts as a map. The map is
// freshly allocated.
func (dt *DistTracker) Distribution(tag string) map[string]float64 {
	dt.mu.Lock()
	defer dt.mu.Unlock()
	return dt.distributionLocked(tag)
}

// distributionLocked is Distribution's body; callers must hold dt.mu.
func (dt *DistTracker) distributionLocked(tag string) map[string]float64 {
	m, ok := dt.byTag[tag]
	if !ok {
		return nil
	}
	out := make(map[string]float64, len(m))
	for co, c := range m {
		c.Observe(dt.now)
		if v := c.Value(); v > 0 {
			out[co] = v
		}
	}
	return out
}

// Similarity returns 1 − JSDistance between the co-tag distributions of the
// two tags: 1 for identical usage, 0 for disjoint. This is the bounded
// relative-entropy correlation the paper sketches for distribution-valued
// documents. The pair members themselves are excluded from both
// distributions: the comparison asks whether a and b keep the same
// *company*, and each is trivially its partner's company. Both snapshots
// are taken under one lock acquisition, so a concurrent Observe cannot
// land between them and skew the comparison.
func (dt *DistTracker) Similarity(a, b string) float64 {
	dt.mu.Lock()
	da := dt.distributionLocked(a)
	db := dt.distributionLocked(b)
	dt.mu.Unlock()
	delete(da, b)
	delete(db, a)
	return similarity(da, db)
}

// similarity is the shared Similarity/SimilarityFrom core. Two empty
// distributions mean no usage evidence at all — e.g. both tags' co-tag
// counters were evicted under memory pressure — and score 0, not the 1.0
// that "identical (empty) usage" would naively yield: a spurious perfect
// correlation would register as a large prediction error and fabricate an
// emergent topic.
func similarity(da, db map[string]float64) float64 {
	if len(da) == 0 && len(db) == 0 {
		return 0
	}
	return 1 - JSDistance(da, db)
}

// Snapshot returns every tag's windowed co-tag distribution, advanced to
// the tracker clock, under a single lock acquisition. Parallel evaluation
// workers take one snapshot per tick and compute similarities lock-free
// via SimilarityFrom instead of serialising on the tracker mutex per pair.
func (dt *DistTracker) Snapshot() map[string]map[string]float64 {
	dt.mu.Lock()
	defer dt.mu.Unlock()
	out := make(map[string]map[string]float64, len(dt.byTag))
	for tag := range dt.byTag {
		out[tag] = dt.distributionLocked(tag)
	}
	return out
}

// copyExcluding returns m without key ex, leaving m untouched (snapshots
// are shared across workers and must not be mutated).
func copyExcluding(m map[string]float64, ex string) map[string]float64 {
	out := make(map[string]float64, len(m))
	for k, v := range m {
		if k != ex {
			out[k] = v
		}
	}
	return out
}

// SimilarityFrom computes Similarity's result from a Snapshot, with the
// same partner-exclusion semantics, without locking or mutating the
// snapshot. Values are identical to calling Similarity on the tracker at
// snapshot time.
func SimilarityFrom(dists map[string]map[string]float64, a, b string) float64 {
	return similarity(copyExcluding(dists[a], b), copyExcluding(dists[b], a))
}
