package pairs

import (
	"sort"
	"sync"
	"time"

	"enblogue/internal/intern"
	"enblogue/internal/tier"
	"enblogue/internal/window"
)

// Config parameterises a Tracker.
type Config struct {
	// Buckets and Resolution define the co-occurrence sliding window.
	Buckets    int
	Resolution time.Duration
	// MaxPairs caps tracked pairs; when exceeded at sweep time the pairs
	// with the smallest windowed co-occurrence are evicted first, down to
	// 10% below the cap so a saturated tracker does not re-sweep on every
	// document. Zero means 100000.
	MaxPairs int
	// SweepEvery controls eviction frequency in observed documents.
	// Zero means 2048.
	SweepEvery int
	// Shards partitions the pair space for ShardedTracker; the serial
	// Tracker ignores it. Zero or one means a single shard.
	Shards int
	// Tail, when non-nil, enables the cold tier (internal/tier) on the
	// ShardedTracker: pairs evicted over MaxPairs are demoted into a
	// per-shard windowed Count-Min sketch + heavy-hitter summary instead of
	// being forgotten, and are promoted back — counter seeded from the
	// upper-bound sketch estimate — when their estimate crosses the
	// admission floor (PromoteTail). Tail.Span is ignored; the tracker sets
	// it to its own window span so tail decay matches counter decay. Nil
	// disables the tier: eviction forgets, exactly as before.
	Tail *tier.Config
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.Buckets == 0 {
		out.Buckets = 48
	}
	if out.Resolution == 0 {
		out.Resolution = time.Hour
	}
	if out.MaxPairs == 0 {
		out.MaxPairs = 100000
	}
	if out.SweepEvery == 0 {
		out.SweepEvery = 2048
	}
	return out
}

// smallTagSet bounds the document sizes handled by dedupTags' map-free
// quadratic scan. Nearly every real document has a handful of tags, so the
// common case allocates nothing at all.
const smallTagSet = 16

// dedupTags returns tags with empties and duplicates removed, preserving
// first-seen order; pair generation assumes a set. When the input is
// already clean — the overwhelming case — the input slice itself is
// returned, so callers must treat the result as transient and must not
// mutate it. Shared by the serial, sharded, and distribution trackers so
// candidate generation stays identical across them — the sharded engine's
// bit-identical-rankings guarantee depends on it.
func dedupTags(tags []string) []string {
	if len(tags) <= smallTagSet {
		clean := true
	check:
		for i, tag := range tags {
			if tag == "" {
				clean = false
				break
			}
			for j := 0; j < i; j++ {
				if tags[j] == tag {
					clean = false
					break check
				}
			}
		}
		if clean {
			return tags
		}
		uniq := make([]string, 0, len(tags))
	fill:
		for _, tag := range tags {
			if tag == "" {
				continue
			}
			for _, u := range uniq {
				if u == tag {
					continue fill
				}
			}
			uniq = append(uniq, tag)
		}
		return uniq
	}
	uniq := make([]string, 0, len(tags))
	seen := make(map[string]bool, len(tags))
	for _, tag := range tags {
		if tag == "" || seen[tag] {
			continue
		}
		seen[tag] = true
		uniq = append(uniq, tag)
	}
	return uniq
}

// The candidate rule, shared by the serial and sharded trackers (each
// inlines the double loop to keep its hot path closure-free): every
// unordered pair of distinct tags from the deduplicated document tag set of
// which at least one is a seed; a nil predicate admits every pair. The rule
// must stay identical across trackers — another leg of the
// bit-identical-rankings guarantee.

// counted pairs an evictable entry with its windowed count, for
// deterministic smallest-first eviction.
type counted[K any] struct {
	key K
	v   float64
}

// evictTarget is the post-eviction size for an over-budget tracker: 10%
// below MaxPairs (never below 1). The hysteresis keeps a saturated tracker
// from re-triggering a full collect-and-sort sweep on every subsequent
// document that adds one new entry.
func evictTarget(maxPairs int) int {
	t := maxPairs - maxPairs/10
	if t < 1 {
		t = 1
	}
	return t
}

// evictSmallest deletes the entries with the smallest counts (ties broken
// by less on the keys, ascending) until at most keep remain, invoking drop
// for each victim with its windowed count — the count is what the tail
// tier absorbs on demotion, and victims arrive smallest-first so the last
// drop carries the admission floor. Every tracker's over-budget eviction
// routes through here so the ordering stays identical across the serial,
// sharded, and distribution paths — the sharded engine's
// bit-identical-rankings guarantee depends on it.
func evictSmallest[K any](all []counted[K], keep int, less func(a, b K) bool, drop func(K, float64)) {
	if len(all) <= keep {
		return
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].v != all[j].v {
			return all[i].v < all[j].v
		}
		return less(all[i].key, all[j].key)
	})
	for _, e := range all[:len(all)-keep] {
		drop(e.key, e.v)
	}
}

// keyLess is the eviction tie-break for pair keys: the rendered-string
// order, computed without rendering (Key.Less).
func keyLess(a, b Key) bool { return a.Less(b) }

// Tracker maintains windowed co-occurrence counts for candidate tag pairs.
// Candidates are generated per document: every unordered pair of distinct
// document tags of which at least one satisfies the seed predicate ("pairs
// of tags that contain at least one seed tag"). Counters live in a shared
// CounterArena slab rather than one heap object per pair. Not safe for
// concurrent use.
type Tracker struct {
	cfg     Config
	slots   map[Key]int32
	arena   *window.CounterArena
	now     time.Time
	sinceGC int
	evicted int64

	// onEvict, when set, observes every over-budget eviction with the
	// victim's windowed count at eviction time — the seam the cold tier
	// (and tests cross-validating sketch estimates against ground truth)
	// hang off. Emptied-window drops are not reported: their count is zero,
	// there is nothing to remember.
	onEvict func(Key, float64)

	// per-document scratch, reused so steady-state Observe allocates
	// nothing.
	ids  []uint32
	seed []bool
}

// NewTracker returns a pair tracker with the given configuration.
func NewTracker(cfg Config) *Tracker {
	c := cfg.withDefaults()
	return &Tracker{
		cfg:   c,
		slots: make(map[Key]int32),
		arena: window.NewCounterArena(c.Buckets, c.Resolution),
	}
}

// Span returns the co-occurrence window span.
func (tr *Tracker) Span() time.Duration {
	return time.Duration(tr.cfg.Buckets) * tr.cfg.Resolution
}

// Observe records one document's tag set at time t, incrementing the
// co-occurrence count of every candidate pair. isSeed decides candidacy; a
// nil isSeed treats every tag as a seed (all pairs tracked).
func (tr *Tracker) Observe(t time.Time, tags []string, isSeed func(string) bool) {
	if t.After(tr.now) {
		tr.now = t
	}
	if len(tags) < 2 {
		tr.maybeSweep()
		return
	}
	uniq := dedupTags(tags)
	tr.ids = tr.ids[:0]
	tr.seed = tr.seed[:0]
	for _, tag := range uniq {
		tr.ids = append(tr.ids, intern.Intern(tag))
		if isSeed != nil {
			tr.seed = append(tr.seed, isSeed(tag))
		}
	}
	for i := 0; i < len(tr.ids); i++ {
		for j := i + 1; j < len(tr.ids); j++ {
			if isSeed != nil && !tr.seed[i] && !tr.seed[j] {
				continue
			}
			tr.inc(KeyFromIDs(tr.ids[i], tr.ids[j]), t)
		}
	}
	tr.maybeSweep()
}

// inc upserts pair k's arena slot and records the event at time t.
func (tr *Tracker) inc(k Key, t time.Time) {
	slot, ok := tr.slots[k]
	if !ok {
		slot = tr.arena.Alloc()
		tr.slots[k] = slot
	}
	tr.arena.Inc(slot, t)
}

func (tr *Tracker) maybeSweep() {
	tr.sinceGC++
	if tr.sinceGC < tr.cfg.SweepEvery && len(tr.slots) <= tr.cfg.MaxPairs {
		return
	}
	tr.sinceGC = 0
	//enblogue:unordered per-key delete of emptied counters; deletions are independent and commute
	for k, slot := range tr.slots {
		if tr.arena.ValueAt(slot, tr.now) == 0 {
			delete(tr.slots, k)
			tr.arena.Release(slot)
		}
	}
	if len(tr.slots) <= tr.cfg.MaxPairs {
		return
	}
	// Still over budget: evict the smallest co-occurrence counts.
	all := make([]counted[Key], 0, len(tr.slots))
	//enblogue:unordered collects every pair; evictSmallest ranks by (count, key), a strict total order independent of input order
	for k, slot := range tr.slots {
		all = append(all, counted[Key]{k, tr.arena.Value(slot)})
	}
	evictSmallest(all, evictTarget(tr.cfg.MaxPairs), keyLess, func(k Key, count float64) {
		tr.arena.Release(tr.slots[k])
		delete(tr.slots, k)
		tr.evicted++
		if tr.onEvict != nil {
			tr.onEvict(k, count)
		}
	})
}

// SetOnEvict installs the eviction observer; see the field doc. Must be
// set before the first Observe.
func (tr *Tracker) SetOnEvict(fn func(Key, float64)) { tr.onEvict = fn }

// Evicted returns the lifetime count of over-budget evictions.
func (tr *Tracker) Evicted() int64 { return tr.evicted }

// Cooccurrence returns the number of windowed documents carrying both tags
// of the pair.
func (tr *Tracker) Cooccurrence(k Key) float64 {
	slot, ok := tr.slots[k]
	if !ok {
		return 0
	}
	return tr.arena.ValueAt(slot, tr.now)
}

// Series returns the per-bucket co-occurrence counts of the pair, oldest
// first, or nil if the pair is not tracked.
func (tr *Tracker) Series(k Key) []float64 {
	slot, ok := tr.slots[k]
	if !ok {
		return nil
	}
	tr.arena.Observe(slot, tr.now)
	return tr.arena.Series(slot)
}

// ActivePairs returns the number of pairs currently tracked.
func (tr *Tracker) ActivePairs() int { return len(tr.slots) }

// Keys returns all tracked pair keys in unspecified order. The slice is
// freshly allocated.
func (tr *Tracker) Keys() []Key {
	out := make([]Key, 0, len(tr.slots))
	//enblogue:unordered documented unspecified order; ranking consumers sort or select with a strict total order
	for k := range tr.slots {
		out = append(out, k)
	}
	return out
}

// KeysSorted returns all tracked pair keys sorted lexicographically by
// their tag renderings, for deterministic iteration in evaluation ticks.
func (tr *Tracker) KeysSorted() []Key {
	out := tr.Keys()
	sort.Slice(out, func(i, j int) bool {
		a1, a2 := out[i].tags()
		b1, b2 := out[j].tags()
		if a1 != b1 {
			return a1 < b1
		}
		return a2 < b2
	})
	return out
}

// Correlation evaluates measure m for the pair using the supplied per-tag
// windowed counts and total document count.
func (tr *Tracker) Correlation(k Key, m Measure, na, nb, n float64) float64 {
	return m.Compute(tr.Cooccurrence(k), na, nb, n)
}

// DistTracker maintains, per tag, the windowed distribution of tags that
// co-occur with it — the "documents represented by their entire tag sets"
// variant. Correlation between two tags is then a relative-entropy
// similarity of their co-tag usage distributions.
//
// Memory is bounded: the total number of (tag, co-tag) counters is capped at
// MaxPairs; when a sweep finds the tracker over budget, the counters with
// the smallest windowed counts are evicted first — the same policy the
// plain Tracker applies to pairs. Safe for concurrent use: all methods are
// serialised by an internal mutex.
type DistTracker struct {
	//enblogue:lock pairsDist 55
	mu       sync.Mutex
	cfg      Config
	byTag    map[string]map[string]*window.Counter
	counters int // total (tag, co-tag) counters across byTag
	now      time.Time
	sinceGC  int
}

// NewDistTracker returns a distribution tracker with the given window.
func NewDistTracker(cfg Config) *DistTracker {
	c := cfg.withDefaults()
	return &DistTracker{cfg: c, byTag: make(map[string]map[string]*window.Counter)}
}

// Observe records the co-tag distribution contributions of one document.
//
//enblogue:acquires pairsDist
func (dt *DistTracker) Observe(t time.Time, tags []string) {
	dt.mu.Lock()
	defer dt.mu.Unlock()
	dt.observeLocked(t, tags)
}

// ObserveBatch records a run of documents in order under a single lock
// acquisition. Per-document semantics — including sweep timing, which is
// checked inside the lock after every document exactly as Observe does —
// are identical to calling Observe per document.
//
//enblogue:acquires pairsDist
func (dt *DistTracker) ObserveBatch(docs []BatchDoc) {
	dt.mu.Lock()
	defer dt.mu.Unlock()
	for _, d := range docs {
		dt.observeLocked(d.Time, d.Tags)
	}
}

// observeLocked is Observe's body; callers must hold dt.mu.
//
//enblogue:requires pairsDist
func (dt *DistTracker) observeLocked(t time.Time, tags []string) {
	if t.After(dt.now) {
		dt.now = t
	}
	uniq := dedupTags(tags)
	for _, a := range uniq {
		for _, b := range uniq {
			if a == b {
				continue
			}
			m, ok := dt.byTag[a]
			if !ok {
				m = make(map[string]*window.Counter)
				dt.byTag[a] = m
			}
			c, ok := m[b]
			if !ok {
				c = window.NewCounter(dt.cfg.Buckets, dt.cfg.Resolution)
				m[b] = c
				dt.counters++
			}
			c.Inc(t)
		}
	}
	dt.sinceGC++
	if dt.sinceGC >= dt.cfg.SweepEvery || dt.counters > dt.cfg.MaxPairs {
		dt.sweep()
	}
}

// distKey addresses one (tag, co-tag) counter for eviction.
type distKey struct{ tag, co string }

// distKeyLess orders (tag, co) pairs lexicographically — the eviction
// tie-break for distribution counters.
func distKeyLess(a, b distKey) bool {
	if a.tag != b.tag {
		return a.tag < b.tag
	}
	return a.co < b.co
}

// sweep drops emptied counters and, if still over the MaxPairs budget,
// evicts the smallest-count (tag, co-tag) entries first, ties broken by
// (tag, co) order for determinism. Callers must hold dt.mu.
func (dt *DistTracker) sweep() {
	dt.sinceGC = 0
	//enblogue:unordered per-key advance-and-delete of emptied counters; each counter is touched independently, deletions commute
	for tag, m := range dt.byTag {
		//enblogue:unordered per-key advance-and-delete; see outer loop
		for co, c := range m {
			c.Observe(dt.now)
			if c.Value() == 0 {
				delete(m, co)
				dt.counters--
			}
		}
		if len(m) == 0 {
			delete(dt.byTag, tag)
		}
	}
	if dt.counters <= dt.cfg.MaxPairs {
		return
	}
	all := make([]counted[distKey], 0, dt.counters)
	//enblogue:unordered collects every counter; evictSmallest ranks by (count, key), a strict total order independent of input order
	for tag, m := range dt.byTag {
		//enblogue:unordered collect for deterministic global ranking; see outer loop
		for co, c := range m {
			all = append(all, counted[distKey]{distKey{tag, co}, c.Value()})
		}
	}
	evictSmallest(all, evictTarget(dt.cfg.MaxPairs), distKeyLess, func(k distKey, _ float64) {
		delete(dt.byTag[k.tag], k.co)
		if len(dt.byTag[k.tag]) == 0 {
			delete(dt.byTag, k.tag)
		}
		dt.counters--
	})
}

// Counters returns the total number of (tag, co-tag) counters tracked.
//
//enblogue:acquires pairsDist
func (dt *DistTracker) Counters() int {
	dt.mu.Lock()
	defer dt.mu.Unlock()
	return dt.counters
}

// Distribution returns tag's windowed co-tag counts as a map. The map is
// freshly allocated.
//
//enblogue:acquires pairsDist
func (dt *DistTracker) Distribution(tag string) map[string]float64 {
	dt.mu.Lock()
	defer dt.mu.Unlock()
	return dt.distributionLocked(tag)
}

// distributionLocked is Distribution's body; callers must hold dt.mu.
//
//enblogue:requires pairsDist
func (dt *DistTracker) distributionLocked(tag string) map[string]float64 {
	m, ok := dt.byTag[tag]
	if !ok {
		return nil
	}
	out := make(map[string]float64, len(m))
	//enblogue:unordered map-to-map copy; inserting into the result map is commutative, and consumers iterate it over sorted support
	for co, c := range m {
		c.Observe(dt.now)
		if v := c.Value(); v > 0 {
			out[co] = v
		}
	}
	return out
}

// Similarity returns 1 − JSDistance between the co-tag distributions of the
// two tags: 1 for identical usage, 0 for disjoint. This is the bounded
// relative-entropy correlation the paper sketches for distribution-valued
// documents. The pair members themselves are excluded from both
// distributions: the comparison asks whether a and b keep the same
// *company*, and each is trivially its partner's company. Both snapshots
// are taken under one lock acquisition, so a concurrent Observe cannot
// land between them and skew the comparison.
//
//enblogue:acquires pairsDist
func (dt *DistTracker) Similarity(a, b string) float64 {
	dt.mu.Lock()
	da := dt.distributionLocked(a)
	db := dt.distributionLocked(b)
	dt.mu.Unlock()
	return similarityExcluding(da, db, b, a)
}

// similarityExcluding is the shared Similarity/SimilarityFrom core: the
// bounded JS similarity of da (ignoring key exa) and db (ignoring key exb),
// with neither input map copied or mutated. Two effectively empty
// distributions mean no usage evidence at all — e.g. both tags' co-tag
// counters were evicted under memory pressure — and score 0, not the 1.0
// that "identical (empty) usage" would naively yield: a spurious perfect
// correlation would register as a large prediction error and fabricate an
// emergent topic.
func similarityExcluding(da, db map[string]float64, exa, exb string) float64 {
	if lenExcluding(da, exa) == 0 && lenExcluding(db, exb) == 0 {
		return 0
	}
	return 1 - jsDistance(da, db, exa, exb, true)
}

// lenExcluding returns len(m) not counting key ex.
func lenExcluding(m map[string]float64, ex string) int {
	n := len(m)
	if _, ok := m[ex]; ok {
		n--
	}
	return n
}

// Snapshot returns every tag's windowed co-tag distribution, advanced to
// the tracker clock, under a single lock acquisition. Parallel evaluation
// workers take one snapshot per tick and compute similarities lock-free
// via SimilarityFrom instead of serialising on the tracker mutex per pair.
//
//enblogue:acquires pairsDist
func (dt *DistTracker) Snapshot() map[string]map[string]float64 {
	dt.mu.Lock()
	defer dt.mu.Unlock()
	out := make(map[string]map[string]float64, len(dt.byTag))
	//enblogue:unordered map-to-map copy keyed by tag; per-tag distributions are independent, insertion order is immaterial
	for tag := range dt.byTag {
		out[tag] = dt.distributionLocked(tag)
	}
	return out
}

// SimilarityFrom computes Similarity's result from a Snapshot, with the
// same partner-exclusion semantics, without locking, copying, or mutating
// the snapshot (snapshots are shared across evaluation workers). Values are
// identical to calling Similarity on the tracker at snapshot time.
func SimilarityFrom(dists map[string]map[string]float64, a, b string) float64 {
	return similarityExcluding(dists[a], dists[b], b, a)
}
