// Package pairs implements stage (ii) of the paper — correlation tracking:
// "For each tag pair that contains at least one seed tag, we keep track of
// their correlations. For each such pair, we continuously monitor the amount
// of documents that are annotated with both tags."
//
// The package provides canonical pair keys, windowed co-occurrence counting
// with candidate generation from a seed predicate, a family of set-overlap
// correlation measures, and the information-theoretic alternative the paper
// mentions (relative entropy over tag-usage distributions).
package pairs

import (
	"fmt"
	"math"
	"sort"
)

// Measure identifies a correlation measure over windowed counts: nab
// documents carrying both tags, na and nb documents carrying each tag, and
// n total documents in the window. All measures return values in [0, 1]
// (degenerate inputs return 0) so prediction errors are comparable across
// measures.
type Measure int

const (
	// Jaccard is |A∩B| / |A∪B|, the default overlap measure.
	Jaccard Measure = iota
	// Dice is 2|A∩B| / (|A|+|B|).
	Dice
	// Cosine is |A∩B| / sqrt(|A|·|B|).
	Cosine
	// NPMI is normalised pointwise mutual information mapped to [0,1]:
	// (pmi / -log p(a,b) + 1) / 2.
	NPMI
	// Overlap is |A∩B| / min(|A|,|B|) (Szymkiewicz–Simpson).
	Overlap
	// Confidence is max(|A∩B|/|A|, |A∩B|/|B|): the stronger of the two
	// association-rule confidences.
	Confidence
)

// measures lists the implemented measures; used by ablation sweeps.
var measureNames = map[Measure]string{
	Jaccard:    "jaccard",
	Dice:       "dice",
	Cosine:     "cosine",
	NPMI:       "npmi",
	Overlap:    "overlap",
	Confidence: "confidence",
}

// AllMeasures returns every implemented measure, in declaration order.
func AllMeasures() []Measure {
	return []Measure{Jaccard, Dice, Cosine, NPMI, Overlap, Confidence}
}

// String returns the measure name.
func (m Measure) String() string {
	if s, ok := measureNames[m]; ok {
		return s
	}
	return fmt.Sprintf("measure(%d)", int(m))
}

// ParseMeasure resolves a measure by name.
func ParseMeasure(name string) (Measure, error) {
	//enblogue:unordered linear search of a bijective name table; at most one entry matches, so visit order cannot change the result
	for m, s := range measureNames {
		if s == name {
			return m, nil
		}
	}
	return 0, fmt.Errorf("pairs: unknown measure %q", name)
}

// ComputeJaccard is Compute specialised to the default measure, carved out
// so the per-pair evaluation loop can inline it — the full Compute's switch
// is over the inlining budget. Results are identical to
// Jaccard.Compute(nab, na, nb, n), clamps included.
func ComputeJaccard(nab, na, nb, n float64) float64 {
	if nab < 0 || na <= 0 || nb <= 0 {
		return 0
	}
	if nab > na {
		nab = na
	}
	if nab > nb {
		nab = nb
	}
	if n > 0 && nab > n {
		nab = n
	}
	union := na + nb - nab
	if union <= 0 {
		return 0
	}
	return nab / union
}

// Compute evaluates the measure on windowed counts. Counts are clamped to
// consistency before use: nab may not exceed na, nb, or n.
func (m Measure) Compute(nab, na, nb, n float64) float64 {
	if m == Jaccard {
		return ComputeJaccard(nab, na, nb, n)
	}
	if nab < 0 || na <= 0 || nb <= 0 {
		return 0
	}
	if nab > na {
		nab = na
	}
	if nab > nb {
		nab = nb
	}
	if n > 0 && nab > n {
		nab = n
	}
	switch m {
	case Dice:
		return 2 * nab / (na + nb)
	case Cosine:
		return nab / math.Sqrt(na*nb)
	case NPMI:
		if n <= 0 || nab == 0 {
			return 0
		}
		pab := nab / n
		pa, pb := na/n, nb/n
		if pab >= 1 {
			return 1
		}
		pmi := math.Log(pab / (pa * pb))
		npmi := pmi / -math.Log(pab) // in [-1, 1]
		return (npmi + 1) / 2
	case Overlap:
		return nab / math.Min(na, nb)
	case Confidence:
		return math.Max(nab/na, nab/nb)
	default:
		return 0
	}
}

// unionSupport returns the sorted union of the two maps' keys (optionally
// only those with positive mass). Iterating support in sorted order makes
// the floating-point accumulation below reproducible: Go map iteration
// order is randomised per run, and summation order changes results in the
// last ulps — enough to flip a zero prediction error into a positive one.
func unionSupport(p, q map[string]float64, positiveOnly bool) []string {
	support := make([]string, 0, len(p)+len(q))
	seen := make(map[string]bool, len(p)+len(q))
	//enblogue:unordered collect-then-sort: support is sorted before returning
	for k, v := range p {
		if !positiveOnly || v > 0 {
			support = append(support, k)
			seen[k] = true
		}
	}
	//enblogue:unordered collect-then-sort: support is sorted before returning
	for k, v := range q {
		if seen[k] {
			continue
		}
		if !positiveOnly || v > 0 {
			support = append(support, k)
		}
	}
	sort.Strings(support)
	return support
}

// KLDivergence returns the Kullback–Leibler divergence D(p‖q) between two
// discrete distributions given as count maps, with add-lambda smoothing over
// the union support. The paper: "we can apply information-theory measures
// like relative entropy to assess the similarity of tag/term usage."
// The result is deterministic in the map contents (summation runs in sorted
// key order).
func KLDivergence(p, q map[string]float64, lambda float64) float64 {
	if lambda <= 0 {
		lambda = 1e-3
	}
	support := unionSupport(p, q, false)
	if len(support) == 0 {
		return 0
	}
	var pTotal, qTotal float64
	for _, k := range support {
		pTotal += p[k]
		qTotal += q[k]
	}
	v := float64(len(support))
	pTotal += lambda * v
	qTotal += lambda * v
	var d float64
	for _, k := range support {
		pk := (p[k] + lambda) / pTotal
		qk := (q[k] + lambda) / qTotal
		d += pk * math.Log(pk/qk)
	}
	if d < 0 {
		d = 0 // numeric noise on identical distributions
	}
	return d
}

// JSDistance returns the Jensen–Shannon distance (square root of the JS
// divergence, base-2) between two count maps: a symmetric, bounded [0, 1]
// relative-entropy similarity suitable as a correlation signal. The result
// is deterministic in the map contents (summation runs in sorted key
// order).
func JSDistance(p, q map[string]float64) float64 {
	return jsDistance(p, q, "", "", false)
}

// jsDistance is JSDistance with an optional per-map exclusion key: when
// useEx is set, key exp is treated as absent from p and key exq as absent
// from q. This is how DistTracker excludes each pair member from its
// partner's co-tag distribution without copying either map per pair per
// tick — the inputs are shared snapshot maps and are never mutated. The
// result is bit-identical to JSDistance on copies with the keys deleted:
// the support set, and therefore the sorted summation order, is the same.
func jsDistance(p, q map[string]float64, exp, exq string, useEx bool) float64 {
	support := unionSupportExcluding(p, q, exp, exq, useEx)
	var pTotal, qTotal float64
	for _, k := range support {
		if v := exclVal(p, k, exp, useEx); v > 0 {
			pTotal += v
		}
		if v := exclVal(q, k, exq, useEx); v > 0 {
			qTotal += v
		}
	}
	if pTotal == 0 || qTotal == 0 {
		if pTotal == qTotal {
			return 0
		}
		return 1
	}
	var js float64
	for _, k := range support {
		pk := exclVal(p, k, exp, useEx) / pTotal
		qk := exclVal(q, k, exq, useEx) / qTotal
		m := (pk + qk) / 2
		if pk > 0 {
			js += pk / 2 * math.Log2(pk/m)
		}
		if qk > 0 {
			js += qk / 2 * math.Log2(qk/m)
		}
	}
	if js < 0 {
		js = 0
	}
	if js > 1 {
		js = 1
	}
	return math.Sqrt(js)
}

// exclVal reads m[k], treating key ex as absent when useEx is set.
func exclVal(m map[string]float64, k, ex string, useEx bool) float64 {
	if useEx && k == ex {
		return 0
	}
	return m[k]
}

// unionSupportExcluding returns the sorted union of the two maps' positive
// keys, honouring the per-map exclusions. Unlike unionSupport it needs no
// dedup map: a key from q is skipped when p already contributed it.
func unionSupportExcluding(p, q map[string]float64, exp, exq string, useEx bool) []string {
	support := make([]string, 0, len(p)+len(q))
	//enblogue:unordered collect-then-sort: support is sorted before returning
	for k, v := range p {
		if v > 0 && !(useEx && k == exp) {
			support = append(support, k)
		}
	}
	//enblogue:unordered collect-then-sort: support is sorted before returning
	for k, v := range q {
		if v <= 0 || (useEx && k == exq) {
			continue
		}
		if pv, ok := p[k]; ok && pv > 0 && !(useEx && k == exp) {
			continue // already contributed by p
		}
		support = append(support, k)
	}
	sort.Strings(support)
	return support
}
