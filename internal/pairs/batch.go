package pairs

import (
	"sync"
	"time"

	"enblogue/internal/intern"
)

// BatchDoc is one document in a batched observation: its event time and tag
// set. The batch ingest path hands the tracker a run of documents at once so
// each shard lock is taken once per chunk instead of once per document.
type BatchDoc struct {
	Time time.Time
	Tags []string
}

// keyAt is one candidate-pair increment: the pair and the document's event
// time as an absolute window bucket (every increment of one document shares
// the bucket, converted once).
type keyAt struct {
	k   Key
	abs int64
}

// batchScratch carries one ObserveBatch call's working set so the steady
// state allocates nothing: per-document interned IDs and seed flags, the
// chunk's candidate increments in document order, and the per-shard groups.
type batchScratch struct {
	ids     []uint32
	seed    []bool
	keys    []keyAt
	byShard [][]keyAt
}

var batchScratchPool = sync.Pool{New: func() any { return new(batchScratch) }}

// getBatchScratch returns a scratch with at least n empty per-shard groups.
func getBatchScratch(n int) *batchScratch {
	sc := batchScratchPool.Get().(*batchScratch)
	for len(sc.byShard) < n {
		sc.byShard = append(sc.byShard, nil)
	}
	return sc
}

// ObserveBatch records a run of documents, in order, with semantics
// identical to calling Observe(d.Time, d.Tags, isSeed) for each d — same
// pairs, same counts, same sweep and eviction timing — while taking each
// shard lock once per chunk instead of once per document.
//
// Equivalence argument. The only per-document coupling in Observe is the
// sweep trigger: after every document, a sweep fires if sinceGC ≥
// SweepEvery or npairs > MaxPairs, and sweep timing is observable (eviction
// destroys windowed history). ObserveBatch therefore cuts the batch into
// chunks such that no trigger could fire strictly inside a chunk:
//
//   - sinceGC: a chunk admits at most SweepEvery − sinceGC documents, so
//     the count trigger can only be reached at the chunk boundary — exactly
//     where the serial path would check it.
//   - npairs: a chunk admits documents while the worst-case new-pair total
//     (the sum of admitted documents' candidate-pair counts) fits in
//     MaxPairs − npairs, so no prefix of the chunk can push npairs over
//     budget. A single document too large for the remaining headroom forms
//     a chunk of one, which is literally the serial step.
//
// Within a chunk, increments commute: each (pair, bucket) increment is
// applied exactly once and counter reads happen only at sweep time or
// later, so grouping increments by shard changes no observable state. The
// tracker clock is lifted to the chunk's newest timestamp before the
// post-chunk sweep check, matching the serial clock at the same point.
// Documents are prepared (deduplicated, interned, seed-tested) in document
// order, so interned-ID assignment — and therefore shard placement — is
// also identical to the serial path.
//
//enblogue:acquires pairsShard
//enblogue:acquires pairsSweep
//enblogue:acquires tier
//enblogue:hotpath
func (tr *ShardedTracker) ObserveBatch(docs []BatchDoc, isSeed func(string) bool) {
	if len(docs) == 0 {
		return
	}
	sc := getBatchScratch(len(tr.shards))
	arena := tr.shards[0].arena // all shards share Buckets/Resolution
	i := 0
	for i < len(docs) {
		maxDocs := int64(tr.cfg.SweepEvery) - tr.sinceGC.Load()
		if maxDocs < 1 {
			maxDocs = 1
		}
		headroom := int64(tr.cfg.MaxPairs) - tr.npairs.Load()

		// Plan the chunk: generate candidate increments doc by doc until a
		// sweep trigger could fire.
		sc.keys = sc.keys[:0]
		var (
			maxNano int64
			hasMax  bool
			cand    int64
		)
		j := i
		for j < len(docs) && int64(j-i) < maxDocs {
			d := docs[j]
			start := len(sc.keys)
			if len(d.Tags) >= 2 {
				uniq := dedupTags(d.Tags)
				sc.ids = sc.ids[:0]
				sc.seed = sc.seed[:0]
				for _, tag := range uniq {
					sc.ids = append(sc.ids, intern.Intern(tag))
					if isSeed != nil {
						sc.seed = append(sc.seed, isSeed(tag))
					}
				}
				abs := arena.BucketIndex(d.Time)
				for a := 0; a < len(sc.ids); a++ {
					for b := a + 1; b < len(sc.ids); b++ {
						if isSeed != nil && !sc.seed[a] && !sc.seed[b] {
							continue
						}
						sc.keys = append(sc.keys, keyAt{KeyFromIDs(sc.ids[a], sc.ids[b]), abs})
					}
				}
			}
			nc := int64(len(sc.keys) - start)
			if j > i && cand+nc > headroom {
				sc.keys = sc.keys[:start] // over budget: doc opens the next chunk
				break
			}
			cand += nc
			if n := d.Time.UnixNano(); !hasMax || n > maxNano {
				maxNano, hasMax = n, true
			}
			j++
		}

		// Apply the chunk: lift the clock, then take each touched shard's
		// lock once and replay its increments in document order.
		tr.advanceNowNano(maxNano)
		if len(tr.shards) == 1 {
			if len(sc.keys) > 0 {
				sh := tr.shards[0]
				sh.mu.Lock()
				for _, ka := range sc.keys {
					tr.incLockedAbs(sh, ka.k, ka.abs)
				}
				sh.mu.Unlock()
			}
		} else {
			n := len(tr.shards)
			for _, ka := range sc.keys {
				s := ka.k.Shard(n)
				sc.byShard[s] = append(sc.byShard[s], ka)
			}
			for s, kas := range sc.byShard[:n] {
				if len(kas) == 0 {
					continue
				}
				sh := tr.shards[s]
				sh.mu.Lock()
				for _, ka := range kas {
					tr.incLockedAbs(sh, ka.k, ka.abs)
				}
				sh.mu.Unlock()
				sc.byShard[s] = kas[:0]
			}
		}

		// The serial path's post-document check, at the chunk boundary.
		tr.sinceGC.Add(int64(j - i))
		if tr.sweepDue() {
			tr.sweepMu.Lock()
			if tr.sweepDue() {
				tr.sweepLocked()
			}
			tr.sweepMu.Unlock()
		}
		i = j
	}
	batchScratchPool.Put(sc)
}
