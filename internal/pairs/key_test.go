package pairs

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// Key.Compare must order exactly like comparing the rendered "tag1+tag2"
// strings — the tie-break contract that keeps rankings and eviction order
// identical to a string-keyed implementation. The vocabulary includes tags
// with bytes above and below '+' and prefix-of-each-other tags, the cases
// where naive pairwise tag comparison would diverge from rendered-string
// comparison.
func TestKeyCompareMatchesRenderedStrings(t *testing.T) {
	vocab := []string{"a", "a!", "a2", "ab", "b", "+", "zz", "z+", "iceland", "ice"}
	var keys []Key
	for i := range vocab {
		for j := i; j < len(vocab); j++ {
			keys = append(keys, MakeKey(vocab[i], vocab[j]))
		}
	}
	for _, k1 := range keys {
		for _, k2 := range keys {
			want := strings.Compare(k1.String(), k2.String())
			if got := k1.Compare(k2); got != want {
				t.Fatalf("Compare(%q, %q) = %d, want %d", k1, k2, got, want)
			}
			if k1.Less(k2) != (want < 0) {
				t.Fatalf("Less(%q, %q) inconsistent with Compare", k1, k2)
			}
		}
	}
}

func TestKeyZeroValue(t *testing.T) {
	var k Key
	if k.Tag1() != "" || k.Tag2() != "" {
		t.Errorf("zero Key tags = %q, %q", k.Tag1(), k.Tag2())
	}
	if k.String() != "+" {
		t.Errorf("zero Key String = %q", k.String())
	}
	if k == MakeKey("a", "b") {
		t.Error("zero Key equals a real key")
	}
}

func TestKeyIDsRoundTrip(t *testing.T) {
	k := MakeKey("volcano", "iceland")
	a, b := k.IDs()
	if KeyFromIDs(a, b) != k || KeyFromIDs(b, a) != k {
		t.Error("KeyFromIDs(IDs()) is not the identity")
	}
}

// Rendering must be independent of interning order: the lexicographically
// smaller tag is always Tag1, even when it was interned second.
func TestKeyRenderOrderIndependentOfInterning(t *testing.T) {
	// Tags unique to this test, so "zz-…" interns after "aa-…" no matter
	// what prior tests put in the shared table — fixed strings keep the
	// test deterministic across runs.
	hi := "zz-keyrender-interned-second"
	lo := "aa-keyrender-interned-first"
	for _, k := range []Key{MakeKey(hi, lo), MakeKey(lo, hi)} {
		if k.Tag1() != lo || k.Tag2() != hi {
			t.Fatalf("render order wrong: %q + %q", k.Tag1(), k.Tag2())
		}
	}
}

func TestDedupTags(t *testing.T) {
	cases := []struct {
		in, want []string
	}{
		{[]string{"a", "b"}, []string{"a", "b"}},
		{[]string{"a", "a", "b"}, []string{"a", "b"}},
		{[]string{"", "a", "", "b", "a"}, []string{"a", "b"}},
		{[]string{"a"}, []string{"a"}},
		{nil, nil},
	}
	for _, tc := range cases {
		got := dedupTags(tc.in)
		if len(got) != len(tc.want) {
			t.Fatalf("dedupTags(%v) = %v, want %v", tc.in, got, tc.want)
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Fatalf("dedupTags(%v) = %v, want %v", tc.in, got, tc.want)
			}
		}
	}
}

// A clean small tag set must come back as the input slice itself — the
// zero-allocation fast path.
func TestDedupTagsCleanInputNoCopy(t *testing.T) {
	in := []string{"x", "y", "z"}
	got := dedupTags(in)
	if &got[0] != &in[0] || len(got) != len(in) {
		t.Error("clean input was copied")
	}
	if n := testing.AllocsPerRun(100, func() { dedupTags(in) }); n != 0 {
		t.Errorf("clean dedupTags allocates %.1f, want 0", n)
	}
}

// The map path (> smallTagSet tags) must agree with the scan path.
func TestDedupTagsLargeSet(t *testing.T) {
	var in []string
	for i := 0; i < smallTagSet+8; i++ {
		in = append(in, fmt.Sprintf("t%d", i%11), "")
	}
	got := dedupTags(in)
	if len(got) != 11 {
		t.Fatalf("large dedup kept %d tags, want 11", len(got))
	}
	seen := map[string]bool{}
	for _, tag := range got {
		if tag == "" || seen[tag] {
			t.Fatalf("large dedup output dirty: %v", got)
		}
		seen[tag] = true
	}
}

// SimilarityFrom (exclusion-threaded, no copies) must agree exactly with
// the reference formulation: copy both distributions, delete the partner
// keys, and run the bounded JS similarity.
func TestSimilarityFromMatchesCopyDelete(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	vocab := []string{"a", "b", "c", "d", "e", "f"}
	for trial := 0; trial < 500; trial++ {
		dists := map[string]map[string]float64{}
		for _, tag := range vocab {
			m := map[string]float64{}
			for _, co := range vocab {
				if co != tag && rng.Intn(2) == 0 {
					m[co] = float64(1 + rng.Intn(9))
				}
			}
			dists[tag] = m
		}
		a, b := vocab[rng.Intn(len(vocab))], vocab[rng.Intn(len(vocab))]

		// Reference: the old copy-and-delete formulation.
		da := map[string]float64{}
		for k, v := range dists[a] {
			da[k] = v
		}
		db := map[string]float64{}
		for k, v := range dists[b] {
			db[k] = v
		}
		delete(da, b)
		delete(db, a)
		var want float64
		if len(da) == 0 && len(db) == 0 {
			want = 0
		} else {
			want = 1 - JSDistance(da, db)
		}

		if got := SimilarityFrom(dists, a, b); got != want {
			t.Fatalf("trial %d: SimilarityFrom(%s,%s) = %v, want %v", trial, a, b, got, want)
		}
	}
}

// SimilarityFrom must not mutate the shared snapshot.
func TestSimilarityFromDoesNotMutateSnapshot(t *testing.T) {
	dists := map[string]map[string]float64{
		"a": {"b": 2, "x": 3},
		"b": {"a": 1, "x": 3},
	}
	SimilarityFrom(dists, "a", "b")
	if dists["a"]["b"] != 2 || dists["b"]["a"] != 1 || dists["a"]["x"] != 3 {
		t.Errorf("snapshot mutated: %v", dists)
	}
}
