package pairs

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"enblogue/internal/window"
)

// This file is the pair trackers' durability surface. Exports are canonical:
// pairs are emitted sorted by Key.Compare (the rendered-string order, which
// does not depend on interned IDs or shard placement) with every counter
// advanced to the tracker clock first, so two trackers holding the same
// logical state — regardless of shard count, slot layout, or lazy-expiry
// position — export identical state. Restores re-partition by the restoring
// tracker's own shard count, so a snapshot taken at one shard count restores
// into any other.

// PairState is one tracked pair's exported window column.
type PairState struct {
	Key    Key
	Window window.SlotState
}

// ShardedTrackerState is the full serializable state of a ShardedTracker.
type ShardedTrackerState struct {
	Pairs   []PairState // sorted by Key.Compare
	NowNano int64
	SinceGC int64
}

// ExportState returns the tracker's full state with pairs sorted by
// Key.Compare and every counter advanced to the tracker clock. Safe for
// concurrent use, though callers wanting a consistent engine snapshot must
// quiesce producers externally (the engine's ingest gate does).
//
//enblogue:acquires pairsShard
func (tr *ShardedTracker) ExportState() ShardedTrackerState {
	st := ShardedTrackerState{
		NowNano: tr.nowNano.Load(),
		SinceGC: tr.sinceGC.Load(),
		Pairs:   make([]PairState, 0, tr.npairs.Load()),
	}
	now := tr.now()
	for _, sh := range tr.shards {
		sh.mu.Lock()
		var abs int64
		if !now.IsZero() {
			abs = sh.arena.BucketIndex(now)
		}
		for slot, k := range sh.keys {
			if k == (Key{}) {
				continue
			}
			if !now.IsZero() {
				// Advance to the shared clock so exported heads agree across
				// slots and trackers — expiry is lazy, so this changes only
				// the representation, never any observable count.
				sh.arena.ValueAtAbs(int32(slot), abs)
			}
			st.Pairs = append(st.Pairs, PairState{Key: k, Window: sh.arena.ExportSlot(int32(slot))})
		}
		sh.mu.Unlock()
	}
	sort.Slice(st.Pairs, func(i, j int) bool { return st.Pairs[i].Key.Less(st.Pairs[j].Key) })
	return st
}

// RestoreState loads st into an empty tracker, assigning each pair to the
// shard its key hashes to under this tracker's shard count. Restoring into a
// tracker that has already observed documents is an error.
//
//enblogue:acquires pairsShard
func (tr *ShardedTracker) RestoreState(st ShardedTrackerState) error {
	if tr.npairs.Load() != 0 || tr.nowNano.Load() != 0 {
		return errors.New("pairs: restore into a non-empty tracker")
	}
	n := len(tr.shards)
	for _, p := range st.Pairs {
		if p.Key == (Key{}) {
			return errors.New("pairs: restore of a zero pair key")
		}
		sh := tr.shards[p.Key.Shard(n)]
		sh.mu.Lock()
		if _, dup := sh.slots[p.Key]; dup {
			sh.mu.Unlock()
			return fmt.Errorf("pairs: duplicate pair %s in restore state", p.Key)
		}
		slot := sh.arena.Alloc()
		if err := sh.arena.RestoreSlot(slot, p.Window); err != nil {
			sh.arena.Release(slot)
			sh.mu.Unlock()
			return err
		}
		sh.slots[p.Key] = slot
		for int(slot) >= len(sh.keys) {
			sh.keys = append(sh.keys, Key{})
		}
		sh.keys[slot] = p.Key
		tr.npairs.Add(1)
		sh.mu.Unlock()
	}
	tr.nowNano.Store(st.NowNano)
	tr.sinceGC.Store(st.SinceGC)
	return nil
}

// DistCoState is one (tag, co-tag) counter's exported window.
type DistCoState struct {
	Co string
	W  window.TimeBucketsState
}

// DistTagState is one tag's exported co-tag distribution.
type DistTagState struct {
	Tag string
	Co  []DistCoState // sorted by Co
}

// DistState is the full serializable state of a DistTracker.
type DistState struct {
	Tags    []DistTagState // sorted by Tag
	NowNano int64
	NowSet  bool
	SinceGC int64
}

// ExportState returns the distribution tracker's full state with tags and
// co-tags sorted and every counter advanced to the tracker clock.
//
//enblogue:acquires pairsDist
func (dt *DistTracker) ExportState() DistState {
	dt.mu.Lock()
	defer dt.mu.Unlock()
	st := DistState{
		NowNano: dt.now.UnixNano(),
		NowSet:  !dt.now.IsZero(),
		SinceGC: int64(dt.sinceGC),
		Tags:    make([]DistTagState, 0, len(dt.byTag)),
	}
	if !st.NowSet {
		st.NowNano = 0
	}
	//enblogue:unordered collects every tag for an explicit sort below; insertion order is immaterial
	for tag, m := range dt.byTag {
		ts := DistTagState{Tag: tag, Co: make([]DistCoState, 0, len(m))}
		//enblogue:unordered collects every co-tag for an explicit sort below; see outer loop
		for co, c := range m {
			if st.NowSet {
				c.Observe(dt.now) // canonicalise the head; expiry is lazy
			}
			ts.Co = append(ts.Co, DistCoState{Co: co, W: c.ExportState()})
		}
		sort.Slice(ts.Co, func(i, j int) bool { return ts.Co[i].Co < ts.Co[j].Co })
		st.Tags = append(st.Tags, ts)
	}
	sort.Slice(st.Tags, func(i, j int) bool { return st.Tags[i].Tag < st.Tags[j].Tag })
	return st
}

// RestoreState loads st into an empty distribution tracker.
//
//enblogue:acquires pairsDist
func (dt *DistTracker) RestoreState(st DistState) error {
	dt.mu.Lock()
	defer dt.mu.Unlock()
	if len(dt.byTag) != 0 || dt.counters != 0 {
		return errors.New("pairs: restore into a non-empty distribution tracker")
	}
	for _, ts := range st.Tags {
		if _, dup := dt.byTag[ts.Tag]; dup {
			return fmt.Errorf("pairs: duplicate tag %q in distribution restore state", ts.Tag)
		}
		m := make(map[string]*window.Counter, len(ts.Co))
		for _, cs := range ts.Co {
			if _, dup := m[cs.Co]; dup {
				return fmt.Errorf("pairs: duplicate co-tag %q under %q in distribution restore state", cs.Co, ts.Tag)
			}
			c := window.NewCounter(dt.cfg.Buckets, dt.cfg.Resolution)
			if err := c.RestoreState(cs.W); err != nil {
				return err
			}
			m[cs.Co] = c
			dt.counters++
		}
		dt.byTag[ts.Tag] = m
	}
	if st.NowSet {
		dt.now = time.Unix(0, st.NowNano).UTC()
	}
	dt.sinceGC = int(st.SinceGC)
	return nil
}
