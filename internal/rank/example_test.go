package rank_test

import (
	"fmt"

	"enblogue/internal/rank"
)

func ExampleTopK() {
	tk := rank.NewTopK(3)
	for _, e := range []rank.Entry{
		{ID: "iceland+volcano", Score: 0.9},
		{ID: "sports+final", Score: 0.2},
		{ID: "election+recount", Score: 0.7},
		{ID: "ht1+ht2", Score: 0.1},
		{ID: "sigmod+athens", Score: 0.8},
	} {
		tk.Offer(e)
	}
	for i, e := range tk.Ranked() {
		fmt.Printf("%d. %s (%.1f)\n", i+1, e.ID, e.Score)
	}
	// Output:
	// 1. iceland+volcano (0.9)
	// 2. sigmod+athens (0.8)
	// 3. election+recount (0.7)
}

func ExampleDiff() {
	prev := rank.List{{ID: "a", Score: 3}, {ID: "b", Score: 2}}
	cur := rank.List{{ID: "b", Score: 5}, {ID: "c", Score: 1}}
	for _, m := range rank.Diff(prev, cur) {
		fmt.Printf("%s: %d -> %d\n", m.ID, m.From, m.To)
	}
	// Output:
	// b: 1 -> 0
	// c: -1 -> 1
	// a: 0 -> -1
}

func ExampleKendallTau() {
	a := rank.List{{ID: "x", Score: 3}, {ID: "y", Score: 2}, {ID: "z", Score: 1}}
	reversed := rank.List{{ID: "z", Score: 3}, {ID: "y", Score: 2}, {ID: "x", Score: 1}}
	fmt.Printf("identical: %.0f, reversed: %.0f\n",
		rank.KendallTau(a, a), rank.KendallTau(a, reversed))
	// Output:
	// identical: 1, reversed: -1
}
