// Package rank provides top-k selection over scored topics, ranked-list
// diffing for the push front-end ("watch how the rankings for these topics
// changes with time"), and rank-correlation statistics used to quantify
// personalization effects (show case 3).
package rank

import (
	"container/heap"
	"sort"
)

// Entry is a scored, identified ranking candidate.
type Entry struct {
	ID    string
	Score float64
}

// entryHeap is a min-heap on (Score, then reverse ID) so the weakest entry
// sits at the root. Ties prefer evicting the lexicographically larger ID,
// making top-k fully deterministic.
type entryHeap []Entry

func (h entryHeap) Len() int { return len(h) }
func (h entryHeap) Less(i, j int) bool {
	if h[i].Score != h[j].Score {
		return h[i].Score < h[j].Score
	}
	return h[i].ID > h[j].ID
}
func (h entryHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *entryHeap) Push(x interface{}) { *h = append(*h, x.(Entry)) }
func (h *entryHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// TopK retains the k highest-scoring entries offered to it, in O(log k) per
// offer. The zero value is unusable; construct with NewTopK.
type TopK struct {
	k int
	h entryHeap
}

// NewTopK returns a selector for the k best entries. It panics if k < 1.
func NewTopK(k int) *TopK {
	if k < 1 {
		panic("rank: top-k capacity < 1")
	}
	return &TopK{k: k}
}

// Offer submits a candidate; it is retained only if it ranks in the current
// top k.
func (t *TopK) Offer(e Entry) {
	if len(t.h) < t.k {
		heap.Push(&t.h, e)
		return
	}
	worst := t.h[0]
	if e.Score > worst.Score || (e.Score == worst.Score && e.ID < worst.ID) {
		t.h[0] = e
		heap.Fix(&t.h, 0)
	}
}

// Len returns the number of retained entries.
func (t *TopK) Len() int { return len(t.h) }

// Ranked returns the retained entries ordered best-first (descending score,
// ties broken by ascending ID). The selector remains usable afterwards.
func (t *TopK) Ranked() List {
	out := make(List, len(t.h))
	copy(out, t.h)
	out.Sort()
	return out
}

// List is a ranked list of entries, best first.
type List []Entry

// Sort orders the list descending by score, ties by ascending ID.
func (l List) Sort() {
	sort.Slice(l, func(i, j int) bool {
		if l[i].Score != l[j].Score {
			return l[i].Score > l[j].Score
		}
		return l[i].ID < l[j].ID
	})
}

// IDs returns the entry IDs in list order.
func (l List) IDs() []string {
	out := make([]string, len(l))
	for i, e := range l {
		out[i] = e.ID
	}
	return out
}

// Positions maps each ID to its 0-based rank.
func (l List) Positions() map[string]int {
	out := make(map[string]int, len(l))
	for i, e := range l {
		out[e.ID] = i
	}
	return out
}

// Rank returns the 0-based position of id, or -1 when absent.
func (l List) Rank(id string) int {
	for i, e := range l {
		if e.ID == id {
			return i
		}
	}
	return -1
}

// Move records one entry's rank change between two lists. From or To is -1
// when the entry is absent on that side.
type Move struct {
	ID   string
	From int
	To   int
}

// Diff reports, for every ID present in prev or cur, its rank transition —
// the data behind the front-end's live rank-change display. Unchanged ranks
// are omitted. Moves are ordered by To (entries leaving the list last).
func Diff(prev, cur List) []Move {
	pp := prev.Positions()
	cp := cur.Positions()
	var moves []Move
	for id, to := range cp {
		from, ok := pp[id]
		if !ok {
			from = -1
		}
		if from != to {
			moves = append(moves, Move{ID: id, From: from, To: to})
		}
	}
	for id, from := range pp {
		if _, ok := cp[id]; !ok {
			moves = append(moves, Move{ID: id, From: from, To: -1})
		}
	}
	sort.Slice(moves, func(i, j int) bool {
		ti, tj := moves[i].To, moves[j].To
		if ti == -1 {
			ti = 1 << 30
		}
		if tj == -1 {
			tj = 1 << 30
		}
		if ti != tj {
			return ti < tj
		}
		return moves[i].ID < moves[j].ID
	})
	return moves
}

// Overlap returns |a ∩ b| / max(|a|, |b|): the fraction of shared IDs
// between two ranked lists; 1 when both are empty.
func Overlap(a, b List) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	bs := make(map[string]bool, len(b))
	for _, e := range b {
		bs[e.ID] = true
	}
	common := 0
	for _, e := range a {
		if bs[e.ID] {
			common++
		}
	}
	return float64(common) / float64(n)
}

// KendallTau returns the Kendall rank correlation coefficient between the
// orderings of the IDs common to both lists: 1 for identical order, -1 for
// reversed, 0 for uncorrelated. Lists sharing fewer than 2 IDs return 1
// (no discordance is observable).
func KendallTau(a, b List) float64 {
	bp := b.Positions()
	var common []string
	for _, e := range a {
		if _, ok := bp[e.ID]; ok {
			common = append(common, e.ID)
		}
	}
	n := len(common)
	if n < 2 {
		return 1
	}
	concordant, discordant := 0, 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			// common is in a-order, so a ranks i before j.
			if bp[common[i]] < bp[common[j]] {
				concordant++
			} else {
				discordant++
			}
		}
	}
	pairs := concordant + discordant
	return float64(concordant-discordant) / float64(pairs)
}
