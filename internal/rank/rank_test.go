package rank

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestTopKBasic(t *testing.T) {
	tk := NewTopK(3)
	for i, s := range []float64{1, 5, 3, 9, 2, 7} {
		tk.Offer(Entry{ID: fmt.Sprintf("e%d", i), Score: s})
	}
	got := tk.Ranked().IDs()
	want := []string{"e3", "e5", "e1"} // scores 9, 7, 5
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Ranked = %v, want %v", got, want)
	}
	if tk.Len() != 3 {
		t.Errorf("Len = %d, want 3", tk.Len())
	}
}

func TestTopKUnderfilled(t *testing.T) {
	tk := NewTopK(10)
	tk.Offer(Entry{ID: "only", Score: 1})
	got := tk.Ranked()
	if len(got) != 1 || got[0].ID != "only" {
		t.Errorf("Ranked = %v", got)
	}
}

func TestTopKDeterministicTies(t *testing.T) {
	tk := NewTopK(2)
	tk.Offer(Entry{ID: "b", Score: 5})
	tk.Offer(Entry{ID: "a", Score: 5})
	tk.Offer(Entry{ID: "c", Score: 5})
	got := tk.Ranked().IDs()
	want := []string{"a", "b"} // lexicographically smallest kept
	if !reflect.DeepEqual(got, want) {
		t.Errorf("tied Ranked = %v, want %v", got, want)
	}
}

func TestTopKPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewTopK(0) should panic")
		}
	}()
	NewTopK(0)
}

// Property: TopK(k) over any offer sequence equals sorting all entries and
// truncating to k.
func TestTopKMatchesSort(t *testing.T) {
	f := func(scores []float64, k8 uint8) bool {
		k := int(k8%20) + 1
		tk := NewTopK(k)
		all := make(List, 0, len(scores))
		for i, s := range scores {
			if s != s { // NaN breaks ordering; skip
				continue
			}
			e := Entry{ID: fmt.Sprintf("id%04d", i), Score: s}
			tk.Offer(e)
			all = append(all, e)
		}
		all.Sort()
		if len(all) > k {
			all = all[:k]
		}
		return reflect.DeepEqual(tk.Ranked(), all)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestListSortAndLookups(t *testing.T) {
	l := List{{"b", 2}, {"a", 9}, {"c", 2}}
	l.Sort()
	if !reflect.DeepEqual(l.IDs(), []string{"a", "b", "c"}) {
		t.Errorf("sorted IDs = %v", l.IDs())
	}
	pos := l.Positions()
	if pos["a"] != 0 || pos["b"] != 1 || pos["c"] != 2 {
		t.Errorf("Positions = %v", pos)
	}
	if l.Rank("c") != 2 || l.Rank("zzz") != -1 {
		t.Errorf("Rank wrong: c=%d zzz=%d", l.Rank("c"), l.Rank("zzz"))
	}
}

func TestDiff(t *testing.T) {
	prev := List{{"a", 3}, {"b", 2}, {"c", 1}}
	cur := List{{"b", 5}, {"a", 4}, {"d", 1}}
	moves := Diff(prev, cur)
	want := []Move{
		{ID: "b", From: 1, To: 0},
		{ID: "a", From: 0, To: 1},
		{ID: "d", From: -1, To: 2},
		{ID: "c", From: 2, To: -1},
	}
	if !reflect.DeepEqual(moves, want) {
		t.Errorf("Diff = %+v, want %+v", moves, want)
	}
}

func TestDiffNoChanges(t *testing.T) {
	l := List{{"a", 2}, {"b", 1}}
	if moves := Diff(l, l); len(moves) != 0 {
		t.Errorf("Diff of identical lists = %+v, want empty", moves)
	}
}

func TestOverlap(t *testing.T) {
	a := List{{"x", 3}, {"y", 2}}
	b := List{{"y", 9}, {"z", 8}}
	if got := Overlap(a, b); got != 0.5 {
		t.Errorf("Overlap = %v, want 0.5", got)
	}
	if got := Overlap(nil, nil); got != 1 {
		t.Errorf("Overlap(nil,nil) = %v, want 1", got)
	}
	if got := Overlap(a, nil); got != 0 {
		t.Errorf("Overlap(a,nil) = %v, want 0", got)
	}
}

func TestKendallTau(t *testing.T) {
	a := List{{"a", 4}, {"b", 3}, {"c", 2}, {"d", 1}}
	same := List{{"a", 9}, {"b", 8}, {"c", 7}, {"d", 6}}
	reversed := List{{"d", 9}, {"c", 8}, {"b", 7}, {"a", 6}}
	if got := KendallTau(a, same); got != 1 {
		t.Errorf("tau(identical) = %v, want 1", got)
	}
	if got := KendallTau(a, reversed); got != -1 {
		t.Errorf("tau(reversed) = %v, want -1", got)
	}
	// One adjacent swap among 4: 5 concordant, 1 discordant → 4/6.
	swapped := List{{"a", 9}, {"c", 8}, {"b", 7}, {"d", 6}}
	if got := KendallTau(a, swapped); got != float64(4)/float64(6) {
		t.Errorf("tau(one swap) = %v, want 2/3", got)
	}
	// Fewer than 2 common IDs.
	if got := KendallTau(a, List{{"zzz", 1}}); got != 1 {
		t.Errorf("tau(disjoint) = %v, want 1", got)
	}
}

// Property: KendallTau is symmetric and bounded in [-1, 1].
func TestKendallTauProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		mk := func() List {
			perm := rng.Perm(n)
			l := make(List, n)
			for i, p := range perm {
				l[i] = Entry{ID: fmt.Sprintf("id%d", p), Score: float64(n - i)}
			}
			return l
		}
		a, b := mk(), mk()
		t1, t2 := KendallTau(a, b), KendallTau(b, a)
		return t1 == t2 && t1 >= -1 && t1 <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Diff moves are internally consistent — every To rank exists in
// cur, every From rank exists in prev.
func TestDiffConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mk := func() List {
			n := rng.Intn(6)
			l := make(List, 0, n)
			used := map[string]bool{}
			for i := 0; i < n; i++ {
				id := fmt.Sprintf("id%d", rng.Intn(8))
				if used[id] {
					continue
				}
				used[id] = true
				l = append(l, Entry{ID: id, Score: rng.Float64()})
			}
			l.Sort()
			return l
		}
		prev, cur := mk(), mk()
		for _, m := range Diff(prev, cur) {
			if m.To >= 0 && (m.To >= len(cur) || cur[m.To].ID != m.ID) {
				return false
			}
			if m.From >= 0 && (m.From >= len(prev) || prev[m.From].ID != m.ID) {
				return false
			}
			if m.From == -1 && m.To == -1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkTopKOffer(b *testing.B) {
	tk := NewTopK(20)
	rng := rand.New(rand.NewSource(5))
	ids := make([]string, 1024)
	for i := range ids {
		ids[i] = fmt.Sprintf("pair%d", i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tk.Offer(Entry{ID: ids[i%len(ids)], Score: rng.Float64()})
	}
}

func BenchmarkKendallTau(b *testing.B) {
	var a, c List
	for i := 0; i < 50; i++ {
		a = append(a, Entry{ID: fmt.Sprintf("e%d", i), Score: float64(i)})
		c = append(c, Entry{ID: fmt.Sprintf("e%d", (i*7)%50), Score: float64(i)})
	}
	a.Sort()
	c.Sort()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		KendallTau(a, c)
	}
}
