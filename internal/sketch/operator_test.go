package sketch

import (
	"context"
	"fmt"
	"testing"
	"time"

	"enblogue/internal/stream"
)

func TestOperatorSketchesAndForwards(t *testing.T) {
	op := NewOperator(0.01, 0.01, 10, 1000)
	var forwarded int
	op.Subscribe(stream.SinkFunc(func(*stream.Item) { forwarded++ }))

	base := time.Date(2011, 6, 12, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 100; i++ {
		tags := []string{"common", ""}
		if i%10 == 0 {
			tags = append(tags, "rare")
		}
		op.Consume(&stream.Item{
			Time: base, DocID: fmt.Sprintf("d%d", i), Tags: tags,
		})
	}
	if forwarded != 100 {
		t.Errorf("forwarded = %d, want 100 (pass-through)", forwarded)
	}
	if op.Items() != 100 {
		t.Errorf("Items = %d", op.Items())
	}
	if got := op.TagCount("common"); got < 100 {
		t.Errorf("TagCount(common) = %d, want >= 100", got)
	}
	if got := op.TagCount("rare"); got < 10 || got > 20 {
		t.Errorf("TagCount(rare) = %d, want ≈10", got)
	}
	if got := op.TagCount(""); got != 0 {
		t.Errorf("empty tag sketched: %d", got)
	}
	top := op.TopTags()
	if len(top) == 0 || top[0].Key != "common" {
		t.Errorf("TopTags = %+v", top)
	}
	if !op.SeenDoc("d42") {
		t.Error("SeenDoc(d42) = false")
	}
	if op.SeenDoc("never-seen-doc-xyz") {
		t.Log("bloom false positive (possible, not an error)")
	}
}

func TestOperatorSharedAcrossPlans(t *testing.T) {
	op := NewOperator(0.01, 0.01, 5, 100)
	items := make(stream.SliceSource, 50)
	base := time.Date(2011, 6, 12, 0, 0, 0, 0, time.UTC)
	for i := range items {
		items[i] = &stream.Item{Time: base, DocID: fmt.Sprintf("d%d", i), Tags: []string{"t"}}
	}
	var n1, n2 int
	r := stream.NewRunner(items)
	shared := stream.Shared("sketch", func() stream.Operator { return op })
	r.Add(&stream.Plan{Name: "p1", Stages: []stream.Stage{shared},
		Sink: stream.SinkFunc(func(*stream.Item) { n1++ })})
	r.Add(&stream.Plan{Name: "p2", Stages: []stream.Stage{shared},
		Sink: stream.SinkFunc(func(*stream.Item) { n2++ })})
	if err := r.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if n1 != 50 || n2 != 50 {
		t.Errorf("plan deliveries = %d/%d", n1, n2)
	}
	// The shared instance sketched each item once, not once per plan.
	if op.Items() != 50 {
		t.Errorf("Items = %d, want 50 (single shared pass)", op.Items())
	}
	if got := op.TagCount("t"); got != 50 {
		t.Errorf("TagCount(t) = %d, want 50", got)
	}
}
