package sketch

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCountMinExact(t *testing.T) {
	c := NewCountMin(4, 1024)
	c.Add("a", 3)
	c.Add("b", 5)
	c.Add("a", 2)
	if got := c.Count("a"); got != 5 {
		t.Errorf("Count(a) = %d, want 5", got)
	}
	if got := c.Count("b"); got != 5 {
		t.Errorf("Count(b) = %d, want 5", got)
	}
	if got := c.Total(); got != 10 {
		t.Errorf("Total = %d, want 10", got)
	}
}

func TestCountMinNeverUnderestimates(t *testing.T) {
	f := func(keys []string) bool {
		c := NewCountMin(3, 64)
		truth := map[string]uint64{}
		for _, k := range keys {
			c.Add(k, 1)
			truth[k]++
		}
		for k, n := range truth {
			if c.Count(k) < n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCountMinErrorBound(t *testing.T) {
	// epsilon=0.01, delta=0.01: overestimate should be <= eps*N nearly always.
	c := NewCountMinWithError(0.01, 0.01)
	rng := rand.New(rand.NewSource(42))
	truth := map[string]uint64{}
	const n = 50000
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("key%d", rng.Intn(2000))
		c.Add(k, 1)
		truth[k]++
	}
	bad := 0
	for k, want := range truth {
		if c.Count(k) > want+uint64(0.01*float64(n)) {
			bad++
		}
	}
	if bad > len(truth)/50 {
		t.Errorf("%d/%d keys exceed the epsilon error bound", bad, len(truth))
	}
}

func TestCountMinReset(t *testing.T) {
	c := NewCountMin(2, 16)
	c.Add("x", 7)
	c.Reset()
	if got := c.Count("x"); got != 0 {
		t.Errorf("after Reset Count = %d, want 0", got)
	}
	if got := c.Total(); got != 0 {
		t.Errorf("after Reset Total = %d, want 0", got)
	}
}

func TestCountMinPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero depth":  func() { NewCountMin(0, 8) },
		"zero width":  func() { NewCountMin(8, 0) },
		"bad epsilon": func() { NewCountMinWithError(0, 0.1) },
		"bad delta":   func() { NewCountMinWithError(0.1, 1) },
		"topk zero":   func() { NewTopK(0) },
		"bloom rate":  func() { NewBloom(10, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestBloomNoFalseNegatives(t *testing.T) {
	f := func(keys []string) bool {
		b := NewBloom(len(keys)+1, 0.01)
		for _, k := range keys {
			b.Add(k)
		}
		for _, k := range keys {
			if !b.Contains(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBloomFalsePositiveRate(t *testing.T) {
	b := NewBloom(10000, 0.01)
	for i := 0; i < 10000; i++ {
		b.Add(fmt.Sprintf("in%d", i))
	}
	fp := 0
	const probes = 10000
	for i := 0; i < probes; i++ {
		if b.Contains(fmt.Sprintf("out%d", i)) {
			fp++
		}
	}
	// Allow 5x slack over the design rate.
	if fp > probes/20 {
		t.Errorf("false positive rate %d/%d too high", fp, probes)
	}
	if b.Len() != 10000 {
		t.Errorf("Len = %d, want 10000", b.Len())
	}
}

func TestTopKExactWhenUnderCapacity(t *testing.T) {
	tk := NewTopK(10)
	for i := 0; i < 5; i++ {
		for j := 0; j <= i; j++ {
			tk.Add(fmt.Sprintf("k%d", i))
		}
	}
	es := tk.Entries()
	if len(es) != 5 {
		t.Fatalf("got %d entries, want 5", len(es))
	}
	if es[0].Key != "k4" || es[0].Count != 5 || es[0].Error != 0 {
		t.Errorf("top entry = %+v, want k4/5/0", es[0])
	}
	if es[4].Key != "k0" || es[4].Count != 1 {
		t.Errorf("bottom entry = %+v, want k0/1", es[4])
	}
}

func TestTopKFindsHeavyHitters(t *testing.T) {
	tk := NewTopK(20)
	rng := rand.New(rand.NewSource(1))
	// Two heavy keys among uniform noise.
	for i := 0; i < 20000; i++ {
		switch {
		case i%4 == 0:
			tk.Add("heavy1")
		case i%5 == 0:
			tk.Add("heavy2")
		default:
			tk.Add(fmt.Sprintf("noise%d", rng.Intn(5000)))
		}
	}
	es := tk.Entries()
	if es[0].Key != "heavy1" {
		t.Errorf("top key = %q, want heavy1", es[0].Key)
	}
	if es[1].Key != "heavy2" {
		t.Errorf("second key = %q, want heavy2", es[1].Key)
	}
	if _, ok := tk.Count("heavy1"); !ok {
		t.Error("Count(heavy1) not tracked")
	}
	if _, ok := tk.Count("definitely-absent"); ok {
		t.Error("Count of absent key reported as tracked")
	}
}

// Property: Space-Saving count is always an upper bound on the true count,
// and Count - Error is a lower bound.
func TestTopKBounds(t *testing.T) {
	f := func(raw []uint8) bool {
		tk := NewTopK(8)
		truth := map[string]uint64{}
		for _, r := range raw {
			k := fmt.Sprintf("k%d", r%32)
			tk.Add(k)
			truth[k]++
		}
		for _, e := range tk.Entries() {
			n := truth[e.Key]
			if e.Count < n {
				return false
			}
			if e.Count-e.Error > n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkCountMinAdd(b *testing.B) {
	c := NewCountMin(4, 4096)
	keys := make([]string, 1024)
	for i := range keys {
		keys[i] = fmt.Sprintf("tag%d", i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Add(keys[i%len(keys)], 1)
	}
}

func BenchmarkBloomContains(b *testing.B) {
	bl := NewBloom(100000, 0.01)
	for i := 0; i < 100000; i++ {
		bl.Add(fmt.Sprintf("doc%d", i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bl.Contains(fmt.Sprintf("doc%d", i%200000))
	}
}
