package sketch

import (
	"sync"

	"enblogue/internal/stream"
)

// Operator is the paper's plug-in "sketching operator that maps stream
// items into synopses": a pass-through stream stage that folds every item's
// tags into a Count-Min sketch, a Space-Saving top-k summary, and a Bloom
// filter of document IDs. Several query plans can share one instance (it is
// internally locked) and read approximate statistics without touching the
// engines' exact windowed counters.
type Operator struct {
	stream.FanOut

	mu    sync.Mutex
	cm    *CountMin
	topk  *TopK
	docs  *Bloom
	items int64
}

// NewOperator returns a sketching operator with a Count-Min sketch of the
// given error profile, a top-k summary of size k, and a Bloom filter sized
// for expectedDocs.
func NewOperator(epsilon, delta float64, k, expectedDocs int) *Operator {
	return &Operator{
		cm:   NewCountMinWithError(epsilon, delta),
		topk: NewTopK(k),
		docs: NewBloom(expectedDocs, 0.01),
	}
}

// Consume implements stream.Sink: it sketches the item and forwards it
// unchanged.
func (o *Operator) Consume(it *stream.Item) {
	o.mu.Lock()
	o.items++
	o.docs.Add(it.DocID)
	for _, tag := range it.Tags {
		if tag == "" {
			continue
		}
		o.cm.Add(tag, 1)
		o.topk.Add(tag)
	}
	o.mu.Unlock()
	o.Emit(it)
}

// TagCount returns the approximate (never under-) count of tag occurrences.
func (o *Operator) TagCount(tag string) uint64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.cm.Count(tag)
}

// TopTags returns the approximate heavy hitters, best first.
func (o *Operator) TopTags() []Entry {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.topk.Entries()
}

// SeenDoc reports whether a document ID has (probably) passed through.
func (o *Operator) SeenDoc(id string) bool {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.docs.Contains(id)
}

// Items returns the number of items sketched.
func (o *Operator) Items() int64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.items
}
