package sketch

import (
	"hash/fnv"
	"testing"
)

func skipUnderRace(t *testing.T) {
	t.Helper()
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
}

// TestSketchHashZeroAlloc pins the hand-rolled hash paths at zero
// allocations per call. The previous hash64 used fnv.New64a + Write, which
// allocated twice per call — two allocations per sketch row touched, on
// what is now the tail tier's demotion path.
func TestSketchHashZeroAlloc(t *testing.T) {
	skipUnderRace(t)
	key := "some-representative-tag"
	var sink uint64
	if n := testing.AllocsPerRun(200, func() {
		sink += hash64(key, 3)
	}); n != 0 {
		t.Errorf("hash64 allocates %.1f per call, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		sink += hashU64(0x1234_5678_9abc_def0, 3)
	}); n != 0 {
		t.Errorf("hashU64 allocates %.1f per call, want 0", n)
	}
	_ = sink
}

// TestCountMinIngestZeroAlloc pins the sketch ingest paths — string and
// uint64-keyed — at zero allocations per Add/Count.
func TestCountMinIngestZeroAlloc(t *testing.T) {
	skipUnderRace(t)
	c := NewCountMin(4, 1024)
	var sink uint64
	if n := testing.AllocsPerRun(200, func() {
		c.Add("steady-state-tag", 1)
		sink += c.Count("steady-state-tag")
	}); n != 0 {
		t.Errorf("string Add+Count allocates %.1f per call, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		c.AddU64(0xfeed_beef, 1)
		sink += c.CountU64(0xfeed_beef)
	}); n != 0 {
		t.Errorf("AddU64+CountU64 allocates %.1f per call, want 0", n)
	}
	_ = sink
}

// TestTopKU64SteadyStateZeroAlloc pins the weighted Space-Saving summary at
// zero allocations once warm, including at capacity where every new key
// evicts the minimum (the string TopK allocates an Entry per eviction; the
// dense-slot layout must not).
func TestTopKU64SteadyStateZeroAlloc(t *testing.T) {
	skipUnderRace(t)
	tk := NewTopKU64(64)
	for i := uint64(0); i < 64; i++ {
		tk.Add(i, i+1)
	}
	var next uint64 = 1000
	if n := testing.AllocsPerRun(200, func() {
		tk.Add(next, 2) // miss: evicts the minimum
		tk.Add(5, 1)    // hit
		next++
	}); n != 0 {
		t.Errorf("TopKU64.Add allocates %.1f per call at capacity, want 0", n)
	}
}

// TestHash64MatchesStdlibFNV proves the hand-rolled loop is bit-identical
// to the hash/fnv implementation it replaced, so existing sketch contents
// and row placements are unchanged.
func TestHash64MatchesStdlibFNV(t *testing.T) {
	ref := func(s string, salt uint64) uint64 {
		h := fnv.New64a()
		var b [8]byte
		for i := 0; i < 8; i++ {
			b[i] = byte(salt >> (8 * i))
		}
		h.Write(b[:])
		h.Write([]byte(s))
		return h.Sum64()
	}
	for _, s := range []string{"", "a", "sigmod", "αθήνα", "tag-with-a-longer-name"} {
		for _, salt := range []uint64{0, 1, 2, 0x9e3779b97f4a7c15} {
			if got, want := hash64(s, salt), ref(s, salt); got != want {
				t.Errorf("hash64(%q, %#x) = %#x, want %#x", s, salt, got, want)
			}
		}
	}
}

func BenchmarkCountMinAddU64(b *testing.B) {
	c := NewCountMin(4, 4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.AddU64(uint64(i%1024), 1)
	}
}
