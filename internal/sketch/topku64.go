package sketch

import (
	"fmt"
	"sort"
)

// EntryU64 is a heavy-hitter candidate from a TopKU64 summary.
type EntryU64 struct {
	Key   uint64
	Count uint64 // estimated count (upper bound)
	Error uint64 // maximum overestimate of Count
}

// TopKU64 is a weighted Space-Saving summary (Metwally et al.) over
// already-interned 64-bit keys — the tail tier's heavy-hitter set of packed
// pairs.Keys. It differs from the string TopK in three ways that matter on
// the demotion path:
//
//   - Add takes a weight, because a demoted pair arrives carrying its whole
//     windowed count, not one occurrence at a time.
//   - Entries live in a dense slice indexed by a key→slot map, so steady
//     state Add performs no allocations (the string TopK allocates an Entry
//     per eviction) and the min scan walks the slice in slot order — the
//     victim is a deterministic function of the summary contents, never of
//     map iteration order.
//   - Remove exists, because promotion pulls a key back into the exact tier
//     and must stop it from being re-promoted until it is demoted again.
type TopKU64 struct {
	k       int
	entries []EntryU64
	index   map[uint64]int32 // key → slot in entries
}

// NewTopKU64 returns a summary with capacity k. It panics if k < 1.
func NewTopKU64(k int) *TopKU64 {
	if k < 1 {
		panic(fmt.Sprintf("sketch: TopKU64 capacity %d < 1", k))
	}
	return &TopKU64{
		k:       k,
		entries: make([]EntryU64, 0, k),
		index:   make(map[uint64]int32, k),
	}
}

// Add records weight w of key. At capacity it evicts the minimum-count
// entry — ties broken on the key — and the newcomer inherits the victim's
// count as its error bound, so counts remain upper bounds.
//
//enblogue:hotpath
func (t *TopKU64) Add(key uint64, w uint64) {
	if i, ok := t.index[key]; ok {
		t.entries[i].Count += w
		return
	}
	if len(t.entries) < t.k {
		t.index[key] = int32(len(t.entries))
		t.entries = append(t.entries, EntryU64{Key: key, Count: w})
		return
	}
	m := 0
	for i := 1; i < len(t.entries); i++ {
		e, min := &t.entries[i], &t.entries[m]
		if e.Count < min.Count || (e.Count == min.Count && e.Key < min.Key) {
			m = i
		}
	}
	old := t.entries[m]
	delete(t.index, old.Key)
	t.entries[m] = EntryU64{Key: key, Count: old.Count + w, Error: old.Count}
	t.index[key] = int32(m)
}

// Remove drops key from the summary (slot recycled via swap-remove) and
// reports whether it was tracked.
func (t *TopKU64) Remove(key uint64) bool {
	i, ok := t.index[key]
	if !ok {
		return false
	}
	last := int32(len(t.entries) - 1)
	if i != last {
		t.entries[i] = t.entries[last]
		t.index[t.entries[i].Key] = i
	}
	t.entries = t.entries[:last]
	delete(t.index, key)
	return true
}

// Count returns the estimated count for key and whether it is tracked.
func (t *TopKU64) Count(key uint64) (uint64, bool) {
	i, ok := t.index[key]
	if !ok {
		return 0, false
	}
	return t.entries[i].Count, true
}

// Contains reports whether key is tracked.
func (t *TopKU64) Contains(key uint64) bool {
	_, ok := t.index[key]
	return ok
}

// Len returns the number of tracked keys.
func (t *TopKU64) Len() int { return len(t.entries) }

// At returns the entry in slot i, 0 ≤ i < Len(). Slot order is
// deterministic (insertion order with swap-remove recycling), letting
// callers walk the summary without materialising a sorted copy.
func (t *TopKU64) At(i int) EntryU64 { return t.entries[i] }

// AppendEntries appends the tracked entries to buf in slot order —
// deterministic but unsorted; callers wanting rank order should sort the
// result. Appending into a caller-owned buffer keeps read paths
// allocation-free once the buffer has grown.
func (t *TopKU64) AppendEntries(buf []EntryU64) []EntryU64 {
	return append(buf, t.entries...)
}

// Entries returns the tracked keys sorted by estimated count descending,
// ties broken by key for determinism.
func (t *TopKU64) Entries() []EntryU64 {
	out := append([]EntryU64(nil), t.entries...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// Reset empties the summary, retaining capacity.
func (t *TopKU64) Reset() {
	//enblogue:unordered per-key delete of every element leaves the map empty regardless of order
	for k := range t.index {
		delete(t.index, k)
	}
	t.entries = t.entries[:0]
}
