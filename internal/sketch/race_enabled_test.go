//go:build race

package sketch

// raceEnabled reports that this test binary was built with -race, which
// instruments allocations and bypasses sync.Pool caching — allocation
// counts are not meaningful there.
const raceEnabled = true
