package sketch

// WindowedCountMin ages a Count-Min sketch in step with the engine's
// sliding statistics window using two generations: all mass lands in the
// current generation, estimates read current + previous, and advancing one
// generation retires the previous sketch and recycles it as the new current
// one. A key's estimate therefore covers at least the last full generation
// span and at most two — an upper bound on its windowed count whenever the
// generation span is at least the window span — and mass added longer than
// two spans ago has fully decayed to zero instead of accumulating forever.
//
// Generations are indexed by event time (the caller passes gen =
// eventNanos / span), never the wall clock, so rotation points are
// replay-deterministic like every other decay boundary in the engine.
type WindowedCountMin struct {
	cur, prev *CountMin
	gen       int64
	started   bool
}

// NewWindowedCountMinWithError returns a windowed sketch whose per-
// generation additive error is at most epsilon × generation mass with
// failure probability delta (each generation is a CountMin sized by
// NewCountMinWithError).
func NewWindowedCountMinWithError(epsilon, delta float64) *WindowedCountMin {
	return &WindowedCountMin{
		cur:  NewCountMinWithError(epsilon, delta),
		prev: NewCountMinWithError(epsilon, delta),
	}
}

// Advance moves the sketch to generation gen. One step forward rotates
// (prev ← cur, cur ← zeroed); a jump of two or more spans zeroes both
// generations — everything tracked has aged out. Moving backwards is
// ignored: event time is monotone on the paths that feed the sketch, and a
// stale reader must not clear newer mass.
func (w *WindowedCountMin) Advance(gen int64) {
	if w.started && gen <= w.gen {
		return
	}
	switch {
	case !w.started:
		// First mass defines the epoch; nothing to age out.
	case gen == w.gen+1:
		w.cur, w.prev = w.prev, w.cur
		w.cur.Reset()
	default: // gen ≥ w.gen+2
		w.cur.Reset()
		w.prev.Reset()
	}
	w.gen = gen
	w.started = true
}

// AddU64 adds weight n of key to the current generation.
//
//enblogue:hotpath
func (w *WindowedCountMin) AddU64(key uint64, n uint64) {
	w.cur.AddU64(key, n)
}

// EstimateU64 returns the upper-bound estimate of key's mass over the live
// generations (current + previous).
//
//enblogue:hotpath
func (w *WindowedCountMin) EstimateU64(key uint64) uint64 {
	return w.cur.CountU64(key) + w.prev.CountU64(key)
}

// Mass returns the total mass across the live generations — the N in the
// εN error bound reported by /v1 stats.
func (w *WindowedCountMin) Mass() uint64 {
	return w.cur.Total() + w.prev.Total()
}

// Epsilon returns the additive-error fraction of each generation sketch.
func (w *WindowedCountMin) Epsilon() float64 { return w.cur.Epsilon() }

// Gen returns the current generation index.
func (w *WindowedCountMin) Gen() int64 { return w.gen }
