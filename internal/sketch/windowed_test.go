package sketch

import (
	"testing"
	"testing/quick"
)

func TestTopKU64WeightedExactUnderCapacity(t *testing.T) {
	tk := NewTopKU64(8)
	tk.Add(7, 10)
	tk.Add(3, 4)
	tk.Add(7, 5)
	if got, ok := tk.Count(7); !ok || got != 15 {
		t.Errorf("Count(7) = %d,%v want 15,true", got, ok)
	}
	if tk.Len() != 2 {
		t.Errorf("Len = %d, want 2", tk.Len())
	}
	es := tk.Entries()
	if es[0].Key != 7 || es[0].Count != 15 || es[0].Error != 0 {
		t.Errorf("top entry = %+v, want {7 15 0}", es[0])
	}
}

func TestTopKU64EvictionInheritsMinimum(t *testing.T) {
	tk := NewTopKU64(2)
	tk.Add(1, 10)
	tk.Add(2, 3)
	tk.Add(9, 4) // evicts key 2 (min, count 3): 9 gets 3+4 with error 3
	if tk.Contains(2) {
		t.Error("evicted key 2 still tracked")
	}
	if got, _ := tk.Count(9); got != 7 {
		t.Errorf("Count(9) = %d, want 7", got)
	}
	es := tk.Entries()
	if es[1].Key != 9 || es[1].Error != 3 {
		t.Errorf("newcomer entry = %+v, want Error 3", es[1])
	}
}

func TestTopKU64DeterministicEviction(t *testing.T) {
	// All counts tied: the victim must be the smallest key, every time.
	for run := 0; run < 20; run++ {
		tk := NewTopKU64(4)
		for _, k := range []uint64{40, 10, 30, 20} {
			tk.Add(k, 5)
		}
		tk.Add(99, 1)
		if tk.Contains(10) {
			t.Fatalf("run %d: tie-break evicted some key other than 10", run)
		}
	}
}

func TestTopKU64Remove(t *testing.T) {
	tk := NewTopKU64(4)
	for _, k := range []uint64{1, 2, 3, 4} {
		tk.Add(k, k)
	}
	if !tk.Remove(2) || tk.Remove(2) {
		t.Fatal("Remove(2) should succeed once")
	}
	if tk.Len() != 3 || tk.Contains(2) {
		t.Fatalf("after Remove: Len=%d Contains(2)=%v", tk.Len(), tk.Contains(2))
	}
	// Remaining keys still reachable through the index after swap-remove.
	for _, k := range []uint64{1, 3, 4} {
		if got, ok := tk.Count(k); !ok || got != k {
			t.Errorf("Count(%d) = %d,%v after Remove", k, got, ok)
		}
	}
	tk.Reset()
	if tk.Len() != 0 || tk.Contains(1) {
		t.Error("Reset did not empty the summary")
	}
}

// Property: like the string TopK, weighted Space-Saving counts are upper
// bounds on true mass and Count - Error is a lower bound.
func TestTopKU64Bounds(t *testing.T) {
	f := func(raw []uint8) bool {
		tk := NewTopKU64(8)
		truth := map[uint64]uint64{}
		for _, r := range raw {
			k := uint64(r % 32)
			w := uint64(r%3) + 1
			tk.Add(k, w)
			truth[k] += w
		}
		for _, e := range tk.Entries() {
			n := truth[e.Key]
			if e.Count < n {
				return false
			}
			if e.Count-e.Error > n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestWindowedCountMinRotation(t *testing.T) {
	w := NewWindowedCountMinWithError(0.01, 0.01)
	w.Advance(10)
	w.AddU64(42, 100)
	if got := w.EstimateU64(42); got < 100 {
		t.Fatalf("estimate in-generation = %d, want ≥ 100", got)
	}
	// One step: mass moves to prev, still visible.
	w.Advance(11)
	if got := w.EstimateU64(42); got < 100 {
		t.Fatalf("estimate after one rotation = %d, want ≥ 100", got)
	}
	w.AddU64(42, 7)
	if got := w.EstimateU64(42); got < 107 {
		t.Fatalf("estimate cur+prev = %d, want ≥ 107", got)
	}
	// Second step: the original 100 ages out, the 7 survives.
	w.Advance(12)
	if got := w.EstimateU64(42); got < 7 || got >= 100 {
		t.Fatalf("estimate after aging = %d, want in [7, 100)", got)
	}
	// Jump ≥ 2 spans: everything decays.
	w.Advance(20)
	if got := w.EstimateU64(42); got != 0 {
		t.Fatalf("estimate after jump = %d, want 0", got)
	}
	if w.Mass() != 0 {
		t.Fatalf("Mass after jump = %d, want 0", w.Mass())
	}
}

func TestWindowedCountMinBackwardsAdvanceIgnored(t *testing.T) {
	w := NewWindowedCountMinWithError(0.01, 0.01)
	w.Advance(5)
	w.AddU64(1, 50)
	w.Advance(3) // stale reader must not clear newer mass
	if got := w.EstimateU64(1); got < 50 {
		t.Errorf("estimate after backwards Advance = %d, want ≥ 50", got)
	}
	if w.Gen() != 5 {
		t.Errorf("Gen = %d, want 5", w.Gen())
	}
}
