// Package sketch provides the pluggable synopsis operators the paper's
// architecture calls out ("plug-in options for sketching operators that map
// stream items into synopses"): a Count-Min sketch for approximate tag
// frequencies, a Bloom filter for document-membership tests, and a
// Space-Saving heavy-hitter summary for approximate top-k tags.
//
// All structures use 64-bit FNV-1a hashing with per-row salts, so they need
// nothing outside the standard library.
package sketch

import (
	"fmt"
	"math"
	"sort"
)

// FNV-1a constants (hash/fnv), inlined so the hash loops below stay
// allocation-free.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// hash64 returns the FNV-1a hash of s salted with the given row salt. The
// loop is hand-rolled instead of using hash/fnv because fnv.New64a heap-
// allocates the hash state and h.Write([]byte(s)) copies the string — two
// allocations per call on what used to be the only ingest path. The digest
// is bit-identical to the previous hash/fnv implementation (salt bytes
// little-endian first, then the string bytes), so sketch contents are
// unchanged. Zero allocations, pinned by TestSketchHashZeroAlloc.
func hash64(s string, salt uint64) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < 8; i++ {
		h ^= (salt >> (8 * i)) & 0xff
		h *= fnvPrime64
	}
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return h
}

// hashU64 hashes an already-interned 64-bit key (a packed pairs.Key) with a
// per-row salt using the splitmix64 finaliser. This is the tier's hot-path
// hash: demoted pairs arrive as packed uint64s, so no string is ever formed
// or hashed. Interned IDs are assigned in first-appearance order on a
// sequentially consumed stream, so the packed key — and therefore every row
// index derived here — is itself deterministic across replays (DESIGN.md
// §12). Zero allocations, pinned by TestSketchHashZeroAlloc.
func hashU64(key, salt uint64) uint64 {
	z := key + (salt+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// CountMin is a Count-Min sketch: a depth × width matrix of counters. Count
// estimates are upper bounds; with width w and depth d, the overestimate is
// at most εN with probability 1-δ where ε = e/w and δ = e^-d.
type CountMin struct {
	depth, width int
	rows         [][]uint64
	total        uint64
}

// NewCountMin returns a sketch with the given depth (number of hash rows)
// and width (counters per row). It panics on non-positive dimensions.
func NewCountMin(depth, width int) *CountMin {
	if depth < 1 || width < 1 {
		panic(fmt.Sprintf("sketch: CountMin dimensions %dx%d invalid", depth, width))
	}
	rows := make([][]uint64, depth)
	for i := range rows {
		rows[i] = make([]uint64, width)
	}
	return &CountMin{depth: depth, width: width, rows: rows}
}

// NewCountMinWithError returns a sketch sized for additive error at most
// epsilon × N with failure probability delta.
func NewCountMinWithError(epsilon, delta float64) *CountMin {
	if epsilon <= 0 || epsilon >= 1 || delta <= 0 || delta >= 1 {
		panic(fmt.Sprintf("sketch: invalid epsilon %v / delta %v", epsilon, delta))
	}
	width := int(math.Ceil(math.E / epsilon))
	depth := int(math.Ceil(math.Log(1 / delta)))
	return NewCountMin(depth, width)
}

// Add increments the count of key by n.
func (c *CountMin) Add(key string, n uint64) {
	for i := 0; i < c.depth; i++ {
		j := hash64(key, uint64(i)) % uint64(c.width)
		c.rows[i][j] += n
	}
	c.total += n
}

// Count returns the estimated count of key (never an underestimate).
func (c *CountMin) Count(key string) uint64 {
	min := uint64(math.MaxUint64)
	for i := 0; i < c.depth; i++ {
		j := hash64(key, uint64(i)) % uint64(c.width)
		if v := c.rows[i][j]; v < min {
			min = v
		}
	}
	return min
}

// AddU64 increments the count of an already-interned 64-bit key by n. This
// is the zero-allocation ingest path used by the tail tier: the key is a
// packed pairs.Key, hashed with splitmix64 rather than string FNV.
//
//enblogue:hotpath
func (c *CountMin) AddU64(key uint64, n uint64) {
	for i := 0; i < c.depth; i++ {
		j := hashU64(key, uint64(i)) % uint64(c.width)
		c.rows[i][j] += n
	}
	c.total += n
}

// CountU64 returns the estimated count of a 64-bit key (never an
// underestimate).
//
//enblogue:hotpath
func (c *CountMin) CountU64(key uint64) uint64 {
	min := uint64(math.MaxUint64)
	for i := 0; i < c.depth; i++ {
		j := hashU64(key, uint64(i)) % uint64(c.width)
		if v := c.rows[i][j]; v < min {
			min = v
		}
	}
	return min
}

// Epsilon returns the additive-error fraction of the sketch: estimates
// exceed true counts by at most Epsilon × Total with probability 1-δ.
func (c *CountMin) Epsilon() float64 { return math.E / float64(c.width) }

// Total returns the total mass added to the sketch.
func (c *CountMin) Total() uint64 { return c.total }

// Reset zeroes the sketch.
func (c *CountMin) Reset() {
	for i := range c.rows {
		for j := range c.rows[i] {
			c.rows[i][j] = 0
		}
	}
	c.total = 0
}

// Bloom is a standard Bloom filter over strings.
type Bloom struct {
	bits []uint64
	m    uint64 // number of bits
	k    int    // number of hash functions
	n    uint64 // elements added
}

// NewBloom returns a filter sized for n expected elements at the given false
// positive rate.
func NewBloom(n int, fpRate float64) *Bloom {
	if n < 1 {
		n = 1
	}
	if fpRate <= 0 || fpRate >= 1 {
		panic(fmt.Sprintf("sketch: invalid Bloom fp rate %v", fpRate))
	}
	m := uint64(math.Ceil(-float64(n) * math.Log(fpRate) / (math.Ln2 * math.Ln2)))
	if m < 64 {
		m = 64
	}
	k := int(math.Round(float64(m) / float64(n) * math.Ln2))
	if k < 1 {
		k = 1
	}
	return &Bloom{bits: make([]uint64, (m+63)/64), m: m, k: k}
}

// Add inserts key into the filter.
func (b *Bloom) Add(key string) {
	h1 := hash64(key, 0x9e3779b97f4a7c15)
	h2 := hash64(key, 0xc2b2ae3d27d4eb4f) | 1
	for i := 0; i < b.k; i++ {
		bit := (h1 + uint64(i)*h2) % b.m
		b.bits[bit/64] |= 1 << (bit % 64)
	}
	b.n++
}

// Contains reports whether key may be in the set (false positives possible,
// false negatives impossible).
func (b *Bloom) Contains(key string) bool {
	h1 := hash64(key, 0x9e3779b97f4a7c15)
	h2 := hash64(key, 0xc2b2ae3d27d4eb4f) | 1
	for i := 0; i < b.k; i++ {
		bit := (h1 + uint64(i)*h2) % b.m
		if b.bits[bit/64]&(1<<(bit%64)) == 0 {
			return false
		}
	}
	return true
}

// Len returns the number of Add calls.
func (b *Bloom) Len() uint64 { return b.n }

// Entry is a heavy-hitter candidate from a TopK summary.
type Entry struct {
	Key   string
	Count uint64 // estimated count (upper bound)
	Error uint64 // maximum overestimate of Count
}

// TopK is a Space-Saving summary (Metwally et al.) that tracks approximately
// the k most frequent keys of a stream using O(k) space.
type TopK struct {
	k      int
	counts map[string]*Entry
}

// NewTopK returns a summary with capacity k. It panics if k < 1.
func NewTopK(k int) *TopK {
	if k < 1 {
		panic(fmt.Sprintf("sketch: TopK capacity %d < 1", k))
	}
	return &TopK{k: k, counts: make(map[string]*Entry, k)}
}

// Add records one occurrence of key.
func (t *TopK) Add(key string) {
	if e, ok := t.counts[key]; ok {
		e.Count++
		return
	}
	if len(t.counts) < t.k {
		t.counts[key] = &Entry{Key: key, Count: 1}
		return
	}
	// Evict the current minimum and inherit its count as error bound. Ties
	// on Count break on the key so the victim is a function of the summary
	// contents, not of randomised map iteration order.
	var min *Entry
	//enblogue:unordered min selection under the (Count, Key) total order is iteration-order independent
	for _, e := range t.counts {
		if min == nil || e.Count < min.Count || (e.Count == min.Count && e.Key < min.Key) {
			min = e
		}
	}
	delete(t.counts, min.Key)
	t.counts[key] = &Entry{Key: key, Count: min.Count + 1, Error: min.Count}
}

// Entries returns the tracked keys sorted by estimated count descending,
// ties broken by key for determinism.
func (t *TopK) Entries() []Entry {
	out := make([]Entry, 0, len(t.counts))
	//enblogue:unordered collect-then-sort: the slice is fully ordered below
	for _, e := range t.counts {
		out = append(out, *e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// Count returns the estimated count for key and whether it is tracked.
func (t *TopK) Count(key string) (uint64, bool) {
	e, ok := t.counts[key]
	if !ok {
		return 0, false
	}
	return e.Count, true
}
