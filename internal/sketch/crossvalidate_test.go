package sketch

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"enblogue/internal/tagstats"
)

// The approximate synopsis must agree with the exact windowed statistics it
// is meant to stand in for: on a strongly Zipf-skewed stream, Space-Saving's
// head should match the exact tracker's head, and Count-Min estimates
// should bracket true counts within the design error.
func TestSketchAgreesWithExactTagStats(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	zipf := rand.NewZipf(rng, 1.6, 1, 499)

	exact := tagstats.NewTracker(tagstats.Config{
		Buckets: 1000, Resolution: time.Hour, // effectively unbounded window
	})
	cm := NewCountMinWithError(0.005, 0.01)
	tk := NewTopK(50)
	truth := map[string]uint64{}

	t0 := time.Date(2011, 6, 12, 0, 0, 0, 0, time.UTC)
	const n = 30000
	for i := 0; i < n; i++ {
		tag := fmt.Sprintf("tag%03d", zipf.Uint64())
		exact.Observe(t0.Add(time.Duration(i)*time.Second), []string{tag})
		cm.Add(tag, 1)
		tk.Add(tag)
		truth[tag]++
	}

	// Exact top-10 vs Space-Saving top-10: heads must share >= 8 tags.
	exactTop := exact.Top(10, tagstats.ByPopularity, 0)
	approx := map[string]bool{}
	for i, e := range tk.Entries() {
		if i >= 10 {
			break
		}
		approx[e.Key] = true
	}
	shared := 0
	for _, e := range exactTop {
		if approx[e.Tag] {
			shared++
		}
	}
	if shared < 8 {
		t.Errorf("approximate top-10 shares only %d/10 tags with exact", shared)
	}

	// Count-Min: bounded one-sided error on every true count.
	for tag, want := range truth {
		got := cm.Count(tag)
		if got < want {
			t.Fatalf("Count-Min underestimated %s: %d < %d", tag, got, want)
		}
		if got > want+uint64(0.005*float64(n))+1 {
			t.Errorf("Count-Min overestimate on %s: %d vs %d", tag, got, want)
		}
	}
}
