package entity

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestOntologyIsA(t *testing.T) {
	o := NewOntology()
	o.AddType("entity", "")
	o.AddType("person", "entity")
	o.AddType("politician", "person")
	tests := []struct {
		typ, anc string
		want     bool
	}{
		{"politician", "person", true},
		{"politician", "entity", true},
		{"politician", "politician", true},
		{"person", "politician", false},
		{"unknown", "entity", false},
		{"politician", "", false},
		{"Politician", "PERSON", true}, // case-insensitive
	}
	for _, tc := range tests {
		if got := o.IsA(tc.typ, tc.anc); got != tc.want {
			t.Errorf("IsA(%q,%q) = %v, want %v", tc.typ, tc.anc, got, tc.want)
		}
	}
	if !o.Known("person") || o.Known("nope") {
		t.Error("Known wrong")
	}
}

func TestGazetteerAddLookup(t *testing.T) {
	g := NewGazetteer()
	if err := g.Add("Barack Obama", "politician"); err != nil {
		t.Fatal(err)
	}
	if err := g.AddRedirect("Obama", "Barack Obama"); err != nil {
		t.Fatal(err)
	}
	e, ok := g.Lookup("barack   OBAMA")
	if !ok || e.Name != "barack obama" {
		t.Errorf("Lookup canonical = %+v, %v", e, ok)
	}
	e, ok = g.Lookup("Obama")
	if !ok || e.Name != "barack obama" {
		t.Errorf("Lookup redirect = %+v, %v", e, ok)
	}
	if _, ok := g.Lookup("nobody"); ok {
		t.Error("Lookup(nobody) should fail")
	}
	if g.Len() != 1 || g.Redirects() != 1 {
		t.Errorf("Len=%d Redirects=%d, want 1/1", g.Len(), g.Redirects())
	}
}

func TestGazetteerMergeTypes(t *testing.T) {
	g := NewGazetteer()
	g.Add("Iceland", "country")
	g.Add("Iceland", "island", "country")
	e, _ := g.Lookup("iceland")
	if !reflect.DeepEqual(e.Types, []string{"country", "island"}) {
		t.Errorf("merged types = %v", e.Types)
	}
}

func TestGazetteerErrors(t *testing.T) {
	g := NewGazetteer()
	if err := g.Add("..."); err == nil {
		t.Error("Add of token-less title should fail")
	}
	if err := g.AddRedirect("alias", "missing target"); err == nil {
		t.Error("redirect to unknown target should fail")
	}
	if err := g.AddRedirect("", "x"); err == nil {
		t.Error("empty alias should fail")
	}
}

func TestTaggerLongestMatch(t *testing.T) {
	g := NewGazetteer()
	g.Add("New York", "city")
	g.Add("New York City", "city")
	g.Add("York", "city")
	tg := NewTagger(g, nil)
	ms := tg.Tag("I moved to New York City last year")
	if len(ms) != 1 {
		t.Fatalf("got %d mentions: %+v", len(ms), ms)
	}
	if ms[0].Entity != "new york city" || ms[0].Terms != 3 {
		t.Errorf("mention = %+v, want longest match", ms[0])
	}
}

func TestTaggerRedirectCanonicalisation(t *testing.T) {
	g, o := Sample()
	tg := NewTagger(g, o)
	for _, doc := range []string{
		"Obama spoke yesterday",
		"President Obama spoke yesterday",
		"Barack Obama spoke yesterday",
	} {
		ents := tg.Entities(doc)
		if !reflect.DeepEqual(ents, []string{"barack obama"}) {
			t.Errorf("Entities(%q) = %v, want [barack obama]", doc, ents)
		}
	}
}

func TestTaggerOffsets(t *testing.T) {
	g, o := Sample()
	tg := NewTagger(g, o)
	doc := "Flights over Iceland were cancelled."
	ms := tg.Tag(doc)
	if len(ms) != 1 {
		t.Fatalf("mentions = %+v", ms)
	}
	if got := doc[ms[0].Start:ms[0].End]; got != "Iceland" {
		t.Errorf("offsets give %q, want Iceland", got)
	}
}

func TestTaggerTypeFilter(t *testing.T) {
	g, o := Sample()
	tg := NewTagger(g, o)
	doc := "Barack Obama visited Athens in Greece"
	all := tg.Entities(doc)
	if len(all) != 3 {
		t.Fatalf("unfiltered entities = %v", all)
	}
	tg.AllowTypes = []string{"location"}
	locs := tg.Entities(doc)
	if !reflect.DeepEqual(locs, []string{"athens", "greece"}) {
		t.Errorf("location-filtered = %v, want [athens greece]", locs)
	}
	tg.AllowTypes = []string{"person"}
	people := tg.Entities(doc)
	if !reflect.DeepEqual(people, []string{"barack obama"}) {
		t.Errorf("person-filtered = %v, want [barack obama]", people)
	}
	// Filtering without an ontology rejects everything.
	tgNoOnt := NewTagger(g, nil)
	tgNoOnt.AllowTypes = []string{"person"}
	if got := tgNoOnt.Entities(doc); len(got) != 0 {
		t.Errorf("filter without ontology = %v, want none", got)
	}
}

func TestTaggerStopwordSingles(t *testing.T) {
	g := NewGazetteer()
	g.Add("US", "country") // normalizes to stopword "us"
	tg := NewTagger(g, nil)
	if got := tg.Entities("they met us yesterday"); len(got) != 0 {
		t.Errorf("stopword single matched: %v", got)
	}
	tg.MatchStopwordSingles = true
	if got := tg.Entities("they met us yesterday"); len(got) != 1 {
		t.Errorf("MatchStopwordSingles off: %v", got)
	}
}

func TestTaggerNoOverlappingMentions(t *testing.T) {
	g := NewGazetteer()
	g.Add("Gulf of Mexico", "location")
	g.Add("Mexico", "country")
	tg := NewTagger(g, nil)
	ms := tg.Tag("oil reached the Gulf of Mexico coast")
	if len(ms) != 1 || ms[0].Entity != "gulf of mexico" {
		t.Errorf("mentions = %+v, want only gulf of mexico", ms)
	}
}

func TestTaggerWindowLimit(t *testing.T) {
	g := NewGazetteer()
	g.Add("a b c d e") // five terms: beyond the default window
	tg := NewTagger(g, nil)
	if ms := tg.Tag("a b c d e"); len(ms) != 0 {
		t.Errorf("five-term phrase matched with window 4: %+v", ms)
	}
	tg.MaxWindow = 5
	if ms := tg.Tag("a b c d e"); len(ms) != 1 {
		t.Errorf("five-term phrase not matched with window 5")
	}
}

func TestTaggerUnicodeRedirect(t *testing.T) {
	g, o := Sample()
	tg := NewTagger(g, o)
	// ASCII redirect resolves to the canonical diacritic title.
	ents := tg.Entities("the eruption of Eyjafjallajokull disrupted flights")
	if !reflect.DeepEqual(ents, []string{"eyjafjallajökull"}) {
		t.Errorf("Entities = %v", ents)
	}
}

func TestEntitiesDeduplicated(t *testing.T) {
	g, o := Sample()
	tg := NewTagger(g, o)
	ents := tg.Entities("Iceland, Iceland, and again Iceland")
	if !reflect.DeepEqual(ents, []string{"iceland"}) {
		t.Errorf("Entities = %v, want deduplicated [iceland]", ents)
	}
}

func TestSampleIntegrity(t *testing.T) {
	g, o := Sample()
	if g.Len() < 20 {
		t.Errorf("sample gazetteer has %d entities, want >= 20", g.Len())
	}
	if g.Redirects() < 10 {
		t.Errorf("sample has %d redirects, want >= 10", g.Redirects())
	}
	// Every entity type must be known to the ontology and reach "entity".
	for phrase := range map[string]bool{"iceland": true, "sigmod": true, "hurricane katrina": true} {
		e, ok := g.Lookup(phrase)
		if !ok {
			t.Fatalf("sample missing %q", phrase)
		}
		for _, typ := range e.Types {
			if !o.IsA(typ, "entity") {
				t.Errorf("type %q of %q does not reach entity root", typ, phrase)
			}
		}
	}
}

// Property: tagging never produces overlapping or out-of-bounds mentions,
// and every mention's span resolves through the gazetteer to its entity.
func TestTagProperties(t *testing.T) {
	g, o := Sample()
	tg := NewTagger(g, o)
	f := func(words []string) bool {
		doc := strings.Join(words, " ")
		prevEnd := -1
		for _, m := range tg.Tag(doc) {
			if m.Start < prevEnd || m.End > len(doc) || m.Start >= m.End {
				return false
			}
			prevEnd = m.End
			e, ok := g.Lookup(doc[m.Start:m.End])
			if !ok || e.Name != m.Entity {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkTaggerTag(b *testing.B) {
	g, o := Sample()
	tg := NewTagger(g, o)
	doc := strings.Repeat("Barack Obama discussed the BP oil spill in the Gulf of Mexico "+
		"while flights over Iceland and the Eyjafjallajokull volcano resumed. ", 5)
	b.SetBytes(int64(len(doc)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tg.Tag(doc)
	}
}
