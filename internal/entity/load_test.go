package entity

import (
	"strings"
	"testing"
)

func TestLoadGazetteerTSV(t *testing.T) {
	in := `# comment line

Barack Obama	politician,person
Obama	->Barack Obama
President Obama	->  Barack Obama
Iceland	country
Plain Entity
`
	g, err := LoadGazetteerTSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 3 {
		t.Errorf("Len = %d, want 3", g.Len())
	}
	if g.Redirects() != 2 {
		t.Errorf("Redirects = %d, want 2", g.Redirects())
	}
	e, ok := g.Lookup("president obama")
	if !ok || e.Name != "barack obama" {
		t.Errorf("redirect lookup = %+v, %v", e, ok)
	}
	if e.Types[0] != "person" && e.Types[0] != "politician" {
		t.Errorf("types = %v", e.Types)
	}
	if e, ok := g.Lookup("plain entity"); !ok || len(e.Types) != 0 {
		t.Errorf("typeless entity = %+v, %v", e, ok)
	}
}

func TestLoadGazetteerForwardRedirect(t *testing.T) {
	// Redirect appears before its target: second pass resolves it.
	in := "NYC\t->New York City\nNew York City\tcity\n"
	g, err := LoadGazetteerTSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if e, ok := g.Lookup("nyc"); !ok || e.Name != "new york city" {
		t.Errorf("forward redirect = %+v, %v", e, ok)
	}
}

func TestLoadGazetteerErrors(t *testing.T) {
	if _, err := LoadGazetteerTSV(strings.NewReader("...\ttype\n")); err == nil {
		t.Error("token-less title accepted")
	}
	if _, err := LoadGazetteerTSV(strings.NewReader("Alias\t->Missing Target\n")); err == nil {
		t.Error("dangling redirect accepted")
	}
}

func TestLoadOntologyTSV(t *testing.T) {
	in := `# class forest
entity
person	entity
politician	person
`
	o, err := LoadOntologyTSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if !o.IsA("politician", "entity") {
		t.Error("transitive IsA failed after load")
	}
	if !o.Known("entity") {
		t.Error("root type not registered")
	}
}

func TestLoadOntologyErrors(t *testing.T) {
	if _, err := LoadOntologyTSV(strings.NewReader("\tperson\n")); err == nil {
		t.Error("empty type accepted")
	}
}

func TestLoadedGazetteerDrivesTagger(t *testing.T) {
	gz := "Gulf of Mexico\tlocation\nBP\t->British Petroleum\nBritish Petroleum\tcompany\n"
	on := "entity\nlocation\tentity\ncompany\tentity\n"
	g, err := LoadGazetteerTSV(strings.NewReader(gz))
	if err != nil {
		t.Fatal(err)
	}
	o, err := LoadOntologyTSV(strings.NewReader(on))
	if err != nil {
		t.Fatal(err)
	}
	tg := NewTagger(g, o)
	ents := tg.Entities("BP operations in the Gulf of Mexico resumed")
	if len(ents) != 2 || ents[0] != "british petroleum" || ents[1] != "gulf of mexico" {
		t.Errorf("Entities = %v", ents)
	}
}
