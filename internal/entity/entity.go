// Package entity implements the paper's entity-tagging method: "When a
// document arrives, we scan its text content with a sliding window of up to
// 4 successive terms, and check whether substrings of these match the title
// of a Wikipedia article. These checks also consider Wikipedia redirects
// which we use to map different namings of a single entity to one unique
// name. In addition, we have implemented a second filter consisting of
// lookups in an ontology (e.g., YAGO), which allows us to focus on
// particular entity types."
//
// The Wikipedia title/redirect tables and the YAGO ontology are substituted
// by an in-memory Gazetteer and Ontology with the same lookup semantics;
// arbitrary tables can be loaded, and a realistic sample ships for the
// demos (see Sample).
package entity

import (
	"fmt"
	"sort"
	"strings"

	"enblogue/internal/text"
)

// DefaultMaxWindow is the paper's scan window: up to 4 successive terms.
const DefaultMaxWindow = 4

// Ontology is a type hierarchy (subtype → supertype forest) with transitive
// IsA queries — the stand-in for YAGO's class system.
type Ontology struct {
	super map[string]string
}

// NewOntology returns an empty ontology.
func NewOntology() *Ontology {
	return &Ontology{super: make(map[string]string)}
}

// AddType registers typ with the given supertype; an empty supertype makes
// typ a root. Types are normalized to lower case.
func (o *Ontology) AddType(typ, supertype string) {
	typ = text.Normalize(typ)
	supertype = text.Normalize(supertype)
	if typ == "" {
		return
	}
	o.super[typ] = supertype
}

// IsA reports whether typ equals ancestor or is a transitive subtype of it.
func (o *Ontology) IsA(typ, ancestor string) bool {
	typ = text.Normalize(typ)
	ancestor = text.Normalize(ancestor)
	if ancestor == "" {
		return false
	}
	for cur := typ; cur != ""; {
		if cur == ancestor {
			return true
		}
		next, ok := o.super[cur]
		if !ok {
			return false
		}
		cur = next
	}
	return false
}

// Known reports whether the ontology has registered typ.
func (o *Ontology) Known(typ string) bool {
	_, ok := o.super[text.Normalize(typ)]
	return ok
}

// Entity is one canonical gazetteer entry.
type Entity struct {
	// Name is the canonical (normalized) entity name — the "unique name"
	// redirects map to.
	Name string
	// Types are the ontology types assigned to the entity.
	Types []string
}

// Gazetteer maps normalized phrases (up to maxWindow terms) to canonical
// entities, with a redirect table for alternative namings.
type Gazetteer struct {
	entities  map[string]*Entity // canonical name → entity
	phrases   map[string]string  // normalized phrase (incl. canonical) → canonical name
	maxTerms  int
	redirects int
}

// NewGazetteer returns an empty gazetteer.
func NewGazetteer() *Gazetteer {
	return &Gazetteer{
		entities: make(map[string]*Entity),
		phrases:  make(map[string]string),
	}
}

// normPhrase canonicalises a phrase: tokenize and re-join with single
// spaces, so lookup is insensitive to punctuation and case.
func normPhrase(s string) (string, int) {
	terms := text.Terms(s)
	return strings.Join(terms, " "), len(terms)
}

// Add registers a canonical entity title with its ontology types. Phrases
// longer than DefaultMaxWindow terms are still stored but can never be
// matched by a tagger with the default window. Adding the same title again
// merges types.
func (g *Gazetteer) Add(title string, types ...string) error {
	name, n := normPhrase(title)
	if name == "" {
		return fmt.Errorf("entity: empty title %q", title)
	}
	if n > g.maxTerms {
		g.maxTerms = n
	}
	e, ok := g.entities[name]
	if !ok {
		e = &Entity{Name: name}
		g.entities[name] = e
		g.phrases[name] = name
	}
	for _, t := range types {
		t = text.Normalize(t)
		if t == "" {
			continue
		}
		found := false
		for _, have := range e.Types {
			if have == t {
				found = true
				break
			}
		}
		if !found {
			e.Types = append(e.Types, t)
		}
	}
	sort.Strings(e.Types)
	return nil
}

// AddRedirect maps an alternative naming to a canonical title. The canonical
// entity must already exist.
func (g *Gazetteer) AddRedirect(alias, title string) error {
	from, n := normPhrase(alias)
	to, _ := normPhrase(title)
	if from == "" {
		return fmt.Errorf("entity: empty alias %q", alias)
	}
	if _, ok := g.entities[to]; !ok {
		return fmt.Errorf("entity: redirect target %q not in gazetteer", title)
	}
	if n > g.maxTerms {
		g.maxTerms = n
	}
	g.phrases[from] = to
	g.redirects++
	return nil
}

// Lookup resolves a phrase (following redirects) to its canonical entity.
func (g *Gazetteer) Lookup(phrase string) (*Entity, bool) {
	name, _ := normPhrase(phrase)
	canon, ok := g.phrases[name]
	if !ok {
		return nil, false
	}
	return g.entities[canon], true
}

// lookupNormalized resolves an already-normalized phrase without re-parsing.
func (g *Gazetteer) lookupNormalized(phrase string) (*Entity, bool) {
	canon, ok := g.phrases[phrase]
	if !ok {
		return nil, false
	}
	return g.entities[canon], true
}

// Len returns the number of canonical entities.
func (g *Gazetteer) Len() int { return len(g.entities) }

// Redirects returns the number of registered redirects.
func (g *Gazetteer) Redirects() int { return g.redirects }

// MaxTerms returns the longest registered phrase length in terms.
func (g *Gazetteer) MaxTerms() int { return g.maxTerms }

// Mention is one entity occurrence found in a document.
type Mention struct {
	// Entity is the canonical entity name.
	Entity string
	// Types are the entity's ontology types.
	Types []string
	// Start and End are byte offsets of the matched span in the input.
	Start, End int
	// Terms is the number of terms the match spans.
	Terms int
}

// Tagger scans text for gazetteer entities with a sliding term window of up
// to MaxWindow successive terms, preferring the longest match at each
// position, and optionally filters mentions to ontology types.
type Tagger struct {
	gaz *Gazetteer
	ont *Ontology
	// MaxWindow is the scan window in terms; 0 means DefaultMaxWindow.
	MaxWindow int
	// AllowTypes restricts mentions to entities having at least one type
	// that IsA one of these; empty means no filtering. Requires ont.
	AllowTypes []string
	// MatchStopwordSingles permits single-term matches that are stopwords
	// ("us", "it"); off by default because such matches are almost always
	// false positives.
	MatchStopwordSingles bool
}

// NewTagger returns a tagger over the given gazetteer and optional ontology
// (required only when AllowTypes is used).
func NewTagger(g *Gazetteer, o *Ontology) *Tagger {
	return &Tagger{gaz: g, ont: o}
}

// typeAllowed applies the ontology filter to an entity's types.
func (t *Tagger) typeAllowed(types []string) bool {
	if len(t.AllowTypes) == 0 {
		return true
	}
	if t.ont == nil {
		return false
	}
	for _, et := range types {
		for _, want := range t.AllowTypes {
			if t.ont.IsA(et, want) {
				return true
			}
		}
	}
	return false
}

// Tag returns the entity mentions of doc, left to right. At each token
// position the longest gazetteer match within the window wins and the scan
// resumes after it (no overlapping mentions).
func (t *Tagger) Tag(doc string) []Mention {
	toks := text.Tokenize(doc)
	maxW := t.MaxWindow
	if maxW <= 0 {
		maxW = DefaultMaxWindow
	}
	if gm := t.gaz.MaxTerms(); gm > 0 && gm < maxW {
		maxW = gm
	}
	var out []Mention
	var sb strings.Builder
	for i := 0; i < len(toks); {
		matched := false
		// Longest match first.
		limit := maxW
		if rest := len(toks) - i; rest < limit {
			limit = rest
		}
		for n := limit; n >= 1; n-- {
			sb.Reset()
			for j := 0; j < n; j++ {
				if j > 0 {
					sb.WriteByte(' ')
				}
				sb.WriteString(toks[i+j].Term)
			}
			phrase := sb.String()
			e, ok := t.gaz.lookupNormalized(phrase)
			if !ok {
				continue
			}
			if n == 1 && !t.MatchStopwordSingles && text.IsStopword(toks[i].Term) {
				continue
			}
			if !t.typeAllowed(e.Types) {
				continue
			}
			out = append(out, Mention{
				Entity: e.Name,
				Types:  e.Types,
				Start:  toks[i].Start,
				End:    toks[i+n-1].End,
				Terms:  n,
			})
			i += n
			matched = true
			break
		}
		if !matched {
			i++
		}
	}
	return out
}

// Entities returns the distinct canonical entity names mentioned in doc, in
// first-mention order — the entity tag set added to stream items.
func (t *Tagger) Entities(doc string) []string {
	var out []string
	seen := make(map[string]bool)
	for _, m := range t.Tag(doc) {
		if !seen[m.Entity] {
			seen[m.Entity] = true
			out = append(out, m.Entity)
		}
	}
	return out
}
