package entity

// Sample returns a gazetteer and ontology populated with a realistic sample
// of Wikipedia-style titles, redirects, and YAGO-style types. It backs the
// runnable examples and the entity-tagging experiment; production use loads
// real tables through the same Add/AddRedirect/AddType API.
func Sample() (*Gazetteer, *Ontology) {
	o := NewOntology()
	// A small YAGO-like class forest.
	for _, t := range [][2]string{
		{"entity", ""},
		{"person", "entity"},
		{"politician", "person"},
		{"artist", "person"},
		{"athlete", "person"},
		{"organization", "entity"},
		{"company", "organization"},
		{"political party", "organization"},
		{"location", "entity"},
		{"country", "location"},
		{"city", "location"},
		{"volcano", "location"},
		{"event", "entity"},
		{"disaster", "event"},
		{"sports event", "event"},
		{"conference", "event"},
	} {
		o.AddType(t[0], t[1])
	}

	g := NewGazetteer()
	add := func(title string, types ...string) {
		if err := g.Add(title, types...); err != nil {
			panic(err) // sample data is static; failure is a bug
		}
	}
	redirect := func(alias, title string) {
		if err := g.AddRedirect(alias, title); err != nil {
			panic(err)
		}
	}

	// People.
	add("Barack Obama", "politician")
	redirect("Obama", "Barack Obama")
	redirect("President Obama", "Barack Obama")
	add("Angela Merkel", "politician")
	redirect("Merkel", "Angela Merkel")
	add("Lady Gaga", "artist")
	add("Roger Federer", "athlete")
	redirect("Federer", "Roger Federer")

	// Organizations.
	add("United Nations", "organization")
	redirect("UN", "United Nations")
	add("Democratic Party", "political party")
	add("Republican Party", "political party")
	add("British Petroleum", "company")
	redirect("BP", "British Petroleum")

	// Locations.
	add("Iceland", "country")
	add("Greece", "country")
	add("United States", "country")
	redirect("USA", "United States")
	redirect("United States of America", "United States")
	add("Athens", "city")
	add("New York City", "city")
	redirect("New York", "New York City")
	redirect("NYC", "New York City")
	add("New Orleans", "city")
	add("Gulf of Mexico", "location")
	add("Eyjafjallajökull", "volcano")
	redirect("Eyjafjallajokull", "Eyjafjallajökull")
	redirect("the Icelandic volcano", "Eyjafjallajökull")

	// Events.
	add("Hurricane Katrina", "disaster")
	redirect("Katrina", "Hurricane Katrina")
	add("Deepwater Horizon oil spill", "disaster")
	redirect("BP oil spill", "Deepwater Horizon oil spill")
	add("World Cup", "sports event")
	redirect("FIFA World Cup", "World Cup")
	add("Super Bowl", "sports event")
	add("SIGMOD", "conference")

	return g, o
}
