package entity

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// LoadGazetteerTSV reads gazetteer entries from a tab-separated stream, one
// record per line:
//
//	title<TAB>type1,type2,...        canonical entity with its types
//	alias<TAB>->title                redirect to a canonical title
//
// Blank lines and lines starting with '#' are skipped. Redirects may appear
// before their targets: they are resolved in a second pass. This is the
// production path for real Wikipedia title/redirect dumps; entity.Sample
// provides built-in data for demos.
func LoadGazetteerTSV(r io.Reader) (*Gazetteer, error) {
	g := NewGazetteer()
	type redirect struct {
		alias, title string
		line         int
	}
	var redirects []redirect

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		raw := strings.TrimSpace(sc.Text())
		if raw == "" || strings.HasPrefix(raw, "#") {
			continue
		}
		parts := strings.SplitN(raw, "\t", 2)
		title := strings.TrimSpace(parts[0])
		rest := ""
		if len(parts) == 2 {
			rest = strings.TrimSpace(parts[1])
		}
		if strings.HasPrefix(rest, "->") {
			redirects = append(redirects, redirect{
				alias: title,
				title: strings.TrimSpace(strings.TrimPrefix(rest, "->")),
				line:  line,
			})
			continue
		}
		var types []string
		if rest != "" {
			for _, t := range strings.Split(rest, ",") {
				if t = strings.TrimSpace(t); t != "" {
					types = append(types, t)
				}
			}
		}
		if err := g.Add(title, types...); err != nil {
			return nil, fmt.Errorf("entity: line %d: %w", line, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("entity: reading gazetteer: %w", err)
	}
	for _, rd := range redirects {
		if err := g.AddRedirect(rd.alias, rd.title); err != nil {
			return nil, fmt.Errorf("entity: line %d: %w", rd.line, err)
		}
	}
	return g, nil
}

// LoadOntologyTSV reads subtype<TAB>supertype lines into an ontology. An
// empty or missing supertype declares a root type. Blank lines and '#'
// comments are skipped.
func LoadOntologyTSV(r io.Reader) (*Ontology, error) {
	o := NewOntology()
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Text()
		if trimmed := strings.TrimSpace(raw); trimmed == "" || strings.HasPrefix(trimmed, "#") {
			continue
		}
		// Split before trimming so a tab-led line surfaces its empty type
		// instead of silently shifting fields.
		parts := strings.SplitN(raw, "\t", 2)
		typ := strings.TrimSpace(parts[0])
		super := ""
		if len(parts) == 2 {
			super = strings.TrimSpace(parts[1])
		}
		if typ == "" {
			return nil, fmt.Errorf("entity: line %d: empty type", line)
		}
		o.AddType(typ, super)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("entity: reading ontology: %w", err)
	}
	return o, nil
}
