package entity_test

import (
	"fmt"

	"enblogue/internal/entity"
)

func ExampleTagger() {
	g, o := entity.Sample()
	tagger := entity.NewTagger(g, o)

	// Redirects map different namings to one unique entity name.
	doc := "President Obama discussed the BP oil spill near the Gulf of Mexico"
	fmt.Println(tagger.Entities(doc))

	// The ontology filter focuses on particular entity types.
	tagger.AllowTypes = []string{"location"}
	fmt.Println(tagger.Entities(doc))
	// Output:
	// [barack obama deepwater horizon oil spill gulf of mexico]
	// [gulf of mexico]
}

func ExampleGazetteer() {
	g := entity.NewGazetteer()
	g.Add("New York City", "city")
	g.AddRedirect("NYC", "New York City")
	g.AddRedirect("New York", "New York City")

	e, _ := g.Lookup("nyc")
	fmt.Println(e.Name, e.Types)
	// Output:
	// new york city [city]
}
