package text

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestTokenizeBasic(t *testing.T) {
	tests := []struct {
		in   string
		want []string
	}{
		{"Hello World", []string{"hello", "world"}},
		{"  spaces   everywhere  ", []string{"spaces", "everywhere"}},
		{"", nil},
		{"...", nil},
		{"one", []string{"one"}},
		{"O'Brien's car", []string{"o'brien's", "car"}},
		{"Jay-Z and Beyonce", []string{"jay-z", "and", "beyonce"}},
		{"trailing- hyphen", []string{"trailing", "hyphen"}},
		{"apostrophe' end", []string{"apostrophe", "end"}},
		{"numbers 123 mix3d", []string{"numbers", "123", "mix3d"}},
		{"punct,separated;terms!", []string{"punct", "separated", "terms"}},
		{"Eyjafjallajökull erupts", []string{"eyjafjallajökull", "erupts"}},
		{"tabs\tand\nnewlines", []string{"tabs", "and", "newlines"}},
	}
	for _, tc := range tests {
		got := Terms(tc.in)
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("Terms(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestTokenizePositionsAndOffsets(t *testing.T) {
	in := "The quick, brown fox."
	toks := Tokenize(in)
	if len(toks) != 4 {
		t.Fatalf("got %d tokens, want 4", len(toks))
	}
	for i, tok := range toks {
		if tok.Pos != i {
			t.Errorf("token %d: Pos = %d, want %d", i, tok.Pos, i)
		}
		if in[tok.Start:tok.End] != tok.Raw {
			t.Errorf("token %d: offsets [%d,%d) give %q, want raw %q",
				i, tok.Start, tok.End, in[tok.Start:tok.End], tok.Raw)
		}
		if strings.ToLower(tok.Raw) != tok.Term {
			t.Errorf("token %d: Term %q is not lowercase of Raw %q", i, tok.Term, tok.Raw)
		}
	}
	if toks[1].Raw != "quick" || toks[3].Raw != "fox" {
		t.Errorf("unexpected raw tokens: %+v", toks)
	}
}

func TestNormalize(t *testing.T) {
	tests := []struct{ in, want string }{
		{"Hello", "hello"},
		{"  MiXeD  ", "mixed"},
		{"", ""},
		{"ALL", "all"},
	}
	for _, tc := range tests {
		if got := Normalize(tc.in); got != tc.want {
			t.Errorf("Normalize(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestNormalizeAll(t *testing.T) {
	got := NormalizeAll([]string{" A ", "", "b", "  "})
	want := []string{"a", "b"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("NormalizeAll = %v, want %v", got, want)
	}
}

func TestShingles(t *testing.T) {
	toks := Tokenize("a b c")
	got := Shingles(toks, 2)
	want := []string{"a", "a b", "b", "b c", "c"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Shingles = %v, want %v", got, want)
	}
	if s := Shingles(toks, 0); s != nil {
		t.Errorf("Shingles maxN=0 = %v, want nil", s)
	}
	// maxN larger than token count must not panic and must include the
	// full-length shingle.
	got = Shingles(Tokenize("x y"), 10)
	want = []string{"x", "x y", "y"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Shingles long maxN = %v, want %v", got, want)
	}
}

func TestStopwords(t *testing.T) {
	for _, w := range []string{"the", "The", "AND", "of"} {
		if !IsStopword(w) {
			t.Errorf("IsStopword(%q) = false, want true", w)
		}
	}
	for _, w := range []string{"volcano", "iceland", ""} {
		if IsStopword(w) {
			t.Errorf("IsStopword(%q) = true, want false", w)
		}
	}
}

func TestContentTerms(t *testing.T) {
	got := ContentTerms("The eruption of the volcano in Iceland")
	want := []string{"eruption", "volcano", "iceland"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("ContentTerms = %v, want %v", got, want)
	}
}

// Property: every token's offsets slice back to its raw text, terms are
// lowercase, and positions are strictly increasing.
func TestTokenizeProperties(t *testing.T) {
	f := func(s string) bool {
		toks := Tokenize(s)
		prevPos := -1
		prevEnd := 0
		for _, tok := range toks {
			if tok.Pos != prevPos+1 {
				return false
			}
			prevPos = tok.Pos
			if tok.Start < prevEnd || tok.End <= tok.Start || tok.End > len(s) {
				return false
			}
			prevEnd = tok.End
			if s[tok.Start:tok.End] != tok.Raw {
				return false
			}
			if Normalize(tok.Raw) != tok.Term {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: tokenizing the space-join of produced terms reproduces the terms
// (tokenization is idempotent on its own normalized output) for ASCII inputs.
func TestTokenizeIdempotent(t *testing.T) {
	f := func(s string) bool {
		terms := Terms(s)
		again := Terms(strings.Join(terms, " "))
		return reflect.DeepEqual(terms, again)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
