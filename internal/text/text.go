// Package text provides tokenization and normalization utilities used by the
// entity tagger and the synthetic data generators.
//
// The paper scans document text "with a sliding window of up to 4 successive
// terms"; this package supplies the term stream that window runs over.
package text

import (
	"strings"
	"unicode"
	"unicode/utf8"
)

// Token is a single term extracted from running text. It keeps the position
// (term index) and byte offsets so that taggers can report where an entity
// mention occurred.
type Token struct {
	Term  string // normalized form
	Raw   string // original surface form
	Pos   int    // term index within the document, starting at 0
	Start int    // byte offset of the raw form in the input
	End   int    // byte offset one past the raw form
}

// Tokenize splits s into word tokens. A token is a maximal run of letters
// or digits, possibly joined by the connector characters '\” and '-' when
// they appear inside a word (so "O'Brien" and "Jay-Z" stay single tokens,
// but a trailing apostrophe is trimmed). The normalized term is the
// lower-cased surface form. Invalid UTF-8 bytes are treated as separators.
func Tokenize(s string) []Token {
	var toks []Token
	i := 0
	pos := 0
	for i < len(s) {
		r, size := utf8.DecodeRuneInString(s[i:])
		if !isWordRune(r) {
			i += size
			continue
		}
		start := i
		i += size
		for i < len(s) {
			r, size = utf8.DecodeRuneInString(s[i:])
			if isWordRune(r) {
				i += size
				continue
			}
			if (r == '\'' || r == '-') && nextIsWord(s, i+size) {
				i += size
				continue
			}
			break
		}
		raw := s[start:i]
		toks = append(toks, Token{
			Term:  Normalize(raw),
			Raw:   raw,
			Pos:   pos,
			Start: start,
			End:   i,
		})
		pos++
	}
	return toks
}

// isWordRune reports whether r is part of a word: a letter or digit. The
// RuneError produced by invalid UTF-8 is excluded.
func isWordRune(r rune) bool {
	if r == utf8.RuneError {
		return false
	}
	return unicode.IsLetter(r) || unicode.IsDigit(r)
}

// nextIsWord reports whether the rune starting at byte i is a word rune.
func nextIsWord(s string, i int) bool {
	if i >= len(s) {
		return false
	}
	r, _ := utf8.DecodeRuneInString(s[i:])
	return isWordRune(r)
}

// Normalize lower-cases a term. It is the single normalization used across
// the system so that tags, entities, and text tokens compare consistently.
func Normalize(term string) string {
	return strings.ToLower(strings.TrimSpace(term))
}

// NormalizeAll normalizes every string in ss, dropping empties, and returns a
// new slice.
func NormalizeAll(ss []string) []string {
	out := make([]string, 0, len(ss))
	for _, s := range ss {
		n := Normalize(s)
		if n != "" {
			out = append(out, n)
		}
	}
	return out
}

// Terms returns just the normalized terms of the tokens of s, or nil when s
// contains no tokens. Convenience wrapper used by generators and tests.
func Terms(s string) []string {
	toks := Tokenize(s)
	if len(toks) == 0 {
		return nil
	}
	out := make([]string, len(toks))
	for i, t := range toks {
		out[i] = t.Term
	}
	return out
}

// Shingles returns all n-grams (as space-joined normalized strings) of the
// token sequence, for n in [1, maxN]. Used to probe gazetteer phrases.
func Shingles(toks []Token, maxN int) []string {
	if maxN < 1 {
		return nil
	}
	var out []string
	for i := range toks {
		var b strings.Builder
		for n := 1; n <= maxN && i+n <= len(toks); n++ {
			if n > 1 {
				b.WriteByte(' ')
			}
			b.WriteString(toks[i+n-1].Term)
			out = append(out, b.String())
		}
	}
	return out
}

// defaultStopwords is a compact English stopword list. It covers the function
// words that dominate web text; generators and the tagger use it to avoid
// treating glue words as content terms.
var defaultStopwords = map[string]bool{
	"a": true, "an": true, "and": true, "are": true, "as": true, "at": true,
	"be": true, "but": true, "by": true, "for": true, "from": true,
	"had": true, "has": true, "have": true, "he": true, "her": true,
	"his": true, "i": true, "in": true, "is": true, "it": true, "its": true,
	"not": true, "of": true, "on": true, "or": true, "she": true,
	"that": true, "the": true, "their": true, "they": true, "this": true,
	"to": true, "was": true, "were": true, "will": true, "with": true,
	"you": true, "we": true, "our": true, "been": true, "than": true,
	"then": true, "there": true, "these": true, "those": true, "what": true,
	"when": true, "which": true, "who": true, "would": true, "about": true,
	"after": true, "also": true, "into": true, "over": true, "said": true,
	"some": true, "up": true, "out": true, "no": true, "new": true,
	"more": true, "other": true, "one": true, "two": true, "if": true,
	"do": true, "did": true, "so": true, "can": true, "could": true,
	"all": true, "any": true, "my": true, "your": true, "him": true,
	"them": true, "us": true, "me": true, "how": true, "why": true,
	"because": true, "while": true, "during": true, "before": true,
	"between": true, "under": true, "against": true, "through": true,
}

// IsStopword reports whether the normalized term is a stopword.
func IsStopword(term string) bool {
	return defaultStopwords[Normalize(term)]
}

// ContentTerms tokenizes s and returns its non-stopword terms.
func ContentTerms(s string) []string {
	toks := Tokenize(s)
	out := make([]string, 0, len(toks))
	for _, t := range toks {
		if !IsStopword(t.Term) {
			out = append(out, t.Term)
		}
	}
	return out
}
