package core

import (
	"errors"
	"time"

	"enblogue/internal/pairs"
	"enblogue/internal/shift"
	"enblogue/internal/tagstats"
)

// EngineState is the engine's full serializable state: everything that
// affects future rankings. It aggregates the canonical per-subsystem states
// (tags, pairs, detector, distributions — each sorted and clock-advanced by
// its own exporter), so two engines holding the same logical state export
// identical EngineStates regardless of shard count or internal slot layout.
// Rebuildable caches (tick scratch, ingest queue, broker subscriptions,
// interned-ID assignments) are deliberately excluded; rankings are
// ID-independent, so a restored engine that re-interns tags in a different
// order still ranks bit-identically.
type EngineState struct {
	Docs         int64
	LastSeenNano int64
	NextTickNano int64
	NextTickSet  bool
	LastTickNano int64
	LastTickSet  bool

	Tags  tagstats.TrackerState
	Pairs pairs.ShardedTrackerState
	Dist  *pairs.DistState // non-nil exactly in DistributionMode
	Det   shift.DetectorState

	Seeds []string // current seed set, best first
	Last  Ranking  // most recent published ranking
}

// exportStateLocked gathers the full engine state. Caller holds e.gate
// (write) and e.mu, so no producer is mid-document: docs, tag statistics,
// pair counters, and the WAL position all agree.
//
//enblogue:requires engine
//enblogue:acquires rank
func (e *Engine) exportStateLocked() EngineState {
	st := EngineState{
		Docs:         e.docs.Load(),
		LastSeenNano: e.lastSeenNano.Load(),
		Tags:         e.tags.ExportState(),
		Pairs:        e.pairsTr.ExportState(),
		Det:          e.det.ExportState(),
		Seeds:        append([]string(nil), e.seeds.Seeds()...),
		Last:         e.CurrentRanking(),
	}
	if !e.nextTick.IsZero() {
		st.NextTickNano, st.NextTickSet = e.nextTick.UnixNano(), true
	}
	if !e.lastTick.IsZero() {
		st.LastTickNano, st.LastTickSet = e.lastTick.UnixNano(), true
	}
	if e.dist != nil {
		d := e.dist.ExportState()
		st.Dist = &d
	}
	return st
}

// ExportState returns the engine's full state, quiescing ingest for the
// duration of the in-memory export.
//
//enblogue:acquires persist
//enblogue:acquires engine
func (e *Engine) ExportState() EngineState {
	e.gate.Lock()
	defer e.gate.Unlock()
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.exportStateLocked()
}

// SnapshotState exports the engine's full state and, while ingest is still
// quiesced, invokes rotate with the snapshot epoch (the exported document
// count) — the persistence layer rotates its WAL segment there, so the
// segment boundary aligns exactly with the snapshot: every document after
// the epoch is in the new segment and only there. Encoding and file I/O
// belong outside this call.
//
//enblogue:acquires persist
//enblogue:acquires engine
func (e *Engine) SnapshotState(rotate func(epoch int64) error) (EngineState, error) {
	e.gate.Lock()
	defer e.gate.Unlock()
	e.mu.Lock()
	defer e.mu.Unlock()
	st := e.exportStateLocked()
	if rotate != nil {
		if err := rotate(st.Docs); err != nil {
			return EngineState{}, err
		}
	}
	return st, nil
}

// RestoreState loads st into a freshly built engine that has consumed
// nothing. The engine must have the exporter's semantic configuration
// (window geometry, measure, predictor, ...) — the persistence layer
// enforces this with a config fingerprint — while shard count and ingest
// tuning are free to differ.
//
//enblogue:acquires persist
//enblogue:acquires engine
//enblogue:acquires rank
func (e *Engine) RestoreState(st EngineState) error {
	e.gate.Lock()
	defer e.gate.Unlock()
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.docs.Load() != 0 || e.lastSeenNano.Load() != 0 || !e.nextTick.IsZero() {
		return errors.New("core: restore into an engine that has consumed documents")
	}
	if (st.Dist != nil) != (e.dist != nil) {
		return errors.New("core: distribution-mode mismatch between snapshot and engine")
	}
	if err := e.tags.RestoreState(st.Tags); err != nil {
		return err
	}
	if err := e.pairsTr.RestoreState(st.Pairs); err != nil {
		return err
	}
	if st.Dist != nil {
		if err := e.dist.RestoreState(*st.Dist); err != nil {
			return err
		}
	}
	if err := e.det.RestoreState(st.Det); err != nil {
		return err
	}
	if len(st.Seeds) > 0 {
		// SeedSelector state is just the ordered tag set; ReselectFrom reads
		// only the Tag field.
		stats := make([]tagstats.TagStat, len(st.Seeds))
		for i, s := range st.Seeds {
			stats[i] = tagstats.TagStat{Tag: s}
		}
		e.seeds.ReselectFrom(stats)
	}
	e.docs.Store(st.Docs)
	e.lastSeenNano.Store(st.LastSeenNano)
	if st.NextTickSet {
		e.nextTick = time.Unix(0, st.NextTickNano).UTC()
	}
	if st.LastTickSet {
		e.lastTick = time.Unix(0, st.LastTickNano).UTC()
	}
	r := st.Last.Clone()
	e.rankMu.Lock()
	e.last = r
	e.rankMu.Unlock()
	return nil
}
