package core

import (
	"reflect"
	"testing"
	"time"

	"enblogue/internal/pairs"
	"enblogue/internal/source"
	"enblogue/internal/stream"
)

func TestExpandTopic(t *testing.T) {
	e := New(testConfig())
	// Documents where "iceland" and "volcano" co-occur, usually together
	// with "ash-cloud", sometimes with "travel"; "tennis" is unrelated.
	id := 0
	emit := func(min int, tags ...string) {
		id++
		e.Consume(&stream.Item{
			Time:  t0.Add(time.Duration(min) * time.Minute),
			DocID: ids("x", &id),
			Tags:  tags,
		})
	}
	for i := 0; i < 30; i++ {
		emit(i*2, "iceland", "volcano", "ash-cloud")
		if i%3 == 0 {
			emit(i*2+1, "iceland", "volcano", "travel")
		}
		emit(i*2+1, "tennis", "final")
	}
	k := pairs.MakeKey("iceland", "volcano")
	set := e.ExpandTopic(k, 2)
	want := []string{"iceland", "volcano", "ash-cloud", "travel"}
	if !reflect.DeepEqual(set, want) {
		t.Errorf("ExpandTopic = %v, want %v", set, want)
	}
	// maxExtra truncates by strength.
	set = e.ExpandTopic(k, 1)
	if !reflect.DeepEqual(set, []string{"iceland", "volcano", "ash-cloud"}) {
		t.Errorf("ExpandTopic(1) = %v", set)
	}
	// Zero extras returns just the pair.
	if got := e.ExpandTopic(k, 0); !reflect.DeepEqual(got, []string{"iceland", "volcano"}) {
		t.Errorf("ExpandTopic(0) = %v", got)
	}
	// Unrelated tags never join the set.
	for _, tag := range e.ExpandTopic(k, 10) {
		if tag == "tennis" || tag == "final" {
			t.Errorf("unrelated tag %q joined the topic set", tag)
		}
	}
}

func TestKeywordQuery(t *testing.T) {
	tests := []struct {
		in   []string
		want string
	}{
		{[]string{"iceland", "volcano"}, "iceland volcano"},
		{[]string{"barack obama", "election"}, `"barack obama" election`},
		{[]string{"a", "", "b"}, "a b"},
		{nil, ""},
	}
	for _, tc := range tests {
		if got := KeywordQuery(tc.in); got != tc.want {
			t.Errorf("KeywordQuery(%v) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestDistributionModeDetectsShift(t *testing.T) {
	cfg := testConfig()
	cfg.DistributionMode = true
	cfg.UpOnly = false // distribution similarity shifts downward on change
	e := New(cfg)

	docs := background(t0, 10, 30)
	// Event: "scandal" bursts into "politics" documents, instantly sharing
	// politics' co-tag company ("news") — a jump in usage-distribution
	// similarity from an implicit zero history.
	id := 0
	for h := 6; h < 9; h++ {
		for i := 0; i < 12; i++ {
			docs = append(docs, source.Document{
				Time: t0.Add(time.Duration(h)*time.Hour + time.Duration(i*4)*time.Minute),
				ID:   ids("d", &id),
				Tags: []string{"news", "politics", "scandal"},
			})
		}
	}
	source.SortDocs(docs)
	feedDocs(e, docs)

	r := e.CurrentRanking()
	if len(r.Topics) == 0 {
		t.Fatal("distribution mode produced no topics")
	}
	found := false
	for _, topic := range r.Topics {
		if topic.Pair == pairs.MakeKey("politics", "scandal") {
			found = true
			if topic.Correlation < 0 || topic.Correlation > 1 {
				t.Errorf("distribution correlation out of range: %v", topic.Correlation)
			}
		}
	}
	if !found {
		t.Errorf("event pair missing from distribution-mode ranking: %+v", r.Topics)
	}
}

func TestDistributionModeStableUsageScoresLow(t *testing.T) {
	cfg := testConfig()
	cfg.DistributionMode = true
	e := New(cfg)
	feedDocs(e, background(t0, 12, 30))
	for _, topic := range e.CurrentRanking().Topics {
		if topic.Score > 0.5 {
			t.Errorf("stable distribution pair %v scored %v", topic.Pair, topic.Score)
		}
	}
}
