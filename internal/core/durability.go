package core

import (
	"errors"
	"time"

	"enblogue/internal/stream"
)

// FsyncMode selects how aggressively the write-ahead log is flushed to
// stable storage.
type FsyncMode int

const (
	// FsyncInterval syncs the WAL at most once per configured interval
	// (default one second). Process crashes lose nothing — completed writes
	// survive in the OS page cache — and a power loss loses at most one
	// interval of documents. The default.
	FsyncInterval FsyncMode = iota
	// FsyncAlways syncs after every appended record: no document
	// acknowledged into the engine is lost even to power failure, at the
	// cost of one fsync per document.
	FsyncAlways
	// FsyncNever never syncs explicitly, leaving flushing entirely to the
	// OS. Process crashes still lose nothing; power loss may lose any
	// unflushed tail.
	FsyncNever
)

// DurabilityConfig enables and tunes the persistence layer. The zero Dir
// disables durability entirely. All fields are scalars, keeping Config
// comparable.
type DurabilityConfig struct {
	// Dir is the data directory for snapshots and WAL segments. Empty
	// disables durability.
	Dir string
	// SnapshotEvery is the background snapshot period (wall clock). Zero
	// means one minute; negative disables the ticker (snapshots then happen
	// only via Engine.Snapshot).
	SnapshotEvery time.Duration
	// Fsync selects the WAL flush policy.
	Fsync FsyncMode
	// FsyncEvery is the FsyncInterval period. Zero means one second.
	FsyncEvery time.Duration
	// KeepSnapshots is how many snapshot generations to retain (older ones
	// and their WAL segments are pruned after a successful snapshot). Zero
	// means 2.
	KeepSnapshots int
}

// DurabilityStats is a point-in-time view of the persistence layer, surfaced
// through /v1 stats.
type DurabilityStats struct {
	// SnapshotEpoch is the document count at the newest durable snapshot (0
	// before the first).
	SnapshotEpoch int64
	// WALSegments and WALBytes size the live write-ahead log.
	WALSegments int
	WALBytes    int64
	// LastSnapshotAt is the wall-clock completion time of the newest
	// snapshot (zero before the first).
	LastSnapshotAt time.Time
	// LastErr is the most recent background persistence error ("" when
	// healthy): WAL append or snapshot failures degrade durability but never
	// stop the engine.
	LastErr string
}

// WALRecorder receives every ingested document, in consumption order, under
// the engine bookkeeping lock. seq is the document's 1-based position in the
// stream (DocsProcessed after counting it); implementations must be cheap
// and must not call back into the engine.
type WALRecorder interface {
	RecordDoc(seq int64, it *stream.Item)
}

// Durability is the engine's handle on its persistence layer.
type Durability interface {
	// Snapshot forces a snapshot now.
	Snapshot() error
	// Stats reports the current persistence state.
	Stats() DurabilityStats
	// Close stops background work and syncs the WAL. Idempotent.
	Close() error
}

// durabilityHook is installed by the enblogue package (which owns the
// internal/persist wiring) and invoked at the end of New for engines
// configured with a durability directory: it recovers prior state into the
// fresh engine and attaches the WAL recorder. core cannot import persist
// directly — persist sits above core — so the dependency is inverted
// through this hook.
var durabilityHook func(*Engine) (WALRecorder, Durability, error)

// SetDurabilityHook installs the persistence constructor invoked by New.
// Call once, from package init, before any engine is built.
func SetDurabilityHook(fn func(*Engine) (WALRecorder, Durability, error)) {
	durabilityHook = fn
}

// attachDurability runs the durability hook for a newly built engine. Any
// error is deferred: the engine starts fresh and surfaces the failure
// through DurabilityStats.LastErr if the hook returned a Durability handle,
// or through a panic when recovery could not even degrade gracefully.
func (e *Engine) attachDurability() {
	if e.cfg.Durability.Dir == "" || durabilityHook == nil {
		return
	}
	w, d, err := durabilityHook(e)
	if err != nil {
		// The hook contract is graceful degradation: unreadable prior state
		// comes back as (recorder, durability, nil) with LastErr set. An
		// error here means the data directory itself is unusable (cannot
		// create, cannot open a WAL segment) — misconfiguration worth
		// failing loudly over rather than silently running non-durable.
		panic("core: durability setup failed: " + err.Error())
	}
	e.wal = w
	e.dur = d
}

// ErrNoDurability is returned by Snapshot on engines built without a
// durability directory.
var ErrNoDurability = errors.New("core: durability not enabled")

// Snapshot forces a durable snapshot of the current engine state. It blocks
// ingest only for the in-memory state export; encoding and file I/O happen
// outside all engine locks.
func (e *Engine) Snapshot() error {
	if e.dur == nil {
		return ErrNoDurability
	}
	return e.dur.Snapshot()
}

// DurabilityStats reports the persistence layer's state; ok is false when
// durability is not enabled.
func (e *Engine) DurabilityStats() (st DurabilityStats, ok bool) {
	if e.dur == nil {
		return DurabilityStats{}, false
	}
	return e.dur.Stats(), true
}
