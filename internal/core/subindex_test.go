package core

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"enblogue/internal/pairs"
	"enblogue/internal/persona"
	"enblogue/internal/shift"
)

// mkTopic builds a scored topic; MakeKey interns the tags, exactly as
// ingest would have.
func mkTopic(a, b string, score float64) shift.Topic {
	return shift.Topic{Pair: pairs.MakeKey(a, b), Score: score}
}

func mkRanking(at time.Time, topics ...shift.Topic) Ranking {
	return Ranking{At: at, Seeds: []string{"seed"}, Topics: topics}
}

// drain empties the subscription's buffered notifications without
// blocking (the channel must still be open).
func drainNotifs(sub *Subscription) []*Notification {
	var out []*Notification
	for {
		select {
		case n := <-sub.Notifications():
			out = append(out, n)
		default:
			return out
		}
	}
}

// pairStrings renders a notification's topic pairs.
func pairStrings(n *Notification) []string {
	var out []string
	for _, t := range n.Topics() {
		out = append(out, t.Pair.String())
	}
	return out
}

// A tagged subscription is delta-driven: it sees its initial filtered
// view, is skipped while its view is unchanged (even across ticks that
// move other tags), and fires again when its tag's score moves, when its
// topic leaves, and when it re-enters.
func TestSubTagsDeltaDrivenDelivery(t *testing.T) {
	e := New(testConfig())
	defer e.Close()
	sub := e.Subscribe(context.Background(), SubTags("alpha"), SubBuffer(64))
	other := e.Subscribe(context.Background(), SubTags("carol"), SubBuffer(64))

	at := t0
	tick := func(topics ...shift.Topic) {
		at = at.Add(time.Hour)
		e.PublishRanking(mkRanking(at, topics...))
	}

	// Tick 1: alpha present — initial view delivered.
	tick(mkTopic("alpha", "beta", 1.0), mkTopic("carol", "dave", 0.5))
	got := drainNotifs(sub)
	if len(got) != 1 {
		t.Fatalf("initial view: %d notifications, want 1", len(got))
	}
	if ps := pairStrings(got[0]); len(ps) != 1 || ps[0] != pairs.MakeKey("alpha", "beta").String() {
		t.Fatalf("initial view topics = %v", ps)
	}
	if en := got[0].Entered(); len(en) != 1 {
		t.Fatalf("initial view entered = %v, want the alpha pair", en)
	}

	// Tick 2: identical ranking — nothing moved, nobody notified.
	tick(mkTopic("alpha", "beta", 1.0), mkTopic("carol", "dave", 0.5))
	if got := drainNotifs(sub); len(got) != 0 {
		t.Fatalf("unchanged tick delivered %d notifications", len(got))
	}
	if n := e.MatchedLastTick(); n != 0 {
		t.Fatalf("MatchedLastTick = %d after unchanged tick, want 0", n)
	}

	// Tick 3: only carol's score moves — alpha's subscriber stays cold.
	tick(mkTopic("alpha", "beta", 1.0), mkTopic("carol", "dave", 0.9))
	if got := drainNotifs(sub); len(got) != 0 {
		t.Fatalf("unrelated movement delivered %d notifications to alpha", len(got))
	}
	if got := drainNotifs(other); len(got) != 2 {
		t.Fatalf("carol subscriber saw %d notifications, want 2 (initial + move)", len(got))
	}

	// Tick 4: alpha's score moves — delivered, no entered/left churn.
	tick(mkTopic("alpha", "beta", 1.5), mkTopic("carol", "dave", 0.9))
	got = drainNotifs(sub)
	if len(got) != 1 {
		t.Fatalf("score move: %d notifications, want 1", len(got))
	}
	if en, lf := got[0].Entered(), got[0].Left(); len(en) != 0 || len(lf) != 0 {
		t.Fatalf("score move: entered=%v left=%v, want empty", en, lf)
	}

	// Tick 5: alpha drops out — delivered with an empty view and a left set.
	tick(mkTopic("carol", "dave", 0.9))
	got = drainNotifs(sub)
	if len(got) != 1 {
		t.Fatalf("departure: %d notifications, want 1", len(got))
	}
	if len(got[0].Topics()) != 0 {
		t.Fatalf("departure view still has topics: %v", pairStrings(got[0]))
	}
	if lf := got[0].Left(); len(lf) != 1 || lf[0] != pairs.MakeKey("alpha", "beta") {
		t.Fatalf("departure left = %v", lf)
	}

	// Tick 6: alpha re-enters under a different partner.
	tick(mkTopic("alpha", "erin", 2.0), mkTopic("carol", "dave", 0.9))
	got = drainNotifs(sub)
	if len(got) != 1 {
		t.Fatalf("re-entry: %d notifications, want 1", len(got))
	}
	if en := got[0].Entered(); len(en) != 1 || en[0] != pairs.MakeKey("alpha", "erin") {
		t.Fatalf("re-entry entered = %v", en)
	}
}

// A subscriber to an already-stable tag must still receive its initial
// view on the first tick after subscribing, even though nothing moved.
func TestFreshSubscriberForcedInitialEvaluation(t *testing.T) {
	e := New(testConfig())
	defer e.Close()
	anchor := e.Subscribe(context.Background(), SubBuffer(64))

	r := mkRanking(t0, mkTopic("stable", "pair", 1.0))
	e.PublishRanking(r)
	late := e.Subscribe(context.Background(), SubTags("stable"), SubBuffer(64))
	r2 := mkRanking(t0.Add(time.Hour), mkTopic("stable", "pair", 1.0))
	e.PublishRanking(r2)

	got := drainNotifs(late)
	if len(got) != 1 {
		t.Fatalf("late subscriber got %d notifications, want exactly its initial view", len(got))
	}
	if !got[0].At().Equal(r2.At) {
		t.Fatalf("initial view at %v, want the first post-subscribe tick %v", got[0].At(), r2.At)
	}
	if len(drainNotifs(anchor)) != 2 {
		t.Fatal("full subscriber should see every tick")
	}
}

// All-of, min-score, and emergence-only predicates.
func TestPredicateVariants(t *testing.T) {
	e := New(testConfig())
	defer e.Close()
	both := e.Subscribe(context.Background(), SubAllTags("x", "y"), SubBuffer(64))
	floor := e.Subscribe(context.Background(), SubMinScore(1.0), SubBuffer(64))
	emerge := e.Subscribe(context.Background(), SubTags("x"), SubEmergenceOnly(), SubBuffer(64))

	at := t0
	tick := func(topics ...shift.Topic) {
		at = at.Add(time.Hour)
		e.PublishRanking(mkRanking(at, topics...))
	}

	tick(mkTopic("x", "z", 2.0), mkTopic("x", "y", 0.5))
	if got := drainNotifs(both); len(got) != 1 || len(got[0].Topics()) != 1 ||
		got[0].Topics()[0].Pair != pairs.MakeKey("x", "y") {
		t.Fatalf("all-of view wrong: %d notifications", len(got))
	}
	if got := drainNotifs(floor); len(got) != 1 || len(got[0].Topics()) != 1 ||
		got[0].Topics()[0].Pair != pairs.MakeKey("x", "z") {
		t.Fatalf("min-score view wrong")
	}
	// Emergence: both x-topics entered.
	if got := drainNotifs(emerge); len(got) != 1 || len(got[0].Topics()) != 2 {
		t.Fatalf("emergence initial view wrong")
	}

	// Scores move but nothing new enters: emergence-only stays silent,
	// min-score (wildcard) fires on the changed view.
	tick(mkTopic("x", "z", 2.5), mkTopic("x", "y", 0.5))
	if got := drainNotifs(emerge); len(got) != 0 {
		t.Fatalf("emergence-only fired on a score-only change (%d)", len(got))
	}
	if got := drainNotifs(floor); len(got) != 1 {
		t.Fatalf("min-score subscriber missed a score change above the floor")
	}

	// A new x-topic enters: emergence delivers only the entrant.
	tick(mkTopic("x", "z", 2.5), mkTopic("x", "y", 0.5), mkTopic("x", "w", 3.0))
	got := drainNotifs(emerge)
	if len(got) != 1 || len(got[0].Topics()) != 1 ||
		got[0].Topics()[0].Pair != pairs.MakeKey("w", "x") {
		t.Fatalf("emergence payload should carry only the entrant")
	}
}

// Subscribing to a tag the stream has not interned yet parks the predicate;
// it resolves and starts matching as soon as the tag first appears.
func TestPendingTagResolution(t *testing.T) {
	e := New(testConfig())
	defer e.Close()
	// A tag name nobody else uses, guaranteed un-interned at subscribe time.
	tag := fmt.Sprintf("pending-tag-%d", time.Now().UnixNano())
	sub := e.Subscribe(context.Background(), SubTags(tag), SubBuffer(64))

	e.PublishRanking(mkRanking(t0, mkTopic("noise", "pair", 1.0)))
	if got := drainNotifs(sub); len(got) != 0 {
		t.Fatalf("pending predicate matched %d notifications before its tag existed", len(got))
	}
	if n := e.IndexedTags(); n != 0 {
		t.Fatalf("IndexedTags = %d while the only predicate is pending", n)
	}

	// The tag appears (MakeKey interns it, as ingest would).
	e.PublishRanking(mkRanking(t0.Add(time.Hour), mkTopic(tag, "pair", 2.0), mkTopic("noise", "pair", 1.0)))
	got := drainNotifs(sub)
	if len(got) != 1 || len(got[0].Topics()) != 1 {
		t.Fatalf("resolved predicate delivered %d notifications", len(got))
	}
	if got[0].Topics()[0].Pair != pairs.MakeKey(tag, "pair") {
		t.Fatalf("resolved predicate matched the wrong topic")
	}
	if n := e.IndexedTags(); n != 1 {
		t.Fatalf("IndexedTags = %d after resolution, want 1", n)
	}
}

// IndexedTags counts distinct subscribed tags; MatchedLastTick counts
// notifications actually built; both fall back to zero as subs close.
func TestSubscriptionIndexStats(t *testing.T) {
	e := New(testConfig())
	defer e.Close()
	s1 := e.Subscribe(context.Background(), SubTags("a", "b"), SubBuffer(8))
	s2 := e.Subscribe(context.Background(), SubTags("b", "c"), SubBuffer(8))
	full := e.Subscribe(context.Background(), SubBuffer(8))
	_ = full

	// MakeKey interns a, b, c via the rankings below; intern them now so
	// IndexedTags counts resolved postings.
	e.PublishRanking(mkRanking(t0, mkTopic("a", "b", 1.0), mkTopic("b", "c", 0.5)))
	if n := e.IndexedTags(); n != 3 {
		t.Fatalf("IndexedTags = %d, want 3 (a, b, c)", n)
	}
	// Tick matched: s1, s2 (initial views) and the full subscriber.
	if n := e.MatchedLastTick(); n != 3 {
		t.Fatalf("MatchedLastTick = %d, want 3", n)
	}
	s1.Close()
	s2.Close()
	if n := e.IndexedTags(); n != 0 {
		t.Fatalf("IndexedTags = %d after closing predicated subs, want 0", n)
	}
}

// A persona profile composes with a predicate: the filtered view is
// re-ranked exactly as persona.Rerank would rank it.
func TestPredicateComposesWithPersona(t *testing.T) {
	e := New(testConfig())
	defer e.Close()
	p := &persona.Profile{Name: "w", Keywords: []string{"hot"}, Boost: 10}
	sub := e.Subscribe(context.Background(), SubTags("hot", "cold"), SubProfile(p), SubBuffer(8))

	e.PublishRanking(mkRanking(t0,
		mkTopic("cold", "thing", 2.0), mkTopic("hot", "thing", 1.0), mkTopic("other", "noise", 5.0)))
	got := drainNotifs(sub)
	if len(got) != 1 {
		t.Fatalf("%d notifications, want 1", len(got))
	}
	topics := got[0].Topics()
	if len(topics) != 2 {
		t.Fatalf("filtered persona view has %d topics, want 2", len(topics))
	}
	// Boosted hot-topic must outrank the higher-raw-score cold topic.
	if topics[0].Pair != pairs.MakeKey("hot", "thing") {
		t.Fatalf("persona boost not applied within filtered view: top is %v", topics[0].Pair)
	}
}

// Concurrent subscribe/close/consume churn while predicates match and
// unmatch. Run under -race; the detector is the real assertion.
func TestSubscriptionChurnUnderDispatch(t *testing.T) {
	e := New(testConfig())
	docs := brokerStream()

	stopPub := make(chan struct{})
	var pubWG sync.WaitGroup
	pubWG.Add(1)
	go func() {
		defer pubWG.Done()
		for i := 0; ; i++ {
			select {
			case <-stopPub:
				return
			default:
			}
			e.PublishRanking(mkRanking(t0.Add(time.Duration(i)*time.Minute),
				mkTopic("politics", "scandal", float64(i%7)+0.5),
				mkTopic("churn", "noise", float64(i%3)+0.1)))
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				var opts []SubOption
				switch (w + i) % 4 {
				case 0:
					opts = []SubOption{SubTags("politics"), SubBuffer(2)}
				case 1:
					opts = []SubOption{SubTags("churn"), SubEmergenceOnly(), SubBuffer(2)}
				case 2:
					opts = []SubOption{SubMinScore(1.5), SubBuffer(2)}
				default:
					opts = []SubOption{SubBuffer(2)}
				}
				sub := e.Subscribe(context.Background(), opts...)
				drainNotifs(sub)
				sub.Close()
			}
		}(w)
	}
	// Real ingest churns the intern table concurrently (pending resolution).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := range docs {
			e.Consume(docs[i].Item())
		}
	}()
	wg.Wait()
	close(stopPub)
	pubWG.Wait()
	e.Close()
	if n := e.Subscribers(); n != 0 {
		t.Fatalf("Subscribers = %d after churn and Close", n)
	}
}
