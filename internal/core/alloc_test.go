package core

import (
	"fmt"
	"testing"
	"time"

	"enblogue/internal/stream"
)

// Allocation-regression bounds for the ingest/tick hot path. The engine's
// steady state — vocabulary interned, pairs tracked, counters resident in
// the arenas, tick buffers warmed — must not allocate per document, and an
// evaluation tick must allocate O(top-k), not O(tracked pairs). These
// tests pin both so the zero-allocation property cannot silently regress.

// allocWorkload builds a fixed synthetic stream: docs cycling over a small
// vocabulary so every pair exists after one pass.
func allocWorkload(n int) []*stream.Item {
	items := make([]*stream.Item, n)
	for i := range items {
		items[i] = &stream.Item{
			Time:  t0.Add(time.Duration(i) * time.Second),
			DocID: fmt.Sprintf("d%d", i),
			Tags: []string{
				fmt.Sprintf("a%d", i%7),
				fmt.Sprintf("b%d", i%5),
				fmt.Sprintf("c%d", i%3),
			},
		}
	}
	return items
}

// skipUnderRace skips allocation-count assertions in -race builds: the
// race detector's instrumentation allocates and bypasses sync.Pool
// caching, so the counts only reflect the instrumentation.
func skipUnderRace(t *testing.T) {
	t.Helper()
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
}

func TestConsumeSteadyStateAllocs(t *testing.T) {
	skipUnderRace(t)
	cfg := testConfig()
	cfg.Shards = 1
	cfg.TickEvery = 1000 * time.Hour // keep ticks out of the measurement
	e := New(cfg)
	items := allocWorkload(100)
	// Warm up: intern the vocabulary, create every pair and counter, select
	// seeds.
	for range [3]int{} {
		for _, it := range items {
			e.Consume(it)
		}
	}
	// Re-consuming the same in-window stream is the steady state: no new
	// tags, pairs, or ticks.
	avg := testing.AllocsPerRun(50, func() {
		for _, it := range items {
			e.Consume(it)
		}
	})
	// avg counts allocations per 100-document run; a handful across an
	// entire run tolerates map-rehash noise while still failing on any
	// per-document allocation.
	if avg > 3 {
		t.Errorf("steady-state Consume allocates %.1f per %d docs, want ~0", avg, len(items))
	}
}

func TestConsumeSteadyStateAllocsSharded(t *testing.T) {
	skipUnderRace(t)
	cfg := testConfig()
	cfg.Shards = 4
	cfg.TickEvery = 1000 * time.Hour
	e := New(cfg)
	items := allocWorkload(100)
	for range [3]int{} {
		for _, it := range items {
			e.Consume(it)
		}
	}
	avg := testing.AllocsPerRun(50, func() {
		for _, it := range items {
			e.Consume(it)
		}
	})
	if avg > 3 {
		t.Errorf("steady-state sharded Consume allocates %.1f per %d docs, want ~0", avg, len(items))
	}
}

// With the tiered sketch tail enabled and eviction pressure live — the
// pair budget is below the workload's pair count, so sweeps demote and
// promotions re-admit continuously — ingest must stay within the
// one-allocation-per-document acceptance bound. Demotion itself (sketch
// ingest, summary upkeep) is allocation-free; the residual budget covers
// the sweep's amortized victim collection.
func TestConsumeSteadyStateAllocsTailSketch(t *testing.T) {
	skipUnderRace(t)
	cfg := testConfig()
	cfg.Shards = 2
	cfg.TickEvery = 1000 * time.Hour
	cfg.MaxPairs = 40 // allocWorkload carries 71 distinct pairs
	cfg.TailSketch = TailSketchConfig{Enabled: true, Epsilon: 0.01, Delta: 0.01, TopK: 64}
	e := New(cfg)
	items := allocWorkload(100)
	for range [3]int{} {
		for _, it := range items {
			e.Consume(it)
		}
	}
	avg := testing.AllocsPerRun(50, func() {
		for _, it := range items {
			e.Consume(it)
		}
	})
	if avg > float64(len(items)) {
		t.Errorf("tail-enabled Consume allocates %.1f per %d docs, want ≤1/doc", avg, len(items))
	}
}

func TestConsumeBatchSteadyStateAllocs(t *testing.T) {
	skipUnderRace(t)
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards-%d", shards), func(t *testing.T) {
			cfg := testConfig()
			cfg.Shards = shards
			cfg.TickEvery = 1000 * time.Hour
			e := New(cfg)
			items := allocWorkload(100)
			for range [3]int{} {
				e.ConsumeBatch(items)
			}
			// Steady state: the batch scratch, pending-doc buffer, and
			// per-shard chunk groups are all warmed and reused, so a whole
			// batch must stay within the same ~zero budget as serial
			// Consume — far under the 1-alloc-per-doc acceptance bound.
			avg := testing.AllocsPerRun(50, func() {
				e.ConsumeBatch(items)
			})
			if avg > float64(len(items)) {
				t.Errorf("steady-state ConsumeBatch allocates %.1f per %d docs, want ≤1/doc", avg, len(items))
			}
			if avg > 3 {
				t.Errorf("steady-state ConsumeBatch allocates %.1f per %d docs, want ~0", avg, len(items))
			}
		})
	}
}

func TestTickSteadyStateAllocs(t *testing.T) {
	skipUnderRace(t)
	cfg := testConfig()
	cfg.Shards = 1 // single shard: no per-tick worker goroutines measured
	e := New(cfg)
	items := allocWorkload(500)
	for _, it := range items {
		e.Consume(it)
	}
	// Warm the tick buffers (snapshot, top-k, count index) with a few
	// evaluation passes.
	at := e.LastEventTime()
	for i := 0; i < 3; i++ {
		at = at.Add(time.Hour)
		e.Tick(at)
	}
	avg := testing.AllocsPerRun(20, func() {
		at = at.Add(time.Hour)
		e.Tick(at)
	})
	// One tick still allocates a bounded working set — the reselected seed
	// list, the published ranking's topic slice, and the defensive copy
	// Tick returns — but nothing proportional to the tracked-pair count
	// (hundreds here). The bound is ~3x the warmed steady state, far below
	// the per-pair regime.
	if avg > 60 {
		t.Errorf("tickLocked pass allocates %.1f, want bounded O(top-k)", avg)
	}
}

// A dispatch whose ranking moves no subscribed tag must not allocate at
// all, no matter how many predicated subscriptions are parked in the
// index — the subscription-index contract that makes "millions of
// standing queries" plausible.
func TestDispatchUnmatchedZeroAllocs(t *testing.T) {
	skipUnderRace(t)
	cfg := testConfig()
	e := New(cfg)
	defer e.Close()
	// 200 predicated subscriptions on tags that never appear in the
	// published rankings (interned, so the pending path is not measured).
	for i := 0; i < 200; i++ {
		tag := fmt.Sprintf("cold-%d", i)
		pairsMustIntern(tag)
		e.Subscribe(nil, SubTags(tag), SubBuffer(1))
	}
	hot := mkRanking(t0, mkTopic("hot-a", "hot-b", 1.0), mkTopic("hot-c", "hot-d", 0.5))
	// Warm the dispatcher scratch (prevView, moved-ID and candidate
	// buffers, queue slot) and deliver the initial views.
	for i := 0; i < 3; i++ {
		hot.At = hot.At.Add(time.Hour)
		hot.Topics[0].Score += 0.1
		e.PublishRanking(hot)
	}
	avg := testing.AllocsPerRun(100, func() {
		hot.At = hot.At.Add(time.Hour)
		hot.Topics[0].Score += 0.1
		e.PublishRanking(hot)
	})
	if avg > 0 {
		t.Errorf("unmatched dispatch allocates %.2f per tick, want 0", avg)
	}
}

// A matched predicated subscriber costs a small, bounded number of
// allocations per delivered notification: the notification itself, the
// owned payload copy, and the delta slices — never a full-ranking clone.
func TestDispatchMatchedSubscriberAllocs(t *testing.T) {
	skipUnderRace(t)
	cfg := testConfig()
	e := New(cfg)
	defer e.Close()
	pairsMustIntern("hot-a")
	sub := e.Subscribe(nil, SubTags("hot-a"), SubBuffer(2))
	r := mkRanking(t0, mkTopic("hot-a", "hot-b", 1.0), mkTopic("hot-c", "hot-d", 0.5))
	for i := 0; i < 3; i++ {
		r.At = r.At.Add(time.Hour)
		r.Topics[0].Score += 0.1
		e.PublishRanking(r)
		drainNotifs(sub)
	}
	avg := testing.AllocsPerRun(100, func() {
		r.At = r.At.Add(time.Hour)
		r.Topics[0].Score += 0.1
		e.PublishRanking(r)
		drainNotifs(sub)
	})
	// Notification struct + owned one-topic payload ≈ 2; the bound leaves
	// headroom for drain scratch while staying far below the old
	// clone-per-subscriber regime (seeds + topics + persona maps).
	if avg > 5 {
		t.Errorf("matched dispatch allocates %.1f per tick, want ≤5", avg)
	}
}

// pairsMustIntern forces a tag into the intern table the way ingest
// would, so predicate compilation resolves it immediately.
func pairsMustIntern(tag string) { _ = mkTopic(tag, "anchor", 0) }
