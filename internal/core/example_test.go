package core_test

import (
	"fmt"
	"time"

	"enblogue/internal/core"
	"enblogue/internal/stream"
)

func Example() {
	engine := core.New(core.Config{
		WindowBuckets:    12,
		WindowResolution: time.Hour,
		SeedCount:        10,
		SeedWarmupDocs:   20,
		MinCooccurrence:  2,
		TopK:             3,
		UpOnly:           true,
	})

	start := time.Date(2011, 6, 12, 0, 0, 0, 0, time.UTC)
	id := 0
	emit := func(hour, minute int, tags ...string) {
		id++
		engine.Consume(&stream.Item{
			Time:  start.Add(time.Duration(hour)*time.Hour + time.Duration(minute)*time.Minute),
			DocID: fmt.Sprintf("doc-%04d", id),
			Tags:  tags,
		})
	}

	// Steady chatter, then "iceland" suddenly pairs with "air-traffic".
	for h := 0; h < 8; h++ {
		for m := 0; m < 60; m += 5 {
			emit(h, m, "news", "politics")
		}
	}
	for h := 8; h < 10; h++ {
		for m := 0; m < 60; m += 5 {
			emit(h, m, "news", "politics")
		}
		for m := 0; m < 60; m += 6 {
			emit(h, m, "news", "iceland", "air-traffic")
		}
	}
	engine.Flush()

	top := engine.CurrentRanking().Topics[0]
	fmt.Println("most emergent:", top.Pair)
	fmt.Println("query:", core.KeywordQuery(engine.ExpandTopic(top.Pair, 1)))
	// Output:
	// most emergent: air-traffic+iceland
	// query: air-traffic iceland news
}
