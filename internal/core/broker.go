package core

import (
	"context"
	"sync"
	"sync/atomic"

	"enblogue/internal/pairs"
	"enblogue/internal/persona"
	"enblogue/internal/shift"
)

// This file implements the engine's subscription broker: the paper's
// "users register continuous keyword queries" model done at the API layer.
// One shared ingest pipeline computes a single broadcast ranking per tick;
// the broker fans each tick out to subscribers, each of which may carry a
// compiled predicate (tag sets, score floor, emergence-only), a persona
// profile, and a top-k, so every subscriber sees its own view of the same
// underlying topics.
//
// Dispatch is delta-driven, not broadcast-to-all. The dispatcher diffs
// each tick's ranking against the previous one on (pair, score) identity,
// then consults the subscription index (subindex.go) to find only the
// subscriptions whose predicates reference a tag that moved — every other
// predicated subscription costs nothing, not even a visit. Unpredicated
// ("full") subscriptions still receive every tick, but now share one
// read-only topic slice per tick instead of each paying for an eager deep
// clone (see Notification); persona re-rank runs only for subscriptions
// that are actually being delivered to.
//
// Delivery runs on a dedicated dispatcher goroutine, never under the
// engine's tick/bookkeeping lock, and is non-blocking toward subscribers:
// every subscription has a bounded channel with drop-oldest semantics for
// slow consumers, and drops are counted per subscription. A slow subscriber
// therefore always observes the newest notifications and can never stall
// the engine, the dispatcher, or its sibling subscribers.

// subConfig holds per-subscription settings assembled from SubOptions.
type subConfig struct {
	buffer        int
	topK          int
	profile       *persona.Profile
	anyTags       []string
	allTags       []string
	minScore      float64
	emergenceOnly bool
}

// SubOption configures one subscription.
type SubOption func(*subConfig)

// SubBuffer sets the subscription's channel capacity (default 16, minimum
// 1). When the buffer is full, the oldest undelivered notification is
// dropped to make room for the newest.
func SubBuffer(n int) SubOption {
	return func(c *subConfig) { c.buffer = n }
}

// SubTopK trims every delivered view to its best k topics. Zero (the
// default) delivers the full view.
func SubTopK(k int) SubOption {
	return func(c *subConfig) { c.topK = k }
}

// SubProfile attaches a persona to the subscription: every delivered
// view is re-ranked by preference-weighted score exactly as
// persona.Rerank would, so this subscriber sees "completely different or
// just differently ordered emergent topics". The profile is copied; later
// mutations by the caller have no effect.
func SubProfile(p *persona.Profile) SubOption {
	return func(c *subConfig) {
		if p == nil {
			c.profile = nil
			return
		}
		cp := *p
		cp.Keywords = append([]string(nil), p.Keywords...)
		cp.Categories = append([]string(nil), p.Categories...)
		c.profile = &cp
	}
}

// SubTags restricts the subscription to topics containing at least one of
// the given tags (any-of). Repeated options accumulate. The predicate is
// compiled once, at Subscribe time, into interned tag IDs; tags the stream
// has not produced yet are parked and resolved automatically when they
// first appear. A tagged subscription is delta-driven: it is notified only
// on ticks where its filtered view actually changed.
func SubTags(tags ...string) SubOption {
	return func(c *subConfig) { c.anyTags = append(c.anyTags, tags...) }
}

// SubAllTags restricts the subscription to topics containing every one of
// the given tags (all-of). A topic is a tag pair, so more than two
// all-tags can never match. Repeated options accumulate.
func SubAllTags(tags ...string) SubOption {
	return func(c *subConfig) { c.allTags = append(c.allTags, tags...) }
}

// SubMinScore suppresses topics scoring below min. Values <= 0 mean no
// floor. Like every predicate option it makes the subscription
// delta-driven: unchanged filtered views are not re-delivered.
func SubMinScore(min float64) SubOption {
	return func(c *subConfig) { c.minScore = min }
}

// SubEmergenceOnly delivers only topics newly entering the subscription's
// filtered view, and skips ticks where nothing new entered — the pure
// "tell me when something emerges" standing query.
func SubEmergenceOnly() SubOption {
	return func(c *subConfig) { c.emergenceOnly = true }
}

// Subscription is one subscriber's live feed. Receive from Notifications;
// the channel is closed when the subscription is closed (by Close, context
// cancellation, or engine Close).
type Subscription struct {
	broker  *broker
	id      uint64
	cfg     subConfig
	m       *matcher // nil for full (unpredicated) subscriptions
	ch      chan *Notification
	done    chan struct{} // nil unless a context watcher needs it
	once    sync.Once
	dropped atomic.Int64

	// indexed and touched are subscription-index bookkeeping, guarded by
	// the index lock (see subIndex.mu).
	indexed bool
	touched uint64

	// lastView is the (pair, score) image of the filtered view most
	// recently evaluated for this subscription. Dispatcher-only.
	lastView []topicMark
}

// Notifications returns the subscriber's channel. One notification is
// delivered per matching evaluation tick, in tick order; when the consumer
// falls behind, the oldest buffered notifications are discarded first (see
// Dropped). Full subscriptions match every tick; predicated ones only
// ticks where their filtered view changed.
func (s *Subscription) Notifications() <-chan *Notification { return s.ch }

// Dropped returns the number of notifications discarded because this
// subscriber consumed too slowly.
func (s *Subscription) Dropped() int64 { return s.dropped.Load() }

// Close detaches the subscription and closes its channel. Idempotent and
// safe to call concurrently with delivery.
func (s *Subscription) Close() {
	s.once.Do(func() {
		if s.done != nil {
			close(s.done)
		}
		s.broker.remove(s)
	})
}

// personaTopics renders topics re-ranked through persona.Rerank (so broker
// views and registry views can never diverge), preserving the full
// shift.Topic diagnostics. The returned slice is freshly allocated.
func personaTopics(topics []shift.Topic, p *persona.Profile) []shift.Topic {
	ptopics := make([]persona.Topic, len(topics))
	byPair := make(map[pairs.Key]shift.Topic, len(topics))
	for i, t := range topics {
		ptopics[i] = persona.Topic{Pair: t.Pair, Score: t.Score}
		byPair[t.Pair] = t
	}
	reranked := persona.Rerank(ptopics, p)
	out := make([]shift.Topic, len(reranked))
	for i, pt := range reranked {
		t := byPair[pt.Pair]
		t.Score = pt.Score
		out[i] = t
	}
	return out
}

// deliverySlot pairs a subscription with the notification built for it
// this tick; the slice of slots is dispatcher scratch.
type deliverySlot struct {
	s *Subscription
	n *Notification
}

// broker fans published rankings out to subscriptions from its own
// dispatcher goroutine, through the subscription index.
type broker struct {
	// mu guards subs, closed, nextID; held during channel sends.
	//
	//enblogue:lock broker 30
	mu     sync.Mutex
	subs   map[uint64]*Subscription
	closed bool
	nextID uint64

	// idx is the inverted subscription index (its lock class nests inside
	// mu: registration/removal hold mu, then idx.mu).
	idx *subIndex

	// nsubs mirrors len(subs) so publish — which runs under the engine's
	// tick lock — can check for listeners without contending on mu against
	// an in-flight delivery.
	nsubs        atomic.Int64
	droppedTotal atomic.Int64
	// matchedLast counts notifications built on the most recent dispatch.
	matchedLast atomic.Int64

	// Dispatcher-only state: the previous tick's (pair, score) image and
	// reusable scratch, so a steady-state tick whose ranking did not move
	// any subscribed tag allocates nothing.
	seq         uint64
	prevView    []topicMark
	movedIDs    []uint32
	tickEntered []pairs.Key
	tickLeft    []pairs.Key
	candBuf     []*Subscription
	fullBuf     []*Subscription
	slotBuf     []deliverySlot
	viewBuf     []shift.Topic

	// qmu guards the dispatch queue. It is never held together with mu:
	// the dispatcher drains the queue under qmu, then delivers under mu.
	//
	//enblogue:lock brokerq 25
	qmu     sync.Mutex
	qcond   *sync.Cond
	queue   []Ranking
	pubSeq  uint64 // rankings enqueued
	doneSeq uint64 // rankings fully dispatched
	started bool
	stopped bool
}

func newBroker() *broker {
	b := &broker{subs: make(map[uint64]*Subscription), idx: newSubIndex()}
	b.qcond = sync.NewCond(&b.qmu)
	return b
}

// subscribe registers a new subscription, compiling its predicate options
// (if any) into a matcher and indexing it. A nil context is treated as
// context.Background(); otherwise cancelling the context closes the
// subscription. Subscribing to a closed broker returns an already-closed
// subscription.
func (b *broker) subscribe(ctx context.Context, opts ...SubOption) *Subscription {
	cfg := subConfig{buffer: 16}
	for _, o := range opts {
		if o != nil {
			o(&cfg)
		}
	}
	if cfg.buffer < 1 {
		cfg.buffer = 1
	}
	s := &Subscription{
		broker: b,
		cfg:    cfg,
		m:      compileMatcher(&cfg),
		ch:     make(chan *Notification, cfg.buffer),
	}
	watched := ctx != nil && ctx.Done() != nil
	if watched {
		s.done = make(chan struct{})
	}
	b.mu.Lock()
	b.nextID++
	s.id = b.nextID
	if b.closed {
		b.mu.Unlock()
		s.once.Do(func() {
			if s.done != nil {
				close(s.done)
			}
		})
		close(s.ch)
		return s
	}
	b.subs[s.id] = s
	b.nsubs.Store(int64(len(b.subs)))
	// Index while still holding mu so a dispatch between map insert and
	// index registration cannot observe a half-registered subscription.
	b.idx.add(s)
	b.mu.Unlock()
	if watched {
		go func() {
			select {
			case <-ctx.Done():
				s.Close()
			case <-s.done:
			}
		}()
	}
	return s
}

// remove detaches a subscription and closes its channel. Channel sends
// happen only under b.mu (see deliver), so closing under b.mu cannot race
// a send.
//
//enblogue:acquires broker
func (b *broker) remove(s *Subscription) {
	b.mu.Lock()
	if _, ok := b.subs[s.id]; ok {
		delete(b.subs, s.id)
		b.nsubs.Store(int64(len(b.subs)))
		b.idx.remove(s)
		close(s.ch)
	}
	b.mu.Unlock()
}

// subscribers returns the number of live subscriptions.
//
//enblogue:acquires broker
func (b *broker) subscribers() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.subs)
}

// indexedTags returns the number of distinct interned tags referenced by
// at least one live predicate.
func (b *broker) indexedTags() int { return b.idx.tagCount() }

// matchedLastTick returns how many subscriptions were handed a
// notification on the most recent dispatch.
func (b *broker) matchedLastTick() int64 { return b.matchedLast.Load() }

// publish enqueues a ranking for dispatch. Called with the engine's tick
// lock held, so it must never block on consumers: it only appends to the
// dispatch queue (unbounded, but ticks are rare relative to any realistic
// consumer) and wakes the dispatcher. When nobody is listening it is a
// no-op.
//
//enblogue:acquires brokerq
func (b *broker) publish(r Ranking) {
	if b.nsubs.Load() == 0 {
		return
	}
	b.qmu.Lock()
	if b.stopped {
		b.qmu.Unlock()
		return
	}
	if !b.started {
		b.started = true
		go b.dispatch()
	}
	b.queue = append(b.queue, r)
	b.pubSeq++
	b.qcond.Broadcast()
	b.qmu.Unlock()
}

// dispatch is the broker's delivery loop: it pops published rankings in
// order and fans out to subscriptions. It runs outside every engine lock,
// so consumers may call back into the engine freely.
func (b *broker) dispatch() {
	for {
		b.qmu.Lock()
		for len(b.queue) == 0 && !b.stopped {
			b.qcond.Wait()
		}
		if len(b.queue) == 0 && b.stopped {
			b.qmu.Unlock()
			return
		}
		r := b.queue[0]
		// Pop by copy-down so the queue's backing array (and its start
		// offset) is preserved: the common one-entry case re-appends into
		// the same slot forever instead of reallocating every tick.
		copy(b.queue, b.queue[1:])
		b.queue[len(b.queue)-1] = Ranking{}
		b.queue = b.queue[:len(b.queue)-1]
		b.qmu.Unlock()

		b.deliver(r)

		b.qmu.Lock()
		b.doneSeq++
		b.qcond.Broadcast()
		b.qmu.Unlock()
	}
}

// diffRanking computes the tick-level delta between topics and the
// previously dispatched ranking on (pair, score) identity, filling the
// broker's movedIDs/tickEntered/tickLeft scratch. Diagnostics like the
// evaluation timestamp change every tick by construction and do not
// participate. Reports whether anything moved at all. Dispatcher-only.
func (b *broker) diffRanking(topics []shift.Topic) bool {
	b.movedIDs = b.movedIDs[:0]
	b.tickEntered = b.tickEntered[:0]
	b.tickLeft = b.tickLeft[:0]
	changed := false
	for i := range topics {
		t := &topics[i]
		prev, ok := markScore(b.prevView, t.Pair)
		if ok && prev == t.Score {
			continue
		}
		if !ok {
			b.tickEntered = append(b.tickEntered, t.Pair)
		}
		changed = true
		b.addMoved(t.Pair)
	}
	for _, m := range b.prevView {
		if !topicsContain(topics, m.key) {
			b.tickLeft = append(b.tickLeft, m.key)
			changed = true
			b.addMoved(m.key)
		}
	}
	return changed
}

func (b *broker) addMoved(k pairs.Key) {
	a, c := k.IDs()
	if !containsID(b.movedIDs, a) {
		b.movedIDs = append(b.movedIDs, a)
	}
	if !containsID(b.movedIDs, c) {
		b.movedIDs = append(b.movedIDs, c)
	}
}

func topicsContain(topics []shift.Topic, k pairs.Key) bool {
	for i := range topics {
		if topics[i].Pair == k {
			return true
		}
	}
	return false
}

func keysContain(keys []pairs.Key, k pairs.Key) bool {
	for _, v := range keys {
		if v == k {
			return true
		}
	}
	return false
}

// deliver dispatches one ranking: diff against the previous tick, collect
// only the touched predicated subscriptions from the index, build
// notifications outside every lock, then send non-blocking with
// drop-oldest under b.mu (channel close in remove/close is safe exactly
// because sends happen under b.mu). A tick that moves no subscribed tag
// and has no full subscribers completes without allocating.
func (b *broker) deliver(r Ranking) {
	b.seq++
	changed := b.diffRanking(r.Topics)
	b.candBuf = b.idx.collect(b.movedIDs, changed, b.seq, b.candBuf[:0])
	b.fullBuf = b.idx.fullInto(b.fullBuf[:0])

	slots := b.slotBuf[:0]
	// Full subscriptions share one pair of tick-delta slices; materialised
	// lazily so a predicate-only population never copies the scratch.
	var entered, left []pairs.Key
	if len(b.fullBuf) > 0 {
		if len(b.tickEntered) > 0 {
			entered = append([]pairs.Key(nil), b.tickEntered...)
		}
		if len(b.tickLeft) > 0 {
			left = append([]pairs.Key(nil), b.tickLeft...)
		}
	}
	for _, s := range b.fullBuf {
		slots = append(slots, deliverySlot{s: s, n: s.fullNotification(&r, entered, left)})
	}
	for _, s := range b.candBuf {
		if n := b.filteredNotification(s, &r); n != nil {
			slots = append(slots, deliverySlot{s: s, n: n})
		}
	}
	b.matchedLast.Store(int64(len(slots)))

	b.mu.Lock()
	for i := range slots {
		s := slots[i].s
		if _, ok := b.subs[s.id]; !ok {
			continue // closed while the notifications were being built
		}
		n := slots[i].n
		select {
		case s.ch <- n:
			continue
		default:
		}
		// Buffer full: drop the oldest buffered notification. The consumer
		// may concurrently drain the channel, so both steps stay
		// non-blocking.
		select {
		case <-s.ch:
			s.dropped.Add(1)
			b.droppedTotal.Add(1)
		default:
		}
		select {
		case s.ch <- n:
		default:
			s.dropped.Add(1)
			b.droppedTotal.Add(1)
		}
	}
	b.mu.Unlock()

	b.prevView = appendMarks(b.prevView[:0], r.Topics)
	clear(slots)
	b.slotBuf = slots
}

// fullNotification builds an unpredicated subscription's notification:
// the shared broadcast topics (persona-reranked into an owned slice only
// when a non-empty profile is attached), trimmed to top-k, carrying the
// tick-level delta.
func (s *Subscription) fullNotification(r *Ranking, entered, left []pairs.Key) *Notification {
	topics := r.Topics
	owned := false
	if p := s.cfg.profile; p != nil && !p.Empty() {
		topics = personaTopics(topics, p)
		owned = true
	}
	if k := s.cfg.topK; k > 0 && len(topics) > k {
		topics = topics[:k]
	}
	return &Notification{at: r.At, seeds: r.Seeds, topics: topics, owned: owned, entered: entered, left: left}
}

// filteredNotification evaluates one predicated candidate against the
// tick: filter through the compiled matcher, persona-rerank if a profile
// is attached, trim to top-k, then compare the resulting view to the one
// this subscription last saw on (pair, score) identity. An unchanged view
// returns nil without allocating — the subscriber has already seen it.
// Under emergence-only, a changed view with no new entrants also returns
// nil, and a delivered payload carries only the entrants.
func (b *broker) filteredNotification(s *Subscription, r *Ranking) *Notification {
	m := s.m
	view := b.viewBuf[:0]
	for i := range r.Topics {
		if m.matches(&r.Topics[i]) {
			view = append(view, r.Topics[i])
		}
	}
	b.viewBuf = view // retain grown capacity for the next candidate
	viewOwned := false
	if p := s.cfg.profile; p != nil && !p.Empty() && len(view) > 0 {
		view = personaTopics(view, p)
		viewOwned = true
	}
	if k := s.cfg.topK; k > 0 && len(view) > k {
		view = view[:k]
	}
	if marksEqual(s.lastView, view) {
		return nil
	}
	var entered, left []pairs.Key
	for i := range view {
		if _, ok := markScore(s.lastView, view[i].Pair); !ok {
			entered = append(entered, view[i].Pair)
		}
	}
	for _, mk := range s.lastView {
		if !topicsContain(view, mk.key) {
			left = append(left, mk.key)
		}
	}
	if m.emergenceOnly && len(entered) == 0 {
		// The view changed (scores moved or topics fell out) but nothing
		// emerged: remember the new view, deliver nothing.
		s.lastView = appendMarks(s.lastView[:0], view)
		return nil
	}
	var payload []shift.Topic
	switch {
	case m.emergenceOnly:
		payload = make([]shift.Topic, 0, len(entered))
		for i := range view {
			if keysContain(entered, view[i].Pair) {
				payload = append(payload, view[i])
			}
		}
	case viewOwned:
		payload = view
	default:
		payload = append([]shift.Topic(nil), view...)
	}
	s.lastView = appendMarks(s.lastView[:0], view)
	return &Notification{at: r.At, seeds: r.Seeds, topics: payload, owned: true, entered: entered, left: left}
}

// wait blocks until every ranking published before the call has been fully
// dispatched (subscriptions fed). It must not be called from the
// dispatcher goroutine itself — the dispatcher cannot drain itself.
func (b *broker) wait() {
	b.qmu.Lock()
	target := b.pubSeq
	for b.doneSeq < target {
		b.qcond.Wait()
	}
	b.qmu.Unlock()
}

// close drains the queue, stops the dispatcher, and closes every
// subscription channel. Idempotent.
func (b *broker) close() {
	b.qmu.Lock()
	b.stopped = true
	b.qcond.Broadcast()
	for b.doneSeq < b.pubSeq {
		b.qcond.Wait()
	}
	b.qmu.Unlock()

	b.mu.Lock()
	b.closed = true
	detached := make([]*Subscription, 0, len(b.subs))
	//enblogue:unordered per-key detach of every subscription; close order between independent subscriber channels is immaterial
	for id, s := range b.subs {
		delete(b.subs, id)
		close(s.ch)
		detached = append(detached, s)
	}
	b.nsubs.Store(0)
	b.idx.reset()
	b.mu.Unlock()
	// Fire each subscription's once outside b.mu: a concurrent
	// Subscription.Close owns the once while waiting for b.mu in remove, so
	// running it under the lock could deadlock. remove itself is safe — the
	// map entry is already gone, so the channel is never closed twice.
	for _, s := range detached {
		s.once.Do(func() {
			if s.done != nil {
				close(s.done)
			}
		})
	}
}
