package core

import (
	"context"
	"sync"
	"sync/atomic"

	"enblogue/internal/pairs"
	"enblogue/internal/persona"
	"enblogue/internal/shift"
)

// This file implements the engine's subscription broker: the paper's
// "users register continuous keyword queries" model done at the API layer.
// One shared ingest pipeline computes a single broadcast ranking per tick;
// the broker fans each tick out to any number of subscribers, each of which
// may carry its own persona profile and top-k, so every subscriber sees a
// differently-ranked view of the same underlying topics.
//
// Delivery runs on a dedicated dispatcher goroutine, never under the
// engine's tick/bookkeeping lock, and is non-blocking toward subscribers:
// every subscription has a bounded channel with drop-oldest semantics for
// slow consumers, and drops are counted per subscription. A slow subscriber
// therefore always observes the newest rankings and can never stall the
// engine, the dispatcher, or its sibling subscribers.

// subConfig holds per-subscription settings assembled from SubOptions.
type subConfig struct {
	buffer  int
	topK    int
	profile *persona.Profile
}

// SubOption configures one subscription.
type SubOption func(*subConfig)

// SubBuffer sets the subscription's channel capacity (default 16, minimum
// 1). When the buffer is full, the oldest undelivered ranking is dropped to
// make room for the newest.
func SubBuffer(n int) SubOption {
	return func(c *subConfig) { c.buffer = n }
}

// SubTopK trims every delivered ranking to its best k topics. Zero (the
// default) delivers the engine's full ranking.
func SubTopK(k int) SubOption {
	return func(c *subConfig) { c.topK = k }
}

// SubProfile attaches a persona to the subscription: every delivered
// ranking is re-ranked by preference-weighted score exactly as
// persona.Rerank would, so this subscriber sees "completely different or
// just differently ordered emergent topics". The profile is copied; later
// mutations by the caller have no effect.
func SubProfile(p *persona.Profile) SubOption {
	return func(c *subConfig) {
		if p == nil {
			c.profile = nil
			return
		}
		cp := *p
		cp.Keywords = append([]string(nil), p.Keywords...)
		cp.Categories = append([]string(nil), p.Categories...)
		c.profile = &cp
	}
}

// Subscription is one subscriber's live feed of rankings. Receive from
// Rankings; the channel is closed when the subscription is closed (by
// Close, context cancellation, or engine Close).
type Subscription struct {
	broker  *broker
	id      uint64
	cfg     subConfig
	ch      chan Ranking
	done    chan struct{}
	once    sync.Once
	dropped atomic.Int64
}

// Rankings returns the subscriber's channel. One ranking view is delivered
// per evaluation tick, in tick order; when the consumer falls behind, the
// oldest buffered views are discarded first (see Dropped).
func (s *Subscription) Rankings() <-chan Ranking { return s.ch }

// Dropped returns the number of rankings discarded because this subscriber
// consumed too slowly.
func (s *Subscription) Dropped() int64 { return s.dropped.Load() }

// Close detaches the subscription and closes its channel. Idempotent and
// safe to call concurrently with delivery.
func (s *Subscription) Close() {
	s.once.Do(func() {
		close(s.done)
		s.broker.remove(s)
	})
}

// view renders the broadcast ranking as this subscription sees it: a
// defensive copy, persona-reranked through persona.Rerank itself when a
// non-empty profile is attached (so broker views and registry views can
// never diverge), trimmed to the subscription's top-k. The full
// shift.Topic diagnostics are preserved through the rerank.
func (s *Subscription) view(r Ranking) Ranking {
	out := Ranking{At: r.At, Seeds: append([]string(nil), r.Seeds...)}
	p := s.cfg.profile
	if p == nil || p.Empty() {
		out.Topics = append([]shift.Topic(nil), r.Topics...)
	} else {
		ptopics := make([]persona.Topic, len(r.Topics))
		byPair := make(map[pairs.Key]shift.Topic, len(r.Topics))
		for i, t := range r.Topics {
			ptopics[i] = persona.Topic{Pair: t.Pair, Score: t.Score}
			byPair[t.Pair] = t
		}
		reranked := persona.Rerank(ptopics, p)
		topics := make([]shift.Topic, len(reranked))
		for i, pt := range reranked {
			t := byPair[pt.Pair]
			t.Score = pt.Score
			topics[i] = t
		}
		out.Topics = topics
	}
	if k := s.cfg.topK; k > 0 && len(out.Topics) > k {
		out.Topics = out.Topics[:k]
	}
	return out
}

// broker fans published rankings out to subscriptions from its own
// dispatcher goroutine.
type broker struct {
	// mu guards subs, closed, nextID; held during channel sends.
	//
	//enblogue:lock broker 30
	mu     sync.Mutex
	subs   map[uint64]*Subscription
	closed bool
	nextID uint64

	// nsubs mirrors len(subs) so publish — which runs under the engine's
	// tick lock — can check for listeners without contending on mu against
	// an in-flight delivery.
	nsubs        atomic.Int64
	droppedTotal atomic.Int64

	// qmu guards the dispatch queue. It is never held together with mu:
	// the dispatcher drains the queue under qmu, then delivers under mu.
	//
	//enblogue:lock brokerq 25
	qmu     sync.Mutex
	qcond   *sync.Cond
	queue   []Ranking
	pubSeq  uint64 // rankings enqueued
	doneSeq uint64 // rankings fully dispatched
	started bool
	stopped bool
}

func newBroker() *broker {
	b := &broker{subs: make(map[uint64]*Subscription)}
	b.qcond = sync.NewCond(&b.qmu)
	return b
}

// subscribe registers a new subscription. A nil context is treated as
// context.Background(); otherwise cancelling the context closes the
// subscription. Subscribing to a closed broker returns an
// already-closed subscription.
func (b *broker) subscribe(ctx context.Context, opts ...SubOption) *Subscription {
	cfg := subConfig{buffer: 16}
	for _, o := range opts {
		if o != nil {
			o(&cfg)
		}
	}
	if cfg.buffer < 1 {
		cfg.buffer = 1
	}
	s := &Subscription{
		broker: b,
		cfg:    cfg,
		ch:     make(chan Ranking, cfg.buffer),
		done:   make(chan struct{}),
	}
	b.mu.Lock()
	b.nextID++
	s.id = b.nextID
	if b.closed {
		b.mu.Unlock()
		s.once.Do(func() { close(s.done) })
		close(s.ch)
		return s
	}
	b.subs[s.id] = s
	b.nsubs.Store(int64(len(b.subs)))
	b.mu.Unlock()
	if ctx != nil && ctx.Done() != nil {
		go func() {
			select {
			case <-ctx.Done():
				s.Close()
			case <-s.done:
			}
		}()
	}
	return s
}

// remove detaches a subscription and closes its channel. Channel sends
// happen only under b.mu (see deliver), so closing under b.mu cannot race
// a send.
//
//enblogue:acquires broker
func (b *broker) remove(s *Subscription) {
	b.mu.Lock()
	if _, ok := b.subs[s.id]; ok {
		delete(b.subs, s.id)
		b.nsubs.Store(int64(len(b.subs)))
		close(s.ch)
	}
	b.mu.Unlock()
}

// subscribers returns the number of live subscriptions.
//
//enblogue:acquires broker
func (b *broker) subscribers() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.subs)
}

// publish enqueues a ranking for dispatch. Called with the engine's tick
// lock held, so it must never block on consumers: it only appends to the
// dispatch queue (unbounded, but ticks are rare relative to any realistic
// consumer) and wakes the dispatcher. When nobody is listening it is a
// no-op.
//
//enblogue:acquires brokerq
func (b *broker) publish(r Ranking) {
	if b.nsubs.Load() == 0 {
		return
	}
	b.qmu.Lock()
	if b.stopped {
		b.qmu.Unlock()
		return
	}
	if !b.started {
		b.started = true
		go b.dispatch()
	}
	b.queue = append(b.queue, r)
	b.pubSeq++
	b.qcond.Broadcast()
	b.qmu.Unlock()
}

// dispatch is the broker's delivery loop: it pops published rankings in
// order and fans out to subscriptions. It runs outside every engine lock,
// so consumers may call back into the engine freely.
func (b *broker) dispatch() {
	for {
		b.qmu.Lock()
		for len(b.queue) == 0 && !b.stopped {
			b.qcond.Wait()
		}
		if len(b.queue) == 0 && b.stopped {
			b.qmu.Unlock()
			return
		}
		r := b.queue[0]
		b.queue = b.queue[1:]
		b.qmu.Unlock()

		b.deliver(r)

		b.qmu.Lock()
		b.doneSeq++
		b.qcond.Broadcast()
		b.qmu.Unlock()
	}
}

// deliver sends one ranking to every subscription, non-blocking with
// drop-oldest: a full buffer sheds its oldest view so the subscriber
// always converges on the newest state. The per-subscriber rerank runs
// outside b.mu — only the non-blocking sends hold the lock (channel close
// in remove/close is safe exactly because sends happen under b.mu), so a
// large fan-out never blocks Subscribe/Close for the rerank's duration.
func (b *broker) deliver(r Ranking) {
	b.mu.Lock()
	subs := make([]*Subscription, 0, len(b.subs))
	//enblogue:unordered collects the subscriber set; each subscription receives on its own channel, so delivery order between subscribers is immaterial and no ranking state is touched
	for _, s := range b.subs {
		subs = append(subs, s)
	}
	b.mu.Unlock()

	views := make([]Ranking, len(subs))
	for i, s := range subs {
		views[i] = s.view(r)
	}

	b.mu.Lock()
	defer b.mu.Unlock()
	for i, s := range subs {
		if _, ok := b.subs[s.id]; !ok {
			continue // closed while the views were being built
		}
		v := views[i]
		select {
		case s.ch <- v:
			continue
		default:
		}
		// Buffer full: drop the oldest buffered view. The consumer may
		// concurrently drain the channel, so both steps stay non-blocking.
		select {
		case <-s.ch:
			s.dropped.Add(1)
			b.droppedTotal.Add(1)
		default:
		}
		select {
		case s.ch <- v:
		default:
			s.dropped.Add(1)
			b.droppedTotal.Add(1)
		}
	}
}

// wait blocks until every ranking published before the call has been fully
// dispatched (subscriptions fed). It must not be called from the
// dispatcher goroutine itself — the dispatcher cannot drain itself.
func (b *broker) wait() {
	b.qmu.Lock()
	target := b.pubSeq
	for b.doneSeq < target {
		b.qcond.Wait()
	}
	b.qmu.Unlock()
}

// close drains the queue, stops the dispatcher, and closes every
// subscription channel. Idempotent.
func (b *broker) close() {
	b.qmu.Lock()
	b.stopped = true
	b.qcond.Broadcast()
	for b.doneSeq < b.pubSeq {
		b.qcond.Wait()
	}
	b.qmu.Unlock()

	b.mu.Lock()
	b.closed = true
	detached := make([]*Subscription, 0, len(b.subs))
	//enblogue:unordered per-key detach of every subscription; close order between independent subscriber channels is immaterial
	for id, s := range b.subs {
		delete(b.subs, id)
		close(s.ch)
		detached = append(detached, s)
	}
	b.nsubs.Store(0)
	b.mu.Unlock()
	// Fire each subscription's once outside b.mu: a concurrent
	// Subscription.Close owns the once while waiting for b.mu in remove, so
	// running it under the lock could deadlock. remove itself is safe — the
	// map entry is already gone, so the channel is never closed twice.
	for _, s := range detached {
		s.once.Do(func() { close(s.done) })
	}
}
