package core

import (
	"context"
	"testing"
	"time"

	"enblogue/internal/entity"
	"enblogue/internal/pairs"
	"enblogue/internal/predict"
	"enblogue/internal/source"
	"enblogue/internal/stream"
	"enblogue/internal/tagstats"
)

var t0 = time.Date(2011, 6, 12, 0, 0, 0, 0, time.UTC)

// feedDocs pushes documents through the engine in stream order.
func feedDocs(e *Engine, docs []source.Document) {
	for i := range docs {
		e.Consume(docs[i].Item())
	}
	e.Flush()
}

// recordRankings subscribes to e with a buffer far beyond any test
// workload's tick count and drains on a goroutine. The returned stop
// function flushes the engine, detaches the subscription, joins the
// drainer, and hands back every delivered ranking in tick order.
func recordRankings(e *Engine) func() []Ranking {
	sub := e.Subscribe(context.Background(), SubBuffer(1<<16))
	var got []Ranking
	done := make(chan struct{})
	go func() {
		defer close(done)
		for rn := range sub.Notifications() {
			r := rn.Ranking()
			got = append(got, r)
		}
	}()
	return func() []Ranking {
		e.Flush()
		sub.Close()
		<-done
		return got
	}
}

// testConfig returns a small fast configuration suitable for unit streams.
func testConfig() Config {
	return Config{
		WindowBuckets:    12,
		WindowResolution: time.Hour,
		TickEvery:        time.Hour,
		SeedCount:        10,
		SeedMinCount:     2,
		SeedWarmupDocs:   20,
		Predictor:        predict.KindMovingAverage,
		PredictorConfig:  predict.Config{Window: 4},
		MinCooccurrence:  2,
		TopK:             10,
	}
}

// background emits steady two-tag docs so seeds exist.
func background(start time.Time, hours, perHour int) []source.Document {
	var docs []source.Document
	id := 0
	for h := 0; h < hours; h++ {
		for i := 0; i < perHour; i++ {
			at := start.Add(time.Duration(h)*time.Hour + time.Duration(i)*time.Minute)
			tags := []string{"news", "politics"}
			if i%2 == 0 {
				tags = []string{"news", "sports"}
			}
			docs = append(docs, source.Document{
				Time: at, ID: ids("bg", &id), Tags: tags,
			})
		}
	}
	return docs
}

func ids(prefix string, n *int) string {
	*n++
	return prefix + "-" + time.Duration(*n).String()
}

func TestEngineDefaults(t *testing.T) {
	e := New(Config{})
	cfg := e.Config()
	if cfg.WindowBuckets != 48 || cfg.TickEvery != time.Hour ||
		cfg.SeedCount != 50 || cfg.TopK != 20 {
		t.Errorf("defaults = %+v", cfg)
	}
}

func TestEngineSeedBootstrap(t *testing.T) {
	e := New(testConfig())
	docs := background(t0, 1, 30)
	for i := range docs {
		e.Consume(docs[i].Item())
	}
	if len(e.Seeds()) == 0 {
		t.Error("seed set empty after warmup docs")
	}
	if e.DocsProcessed() != int64(len(docs)) {
		t.Errorf("DocsProcessed = %d, want %d", e.DocsProcessed(), len(docs))
	}
}

func TestEngineDetectsInjectedShift(t *testing.T) {
	cfg := testConfig()
	e := New(cfg)
	stop := recordRankings(e)

	docs := background(t0, 10, 30)
	// Injected event in hour 6..8: "politics" (a seed) suddenly co-occurs
	// with fresh tag "scandal".
	id := 0
	for h := 6; h < 8; h++ {
		for i := 0; i < 10; i++ {
			docs = append(docs, source.Document{
				Time: t0.Add(time.Duration(h)*time.Hour + time.Duration(i*3)*time.Minute),
				ID:   ids("evt", &id),
				Tags: []string{"politics", "scandal"},
			})
		}
	}
	source.SortDocs(docs)
	feedDocs(e, docs)

	rankings := stop()
	if len(rankings) == 0 {
		t.Fatal("no rankings emitted")
	}
	want := pairs.MakeKey("politics", "scandal")
	found := false
	var firstAt time.Time
	for _, r := range rankings {
		for i, topic := range r.Topics {
			if topic.Pair == want && i < 3 {
				found = true
				if firstAt.IsZero() {
					firstAt = r.At
				}
			}
		}
	}
	if !found {
		t.Fatalf("injected pair never in top-3; last ranking: %+v",
			rankings[len(rankings)-1].Topics)
	}
	// Detection should come within ~2h of event start (hour 6).
	if lag := firstAt.Sub(t0.Add(6 * time.Hour)); lag > 2*time.Hour {
		t.Errorf("detection lag = %v, want <= 2h", lag)
	}
}

func TestEngineSteadyPairsScoreLow(t *testing.T) {
	e := New(testConfig())
	feedDocs(e, background(t0, 12, 30))
	r := e.CurrentRanking()
	// The steady background pairs may appear (warm-up transient) but their
	// scores must have decayed low by stream end.
	for _, topic := range r.Topics {
		if topic.Score > 0.3 {
			t.Errorf("steady pair %v scored %v, want < 0.3", topic.Pair, topic.Score)
		}
	}
}

func TestEngineRankingIDsAndOrder(t *testing.T) {
	e := New(testConfig())
	docs := background(t0, 8, 30)
	id := 0
	for i := 0; i < 12; i++ {
		docs = append(docs, source.Document{
			Time: t0.Add(5*time.Hour + time.Duration(i*5)*time.Minute),
			ID:   ids("e", &id),
			Tags: []string{"news", "eruption"},
		})
	}
	source.SortDocs(docs)
	feedDocs(e, docs)
	r := e.CurrentRanking()
	if len(r.Topics) == 0 {
		t.Fatal("empty ranking")
	}
	ids := r.IDs()
	if len(ids) != len(r.Topics) {
		t.Fatal("IDs length mismatch")
	}
	for i := 1; i < len(r.Topics); i++ {
		if r.Topics[i].Score > r.Topics[i-1].Score {
			t.Errorf("ranking not descending at %d", i)
		}
	}
}

func TestEngineTickFastForwardOnGap(t *testing.T) {
	cfg := testConfig()
	e := New(cfg)
	stop := recordRankings(e)
	e.Consume(&stream.Item{Time: t0, DocID: "a", Tags: []string{"x", "y"}})
	// A year-long gap must not fire thousands of hourly ticks.
	e.Consume(&stream.Item{Time: t0.Add(365 * 24 * time.Hour), DocID: "b", Tags: []string{"x", "y"}})
	if ticks := len(stop()); ticks > 5 {
		t.Errorf("gap fired %d ticks, want fast-forward", ticks)
	}
}

func TestEngineNilItem(t *testing.T) {
	e := New(testConfig())
	e.Consume(nil) // must not panic
	if e.DocsProcessed() != 0 {
		t.Error("nil item counted")
	}
}

func TestEngineWithEntities(t *testing.T) {
	g, o := entity.Sample()
	cfg := testConfig()
	cfg.UseEntities = true
	cfg.Tagger = entity.NewTagger(g, o)
	cfg.SeedWarmupDocs = 10
	cfg.SeedCount = 20
	e := New(cfg)

	var docs []source.Document
	id := 0
	// Background: generic chatter mentioning Iceland steadily.
	for h := 0; h < 10; h++ {
		for i := 0; i < 12; i++ {
			docs = append(docs, source.Document{
				Time: t0.Add(time.Duration(h)*time.Hour + time.Duration(i*5)*time.Minute),
				ID:   ids("t", &id),
				Tags: []string{"travel"},
				Text: "visiting Iceland this summer",
			})
		}
	}
	// Event: volcano entity suddenly co-mentioned with travel tag.
	for i := 0; i < 10; i++ {
		docs = append(docs, source.Document{
			Time: t0.Add(7*time.Hour + time.Duration(i*6)*time.Minute),
			ID:   ids("v", &id),
			Tags: []string{"travel"},
			Text: "Eyjafjallajokull eruption disrupts travel across Iceland",
		})
	}
	source.SortDocs(docs)
	feedDocs(e, docs)
	r := e.CurrentRanking()
	found := false
	for _, topic := range r.Topics {
		if topic.Pair.Contains("eyjafjallajökull") {
			found = true
		}
	}
	if !found {
		t.Errorf("entity-based topic missing from ranking: %+v", r.Topics)
	}
}

func TestEngineAsPlanSink(t *testing.T) {
	// The engine must work as a sink in a multi-plan runner with a shared
	// prefix — two engines with different measures over one source.
	e1 := New(testConfig())
	cfg2 := testConfig()
	cfg2.Measure = pairs.Cosine
	e2 := New(cfg2)

	docs := background(t0, 6, 30)
	items := make(stream.SliceSource, len(docs))
	for i := range docs {
		items[i] = docs[i].Item()
	}
	r := stream.NewRunner(items)
	r.Add(&stream.Plan{
		Name:   "jaccard",
		Stages: []stream.Stage{stream.Shared("tee", func() stream.Operator { return &stream.Tee{} })},
		Sink:   e1,
	})
	r.Add(&stream.Plan{
		Name:   "cosine",
		Stages: []stream.Stage{stream.Shared("tee", func() stream.Operator { return &stream.Tee{} })},
		Sink:   e2,
	})
	if err := r.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if e1.DocsProcessed() != e2.DocsProcessed() || e1.DocsProcessed() == 0 {
		t.Errorf("engines saw %d/%d docs", e1.DocsProcessed(), e2.DocsProcessed())
	}
	// Flush propagated: both have rankings.
	if e1.CurrentRanking().At.IsZero() || e2.CurrentRanking().At.IsZero() {
		t.Error("flush did not produce final rankings")
	}
}

func TestEngineSeedCriterionVolatility(t *testing.T) {
	cfg := testConfig()
	cfg.SeedCriterion = tagstats.ByVolatility
	e := New(cfg)
	feedDocs(e, background(t0, 6, 30))
	// Smoke: volatility criterion must not break ticking.
	if e.CurrentRanking().At.IsZero() {
		t.Error("no ranking under volatility criterion")
	}
}

func TestEngineArchiveEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("archive end-to-end in short mode")
	}
	events := source.HistoricEvents(t0)
	docs := source.GenerateArchive(source.ArchiveConfig{
		Seed: 42, Start: t0, Days: 25, DocsPerDay: 240, Events: events,
	})
	cfg := Config{
		WindowBuckets:    48,
		WindowResolution: time.Hour,
		TickEvery:        2 * time.Hour,
		SeedCount:        40,
		SeedMinCount:     3,
		Predictor:        predict.KindMovingAverage,
		PredictorConfig:  predict.Config{Window: 6},
		MinCooccurrence:  3,
		TopK:             15,
	}
	truth := source.TruthPairs(events)
	e := New(cfg)
	stop := recordRankings(e)
	feedDocs(e, docs)

	firstSeen := map[pairs.Key]time.Time{}
	for _, r := range stop() {
		for _, topic := range r.Topics {
			if truth[topic.Pair] {
				if _, ok := firstSeen[topic.Pair]; !ok {
					firstSeen[topic.Pair] = r.At
				}
			}
		}
	}

	for _, ev := range events {
		at, ok := firstSeen[ev.Pair()]
		if !ok {
			t.Errorf("event %s (%v) never entered top-k", ev.Name, ev.Pair())
			continue
		}
		lag := at.Sub(ev.Start)
		if lag > 12*time.Hour {
			t.Errorf("event %s detected %v after start, want <= 12h", ev.Name, lag)
		}
	}
}

func BenchmarkEngineConsume(b *testing.B) {
	docs := source.GenerateArchive(source.ArchiveConfig{
		Seed: 1, Start: t0, Days: 10, DocsPerDay: 500,
	})
	items := make([]*stream.Item, len(docs))
	for i := range docs {
		items[i] = docs[i].Item()
	}
	e := New(Config{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Consume(items[i%len(items)])
	}
}
