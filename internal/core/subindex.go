package core

// This file implements the broker's subscription index: the data structures
// that turn per-tick fan-out from O(subscribers) into O(subscribers whose
// predicates reference a tag that actually moved).
//
// Each predicated subscription compiles its options once, at Subscribe
// time, into a flat matcher struct over interned uint32 tag IDs — the
// compile-once/evaluate-cheap shape of a plan cache for standing queries.
// The matchers are indexed invertedly: tag ID → posting set of interested
// subscriptions, plus a wildcard set for predicates with no tag constraint
// (min-score or emergence-only alone) and a full set for unpredicated
// subscriptions. A tick's dispatch then diffs the new ranking against the
// previous one, looks up only the moved tags' postings, and leaves every
// other predicated subscription untouched — zero work, zero allocations.
//
// Tag IDs are resolved through intern.Find, never intern.Intern: ID
// assignment stays an ingest-path-only event (the property DESIGN.md §6
// relies on), so a subscription naming a tag the stream has not produced
// yet parks the tag in a pending set. Pending tags are re-resolved at
// dispatch time, and only when the intern table has actually grown since
// the last attempt — a subscription to a tag that never appears costs one
// table-length check per tick, not a lookup.

import (
	"sync"

	"enblogue/internal/intern"
	"enblogue/internal/pairs"
	"enblogue/internal/shift"
)

// matcher is one subscription's compiled predicate: tag constraints as
// interned IDs, the score floor, and the emergence-only flag. It is built
// once at Subscribe time and never reallocated; the only post-compile
// mutation is pending-tag resolution, performed under the index lock and
// only ever by the dispatcher.
type matcher struct {
	// any matches topics containing at least one of these tag IDs.
	any []uint32
	// all matches only topics containing every one of these tag IDs (a
	// topic is a pair, so more than two all-tags can never match).
	all []uint32
	// pendingAny/pendingAll hold predicate tags the stream has not
	// interned yet. They cannot match anything until resolved — a tag
	// with no ID has never been part of a candidate pair.
	pendingAny []string
	pendingAll []string
	// minScore suppresses topics scoring below it (0 = no floor).
	minScore float64
	// emergenceOnly delivers only topics newly entering the filtered
	// view, and skips ticks where nothing new entered.
	emergenceOnly bool
}

// compileMatcher builds the flat matcher for a subscription's predicate
// options, or returns nil when the subscription carries no predicate at
// all (a full subscription: every tick, whole ranking).
func compileMatcher(cfg *subConfig) *matcher {
	if len(cfg.anyTags) == 0 && len(cfg.allTags) == 0 &&
		cfg.minScore <= 0 && !cfg.emergenceOnly {
		return nil
	}
	m := &matcher{emergenceOnly: cfg.emergenceOnly}
	if cfg.minScore > 0 {
		m.minScore = cfg.minScore
	}
	m.any, m.pendingAny = resolveTags(cfg.anyTags)
	m.all, m.pendingAll = resolveTags(cfg.allTags)
	return m
}

// resolveTags splits a deduplicated tag list into already-interned IDs and
// pending strings, through intern.Find only — compiling a predicate must
// never assign IDs (see the package comment above).
func resolveTags(tags []string) (ids []uint32, pending []string) {
	for i, tag := range tags {
		if tag == "" || containsString(tags[:i], tag) {
			continue
		}
		if id, ok := intern.Find(tag); ok {
			ids = append(ids, id)
		} else {
			pending = append(pending, tag)
		}
	}
	return ids, pending
}

func containsString(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}

func containsID(list []uint32, id uint32) bool {
	for _, v := range list {
		if v == id {
			return true
		}
	}
	return false
}

// tagged reports whether the matcher has any tag constraint, resolved or
// pending. Untagged matchers live in the index's wildcard set.
func (m *matcher) tagged() bool {
	return len(m.any)+len(m.all)+len(m.pendingAny)+len(m.pendingAll) > 0
}

// matches evaluates the compiled predicate against one topic. It is
// allocation-free: two ID extractions and a few linear scans over tiny
// slices.
func (m *matcher) matches(t *shift.Topic) bool {
	if t.Score < m.minScore {
		return false
	}
	if len(m.pendingAll) > 0 {
		// A required tag was never interned, so no pair can contain it.
		return false
	}
	a, b := t.Pair.IDs()
	for _, id := range m.all {
		if id != a && id != b {
			return false
		}
	}
	if len(m.any)+len(m.pendingAny) > 0 {
		ok := false
		for _, id := range m.any {
			if id == a || id == b {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// resolve migrates tag from the matcher's pending sets to its ID sets.
// Reports whether the matcher referenced the tag at all. Called only under
// the index lock.
func (m *matcher) resolve(tag string, id uint32) bool {
	found := false
	if i := indexOfString(m.pendingAny, tag); i >= 0 {
		m.pendingAny = append(m.pendingAny[:i], m.pendingAny[i+1:]...)
		if !containsID(m.any, id) {
			m.any = append(m.any, id)
		}
		found = true
	}
	if i := indexOfString(m.pendingAll, tag); i >= 0 {
		m.pendingAll = append(m.pendingAll[:i], m.pendingAll[i+1:]...)
		if !containsID(m.all, id) {
			m.all = append(m.all, id)
		}
		found = true
	}
	return found
}

func indexOfString(list []string, s string) int {
	for i, v := range list {
		if v == s {
			return i
		}
	}
	return -1
}

// topicMark is the identity dispatch uses to decide whether a topic
// "moved" between ticks: the pair plus its score. Diagnostics
// (correlation, the evaluation timestamp) change every tick by
// construction and deliberately do not participate — a topic whose pair
// and score are both unchanged is the same topic, and a subscriber whose
// view consists only of such topics has seen everything already.
type topicMark struct {
	key   pairs.Key
	score float64
}

// appendMarks renders topics into dst as (pair, score) marks, reusing
// dst's capacity.
func appendMarks(dst []topicMark, topics []shift.Topic) []topicMark {
	for i := range topics {
		dst = append(dst, topicMark{key: topics[i].Pair, score: topics[i].Score})
	}
	return dst
}

// marksEqual reports whether topics renders to exactly marks, in order.
func marksEqual(marks []topicMark, topics []shift.Topic) bool {
	if len(marks) != len(topics) {
		return false
	}
	for i := range topics {
		if marks[i].key != topics[i].Pair || marks[i].score != topics[i].Score {
			return false
		}
	}
	return true
}

// markScore returns the score recorded for key in marks, if present.
func markScore(marks []topicMark, key pairs.Key) (float64, bool) {
	for _, m := range marks {
		if m.key == key {
			return m.score, true
		}
	}
	return 0, false
}

// subIndex is the inverted subscription index. It is guarded by its own
// lock class, nested inside the broker's subscription lock (Subscribe and
// Close register/deregister while holding broker.mu) and outside the
// interner's (pending resolution calls intern.Find).
type subIndex struct {
	// mu guards every field below, plus each indexed subscription's
	// touched/indexed fields and (for pending resolution) its matcher.
	//
	//enblogue:lock subidx 33
	mu sync.Mutex

	// byTag maps an interned tag ID to the set of subscriptions whose
	// predicates reference it, keyed by subscription ID for O(1) removal.
	byTag map[uint32]map[uint64]*Subscription
	// wildcard holds predicated subscriptions with no tag constraint
	// (min-score and/or emergence-only alone): they are candidates on any
	// tick whose ranking changed at all.
	wildcard map[uint64]*Subscription
	// full holds unpredicated subscriptions: every tick, whole ranking.
	full map[uint64]*Subscription
	// pending maps not-yet-interned predicate tags to the subscriptions
	// waiting on them.
	pending map[string][]*Subscription
	// fresh holds predicated subscriptions that have not been through a
	// dispatch yet: their first tick force-evaluates them even if nothing
	// moved, so a subscriber to an already-stable tag still receives its
	// initial view.
	fresh []*Subscription
	// internLen is the intern-table length pending was last resolved
	// against; resolution is skipped while the table has not grown.
	internLen int
}

func newSubIndex() *subIndex {
	return &subIndex{
		byTag:    make(map[uint32]map[uint64]*Subscription),
		wildcard: make(map[uint64]*Subscription),
		full:     make(map[uint64]*Subscription),
		pending:  make(map[string][]*Subscription),
	}
}

// add registers a subscription under every tag its compiled matcher
// references (or the wildcard/full sets). Called with broker.mu held.
//
//enblogue:acquires subidx
func (ix *subIndex) add(s *Subscription) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	s.indexed = true
	m := s.m
	if m == nil {
		ix.full[s.id] = s
		return
	}
	if !m.tagged() {
		ix.wildcard[s.id] = s
	}
	for _, id := range m.any {
		ix.addPosting(id, s)
	}
	for _, id := range m.all {
		ix.addPosting(id, s)
	}
	for _, tag := range m.pendingAny {
		ix.pending[tag] = append(ix.pending[tag], s)
	}
	for _, tag := range m.pendingAll {
		if !containsString(m.pendingAny, tag) {
			ix.pending[tag] = append(ix.pending[tag], s)
		}
	}
	if len(m.pendingAny)+len(m.pendingAll) > 0 {
		// Force the next resolution pass: the tag may have been interned
		// between matcher compilation and this registration, in which case
		// the table-length short-circuit would otherwise skip it forever.
		ix.internLen = -1
	}
	ix.fresh = append(ix.fresh, s)
}

func (ix *subIndex) addPosting(id uint32, s *Subscription) {
	posting := ix.byTag[id]
	if posting == nil {
		posting = make(map[uint64]*Subscription)
		ix.byTag[id] = posting
	}
	posting[s.id] = s
}

// remove deregisters a subscription from every structure referencing it.
// Called with broker.mu held; idempotent.
//
//enblogue:acquires subidx
func (ix *subIndex) remove(s *Subscription) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if !s.indexed {
		return
	}
	s.indexed = false
	m := s.m
	if m == nil {
		delete(ix.full, s.id)
		return
	}
	delete(ix.wildcard, s.id)
	for _, id := range m.any {
		ix.dropPosting(id, s)
	}
	for _, id := range m.all {
		ix.dropPosting(id, s)
	}
	for _, tag := range m.pendingAny {
		ix.dropPending(tag, s)
	}
	for _, tag := range m.pendingAll {
		ix.dropPending(tag, s)
	}
}

func (ix *subIndex) dropPosting(id uint32, s *Subscription) {
	if posting := ix.byTag[id]; posting != nil {
		delete(posting, s.id)
		if len(posting) == 0 {
			delete(ix.byTag, id)
		}
	}
}

func (ix *subIndex) dropPending(tag string, s *Subscription) {
	list := ix.pending[tag]
	for i, v := range list {
		if v == s {
			list[i] = list[len(list)-1]
			list[len(list)-1] = nil
			ix.pending[tag] = list[:len(list)-1]
			break
		}
	}
	if len(ix.pending[tag]) == 0 {
		delete(ix.pending, tag)
	}
}

// resolveLocked re-resolves pending predicate tags against the intern
// table, migrating hits into posting lists. Skipped entirely while the
// table has not grown since the last attempt.
//
//enblogue:requires subidx
func (ix *subIndex) resolveLocked() {
	if len(ix.pending) == 0 {
		return
	}
	n := intern.Tags.Len()
	if n == ix.internLen {
		return
	}
	ix.internLen = n
	//enblogue:unordered pending-tag resolution: each tag migrates independently into its own posting list, so resolution order between distinct tags is immaterial
	for tag, subs := range ix.pending {
		id, ok := intern.Find(tag)
		if !ok {
			continue
		}
		for _, s := range subs {
			if s.m.resolve(tag, id) && s.indexed {
				ix.addPosting(id, s)
			}
		}
		delete(ix.pending, tag)
	}
}

// collect appends the tick's candidate predicated subscriptions to buf:
// every fresh subscription, plus — when the ranking changed at all — the
// wildcard set and the posting list of every moved tag. Deduplication is
// by stamping each subscription's touched field with the dispatch
// sequence, so a subscription indexed under several moved tags is
// evaluated once. Untouched subscriptions are never visited at all.
//
//enblogue:acquires subidx
func (ix *subIndex) collect(moved []uint32, changed bool, seq uint64, buf []*Subscription) []*Subscription {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.resolveLocked()
	take := func(s *Subscription) {
		if s.touched != seq {
			s.touched = seq
			buf = append(buf, s)
		}
	}
	for _, s := range ix.fresh {
		if s.indexed {
			take(s)
		}
	}
	clear(ix.fresh)
	ix.fresh = ix.fresh[:0]
	if changed {
		//enblogue:unordered wildcard candidates: each subscription is evaluated independently against the same ranking, so collection order is immaterial
		for _, s := range ix.wildcard {
			take(s)
		}
		for _, id := range moved {
			//enblogue:unordered posting-list candidates: each subscription is evaluated independently against the same ranking, so collection order is immaterial
			for _, s := range ix.byTag[id] {
				take(s)
			}
		}
	}
	return buf
}

// fullInto appends every unpredicated subscription to buf.
//
//enblogue:acquires subidx
func (ix *subIndex) fullInto(buf []*Subscription) []*Subscription {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	//enblogue:unordered full-subscription collection: each subscription receives on its own channel, so order between subscribers is immaterial
	for _, s := range ix.full {
		buf = append(buf, s)
	}
	return buf
}

// tagCount returns the number of distinct interned tags with at least one
// interested subscription.
//
//enblogue:acquires subidx
func (ix *subIndex) tagCount() int {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	return len(ix.byTag)
}

// reset drops every index structure; used by broker.close so a closed
// engine retains no subscription state.
//
//enblogue:acquires subidx
func (ix *subIndex) reset() {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	clear(ix.byTag)
	clear(ix.wildcard)
	clear(ix.full)
	clear(ix.pending)
	clear(ix.fresh)
	ix.fresh = ix.fresh[:0]
}
