package core

import (
	"reflect"
	"runtime"
	"testing"
	"time"

	"enblogue/internal/shift"
)

// normalize must repair every nonsensical setting: a config assembled from
// hostile or buggy options can never build a wedged engine.
func TestConfigNormalizeRepairsNonsense(t *testing.T) {
	hostile := Config{
		WindowBuckets:    -3,
		WindowResolution: -time.Minute,
		TickEvery:        -time.Hour,
		SeedCount:        -1,
		SeedMinCount:     -5,
		SeedWarmupDocs:   -10,
		MaxPairs:         -100,
		Shards:           -2,
		HalfLife:         -time.Hour,
		MinCooccurrence:  -1,
		TopK:             0,
	}
	c := hostile.normalize()
	if c.WindowBuckets != 48 || c.WindowResolution != time.Hour {
		t.Errorf("window = %d × %v, want 48 × 1h", c.WindowBuckets, c.WindowResolution)
	}
	if c.TickEvery != c.WindowResolution {
		t.Errorf("TickEvery = %v, want one resolution", c.TickEvery)
	}
	if c.SeedCount != 50 || c.SeedMinCount != 3 || c.SeedWarmupDocs != 100 {
		t.Errorf("seeds = (%d, %v, %d), want (50, 3, 100)",
			c.SeedCount, c.SeedMinCount, c.SeedWarmupDocs)
	}
	if c.MaxPairs != 100000 {
		t.Errorf("MaxPairs = %d, want 100000", c.MaxPairs)
	}
	if c.Shards != runtime.GOMAXPROCS(0) {
		t.Errorf("Shards = %d, want GOMAXPROCS", c.Shards)
	}
	if c.HalfLife != shift.DefaultHalfLife {
		t.Errorf("HalfLife = %v, want default", c.HalfLife)
	}
	if c.MinCooccurrence != 2 || c.TopK != 20 {
		t.Errorf("(MinCooccurrence, TopK) = (%v, %d), want (2, 20)",
			c.MinCooccurrence, c.TopK)
	}
}

// A pair budget below the seed-set size would let the eviction loop purge
// every candidate the moment it is tracked; normalize clamps it up.
func TestConfigNormalizeClampsMaxPairsToSeedCount(t *testing.T) {
	c := Config{SeedCount: 500, MaxPairs: 7}.normalize()
	if c.MaxPairs != 500 {
		t.Errorf("MaxPairs = %d, want clamped to SeedCount 500", c.MaxPairs)
	}
	// Sane configs pass through untouched.
	c = Config{SeedCount: 10, MaxPairs: 5000}.normalize()
	if c.MaxPairs != 5000 || c.SeedCount != 10 {
		t.Errorf("sane config mangled: %+v", c)
	}
}

// The ingest-queue knobs clamp like every other setting: zero-ish values
// take the documented defaults, and the batch cap can never exceed the
// ring capacity (a drain would otherwise never fill a batch).
func TestConfigNormalizeClampsIngestKnobs(t *testing.T) {
	c := Config{
		IngestQueueSize:     -1,
		IngestMaxBatch:      0,
		IngestFlushInterval: -time.Second,
	}.normalize()
	if c.IngestQueueSize != 8192 {
		t.Errorf("IngestQueueSize = %d, want default 8192", c.IngestQueueSize)
	}
	if c.IngestMaxBatch != 512 {
		t.Errorf("IngestMaxBatch = %d, want default 512", c.IngestMaxBatch)
	}
	if c.IngestFlushInterval != 2*time.Millisecond {
		t.Errorf("IngestFlushInterval = %v, want default 2ms", c.IngestFlushInterval)
	}
	if c.IngestDropOldest {
		t.Error("IngestDropOldest defaulted to true, want false (block)")
	}
	// A batch cap above the ring capacity is clamped down, not up.
	c = Config{IngestQueueSize: 16, IngestMaxBatch: 1000}.normalize()
	if c.IngestMaxBatch != 16 {
		t.Errorf("IngestMaxBatch = %d, want clamped to queue size 16", c.IngestMaxBatch)
	}
	// Explicit sane values pass through.
	c = Config{
		IngestQueueSize:     100,
		IngestMaxBatch:      25,
		IngestFlushInterval: time.Millisecond,
		IngestDropOldest:    true,
	}.normalize()
	if c.IngestQueueSize != 100 || c.IngestMaxBatch != 25 ||
		c.IngestFlushInterval != time.Millisecond || !c.IngestDropOldest {
		t.Errorf("sane ingest knobs mangled: %+v", c)
	}
}

// Normalization is idempotent and New always builds from a normalized
// config, so even a hostile config yields a ticking engine.
func TestConfigNormalizeIdempotentAndUsable(t *testing.T) {
	c := Config{TopK: -9, Shards: -1, MaxPairs: 1, SeedCount: 30}.normalize()
	if c2 := c.normalize(); !reflect.DeepEqual(c2, c) {
		t.Errorf("normalize not idempotent: %+v vs %+v", c2, c)
	}
	e := New(Config{TopK: -9, Shards: -1, MaxPairs: 1, SeedCount: 30})
	defer e.Close()
	if e.Config().TopK != 20 || e.Config().MaxPairs != 30 || e.Shards() < 1 {
		t.Errorf("engine built from un-normalized config: %+v", e.Config())
	}
}
