package core

import (
	"sync"
	"time"

	"enblogue/internal/pairs"
	"enblogue/internal/shift"
)

// Notification is one delivered tick as a subscription sees it: the
// topics that matched (for a predicated subscription) or the whole
// broadcast ranking (for a full one), plus the delta that caused the
// delivery. It replaces the old per-tick eager Ranking clone with a
// copy-on-read view: dispatch hands every full subscriber the same
// shared, read-only topic slice, and the defensive copy the old broker
// paid for up front is now materialised lazily, once, on the first
// Ranking/Topics/Seeds call — a subscriber that drops or skims a
// notification never pays for a clone at all.
type Notification struct {
	at    time.Time
	seeds []string // shared with the engine's ranking; read-only
	// topics is shared with the engine's ranking for unpredicated
	// subscriptions (owned=false) and owned by this notification for
	// filtered/persona views (owned=true).
	topics []shift.Topic
	owned  bool
	// entered/left hold the delta that triggered this delivery: the
	// tick-level broadcast delta for a full subscription (possibly shared
	// with sibling full subscribers), or this subscription's own
	// filtered-view delta for a predicated one. Read-only; accessors copy.
	entered []pairs.Key
	left    []pairs.Key

	cloneOnce sync.Once
	clone     Ranking
}

// At returns the tick's evaluation time.
func (n *Notification) At() time.Time { return n.at }

// Ranking materialises this notification's full view as a Ranking. The
// copy is made on the first call and cached: every later call (and
// Topics/Seeds) returns the same backing slices, so treat the result as
// read-only — or copy it — if you call Ranking more than once. For a
// predicated subscription the ranking holds only the matched topics (or,
// under emergence-only, only the newly entered ones).
func (n *Notification) Ranking() Ranking {
	n.cloneOnce.Do(func() {
		r := Ranking{At: n.at, Seeds: append([]string(nil), n.seeds...)}
		if n.owned {
			r.Topics = n.topics
		} else if n.topics != nil {
			r.Topics = append([]shift.Topic(nil), n.topics...)
		}
		n.clone = r
	})
	return n.clone
}

// Topics returns the notification's topic view (see Ranking for
// materialisation and ownership semantics).
func (n *Notification) Topics() []shift.Topic { return n.Ranking().Topics }

// Seeds returns the seed tags active at the tick (see Ranking for
// materialisation and ownership semantics).
func (n *Notification) Seeds() []string { return n.Ranking().Seeds }

// Entered returns the pairs that entered the view relative to the
// previous delivery: the broadcast ranking's entrants for a full
// subscription, this subscription's filtered-view entrants for a
// predicated one. The caller owns the returned slice.
func (n *Notification) Entered() []pairs.Key {
	if len(n.entered) == 0 {
		return nil
	}
	return append([]pairs.Key(nil), n.entered...)
}

// Left returns the pairs that left the view relative to the previous
// delivery (see Entered for scope). The caller owns the returned slice.
func (n *Notification) Left() []pairs.Key {
	if len(n.left) == 0 {
		return nil
	}
	return append([]pairs.Key(nil), n.left...)
}
