package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"enblogue/internal/pairs"
	"enblogue/internal/source"
	"enblogue/internal/stream"
)

// determinismStream is a fixed replay workload with background chatter,
// an injected shift, and enough tag cardinality to spread across shards.
func determinismStream() []source.Document {
	docs := background(t0, 12, 40)
	id := 0
	for h := 5; h < 8; h++ {
		for i := 0; i < 12; i++ {
			docs = append(docs, source.Document{
				Time: t0.Add(time.Duration(h)*time.Hour + time.Duration(i*4)*time.Minute),
				ID:   ids("det", &id),
				Tags: []string{"politics", fmt.Sprintf("scandal%d", i%3)},
			})
		}
	}
	for h := 0; h < 12; h++ {
		for i := 0; i < 15; i++ {
			docs = append(docs, source.Document{
				Time: t0.Add(time.Duration(h)*time.Hour + time.Duration(i*4+1)*time.Minute),
				ID:   ids("mix", &id),
				Tags: []string{"news", fmt.Sprintf("region%d", (h+i)%9)},
			})
		}
	}
	source.SortDocs(docs)
	return docs
}

func rankingsEqual(t *testing.T, label string, a, b []Ranking) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d rankings vs %d", label, len(a), len(b))
	}
	for i := range a {
		ra, rb := a[i], b[i]
		if !ra.At.Equal(rb.At) {
			t.Fatalf("%s: tick %d at %v vs %v", label, i, ra.At, rb.At)
		}
		if len(ra.Seeds) != len(rb.Seeds) {
			t.Fatalf("%s: tick %d seed count %d vs %d", label, i, len(ra.Seeds), len(rb.Seeds))
		}
		for j := range ra.Seeds {
			if ra.Seeds[j] != rb.Seeds[j] {
				t.Fatalf("%s: tick %d seed %d: %q vs %q", label, i, j, ra.Seeds[j], rb.Seeds[j])
			}
		}
		if len(ra.Topics) != len(rb.Topics) {
			t.Fatalf("%s: tick %d topic count %d vs %d (a=%v b=%v)",
				label, i, len(ra.Topics), len(rb.Topics), ra.IDs(), rb.IDs())
		}
		for j := range ra.Topics {
			ta, tb := ra.Topics[j], rb.Topics[j]
			if ta.Pair != tb.Pair || ta.Score != tb.Score ||
				ta.Correlation != tb.Correlation || ta.Predicted != tb.Predicted ||
				ta.Error != tb.Error || ta.Cooccurrence != tb.Cooccurrence ||
				ta.Warmup != tb.Warmup {
				t.Fatalf("%s: tick %d rank %d differs:\n  a: %+v\n  b: %+v",
					label, i, j, ta, tb)
			}
		}
	}
}

// The sharded engine must emit rankings bit-identical to the serial
// (1-shard) engine on a fixed replay stream: same scores, same
// deterministic tie-break order, every tick.
func TestEngineShardedMatchesSerial(t *testing.T) {
	docs := determinismStream()
	run := func(shards int) []Ranking {
		cfg := testConfig()
		cfg.Shards = shards
		cfg.MaxPairs = 60 // small budget so eviction paths are exercised too
		e := New(cfg)
		stop := recordRankings(e)
		feedDocs(e, docs)
		return stop()
	}
	serial := run(1)
	if len(serial) == 0 {
		t.Fatal("serial engine emitted no rankings")
	}
	nonEmpty := false
	for _, r := range serial {
		if len(r.Topics) > 0 {
			nonEmpty = true
		}
	}
	if !nonEmpty {
		t.Fatal("serial engine emitted only empty rankings; workload too weak")
	}
	for _, shards := range []int{2, 4, 8} {
		rankingsEqual(t, fmt.Sprintf("shards-%d", shards), serial, run(shards))
	}
}

// Distribution mode must be shard-count independent too.
func TestEngineShardedMatchesSerialDistMode(t *testing.T) {
	docs := determinismStream()
	run := func(shards int) []Ranking {
		cfg := testConfig()
		cfg.Shards = shards
		cfg.DistributionMode = true
		e := New(cfg)
		stop := recordRankings(e)
		feedDocs(e, docs)
		return stop()
	}
	serial := run(1)
	rankingsEqual(t, "dist-shards-4", serial, run(4))
}

// One goroutine hammers Consume while others call Tick, CurrentRanking,
// Seeds, ActivePairs, and ExpandTopic — the live-server pattern. Run under
// -race; the assertions are liveness/sanity, the race detector is the test.
func TestEngineConcurrentConsumeAndTick(t *testing.T) {
	cfg := testConfig()
	cfg.Shards = 4
	e := New(cfg)

	docs := determinismStream()
	items := make([]*stream.Item, len(docs))
	for i := range docs {
		items[i] = docs[i].Item()
	}

	var stop atomic.Bool
	var wg sync.WaitGroup

	wg.Add(1)
	go func() {
		defer wg.Done()
		for i, it := range items {
			e.Consume(it)
			if i%100 == 0 && stop.Load() {
				return
			}
		}
	}()

	// Wall-clock ticker: force evaluations at the engine's event clock.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			if at := e.LastEventTime(); !at.IsZero() {
				// Tick ignores times at or before the newest evaluation, so
				// the returned ranking is at >= the requested time, never
				// rewound behind it.
				r := e.Tick(at)
				if r.At.Before(at) {
					t.Errorf("Tick returned ranking at %v, before requested %v", r.At, at)
					return
				}
			}
		}
	}()

	// Readers.
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				r := e.CurrentRanking()
				for i := 1; i < len(r.Topics); i++ {
					if r.Topics[i].Score > r.Topics[i-1].Score {
						t.Error("published ranking not sorted")
						return
					}
				}
				e.Seeds()
				e.ActivePairs()
				e.DocsProcessed()
				if len(r.Topics) > 0 {
					e.ExpandTopic(r.Topics[0].Pair, 2)
				}
			}
		}()
	}

	done := make(chan struct{})
	go func() {
		time.Sleep(2 * time.Second)
		close(done)
	}()
	<-done
	stop.Store(true)
	wg.Wait()

	if e.DocsProcessed() == 0 {
		t.Error("no documents consumed")
	}
	if e.CurrentRanking().At.IsZero() {
		t.Error("no ranking produced under concurrency")
	}
}

// Multiple producers must be able to Consume concurrently without racing;
// totals must be conserved.
func TestEngineConcurrentProducers(t *testing.T) {
	cfg := testConfig()
	cfg.Shards = 4
	e := New(cfg)
	docs := determinismStream()
	const workers = 4
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(docs); i += workers {
				e.Consume(docs[i].Item())
			}
		}(w)
	}
	wg.Wait()
	e.Flush()
	if got := e.DocsProcessed(); got != int64(len(docs)) {
		t.Errorf("DocsProcessed = %d, want %d", got, len(docs))
	}
	if e.CurrentRanking().At.IsZero() {
		t.Error("no final ranking after concurrent ingest")
	}
}

// Sanity: the shard assignment the engine uses agrees between tracker and
// detector layers (a pair evaluated on worker i must own detector state on
// shard i).
func TestEngineShardAgreement(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8} {
		k := pairs.MakeKey("volcano", "airtraffic")
		if s := k.Shard(n); s < 0 || s >= n {
			t.Fatalf("Shard(%d) = %d out of range", n, s)
		}
	}
	e := New(Config{Shards: 3})
	if e.Shards() != 3 {
		t.Errorf("Shards() = %d, want 3", e.Shards())
	}
}
