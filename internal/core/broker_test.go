package core

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"enblogue/internal/pairs"
	"enblogue/internal/persona"
	"enblogue/internal/source"
)

// brokerStream is a small workload with enough ticks and topics for
// subscription tests.
func brokerStream() []source.Document {
	docs := background(t0, 8, 30)
	id := 0
	for h := 4; h < 7; h++ {
		for i := 0; i < 10; i++ {
			docs = append(docs, source.Document{
				Time: t0.Add(time.Duration(h)*time.Hour + time.Duration(i*5)*time.Minute),
				ID:   ids("ev", &id),
				Tags: []string{"politics", "scandal"},
			})
		}
	}
	source.SortDocs(docs)
	return docs
}

// The broadcast subscription must deliver every tick, in order, and its
// final ranking must be bit-identical to CurrentRanking — for every shard
// count.
func TestBrokerBroadcastMatchesCurrentRanking(t *testing.T) {
	docs := brokerStream()
	var reference []Ranking
	for _, shards := range []int{1, 2, 4, 8} {
		cfg := testConfig()
		cfg.Shards = shards
		e := New(cfg)
		sub := e.Subscribe(context.Background(), SubBuffer(1024))
		feedDocs(e, docs)
		e.Close()

		var got []Ranking
		for rn := range sub.Notifications() {
			r := rn.Ranking()
			got = append(got, r)
		}
		if len(got) == 0 {
			t.Fatalf("shards=%d: no rankings delivered", shards)
		}
		if d := sub.Dropped(); d != 0 {
			t.Fatalf("shards=%d: %d rankings dropped with a huge buffer", shards, d)
		}
		cur := e.CurrentRanking()
		rankingsEqual(t, fmt.Sprintf("shards-%d broadcast-vs-current", shards),
			[]Ranking{got[len(got)-1]}, []Ranking{cur})
		if reference == nil {
			reference = got
		} else {
			rankingsEqual(t, fmt.Sprintf("shards-%d broadcast-vs-serial", shards), reference, got)
		}
	}
}

// Many subscribers — some with personas — consume concurrently while
// multiple producers ingest. Run under -race; assertions are sanity, the
// race detector is the real test.
func TestBrokerManyConcurrentSubscribersDuringIngest(t *testing.T) {
	cfg := testConfig()
	cfg.Shards = 4
	e := New(cfg)
	docs := brokerStream()

	const nSubs = 12
	var wg sync.WaitGroup
	received := make([]int, nSubs)
	for i := 0; i < nSubs; i++ {
		opts := []SubOption{SubBuffer(4)}
		if i%3 == 1 {
			opts = append(opts, SubProfile(&persona.Profile{
				Name: fmt.Sprintf("u%d", i), Keywords: []string{"scandal"},
			}))
		}
		if i%3 == 2 {
			opts = append(opts, SubTopK(3))
		}
		sub := e.Subscribe(context.Background(), opts...)
		wg.Add(1)
		go func(i int, sub *Subscription) {
			defer wg.Done()
			for rn := range sub.Notifications() {
				r := rn.Ranking()
				received[i]++
				for j := 1; j < len(r.Topics); j++ {
					if r.Topics[j].Score > r.Topics[j-1].Score {
						t.Errorf("sub %d: unsorted delivery", i)
						return
					}
				}
				if i%3 == 2 && len(r.Topics) > 3 {
					t.Errorf("sub %d: top-k not trimmed: %d topics", i, len(r.Topics))
					return
				}
				// Call back into the engine from the consumer side.
				e.CurrentRanking()
				e.Seeds()
			}
		}(i, sub)
	}

	const producers = 4
	var pw sync.WaitGroup
	for w := 0; w < producers; w++ {
		pw.Add(1)
		go func(w int) {
			defer pw.Done()
			for i := w; i < len(docs); i += producers {
				e.Consume(docs[i].Item())
			}
		}(w)
	}
	pw.Wait()
	e.Flush()
	e.Close()
	wg.Wait()

	for i, n := range received {
		if n == 0 {
			t.Errorf("subscriber %d received nothing", i)
		}
	}
	if e.Subscribers() != 0 {
		t.Errorf("Subscribers = %d after Close", e.Subscribers())
	}
}

// A slow subscriber must lose the oldest rankings first, with the drops
// observable, and still converge on the newest state.
func TestBrokerSlowSubscriberDropsOldest(t *testing.T) {
	e := New(testConfig())
	sub := e.Subscribe(context.Background(), SubBuffer(2))
	// Never consume while 30 hourly ticks fire.
	feedDocs(e, background(t0, 30, 25))
	e.Close()

	var got []Ranking
	for rn := range sub.Notifications() {
		r := rn.Ranking()
		got = append(got, r)
	}
	if len(got) != 2 {
		t.Fatalf("buffered %d rankings, want exactly the buffer size 2", len(got))
	}
	if sub.Dropped() == 0 {
		t.Fatal("drop counter stayed zero for a stalled subscriber")
	}
	if e.RankingsDropped() != sub.Dropped() {
		t.Errorf("engine total drops %d != subscription drops %d",
			e.RankingsDropped(), sub.Dropped())
	}
	// Drop-oldest: the retained frames are the newest, ending at the
	// engine's current state.
	cur := e.CurrentRanking()
	if !got[len(got)-1].At.Equal(cur.At) {
		t.Errorf("last buffered ranking at %v, current is %v", got[len(got)-1].At, cur.At)
	}
	if !got[0].At.Before(got[1].At) {
		t.Errorf("buffered rankings out of order: %v then %v", got[0].At, got[1].At)
	}
}

// Cancelling the subscription context must close the channel and detach
// the subscriber.
func TestBrokerContextCancellation(t *testing.T) {
	e := New(testConfig())
	ctx, cancel := context.WithCancel(context.Background())
	sub := e.Subscribe(ctx, SubBuffer(8))
	if e.Subscribers() != 1 {
		t.Fatalf("Subscribers = %d, want 1", e.Subscribers())
	}
	feedDocs(e, background(t0, 3, 25))
	cancel()
	// The channel closes once the cancellation goroutine runs; draining it
	// must terminate rather than block forever.
	deadline := time.After(5 * time.Second)
	for {
		select {
		case _, ok := <-sub.Notifications():
			if !ok {
				if e.Subscribers() != 0 {
					t.Errorf("Subscribers = %d after cancel", e.Subscribers())
				}
				return
			}
		case <-deadline:
			t.Fatal("subscription channel not closed after context cancel")
		}
	}
}

// A persona subscription's view must match persona.Rerank over the same
// broadcast topics: same pairs, same weighted scores, same order.
func TestBrokerPersonaViewMatchesRegistryRerank(t *testing.T) {
	profile := &persona.Profile{Name: "watcher", Keywords: []string{"scandal"}, Boost: 5}
	e := New(testConfig())
	sub := e.Subscribe(context.Background(), SubProfile(profile), SubBuffer(1024))
	feedDocs(e, brokerStream())
	e.Close()

	var last Ranking
	n := 0
	for rn := range sub.Notifications() {
		r := rn.Ranking()
		last = r
		n++
	}
	if n == 0 {
		t.Fatal("no personalized rankings delivered")
	}
	cur := e.CurrentRanking()
	var topics []persona.Topic
	for _, tp := range cur.Topics {
		topics = append(topics, persona.Topic{Pair: tp.Pair, Score: tp.Score})
	}
	want := persona.Rerank(topics, profile)
	if len(want) != len(last.Topics) {
		t.Fatalf("persona view has %d topics, registry rerank %d", len(last.Topics), len(want))
	}
	for i := range want {
		got := last.Topics[i]
		if got.Pair != want[i].Pair || got.Score != want[i].Score {
			t.Errorf("rank %d: broker (%v, %v) vs registry (%v, %v)",
				i, got.Pair, got.Score, want[i].Pair, want[i].Score)
		}
	}
	// The boost must actually have applied to matching topics.
	boosted := false
	for _, tp := range last.Topics {
		if profile.Matches(tp.Pair) > 0 {
			boosted = true
		}
	}
	if !boosted {
		t.Error("persona view contains no matching topic; workload too weak")
	}
}

// A subscription consumer runs on its own goroutine, outside every engine
// lock, so it may call back into the engine freely — the documented
// contrast with the old in-tick callback design.
func TestSubscriberMayReenterEngine(t *testing.T) {
	e := New(testConfig())
	sub := e.Subscribe(context.Background(), SubBuffer(1<<12))
	var seen []time.Time
	done := make(chan struct{})
	go func() {
		defer close(done)
		for rn := range sub.Notifications() {
			r := rn.Ranking()
			// Previously: deadlock (tick lock held). Now: consumer side.
			e.CurrentRanking()
			e.Seeds()
			e.ActivePairs()
			e.Tick(r.At) // no-op rewind, but takes the tick lock
			seen = append(seen, r.At)
		}
	}()
	feedDocs(e, background(t0, 4, 25))
	e.Flush()
	sub.Close()
	<-done
	if len(seen) == 0 {
		t.Fatal("subscription never fired")
	}
	for i := 1; i < len(seen); i++ {
		if !seen[i].After(seen[i-1]) {
			t.Errorf("deliveries out of tick order: %v then %v", seen[i-1], seen[i])
		}
	}
}

// Mutating a returned ranking must not corrupt the engine's stored state
// or sibling subscribers (defensive copies everywhere).
func TestRankingAccessorsReturnDefensiveCopies(t *testing.T) {
	e := New(testConfig())
	sub := e.Subscribe(context.Background(), SubBuffer(1024))
	feedDocs(e, brokerStream())
	e.Close()

	r1 := e.CurrentRanking()
	if len(r1.Topics) == 0 || len(r1.Seeds) == 0 {
		t.Fatal("workload produced no topics/seeds")
	}
	origPair := r1.Topics[0].Pair
	r1.Seeds[0] = "corrupted"
	r1.Topics[0].Score = -1
	r1.Topics[0].Pair = pairs.MakeKey("corrupted", "pair")

	r2 := e.CurrentRanking()
	if r2.Seeds[0] == "corrupted" || r2.Topics[0].Score == -1 || r2.Topics[0].Pair != origPair {
		t.Fatal("CurrentRanking aliases engine state")
	}
	seeds := e.Seeds()
	seeds[0] = "corrupted"
	if e.Seeds()[0] == "corrupted" {
		t.Fatal("Seeds aliases selector state")
	}

	// Subscriber frames are independent copies too.
	var last Ranking
	for rn := range sub.Notifications() {
		r := rn.Ranking()
		last = r
	}
	last.Topics[0].Score = -2
	if e.CurrentRanking().Topics[0].Score == -2 {
		t.Fatal("subscription delivery aliases engine state")
	}
}

// Close must be idempotent and leave late subscribers with an
// already-closed channel instead of a leak.
func TestBrokerCloseIdempotentAndLateSubscribe(t *testing.T) {
	e := New(testConfig())
	feedDocs(e, background(t0, 2, 25))
	e.Close()
	e.Close() // second close must not panic or deadlock

	sub := e.Subscribe(context.Background())
	select {
	case _, ok := <-sub.Notifications():
		if ok {
			t.Fatal("late subscription received a ranking from a closed broker")
		}
	case <-time.After(time.Second):
		t.Fatal("late subscription channel not closed")
	}
	sub.Close() // closing an already-detached subscription must be safe
}
