// Package core wires the paper's three stages — seed tag selection,
// correlation tracking, and shift detection — into the enBlogue engine: a
// stream sink that consumes (timestamp, docId, tags, entities) tuples and
// periodically emits ranked emergent topics.
//
// The engine is event-time driven: evaluation ticks fire as the stream's
// timestamps pass tick boundaries, so archive replay ("time lapse on
// archived data") and live consumption behave identically.
//
// The engine core is sharded: the pair space is partitioned by hash(Key) %
// Shards, each shard owning its slice of the co-occurrence counters and of
// the detector state behind its own lock. Consume fans a document's
// candidate pairs out to shards, and every evaluation tick scores all
// shards in parallel — one worker per shard — before merging the per-shard
// top-k partial rankings deterministically. Rankings are bit-identical for
// every shard count on a sequentially consumed stream; see DESIGN.md for
// the argument. All exported Engine methods are safe for concurrent use.
package core

import (
	"context"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"enblogue/internal/entity"
	"enblogue/internal/ingest"
	"enblogue/internal/intern"
	"enblogue/internal/pairs"
	"enblogue/internal/predict"
	"enblogue/internal/shift"
	"enblogue/internal/stream"
	"enblogue/internal/tagstats"
	"enblogue/internal/tier"
)

// Config parameterises an Engine. The zero value is usable: it yields the
// paper's defaults (Jaccard correlation, moving-average prediction, 2-day
// half-life, hourly ticks over a 48-hour window) with one engine shard per
// available CPU.
type Config struct {
	// WindowBuckets and WindowResolution define the sliding statistics
	// window for tags and pairs. Defaults: 48 buckets × 1 hour.
	WindowBuckets    int
	WindowResolution time.Duration

	// TickEvery is the evaluation period in event time. Zero means one
	// window resolution (hourly by default).
	TickEvery time.Duration

	// SeedCount is the size of the seed tag set ("we choose seed tags to
	// be popular tags"). Zero means 50.
	SeedCount int
	// SeedCriterion selects popularity (default), volatility, or hybrid.
	SeedCriterion tagstats.Criterion
	// SeedMinCount is the minimum windowed count for seed candidacy.
	// Zero means 3.
	SeedMinCount float64
	// SeedWarmupDocs bootstraps the first seed selection after this many
	// documents instead of waiting for the first tick. Zero means 100.
	SeedWarmupDocs int

	// MaxPairs caps tracked candidate pairs. Zero means 100000.
	MaxPairs int

	// TailSketch enables the tiered exact/sketch memory model: pairs
	// evicted over MaxPairs are demoted into a per-shard windowed Count-Min
	// sketch + heavy-hitter summary (internal/tier) instead of being
	// forgotten, and are promoted back — counters seeded from the
	// upper-bound estimate, flagged approximate — when their estimate
	// crosses the admission floor at tick time. Disabled by default;
	// rankings with it disabled are bit-identical to engines built before
	// the tier existed.
	TailSketch TailSketchConfig

	// Shards partitions the pair space for concurrent tracking and
	// parallel tick evaluation. Rankings do not depend on the shard count
	// when the stream is consumed sequentially, so this is purely a
	// throughput knob. Zero means one shard per available CPU; one yields
	// the serial reference engine.
	Shards int

	// Measure is the pair correlation measure. Default Jaccard.
	Measure pairs.Measure
	// DistributionMode switches correlation from set overlap to the
	// paper's information-theoretic alternative: documents represented "by
	// their entire tag sets", with pair correlation the Jensen–Shannon
	// similarity of the two tags' co-tag usage distributions. Measure is
	// ignored when set.
	DistributionMode bool
	// Predictor forecasts correlations; its error is the shift signal.
	// Default moving average.
	Predictor predict.Kind
	// PredictorConfig tunes the predictor.
	PredictorConfig predict.Config
	// HalfLife dampens past errors. Zero means shift.DefaultHalfLife (2d).
	HalfLife time.Duration
	// MinCooccurrence is the significance floor for scoring. Zero means 2.
	MinCooccurrence float64
	// UpOnly restricts shifts to correlation increases.
	UpOnly bool

	// TopK is the ranking length. Zero means 20.
	TopK int

	// IngestQueueSize bounds the per-engine ingest ring buffer used by
	// Enqueue (and everything layered on it: enblogue.Run, Hub tenants).
	// Zero means 8192.
	IngestQueueSize int
	// IngestMaxBatch caps the documents one queue drain hands to
	// ConsumeBatch. Zero means 512; values above IngestQueueSize are
	// clamped to it.
	IngestMaxBatch int
	// IngestFlushInterval bounds how long the drainer waits for a partial
	// batch to fill once at least one item is queued. Zero means 2ms.
	IngestFlushInterval time.Duration
	// IngestDropOldest switches queue backpressure from blocking producers
	// (the default, which preserves every document) to evicting the oldest
	// queued items, counted by IngestDropped and surfaced in /v1 stats.
	IngestDropOldest bool

	// UseEntities merges entity tags into the tag space ("combined with
	// regular tags to detect tag/entity mixtures as emergent topics").
	UseEntities bool
	// Tagger, when set together with UseEntities, annotates items that
	// arrive with text but no entities.
	Tagger *entity.Tagger

	// Durability enables snapshot + write-ahead-log persistence when its
	// Dir is set: prior state is recovered during New and every consumed
	// document is logged for crash recovery. See DurabilityConfig.
	Durability DurabilityConfig
}

// TailSketchConfig parameterises the cold tier under the exact pair
// tracker; see Config.TailSketch and internal/tier.
type TailSketchConfig struct {
	// Enabled turns the tier on. The remaining fields are ignored (and the
	// engine matches pre-tier behaviour exactly) when false.
	Enabled bool
	// Epsilon is the Count-Min additive-error fraction: tail estimates
	// exceed true windowed tail mass by at most Epsilon × N with
	// probability 1−Delta. Zero or out-of-range means 0.01.
	Epsilon float64
	// Delta is the Count-Min failure probability. Zero or out-of-range
	// means 0.01.
	Delta float64
	// TopK is the per-shard heavy-hitter summary capacity — the maximum
	// number of promotion candidates remembered per shard. Zero means 512.
	TopK int
}

// normalize is the single place nonsensical configurations are repaired:
// zero and negative settings fall back to the paper's defaults, and
// mutually wedging combinations are clamped (a pair budget smaller than the
// seed set could evict every candidate the moment it is tracked). Both New
// and Hub.Open build engines exclusively from normalized configs, so no
// construction path can yield an engine that cannot tick.
func (c Config) normalize() Config {
	if c.WindowBuckets <= 0 {
		c.WindowBuckets = 48
	}
	if c.WindowResolution <= 0 {
		c.WindowResolution = time.Hour
	}
	if c.TickEvery <= 0 {
		c.TickEvery = c.WindowResolution
	}
	if c.SeedCount <= 0 {
		c.SeedCount = 50
	}
	if c.SeedMinCount <= 0 {
		c.SeedMinCount = 3
	}
	if c.SeedWarmupDocs <= 0 {
		c.SeedWarmupDocs = 100
	}
	if c.MaxPairs <= 0 {
		c.MaxPairs = 100000
	}
	if c.MaxPairs < c.SeedCount {
		c.MaxPairs = c.SeedCount
	}
	if c.Shards <= 0 {
		c.Shards = runtime.GOMAXPROCS(0)
	}
	if c.HalfLife <= 0 {
		c.HalfLife = shift.DefaultHalfLife
	}
	if c.MinCooccurrence <= 0 {
		c.MinCooccurrence = 2
	}
	if c.TopK <= 0 {
		c.TopK = 20
	}
	if c.IngestQueueSize <= 0 {
		c.IngestQueueSize = 8192
	}
	if c.IngestMaxBatch <= 0 {
		c.IngestMaxBatch = 512
	}
	if c.IngestMaxBatch > c.IngestQueueSize {
		c.IngestMaxBatch = c.IngestQueueSize
	}
	if c.IngestFlushInterval <= 0 {
		c.IngestFlushInterval = 2 * time.Millisecond
	}
	if c.TailSketch.Enabled {
		if c.TailSketch.Epsilon <= 0 || c.TailSketch.Epsilon >= 1 {
			c.TailSketch.Epsilon = 0.01
		}
		if c.TailSketch.Delta <= 0 || c.TailSketch.Delta >= 1 {
			c.TailSketch.Delta = 0.01
		}
		if c.TailSketch.TopK < 1 {
			c.TailSketch.TopK = 512
		}
	} else {
		// A disabled tier carries no settings: the zero value is part of
		// the snapshot-fingerprint identity of every pre-tier engine.
		c.TailSketch = TailSketchConfig{}
	}
	return c
}

// Ranking is one evaluation tick's output: the top-k emergent topics.
type Ranking struct {
	At     time.Time
	Seeds  []string
	Topics []shift.Topic
}

// Clone returns a deep copy of the ranking: mutating the copy's Seeds or
// Topics cannot corrupt the engine's published state or any other
// subscriber's view.
func (r Ranking) Clone() Ranking {
	r.Seeds = append([]string(nil), r.Seeds...)
	r.Topics = append([]shift.Topic(nil), r.Topics...)
	return r
}

// IDs returns the ranked pair identifiers ("tag1+tag2"), best first.
func (r Ranking) IDs() []string {
	out := make([]string, len(r.Topics))
	for i, t := range r.Topics {
		out[i] = t.Pair.String()
	}
	return out
}

// Engine is the enBlogue core: it implements stream.Sink (and
// stream.Flusher) and can therefore terminate any query plan. All exported
// methods are safe for concurrent use — a live server can drive wall-clock
// Ticks and serve CurrentRanking while an ingest goroutine Consumes.
type Engine struct {
	cfg Config

	tags    *tagstats.Tracker      // guarded by mu
	pairsTr *pairs.ShardedTracker  // internally sharded + locked
	dist    *pairs.DistTracker     // non-nil in DistributionMode; internally locked
	det     *shift.Sharded         // shard i touched only by tick worker i, under mu
	seeds   *tagstats.SeedSelector // internally locked

	docs atomic.Int64
	// lastSeenNano is the newest consumed event timestamp in unix nanos (0
	// before the first document). Written under mu, read lock-free so
	// LastEventTime is callable from anywhere.
	lastSeenNano atomic.Int64

	// gate quiesces ingest for state exports: Consume/ConsumeBatch hold it
	// shared across a whole document — bookkeeping AND the pair observation
	// that happens after mu is released — while SnapshotState holds it
	// exclusively, so a snapshot never catches a document counted in docs
	// but not yet applied to the pair trackers. It is the outermost engine
	// lock and uncontended (shared) in steady state.
	//
	//enblogue:lock persist 7
	gate sync.RWMutex

	// wal and dur are the durability attachments (nil when Durability.Dir
	// is unset), assigned once during New — after recovery replay, so
	// replayed documents are not re-logged — and immutable afterwards.
	wal WALRecorder
	dur Durability

	// mu serialises stream bookkeeping (event clock, tick boundaries, tag
	// statistics) and evaluation ticks against each other. Pair tracking
	// itself happens outside mu under the per-shard tracker locks, so
	// concurrent producers contend only on the shards they touch.
	//
	//enblogue:lock engine 10
	mu       sync.Mutex
	nextTick time.Time
	lastTick time.Time // newest evaluation time, guards forced-Tick rewinds

	// tick holds the per-tick working set — snapshot, keep-set, and top-k
	// buffers per shard plus the ID-keyed tag-count index — reused across
	// ticks so a steady-state evaluation pass allocates almost nothing.
	// Only tickLocked touches it, under mu.
	tick tickScratch

	// batchDocs is ConsumeBatch's pending-document buffer, reused across
	// calls. Only ConsumeBatch touches it, under mu.
	batchDocs []pairs.BatchDoc

	// ingest is the optional ring-buffer queue in front of ConsumeBatch,
	// started lazily by the first Enqueue. ingestDone closes when the
	// drainer goroutine exits.
	ingestOnce sync.Once
	ingest     atomic.Pointer[ingest.Queue]
	ingestDone chan struct{}

	// rankMu guards only the published ranking snapshot; it nests inside
	// engine (tickLocked publishes while holding mu).
	//
	//enblogue:lock rank 20
	rankMu sync.Mutex
	last   Ranking

	// broker fans every tick's ranking out to subscribers from a
	// dispatcher goroutine, outside all engine locks.
	broker *broker
}

// New returns an engine with the given configuration.
func New(cfg Config) *Engine {
	c := cfg.normalize()
	var dist *pairs.DistTracker
	if c.DistributionMode {
		dist = pairs.NewDistTracker(pairs.Config{
			Buckets:    c.WindowBuckets,
			Resolution: c.WindowResolution,
			MaxPairs:   c.MaxPairs,
		})
	}
	tags := tagstats.NewTracker(tagstats.Config{
		Buckets:    c.WindowBuckets,
		Resolution: c.WindowResolution,
	})
	// The interning table is the engine's tag-ID domain; letting the tag
	// tracker cache resolved IDs per slot spares the evaluation tick one
	// string hash per active tag (see tagstats.SetTagIDResolver).
	tags.SetTagIDResolver(intern.Find)
	var tailCfg *tier.Config
	if c.TailSketch.Enabled {
		tailCfg = &tier.Config{
			Epsilon: c.TailSketch.Epsilon,
			Delta:   c.TailSketch.Delta,
			TopK:    c.TailSketch.TopK,
		}
	}
	e := &Engine{
		dist:   dist,
		cfg:    c,
		tick:   newTickScratch(c.Shards),
		broker: newBroker(),
		tags:   tags,
		pairsTr: pairs.NewShardedTracker(pairs.Config{
			Buckets:    c.WindowBuckets,
			Resolution: c.WindowResolution,
			MaxPairs:   c.MaxPairs,
			Shards:     c.Shards,
			Tail:       tailCfg,
		}),
		det: shift.NewSharded(c.Shards, shift.Config{
			Measure:         c.Measure,
			Predictor:       c.Predictor,
			PredictorConfig: c.PredictorConfig,
			HalfLife:        c.HalfLife,
			MinCooccurrence: c.MinCooccurrence,
			UpOnly:          c.UpOnly,
		}),
		seeds: tagstats.NewSeedSelector(c.SeedCount, c.SeedCriterion, c.SeedMinCount),
	}
	// Recovery and WAL attachment happen last: the engine is fully built,
	// and e.wal is still nil while the hook replays prior documents, so the
	// replay is not re-logged.
	e.attachDurability()
	return e
}

// Config returns the effective engine configuration.
func (e *Engine) Config() Config { return e.cfg }

// DocsProcessed returns the number of consumed documents.
func (e *Engine) DocsProcessed() int64 { return e.docs.Load() }

// ActivePairs returns the number of tracked candidate pairs.
func (e *Engine) ActivePairs() int { return e.pairsTr.ActivePairs() }

// TailStats is the tiered-memory statistics view; see pairs.TailStats.
type TailStats = pairs.TailStats

// TailStats returns the cold-tier and eviction statistics. The per-shard
// eviction counters are live even with the tier disabled (Enabled false,
// tier fields zero).
func (e *Engine) TailStats() TailStats { return e.pairsTr.TailStats() }

// Shards returns the number of engine shards.
func (e *Engine) Shards() int { return e.pairsTr.Shards() }

// Seeds returns a copy of the current seed tag set, best first.
func (e *Engine) Seeds() []string {
	return append([]string(nil), e.seeds.Seeds()...)
}

// Subscribe registers a live notification feed: evaluation ticks are
// delivered to the returned subscription's channel from the engine's
// dispatcher goroutine, outside all engine locks, so consumers may call
// back into the engine freely. Options attach a persona profile (the
// subscriber then receives its personalized re-ranking), a compiled
// predicate (SubTags/SubAllTags/SubMinScore/SubEmergenceOnly — the
// subscription then receives only ticks where its filtered view changed,
// found through the broker's inverted tag index rather than broadcast),
// trim to a per-subscriber top-k, and size the bounded buffer; slow
// consumers lose the oldest buffered notifications first (counted on the
// subscription), never stalling the engine or other subscribers.
// Cancelling ctx closes the subscription; a nil ctx subscribes until
// Close. Safe for concurrent use.
func (e *Engine) Subscribe(ctx context.Context, opts ...SubOption) *Subscription {
	return e.broker.subscribe(ctx, opts...)
}

// Subscribers returns the number of live broker subscriptions.
func (e *Engine) Subscribers() int { return e.broker.subscribers() }

// IndexedTags returns the number of distinct interned tags referenced by
// at least one live subscription predicate — the breadth of the broker's
// inverted dispatch index.
func (e *Engine) IndexedTags() int { return e.broker.indexedTags() }

// MatchedLastTick returns how many subscriptions were handed a
// notification on the most recently dispatched tick.
func (e *Engine) MatchedLastTick() int64 { return e.broker.matchedLastTick() }

// RankingsDropped returns the total number of ranking deliveries discarded
// across all subscriptions because consumers fell behind.
func (e *Engine) RankingsDropped() int64 { return e.broker.droppedTotal.Load() }

// PublishRanking hands a pre-built ranking straight to the broker and
// waits for dispatch to complete. It bypasses ingest and tick evaluation
// entirely — the ranking is NOT recorded as engine state (CurrentRanking
// is unaffected) — and exists for benchmarks and replay tooling that need
// to drive the subscription-dispatch path with synthetic ticks. Must not
// be called from a subscription consumer (the dispatcher cannot drain
// itself).
func (e *Engine) PublishRanking(r Ranking) {
	e.broker.publish(r)
	e.broker.wait()
}

// Close shuts the ingest queue (if started) and the broker down: the queue
// stops accepting items, its drainer consumes whatever is already queued
// and exits, then the broker waits for in-flight deliveries to drain,
// stops the dispatcher, and closes every subscription channel. The engine
// itself remains usable for Consume/Tick/CurrentRanking, but no further
// rankings are delivered to subscribers. Call Flush first if the final
// partial tick should still be delivered. Idempotent; must not be called
// from inside a subscription consumer that the dispatcher is feeding
// synchronously.
func (e *Engine) Close() {
	if q := e.ingest.Load(); q != nil {
		q.Close()
		<-e.ingestDone
	}
	e.broker.close()
	if e.dur != nil {
		// After ingest has drained, so the final WAL sync covers every
		// consumed document. Close is idempotent on the persistence side.
		e.dur.Close()
	}
}

// LastEventTime returns the newest event timestamp consumed so far (zero
// before the first document). Live servers use it to drive wall-clock Ticks
// at the stream's own clock. Lock-free.
func (e *Engine) LastEventTime() time.Time {
	n := e.lastSeenNano.Load()
	if n == 0 {
		return time.Time{}
	}
	return time.Unix(0, n).UTC()
}

// itemTags resolves the tag set the engine operates on for an item.
func (e *Engine) itemTags(it *stream.Item) []string {
	if !e.cfg.UseEntities {
		return it.Tags
	}
	if e.cfg.Tagger != nil && len(it.Entities) == 0 && it.Text != "" {
		it = it.Clone()
		it.Entities = e.cfg.Tagger.Entities(it.Text)
	}
	return it.AllTags()
}

// Consume implements stream.Sink: it feeds one tuple through seed
// statistics and pair tracking, firing evaluation ticks as event time
// passes tick boundaries. Safe for concurrent use; concurrent producers
// serialise on the bookkeeping lock but fan pair updates out to the
// tracker shards in parallel.
//
//enblogue:acquires persist
//enblogue:acquires engine
//enblogue:hotpath
func (e *Engine) Consume(it *stream.Item) {
	if it == nil {
		return
	}
	t := it.Time
	tags := e.itemTags(it)

	// Held shared across the whole document — including the pair
	// observation below, outside mu — so state exports (which take it
	// exclusively) never see a half-applied document.
	e.gate.RLock()
	defer e.gate.RUnlock()

	e.mu.Lock()
	if t.After(e.LastEventTime()) {
		e.lastSeenNano.Store(t.UnixNano())
	}

	// Fire any ticks the stream has moved past. A pathological time jump
	// (archive gap) fast-forwards rather than replaying empty ticks.
	if e.nextTick.IsZero() {
		e.nextTick = t.Add(e.cfg.TickEvery)
	}
	if gap := t.Sub(e.nextTick); gap > 100*e.cfg.TickEvery {
		e.tickLocked(e.nextTick)
		e.nextTick = t.Add(e.cfg.TickEvery)
	}
	for !e.nextTick.After(t) {
		e.tickLocked(e.nextTick)
		e.nextTick = e.nextTick.Add(e.cfg.TickEvery)
	}

	e.tags.Observe(t, tags)
	docs := e.docs.Add(1)
	if e.wal != nil {
		// The raw item is logged (pre-itemTags), so replay re-derives entity
		// tags identically instead of trusting a stale derivation.
		e.wal.RecordDoc(docs, it)
	}

	// Bootstrap the seed set once enough documents have arrived, so pair
	// tracking starts before the first tick.
	if len(e.seeds.Seeds()) == 0 && docs >= int64(e.cfg.SeedWarmupDocs) {
		e.seeds.Reselect(e.tags)
	}
	isSeed := e.seeds.Func()
	e.mu.Unlock()

	// Pair tracking runs outside the bookkeeping lock: the sharded tracker
	// locks only the shards this document's candidate pairs hash to.
	e.pairsTr.Observe(t, tags, isSeed)
	if e.dist != nil {
		e.dist.Observe(t, tags)
	}
}

// ConsumeBatch feeds a run of items through the engine with rankings
// bit-identical to calling Consume on each item in order, paying the
// bookkeeping lock once per batch and each tracker-shard lock once per
// pair-batch chunk instead of once per document.
//
// The batch is processed as segments delimited by the events that change
// per-document state in the serial path: an evaluation tick or a seed
// reselection. Documents accumulate as pending pair observations; before
// any tick fires (ticks snapshot pair counters) and before any seed
// reselection (reselection changes the candidate predicate for documents
// observed after it), the pending run is flushed through
// pairs.ShardedTracker.ObserveBatch with the predicate that was current
// when those documents arrived — exactly the predicate the serial path
// would have used, since it only changes at those same two events. Within
// a segment the serial path's only per-document pair-tracker coupling is
// sweep timing, which ObserveBatch reproduces exactly (see its equivalence
// argument).
//
// Safe for concurrent use with every other engine method; determinism is
// promised for a sequentially fed stream, as with Consume.
//
//enblogue:acquires persist
//enblogue:acquires engine
//enblogue:hotpath
func (e *Engine) ConsumeBatch(items []*stream.Item) {
	if len(items) == 0 {
		return
	}
	e.gate.RLock()
	defer e.gate.RUnlock()
	e.mu.Lock()
	pend := e.batchDocs[:0]
	isSeed := e.seeds.Func()
	//enblogue:alloc-ok one closure per ConsumeBatch call, amortised over the whole batch; BenchmarkConsumeBatchAllocs pins the per-item count
	flush := func() {
		if len(pend) == 0 {
			return
		}
		e.pairsTr.ObserveBatch(pend, isSeed)
		if e.dist != nil {
			e.dist.ObserveBatch(pend)
		}
		clear(pend) // release tag-slice references
		pend = pend[:0]
	}
	for _, it := range items {
		if it == nil {
			continue
		}
		t := it.Time
		tags := e.itemTags(it)

		if t.After(e.LastEventTime()) {
			e.lastSeenNano.Store(t.UnixNano())
		}
		if e.nextTick.IsZero() {
			e.nextTick = t.Add(e.cfg.TickEvery)
		}
		if gap := t.Sub(e.nextTick); gap > 100*e.cfg.TickEvery {
			flush()
			e.tickLocked(e.nextTick)
			e.nextTick = t.Add(e.cfg.TickEvery)
			isSeed = e.seeds.Func()
		}
		for !e.nextTick.After(t) {
			flush()
			e.tickLocked(e.nextTick)
			e.nextTick = e.nextTick.Add(e.cfg.TickEvery)
			isSeed = e.seeds.Func()
		}

		e.tags.Observe(t, tags)
		docs := e.docs.Add(1)
		if e.wal != nil {
			e.wal.RecordDoc(docs, it)
		}
		if len(e.seeds.Seeds()) == 0 && docs >= int64(e.cfg.SeedWarmupDocs) {
			// The bootstrap reselection happens between this document's
			// bookkeeping and its pair observation, exactly as in Consume:
			// earlier documents flush under the old predicate, this one is
			// observed under the new.
			flush()
			e.seeds.Reselect(e.tags)
			isSeed = e.seeds.Func()
		}
		pend = append(pend, pairs.BatchDoc{Time: t, Tags: tags})
	}
	flush()
	e.batchDocs = pend[:0]
	e.mu.Unlock()
}

// Enqueue appends one item to the engine's bounded ingest queue and returns
// without waiting for it to be consumed: producers never block on tick
// evaluation. The queue and its drainer goroutine start on first use; the
// drainer dequeues batches (up to IngestMaxBatch, waiting at most
// IngestFlushInterval to fill a partial batch) and feeds them through
// ConsumeBatch, so a single producer's stream yields rankings
// bit-identical to calling Consume directly. When the ring is full,
// Enqueue blocks until space frees — or, with IngestDropOldest, evicts the
// oldest queued items (counted by IngestDropped). Items enqueued after
// Close are discarded.
func (e *Engine) Enqueue(it *stream.Item) {
	if it == nil {
		return
	}
	e.ingestOnce.Do(e.startIngest)
	e.ingest.Load().Put(it)
}

// startIngest builds the ingest queue and starts its drainer goroutine.
func (e *Engine) startIngest() {
	q := ingest.New(ingest.Config{
		Size:          e.cfg.IngestQueueSize,
		MaxBatch:      e.cfg.IngestMaxBatch,
		FlushInterval: e.cfg.IngestFlushInterval,
		DropOldest:    e.cfg.IngestDropOldest,
	})
	e.ingestDone = make(chan struct{})
	e.ingest.Store(q)
	go func() {
		defer close(e.ingestDone)
		buf := make([]*stream.Item, 0, e.cfg.IngestMaxBatch)
		for {
			batch, ok := q.Drain(buf[:0])
			if len(batch) > 0 {
				e.ConsumeBatch(batch)
				clear(batch)
				q.Done()
			}
			if !ok {
				return
			}
			buf = batch
		}
	}()
}

// IngestDepth returns the number of items waiting in the ingest queue (0
// when no queue has been started).
func (e *Engine) IngestDepth() int {
	if q := e.ingest.Load(); q != nil {
		return q.Depth()
	}
	return 0
}

// IngestDropped returns the total documents evicted from the ingest queue
// under the IngestDropOldest policy.
func (e *Engine) IngestDropped() int64 {
	if q := e.ingest.Load(); q != nil {
		return q.Dropped()
	}
	return 0
}

// Flush implements stream.Flusher: it first waits for the ingest queue (if
// started) to drain — every item enqueued before Flush is consumed — then
// runs a final evaluation tick at the last observed event time — unless an
// evaluation at (or after) that time already ran, in which case
// re-evaluating would only feed every pair's predictor a duplicate
// observation. Flush then blocks until every ranking published so far has
// been fully delivered (subscription channels fed), establishing a
// happens-before edge: state visible to the dispatcher before Flush is
// safely readable after Flush returns.
//
//enblogue:acquires engine
func (e *Engine) Flush() {
	if q := e.ingest.Load(); q != nil {
		q.WaitIdle()
	}
	e.mu.Lock()
	if at := e.LastEventTime(); !at.IsZero() && at.After(e.lastTick) {
		e.tickLocked(at)
	}
	e.mu.Unlock()
	e.broker.wait()
}

// Tick forces an evaluation at time t (used by callers driving their own
// tick schedule, e.g. benchmarks or the live server's wall-clock timer).
// Safe for concurrent use with Consume. A t at or before the newest
// evaluation already run is ignored (the current ranking is returned
// unchanged): a wall-clock ticker that loaded LastEventTime just before an
// event-driven tick fired must not rewind the published ranking or feed
// the predictors a duplicate observation.
//
//enblogue:acquires engine
func (e *Engine) Tick(t time.Time) Ranking {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !t.After(e.lastTick) {
		return e.CurrentRanking()
	}
	return e.tickLocked(t).Clone()
}

// forEachShard runs fn(0..n-1), returning when all complete. Work fans out
// over min(n, GOMAXPROCS) goroutines in strided shard order — spawning
// more workers than runnable processors only adds scheduling overhead —
// and runs inline when that bound is one. Shards share no mutable state,
// so the shard→worker assignment cannot affect results.
func forEachShard(n int, fn func(int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := w; i < n; i += workers {
				fn(i)
			}
		}(w)
	}
	wg.Wait()
}

// topicCmp is the engine's deterministic ranking order as a three-way
// comparator: descending score, ties broken by the pair rendering (compared
// through Key.Less, which orders exactly like the rendered strings without
// building them).
func topicCmp(a, b *shift.Topic) int {
	if a.Score != b.Score {
		if a.Score > b.Score {
			return -1
		}
		return 1
	}
	if a.Pair.Less(b.Pair) {
		return -1
	}
	if b.Pair.Less(a.Pair) {
		return 1
	}
	return 0
}

// sortTopics orders topics under topicCmp.
func sortTopics(topics []shift.Topic) {
	slices.SortFunc(topics, func(a, b shift.Topic) int {
		return topicCmp(&a, &b)
	})
}

// topicWorse reports whether a ranks strictly below b in the engine's
// deterministic ranking order: lower score, ties by pair rendering
// descending.
func topicWorse(a, b *shift.Topic) bool {
	if a.Score != b.Score {
		return a.Score < b.Score
	}
	return b.Pair.Less(a.Pair)
}

// topkPush folds t into a bounded min-heap of capacity k whose root is the
// worst kept topic under topicWorse. Kept topics live in buf while the heap
// itself is idx, an array of positions into buf: sift operations swap int32
// indexes instead of ~100-byte Topic structs, and comparisons read buf in
// place. Selecting the per-shard top-k this way replaces the former sort of
// every scored topic per shard per tick (O(p log p)) with O(p log k), and
// both slices are reused across ticks. The ranking order is a strict total
// order (scores tie-broken by distinct pair keys), so the kept set — later
// materialised in topicCmp order — is exactly the prefix a full
// sort-and-trim would keep.
func topkPush(buf []shift.Topic, idx []int32, k int, t *shift.Topic) ([]shift.Topic, []int32) {
	if len(idx) < k {
		buf = append(buf, *t)
		idx = append(idx, int32(len(buf)-1))
		for i := len(idx) - 1; i > 0; {
			p := (i - 1) / 2
			if !topicWorse(&buf[idx[i]], &buf[idx[p]]) {
				break
			}
			idx[i], idx[p] = idx[p], idx[i]
			i = p
		}
		return buf, idx
	}
	if !topicWorse(&buf[idx[0]], t) {
		return buf, idx // t is no better than the worst kept topic
	}
	buf[idx[0]] = *t
	for i := 0; ; {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < len(idx) && topicWorse(&buf[idx[l]], &buf[idx[m]]) {
			m = l
		}
		if r < len(idx) && topicWorse(&buf[idx[r]], &buf[idx[m]]) {
			m = r
		}
		if m == i {
			break
		}
		idx[i], idx[m] = idx[m], idx[i]
		i = m
	}
	return buf, idx
}

// tickScratch is the engine's reusable per-tick working set; see the
// Engine.tick field. Tag counts live in a dense epoch-tagged index keyed by
// interned tag ID: setCount stamps an entry with the current tick's epoch,
// count reads entries stamped this epoch and returns 0 for anything older —
// so "clearing" the index between ticks is one integer increment, and the
// per-pair lookup is two array reads instead of a string-keyed map probe.
type tickScratch struct {
	counts     []float64
	countEpoch []uint32
	epoch      uint32
	snaps      [][]pairs.PairCount
	tops       [][]shift.Topic
	// heapBuf and heapIdx are the per-shard topkPush working sets: kept
	// topics and the index heap over them.
	heapBuf [][]shift.Topic
	heapIdx [][]int32
	merged  []shift.Topic
	// topStats is the seed-selection buffer handed to tagstats.TopAppend,
	// reused across ticks like every other buffer here.
	topStats []tagstats.TagStat
}

func newTickScratch(shards int) tickScratch {
	return tickScratch{
		snaps:   make([][]pairs.PairCount, shards),
		tops:    make([][]shift.Topic, shards),
		heapBuf: make([][]shift.Topic, shards),
		heapIdx: make([][]int32, shards),
	}
}

// beginCounts starts a fresh count epoch.
func (ts *tickScratch) beginCounts() { ts.epoch++ }

// setCount records tag id's windowed count for the current epoch, growing
// the index as the interned vocabulary grows.
func (ts *tickScratch) setCount(id uint32, v float64) {
	if int(id) >= len(ts.counts) {
		grown := make([]float64, id+1)
		copy(grown, ts.counts)
		ts.counts = grown
		grownE := make([]uint32, id+1)
		copy(grownE, ts.countEpoch)
		ts.countEpoch = grownE
	}
	ts.counts[id] = v
	ts.countEpoch[id] = ts.epoch
}

// count returns tag id's windowed count for the current epoch, 0 if the
// tag was not recorded this tick.
func (ts *tickScratch) count(id uint32) float64 {
	if int(id) >= len(ts.countEpoch) || ts.countEpoch[id] != ts.epoch {
		return 0
	}
	return ts.counts[id]
}

// tickLocked reselects seeds, evaluates every candidate pair — all shards
// in parallel, one worker per shard — merges the per-shard top-k partial
// rankings, publishes the result, and sweeps dead detector state. The
// caller must hold e.mu.
//
// The merge is exact: a topic in the global top-k is necessarily in its own
// shard's top-k, so concatenating the per-shard prefixes and re-sorting
// with the same comparator yields the same ranking a single global sort
// would.
//
//enblogue:requires engine
//enblogue:acquires rank
func (e *Engine) tickLocked(t time.Time) Ranking {
	if t.After(e.lastTick) {
		e.lastTick = t
	}

	n := e.tags.DocCount()
	// One snapshot per tick of whatever the workers will read — tag counts
	// or co-tag distributions — so the parallel shard workers never touch
	// (and mutate, or serialise on) the shared trackers. The default-mode
	// count index is keyed by interned tag ID and reused across ticks:
	// workers then look pair members up by uint32 instead of hashing two
	// strings per pair. Seed reselection is fused into the same pass over
	// the tag statistics (one map iteration per tick, not two), selecting
	// through a bounded heap with exactly Top's ordering.
	ts := &e.tick
	var seeds []string
	var dists map[string]map[string]float64
	if e.dist == nil {
		ts.beginCounts()
		ts.topStats = e.tags.TopAppend(e.seeds.K, e.seeds.Criterion, e.seeds.MinCount,
			ts.topStats[:0], func(tag string, id uint32, v float64) {
				// IDs resolve through intern.Find (installed as the tracker's
				// resolver at construction), not Intern: ID assignment happens
				// only on the ingest path, in first-seen stream order, so
				// replays shard identically. A tag with no ID was never part
				// of any candidate pair (only ≥2-tag documents intern), so its
				// count can never be read by the evaluation below.
				if id != tagstats.NoID {
					ts.setCount(id, v)
				}
			})
		seeds = e.seeds.ReselectFrom(ts.topStats)
	} else {
		seeds = e.seeds.Reselect(e.tags)
		dists = e.dist.Snapshot()
	}

	// Promote tail-tier pairs whose estimates crossed the admission floor
	// before taking evaluation snapshots, so a re-admitted pair is scored
	// in this same tick. No-op while the tail sketch is disabled. Runs at
	// tick time, not ingest time: promotion scans the per-shard summaries,
	// which would be wasted work on the per-document path, and tick
	// boundaries are event-time deterministic, so promotion points replay
	// identically.
	e.pairsTr.PromoteTail(t)

	// Snapshot every shard's pairs first, then decide the round advance
	// from the snapshots themselves: the workers evaluate exactly these
	// pairs, so the shard detectors' evaluation-round clocks advance
	// precisely when a single global detector would — even if a concurrent
	// producer is inserting pairs mid-tick.
	nsh := e.pairsTr.Shards()
	forEachShard(nsh, func(i int) {
		ts.snaps[i] = e.pairsTr.AppendSnapshot(i, ts.snaps[i][:0])
	})
	total := 0
	for _, s := range ts.snaps {
		total += len(s)
	}
	if total > 0 {
		e.det.BeginTick(t)
	}

	eval := func(i int) {
		snap := ts.snaps[i]
		det := e.det.Shard(i)
		hbuf, hidx := ts.heapBuf[i][:0], ts.heapIdx[i][:0]
		// One Topic reused across the whole shard: the detector assigns
		// every field when it fills it, and topkPush copies only when the
		// topic is actually kept. The running heap root is fed back to the
		// detector as the admission floor, so a pair that provably cannot
		// reach the shard's current top-k (its undecayed score bound is
		// below the root) updates its predictor state and returns without
		// ever materialising a Topic or computing an exponential — the
		// selected set is exactly what an unfloored evaluation would select.
		var topic shift.Topic
		floor := 0.0
		for _, pc := range snap {
			var filled bool
			if e.dist != nil {
				tag1, tag2 := pc.Key.Tags()
				filled = det.EvaluateCorrelationInto(t, pc.Key, pc.Slot,
					pairs.SimilarityFrom(dists, tag1, tag2), pc.Count, floor, &topic)
			} else {
				ida, idb := pc.Key.IDs()
				filled = det.EvaluateInto(t, pc.Key, pc.Slot, pc.Count,
					ts.count(ida), ts.count(idb), n, floor, &topic)
			}
			if filled && topic.Score > 0 {
				hbuf, hidx = topkPush(hbuf, hidx, e.cfg.TopK, &topic)
				if len(hidx) == e.cfg.TopK {
					floor = hbuf[hidx[0]].Score
				}
			}
		}
		// Materialise the kept set best-first: sort the index heap (int32
		// swaps, in-place reads) and copy each topic out once.
		slices.SortFunc(hidx, func(a, b int32) int { return topicCmp(&hbuf[a], &hbuf[b]) })
		top := ts.tops[i][:0]
		for _, j := range hidx {
			top = append(top, hbuf[j])
		}
		// Every pair just evaluated carries seen == t, so the stale sweep
		// is exactly the old keep-map sweep without building a keep set.
		det.SweepStale(t, 1e-9)
		ts.heapBuf[i], ts.heapIdx[i], ts.tops[i] = hbuf, hidx, top
	}
	forEachShard(nsh, eval)

	ts.merged = ts.merged[:0]
	for _, shardTop := range ts.tops {
		ts.merged = append(ts.merged, shardTop...)
	}
	sortTopics(ts.merged)
	m := ts.merged
	if len(m) > e.cfg.TopK {
		m = m[:e.cfg.TopK]
	}
	// The published ranking owns a fresh slice: the merge buffer is reused
	// next tick, while the Ranking escapes to the broker and history.
	topics := append([]shift.Topic(nil), m...)

	r := Ranking{At: t, Seeds: seeds, Topics: topics}
	e.rankMu.Lock()
	e.last = r
	e.rankMu.Unlock()
	// Hand the ranking to the broker; delivery to subscriptions happens
	// on the dispatcher goroutine, outside e.mu, so consumers may call
	// back into the engine.
	e.broker.publish(r)
	return r
}

// CurrentRanking returns a defensive copy of the most recent ranking. Safe
// for concurrent use with the consuming goroutine; mutating the returned
// slices cannot corrupt the engine's published state.
//
//enblogue:acquires rank
func (e *Engine) CurrentRanking() Ranking {
	e.rankMu.Lock()
	defer e.rankMu.Unlock()
	return e.last.Clone()
}
