// Package core wires the paper's three stages — seed tag selection,
// correlation tracking, and shift detection — into the enBlogue engine: a
// stream sink that consumes (timestamp, docId, tags, entities) tuples and
// periodically emits ranked emergent topics.
//
// The engine is event-time driven: evaluation ticks fire as the stream's
// timestamps pass tick boundaries, so archive replay ("time lapse on
// archived data") and live consumption behave identically.
package core

import (
	"sort"
	"sync"
	"time"

	"enblogue/internal/entity"
	"enblogue/internal/pairs"
	"enblogue/internal/predict"
	"enblogue/internal/shift"
	"enblogue/internal/stream"
	"enblogue/internal/tagstats"
)

// Config parameterises an Engine. The zero value is usable: it yields the
// paper's defaults (Jaccard correlation, moving-average prediction, 2-day
// half-life, hourly ticks over a 48-hour window).
type Config struct {
	// WindowBuckets and WindowResolution define the sliding statistics
	// window for tags and pairs. Defaults: 48 buckets × 1 hour.
	WindowBuckets    int
	WindowResolution time.Duration

	// TickEvery is the evaluation period in event time. Zero means one
	// window resolution (hourly by default).
	TickEvery time.Duration

	// SeedCount is the size of the seed tag set ("we choose seed tags to
	// be popular tags"). Zero means 50.
	SeedCount int
	// SeedCriterion selects popularity (default), volatility, or hybrid.
	SeedCriterion tagstats.Criterion
	// SeedMinCount is the minimum windowed count for seed candidacy.
	// Zero means 3.
	SeedMinCount float64
	// SeedWarmupDocs bootstraps the first seed selection after this many
	// documents instead of waiting for the first tick. Zero means 100.
	SeedWarmupDocs int

	// MaxPairs caps tracked candidate pairs. Zero means 100000.
	MaxPairs int

	// Measure is the pair correlation measure. Default Jaccard.
	Measure pairs.Measure
	// DistributionMode switches correlation from set overlap to the
	// paper's information-theoretic alternative: documents represented "by
	// their entire tag sets", with pair correlation the Jensen–Shannon
	// similarity of the two tags' co-tag usage distributions. Measure is
	// ignored when set.
	DistributionMode bool
	// Predictor forecasts correlations; its error is the shift signal.
	// Default moving average.
	Predictor predict.Kind
	// PredictorConfig tunes the predictor.
	PredictorConfig predict.Config
	// HalfLife dampens past errors. Zero means shift.DefaultHalfLife (2d).
	HalfLife time.Duration
	// MinCooccurrence is the significance floor for scoring. Zero means 2.
	MinCooccurrence float64
	// UpOnly restricts shifts to correlation increases.
	UpOnly bool

	// TopK is the ranking length. Zero means 20.
	TopK int

	// UseEntities merges entity tags into the tag space ("combined with
	// regular tags to detect tag/entity mixtures as emergent topics").
	UseEntities bool
	// Tagger, when set together with UseEntities, annotates items that
	// arrive with text but no entities.
	Tagger *entity.Tagger

	// OnRanking, when set, receives every tick's ranking.
	OnRanking func(Ranking)
}

func (c Config) withDefaults() Config {
	if c.WindowBuckets <= 0 {
		c.WindowBuckets = 48
	}
	if c.WindowResolution <= 0 {
		c.WindowResolution = time.Hour
	}
	if c.TickEvery <= 0 {
		c.TickEvery = c.WindowResolution
	}
	if c.SeedCount <= 0 {
		c.SeedCount = 50
	}
	if c.SeedMinCount <= 0 {
		c.SeedMinCount = 3
	}
	if c.SeedWarmupDocs <= 0 {
		c.SeedWarmupDocs = 100
	}
	if c.MaxPairs <= 0 {
		c.MaxPairs = 100000
	}
	if c.HalfLife <= 0 {
		c.HalfLife = shift.DefaultHalfLife
	}
	if c.MinCooccurrence <= 0 {
		c.MinCooccurrence = 2
	}
	if c.TopK <= 0 {
		c.TopK = 20
	}
	return c
}

// Ranking is one evaluation tick's output: the top-k emergent topics.
type Ranking struct {
	At     time.Time
	Seeds  []string
	Topics []shift.Topic
}

// IDs returns the ranked pair identifiers ("tag1+tag2"), best first.
func (r Ranking) IDs() []string {
	out := make([]string, len(r.Topics))
	for i, t := range r.Topics {
		out[i] = t.Pair.String()
	}
	return out
}

// Engine is the enBlogue core: it implements stream.Sink (and
// stream.Flusher) and can therefore terminate any query plan.
type Engine struct {
	cfg Config

	tags    *tagstats.Tracker
	pairsTr *pairs.Tracker
	dist    *pairs.DistTracker // non-nil in DistributionMode
	det     *shift.Detector
	seeds   *tagstats.SeedSelector

	docs     int64
	nextTick time.Time
	lastSeen time.Time

	mu   sync.Mutex
	last Ranking
}

// New returns an engine with the given configuration.
func New(cfg Config) *Engine {
	c := cfg.withDefaults()
	var dist *pairs.DistTracker
	if c.DistributionMode {
		dist = pairs.NewDistTracker(pairs.Config{
			Buckets:    c.WindowBuckets,
			Resolution: c.WindowResolution,
		})
	}
	return &Engine{
		dist: dist,
		cfg:  c,
		tags: tagstats.NewTracker(tagstats.Config{
			Buckets:    c.WindowBuckets,
			Resolution: c.WindowResolution,
		}),
		pairsTr: pairs.NewTracker(pairs.Config{
			Buckets:    c.WindowBuckets,
			Resolution: c.WindowResolution,
			MaxPairs:   c.MaxPairs,
		}),
		det: shift.NewDetector(shift.Config{
			Measure:         c.Measure,
			Predictor:       c.Predictor,
			PredictorConfig: c.PredictorConfig,
			HalfLife:        c.HalfLife,
			MinCooccurrence: c.MinCooccurrence,
			UpOnly:          c.UpOnly,
		}),
		seeds: tagstats.NewSeedSelector(c.SeedCount, c.SeedCriterion, c.SeedMinCount),
	}
}

// Config returns the effective engine configuration.
func (e *Engine) Config() Config { return e.cfg }

// DocsProcessed returns the number of consumed documents.
func (e *Engine) DocsProcessed() int64 { return e.docs }

// ActivePairs returns the number of tracked candidate pairs.
func (e *Engine) ActivePairs() int { return e.pairsTr.ActivePairs() }

// Seeds returns the current seed tag set, best first.
func (e *Engine) Seeds() []string { return e.seeds.Seeds() }

// itemTags resolves the tag set the engine operates on for an item.
func (e *Engine) itemTags(it *stream.Item) []string {
	if !e.cfg.UseEntities {
		return it.Tags
	}
	if e.cfg.Tagger != nil && len(it.Entities) == 0 && it.Text != "" {
		it = it.Clone()
		it.Entities = e.cfg.Tagger.Entities(it.Text)
	}
	return it.AllTags()
}

// Consume implements stream.Sink: it feeds one tuple through seed
// statistics and pair tracking, firing evaluation ticks as event time
// passes tick boundaries.
func (e *Engine) Consume(it *stream.Item) {
	if it == nil {
		return
	}
	t := it.Time
	if t.After(e.lastSeen) {
		e.lastSeen = t
	}

	// Fire any ticks the stream has moved past. A pathological time jump
	// (archive gap) fast-forwards rather than replaying empty ticks.
	if e.nextTick.IsZero() {
		e.nextTick = t.Add(e.cfg.TickEvery)
	}
	if gap := t.Sub(e.nextTick); gap > 100*e.cfg.TickEvery {
		e.tick(e.nextTick)
		e.nextTick = t.Add(e.cfg.TickEvery)
	}
	for !e.nextTick.After(t) {
		e.tick(e.nextTick)
		e.nextTick = e.nextTick.Add(e.cfg.TickEvery)
	}

	tags := e.itemTags(it)
	e.tags.Observe(t, tags)
	e.docs++

	// Bootstrap the seed set once enough documents have arrived, so pair
	// tracking starts before the first tick.
	if len(e.seeds.Seeds()) == 0 && e.docs >= int64(e.cfg.SeedWarmupDocs) {
		e.seeds.Reselect(e.tags)
	}
	e.pairsTr.Observe(t, tags, e.seeds.IsSeed)
	if e.dist != nil {
		e.dist.Observe(t, tags)
	}
}

// Flush implements stream.Flusher: it runs a final evaluation tick at the
// last observed event time.
func (e *Engine) Flush() {
	if !e.lastSeen.IsZero() {
		e.tick(e.lastSeen)
	}
}

// Tick forces an evaluation at time t (used by callers driving their own
// tick schedule, e.g. benchmarks or the live server's wall-clock timer).
func (e *Engine) Tick(t time.Time) Ranking { return e.tick(t) }

// tick reselects seeds, evaluates every candidate pair, publishes the
// ranking, and sweeps dead detector state.
func (e *Engine) tick(t time.Time) Ranking {
	seeds := e.seeds.Reselect(e.tags)

	n := e.tags.DocCount()
	keys := e.pairsTr.Keys()
	topics := make([]shift.Topic, 0, len(keys))
	keep := make(map[pairs.Key]bool, len(keys))
	for _, k := range keys {
		keep[k] = true
		nab := e.pairsTr.Cooccurrence(k)
		var topic shift.Topic
		if e.dist != nil {
			topic = e.det.EvaluateCorrelation(t, k, e.dist.Similarity(k.Tag1, k.Tag2), nab)
		} else {
			na := e.tags.Count(k.Tag1)
			nb := e.tags.Count(k.Tag2)
			topic = e.det.Evaluate(t, k, nab, na, nb, n)
		}
		if topic.Score > 0 {
			topics = append(topics, topic)
		}
	}
	sort.Slice(topics, func(i, j int) bool {
		if topics[i].Score != topics[j].Score {
			return topics[i].Score > topics[j].Score
		}
		return topics[i].Pair.String() < topics[j].Pair.String()
	})
	if len(topics) > e.cfg.TopK {
		topics = topics[:e.cfg.TopK]
	}

	e.det.Sweep(t, keep, 1e-9)

	r := Ranking{At: t, Seeds: seeds, Topics: topics}
	e.mu.Lock()
	e.last = r
	e.mu.Unlock()
	if e.cfg.OnRanking != nil {
		e.cfg.OnRanking(r)
	}
	return r
}

// CurrentRanking returns the most recent ranking. Safe for concurrent use
// with the consuming goroutine.
func (e *Engine) CurrentRanking() Ranking {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.last
}
