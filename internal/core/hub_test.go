package core

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"enblogue/internal/stream"
)

func TestHubOpenCreateOrGet(t *testing.T) {
	h := NewHub(HubConfig{Defaults: Config{TopK: 7}})
	defer h.Close()

	a, err := h.Open("alpha")
	if err != nil {
		t.Fatal(err)
	}
	if a.Config().TopK != 7 {
		t.Errorf("tenant TopK = %d, want hub default 7", a.Config().TopK)
	}
	// Second Open returns the same engine; overrides on a get are ignored.
	a2, err := h.Open("alpha", func(c *Config) { c.TopK = 99 })
	if err != nil {
		t.Fatal(err)
	}
	if a2 != a {
		t.Error("Open(existing) returned a different engine")
	}
	if a2.Config().TopK != 7 {
		t.Errorf("get-side overrides applied: TopK = %d", a2.Config().TopK)
	}
	// Per-tenant overrides layer over hub defaults on creation.
	b, err := h.Open("beta", func(c *Config) { c.TopK = 3 })
	if err != nil {
		t.Fatal(err)
	}
	if b.Config().TopK != 3 {
		t.Errorf("override not applied: TopK = %d", b.Config().TopK)
	}
	if got := h.List(); !reflect.DeepEqual(got, []string{"alpha", "beta"}) {
		t.Errorf("List = %v", got)
	}
	if h.Len() != 2 {
		t.Errorf("Len = %d", h.Len())
	}
	if e, ok := h.Get("alpha"); !ok || e != a {
		t.Error("Get(alpha) did not return the open engine")
	}
	if _, ok := h.Get("ghost"); ok {
		t.Error("Get(ghost) reported an unopened tenant")
	}
}

func TestHubTenantNameValidation(t *testing.T) {
	h := NewHub(HubConfig{})
	defer h.Close()
	for _, bad := range []string{"", ".", "..", "a/b", "a b", "tenant\n", "ünïcode",
		string(make([]byte, maxTenantNameLen+1))} {
		if _, err := h.Open(bad); err == nil {
			t.Errorf("Open(%q) accepted an invalid name", bad)
		}
	}
	for _, good := range []string{"a", "tweets", "EU-west_1", "v2.archive"} {
		if _, err := h.Open(good); err != nil {
			t.Errorf("Open(%q): %v", good, err)
		}
	}
}

func TestHubMaxTenants(t *testing.T) {
	h := NewHub(HubConfig{MaxTenants: 2})
	defer h.Close()
	if _, err := h.Open("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Open("b"); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Open("c"); err == nil {
		t.Fatal("third tenant exceeded MaxTenants without error")
	}
	// Re-opening an existing tenant is a get, not a new tenant.
	if _, err := h.Open("a"); err != nil {
		t.Errorf("Open(existing) at the limit: %v", err)
	}
	// Closing one frees a slot.
	if !h.CloseTenant("b") {
		t.Fatal("CloseTenant(b) = false")
	}
	if _, err := h.Open("c"); err != nil {
		t.Errorf("Open after CloseTenant: %v", err)
	}
}

func TestHubCloseTenantAndClose(t *testing.T) {
	h := NewHub(HubConfig{})
	a, _ := h.Open("a")
	sub := a.Subscribe(nil)
	if h.CloseTenant("ghost") {
		t.Error("CloseTenant(ghost) = true")
	}
	if !h.CloseTenant("a") {
		t.Fatal("CloseTenant(a) = false")
	}
	// The tenant's broker is closed: its subscription channel ends.
	select {
	case _, ok := <-sub.Notifications():
		if ok {
			t.Error("subscription delivered after CloseTenant")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("subscription not closed by CloseTenant")
	}
	if h.Len() != 0 {
		t.Errorf("Len after CloseTenant = %d", h.Len())
	}

	h.Close()
	if _, err := h.Open("b"); err == nil {
		t.Error("Open succeeded on a closed hub")
	}
	h.Close() // idempotent
}

// Two tenants fed different streams stay fully isolated: each tenant's
// counters and rankings reflect only its own items.
func TestHubTenantIsolation(t *testing.T) {
	h := NewHub(HubConfig{Defaults: Config{
		WindowBuckets: 12, WindowResolution: time.Hour,
		SeedCount: 10, SeedWarmupDocs: 10, MinCooccurrence: 2, TopK: 5, Shards: 2,
	}})
	defer h.Close()
	a, _ := h.Open("a")
	b, _ := h.Open("b")

	id := 0
	feed := func(e *Engine, hr, mi int, tags ...string) {
		id++
		e.Consume(&stream.Item{
			Time:  t0.Add(time.Duration(hr)*time.Hour + time.Duration(mi)*time.Minute),
			DocID: fmt.Sprintf("d-%04d", id),
			Tags:  tags,
		})
	}
	for hr := 0; hr < 4; hr++ {
		for mi := 0; mi < 60; mi += 5 {
			feed(a, hr, mi, "news", "alpha-topic")
			feed(b, hr, mi, "news", "beta-topic")
			feed(b, hr, mi, "beta-only", "beta-topic")
		}
	}
	h.Flush()

	if got, want := a.DocsProcessed(), int64(4*12); got != want {
		t.Errorf("tenant a docs = %d, want %d", got, want)
	}
	if got, want := b.DocsProcessed(), int64(4*12*2); got != want {
		t.Errorf("tenant b docs = %d, want %d", got, want)
	}
	for _, topic := range a.CurrentRanking().Topics {
		t1, t2 := topic.Pair.Tags()
		if t1 == "beta-topic" || t2 == "beta-topic" || t1 == "beta-only" || t2 == "beta-only" {
			t.Errorf("tenant a ranked tenant b's pair %v", topic.Pair)
		}
	}
	s := h.Stats()
	if s.Tenants != 2 || s.DocsProcessed != a.DocsProcessed()+b.DocsProcessed() {
		t.Errorf("hub stats = %+v", s)
	}
}

// Hammer Open / Get / Consume / CloseTenant / Stats concurrently across
// tenants — the registry's locking must hold up under -race.
func TestHubConcurrentOpenCloseConsume(t *testing.T) {
	h := NewHub(HubConfig{Defaults: Config{
		WindowBuckets: 6, WindowResolution: time.Hour,
		SeedCount: 5, SeedWarmupDocs: 5, TopK: 5, Shards: 2,
	}})
	defer h.Close()

	const (
		workers = 8
		iters   = 200
		names   = 5
	)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				name := fmt.Sprintf("t%d", (w+i)%names)
				e, err := h.Open(name)
				if err != nil {
					t.Errorf("Open(%s): %v", name, err)
					return
				}
				e.Consume(&stream.Item{
					Time:  t0.Add(time.Duration(i) * time.Minute),
					DocID: fmt.Sprintf("w%d-i%d", w, i),
					Tags:  []string{"a", fmt.Sprintf("b%d", i%7)},
				})
				switch i % 20 {
				case 7:
					h.CloseTenant(name)
				case 13:
					_ = h.Stats()
					_ = h.List()
				case 17:
					if e, ok := h.Get(name); ok {
						_ = e.CurrentRanking()
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if h.Len() > names {
		t.Errorf("Len = %d, want <= %d", h.Len(), names)
	}
}
