package core

import (
	"sort"
	"strings"

	"enblogue/internal/pairs"
)

// ExpandTopic grows a detected pair into a tag set: the pair plus up to
// maxExtra tags that currently co-occur with both members. The paper:
// "these trends consist of pairs or, in general, sets of tags", which
// "offers the possibility of a full exploration of social media given the
// detected tag set as input".
//
// Expansion strength of a candidate tag x is min(cooc(t1,x), cooc(t2,x)):
// x must accompany both members to belong to the topic. Only pairs already
// tracked (i.e. containing a seed) can contribute, which is exactly the
// candidate universe the engine maintains.
func (e *Engine) ExpandTopic(k pairs.Key, maxExtra int) []string {
	tag1, tag2 := k.Tag1(), k.Tag2()
	set := []string{tag1, tag2}
	if maxExtra <= 0 {
		return set
	}
	co1 := make(map[string]float64)
	co2 := make(map[string]float64)
	for _, kk := range e.pairsTr.Keys() {
		if o, ok := kk.Other(tag1); ok && o != tag2 {
			if c := e.pairsTr.Cooccurrence(kk); c > 0 {
				co1[o] = c
			}
		}
		if o, ok := kk.Other(tag2); ok && o != tag1 {
			if c := e.pairsTr.Cooccurrence(kk); c > 0 {
				co2[o] = c
			}
		}
	}
	type cand struct {
		tag      string
		strength float64
	}
	var cands []cand
	//enblogue:unordered collect-then-sort: cands are sorted by (strength, tag) before use
	for tag, c1 := range co1 {
		if c2, ok := co2[tag]; ok {
			s := c1
			if c2 < s {
				s = c2
			}
			cands = append(cands, cand{tag, s})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].strength != cands[j].strength {
			return cands[i].strength > cands[j].strength
		}
		return cands[i].tag < cands[j].tag
	})
	for i := 0; i < len(cands) && i < maxExtra; i++ {
		set = append(set, cands[i].tag)
	}
	return set
}

// KeywordQuery renders a topic tag set as the traditional keyword query the
// paper proposes as the hand-off to downstream exploration. Multi-word tags
// (canonical entity names) are quoted.
func KeywordQuery(tags []string) string {
	parts := make([]string, 0, len(tags))
	for _, t := range tags {
		if t == "" {
			continue
		}
		if strings.ContainsAny(t, " \t") {
			parts = append(parts, `"`+t+`"`)
			continue
		}
		parts = append(parts, t)
	}
	return strings.Join(parts, " ")
}
