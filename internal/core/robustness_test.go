package core

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"enblogue/internal/stream"
)

// The engine must tolerate out-of-order event times: in-window stragglers
// count, too-old ones drop, and ticking stays monotone.
func TestEngineOutOfOrderItems(t *testing.T) {
	e := New(testConfig())
	base := t0
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 2000; i++ {
		// Timestamps wander ±30 minutes around a moving front.
		jitter := time.Duration(rng.Intn(3600)-1800) * time.Second
		at := base.Add(time.Duration(i)*30*time.Second + jitter)
		e.Consume(&stream.Item{
			Time:  at,
			DocID: fmt.Sprintf("o%d", i),
			Tags:  []string{"news", fmt.Sprintf("t%d", rng.Intn(5))},
		})
	}
	e.Flush()
	if e.DocsProcessed() != 2000 {
		t.Errorf("DocsProcessed = %d", e.DocsProcessed())
	}
	r := e.CurrentRanking()
	if r.At.IsZero() {
		t.Error("no final ranking under out-of-order input")
	}
	for _, topic := range r.Topics {
		if topic.Score < 0 {
			t.Errorf("negative score: %+v", topic)
		}
	}
}

// A hard backwards time jump (misconfigured source clock) must not panic or
// corrupt state.
func TestEngineBackwardsTimeJump(t *testing.T) {
	e := New(testConfig())
	e.Consume(&stream.Item{Time: t0.Add(100 * time.Hour), DocID: "future", Tags: []string{"a", "b"}})
	e.Consume(&stream.Item{Time: t0, DocID: "past", Tags: []string{"a", "b"}})
	e.Consume(&stream.Item{Time: t0.Add(101 * time.Hour), DocID: "next", Tags: []string{"a", "b"}})
	e.Flush()
	if e.DocsProcessed() != 3 {
		t.Errorf("DocsProcessed = %d", e.DocsProcessed())
	}
}

// Items with enormous tag sets must be handled (quadratic pair generation
// is bounded by the tracker's MaxPairs budget).
func TestEngineWideTagSets(t *testing.T) {
	cfg := testConfig()
	cfg.MaxPairs = 500
	e := New(cfg)
	var tags []string
	for i := 0; i < 100; i++ {
		tags = append(tags, fmt.Sprintf("wide%d", i))
	}
	for i := 0; i < 30; i++ {
		e.Consume(&stream.Item{
			Time:  t0.Add(time.Duration(i) * time.Minute),
			DocID: fmt.Sprintf("w%d", i),
			Tags:  tags,
		})
	}
	e.Flush()
	if got := e.ActivePairs(); got > 2*cfg.MaxPairs {
		t.Errorf("ActivePairs = %d, exceeds budget %d by more than sweep slack",
			got, cfg.MaxPairs)
	}
}

// The engine behind an AsyncStage must be race-free against CurrentRanking
// readers (run with -race).
func TestEngineBehindAsyncStage(t *testing.T) {
	e := New(testConfig())
	stage := stream.NewAsyncStage(e, 64)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			e.CurrentRanking() // concurrent reader
		}
	}()
	for i := 0; i < 2000; i++ {
		stage.Consume(&stream.Item{
			Time:  t0.Add(time.Duration(i) * time.Minute),
			DocID: fmt.Sprintf("a%d", i),
			Tags:  []string{"x", fmt.Sprintf("y%d", i%7)},
		})
	}
	stage.Close()
	<-done
	if e.DocsProcessed() != 2000 {
		t.Errorf("DocsProcessed = %d", e.DocsProcessed())
	}
	if e.CurrentRanking().At.IsZero() {
		t.Error("flush through AsyncStage did not tick")
	}
}

// Duplicate document IDs are the wrapper's problem (stream.Dedup), but the
// engine must at least not misbehave when they slip through.
func TestEngineDuplicateDocIDs(t *testing.T) {
	e := New(testConfig())
	for i := 0; i < 300; i++ {
		e.Consume(&stream.Item{
			Time:  t0.Add(time.Duration(i) * time.Minute),
			DocID: "same-id",
			Tags:  []string{"a", "b"},
		})
	}
	e.Flush()
	if e.DocsProcessed() != 300 {
		t.Errorf("DocsProcessed = %d", e.DocsProcessed())
	}
}

// Zero-time items (unset timestamps from broken wrappers) must not wedge
// the tick scheduler permanently.
func TestEngineZeroTimeItem(t *testing.T) {
	e := New(testConfig())
	e.Consume(&stream.Item{DocID: "zero", Tags: []string{"a", "b"}})
	for i := 0; i < 100; i++ {
		e.Consume(&stream.Item{
			Time:  t0.Add(time.Duration(i) * time.Minute),
			DocID: fmt.Sprintf("n%d", i),
			Tags:  []string{"a", "b"},
		})
	}
	e.Flush()
	if e.CurrentRanking().At.IsZero() {
		t.Error("engine never ticked after zero-time item")
	}
}
