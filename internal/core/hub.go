package core

import (
	"fmt"
	"path/filepath"
	"sort"
	"sync"
)

// Hub is a named-tenant engine registry: one process hosts many independent
// topic streams — one per community, feed, language, or customer — each a
// full *Engine with its own window, seed set, pair tracker, detectors, and
// subscription broker. Tenants share nothing except the process-wide intern
// table (a tag interned by one tenant costs the others no work and no
// correctness: rankings order by rendered strings, never by raw IDs), so a
// tenant's rankings are bit-identical to a standalone engine fed the same
// item sequence.
//
// Construction layers per-tenant option overrides over hub-wide defaults:
// Open copies the default config, applies the tenant's mutators, and builds
// the engine from the normalized result. All methods are safe for
// concurrent use.
type Hub struct {
	cfg HubConfig

	// mu guards the tenant registry only; engine methods are never called
	// under it, so it is the outermost class in the process.
	//
	//enblogue:lock hub 5
	mu      sync.Mutex
	tenants map[string]*Engine
	closed  bool
}

// HubConfig parameterises a Hub. The zero value is usable: paper-default
// engines, unbounded tenant count.
type HubConfig struct {
	// Defaults is the hub-wide engine configuration every tenant starts
	// from; Open's mutators override per tenant. Normalized per tenant at
	// Open time.
	Defaults Config
	// MaxTenants caps the number of simultaneously open tenants. Zero or
	// negative means unlimited.
	MaxTenants int
}

// NewHub returns an empty hub.
func NewHub(cfg HubConfig) *Hub {
	return &Hub{cfg: cfg, tenants: make(map[string]*Engine)}
}

// maxTenantNameLen bounds tenant names so they stay usable as URL path
// segments and log fields.
const maxTenantNameLen = 64

// ValidateTenantName reports whether name is usable as a tenant name:
// 1–64 characters drawn from letters, digits, '.', '_' and '-', excluding
// the path-traversal names "." and "..". The alphabet is exactly the
// URL-path-safe set the /v1/tenants/{name} wire surface routes on, so
// every openable tenant is addressable ("." and ".." would be rewritten
// away by HTTP path cleaning, leaving an unreachable tenant).
func ValidateTenantName(name string) error {
	if name == "" {
		return fmt.Errorf("core: empty tenant name")
	}
	if name == "." || name == ".." {
		return fmt.Errorf("core: tenant name %q not allowed", name)
	}
	if len(name) > maxTenantNameLen {
		return fmt.Errorf("core: tenant name longer than %d bytes", maxTenantNameLen)
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return fmt.Errorf("core: tenant name %q: invalid byte %q", name, c)
		}
	}
	return nil
}

// Open returns the named tenant's engine, creating it on first use
// (create-or-get). A new tenant's config is the hub's Defaults with the
// given mutators applied on top; for an existing tenant the mutators are
// ignored — the first Open wins, so concurrent racers agree on one engine.
//
//enblogue:acquires hub
func (h *Hub) Open(name string, mutate ...func(*Config)) (*Engine, error) {
	if err := ValidateTenantName(name); err != nil {
		return nil, err
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return nil, fmt.Errorf("core: hub is closed")
	}
	if e, ok := h.tenants[name]; ok {
		return e, nil
	}
	if h.cfg.MaxTenants > 0 && len(h.tenants) >= h.cfg.MaxTenants {
		return nil, fmt.Errorf("core: tenant limit %d reached", h.cfg.MaxTenants)
	}
	cfg := h.cfg.Defaults
	for _, m := range mutate {
		if m != nil {
			m(&cfg)
		}
	}
	if cfg.Durability.Dir != "" {
		// Each tenant persists under its own subdirectory; tenant names are
		// validated above to the URL-path-safe alphabet, so the join cannot
		// escape the hub's data directory. Reopening a name after a restart
		// therefore recovers that tenant's prior state inside New.
		cfg.Durability.Dir = filepath.Join(cfg.Durability.Dir, name)
	}
	e := New(cfg) // New normalizes, so overrides cannot wedge the engine
	h.tenants[name] = e
	return e, nil
}

// Get returns the named tenant's engine without creating it.
//
//enblogue:acquires hub
func (h *Hub) Get(name string) (*Engine, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	e, ok := h.tenants[name]
	return e, ok
}

// List returns the open tenant names, sorted.
//
//enblogue:acquires hub
func (h *Hub) List() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]string, 0, len(h.tenants))
	//enblogue:unordered collect-then-sort: the names are sorted before returning
	for name := range h.tenants {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of open tenants.
//
//enblogue:acquires hub
func (h *Hub) Len() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.tenants)
}

// CloseTenant removes the named tenant and closes its engine's broker
// (draining in-flight deliveries and closing every subscription channel).
// It reports whether the tenant existed. The engine close runs outside the
// hub lock — a subscriber callback may call back into the hub freely.
//
//enblogue:acquires hub
func (h *Hub) CloseTenant(name string) bool {
	h.mu.Lock()
	e, ok := h.tenants[name]
	delete(h.tenants, name)
	h.mu.Unlock()
	if ok {
		e.Close()
	}
	return ok
}

// snapshot returns the current engines outside any lock, so hub-wide
// operations that block on broker drains cannot deadlock with subscriber
// callbacks re-entering the hub.
//
//enblogue:acquires hub
func (h *Hub) snapshot() []*Engine {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]*Engine, 0, len(h.tenants))
	//enblogue:unordered collects the engine set; per-tenant engines are independent, no cross-tenant state orders them
	for _, e := range h.tenants {
		out = append(out, e)
	}
	return out
}

// Flush flushes every open tenant: each runs a final evaluation tick at its
// own last observed event time and blocks until its published rankings are
// delivered.
func (h *Hub) Flush() {
	for _, e := range h.snapshot() {
		e.Flush()
	}
}

// Close closes every tenant's engine and marks the hub closed: subsequent
// Opens fail, and the registry empties. Tenants flushing final state should
// be Flushed first. Idempotent.
//
//enblogue:acquires hub
func (h *Hub) Close() {
	h.mu.Lock()
	h.closed = true
	engines := make([]*Engine, 0, len(h.tenants))
	//enblogue:unordered collects engines for shutdown; close order between independent tenants is immaterial
	for _, e := range h.tenants {
		engines = append(engines, e)
	}
	h.tenants = make(map[string]*Engine)
	h.mu.Unlock()
	for _, e := range engines {
		e.Close()
	}
}

// HubStats aggregates engine counters across all open tenants.
type HubStats struct {
	Tenants         int
	DocsProcessed   int64
	ActivePairs     int
	Subscribers     int
	RankingsDropped int64
}

// Stats returns hub-wide aggregate counters.
func (h *Hub) Stats() HubStats {
	engines := h.snapshot()
	s := HubStats{Tenants: len(engines)}
	for _, e := range engines {
		s.DocsProcessed += e.DocsProcessed()
		s.ActivePairs += e.ActivePairs()
		s.Subscribers += e.Subscribers()
		s.RankingsDropped += e.RankingsDropped()
	}
	return s
}
