package persona

import (
	"testing"
	"time"

	"enblogue/internal/pairs"
)

var t0 = time.Date(2011, 6, 12, 0, 0, 0, 0, time.UTC)

func newWatcher(k int) (*Registry, *Watcher) {
	r := NewRegistry()
	r.Set(&Profile{Name: "alice", Keywords: []string{"volcano"}})
	r.Set(&Profile{Name: "bob"}) // empty profile: alerts on everything
	return r, NewWatcher(r, k)
}

func TestWatcherAlertsOnEntry(t *testing.T) {
	_, w := newWatcher(5)
	alerts := w.Observe(t0, topics(
		Topic{Pair: pairs.MakeKey("iceland", "volcano"), Score: 3},
		Topic{Pair: pairs.MakeKey("tennis", "final"), Score: 5},
	))
	// alice: only the volcano topic (keyword match); bob: both.
	if len(alerts) != 3 {
		t.Fatalf("alerts = %+v", alerts)
	}
	if alerts[0].User != "alice" || !alerts[0].Pair.Contains("volcano") {
		t.Errorf("alerts[0] = %+v", alerts[0])
	}
	if alerts[1].User != "bob" || alerts[1].Rank != 0 {
		t.Errorf("alerts[1] = %+v", alerts[1])
	}
}

func TestWatcherNoRepeatWhileActive(t *testing.T) {
	_, w := newWatcher(5)
	ts := topics(Topic{Pair: pairs.MakeKey("iceland", "volcano"), Score: 3})
	if got := w.Observe(t0, ts); len(got) == 0 {
		t.Fatal("no initial alert")
	}
	if got := w.Observe(t0.Add(time.Hour), ts); len(got) != 0 {
		t.Errorf("repeated alert while topic stays ranked: %+v", got)
	}
}

func TestWatcherRealertsAfterLeaving(t *testing.T) {
	_, w := newWatcher(5)
	volcano := topics(Topic{Pair: pairs.MakeKey("iceland", "volcano"), Score: 3})
	w.Observe(t0, volcano)
	// Topic leaves the ranking entirely.
	w.Observe(t0.Add(time.Hour), nil)
	got := w.Observe(t0.Add(2*time.Hour), volcano)
	users := map[string]bool{}
	for _, a := range got {
		users[a.User] = true
	}
	if !users["alice"] || !users["bob"] {
		t.Errorf("re-emergence alerts = %+v", got)
	}
}

func TestWatcherTopKBoundary(t *testing.T) {
	r := NewRegistry()
	r.Set(&Profile{Name: "u"})
	w := NewWatcher(r, 1)
	ts := topics(
		Topic{Pair: pairs.MakeKey("a", "b"), Score: 5},
		Topic{Pair: pairs.MakeKey("c", "d"), Score: 3},
	)
	alerts := w.Observe(t0, ts)
	if len(alerts) != 1 || alerts[0].Pair != pairs.MakeKey("a", "b") {
		t.Errorf("k=1 alerts = %+v", alerts)
	}
	// c+d overtakes a+b: one new alert for c+d.
	ts2 := topics(
		Topic{Pair: pairs.MakeKey("c", "d"), Score: 9},
		Topic{Pair: pairs.MakeKey("a", "b"), Score: 5},
	)
	alerts = w.Observe(t0.Add(time.Hour), ts2)
	if len(alerts) != 1 || alerts[0].Pair != pairs.MakeKey("c", "d") {
		t.Errorf("overtake alerts = %+v", alerts)
	}
}

func TestWatcherExclusiveProfile(t *testing.T) {
	r := NewRegistry()
	r.Set(&Profile{Name: "only-volcano", Keywords: []string{"volcano"}, Exclusive: true})
	w := NewWatcher(r, 5)
	alerts := w.Observe(t0, topics(
		Topic{Pair: pairs.MakeKey("tennis", "final"), Score: 9},
		Topic{Pair: pairs.MakeKey("iceland", "volcano"), Score: 1},
	))
	if len(alerts) != 1 || alerts[0].Rank != 0 {
		t.Errorf("exclusive alerts = %+v (volcano should be rank 0 after filtering)", alerts)
	}
}

func TestWatcherReset(t *testing.T) {
	_, w := newWatcher(5)
	ts := topics(Topic{Pair: pairs.MakeKey("iceland", "volcano"), Score: 3})
	w.Observe(t0, ts)
	w.Reset("alice")
	got := w.Observe(t0.Add(time.Hour), ts)
	if len(got) != 1 || got[0].User != "alice" {
		t.Errorf("post-reset alerts = %+v, want alice re-alerted only", got)
	}
	w.Reset("") // full reset
	got = w.Observe(t0.Add(2*time.Hour), ts)
	if len(got) != 2 {
		t.Errorf("post-full-reset alerts = %+v", got)
	}
}

func TestWatcherDefaultK(t *testing.T) {
	r := NewRegistry()
	w := NewWatcher(r, 0)
	if w.k != 10 {
		t.Errorf("default k = %d", w.k)
	}
}
