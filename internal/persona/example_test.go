package persona_test

import (
	"fmt"

	"enblogue/internal/pairs"
	"enblogue/internal/persona"
)

func ExampleRerank() {
	topics := []persona.Topic{
		{Pair: pairs.MakeKey("election", "recount"), Score: 0.9},
		{Pair: pairs.MakeKey("iceland", "volcano"), Score: 0.4},
	}
	traveller := &persona.Profile{
		Name:     "traveller",
		Keywords: []string{"volcano"},
		Boost:    4,
	}
	for i, t := range persona.Rerank(topics, traveller) {
		fmt.Printf("%d. %s (%.1f)\n", i+1, t.Pair, t.Score)
	}
	// Output:
	// 1. iceland+volcano (1.6)
	// 2. election+recount (0.9)
}

func ExampleProfile_exclusive() {
	topics := []persona.Topic{
		{Pair: pairs.MakeKey("election", "recount"), Score: 0.9},
		{Pair: pairs.MakeKey("iceland", "volcano"), Score: 0.4},
	}
	onlyVolcanoes := &persona.Profile{
		Name:      "volcanologist",
		Keywords:  []string{"volcano"},
		Exclusive: true, // drop everything off-interest
	}
	out := persona.Rerank(topics, onlyVolcanoes)
	fmt.Println(len(out), "topic:", out[0].Pair)
	// Output:
	// 1 topic: iceland+volcano
}
