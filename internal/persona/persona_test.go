package persona

import (
	"reflect"
	"testing"

	"enblogue/internal/pairs"
)

func topics(ts ...Topic) []Topic { return ts }

func TestMatchTag(t *testing.T) {
	p := &Profile{
		Keywords:   []string{"Volcano", "air"},
		Categories: []string{"Sports"},
	}
	tests := []struct {
		tag  string
		want bool
	}{
		{"volcano", true},
		{"VOLCANO", true},
		{"air-traffic", true}, // substring keyword match
		{"sports", true},      // category exact match
		{"sportsman", false},  // categories match exactly only
		{"politics", false},
		{"", false},
	}
	for _, tc := range tests {
		if got := p.MatchTag(tc.tag); got != tc.want {
			t.Errorf("MatchTag(%q) = %v, want %v", tc.tag, got, tc.want)
		}
	}
}

func TestMatchesAndWeight(t *testing.T) {
	p := &Profile{Keywords: []string{"iceland", "volcano"}, Boost: 2}
	k2 := pairs.MakeKey("iceland", "volcano")
	k1 := pairs.MakeKey("iceland", "airport")
	k0 := pairs.MakeKey("sports", "tennis")
	if got := p.Matches(k2); got != 2 {
		t.Errorf("Matches(both) = %d, want 2", got)
	}
	if got := p.Weight(k2); got != 4 {
		t.Errorf("Weight(both) = %v, want 4 (boost²)", got)
	}
	if got := p.Weight(k1); got != 2 {
		t.Errorf("Weight(one) = %v, want 2", got)
	}
	if got := p.Weight(k0); got != 1 {
		t.Errorf("Weight(none) = %v, want 1", got)
	}
	p.Exclusive = true
	if got := p.Weight(k0); got != 0 {
		t.Errorf("Exclusive Weight(none) = %v, want 0", got)
	}
}

func TestDefaultBoost(t *testing.T) {
	p := &Profile{Keywords: []string{"x"}}
	if got := p.Weight(pairs.MakeKey("x", "y")); got != 3 {
		t.Errorf("default boost weight = %v, want 3", got)
	}
}

func TestRerankReorders(t *testing.T) {
	in := topics(
		Topic{Pair: pairs.MakeKey("economy", "election"), Score: 10},
		Topic{Pair: pairs.MakeKey("iceland", "volcano"), Score: 4},
		Topic{Pair: pairs.MakeKey("tennis", "final"), Score: 6},
	)
	p := &Profile{Keywords: []string{"volcano"}, Boost: 5}
	out := Rerank(in, p)
	if out[0].Pair != pairs.MakeKey("iceland", "volcano") {
		t.Errorf("boosted topic not first: %+v", out)
	}
	if out[0].Score != 20 {
		t.Errorf("boosted score = %v, want 20", out[0].Score)
	}
	// Input order untouched.
	if in[1].Score != 4 {
		t.Error("Rerank mutated its input")
	}
}

func TestRerankExclusiveFilters(t *testing.T) {
	in := topics(
		Topic{Pair: pairs.MakeKey("economy", "election"), Score: 10},
		Topic{Pair: pairs.MakeKey("iceland", "volcano"), Score: 4},
	)
	p := &Profile{Categories: []string{"volcano"}, Exclusive: true}
	out := Rerank(in, p)
	if len(out) != 1 || out[0].Pair.Tag1() != "iceland" {
		t.Errorf("Exclusive Rerank = %+v, want only volcano topic", out)
	}
}

func TestRerankEmptyProfilePreservesScoreOrder(t *testing.T) {
	in := topics(
		Topic{Pair: pairs.MakeKey("b", "c"), Score: 1},
		Topic{Pair: pairs.MakeKey("a", "d"), Score: 7},
	)
	out := Rerank(in, &Profile{})
	if out[0].Score != 7 || out[1].Score != 1 {
		t.Errorf("empty profile order = %+v", out)
	}
	out = Rerank(in, nil)
	if out[0].Score != 7 {
		t.Errorf("nil profile order = %+v", out)
	}
}

func TestRerankDeterministicTies(t *testing.T) {
	in := topics(
		Topic{Pair: pairs.MakeKey("z", "y"), Score: 5},
		Topic{Pair: pairs.MakeKey("a", "b"), Score: 5},
	)
	out := Rerank(in, nil)
	if out[0].Pair.Tag1() != "a" {
		t.Errorf("tie order = %+v, want a+b first", out)
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	r.Set(&Profile{Name: "alice", Keywords: []string{"volcano"}})
	r.Set(&Profile{Name: "bob", Categories: []string{"sports"}})
	r.Set(&Profile{}) // no name: ignored
	r.Set(nil)
	if got := r.Names(); !reflect.DeepEqual(got, []string{"alice", "bob"}) {
		t.Errorf("Names = %v", got)
	}
	if r.Get("alice") == nil || r.Get("carol") != nil {
		t.Error("Get wrong")
	}
	// Set stores a copy: mutating the original must not affect the registry.
	p := &Profile{Name: "dave", Boost: 2}
	r.Set(p)
	p.Boost = 99
	if r.Get("dave").Boost != 2 {
		t.Error("registry did not copy profile")
	}
	r.Remove("bob")
	if r.Get("bob") != nil {
		t.Error("Remove failed")
	}
}

func TestRerankAll(t *testing.T) {
	r := NewRegistry()
	r.Set(&Profile{Name: "volcano-fan", Keywords: []string{"volcano"}, Boost: 10})
	r.Set(&Profile{Name: "sports-fan", Categories: []string{"tennis"}, Boost: 10})
	in := topics(
		Topic{Pair: pairs.MakeKey("iceland", "volcano"), Score: 5},
		Topic{Pair: pairs.MakeKey("tennis", "final"), Score: 5},
	)
	views := r.RerankAll(in)
	if views["volcano-fan"][0].Pair.Tag2() != "volcano" {
		t.Errorf("volcano-fan view = %+v", views["volcano-fan"])
	}
	if views["sports-fan"][0].Pair.Tag1() != "final" {
		t.Errorf("sports-fan view = %+v", views["sports-fan"])
	}
}
