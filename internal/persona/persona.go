// Package persona implements the paper's personalization component: "users
// to register continuous keyword queries or to choose pre-selected topic
// categories to influence the nature of the emergent topics presented...
// The topics will be ranked according to the specified user preferences and
// each user will be presented with a list containing completely different
// or just differently ordered emergent topics."
package persona

import (
	"sort"
	"strings"
	"sync"

	"enblogue/internal/pairs"
	"enblogue/internal/text"
)

// Topic is a scored emergent-topic candidate handed to personalization.
type Topic struct {
	Pair  pairs.Key
	Score float64
}

// Profile is one user's standing preferences.
type Profile struct {
	// Name identifies the user/session.
	Name string
	// Keywords is the continuous keyword query: terms of interest matched
	// against topic tags (normalized; a keyword matches a tag when equal
	// or contained as a substring).
	Keywords []string
	// Categories are pre-selected topic categories matched exactly against
	// topic tags.
	Categories []string
	// Boost multiplies a topic's score once per matching tag. Zero means
	// the default 3.
	Boost float64
	// Exclusive drops topics with no matching tag instead of merely
	// down-ranking them ("completely different or just differently
	// ordered").
	Exclusive bool
}

// normalized returns a copy of the profile with normalized match terms.
func (p *Profile) normalized() (keywords, categories []string) {
	return text.NormalizeAll(p.Keywords), text.NormalizeAll(p.Categories)
}

// boost returns the effective boost factor.
func (p *Profile) boost() float64 {
	if p.Boost <= 0 {
		return 3
	}
	return p.Boost
}

// MatchTag reports whether a single tag matches the profile.
func (p *Profile) MatchTag(tag string) bool {
	tag = text.Normalize(tag)
	if tag == "" {
		return false
	}
	keywords, categories := p.normalized()
	for _, c := range categories {
		if tag == c {
			return true
		}
	}
	for _, k := range keywords {
		if tag == k || strings.Contains(tag, k) {
			return true
		}
	}
	return false
}

// Matches counts how many of the topic's two tags match the profile (0-2).
func (p *Profile) Matches(k pairs.Key) int {
	n := 0
	if p.MatchTag(k.Tag1()) {
		n++
	}
	if p.MatchTag(k.Tag2()) {
		n++
	}
	return n
}

// Weight returns the multiplicative preference weight for a topic:
// boost^matches, or 0 for non-matching topics of an Exclusive profile.
func (p *Profile) Weight(k pairs.Key) float64 {
	m := p.Matches(k)
	if m == 0 {
		if p.Exclusive {
			return 0
		}
		return 1
	}
	w := p.boost()
	if m == 2 {
		w *= p.boost()
	}
	return w
}

// Empty reports whether the profile expresses no preference at all.
func (p *Profile) Empty() bool {
	return len(p.Keywords) == 0 && len(p.Categories) == 0
}

// Rerank applies the profile to the topic list and returns a new list
// sorted by preference-weighted score (descending, ties by pair string).
// Topics weighted to zero are dropped. An empty profile returns the input
// order (a fresh copy, re-sorted by raw score).
func Rerank(topics []Topic, p *Profile) []Topic {
	out := make([]Topic, 0, len(topics))
	for _, t := range topics {
		w := 1.0
		if p != nil && !p.Empty() {
			w = p.Weight(t.Pair)
		}
		if w == 0 {
			continue
		}
		out = append(out, Topic{Pair: t.Pair, Score: t.Score * w})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Pair.String() < out[j].Pair.String()
	})
	return out
}

// Registry holds the standing profiles of all connected users. It powers
// show case 3, where "users can change their preferences at any time and
// observe the impact". Safe for concurrent use: HTTP handlers register
// profiles while the ranking publisher reranks against them. Stored
// profiles are copied on Set and never mutated afterwards, so readers need
// no lock beyond the map access.
type Registry struct {
	mu       sync.RWMutex
	profiles map[string]*Profile
}

// NewRegistry returns an empty profile registry.
func NewRegistry() *Registry {
	return &Registry{profiles: make(map[string]*Profile)}
}

// Set registers or replaces the profile under its name.
func (r *Registry) Set(p *Profile) {
	if p == nil || p.Name == "" {
		return
	}
	cp := *p
	r.mu.Lock()
	r.profiles[p.Name] = &cp
	r.mu.Unlock()
}

// Get returns the profile registered under name, or nil. Callers must not
// mutate it.
func (r *Registry) Get(name string) *Profile {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.profiles[name]
}

// Remove deletes a profile.
func (r *Registry) Remove(name string) {
	r.mu.Lock()
	delete(r.profiles, name)
	r.mu.Unlock()
}

// Len returns the number of registered profiles.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.profiles)
}

// Names returns the registered profile names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	out := make([]string, 0, len(r.profiles))
	for n := range r.profiles {
		out = append(out, n)
	}
	r.mu.RUnlock()
	sort.Strings(out)
	return out
}

// RerankAll produces each registered user's personalized view of the
// topics, keyed by profile name.
func (r *Registry) RerankAll(topics []Topic) map[string][]Topic {
	r.mu.RLock()
	profiles := make(map[string]*Profile, len(r.profiles))
	for name, p := range r.profiles {
		profiles[name] = p
	}
	r.mu.RUnlock()
	out := make(map[string][]Topic, len(profiles))
	for name, p := range profiles {
		out[name] = Rerank(topics, p)
	}
	return out
}
