package persona

import (
	"sort"
	"time"

	"enblogue/internal/pairs"
)

// Alert notifies a user that a topic matching their standing preferences
// newly entered their personalized top-k — the paper's promise that users
// "want to be automatically notified about a newly arising topic that is
// about to become hot".
type Alert struct {
	User  string
	Pair  pairs.Key
	Rank  int // 0-based rank in the user's personalized list
	Score float64
	At    time.Time
}

// Watcher turns per-tick topic lists into per-user alerts. A user is
// alerted the first time a topic appears in their personalized top-k, and
// again only after the topic has left it (re-emergence). Not safe for
// concurrent use; call Observe from the ranking goroutine.
type Watcher struct {
	registry *Registry
	k        int
	// active tracks, per user, the topics currently inside their top-k.
	active map[string]map[pairs.Key]bool
}

// NewWatcher returns a watcher alerting on entries into each user's top-k.
// k <= 0 means 10.
func NewWatcher(registry *Registry, k int) *Watcher {
	if k <= 0 {
		k = 10
	}
	return &Watcher{
		registry: registry,
		k:        k,
		active:   make(map[string]map[pairs.Key]bool),
	}
}

// Observe processes one tick's topics and returns the alerts it triggers,
// ordered by (user, rank). Matching profiles see their personalized
// rankings; for alert purposes only matching topics can alert — a user
// with preferences is not alerted about unrelated topics that drift
// through their list, while an empty profile alerts on everything in the
// top-k.
func (w *Watcher) Observe(at time.Time, topics []Topic) []Alert {
	var alerts []Alert
	for _, name := range w.registry.Names() {
		p := w.registry.Get(name)
		view := Rerank(topics, p)
		if len(view) > w.k {
			view = view[:w.k]
		}
		cur := make(map[pairs.Key]bool, len(view))
		prev := w.active[name]
		for i, t := range view {
			if !p.Empty() && p.Matches(t.Pair) == 0 {
				continue // unrelated topic drifting through the list
			}
			cur[t.Pair] = true
			if prev[t.Pair] {
				continue // already alerted while it stays in the top-k
			}
			alerts = append(alerts, Alert{
				User:  name,
				Pair:  t.Pair,
				Rank:  i,
				Score: t.Score,
				At:    at,
			})
		}
		w.active[name] = cur
	}
	sort.Slice(alerts, func(i, j int) bool {
		if alerts[i].User != alerts[j].User {
			return alerts[i].User < alerts[j].User
		}
		return alerts[i].Rank < alerts[j].Rank
	})
	return alerts
}

// Reset forgets all active state (e.g. after a profile change, so the user
// is re-alerted under their new preferences).
func (w *Watcher) Reset(user string) {
	if user == "" {
		w.active = make(map[string]map[pairs.Key]bool)
		return
	}
	delete(w.active, user)
}
