// Package stream implements the paper's push-based stream-processing
// architecture: data items are tuples of (timestamp, docId, set of tags,
// set of entities) that flow along producer–consumer edges of an operator
// DAG from sources to sinks. Operators can be shared between multiple query
// plans (Section 4.1: "overlapping parts, like data sources, sketching
// operators, entity tagging, and statistics operators are shared for
// efficiency").
package stream

import (
	"context"
	"sync"
	"time"
)

// Item is the stream tuple of the paper: (timestamp, docId, set of tags,
// set of entities). Text carries the raw document content for the entity
// tagger; Source names the originating wrapper.
type Item struct {
	Time     time.Time
	DocID    string
	Tags     []string
	Entities []string
	Text     string
	Source   string
}

// Clone returns a deep copy of the item. Operators that mutate tag or entity
// sets must clone first so that sibling consumers in other plans see the
// original tuple.
func (it *Item) Clone() *Item {
	cp := *it
	cp.Tags = append([]string(nil), it.Tags...)
	cp.Entities = append([]string(nil), it.Entities...)
	return &cp
}

// AllTags returns the union of Tags and Entities: the combined tag space the
// paper uses when entity tags are "combined with regular tags to detect
// tag/entity mixtures as emergent topics".
func (it *Item) AllTags() []string {
	out := make([]string, 0, len(it.Tags)+len(it.Entities))
	seen := make(map[string]bool, len(it.Tags)+len(it.Entities))
	for _, t := range it.Tags {
		if !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	for _, e := range it.Entities {
		if !seen[e] {
			seen[e] = true
			out = append(out, e)
		}
	}
	return out
}

// Sink consumes stream items. Consume is called from a single producing
// goroutine per edge; sinks shared across concurrently running plans must
// synchronise internally or be wrapped in an AsyncStage.
type Sink interface {
	Consume(*Item)
}

// Flusher is implemented by sinks that buffer state and want a signal when
// the stream ends.
type Flusher interface {
	Flush()
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(*Item)

// Consume calls f(it).
func (f SinkFunc) Consume(it *Item) { f(it) }

// FanOut pushes each item to every subscribed sink, in subscription order.
// It is the producer side of the paper's producer–consumer edges and the
// mechanism by which one operator instance feeds multiple plans.
type FanOut struct {
	sinks []Sink
}

// Subscribe adds a downstream consumer.
func (f *FanOut) Subscribe(s Sink) { f.sinks = append(f.sinks, s) }

// Emit pushes it to all subscribers.
func (f *FanOut) Emit(it *Item) {
	for _, s := range f.sinks {
		s.Consume(it)
	}
}

// Subscribers returns the number of attached sinks.
func (f *FanOut) Subscribers() int { return len(f.sinks) }

// Flush forwards the flush signal to all subscribers that implement Flusher.
func (f *FanOut) Flush() {
	for _, s := range f.sinks {
		if fl, ok := s.(Flusher); ok {
			fl.Flush()
		}
	}
}

// Operator is a stream transformer: it consumes items and emits derived
// items to its subscribers.
type Operator interface {
	Sink
	Subscribe(Sink)
}

// Filter forwards only items for which Pred returns true.
type Filter struct {
	FanOut
	Pred func(*Item) bool
}

// NewFilter returns a filter operator with the given predicate.
func NewFilter(pred func(*Item) bool) *Filter { return &Filter{Pred: pred} }

// Consume implements Sink.
func (f *Filter) Consume(it *Item) {
	if f.Pred(it) {
		f.Emit(it)
	}
}

// Map transforms each item with Fn and forwards the result. Returning nil
// drops the item. Fn must not mutate its argument in place unless it owns
// it; use Item.Clone when the transformation rewrites shared state.
type Map struct {
	FanOut
	Fn func(*Item) *Item
}

// NewMap returns a map operator applying fn to every item.
func NewMap(fn func(*Item) *Item) *Map { return &Map{Fn: fn} }

// Consume implements Sink.
func (m *Map) Consume(it *Item) {
	if out := m.Fn(it); out != nil {
		m.Emit(out)
	}
}

// Tee is a pass-through operator used purely as a named sharing point in a
// DAG (e.g. the output of an entity tagger consumed by several plans).
type Tee struct {
	FanOut
}

// Consume implements Sink.
func (t *Tee) Consume(it *Item) { t.Emit(it) }

// Dedup drops items whose DocID was already seen within the last capacity
// items (sliding set, FIFO eviction). Wrappers replaying overlapping feeds
// use it to avoid double counting.
type Dedup struct {
	FanOut
	capacity int
	seen     map[string]bool
	order    []string
	next     int
}

// NewDedup returns a dedup operator remembering up to capacity DocIDs.
func NewDedup(capacity int) *Dedup {
	if capacity < 1 {
		capacity = 1
	}
	return &Dedup{
		capacity: capacity,
		seen:     make(map[string]bool, capacity),
		order:    make([]string, 0, capacity),
	}
}

// Consume implements Sink.
func (d *Dedup) Consume(it *Item) {
	if d.seen[it.DocID] {
		return
	}
	if len(d.order) < d.capacity {
		d.order = append(d.order, it.DocID)
	} else {
		delete(d.seen, d.order[d.next])
		d.order[d.next] = it.DocID
		d.next = (d.next + 1) % d.capacity
	}
	d.seen[it.DocID] = true
	d.Emit(it)
}

// Counter counts items flowing through an edge; it is the simplest of the
// paper's "statistics operators". It is safe for concurrent use.
type Counter struct {
	FanOut
	mu    sync.Mutex
	n     int64
	first time.Time
	last  time.Time
}

// Consume implements Sink.
func (c *Counter) Consume(it *Item) {
	c.mu.Lock()
	if c.n == 0 {
		c.first = it.Time
	}
	c.n++
	c.last = it.Time
	c.mu.Unlock()
	c.Emit(it)
}

// Count returns the number of items seen.
func (c *Counter) Count() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// StreamSpan returns the event-time range [first, last] observed.
func (c *Counter) StreamSpan() (first, last time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.first, c.last
}

// AsyncStage decouples a downstream sink onto its own goroutine through a
// buffered channel, providing pipeline parallelism between operators — the
// push-based producer/consumer edge made concrete. Close flushes and waits.
type AsyncStage struct {
	ch   chan *Item
	done chan struct{}
	sink Sink
	once sync.Once
}

// NewAsyncStage wraps sink behind a channel of the given buffer size and
// starts its consumer goroutine.
func NewAsyncStage(sink Sink, buffer int) *AsyncStage {
	if buffer < 1 {
		buffer = 1
	}
	a := &AsyncStage{
		ch:   make(chan *Item, buffer),
		done: make(chan struct{}),
		sink: sink,
	}
	go a.loop()
	return a
}

func (a *AsyncStage) loop() {
	defer close(a.done)
	for it := range a.ch {
		a.sink.Consume(it)
	}
	if fl, ok := a.sink.(Flusher); ok {
		fl.Flush()
	}
}

// Consume implements Sink. It blocks when the buffer is full, providing
// backpressure to the producer.
func (a *AsyncStage) Consume(it *Item) { a.ch <- it }

// Close stops the stage after draining buffered items and waits for the
// consumer goroutine to finish. Safe to call more than once.
func (a *AsyncStage) Close() {
	a.once.Do(func() { close(a.ch) })
	<-a.done
}

// Source produces a stream of items, pushing each into emit. Run returns
// when the stream is exhausted or ctx is cancelled.
type Source interface {
	Run(ctx context.Context, emit func(*Item)) error
}

// SourceFunc adapts a function to the Source interface.
type SourceFunc func(ctx context.Context, emit func(*Item)) error

// Run calls f.
func (f SourceFunc) Run(ctx context.Context, emit func(*Item)) error {
	return f(ctx, emit)
}

// SliceSource replays a fixed slice of items in order.
type SliceSource []*Item

// Run implements Source.
func (s SliceSource) Run(ctx context.Context, emit func(*Item)) error {
	for _, it := range s {
		select {
		case <-ctx.Done():
			return ctx.Err()
		default:
		}
		emit(it)
	}
	return nil
}
