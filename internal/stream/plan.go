package stream

import (
	"context"
	"fmt"
	"sort"
	"sync"
)

// Plan is a declarative query plan: a named chain of operator stages ending
// in a sink. Stages are identified by a key; the Runner shares stages with
// equal keys between plans so that, as in the paper, "overlapping parts,
// like data sources, sketching operators, entity tagging, and statistics
// operators are shared for efficiency".
type Plan struct {
	// Name identifies the plan (e.g. "jaccard-2d" vs "cosine-1d").
	Name string
	// Stages are applied source → sink in order. A stage with a non-empty
	// Key is shared across plans; stages with empty keys are private.
	Stages []Stage
	// Sink receives the fully processed items of this plan.
	Sink Sink
}

// Stage is one operator slot in a plan.
type Stage struct {
	// Key identifies the stage for sharing. Two plans using the same Key
	// receive the same operator instance; New is called once.
	Key string
	// New constructs the operator. It must be safe to call once per
	// distinct key (shared) or once per plan (private).
	New func() Operator
}

// Shared returns a stage shared under the given key.
func Shared(key string, newOp func() Operator) Stage {
	return Stage{Key: key, New: newOp}
}

// Private returns a plan-private stage.
func Private(newOp func() Operator) Stage {
	return Stage{New: newOp}
}

// Runner wires one Source into any number of Plans, deduplicating shared
// stage prefixes, and pumps the stream to completion. A stage is shared
// between two plans only when the whole prefix up to and including that
// stage has equal keys — sharing a suffix below divergent prefixes would
// change semantics.
type Runner struct {
	source Source
	plans  []*Plan

	mu      sync.Mutex
	builtN  int // distinct operator instances constructed
	sharedN int // stage slots served by a previously built instance
}

// NewRunner returns a runner over the given source.
func NewRunner(source Source) *Runner {
	return &Runner{source: source}
}

// Add registers a plan. It must be called before Run.
func (r *Runner) Add(p *Plan) *Runner {
	r.plans = append(r.plans, p)
	return r
}

// Stats returns how many operator instances were constructed and how many
// stage slots were satisfied by sharing, after Run.
func (r *Runner) Stats() (built, shared int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.builtN, r.sharedN
}

// Run builds the shared DAG and pumps the source through it. It returns the
// source error, if any. Flush is propagated to all sinks when the source is
// exhausted.
func (r *Runner) Run(ctx context.Context) error {
	root, err := r.build()
	if err != nil {
		return err
	}
	err = r.source.Run(ctx, root.Emit)
	root.Flush()
	return err
}

// build constructs the operator DAG and returns its root fan-out.
func (r *Runner) build() (*FanOut, error) {
	if len(r.plans) == 0 {
		return nil, fmt.Errorf("stream: runner has no plans")
	}
	root := &FanOut{}
	// sharedOps maps prefix path → operator instance.
	sharedOps := make(map[string]Operator)
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, p := range r.plans {
		if p.Sink == nil {
			return nil, fmt.Errorf("stream: plan %q has no sink", p.Name)
		}
		upstream := subscriber(root)
		prefix := ""
		sharable := true
		for i, st := range p.Stages {
			if st.New == nil {
				return nil, fmt.Errorf("stream: plan %q stage %d has nil constructor", p.Name, i)
			}
			var op Operator
			if st.Key != "" && sharable {
				prefix = prefix + "/" + st.Key
				if existing, ok := sharedOps[prefix]; ok {
					op = existing
					r.sharedN++
					upstream = subscriber(op) // attach next stage below the shared instance
					continue
				}
				op = st.New()
				sharedOps[prefix] = op
				r.builtN++
			} else {
				sharable = false
				op = st.New()
				r.builtN++
			}
			upstream.Subscribe(op)
			upstream = subscriber(op)
		}
		upstream.Subscribe(p.Sink)
	}
	return root, nil
}

// subscriberIface is the minimal surface build needs from fan-out points.
type subscriberIface interface {
	Subscribe(Sink)
}

func subscriber(v subscriberIface) subscriberIface { return v }

// PlanNames returns the registered plan names, sorted.
func (r *Runner) PlanNames() []string {
	names := make([]string, len(r.plans))
	for i, p := range r.plans {
		names[i] = p.Name
	}
	sort.Strings(names)
	return names
}
