package stream

import (
	"context"
	"fmt"
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"
)

var base = time.Date(2011, 6, 12, 0, 0, 0, 0, time.UTC)

func mkItem(id string, tags ...string) *Item {
	return &Item{Time: base, DocID: id, Tags: tags}
}

func TestItemClone(t *testing.T) {
	it := &Item{Time: base, DocID: "d1", Tags: []string{"a"}, Entities: []string{"e"}}
	cp := it.Clone()
	cp.Tags[0] = "changed"
	cp.Entities[0] = "changed"
	if it.Tags[0] != "a" || it.Entities[0] != "e" {
		t.Error("Clone shares backing arrays with original")
	}
}

func TestItemAllTags(t *testing.T) {
	it := &Item{Tags: []string{"a", "b", "a"}, Entities: []string{"b", "c"}}
	got := it.AllTags()
	want := []string{"a", "b", "c"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("AllTags = %v, want %v", got, want)
	}
}

func collect(items *[]*Item) Sink {
	return SinkFunc(func(it *Item) { *items = append(*items, it) })
}

func TestFanOutOrder(t *testing.T) {
	var got []string
	f := &FanOut{}
	f.Subscribe(SinkFunc(func(it *Item) { got = append(got, "first:"+it.DocID) }))
	f.Subscribe(SinkFunc(func(it *Item) { got = append(got, "second:"+it.DocID) }))
	f.Emit(mkItem("x"))
	want := []string{"first:x", "second:x"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("fan-out order = %v, want %v", got, want)
	}
	if f.Subscribers() != 2 {
		t.Errorf("Subscribers = %d, want 2", f.Subscribers())
	}
}

func TestFilter(t *testing.T) {
	var out []*Item
	f := NewFilter(func(it *Item) bool { return len(it.Tags) > 0 })
	f.Subscribe(collect(&out))
	f.Consume(mkItem("a", "tag"))
	f.Consume(mkItem("b"))
	if len(out) != 1 || out[0].DocID != "a" {
		t.Errorf("filter passed %v, want only a", out)
	}
}

func TestMapTransformAndDrop(t *testing.T) {
	var out []*Item
	m := NewMap(func(it *Item) *Item {
		if it.DocID == "drop" {
			return nil
		}
		cp := it.Clone()
		cp.Tags = append(cp.Tags, "extra")
		return cp
	})
	m.Subscribe(collect(&out))
	orig := mkItem("keep", "t")
	m.Consume(orig)
	m.Consume(mkItem("drop"))
	if len(out) != 1 {
		t.Fatalf("map emitted %d items, want 1", len(out))
	}
	if !reflect.DeepEqual(out[0].Tags, []string{"t", "extra"}) {
		t.Errorf("mapped tags = %v", out[0].Tags)
	}
	if len(orig.Tags) != 1 {
		t.Error("map mutated the original item")
	}
}

func TestDedup(t *testing.T) {
	var out []*Item
	d := NewDedup(2)
	d.Subscribe(collect(&out))
	d.Consume(mkItem("a"))
	d.Consume(mkItem("a")) // dropped
	d.Consume(mkItem("b"))
	d.Consume(mkItem("c")) // evicts a
	d.Consume(mkItem("a")) // passes again after eviction
	ids := make([]string, len(out))
	for i, it := range out {
		ids[i] = it.DocID
	}
	want := []string{"a", "b", "c", "a"}
	if !reflect.DeepEqual(ids, want) {
		t.Errorf("dedup output = %v, want %v", ids, want)
	}
}

func TestCounter(t *testing.T) {
	c := &Counter{}
	var out []*Item
	c.Subscribe(collect(&out))
	c.Consume(&Item{Time: base, DocID: "1"})
	c.Consume(&Item{Time: base.Add(time.Minute), DocID: "2"})
	if c.Count() != 2 {
		t.Errorf("Count = %d, want 2", c.Count())
	}
	first, last := c.StreamSpan()
	if !first.Equal(base) || !last.Equal(base.Add(time.Minute)) {
		t.Errorf("StreamSpan = %v..%v", first, last)
	}
	if len(out) != 2 {
		t.Errorf("counter forwarded %d items, want 2", len(out))
	}
}

func TestAsyncStage(t *testing.T) {
	var mu sync.Mutex
	var got []string
	flushed := false
	sink := &flushSink{
		consume: func(it *Item) {
			mu.Lock()
			got = append(got, it.DocID)
			mu.Unlock()
		},
		flush: func() {
			mu.Lock()
			flushed = true
			mu.Unlock()
		},
	}
	a := NewAsyncStage(sink, 4)
	for i := 0; i < 10; i++ {
		a.Consume(mkItem(fmt.Sprintf("d%d", i)))
	}
	a.Close()
	a.Close() // idempotent
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 10 {
		t.Errorf("async stage delivered %d items, want 10", len(got))
	}
	for i, id := range got {
		if id != fmt.Sprintf("d%d", i) {
			t.Errorf("item %d = %s, out of order", i, id)
		}
	}
	if !flushed {
		t.Error("Flush not propagated on Close")
	}
}

type flushSink struct {
	consume func(*Item)
	flush   func()
}

func (f *flushSink) Consume(it *Item) { f.consume(it) }
func (f *flushSink) Flush()           { f.flush() }

func TestSliceSource(t *testing.T) {
	items := SliceSource{mkItem("1"), mkItem("2")}
	var got []string
	err := items.Run(context.Background(), func(it *Item) { got = append(got, it.DocID) })
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []string{"1", "2"}) {
		t.Errorf("got %v", got)
	}
}

func TestSliceSourceCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	items := SliceSource{mkItem("1")}
	err := items.Run(ctx, func(it *Item) {})
	if err != context.Canceled {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

func TestRunnerSharesCommonPrefix(t *testing.T) {
	newCounts := map[string]int{}
	stage := func(key string) Stage {
		return Shared(key, func() Operator {
			newCounts[key]++
			return &Tee{}
		})
	}
	var out1, out2 []*Item
	r := NewRunner(SliceSource{mkItem("a"), mkItem("b")})
	r.Add(&Plan{
		Name:   "p1",
		Stages: []Stage{stage("source-norm"), stage("entity")},
		Sink:   collect(&out1),
	})
	r.Add(&Plan{
		Name:   "p2",
		Stages: []Stage{stage("source-norm"), stage("entity")},
		Sink:   collect(&out2),
	})
	if err := r.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if newCounts["source-norm"] != 1 || newCounts["entity"] != 1 {
		t.Errorf("shared stages constructed %v times, want once each", newCounts)
	}
	if len(out1) != 2 || len(out2) != 2 {
		t.Errorf("plan outputs %d/%d, want 2/2", len(out1), len(out2))
	}
	built, shared := r.Stats()
	if built != 2 || shared != 2 {
		t.Errorf("Stats = built %d shared %d, want 2/2", built, shared)
	}
}

func TestRunnerDivergentPrefixNotShared(t *testing.T) {
	newCounts := map[string]int{}
	mk := func(key string) func() Operator {
		return func() Operator {
			newCounts[key]++
			return &Tee{}
		}
	}
	var out1, out2 []*Item
	r := NewRunner(SliceSource{mkItem("a")})
	// Same downstream key "stats", but different first stages: the stats
	// instances must NOT be shared, because their inputs differ.
	r.Add(&Plan{
		Name:   "p1",
		Stages: []Stage{Shared("fa", mk("fa")), Shared("stats", mk("stats"))},
		Sink:   collect(&out1),
	})
	r.Add(&Plan{
		Name:   "p2",
		Stages: []Stage{Shared("fb", mk("fb")), Shared("stats", mk("stats"))},
		Sink:   collect(&out2),
	})
	if err := r.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if newCounts["stats"] != 2 {
		t.Errorf("stats constructed %d times, want 2 (divergent prefixes)", newCounts["stats"])
	}
}

func TestRunnerPrivateStagesNeverShared(t *testing.T) {
	n := 0
	var out1, out2 []*Item
	r := NewRunner(SliceSource{mkItem("a")})
	priv := func() Stage {
		return Private(func() Operator { n++; return &Tee{} })
	}
	r.Add(&Plan{Name: "p1", Stages: []Stage{priv()}, Sink: collect(&out1)})
	r.Add(&Plan{Name: "p2", Stages: []Stage{priv()}, Sink: collect(&out2)})
	if err := r.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("private stages constructed %d times, want 2", n)
	}
}

func TestRunnerKeyedStageAfterPrivateIsPrivate(t *testing.T) {
	n := 0
	var out1, out2 []*Item
	mkShared := func() Stage {
		return Shared("k", func() Operator { n++; return &Tee{} })
	}
	r := NewRunner(SliceSource{mkItem("a")})
	r.Add(&Plan{
		Name:   "p1",
		Stages: []Stage{Private(func() Operator { return &Tee{} }), mkShared()},
		Sink:   collect(&out1),
	})
	r.Add(&Plan{
		Name:   "p2",
		Stages: []Stage{Private(func() Operator { return &Tee{} }), mkShared()},
		Sink:   collect(&out2),
	})
	if err := r.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("keyed stage below private prefix constructed %d times, want 2", n)
	}
}

func TestRunnerErrors(t *testing.T) {
	r := NewRunner(SliceSource{})
	if err := r.Run(context.Background()); err == nil {
		t.Error("expected error for runner with no plans")
	}
	r2 := NewRunner(SliceSource{}).Add(&Plan{Name: "p"})
	if err := r2.Run(context.Background()); err == nil {
		t.Error("expected error for plan without sink")
	}
	r3 := NewRunner(SliceSource{}).Add(&Plan{
		Name:   "p",
		Stages: []Stage{{Key: "x"}},
		Sink:   SinkFunc(func(*Item) {}),
	})
	if err := r3.Run(context.Background()); err == nil {
		t.Error("expected error for stage with nil constructor")
	}
}

func TestRunnerFlushReachesSinks(t *testing.T) {
	flushed := 0
	sink := &flushSink{consume: func(*Item) {}, flush: func() { flushed++ }}
	r := NewRunner(SliceSource{mkItem("a")})
	r.Add(&Plan{
		Name:   "p",
		Stages: []Stage{Shared("t", func() Operator { return &Tee{} })},
		Sink:   sink,
	})
	if err := r.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if flushed != 1 {
		t.Errorf("sink flushed %d times, want 1", flushed)
	}
}

func TestPlanNames(t *testing.T) {
	r := NewRunner(SliceSource{})
	r.Add(&Plan{Name: "zeta"}).Add(&Plan{Name: "alpha"})
	got := r.PlanNames()
	if !sort.StringsAreSorted(got) || len(got) != 2 {
		t.Errorf("PlanNames = %v", got)
	}
}

func BenchmarkFanOutEmit(b *testing.B) {
	f := &FanOut{}
	for i := 0; i < 4; i++ {
		f.Subscribe(SinkFunc(func(*Item) {}))
	}
	it := mkItem("d", "a", "b")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Emit(it)
	}
}
