// Package server is the push-based Web front-end: rankings are streamed to
// browsers "in a push-based manner (i.e., without the user having to
// continuously poll the server for updates on emergent topic rankings)".
// The paper uses the Ajax Push Engine comet server; this implementation
// uses standard-library HTTP with Server-Sent Events, which delivers the
// same no-polling semantics to modern browsers (including mobile clients
// over low-bandwidth connections — SSE frames are tiny deltas).
//
// The server is multi-tenant: one process serves many named topic streams
// (one engine per community, feed, language, or customer), each with its
// own SSE hub, profile registry, alert watcher, and history ring, behind
// the tenant-scoped /v1/tenants/{name}/... wire contract. The tenant-less
// /v1/* routes remain first-class aliases onto the "default" tenant, so
// single-stream deployments and existing clients keep working unchanged.
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"enblogue/internal/core"
	"enblogue/internal/history"
	"enblogue/internal/persona"
	"enblogue/internal/rank"
	"enblogue/internal/stream"
)

// Engine is the engine surface the server consumes: stats counters, the
// subscription broker, and the ingest sink behind POST items. Both
// *core.Engine and the public enblogue engine satisfy it.
type Engine interface {
	DocsProcessed() int64
	ActivePairs() int
	Shards() int
	Seeds() []string
	LastEventTime() time.Time
	Subscribers() int
	IndexedTags() int
	MatchedLastTick() int64
	RankingsDropped() int64
	Subscribe(ctx context.Context, opts ...core.SubOption) *core.Subscription
	Consume(it *stream.Item)
	ConsumeBatch(items []*stream.Item)
	IngestDepth() int
	IngestDropped() int64
}

// TopicView is the wire form of one ranked emergent topic.
//
//enblogue:wire
type TopicView struct {
	Rank         int     `json:"rank"`
	Tag1         string  `json:"tag1"`
	Tag2         string  `json:"tag2"`
	Score        float64 `json:"score"`
	Correlation  float64 `json:"correlation"`
	Cooccurrence float64 `json:"cooccurrence"`
}

// RankingView is the wire form of one tick's output, optionally
// personalized per registered profile.
//
//enblogue:wire
type RankingView struct {
	At       time.Time              `json:"at"`
	Seeds    []string               `json:"seeds,omitempty"`
	Topics   []TopicView            `json:"topics"`
	Profiles map[string][]TopicView `json:"profiles,omitempty"`
	Moves    []rank.Move            `json:"moves,omitempty"`
	Alerts   []AlertView            `json:"alerts,omitempty"`
}

// AlertView is the wire form of one continuous-query notification: a topic
// matching the user's standing preferences newly entered their top-k.
//
//enblogue:wire
type AlertView struct {
	User  string  `json:"user"`
	Tag1  string  `json:"tag1"`
	Tag2  string  `json:"tag2"`
	Rank  int     `json:"rank"`
	Score float64 `json:"score"`
}

// Hub fans ranking updates out to connected SSE clients. Slow clients drop
// frames rather than stalling the broadcaster.
type Hub struct {
	mu      sync.Mutex
	clients map[chan []byte]bool
	last    []byte
}

// NewHub returns an empty hub.
func NewHub() *Hub {
	return &Hub{clients: make(map[chan []byte]bool)}
}

// Broadcast marshals v and pushes it to every connected client. The frame
// is retained so late joiners immediately receive the current state.
func (h *Hub) Broadcast(v interface{}) error {
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("server: marshaling broadcast: %w", err)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.last = data
	for ch := range h.clients {
		select {
		case ch <- data:
		default: // client buffer full: drop this frame for that client
		}
	}
	return nil
}

// subscribe registers a client channel and returns it with the latest
// frame pre-queued.
func (h *Hub) subscribe() chan []byte {
	ch := make(chan []byte, 8)
	h.mu.Lock()
	if h.last != nil {
		ch <- h.last
	}
	h.clients[ch] = true
	h.mu.Unlock()
	return ch
}

func (h *Hub) unsubscribe(ch chan []byte) {
	h.mu.Lock()
	delete(h.clients, ch)
	h.mu.Unlock()
}

// ClientCount returns the number of connected SSE clients.
func (h *Hub) ClientCount() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.clients)
}

// Last returns the most recently broadcast frame (nil before the first).
func (h *Hub) Last() []byte {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.last
}

// DefaultTenant is the tenant the tenant-less /v1/* routes and the legacy
// single-engine server methods (Follow, PublishRanking, AttachHistory)
// operate on. It always exists and cannot be deleted.
const DefaultTenant = "default"

// tenantState is one tenant's complete front-end state: its SSE hub,
// profile registry, alert watcher, history ring, last published view, and
// followed engine. Tenants share nothing, so a slow or bursty tenant
// cannot delay another's broadcasts.
type tenantState struct {
	name    string
	created time.Time
	hub     *Hub
	// ctx ends when the tenant is removed or the server closes; SSE
	// handlers and follow feeds for this tenant select on it.
	ctx      context.Context
	cancel   context.CancelFunc
	registry *persona.Registry

	mu         sync.Mutex
	watcher    *persona.Watcher
	lastView   RankingView
	prevIDs    rank.List
	history    *history.History
	engine     Engine
	feedCancel context.CancelFunc // stops a previous Follow's feed on re-follow
}

// Server exposes the enBlogue front-end endpoints. The stable, versioned
// wire contract (see DESIGN.md §5 and §7):
//
//	GET    /v1/tenants                    list tenants (TenantView array)
//	POST   /v1/tenants                    create-or-get a tenant {"name": ...}
//	GET    /v1/tenants/{tenant}           one tenant's summary
//	DELETE /v1/tenants/{tenant}           close a tenant ("default" is not deletable)
//	POST   /v1/tenants/{tenant}/items     ingest JSONL documents (the write path)
//	GET    /v1/tenants/{tenant}/rankings             current RankingView snapshot;
//	                                                 ?profile=name personalizes
//	GET    /v1/tenants/{tenant}/rankings/history     top topics over a time range
//	GET    /v1/tenants/{tenant}/rankings/trajectory  one pair's (rank, score) over time
//	GET    /v1/tenants/{tenant}/stream               SSE RankingView frames;
//	                                                 ?profile=name for a private stream
//	GET    /v1/tenants/{tenant}/profiles             list profiles (full JSON)
//	POST   /v1/tenants/{tenant}/profiles             register/update a profile
//	GET    /v1/tenants/{tenant}/profiles/{name}      fetch one profile
//	DELETE /v1/tenants/{tenant}/profiles/{name}      delete a profile
//	GET    /v1/tenants/{tenant}/stats                engine/broker/server counters
//
// The tenant-less /v1/{rankings,rankings/history,rankings/trajectory,
// stream,profiles,stats} routes are permanent aliases onto the "default"
// tenant — not deprecated — so single-stream deployments need never
// mention tenants. The pre-versioning routes (/events, /ranking, /profile,
// /profiles, /history, /trajectory, /stats) remain as deprecated aliases
// for one release; they answer identically and carry a Deprecation header
// pointing at their successor.
type Server struct {
	// ctx bounds server-side subscriptions (Follow feeds, per-profile
	// streams); Close cancels it.
	ctx     context.Context
	cancel  context.CancelFunc
	started time.Time

	mu           sync.Mutex
	tenants      map[string]*tenantState
	opener       Opener
	historyTicks int

	// lifecycleMu serialises tenant creation against deletion over the
	// wire, so POST /v1/tenants' open-then-follow-then-respond sequence is
	// atomic relative to DELETE /v1/tenants/{tenant}. It is never held
	// while publishing or serving reads.
	lifecycleMu sync.Mutex
}

// New returns a server with a single empty "default" tenant.
func New() *Server {
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		ctx:          ctx,
		cancel:       cancel,
		started:      time.Now(),
		tenants:      make(map[string]*tenantState),
		historyTicks: 4096,
	}
	s.ensureTenant(DefaultTenant)
	return s
}

// newTenantState builds a tenant's empty front-end state.
func (s *Server) newTenantState(name string) *tenantState {
	reg := persona.NewRegistry()
	ctx, cancel := context.WithCancel(s.ctx)
	return &tenantState{
		name:     name,
		created:  time.Now(),
		hub:      NewHub(),
		ctx:      ctx,
		cancel:   cancel,
		registry: reg,
		watcher:  persona.NewWatcher(reg, 10),
	}
}

// ensureTenant returns the named tenant's state, creating it if absent.
func (s *Server) ensureTenant(name string) *tenantState {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.tenants[name]
	if !ok {
		t = s.newTenantState(name)
		s.tenants[name] = t
	}
	return t
}

// tenant returns the named tenant's state, nil if absent.
func (s *Server) tenant(name string) *tenantState {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tenants[name]
}

// defaultTenant returns the always-present default tenant.
func (s *Server) defaultTenant() *tenantState { return s.ensureTenant(DefaultTenant) }

// Tenants returns the server's tenant names, sorted.
func (s *Server) Tenants() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.tenants))
	for name := range s.tenants {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Close releases the server's background resources: every tenant's engine
// feed and server-side subscriptions. Idempotent. The HTTP handler keeps
// answering from the last published state.
func (s *Server) Close() { s.cancel() }

// Hub exposes the default tenant's broadcast hub (for tests and embedding).
func (s *Server) Hub() *Hub { return s.defaultTenant().hub }

// Registry exposes the default tenant's personalization registry.
func (s *Server) Registry() *persona.Registry { return s.defaultTenant().registry }

// SetTenantHistoryTicks sets the history ring length FollowTenant gives a
// newly created non-default tenant (default 4096; <= 0 disables automatic
// histories). The default tenant keeps the legacy contract: no history
// until AttachHistory.
func (s *Server) SetTenantHistoryTicks(n int) {
	s.mu.Lock()
	s.historyTicks = n
	s.mu.Unlock()
}

// AttachEngine connects an engine to the default tenant's stats endpoint
// and enables its per-profile stream subscriptions and item ingest.
// AttachEngine does not feed rankings into the server; use Follow for
// that, or wire PublishRanking yourself.
func (s *Server) AttachEngine(e Engine) {
	t := s.defaultTenant()
	t.mu.Lock()
	t.engine = e
	t.mu.Unlock()
}

// AttachHistory connects a ranking history to the default tenant:
// PublishRanking records every tick into it, and the history/trajectory
// endpoints answer time-range queries against it.
func (s *Server) AttachHistory(h *history.History) {
	t := s.defaultTenant()
	t.mu.Lock()
	t.history = h
	t.mu.Unlock()
}

// Follow attaches the engine to the default tenant and subscribes the
// server to its ranking broker; see FollowTenant.
func (s *Server) Follow(e Engine) { _ = s.FollowTenant(DefaultTenant, e) }

// FollowTenant attaches the engine as the named tenant — created on first
// use — and subscribes the tenant to its ranking broker: every evaluation
// tick is published to the tenant's SSE clients, recorded into its
// history, and personalized for its registered profiles, without the
// engine knowing the server exists. A newly created non-default tenant
// gets its own history ring (SetTenantHistoryTicks). The feed stops when
// the tenant is removed, the server is Closed, or the engine's broker
// shuts down; re-following a tenant replaces its previous feed.
//
// Delivery follows the broker's drop-oldest contract: if publishing (per
// profile rerank + history record + JSON broadcast) ever falls more than
// the buffer behind a bursty replay, the oldest ticks are skipped rather
// than stalling the engine — history then has gaps. Drops are observable
// as rankingsDropped in the tenant's stats.
func (s *Server) FollowTenant(name string, e Engine) error {
	if err := core.ValidateTenantName(name); err != nil {
		return err
	}
	t := s.ensureTenant(name)
	s.mu.Lock()
	ticks := s.historyTicks
	s.mu.Unlock()

	ctx, cancel := context.WithCancel(t.ctx)
	t.mu.Lock()
	if t.feedCancel != nil {
		t.feedCancel()
	}
	t.engine = e
	t.feedCancel = cancel
	if t.history == nil && t.name != DefaultTenant && ticks > 0 {
		t.history = history.New(ticks)
	}
	t.mu.Unlock()

	// Sized far beyond any realistic tick backlog; publishing is cheap
	// relative to a tick interval.
	sub := e.Subscribe(ctx, core.SubBuffer(4096))
	go func() {
		for rn := range sub.Notifications() {
			r := rn.Ranking()
			s.publish(t, r)
		}
	}()
	return nil
}

// removeTenant drops the named tenant's state and cancels its context,
// ending its follow feed and parked SSE streams. The default tenant is
// never removed. Reports whether the tenant existed.
func (s *Server) removeTenant(name string) bool {
	if name == DefaultTenant {
		return false
	}
	s.mu.Lock()
	t, ok := s.tenants[name]
	delete(s.tenants, name)
	s.mu.Unlock()
	if ok {
		t.cancel()
	}
	return ok
}

// StatsView is the wire form of GET /v1/stats and the per-tenant
// /v1/tenants/{tenant}/stats.
//
//enblogue:wire
type StatsView struct {
	DocsProcessed   int64     `json:"docsProcessed"`
	ActivePairs     int       `json:"activePairs"`
	Shards          int       `json:"shards"`
	Seeds           int       `json:"seeds"`
	LastEventTime   time.Time `json:"lastEventTime"`
	Clients         int       `json:"clients"`
	Profiles        int       `json:"profiles"`
	Subscriptions   int       `json:"subscriptions"`
	RankingsDropped int64     `json:"rankingsDropped"`
	IndexedTags     int       `json:"indexedTags"`
	MatchedLastTick int64     `json:"matchedLastTick"`
	IngestDepth     int       `json:"ingestDepth"`
	IngestDropped   int64     `json:"ingestDropped"`
	SnapshotEpoch   int64     `json:"snapshotEpoch"`
	WALSegments     int       `json:"walSegments"`
	WALBytes        int64     `json:"walBytes"`
	LastSnapshotAt  time.Time `json:"lastSnapshotAt"`
	// Tiered exact/sketch memory model (WithTailSketch). The per-shard
	// eviction counters are live even with the tier disabled; the tier
	// fields are zero then.
	TailEnabled         bool    `json:"tailEnabled"`
	TailPairs           int     `json:"tailPairs"`
	TailEpsilon         float64 `json:"tailEpsilon"`
	EstimatedErrorBound float64 `json:"estimatedErrorBound"`
	Promotions          int64   `json:"promotions"`
	ApproxSeededPairs   int     `json:"approxSeededPairs"`
	EvictedByShard      []int64 `json:"evictedByShard"`
	DemotedByShard      []int64 `json:"demotedByShard"`
	Tenant              string  `json:"tenant"`
	Uptime              float64 `json:"uptime"`
}

// toViews converts topics to wire form.
func toViews(topics []persona.Topic) []TopicView {
	out := make([]TopicView, len(topics))
	for i, t := range topics {
		out[i] = TopicView{
			Rank: i + 1, Tag1: t.Pair.Tag1(), Tag2: t.Pair.Tag2(), Score: t.Score,
		}
	}
	return out
}

// PublishRanking converts an engine ranking to wire form and broadcasts it
// on the default tenant. Follow feeds it from a broker subscription;
// callers doing their own wiring may invoke it directly.
func (s *Server) PublishRanking(r core.Ranking) { s.publish(s.defaultTenant(), r) }

// publish converts one tenant's ranking to wire form — including each of
// the tenant's registered profiles' personalized lists and the rank moves
// since the tenant's last tick — and broadcasts it on the tenant's hub.
func (s *Server) publish(t *tenantState, r core.Ranking) {
	t.mu.Lock()
	h := t.history
	t.mu.Unlock()
	if h != nil {
		// Out-of-order ticks cannot happen from a single engine; an error
		// here means mis-wired publishers, surfaced by dropping the tick.
		_ = h.Record(r)
	}
	view := RankingView{At: r.At, Seeds: r.Seeds}
	var ptopics []persona.Topic
	var cur rank.List
	for i, tp := range r.Topics {
		view.Topics = append(view.Topics, TopicView{
			Rank:         i + 1,
			Tag1:         tp.Pair.Tag1(),
			Tag2:         tp.Pair.Tag2(),
			Score:        tp.Score,
			Correlation:  tp.Correlation,
			Cooccurrence: tp.Cooccurrence,
		})
		ptopics = append(ptopics, persona.Topic{Pair: tp.Pair, Score: tp.Score})
		cur = append(cur, rank.Entry{ID: tp.Pair.String(), Score: tp.Score})
	}
	views := t.registry.RerankAll(ptopics)
	if len(views) > 0 {
		view.Profiles = make(map[string][]TopicView, len(views))
		for name, ts := range views {
			view.Profiles[name] = toViews(ts)
		}
	}

	t.mu.Lock()
	view.Moves = rank.Diff(t.prevIDs, cur)
	for _, a := range t.watcher.Observe(r.At, ptopics) {
		view.Alerts = append(view.Alerts, AlertView{
			User: a.User, Tag1: a.Pair.Tag1(), Tag2: a.Pair.Tag2(),
			Rank: a.Rank, Score: a.Score,
		})
	}
	t.prevIDs = cur
	t.lastView = view
	t.mu.Unlock()

	// Broadcast errors mean a marshaling bug, not a client problem; the
	// view type is fully serialisable, so this cannot fail in practice.
	_ = t.hub.Broadcast(view)
}

// profileRequest is the POST /profile payload.
type profileRequest struct {
	Name       string   `json:"name"`
	Keywords   []string `json:"keywords"`
	Categories []string `json:"categories"`
	Boost      float64  `json:"boost"`
	Exclusive  bool     `json:"exclusive"`
}

// deprecated wraps a legacy handler with RFC 8594 deprecation headers
// pointing at the /v1 successor route.
func deprecated(successor string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", fmt.Sprintf("<%s>; rel=\"successor-version\"", successor))
		h(w, r)
	}
}

// Handler returns the HTTP handler serving all endpoints: the tenant-scoped
// /v1/tenants contract, the tenant-less /v1 aliases onto the default
// tenant, and the deprecated pre-versioning aliases.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleIndex)

	// Tenant management and the tenant-scoped wire contract.
	mux.HandleFunc("GET /v1/tenants", s.handleTenantsList)
	mux.HandleFunc("POST /v1/tenants", s.handleTenantCreate)
	mux.HandleFunc("GET /v1/tenants/{tenant}", s.handleTenantGet)
	mux.HandleFunc("DELETE /v1/tenants/{tenant}", s.handleTenantDelete)
	mux.HandleFunc("POST /v1/tenants/{tenant}/items", s.handleItemsIngest)
	mux.HandleFunc("GET /v1/tenants/{tenant}/rankings", s.handleV1Rankings)
	mux.HandleFunc("GET /v1/tenants/{tenant}/rankings/history", s.handleHistory)
	mux.HandleFunc("GET /v1/tenants/{tenant}/rankings/trajectory", s.handleTrajectory)
	mux.HandleFunc("GET /v1/tenants/{tenant}/stream", s.handleV1Stream)
	mux.HandleFunc("GET /v1/tenants/{tenant}/profiles", s.handleV1ProfilesList)
	mux.HandleFunc("POST /v1/tenants/{tenant}/profiles", s.handleV1ProfilePut)
	mux.HandleFunc("GET /v1/tenants/{tenant}/profiles/{name}", s.handleV1ProfileGet)
	mux.HandleFunc("DELETE /v1/tenants/{tenant}/profiles/{name}", s.handleV1ProfileDelete)
	mux.HandleFunc("GET /v1/tenants/{tenant}/stats", s.handleStats)

	// Tenant-less /v1 aliases: the same handlers against the default
	// tenant (no {tenant} path value resolves to it).
	mux.HandleFunc("GET /v1/rankings", s.handleV1Rankings)
	mux.HandleFunc("GET /v1/rankings/history", s.handleHistory)
	mux.HandleFunc("GET /v1/rankings/trajectory", s.handleTrajectory)
	mux.HandleFunc("GET /v1/stream", s.handleV1Stream)
	mux.HandleFunc("GET /v1/profiles", s.handleV1ProfilesList)
	mux.HandleFunc("POST /v1/profiles", s.handleV1ProfilePut)
	mux.HandleFunc("GET /v1/profiles/{name}", s.handleV1ProfileGet)
	mux.HandleFunc("DELETE /v1/profiles/{name}", s.handleV1ProfileDelete)
	mux.HandleFunc("GET /v1/stats", s.handleStats)

	// Deprecated aliases, kept for one release.
	mux.HandleFunc("/events", deprecated("/v1/stream", s.handleEvents))
	mux.HandleFunc("/ranking", deprecated("/v1/rankings", s.handleRanking))
	mux.HandleFunc("/profile", deprecated("/v1/profiles", s.handleProfile))
	mux.HandleFunc("/profiles", deprecated("/v1/profiles", s.handleProfiles))
	mux.HandleFunc("/history", deprecated("/v1/rankings/history", s.handleHistory))
	mux.HandleFunc("/trajectory", deprecated("/v1/rankings/trajectory", s.handleTrajectory))
	mux.HandleFunc("/stats", deprecated("/v1/stats", s.handleStats))
	return mux
}

// tenantOr404 resolves the request's tenant: the {tenant} path segment, or
// the default tenant on the tenant-less routes. Writes a 404 and returns
// nil when the named tenant does not exist.
func (s *Server) tenantOr404(w http.ResponseWriter, r *http.Request) *tenantState {
	name := r.PathValue("tenant")
	if name == "" {
		name = DefaultTenant
	}
	t := s.tenant(name)
	if t == nil {
		http.Error(w, fmt.Sprintf("unknown tenant %q", name), http.StatusNotFound)
	}
	return t
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	t := s.tenantOr404(w, r)
	if t == nil {
		return
	}
	t.mu.Lock()
	e := t.engine
	t.mu.Unlock()
	view := StatsView{
		Clients:  t.hub.ClientCount(),
		Profiles: t.registry.Len(),
		Tenant:   t.name,
		Uptime:   time.Since(t.created).Seconds(),
	}
	if e != nil {
		view.DocsProcessed = e.DocsProcessed()
		view.ActivePairs = e.ActivePairs()
		view.Shards = e.Shards()
		view.Seeds = len(e.Seeds())
		view.LastEventTime = e.LastEventTime()
		view.Subscriptions = e.Subscribers()
		view.RankingsDropped = e.RankingsDropped()
		view.IndexedTags = e.IndexedTags()
		view.MatchedLastTick = e.MatchedLastTick()
		view.IngestDepth = e.IngestDepth()
		view.IngestDropped = e.IngestDropped()
		// Durability is optional (both on the engine build and in the Engine
		// interface, which predates it), so it is surfaced via assertion:
		// engines without persistence report zero values.
		if d, ok := e.(interface {
			DurabilityStats() (core.DurabilityStats, bool)
		}); ok {
			if ds, on := d.DurabilityStats(); on {
				view.SnapshotEpoch = ds.SnapshotEpoch
				view.WALSegments = ds.WALSegments
				view.WALBytes = ds.WALBytes
				view.LastSnapshotAt = ds.LastSnapshotAt
			}
		}
		// The tiered tail is likewise optional on the Engine interface; the
		// per-shard eviction counters are populated even when the tier is
		// disabled (TailEnabled false, tier fields zero).
		if tt, ok := e.(interface{ TailStats() core.TailStats }); ok {
			ts := tt.TailStats()
			view.TailEnabled = ts.Enabled
			view.TailPairs = ts.TailPairs
			view.TailEpsilon = ts.Epsilon
			view.EstimatedErrorBound = ts.ErrorBound
			view.Promotions = ts.Promotions
			view.ApproxSeededPairs = ts.ApproxSeededPairs
			view.EvictedByShard = ts.EvictedByShard
			view.DemotedByShard = ts.DemotedByShard
		}
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(view); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, indexHTML)
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	t := s.tenantOr404(w, r)
	if t == nil {
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	fl.Flush() // deliver headers now so clients see the stream open
	ch := t.hub.subscribe()
	defer t.hub.unsubscribe(ch)
	for {
		select {
		case <-r.Context().Done():
			return
		case <-t.ctx.Done():
			// Tenant removed or server closing: end the stream so
			// http.Server.Shutdown can drain instead of timing out on
			// parked SSE handlers.
			return
		case frame := <-ch:
			if _, err := fmt.Fprintf(w, "data: %s\n\n", frame); err != nil {
				return
			}
			fl.Flush()
		}
	}
}

func (s *Server) handleRanking(w http.ResponseWriter, r *http.Request) {
	t := s.tenantOr404(w, r)
	if t == nil {
		return
	}
	t.mu.Lock()
	view := t.lastView
	t.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(view); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *Server) handleProfile(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	t := s.tenantOr404(w, r)
	if t == nil {
		return
	}
	var req profileRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad profile JSON: "+err.Error(), http.StatusBadRequest)
		return
	}
	if req.Name == "" {
		http.Error(w, "profile name required", http.StatusBadRequest)
		return
	}
	t.setProfile(&req)
	w.WriteHeader(http.StatusNoContent)
}

// setProfile registers/replaces a profile on the tenant and forgets the
// user's alert state so the new preferences re-alert.
func (t *tenantState) setProfile(req *profileRequest) {
	t.registry.Set(&persona.Profile{
		Name:       req.Name,
		Keywords:   req.Keywords,
		Categories: req.Categories,
		Boost:      req.Boost,
		Exclusive:  req.Exclusive,
	})
	t.mu.Lock()
	t.watcher.Reset(req.Name)
	t.mu.Unlock()
}

func (s *Server) handleProfiles(w http.ResponseWriter, r *http.Request) {
	t := s.tenantOr404(w, r)
	if t == nil {
		return
	}
	names := t.registry.Names()
	sort.Strings(names)
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(names); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// indexHTML is the minimal live demo page: an EventSource client rendering
// the pushed rankings, mirroring the paper's AJAX front-end.
const indexHTML = `<!DOCTYPE html>
<html>
<head><meta charset="utf-8"><title>enBlogue — emergent topics</title>
<style>
body{font-family:sans-serif;margin:2em;background:#fafafa}
h1{font-size:1.4em} table{border-collapse:collapse;min-width:30em}
td,th{border:1px solid #ccc;padding:.3em .6em;text-align:left}
tr:nth-child(even){background:#f0f0f0} .score{text-align:right}
#at{color:#666}
</style></head>
<body>
<h1>enBlogue &mdash; emergent topics</h1>
<p id="at">waiting for first ranking&hellip;</p>
<table><thead><tr><th>#</th><th>topic</th><th class="score">score</th></tr></thead>
<tbody id="topics"></tbody></table>
<script>
const es = new EventSource('/v1/stream');
es.onmessage = e => {
  const v = JSON.parse(e.data);
  document.getElementById('at').textContent = 'as of ' + v.at;
  const tb = document.getElementById('topics');
  tb.innerHTML = '';
  (v.topics || []).forEach(t => {
    const tr = document.createElement('tr');
    tr.innerHTML = '<td>' + t.rank + '</td><td>' + t.tag1 + ' + ' + t.tag2 +
      '</td><td class="score">' + t.score.toFixed(4) + '</td>';
    tb.appendChild(tr);
  });
};
</script>
</body></html>
`
