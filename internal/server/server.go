// Package server is the push-based Web front-end: rankings are streamed to
// browsers "in a push-based manner (i.e., without the user having to
// continuously poll the server for updates on emergent topic rankings)".
// The paper uses the Ajax Push Engine comet server; this implementation
// uses standard-library HTTP with Server-Sent Events, which delivers the
// same no-polling semantics to modern browsers (including mobile clients
// over low-bandwidth connections — SSE frames are tiny deltas).
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"enblogue/internal/core"
	"enblogue/internal/history"
	"enblogue/internal/persona"
	"enblogue/internal/rank"
)

// TopicView is the wire form of one ranked emergent topic.
type TopicView struct {
	Rank         int     `json:"rank"`
	Tag1         string  `json:"tag1"`
	Tag2         string  `json:"tag2"`
	Score        float64 `json:"score"`
	Correlation  float64 `json:"correlation"`
	Cooccurrence float64 `json:"cooccurrence"`
}

// RankingView is the wire form of one tick's output, optionally
// personalized per registered profile.
type RankingView struct {
	At       time.Time              `json:"at"`
	Seeds    []string               `json:"seeds,omitempty"`
	Topics   []TopicView            `json:"topics"`
	Profiles map[string][]TopicView `json:"profiles,omitempty"`
	Moves    []rank.Move            `json:"moves,omitempty"`
	Alerts   []AlertView            `json:"alerts,omitempty"`
}

// AlertView is the wire form of one continuous-query notification: a topic
// matching the user's standing preferences newly entered their top-k.
type AlertView struct {
	User  string  `json:"user"`
	Tag1  string  `json:"tag1"`
	Tag2  string  `json:"tag2"`
	Rank  int     `json:"rank"`
	Score float64 `json:"score"`
}

// Hub fans ranking updates out to connected SSE clients. Slow clients drop
// frames rather than stalling the broadcaster.
type Hub struct {
	mu      sync.Mutex
	clients map[chan []byte]bool
	last    []byte
}

// NewHub returns an empty hub.
func NewHub() *Hub {
	return &Hub{clients: make(map[chan []byte]bool)}
}

// Broadcast marshals v and pushes it to every connected client. The frame
// is retained so late joiners immediately receive the current state.
func (h *Hub) Broadcast(v interface{}) error {
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("server: marshaling broadcast: %w", err)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.last = data
	for ch := range h.clients {
		select {
		case ch <- data:
		default: // client buffer full: drop this frame for that client
		}
	}
	return nil
}

// subscribe registers a client channel and returns it with the latest
// frame pre-queued.
func (h *Hub) subscribe() chan []byte {
	ch := make(chan []byte, 8)
	h.mu.Lock()
	if h.last != nil {
		ch <- h.last
	}
	h.clients[ch] = true
	h.mu.Unlock()
	return ch
}

func (h *Hub) unsubscribe(ch chan []byte) {
	h.mu.Lock()
	delete(h.clients, ch)
	h.mu.Unlock()
}

// ClientCount returns the number of connected SSE clients.
func (h *Hub) ClientCount() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.clients)
}

// Last returns the most recently broadcast frame (nil before the first).
func (h *Hub) Last() []byte {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.last
}

// Server exposes the enBlogue front-end endpoints:
//
//	GET  /            demo page (auto-connecting EventSource client)
//	GET  /events      SSE stream of RankingView frames
//	GET  /ranking     current RankingView snapshot (JSON)
//	POST /profile     register/update a personalization profile (JSON)
//	GET  /profiles    list registered profile names
type Server struct {
	hub      *Hub
	registry *persona.Registry

	mu       sync.Mutex
	lastView RankingView
	prevIDs  rank.List
	history  *history.History
	watcher  *persona.Watcher
	engine   *core.Engine
}

// New returns a server with an empty profile registry.
func New() *Server {
	reg := persona.NewRegistry()
	return &Server{
		hub:      NewHub(),
		registry: reg,
		watcher:  persona.NewWatcher(reg, 10),
	}
}

// Hub exposes the underlying broadcast hub (for tests and embedding).
func (s *Server) Hub() *Hub { return s.hub }

// Registry exposes the personalization registry.
func (s *Server) Registry() *persona.Registry { return s.registry }

// AttachEngine connects the engine to the server's /stats endpoint. The
// engine is safe for concurrent use, so the server reads its counters
// directly — no external serialization between the ingest goroutine, the
// wall-clock ticker, and HTTP handlers is needed.
func (s *Server) AttachEngine(e *core.Engine) {
	s.mu.Lock()
	s.engine = e
	s.mu.Unlock()
}

// StatsView is the wire form of GET /stats.
type StatsView struct {
	DocsProcessed int64     `json:"docsProcessed"`
	ActivePairs   int       `json:"activePairs"`
	Shards        int       `json:"shards"`
	Seeds         int       `json:"seeds"`
	LastEventTime time.Time `json:"lastEventTime"`
	Clients       int       `json:"clients"`
	Profiles      int       `json:"profiles"`
}

// toViews converts topics to wire form.
func toViews(topics []persona.Topic) []TopicView {
	out := make([]TopicView, len(topics))
	for i, t := range topics {
		out[i] = TopicView{
			Rank: i + 1, Tag1: t.Pair.Tag1, Tag2: t.Pair.Tag2, Score: t.Score,
		}
	}
	return out
}

// PublishRanking converts an engine ranking to wire form — including each
// registered profile's personalized list and the rank moves since the last
// tick — and broadcasts it. Wire it to core.Config.OnRanking.
func (s *Server) PublishRanking(r core.Ranking) {
	s.mu.Lock()
	h := s.history
	s.mu.Unlock()
	if h != nil {
		// Out-of-order ticks cannot happen from a single engine; an error
		// here means mis-wired publishers, surfaced by dropping the tick.
		_ = h.Record(r)
	}
	view := RankingView{At: r.At, Seeds: r.Seeds}
	var ptopics []persona.Topic
	var cur rank.List
	for i, t := range r.Topics {
		view.Topics = append(view.Topics, TopicView{
			Rank:         i + 1,
			Tag1:         t.Pair.Tag1,
			Tag2:         t.Pair.Tag2,
			Score:        t.Score,
			Correlation:  t.Correlation,
			Cooccurrence: t.Cooccurrence,
		})
		ptopics = append(ptopics, persona.Topic{Pair: t.Pair, Score: t.Score})
		cur = append(cur, rank.Entry{ID: t.Pair.String(), Score: t.Score})
	}
	views := s.registry.RerankAll(ptopics)
	if len(views) > 0 {
		view.Profiles = make(map[string][]TopicView, len(views))
		for name, ts := range views {
			view.Profiles[name] = toViews(ts)
		}
	}

	s.mu.Lock()
	view.Moves = rank.Diff(s.prevIDs, cur)
	for _, a := range s.watcher.Observe(r.At, ptopics) {
		view.Alerts = append(view.Alerts, AlertView{
			User: a.User, Tag1: a.Pair.Tag1, Tag2: a.Pair.Tag2,
			Rank: a.Rank, Score: a.Score,
		})
	}
	s.prevIDs = cur
	s.lastView = view
	s.mu.Unlock()

	// Broadcast errors mean a marshaling bug, not a client problem; the
	// view type is fully serialisable, so this cannot fail in practice.
	_ = s.hub.Broadcast(view)
}

// profileRequest is the POST /profile payload.
type profileRequest struct {
	Name       string   `json:"name"`
	Keywords   []string `json:"keywords"`
	Categories []string `json:"categories"`
	Boost      float64  `json:"boost"`
	Exclusive  bool     `json:"exclusive"`
}

// Handler returns the HTTP handler serving all endpoints.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleIndex)
	mux.HandleFunc("/events", s.handleEvents)
	mux.HandleFunc("/ranking", s.handleRanking)
	mux.HandleFunc("/profile", s.handleProfile)
	mux.HandleFunc("/profiles", s.handleProfiles)
	mux.HandleFunc("/history", s.handleHistory)
	mux.HandleFunc("/trajectory", s.handleTrajectory)
	mux.HandleFunc("/stats", s.handleStats)
	return mux
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	e := s.engine
	s.mu.Unlock()
	view := StatsView{
		Clients:  s.hub.ClientCount(),
		Profiles: s.registry.Len(),
	}
	if e != nil {
		view.DocsProcessed = e.DocsProcessed()
		view.ActivePairs = e.ActivePairs()
		view.Shards = e.Shards()
		view.Seeds = len(e.Seeds())
		view.LastEventTime = e.LastEventTime()
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(view); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, indexHTML)
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	fl.Flush() // deliver headers now so clients see the stream open
	ch := s.hub.subscribe()
	defer s.hub.unsubscribe(ch)
	for {
		select {
		case <-r.Context().Done():
			return
		case frame := <-ch:
			if _, err := fmt.Fprintf(w, "data: %s\n\n", frame); err != nil {
				return
			}
			fl.Flush()
		}
	}
}

func (s *Server) handleRanking(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	view := s.lastView
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(view); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *Server) handleProfile(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	var req profileRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad profile JSON: "+err.Error(), http.StatusBadRequest)
		return
	}
	if req.Name == "" {
		http.Error(w, "profile name required", http.StatusBadRequest)
		return
	}
	s.registry.Set(&persona.Profile{
		Name:       req.Name,
		Keywords:   req.Keywords,
		Categories: req.Categories,
		Boost:      req.Boost,
		Exclusive:  req.Exclusive,
	})
	// Forget the user's alert state so the new preferences re-alert.
	s.mu.Lock()
	s.watcher.Reset(req.Name)
	s.mu.Unlock()
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleProfiles(w http.ResponseWriter, r *http.Request) {
	names := s.registry.Names()
	sort.Strings(names)
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(names); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// indexHTML is the minimal live demo page: an EventSource client rendering
// the pushed rankings, mirroring the paper's AJAX front-end.
const indexHTML = `<!DOCTYPE html>
<html>
<head><meta charset="utf-8"><title>enBlogue — emergent topics</title>
<style>
body{font-family:sans-serif;margin:2em;background:#fafafa}
h1{font-size:1.4em} table{border-collapse:collapse;min-width:30em}
td,th{border:1px solid #ccc;padding:.3em .6em;text-align:left}
tr:nth-child(even){background:#f0f0f0} .score{text-align:right}
#at{color:#666}
</style></head>
<body>
<h1>enBlogue &mdash; emergent topics</h1>
<p id="at">waiting for first ranking&hellip;</p>
<table><thead><tr><th>#</th><th>topic</th><th class="score">score</th></tr></thead>
<tbody id="topics"></tbody></table>
<script>
const es = new EventSource('/events');
es.onmessage = e => {
  const v = JSON.parse(e.data);
  document.getElementById('at').textContent = 'as of ' + v.at;
  const tb = document.getElementById('topics');
  tb.innerHTML = '';
  (v.topics || []).forEach(t => {
    const tr = document.createElement('tr');
    tr.innerHTML = '<td>' + t.rank + '</td><td>' + t.tag1 + ' + ' + t.tag2 +
      '</td><td class="score">' + t.score.toFixed(4) + '</td>';
    tb.appendChild(tr);
  });
};
</script>
</body></html>
`
