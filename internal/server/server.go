// Package server is the push-based Web front-end: rankings are streamed to
// browsers "in a push-based manner (i.e., without the user having to
// continuously poll the server for updates on emergent topic rankings)".
// The paper uses the Ajax Push Engine comet server; this implementation
// uses standard-library HTTP with Server-Sent Events, which delivers the
// same no-polling semantics to modern browsers (including mobile clients
// over low-bandwidth connections — SSE frames are tiny deltas).
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"enblogue/internal/core"
	"enblogue/internal/history"
	"enblogue/internal/persona"
	"enblogue/internal/rank"
)

// Engine is the engine surface the server consumes: stats counters plus
// the subscription broker. Both *core.Engine and the public enblogue
// engine satisfy it.
type Engine interface {
	DocsProcessed() int64
	ActivePairs() int
	Shards() int
	Seeds() []string
	LastEventTime() time.Time
	Subscribers() int
	RankingsDropped() int64
	Subscribe(ctx context.Context, opts ...core.SubOption) *core.Subscription
}

// TopicView is the wire form of one ranked emergent topic.
type TopicView struct {
	Rank         int     `json:"rank"`
	Tag1         string  `json:"tag1"`
	Tag2         string  `json:"tag2"`
	Score        float64 `json:"score"`
	Correlation  float64 `json:"correlation"`
	Cooccurrence float64 `json:"cooccurrence"`
}

// RankingView is the wire form of one tick's output, optionally
// personalized per registered profile.
type RankingView struct {
	At       time.Time              `json:"at"`
	Seeds    []string               `json:"seeds,omitempty"`
	Topics   []TopicView            `json:"topics"`
	Profiles map[string][]TopicView `json:"profiles,omitempty"`
	Moves    []rank.Move            `json:"moves,omitempty"`
	Alerts   []AlertView            `json:"alerts,omitempty"`
}

// AlertView is the wire form of one continuous-query notification: a topic
// matching the user's standing preferences newly entered their top-k.
type AlertView struct {
	User  string  `json:"user"`
	Tag1  string  `json:"tag1"`
	Tag2  string  `json:"tag2"`
	Rank  int     `json:"rank"`
	Score float64 `json:"score"`
}

// Hub fans ranking updates out to connected SSE clients. Slow clients drop
// frames rather than stalling the broadcaster.
type Hub struct {
	mu      sync.Mutex
	clients map[chan []byte]bool
	last    []byte
}

// NewHub returns an empty hub.
func NewHub() *Hub {
	return &Hub{clients: make(map[chan []byte]bool)}
}

// Broadcast marshals v and pushes it to every connected client. The frame
// is retained so late joiners immediately receive the current state.
func (h *Hub) Broadcast(v interface{}) error {
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("server: marshaling broadcast: %w", err)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.last = data
	for ch := range h.clients {
		select {
		case ch <- data:
		default: // client buffer full: drop this frame for that client
		}
	}
	return nil
}

// subscribe registers a client channel and returns it with the latest
// frame pre-queued.
func (h *Hub) subscribe() chan []byte {
	ch := make(chan []byte, 8)
	h.mu.Lock()
	if h.last != nil {
		ch <- h.last
	}
	h.clients[ch] = true
	h.mu.Unlock()
	return ch
}

func (h *Hub) unsubscribe(ch chan []byte) {
	h.mu.Lock()
	delete(h.clients, ch)
	h.mu.Unlock()
}

// ClientCount returns the number of connected SSE clients.
func (h *Hub) ClientCount() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.clients)
}

// Last returns the most recently broadcast frame (nil before the first).
func (h *Hub) Last() []byte {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.last
}

// Server exposes the enBlogue front-end endpoints. The stable, versioned
// wire contract (see DESIGN.md §5):
//
//	GET    /v1/rankings             current RankingView snapshot (JSON);
//	                                ?profile=name for a personalized view
//	GET    /v1/rankings/history     top topics over a time range
//	GET    /v1/rankings/trajectory  one pair's (rank, score) over time
//	GET    /v1/stream               SSE stream of RankingView frames;
//	                                ?profile=name for a per-profile stream
//	                                backed by a server-side subscription
//	GET    /v1/profiles             list registered profiles (full JSON)
//	POST   /v1/profiles             register/update a profile
//	GET    /v1/profiles/{name}      fetch one profile
//	DELETE /v1/profiles/{name}      delete a profile
//	GET    /v1/stats                engine/broker/server counters
//	GET    /                        demo page (auto-connecting EventSource)
//
// The pre-versioning routes (/events, /ranking, /profile, /profiles,
// /history, /trajectory, /stats) remain as deprecated aliases for one
// release; they answer identically and carry a Deprecation header pointing
// at their successor.
type Server struct {
	hub      *Hub
	registry *persona.Registry

	// ctx bounds server-side subscriptions (Follow, per-profile streams
	// outliving their request is impossible, but the feed goroutine is);
	// Close cancels it.
	ctx    context.Context
	cancel context.CancelFunc

	mu       sync.Mutex
	lastView RankingView
	prevIDs  rank.List
	history  *history.History
	watcher  *persona.Watcher
	engine   Engine
}

// New returns a server with an empty profile registry.
func New() *Server {
	reg := persona.NewRegistry()
	ctx, cancel := context.WithCancel(context.Background())
	return &Server{
		hub:      NewHub(),
		registry: reg,
		watcher:  persona.NewWatcher(reg, 10),
		ctx:      ctx,
		cancel:   cancel,
	}
}

// Close releases the server's background resources: the engine feed
// started by Follow and any server-side subscriptions. Idempotent. The
// HTTP handler keeps answering from the last published state.
func (s *Server) Close() { s.cancel() }

// Hub exposes the underlying broadcast hub (for tests and embedding).
func (s *Server) Hub() *Hub { return s.hub }

// Registry exposes the personalization registry.
func (s *Server) Registry() *persona.Registry { return s.registry }

// AttachEngine connects the engine to the server's stats endpoint and
// enables per-profile stream subscriptions. The engine is safe for
// concurrent use, so the server reads its counters directly — no external
// serialization between the ingest goroutine, the wall-clock ticker, and
// HTTP handlers is needed. AttachEngine does not feed rankings into the
// server; use Follow for that, or wire PublishRanking yourself.
func (s *Server) AttachEngine(e Engine) {
	s.mu.Lock()
	s.engine = e
	s.mu.Unlock()
}

// Follow attaches the engine and subscribes the server to its ranking
// broker: every evaluation tick is published to SSE clients, recorded
// into the attached history, and personalized for registered profiles —
// without the engine knowing the server exists. The feed stops when the
// server is Closed or the engine's broker shuts down.
//
// Delivery follows the broker's drop-oldest contract: if publishing (per
// profile rerank + history record + JSON broadcast) ever falls more than
// the buffer behind a bursty replay, the oldest ticks are skipped rather
// than stalling the engine — history then has gaps. Drops are observable
// as rankingsDropped in /v1/stats; wire PublishRanking to
// core.Config.OnRanking instead if lossless recording matters more than
// isolation.
func (s *Server) Follow(e Engine) {
	s.AttachEngine(e)
	// Sized far beyond any realistic tick backlog; PublishRanking is cheap
	// relative to a tick interval.
	sub := e.Subscribe(s.ctx, core.SubBuffer(4096))
	go func() {
		for r := range sub.Rankings() {
			s.PublishRanking(r)
		}
	}()
}

// StatsView is the wire form of GET /v1/stats.
type StatsView struct {
	DocsProcessed   int64     `json:"docsProcessed"`
	ActivePairs     int       `json:"activePairs"`
	Shards          int       `json:"shards"`
	Seeds           int       `json:"seeds"`
	LastEventTime   time.Time `json:"lastEventTime"`
	Clients         int       `json:"clients"`
	Profiles        int       `json:"profiles"`
	Subscriptions   int       `json:"subscriptions"`
	RankingsDropped int64     `json:"rankingsDropped"`
}

// toViews converts topics to wire form.
func toViews(topics []persona.Topic) []TopicView {
	out := make([]TopicView, len(topics))
	for i, t := range topics {
		out[i] = TopicView{
			Rank: i + 1, Tag1: t.Pair.Tag1(), Tag2: t.Pair.Tag2(), Score: t.Score,
		}
	}
	return out
}

// PublishRanking converts an engine ranking to wire form — including each
// registered profile's personalized list and the rank moves since the last
// tick — and broadcasts it. Follow feeds it from a broker subscription;
// callers doing their own wiring may invoke it directly.
func (s *Server) PublishRanking(r core.Ranking) {
	s.mu.Lock()
	h := s.history
	s.mu.Unlock()
	if h != nil {
		// Out-of-order ticks cannot happen from a single engine; an error
		// here means mis-wired publishers, surfaced by dropping the tick.
		_ = h.Record(r)
	}
	view := RankingView{At: r.At, Seeds: r.Seeds}
	var ptopics []persona.Topic
	var cur rank.List
	for i, t := range r.Topics {
		view.Topics = append(view.Topics, TopicView{
			Rank:         i + 1,
			Tag1:         t.Pair.Tag1(),
			Tag2:         t.Pair.Tag2(),
			Score:        t.Score,
			Correlation:  t.Correlation,
			Cooccurrence: t.Cooccurrence,
		})
		ptopics = append(ptopics, persona.Topic{Pair: t.Pair, Score: t.Score})
		cur = append(cur, rank.Entry{ID: t.Pair.String(), Score: t.Score})
	}
	views := s.registry.RerankAll(ptopics)
	if len(views) > 0 {
		view.Profiles = make(map[string][]TopicView, len(views))
		for name, ts := range views {
			view.Profiles[name] = toViews(ts)
		}
	}

	s.mu.Lock()
	view.Moves = rank.Diff(s.prevIDs, cur)
	for _, a := range s.watcher.Observe(r.At, ptopics) {
		view.Alerts = append(view.Alerts, AlertView{
			User: a.User, Tag1: a.Pair.Tag1(), Tag2: a.Pair.Tag2(),
			Rank: a.Rank, Score: a.Score,
		})
	}
	s.prevIDs = cur
	s.lastView = view
	s.mu.Unlock()

	// Broadcast errors mean a marshaling bug, not a client problem; the
	// view type is fully serialisable, so this cannot fail in practice.
	_ = s.hub.Broadcast(view)
}

// profileRequest is the POST /profile payload.
type profileRequest struct {
	Name       string   `json:"name"`
	Keywords   []string `json:"keywords"`
	Categories []string `json:"categories"`
	Boost      float64  `json:"boost"`
	Exclusive  bool     `json:"exclusive"`
}

// deprecated wraps a legacy handler with RFC 8594 deprecation headers
// pointing at the /v1 successor route.
func deprecated(successor string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", fmt.Sprintf("<%s>; rel=\"successor-version\"", successor))
		h(w, r)
	}
}

// Handler returns the HTTP handler serving all endpoints: the versioned
// /v1 contract plus the deprecated pre-versioning aliases.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleIndex)

	// Versioned wire contract.
	mux.HandleFunc("GET /v1/rankings", s.handleV1Rankings)
	mux.HandleFunc("GET /v1/rankings/history", s.handleHistory)
	mux.HandleFunc("GET /v1/rankings/trajectory", s.handleTrajectory)
	mux.HandleFunc("GET /v1/stream", s.handleV1Stream)
	mux.HandleFunc("GET /v1/profiles", s.handleV1ProfilesList)
	mux.HandleFunc("POST /v1/profiles", s.handleV1ProfilePut)
	mux.HandleFunc("GET /v1/profiles/{name}", s.handleV1ProfileGet)
	mux.HandleFunc("DELETE /v1/profiles/{name}", s.handleV1ProfileDelete)
	mux.HandleFunc("GET /v1/stats", s.handleStats)

	// Deprecated aliases, kept for one release.
	mux.HandleFunc("/events", deprecated("/v1/stream", s.handleEvents))
	mux.HandleFunc("/ranking", deprecated("/v1/rankings", s.handleRanking))
	mux.HandleFunc("/profile", deprecated("/v1/profiles", s.handleProfile))
	mux.HandleFunc("/profiles", deprecated("/v1/profiles", s.handleProfiles))
	mux.HandleFunc("/history", deprecated("/v1/rankings/history", s.handleHistory))
	mux.HandleFunc("/trajectory", deprecated("/v1/rankings/trajectory", s.handleTrajectory))
	mux.HandleFunc("/stats", deprecated("/v1/stats", s.handleStats))
	return mux
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	e := s.engine
	s.mu.Unlock()
	view := StatsView{
		Clients:  s.hub.ClientCount(),
		Profiles: s.registry.Len(),
	}
	if e != nil {
		view.DocsProcessed = e.DocsProcessed()
		view.ActivePairs = e.ActivePairs()
		view.Shards = e.Shards()
		view.Seeds = len(e.Seeds())
		view.LastEventTime = e.LastEventTime()
		view.Subscriptions = e.Subscribers()
		view.RankingsDropped = e.RankingsDropped()
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(view); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, indexHTML)
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	fl.Flush() // deliver headers now so clients see the stream open
	ch := s.hub.subscribe()
	defer s.hub.unsubscribe(ch)
	for {
		select {
		case <-r.Context().Done():
			return
		case <-s.ctx.Done():
			// Server closing: end the stream so http.Server.Shutdown can
			// drain instead of timing out on parked SSE handlers.
			return
		case frame := <-ch:
			if _, err := fmt.Fprintf(w, "data: %s\n\n", frame); err != nil {
				return
			}
			fl.Flush()
		}
	}
}

func (s *Server) handleRanking(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	view := s.lastView
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(view); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *Server) handleProfile(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	var req profileRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad profile JSON: "+err.Error(), http.StatusBadRequest)
		return
	}
	if req.Name == "" {
		http.Error(w, "profile name required", http.StatusBadRequest)
		return
	}
	s.setProfile(&req)
	w.WriteHeader(http.StatusNoContent)
}

// setProfile registers/replaces a profile and forgets the user's alert
// state so the new preferences re-alert.
func (s *Server) setProfile(req *profileRequest) {
	s.registry.Set(&persona.Profile{
		Name:       req.Name,
		Keywords:   req.Keywords,
		Categories: req.Categories,
		Boost:      req.Boost,
		Exclusive:  req.Exclusive,
	})
	s.mu.Lock()
	s.watcher.Reset(req.Name)
	s.mu.Unlock()
}

func (s *Server) handleProfiles(w http.ResponseWriter, r *http.Request) {
	names := s.registry.Names()
	sort.Strings(names)
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(names); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// indexHTML is the minimal live demo page: an EventSource client rendering
// the pushed rankings, mirroring the paper's AJAX front-end.
const indexHTML = `<!DOCTYPE html>
<html>
<head><meta charset="utf-8"><title>enBlogue — emergent topics</title>
<style>
body{font-family:sans-serif;margin:2em;background:#fafafa}
h1{font-size:1.4em} table{border-collapse:collapse;min-width:30em}
td,th{border:1px solid #ccc;padding:.3em .6em;text-align:left}
tr:nth-child(even){background:#f0f0f0} .score{text-align:right}
#at{color:#666}
</style></head>
<body>
<h1>enBlogue &mdash; emergent topics</h1>
<p id="at">waiting for first ranking&hellip;</p>
<table><thead><tr><th>#</th><th>topic</th><th class="score">score</th></tr></thead>
<tbody id="topics"></tbody></table>
<script>
const es = new EventSource('/v1/stream');
es.onmessage = e => {
  const v = JSON.parse(e.data);
  document.getElementById('at').textContent = 'as of ' + v.at;
  const tb = document.getElementById('topics');
  tb.innerHTML = '';
  (v.topics || []).forEach(t => {
    const tr = document.createElement('tr');
    tr.innerHTML = '<td>' + t.rank + '</td><td>' + t.tag1 + ' + ' + t.tag2 +
      '</td><td class="score">' + t.score.toFixed(4) + '</td>';
    tb.appendChild(tr);
  });
};
</script>
</body></html>
`
