package server

import (
	"encoding/json"
	"net/http"
	"strconv"
	"time"

	"enblogue/internal/history"
	"enblogue/internal/pairs"
)

// This file serves the per-tenant ranking histories: each tenant's feed
// records every published tick into its own history ring, and the history
// and trajectory endpoints answer time-range queries against it (show case
// 1's "users can specify their own time ranges and see how the ranking
// changes"). The default tenant keeps the legacy contract — no history
// until AttachHistory — while FollowTenant gives every other tenant a ring
// automatically.

// HistoryEntryView is the wire form of one range-query result row.
//
//enblogue:wire
type HistoryEntryView struct {
	Tag1  string    `json:"tag1"`
	Tag2  string    `json:"tag2"`
	Score float64   `json:"score"`
	Ticks int       `json:"ticks"`
	First time.Time `json:"first"`
	Last  time.Time `json:"last"`
}

// parseTimeParam parses an RFC 3339 query parameter, returning the zero
// time for an absent value.
func parseTimeParam(r *http.Request, name string) (time.Time, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return time.Time{}, nil
	}
	return time.Parse(time.RFC3339, v)
}

// historyOr404 resolves the request tenant's history ring, answering 404
// when the tenant does not exist or has no history attached.
func (s *Server) historyOr404(w http.ResponseWriter, r *http.Request) *history.History {
	t := s.tenantOr404(w, r)
	if t == nil {
		return nil
	}
	t.mu.Lock()
	h := t.history
	t.mu.Unlock()
	if h == nil {
		http.Error(w, "history not enabled", http.StatusNotFound)
	}
	return h
}

// handleHistory serves GET [/v1/tenants/{tenant}]/v1/rankings/history
// ?from=RFC3339&to=RFC3339&k=10&agg=max.
func (s *Server) handleHistory(w http.ResponseWriter, r *http.Request) {
	h := s.historyOr404(w, r)
	if h == nil {
		return
	}
	from, err := parseTimeParam(r, "from")
	if err != nil {
		http.Error(w, "bad from: "+err.Error(), http.StatusBadRequest)
		return
	}
	to, err := parseTimeParam(r, "to")
	if err != nil {
		http.Error(w, "bad to: "+err.Error(), http.StatusBadRequest)
		return
	}
	k := 10
	if v := r.URL.Query().Get("k"); v != "" {
		k, err = strconv.Atoi(v)
		if err != nil || k < 1 || k > 1000 {
			http.Error(w, "bad k", http.StatusBadRequest)
			return
		}
	}
	agg, err := history.ParseAggregate(r.URL.Query().Get("agg"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	entries := h.TopInRange(from, to, k, agg)
	out := make([]HistoryEntryView, len(entries))
	for i, e := range entries {
		out[i] = HistoryEntryView{
			Tag1: e.Pair.Tag1(), Tag2: e.Pair.Tag2(),
			Score: e.Score, Ticks: e.Ticks, First: e.First, Last: e.Last,
		}
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(out); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// TrajectoryPointView is the wire form of one trajectory sample.
//
//enblogue:wire
type TrajectoryPointView struct {
	At    time.Time `json:"at"`
	Rank  int       `json:"rank"`
	Score float64   `json:"score"`
}

// handleTrajectory serves GET [/v1/tenants/{tenant}]/v1/rankings/trajectory
// ?tag1=a&tag2=b&from=&to=.
func (s *Server) handleTrajectory(w http.ResponseWriter, r *http.Request) {
	h := s.historyOr404(w, r)
	if h == nil {
		return
	}
	t1 := r.URL.Query().Get("tag1")
	t2 := r.URL.Query().Get("tag2")
	if t1 == "" || t2 == "" {
		http.Error(w, "tag1 and tag2 required", http.StatusBadRequest)
		return
	}
	from, err := parseTimeParam(r, "from")
	if err != nil {
		http.Error(w, "bad from: "+err.Error(), http.StatusBadRequest)
		return
	}
	to, err := parseTimeParam(r, "to")
	if err != nil {
		http.Error(w, "bad to: "+err.Error(), http.StatusBadRequest)
		return
	}
	traj := h.Trajectory(pairs.MakeKey(t1, t2), from, to)
	out := make([]TrajectoryPointView, len(traj))
	for i, p := range traj {
		out[i] = TrajectoryPointView{At: p.At, Rank: p.Rank, Score: p.Score}
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(out); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
