package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"enblogue/internal/core"
	"enblogue/internal/source"
	"enblogue/internal/stream"
)

// This file implements tenant lifecycle over the wire (/v1/tenants) and
// the per-tenant ingest endpoint — the server's write path.

// Opener creates and closes tenant engines on demand; a hub (enblogue.Hub
// or core.Hub) adapts to it trivially. Attach one with AttachOpener to
// enable POST /v1/tenants and DELETE /v1/tenants/{tenant}; without an
// opener the server can only follow engines wired in programmatically.
type Opener interface {
	// Open returns the named tenant's engine, creating it with the hub's
	// defaults on first use (create-or-get).
	Open(name string) (Engine, error)
	// CloseTenant removes the named tenant and closes its engine,
	// reporting whether it existed.
	CloseTenant(name string) bool
}

// AttachOpener connects an engine factory, enabling tenant creation and
// deletion over the wire.
func (s *Server) AttachOpener(o Opener) {
	s.mu.Lock()
	s.opener = o
	s.mu.Unlock()
}

func (s *Server) getOpener() Opener {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.opener
}

// TenantView is the stable wire form of one tenant's summary.
//
//enblogue:wire
type TenantView struct {
	Name          string    `json:"name"`
	Created       time.Time `json:"created"`
	DocsProcessed int64     `json:"docsProcessed"`
	Clients       int       `json:"clients"`
	Profiles      int       `json:"profiles"`
}

func (t *tenantState) view() TenantView {
	v := TenantView{
		Name:     t.name,
		Created:  t.created,
		Clients:  t.hub.ClientCount(),
		Profiles: t.registry.Len(),
	}
	t.mu.Lock()
	e := t.engine
	t.mu.Unlock()
	if e != nil {
		v.DocsProcessed = e.DocsProcessed()
	}
	return v
}

// handleTenantsList serves GET /v1/tenants: every tenant's summary, sorted
// by name.
func (s *Server) handleTenantsList(w http.ResponseWriter, r *http.Request) {
	names := s.Tenants()
	out := make([]TenantView, 0, len(names))
	for _, name := range names {
		if t := s.tenant(name); t != nil {
			out = append(out, t.view())
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// handleTenantGet serves GET /v1/tenants/{tenant}: one tenant's summary.
func (s *Server) handleTenantGet(w http.ResponseWriter, r *http.Request) {
	t := s.tenantOr404(w, r)
	if t == nil {
		return
	}
	writeJSON(w, http.StatusOK, t.view())
}

// tenantRequest is the POST /v1/tenants payload.
type tenantRequest struct {
	Name string `json:"name"`
}

// handleTenantCreate serves POST /v1/tenants: create-or-get a tenant. A
// new tenant's engine comes from the attached Opener with the hub's
// defaults and is immediately followed, so its stream, rankings, stats,
// and ingest endpoints are live on return. 201 on creation, 200 when the
// tenant already existed.
//
// The whole check/open/follow/respond sequence holds the lifecycle lock:
// a concurrent DELETE may otherwise land between Open and FollowTenant,
// leaving the server following an engine the opener already closed — or
// between FollowTenant and the response, making the final view a nil
// dereference.
func (s *Server) handleTenantCreate(w http.ResponseWriter, r *http.Request) {
	var req tenantRequest
	// Names are at most 64 bytes; a tiny body cap stops a client from
	// streaming gigabytes into the decoder before validation rejects it.
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 4096)).Decode(&req); err != nil {
		http.Error(w, "bad tenant JSON: "+err.Error(), http.StatusBadRequest)
		return
	}
	if err := core.ValidateTenantName(req.Name); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.lifecycleMu.Lock()
	defer s.lifecycleMu.Unlock()
	if t := s.tenant(req.Name); t != nil {
		writeJSON(w, http.StatusOK, t.view())
		return
	}
	o := s.getOpener()
	if o == nil {
		http.Error(w, "no engine opener attached; tenants can only be created programmatically",
			http.StatusServiceUnavailable)
		return
	}
	e, err := o.Open(req.Name)
	if err != nil {
		http.Error(w, err.Error(), http.StatusUnprocessableEntity)
		return
	}
	if err := s.FollowTenant(req.Name, e); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, http.StatusCreated, s.tenant(req.Name).view())
}

// handleTenantDelete serves DELETE /v1/tenants/{tenant}: the tenant's
// engine closes (subscription channels end), its SSE streams terminate,
// and its name becomes available again. The default tenant is not
// deletable — the tenant-less /v1 aliases depend on it.
func (s *Server) handleTenantDelete(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("tenant")
	if name == DefaultTenant {
		http.Error(w, `the "default" tenant cannot be deleted`, http.StatusBadRequest)
		return
	}
	s.lifecycleMu.Lock()
	existed := s.removeTenant(name)
	if o := s.getOpener(); o != nil {
		existed = o.CloseTenant(name) || existed
	}
	s.lifecycleMu.Unlock()
	if !existed {
		http.Error(w, fmt.Sprintf("unknown tenant %q", name), http.StatusNotFound)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// IngestView is the wire form of a POST items response.
//
//enblogue:wire
type IngestView struct {
	// Consumed is the number of documents fed to the engine from this
	// request, Skipped the number of malformed JSONL lines dropped.
	Consumed int `json:"consumed"`
	Skipped  int `json:"skipped"`
	// DocsProcessed is the tenant engine's lifetime document count after
	// this batch.
	DocsProcessed int64 `json:"docsProcessed"`
}

// maxIngestBytes bounds one ingest request body (64 MiB) so a runaway
// client cannot balloon the server; larger datasets stream in batches.
const maxIngestBytes = 64 << 20

// maxIngestTagsPerDoc drops documents with absurd tag sets (the engine's
// per-document pair work is quadratic in tags, and every distinct tag
// permanently occupies a slot in the process-wide intern table). Dropped
// documents are counted as skipped.
const maxIngestTagsPerDoc = 256

// handleItemsIngest serves POST /v1/tenants/{tenant}/items: the body is
// JSONL, one document per line in the cmd/datagen wire format ({"time",
// "id", "tags", "entities"?, "text"?, "source"?}). The batch is sorted by
// timestamp and fed to the tenant's engine in order — evaluation ticks
// fire as event time passes tick boundaries, exactly as for any other
// producer. Malformed lines and over-tagged documents are skipped and
// counted, not fatal.
//
// Ingest is a trusted write path: distinct tags are interned process-wide
// and never freed (see internal/intern), so callers exposing this
// endpoint to untrusted clients should normalise or drop one-off tags
// upstream (or front it with auth), exactly as for any other producer.
// The per-request and per-document caps bound amplification, not
// cumulative vocabulary growth.
func (s *Server) handleItemsIngest(w http.ResponseWriter, r *http.Request) {
	t := s.tenantOr404(w, r)
	if t == nil {
		return
	}
	t.mu.Lock()
	e := t.engine
	t.mu.Unlock()
	if e == nil {
		http.Error(w, "tenant has no engine attached; ingest unavailable",
			http.StatusServiceUnavailable)
		return
	}
	docs, skipped, err := source.ReadJSONL(http.MaxBytesReader(w, r.Body, maxIngestBytes), false)
	if err != nil {
		// Over-limit is a client-recoverable condition (split the batch);
		// distinguish it from malformed input.
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			http.Error(w, fmt.Sprintf("body exceeds %d bytes; send smaller batches", tooBig.Limit),
				http.StatusRequestEntityTooLarge)
			return
		}
		http.Error(w, "reading items: "+err.Error(), http.StatusBadRequest)
		return
	}
	kept := docs[:0]
	for i := range docs {
		if len(docs[i].Tags)+len(docs[i].Entities) > maxIngestTagsPerDoc {
			skipped++
			continue
		}
		kept = append(kept, docs[i])
	}
	source.SortDocs(kept)
	// One batched consume for the whole request: the engine pays its
	// bookkeeping lock once per request instead of once per line, with
	// rankings bit-identical to the per-document loop this replaces.
	items := make([]*stream.Item, len(kept))
	for i := range kept {
		items[i] = kept[i].Item()
	}
	e.ConsumeBatch(items)
	writeJSON(w, http.StatusOK, IngestView{
		Consumed:      len(kept),
		Skipped:       skipped,
		DocsProcessed: e.DocsProcessed(),
	})
}
