package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"enblogue/internal/core"
	"enblogue/internal/persona"
	"enblogue/internal/stream"
)

func postJSON(t *testing.T, h http.Handler, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func get(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, path, nil))
	return w
}

func TestV1RankingsAndProfileViews(t *testing.T) {
	s := New()
	h := s.Handler()
	s.PublishRanking(sampleRanking())

	w := get(t, h, "/v1/rankings")
	if w.Code != http.StatusOK {
		t.Fatalf("GET /v1/rankings = %d", w.Code)
	}
	var view RankingView
	if err := json.Unmarshal(w.Body.Bytes(), &view); err != nil {
		t.Fatal(err)
	}
	if len(view.Topics) != 2 || view.Topics[0].Tag1 != "politics" {
		t.Fatalf("broadcast view = %+v", view)
	}

	// Personalized snapshot for a profile registered AFTER the tick.
	if w := postJSON(t, h, "/v1/profiles",
		`{"name":"icelander","keywords":["volcano"],"boost":10}`); w.Code != http.StatusCreated {
		t.Fatalf("POST /v1/profiles = %d: %s", w.Code, w.Body)
	}
	w = get(t, h, "/v1/rankings?profile=icelander")
	if w.Code != http.StatusOK {
		t.Fatalf("GET /v1/rankings?profile = %d", w.Code)
	}
	var pview RankingView
	if err := json.Unmarshal(w.Body.Bytes(), &pview); err != nil {
		t.Fatal(err)
	}
	if len(pview.Topics) != 2 || pview.Topics[0].Tag1 != "iceland" {
		t.Fatalf("personalized view not re-ranked: %+v", pview.Topics)
	}
	if pview.Topics[0].Score != 0.5*10 {
		t.Errorf("boost not applied: score = %v", pview.Topics[0].Score)
	}

	if w := get(t, h, "/v1/rankings?profile=nobody"); w.Code != http.StatusNotFound {
		t.Errorf("unknown profile = %d, want 404", w.Code)
	}
}

func TestV1ProfileCRUD(t *testing.T) {
	s := New()
	h := s.Handler()

	if w := postJSON(t, h, "/v1/profiles", `{"keywords":["x"]}`); w.Code != http.StatusBadRequest {
		t.Errorf("nameless profile = %d, want 400", w.Code)
	}
	if w := postJSON(t, h, "/v1/profiles", `{"name":"ada","keywords":["db"],"exclusive":true}`); w.Code != http.StatusCreated {
		t.Fatalf("create = %d", w.Code)
	}

	w := get(t, h, "/v1/profiles/ada")
	if w.Code != http.StatusOK {
		t.Fatalf("GET one = %d", w.Code)
	}
	var p ProfileView
	if err := json.Unmarshal(w.Body.Bytes(), &p); err != nil {
		t.Fatal(err)
	}
	if p.Name != "ada" || !p.Exclusive || len(p.Keywords) != 1 {
		t.Errorf("profile = %+v", p)
	}

	w = get(t, h, "/v1/profiles")
	var list []ProfileView
	if err := json.Unmarshal(w.Body.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].Name != "ada" {
		t.Errorf("list = %+v", list)
	}

	req := httptest.NewRequest(http.MethodDelete, "/v1/profiles/ada", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusNoContent {
		t.Fatalf("DELETE = %d", rec.Code)
	}
	if w := get(t, h, "/v1/profiles/ada"); w.Code != http.StatusNotFound {
		t.Errorf("GET after delete = %d, want 404", w.Code)
	}
	req = httptest.NewRequest(http.MethodDelete, "/v1/profiles/ada", nil)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusNotFound {
		t.Errorf("second DELETE = %d, want 404", rec.Code)
	}
}

func TestDeprecatedAliasesStillAnswer(t *testing.T) {
	s := New()
	h := s.Handler()
	s.PublishRanking(sampleRanking())

	for path, successor := range map[string]string{
		"/ranking":  "/v1/rankings",
		"/profiles": "/v1/profiles",
		"/stats":    "/v1/stats",
	} {
		w := get(t, h, path)
		if w.Code != http.StatusOK {
			t.Errorf("GET %s = %d", path, w.Code)
		}
		if w.Header().Get("Deprecation") != "true" {
			t.Errorf("%s missing Deprecation header", path)
		}
		if link := w.Header().Get("Link"); !strings.Contains(link, successor) {
			t.Errorf("%s Link = %q, want successor %s", path, link, successor)
		}
	}
	// v1 routes carry no deprecation marker.
	if w := get(t, h, "/v1/rankings"); w.Header().Get("Deprecation") != "" {
		t.Error("/v1/rankings marked deprecated")
	}
	// Legacy POST /profile still works.
	if w := postJSON(t, h, "/profile", `{"name":"bob"}`); w.Code != http.StatusNoContent {
		t.Errorf("legacy POST /profile = %d", w.Code)
	}
}

// serverStream feeds a real engine; Follow must publish every tick to the
// server, and per-profile SSE streams must carry re-ranked views.
func TestV1FollowEngineAndProfileStream(t *testing.T) {
	e := core.New(core.Config{
		WindowBuckets:    12,
		WindowResolution: time.Hour,
		SeedCount:        10,
		SeedWarmupDocs:   10,
		MinCooccurrence:  2,
		TopK:             5,
	})
	s := New()
	defer s.Close()
	s.Follow(e)
	h := s.Handler()

	if w := postJSON(t, h, "/v1/profiles", `{"name":"pol","keywords":["scandal"],"boost":7}`); w.Code != http.StatusCreated {
		t.Fatalf("create profile = %d", w.Code)
	}

	// Per-profile SSE stream: run the handler against a live request.
	srv := httptest.NewServer(h)
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/v1/stream?profile=pol")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status = %d", resp.StatusCode)
	}

	id := 0
	feed := func(hr, mi int, tags ...string) {
		id++
		e.Consume(&stream.Item{
			Time:  t0.Add(time.Duration(hr)*time.Hour + time.Duration(mi)*time.Minute),
			DocID: fmt.Sprintf("d-%04d", id),
			Tags:  tags,
		})
	}
	for hr := 0; hr < 6; hr++ {
		for mi := 0; mi < 60; mi += 5 {
			feed(hr, mi, "news", "politics")
		}
	}
	for mi := 0; mi < 60; mi += 6 {
		feed(4, mi, "politics", "scandal")
	}
	e.Flush()

	// The Follow feed is asynchronous; wait for the server to publish.
	deadline := time.Now().Add(5 * time.Second)
	for {
		w := get(t, h, "/v1/rankings")
		var view RankingView
		_ = json.Unmarshal(w.Body.Bytes(), &view)
		if !view.At.IsZero() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("Follow never published a ranking")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Read one SSE frame off the profile stream.
	sc := bufio.NewScanner(resp.Body)
	frameCh := make(chan string, 1)
	go func() {
		for sc.Scan() {
			line := sc.Text()
			if strings.HasPrefix(line, "data: ") {
				frameCh <- strings.TrimPrefix(line, "data: ")
				return
			}
		}
	}()
	select {
	case frame := <-frameCh:
		var view RankingView
		if err := json.Unmarshal([]byte(frame), &view); err != nil {
			t.Fatalf("bad SSE frame: %v", err)
		}
		// The profile boosts "scandal"; if topics exist, a matching topic
		// must lead (boost 7 dwarfs raw scores here).
		if len(view.Topics) > 0 {
			lead := view.Topics[0]
			if lead.Tag1 != "scandal" && lead.Tag2 != "scandal" {
				t.Errorf("profile stream not re-ranked, lead topic %s+%s", lead.Tag1, lead.Tag2)
			}
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no SSE frame on profile stream")
	}

	// Stats must reflect the engine and its subscriptions.
	w := get(t, h, "/v1/stats")
	var stats StatsView
	if err := json.Unmarshal(w.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.DocsProcessed == 0 || stats.Subscriptions == 0 {
		t.Errorf("stats = %+v, want docs and subscriptions > 0", stats)
	}
}

func TestV1StreamUnknownProfileAndNoEngine(t *testing.T) {
	s := New()
	h := s.Handler()
	if w := get(t, h, "/v1/stream?profile=ghost"); w.Code != http.StatusNotFound {
		t.Errorf("unknown profile stream = %d, want 404", w.Code)
	}
	s.Registry().Set(&persona.Profile{Name: "solo"})
	if w := get(t, h, "/v1/stream?profile=solo"); w.Code != http.StatusServiceUnavailable {
		t.Errorf("no-engine profile stream = %d, want 503", w.Code)
	}
}
