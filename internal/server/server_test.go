package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"enblogue/internal/core"
	"enblogue/internal/pairs"
	"enblogue/internal/shift"
)

var t0 = time.Date(2011, 6, 12, 0, 0, 0, 0, time.UTC)

func sampleRanking() core.Ranking {
	return core.Ranking{
		At:    t0,
		Seeds: []string{"politics"},
		Topics: []shift.Topic{
			{Pair: pairs.MakeKey("politics", "scandal"), Score: 0.9, Correlation: 0.4, Cooccurrence: 12},
			{Pair: pairs.MakeKey("iceland", "volcano"), Score: 0.5, Correlation: 0.3, Cooccurrence: 8},
		},
	}
}

func TestHubBroadcastAndLateJoin(t *testing.T) {
	h := NewHub()
	if err := h.Broadcast(map[string]int{"x": 1}); err != nil {
		t.Fatal(err)
	}
	if h.Last() == nil {
		t.Fatal("Last nil after broadcast")
	}
	ch := h.subscribe()
	defer h.unsubscribe(ch)
	select {
	case frame := <-ch:
		if !bytes.Contains(frame, []byte(`"x":1`)) {
			t.Errorf("late-join frame = %s", frame)
		}
	default:
		t.Fatal("late joiner did not receive retained frame")
	}
	if h.ClientCount() != 1 {
		t.Errorf("ClientCount = %d", h.ClientCount())
	}
}

func TestHubSlowClientDropsFrames(t *testing.T) {
	h := NewHub()
	ch := h.subscribe()
	defer h.unsubscribe(ch)
	// Flood past the buffer; must not block.
	done := make(chan struct{})
	go func() {
		for i := 0; i < 100; i++ {
			h.Broadcast(i)
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("broadcast blocked on slow client")
	}
}

func TestHubBroadcastUnmarshalable(t *testing.T) {
	h := NewHub()
	if err := h.Broadcast(func() {}); err == nil {
		t.Error("expected marshal error")
	}
}

func TestRankingEndpoint(t *testing.T) {
	s := New()
	s.PublishRanking(sampleRanking())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/ranking")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var view RankingView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	if len(view.Topics) != 2 || view.Topics[0].Tag2 != "scandal" || view.Topics[0].Rank != 1 {
		t.Errorf("view = %+v", view)
	}
	// First publish: both topics are new entries in the move list.
	if len(view.Moves) != 2 {
		t.Errorf("moves = %+v", view.Moves)
	}
}

func TestProfileEndpointsAndPersonalizedViews(t *testing.T) {
	s := New()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := `{"name":"alice","keywords":["volcano"],"boost":10,"exclusive":true}`
	resp, err := http.Post(ts.URL+"/profile", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("profile POST status = %d", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/profiles")
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	json.NewDecoder(resp.Body).Decode(&names)
	resp.Body.Close()
	if len(names) != 1 || names[0] != "alice" {
		t.Errorf("profiles = %v", names)
	}

	s.PublishRanking(sampleRanking())
	resp, err = http.Get(ts.URL + "/ranking")
	if err != nil {
		t.Fatal(err)
	}
	var view RankingView
	json.NewDecoder(resp.Body).Decode(&view)
	resp.Body.Close()
	alice := view.Profiles["alice"]
	if len(alice) != 1 || alice[0].Tag2 != "volcano" {
		t.Errorf("alice view = %+v", alice)
	}
}

func TestProfileValidation(t *testing.T) {
	s := New()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	// Missing name.
	resp, _ := http.Post(ts.URL+"/profile", "application/json", strings.NewReader(`{}`))
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("nameless profile status = %d", resp.StatusCode)
	}
	// Bad JSON.
	resp, _ = http.Post(ts.URL+"/profile", "application/json", strings.NewReader(`{`))
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad JSON status = %d", resp.StatusCode)
	}
	// Wrong method.
	resp, _ = http.Get(ts.URL + "/profile")
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /profile status = %d", resp.StatusCode)
	}
}

func TestSSEStreamDeliversFrames(t *testing.T) {
	s := New()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/events", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type = %q", ct)
	}

	// Wait for the subscriber registration, then publish.
	deadline := time.Now().Add(2 * time.Second)
	for s.Hub().ClientCount() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	s.PublishRanking(sampleRanking())

	rd := bufio.NewReader(resp.Body)
	line, err := rd.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(line, "data: ") {
		t.Fatalf("frame = %q", line)
	}
	var view RankingView
	if err := json.Unmarshal([]byte(strings.TrimPrefix(strings.TrimSpace(line), "data: ")), &view); err != nil {
		t.Fatal(err)
	}
	if len(view.Topics) != 2 {
		t.Errorf("streamed view = %+v", view)
	}
}

func TestIndexPage(t *testing.T) {
	s := New()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := new(bytes.Buffer)
	buf.ReadFrom(resp.Body)
	if !strings.Contains(buf.String(), "EventSource") {
		t.Error("index page missing EventSource client")
	}
	// Unknown path 404s.
	resp2, _ := http.Get(ts.URL + "/nope")
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Errorf("unknown path status = %d", resp2.StatusCode)
	}
}

func TestMovesAcrossTicks(t *testing.T) {
	s := New()
	s.PublishRanking(sampleRanking())
	// Second tick: order flips.
	r2 := sampleRanking()
	r2.Topics[0], r2.Topics[1] = r2.Topics[1], r2.Topics[0]
	r2.Topics[0].Score = 2.0
	s.PublishRanking(r2)
	def := s.defaultTenant()
	def.mu.Lock()
	moves := def.lastView.Moves
	def.mu.Unlock()
	if len(moves) != 2 {
		t.Fatalf("moves = %+v", moves)
	}
	if moves[0].ID != "iceland+volcano" || moves[0].To != 0 || moves[0].From != 1 {
		t.Errorf("move = %+v", moves[0])
	}
}
