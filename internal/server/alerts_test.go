package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"enblogue/internal/persona"
)

func TestAlertsInPushedFrames(t *testing.T) {
	s := New()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := `{"name":"alice","keywords":["volcano"]}`
	resp, err := http.Post(ts.URL+"/profile", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	s.PublishRanking(sampleRanking())
	resp, err = http.Get(ts.URL + "/ranking")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var view RankingView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, a := range view.Alerts {
		if a.User == "alice" && a.Tag2 == "volcano" {
			found = true
		}
	}
	if !found {
		t.Errorf("alerts = %+v, want alice's volcano alert", view.Alerts)
	}
}

func TestAlertsNotRepeated(t *testing.T) {
	s := New()
	s.Registry().Set(&persona.Profile{Name: "bob"})
	s.PublishRanking(sampleRanking())
	r2 := sampleRanking()
	r2.At = r2.At.Add(time.Hour)
	s.PublishRanking(r2)
	def := s.defaultTenant()
	def.mu.Lock()
	alerts := def.lastView.Alerts
	def.mu.Unlock()
	if len(alerts) != 0 {
		t.Errorf("second tick repeated alerts: %+v", alerts)
	}
}

func TestProfileUpdateResetsAlerts(t *testing.T) {
	s := New()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post := func() {
		resp, err := http.Post(ts.URL+"/profile", "application/json",
			strings.NewReader(`{"name":"carol","keywords":["scandal"]}`))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	post()
	s.PublishRanking(sampleRanking())
	// Re-registering the profile clears alert state → the next tick
	// re-alerts even though the topic never left the ranking.
	post()
	r2 := sampleRanking()
	r2.At = r2.At.Add(time.Hour)
	s.PublishRanking(r2)
	def := s.defaultTenant()
	def.mu.Lock()
	alerts := def.lastView.Alerts
	def.mu.Unlock()
	if len(alerts) == 0 {
		t.Error("profile update did not re-arm alerts")
	}
}
