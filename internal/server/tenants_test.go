package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"enblogue/internal/core"
	"enblogue/internal/source"
)

// hubOpener adapts a core.Hub to the server's Opener interface, exactly as
// cmd/enblogue-server adapts the public enblogue.Hub.
type hubOpener struct{ hub *core.Hub }

func (o hubOpener) Open(name string) (Engine, error) { return o.hub.Open(name) }
func (o hubOpener) CloseTenant(name string) bool     { return o.hub.CloseTenant(name) }

func testHubDefaults() core.Config {
	return core.Config{
		WindowBuckets:    6,
		WindowResolution: time.Hour,
		SeedCount:        10,
		SeedWarmupDocs:   5,
		MinCooccurrence:  2,
		TopK:             5,
		Shards:           2,
	}
}

func testHub() *core.Hub {
	return core.NewHub(core.HubConfig{Defaults: testHubDefaults()})
}

func del(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodDelete, path, nil))
	return w
}

func TestTenantLifecycleOverWire(t *testing.T) {
	hub := testHub()
	defer hub.Close()
	s := New()
	defer s.Close()
	s.AttachOpener(hubOpener{hub})
	h := s.Handler()

	// Create.
	w := postJSON(t, h, "/v1/tenants", `{"name":"tweets"}`)
	if w.Code != http.StatusCreated {
		t.Fatalf("POST /v1/tenants = %d: %s", w.Code, w.Body)
	}
	var tv TenantView
	if err := json.Unmarshal(w.Body.Bytes(), &tv); err != nil {
		t.Fatal(err)
	}
	if tv.Name != "tweets" || tv.Created.IsZero() {
		t.Errorf("created view = %+v", tv)
	}
	// Create-or-get: second POST answers 200 with the same tenant.
	if w := postJSON(t, h, "/v1/tenants", `{"name":"tweets"}`); w.Code != http.StatusOK {
		t.Errorf("second POST = %d, want 200", w.Code)
	}
	// Invalid names — including the path-traversal names HTTP path
	// cleaning would make unreachable — are rejected before touching the
	// hub.
	for _, bad := range []string{`{"name":""}`, `{"name":"."}`, `{"name":".."}`,
		`{"name":"a/b"}`, `{"name":"a b"}`} {
		if w := postJSON(t, h, "/v1/tenants", bad); w.Code != http.StatusBadRequest {
			t.Errorf("POST %s = %d, want 400", bad, w.Code)
		}
	}

	// List includes default and the new tenant, sorted.
	w = get(t, h, "/v1/tenants")
	var list []TenantView
	if err := json.Unmarshal(w.Body.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 2 || list[0].Name != "default" || list[1].Name != "tweets" {
		t.Errorf("list = %+v", list)
	}
	// Per-tenant summary.
	if w := get(t, h, "/v1/tenants/tweets"); w.Code != http.StatusOK {
		t.Errorf("GET /v1/tenants/tweets = %d", w.Code)
	}
	if w := get(t, h, "/v1/tenants/ghost"); w.Code != http.StatusNotFound {
		t.Errorf("GET unknown tenant = %d, want 404", w.Code)
	}

	// Delete: default is protected, others close for real.
	if w := del(t, h, "/v1/tenants/default"); w.Code != http.StatusBadRequest {
		t.Errorf("DELETE default = %d, want 400", w.Code)
	}
	if w := del(t, h, "/v1/tenants/tweets"); w.Code != http.StatusNoContent {
		t.Errorf("DELETE tweets = %d", w.Code)
	}
	if w := del(t, h, "/v1/tenants/tweets"); w.Code != http.StatusNotFound {
		t.Errorf("second DELETE = %d, want 404", w.Code)
	}
	if _, ok := hub.Get("tweets"); ok {
		t.Error("hub still holds the deleted tenant's engine")
	}
	if w := get(t, h, "/v1/tenants/tweets/rankings"); w.Code != http.StatusNotFound {
		t.Errorf("rankings after delete = %d, want 404", w.Code)
	}
}

func TestTenantCreateWithoutOpener(t *testing.T) {
	s := New()
	defer s.Close()
	h := s.Handler()
	if w := postJSON(t, h, "/v1/tenants", `{"name":"x"}`); w.Code != http.StatusServiceUnavailable {
		t.Errorf("POST without opener = %d, want 503", w.Code)
	}
	// Listing still works: the default tenant is always present.
	w := get(t, h, "/v1/tenants")
	var list []TenantView
	if err := json.Unmarshal(w.Body.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].Name != "default" {
		t.Errorf("list = %+v", list)
	}
}

// jsonlItems renders n documents as a JSONL ingest body: steady chatter
// plus a correlated pair, spanning enough event time to fire ticks.
func jsonlItems(t *testing.T, hours int) string {
	t.Helper()
	var sb strings.Builder
	id := 0
	for hr := 0; hr < hours; hr++ {
		for mi := 0; mi < 60; mi += 5 {
			id++
			fmt.Fprintf(&sb, `{"time":%q,"id":"d-%04d","tags":["news","politics"]}`+"\n",
				t0.Add(time.Duration(hr)*time.Hour+time.Duration(mi)*time.Minute).Format(time.RFC3339), id)
		}
	}
	return sb.String()
}

func TestTenantIngestEndToEnd(t *testing.T) {
	hub := testHub()
	defer hub.Close()
	s := New()
	defer s.Close()
	s.AttachOpener(hubOpener{hub})
	h := s.Handler()

	if w := postJSON(t, h, "/v1/tenants", `{"name":"news"}`); w.Code != http.StatusCreated {
		t.Fatalf("create tenant = %d", w.Code)
	}
	// Ingest six hours of documents, one malformed line mixed in.
	body := jsonlItems(t, 6) + "{not json}\n"
	w := postJSON(t, h, "/v1/tenants/news/items", body)
	if w.Code != http.StatusOK {
		t.Fatalf("POST items = %d: %s", w.Code, w.Body)
	}
	var iv IngestView
	if err := json.Unmarshal(w.Body.Bytes(), &iv); err != nil {
		t.Fatal(err)
	}
	if iv.Consumed != 6*12 || iv.Skipped != 1 || iv.DocsProcessed != int64(iv.Consumed) {
		t.Errorf("ingest view = %+v, want 72 consumed, 1 skipped", iv)
	}

	// The engine is the hub's: flush it and the tenant's feed publishes.
	e, ok := hub.Get("news")
	if !ok {
		t.Fatal("hub lost the tenant engine")
	}
	e.Flush()
	deadline := time.Now().Add(5 * time.Second)
	for {
		w := get(t, h, "/v1/tenants/news/rankings")
		var view RankingView
		_ = json.Unmarshal(w.Body.Bytes(), &view)
		if !view.At.IsZero() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("ingested items never produced a published ranking")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The tenant's automatic history ring recorded the ticks.
	w = get(t, h, "/v1/tenants/news/rankings/history?k=5")
	if w.Code != http.StatusOK {
		t.Fatalf("tenant history = %d: %s", w.Code, w.Body)
	}
	// The default tenant keeps the legacy contract: no history attached.
	if w := get(t, h, "/v1/rankings/history"); w.Code != http.StatusNotFound {
		t.Errorf("default history = %d, want 404 (legacy contract)", w.Code)
	}

	// Ingest into a tenant with no engine: the default tenant here.
	if w := postJSON(t, h, "/v1/tenants/default/items", body); w.Code != http.StatusServiceUnavailable {
		t.Errorf("ingest without engine = %d, want 503", w.Code)
	}

	// An over-tagged document is skip-counted, not consumed and not fatal.
	tags := `"t0"`
	for i := 1; i <= maxIngestTagsPerDoc; i++ {
		tags += fmt.Sprintf(`,"t%d"`, i)
	}
	before := e.DocsProcessed()
	w = postJSON(t, h, "/v1/tenants/news/items",
		fmt.Sprintf(`{"time":"2011-06-12T07:00:00Z","id":"fat","tags":[%s]}`, tags)+"\n"+
			`{"time":"2011-06-12T07:00:01Z","id":"ok","tags":["a","b"]}`+"\n")
	if w.Code != http.StatusOK {
		t.Fatalf("mixed batch = %d", w.Code)
	}
	var iv2 IngestView
	if err := json.Unmarshal(w.Body.Bytes(), &iv2); err != nil {
		t.Fatal(err)
	}
	if iv2.Consumed != 1 || iv2.Skipped != 1 || e.DocsProcessed() != before+1 {
		t.Errorf("over-tagged doc handling = %+v (docs %d -> %d)", iv2, before, e.DocsProcessed())
	}
}

// TestTenantIngestBatchedParity pins the wire-level half of the batched
// determinism contract: a JSONL body fed through POST items (which
// consumes the whole request in one ConsumeBatch) must leave the tenant's
// engine with exactly the ranking a per-document Consume loop over the
// same stream produces — and the ingest queue counters must surface in
// the tenant's stats view.
func TestTenantIngestBatchedParity(t *testing.T) {
	hub := testHub()
	defer hub.Close()
	s := New()
	defer s.Close()
	s.AttachOpener(hubOpener{hub})
	h := s.Handler()

	if w := postJSON(t, h, "/v1/tenants", `{"name":"wire"}`); w.Code != http.StatusCreated {
		t.Fatalf("create tenant = %d", w.Code)
	}
	body := jsonlItems(t, 8)
	if w := postJSON(t, h, "/v1/tenants/wire/items", body); w.Code != http.StatusOK {
		t.Fatalf("POST items = %d", w.Code)
	}
	e, ok := hub.Get("wire")
	if !ok {
		t.Fatal("hub lost the tenant engine")
	}
	e.Flush()
	got := e.CurrentRanking()

	// Reference: the same stream consumed one document at a time by an
	// engine built from the same hub defaults.
	ref := core.New(testHubDefaults())
	defer ref.Close()
	docs, skipped, err := source.ReadJSONL(strings.NewReader(body), false)
	if err != nil || skipped != 0 {
		t.Fatalf("re-parsing ingest body: %v (skipped %d)", err, skipped)
	}
	for i := range docs {
		ref.Consume(docs[i].Item())
	}
	ref.Flush()
	want := ref.CurrentRanking()

	if !got.At.Equal(want.At) || len(got.Topics) != len(want.Topics) {
		t.Fatalf("batched wire ingest ranking (at %v, %d topics) != serial (at %v, %d topics)",
			got.At, len(got.Topics), want.At, len(want.Topics))
	}
	for i := range want.Topics {
		if got.Topics[i].Pair != want.Topics[i].Pair || got.Topics[i].Score != want.Topics[i].Score {
			t.Fatalf("topic %d diverges: %+v vs %+v", i, got.Topics[i], want.Topics[i])
		}
	}

	// The stats view carries the ingest queue gauges (zero here: the wire
	// path consumes synchronously, no queue ever starts).
	w := get(t, h, "/v1/tenants/wire/stats")
	var sv StatsView
	if err := json.Unmarshal(w.Body.Bytes(), &sv); err != nil {
		t.Fatal(err)
	}
	if sv.IngestDepth != 0 || sv.IngestDropped != 0 {
		t.Errorf("(ingestDepth, ingestDropped) = (%d, %d), want (0, 0)", sv.IngestDepth, sv.IngestDropped)
	}
	if !strings.Contains(w.Body.String(), `"ingestDepth"`) ||
		!strings.Contains(w.Body.String(), `"ingestDropped"`) {
		t.Errorf("stats JSON missing ingest gauges: %s", w.Body)
	}
}

func TestTenantProfilesAndStatsIsolated(t *testing.T) {
	hub := testHub()
	defer hub.Close()
	s := New()
	defer s.Close()
	s.AttachOpener(hubOpener{hub})
	h := s.Handler()
	for _, name := range []string{"a", "b"} {
		if w := postJSON(t, h, "/v1/tenants", fmt.Sprintf(`{"name":%q}`, name)); w.Code != http.StatusCreated {
			t.Fatalf("create %s = %d", name, w.Code)
		}
	}

	if w := postJSON(t, h, "/v1/tenants/a/profiles", `{"name":"alice","keywords":["x"]}`); w.Code != http.StatusCreated {
		t.Fatalf("profile on a = %d", w.Code)
	}
	// Visible on tenant a only.
	if w := get(t, h, "/v1/tenants/a/profiles/alice"); w.Code != http.StatusOK {
		t.Errorf("a's profile = %d", w.Code)
	}
	if w := get(t, h, "/v1/tenants/b/profiles/alice"); w.Code != http.StatusNotFound {
		t.Errorf("b sees a's profile: %d", w.Code)
	}
	if w := get(t, h, "/v1/profiles/alice"); w.Code != http.StatusNotFound {
		t.Errorf("default sees a's profile: %d", w.Code)
	}

	// Per-tenant stats carry the tenant name, uptime, and isolated counters.
	var sa, sb StatsView
	if err := json.Unmarshal(get(t, h, "/v1/tenants/a/stats").Body.Bytes(), &sa); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(get(t, h, "/v1/tenants/b/stats").Body.Bytes(), &sb); err != nil {
		t.Fatal(err)
	}
	if sa.Tenant != "a" || sb.Tenant != "b" {
		t.Errorf("stats tenants = %q, %q", sa.Tenant, sb.Tenant)
	}
	if sa.Uptime < 0 || sb.Uptime < 0 {
		t.Errorf("negative uptimes: %v, %v", sa.Uptime, sb.Uptime)
	}
	if sa.Profiles != 1 || sb.Profiles != 0 {
		t.Errorf("profile counts = %d, %d; want 1, 0", sa.Profiles, sb.Profiles)
	}
	// The tenant-less stats alias answers for the default tenant.
	var sd StatsView
	if err := json.Unmarshal(get(t, h, "/v1/stats").Body.Bytes(), &sd); err != nil {
		t.Fatal(err)
	}
	if sd.Tenant != DefaultTenant {
		t.Errorf("/v1/stats tenant = %q, want %q", sd.Tenant, DefaultTenant)
	}
}

// Feeding two followed tenants distinct rankings must keep their broadcast
// state, moves, and SSE hubs fully separate.
func TestTenantPublishIsolation(t *testing.T) {
	s := New()
	defer s.Close()
	ta := s.ensureTenant("a")
	tb := s.ensureTenant("b")
	ra := sampleRanking()
	s.publish(ta, ra)
	h := s.Handler()

	var va, vb RankingView
	if err := json.Unmarshal(get(t, h, "/v1/tenants/a/rankings").Body.Bytes(), &va); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(get(t, h, "/v1/tenants/b/rankings").Body.Bytes(), &vb); err != nil {
		t.Fatal(err)
	}
	if len(va.Topics) != 2 {
		t.Errorf("tenant a topics = %+v", va.Topics)
	}
	if !vb.At.IsZero() || len(vb.Topics) != 0 {
		t.Errorf("tenant b leaked a's ranking: %+v", vb)
	}
	if ta.hub.Last() == nil || tb.hub.Last() != nil {
		t.Error("SSE hubs not isolated between tenants")
	}
}
