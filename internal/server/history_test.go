package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"testing"
	"time"

	"enblogue/internal/core"
	"enblogue/internal/history"
	"enblogue/internal/pairs"
	"enblogue/internal/shift"
)

func newHistoryServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	s := New()
	s.AttachHistory(history.New(100))
	// Three ticks: pair a+b rises then falls; c+d appears once.
	for i, sc := range []float64{0.1, 0.9, 0.3} {
		r := core.Ranking{At: t0.Add(time.Duration(i) * time.Hour)}
		r.Topics = append(r.Topics, shift.Topic{Pair: pairs.MakeKey("a", "b"), Score: sc})
		if i == 2 {
			r.Topics = append(r.Topics, shift.Topic{Pair: pairs.MakeKey("c", "d"), Score: 0.2})
		}
		s.PublishRanking(r)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func TestHistoryEndpoint(t *testing.T) {
	_, ts := newHistoryServer(t)
	resp, err := http.Get(ts.URL + "/history?k=5")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var entries []HistoryEntryView
	if err := json.NewDecoder(resp.Body).Decode(&entries); err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("entries = %+v", entries)
	}
	if entries[0].Tag1 != "a" || entries[0].Score != 0.9 || entries[0].Ticks != 3 {
		t.Errorf("entries[0] = %+v", entries[0])
	}
}

func TestHistoryEndpointRange(t *testing.T) {
	_, ts := newHistoryServer(t)
	// Restrict to the first tick only: c+d must vanish, a+b max = 0.1.
	q := url.Values{}
	q.Set("from", t0.Format(time.RFC3339))
	q.Set("to", t0.Add(30*time.Minute).Format(time.RFC3339))
	resp, err := http.Get(ts.URL + "/history?" + q.Encode())
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var entries []HistoryEntryView
	json.NewDecoder(resp.Body).Decode(&entries)
	if len(entries) != 1 || entries[0].Score != 0.1 {
		t.Errorf("range entries = %+v", entries)
	}
}

func TestHistoryEndpointValidation(t *testing.T) {
	_, ts := newHistoryServer(t)
	for _, bad := range []string{
		"/history?from=notatime",
		"/history?to=alsobad",
		"/history?k=0",
		"/history?k=xyz",
		"/history?agg=median",
		"/trajectory", // missing tags
		"/trajectory?tag1=a&tag2=b&from=bad",
	} {
		resp, err := http.Get(ts.URL + bad)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s status = %d, want 400", bad, resp.StatusCode)
		}
	}
}

func TestHistoryNotEnabled(t *testing.T) {
	s := New()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	for _, path := range []string{"/history", "/trajectory?tag1=a&tag2=b"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s status = %d, want 404", path, resp.StatusCode)
		}
	}
}

func TestTrajectoryEndpoint(t *testing.T) {
	_, ts := newHistoryServer(t)
	resp, err := http.Get(ts.URL + "/trajectory?tag1=b&tag2=a")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var pts []TrajectoryPointView
	if err := json.NewDecoder(resp.Body).Decode(&pts); err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("trajectory = %+v", pts)
	}
	if pts[1].Score != 0.9 || pts[1].Rank != 0 {
		t.Errorf("pts[1] = %+v", pts[1])
	}
	// Aggregate mean via history endpoint.
	resp2, err := http.Get(ts.URL + "/history?agg=mean")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var entries []HistoryEntryView
	json.NewDecoder(resp2.Body).Decode(&entries)
	found := false
	for _, e := range entries {
		if e.Tag1 == "a" {
			found = true
			want := (0.1 + 0.9 + 0.3) / 3
			if diff := e.Score - want; diff > 1e-9 || diff < -1e-9 {
				t.Errorf("mean score = %v, want %v", e.Score, want)
			}
		}
	}
	if !found {
		t.Error("a+b missing from mean aggregate")
	}
}
