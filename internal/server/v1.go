package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"strings"

	"enblogue/internal/core"
	"enblogue/internal/pairs"
	"enblogue/internal/persona"
)

// This file implements the /v1 wire contract — both the tenant-scoped
// /v1/tenants/{tenant}/... routes and the tenant-less aliases onto the
// default tenant. Wire shapes (TopicView, RankingView, StatsView,
// ProfileView, TenantView, IngestView) are stable: fields may be added,
// never renamed or removed, within the v1 major version. The multi-tenant
// additions follow that rule: StatsView gained tenant (the answering
// tenant's name), uptime (seconds since the tenant was created), and its
// per-tenant rankingsDropped now counts only that tenant's engine;
// TenantView and IngestView are new shapes, frozen on the same terms.
// Example payloads are documented in DESIGN.md §5 and §7.

// ProfileView is the stable wire form of one personalization profile.
//
//enblogue:wire
type ProfileView struct {
	Name       string   `json:"name"`
	Keywords   []string `json:"keywords,omitempty"`
	Categories []string `json:"categories,omitempty"`
	Boost      float64  `json:"boost,omitempty"`
	Exclusive  bool     `json:"exclusive,omitempty"`
}

func profileView(p *persona.Profile) ProfileView {
	return ProfileView{
		Name:       p.Name,
		Keywords:   append([]string(nil), p.Keywords...),
		Categories: append([]string(nil), p.Categories...),
		Boost:      p.Boost,
		Exclusive:  p.Exclusive,
	}
}

// rankingToView converts a broker-delivered ranking to wire form (no
// profiles map, moves, or alerts — those belong to the broadcast frame).
func rankingToView(r core.Ranking) RankingView {
	view := RankingView{At: r.At, Seeds: r.Seeds}
	for i, t := range r.Topics {
		view.Topics = append(view.Topics, TopicView{
			Rank:         i + 1,
			Tag1:         t.Pair.Tag1(),
			Tag2:         t.Pair.Tag2(),
			Score:        t.Score,
			Correlation:  t.Correlation,
			Cooccurrence: t.Cooccurrence,
		})
	}
	return view
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are already out; nothing sensible left to do.
		_ = err
	}
}

// handleV1Rankings serves GET [/v1/tenants/{tenant}]/v1/rankings
// [?profile=name]: the tenant's current broadcast ranking, or one
// profile's personalized view of it.
func (s *Server) handleV1Rankings(w http.ResponseWriter, r *http.Request) {
	t := s.tenantOr404(w, r)
	if t == nil {
		return
	}
	t.mu.Lock()
	view := t.lastView
	t.mu.Unlock()
	name := r.URL.Query().Get("profile")
	if name == "" {
		writeJSON(w, http.StatusOK, view)
		return
	}
	p := t.registry.Get(name)
	if p == nil {
		http.Error(w, fmt.Sprintf("unknown profile %q", name), http.StatusNotFound)
		return
	}
	// Rerank the broadcast snapshot on demand so a profile registered
	// after the last tick still gets a personalized answer immediately.
	// Diagnostics (correlation, cooccurrence) are carried through the
	// rerank so this endpoint agrees with /v1/stream?profile= frames.
	topics := make([]persona.Topic, 0, len(view.Topics))
	byPair := make(map[pairs.Key]TopicView, len(view.Topics))
	for _, tv := range view.Topics {
		k := pairs.MakeKey(tv.Tag1, tv.Tag2)
		topics = append(topics, persona.Topic{Pair: k, Score: tv.Score})
		byPair[k] = tv
	}
	reranked := persona.Rerank(topics, p)
	out := make([]TopicView, len(reranked))
	for i, pt := range reranked {
		orig := byPair[pt.Pair]
		out[i] = TopicView{
			Rank:         i + 1,
			Tag1:         pt.Pair.Tag1(),
			Tag2:         pt.Pair.Tag2(),
			Score:        pt.Score,
			Correlation:  orig.Correlation,
			Cooccurrence: orig.Cooccurrence,
		}
	}
	writeJSON(w, http.StatusOK, RankingView{At: view.At, Seeds: view.Seeds, Topics: out})
}

// predicateOpts parses the stream predicate query parameters —
// ?tags=a,b (any-of), ?allTags=a,b (all-of), ?minScore=0.5,
// ?emergenceOnly=true — into subscription options. Returns nil options
// when no predicate parameter is present.
func predicateOpts(q url.Values) ([]core.SubOption, error) {
	var opts []core.SubOption
	if tags := splitTagList(q.Get("tags")); len(tags) > 0 {
		opts = append(opts, core.SubTags(tags...))
	}
	if tags := splitTagList(q.Get("allTags")); len(tags) > 0 {
		opts = append(opts, core.SubAllTags(tags...))
	}
	if v := q.Get("minScore"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return nil, fmt.Errorf("bad minScore %q", v)
		}
		opts = append(opts, core.SubMinScore(f))
	}
	if v := q.Get("emergenceOnly"); v != "" {
		b, err := strconv.ParseBool(v)
		if err != nil {
			return nil, fmt.Errorf("bad emergenceOnly %q", v)
		}
		if b {
			opts = append(opts, core.SubEmergenceOnly())
		}
	}
	return opts, nil
}

func splitTagList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// handleV1Stream serves GET [/v1/tenants/{tenant}]/v1/stream
// [?profile=name][&tags=a,b][&allTags=a,b][&minScore=f][&emergenceOnly=true].
// Without a profile or predicate it is the tenant's broadcast SSE feed —
// every such client shares the single payload the hub marshalled for the
// tick, so fan-out cost is one serialization per tick regardless of
// client count. With a profile and/or predicate parameters, the server
// opens a dedicated engine subscription — a server-side continuous query
// compiled into the broker's inverted tag index — and streams its
// filtered, re-ranked views for the lifetime of the request; predicated
// streams only carry frames on ticks where the filtered view changed.
func (s *Server) handleV1Stream(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	name := q.Get("profile")
	predOpts, err := predicateOpts(q)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if name == "" && len(predOpts) == 0 {
		s.handleEvents(w, r)
		return
	}
	t := s.tenantOr404(w, r)
	if t == nil {
		return
	}
	var p *persona.Profile
	if name != "" {
		if p = t.registry.Get(name); p == nil {
			http.Error(w, fmt.Sprintf("unknown profile %q", name), http.StatusNotFound)
			return
		}
	}
	t.mu.Lock()
	e := t.engine
	t.mu.Unlock()
	if e == nil {
		http.Error(w, "no engine attached; per-profile and predicate streams unavailable", http.StatusServiceUnavailable)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	// The subscription ends when the client disconnects OR the tenant goes
	// away (removed, or the whole server closes) — otherwise a parked
	// profile stream would pin http.Server.Shutdown until its timeout.
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	stop := context.AfterFunc(t.ctx, cancel)
	defer stop()
	subOpts := append(predOpts, core.SubBuffer(8))
	if p != nil {
		subOpts = append(subOpts, core.SubProfile(p))
	}
	sub := e.Subscribe(ctx, subOpts...)
	defer sub.Close()
	for rkn := range sub.Notifications() {
		rk := rkn.Ranking()
		frame, err := json.Marshal(rankingToView(rk))
		if err != nil {
			return
		}
		if _, err := fmt.Fprintf(w, "data: %s\n\n", frame); err != nil {
			return
		}
		fl.Flush()
	}
}

// handleV1ProfilesList serves GET [/v1/tenants/{tenant}]/v1/profiles: the
// tenant's registered profiles.
func (s *Server) handleV1ProfilesList(w http.ResponseWriter, r *http.Request) {
	t := s.tenantOr404(w, r)
	if t == nil {
		return
	}
	names := t.registry.Names()
	out := make([]ProfileView, 0, len(names))
	for _, n := range names {
		if p := t.registry.Get(n); p != nil {
			out = append(out, profileView(p))
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// handleV1ProfilePut serves POST [/v1/tenants/{tenant}]/v1/profiles:
// register or replace a profile on the tenant, answering with the stored
// state.
func (s *Server) handleV1ProfilePut(w http.ResponseWriter, r *http.Request) {
	t := s.tenantOr404(w, r)
	if t == nil {
		return
	}
	var req profileRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad profile JSON: "+err.Error(), http.StatusBadRequest)
		return
	}
	if req.Name == "" {
		http.Error(w, "profile name required", http.StatusBadRequest)
		return
	}
	t.setProfile(&req)
	// Answer from the request, not a registry re-read: a concurrent DELETE
	// could remove the profile between Set and Get.
	writeJSON(w, http.StatusCreated, profileView(&persona.Profile{
		Name:       req.Name,
		Keywords:   req.Keywords,
		Categories: req.Categories,
		Boost:      req.Boost,
		Exclusive:  req.Exclusive,
	}))
}

// handleV1ProfileGet serves GET [/v1/tenants/{tenant}]/v1/profiles/{name}.
func (s *Server) handleV1ProfileGet(w http.ResponseWriter, r *http.Request) {
	t := s.tenantOr404(w, r)
	if t == nil {
		return
	}
	name := r.PathValue("name")
	p := t.registry.Get(name)
	if p == nil {
		http.Error(w, fmt.Sprintf("unknown profile %q", name), http.StatusNotFound)
		return
	}
	writeJSON(w, http.StatusOK, profileView(p))
}

// handleV1ProfileDelete serves DELETE
// [/v1/tenants/{tenant}]/v1/profiles/{name}: the persona's server-side
// standing query ends; the tenant's next broadcast frame no longer carries
// its view.
func (s *Server) handleV1ProfileDelete(w http.ResponseWriter, r *http.Request) {
	t := s.tenantOr404(w, r)
	if t == nil {
		return
	}
	name := r.PathValue("name")
	if t.registry.Get(name) == nil {
		http.Error(w, fmt.Sprintf("unknown profile %q", name), http.StatusNotFound)
		return
	}
	t.registry.Remove(name)
	t.mu.Lock()
	t.watcher.Reset(name)
	t.mu.Unlock()
	w.WriteHeader(http.StatusNoContent)
}
