package persist

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"enblogue/internal/core"
	"enblogue/internal/pairs"
	"enblogue/internal/shift"
	"enblogue/internal/stream"
)

// File layout inside a data directory (one directory per engine; the Hub
// gives each tenant a subdirectory):
//
//	snap-<epoch>.snap    full engine snapshot taken at document count <epoch>
//	wal-<epoch>.jsonl    WAL segment holding documents seq > <epoch>
//
// Epochs are zero-padded to 20 digits so lexicographic name order is epoch
// order. WAL segments rotate exactly at snapshot epochs (under the engine's
// ingest gate), so segment boundaries and snapshot coverage always agree:
// recovery restores the newest valid snapshot and replays every record with
// seq above its epoch, in order, asserting contiguity.

const (
	snapPrefix = "snap-"
	snapSuffix = ".snap"
	walPrefix  = "wal-"
	walSuffix  = ".jsonl"
)

func snapName(epoch int64) string { return fmt.Sprintf("%s%020d%s", snapPrefix, epoch, snapSuffix) }
func walName(epoch int64) string  { return fmt.Sprintf("%s%020d%s", walPrefix, epoch, walSuffix) }

// parseEpoch extracts the epoch from a snapshot or WAL file name; ok is
// false for names that are not ours.
func parseEpoch(name, prefix, suffix string) (int64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	mid := name[len(prefix) : len(name)-len(suffix)]
	if len(mid) != 20 {
		return 0, false
	}
	n, err := strconv.ParseInt(mid, 10, 64)
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// walFile is the slice of *os.File the Store needs; the crash-injection
// harness substitutes fault-point implementations through the create seam.
type walFile interface {
	io.Writer
	Sync() error
	Close() error
}

// Store is the persistence layer attached to one engine: it records every
// ingested document to the WAL (as the engine's WALRecorder) and writes
// snapshots on demand and on a background ticker (as its Durability
// handle). A Store is built by Attach during core.New, after recovery.
type Store struct {
	dir string
	cfg core.DurabilityConfig // normalized: defaults applied
	eng *core.Engine
	// engCfg is the engine's effective configuration, the source of the
	// snapshot fingerprint.
	engCfg core.Config

	// create and rename are the filesystem seams the crash-injection
	// harness overrides; production uses the os implementations.
	create func(path string) (walFile, error)
	rename func(oldpath, newpath string) error

	// snapMu serialises whole snapshot operations — state export, encode,
	// file write — against each other (ticker vs. explicit Snapshot). It is
	// taken before any engine lock and held across the export, hence the
	// lowest class in the engine's lock order.
	//
	//enblogue:lock persistSnap 5
	snapMu sync.Mutex

	// mu guards the live WAL segment and the stats fields. RecordDoc runs
	// under the engine bookkeeping lock, and rotation happens inside the
	// engine's snapshot gate, so this class sits above engine.
	//
	//enblogue:lock wal 15
	mu         sync.Mutex
	walF       walFile
	walEpoch   int64
	buf        []byte // reusable record-encode buffer
	lastSync   time.Time
	snapEpoch  int64
	lastSnapAt time.Time
	lastErr    string
	closed     bool

	done      chan struct{} // stops the snapshot ticker
	wg        sync.WaitGroup
	closeOnce sync.Once
	closeErr  error
}

func osCreate(path string) (walFile, error) {
	return os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}

// Attach is the core durability hook (installed by package enblogue): it
// recovers dir's prior state into the freshly built engine, then returns
// the WAL recorder and durability handle the engine runs with. Unreadable
// prior state degrades gracefully — the newest valid older snapshot (or a
// fresh engine) plus whatever WAL prefix was intact, with the problem
// surfaced through DurabilityStats.LastErr — while an unusable data
// directory is a hard error.
func Attach(e *core.Engine) (core.WALRecorder, core.Durability, error) {
	s, err := openStore(e)
	if err != nil {
		return nil, nil, err
	}
	return s, s, nil
}

// openStore recovers and builds the Store for e's configured directory.
func openStore(e *core.Engine) (*Store, error) {
	engCfg := e.Config()
	cfg := engCfg.Durability
	if cfg.SnapshotEvery == 0 {
		cfg.SnapshotEvery = time.Minute
	}
	if cfg.FsyncEvery <= 0 {
		cfg.FsyncEvery = time.Second
	}
	if cfg.KeepSnapshots <= 0 {
		cfg.KeepSnapshots = 2
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	s := &Store{
		dir:    cfg.Dir,
		cfg:    cfg,
		eng:    e,
		engCfg: engCfg,
		create: osCreate,
		rename: os.Rename,
	}
	res, err := recoverInto(cfg.Dir, e, engCfg, false)
	if err != nil {
		return nil, err
	}
	s.snapEpoch = res.snapEpoch
	s.lastSnapAt = res.snapTime
	s.lastErr = res.warn
	// Open the live segment at the exact recovered position. The segment
	// may already exist (crash between rotation and snapshot write); its
	// records are ≤ the recovered position and appending continues the
	// sequence contiguously, so replay handles both layouts.
	s.mu.Lock()
	err = s.rotateLocked(e.DocsProcessed())
	s.mu.Unlock()
	if err != nil {
		return nil, err
	}
	if s.cfg.SnapshotEvery > 0 {
		s.done = make(chan struct{})
		s.wg.Add(1)
		go s.snapshotLoop()
	}
	return s, nil
}

func (s *Store) snapshotLoop() {
	defer s.wg.Done()
	t := time.NewTicker(s.cfg.SnapshotEvery)
	defer t.Stop()
	for {
		select {
		case <-s.done:
			return
		case <-t.C:
			// Errors are surfaced through Stats().LastErr; the ticker keeps
			// trying.
			s.Snapshot() //nolint:errcheck
		}
	}
}

// RecordDoc implements core.WALRecorder: it appends one document to the
// live WAL segment. Called under the engine bookkeeping lock for every
// consumed document; the single reusable buffer and single Write keep the
// steady-state cost at zero allocations. Append or sync failures degrade
// durability, never ingest: they are recorded in LastErr.
//
//enblogue:acquires wal
func (s *Store) RecordDoc(seq int64, it *stream.Item) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.walF == nil {
		return
	}
	s.buf = appendWALRecord(s.buf[:0], seq, it)
	if _, err := s.walF.Write(s.buf); err != nil {
		s.lastErr = "wal append: " + err.Error()
		return
	}
	switch s.cfg.Fsync {
	case core.FsyncAlways:
		if err := s.walF.Sync(); err != nil {
			s.lastErr = "wal sync: " + err.Error()
		}
	case core.FsyncInterval:
		if now := time.Now(); now.Sub(s.lastSync) >= s.cfg.FsyncEvery {
			s.lastSync = now
			if err := s.walF.Sync(); err != nil {
				s.lastErr = "wal sync: " + err.Error()
			}
		}
	}
}

// rotate closes the live WAL segment and opens the one for epoch. Invoked
// by Engine.SnapshotState inside the ingest gate, so no document can land
// between the state export and the segment switch.
//
//enblogue:acquires wal
func (s *Store) rotate(epoch int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rotateLocked(epoch)
}

//enblogue:requires wal
func (s *Store) rotateLocked(epoch int64) error {
	if s.walF != nil {
		s.walF.Sync() //nolint:errcheck // best effort; the close error matters more
		if err := s.walF.Close(); err != nil {
			s.walF = nil
			s.lastErr = "wal close: " + err.Error()
			return fmt.Errorf("persist: wal close: %w", err)
		}
		s.walF = nil
	}
	f, err := s.create(filepath.Join(s.dir, walName(epoch)))
	if err != nil {
		s.lastErr = "wal open: " + err.Error()
		return fmt.Errorf("persist: wal open: %w", err)
	}
	s.walF = f
	s.walEpoch = epoch
	return nil
}

// Snapshot implements core.Durability: it exports the engine state (under
// the ingest gate, rotating the WAL at the same instant), then encodes and
// writes the snapshot outside all engine locks via temp-file + rename.
//
//enblogue:acquires persistSnap
func (s *Store) Snapshot() error {
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	st, err := s.eng.SnapshotState(s.rotate)
	if err != nil {
		s.noteErr("snapshot", err)
		return err
	}
	data := encodeSnapshot(s.engCfg, &st)
	if err := s.writeSnapshot(st.Docs, data); err != nil {
		s.noteErr("snapshot", err)
		return err
	}
	s.mu.Lock()
	s.snapEpoch = st.Docs
	s.lastSnapAt = time.Now()
	s.lastErr = ""
	s.mu.Unlock()
	s.prune()
	return nil
}

// writeSnapshot persists data as the epoch snapshot: write to a temp file,
// sync, close, rename into place, then sync the directory. A crash at any
// point leaves either the previous snapshot set intact or the new file
// fully in place — never a torn named snapshot.
func (s *Store) writeSnapshot(epoch int64, data []byte) error {
	final := filepath.Join(s.dir, snapName(epoch))
	tmp := final + ".tmp"
	os.Remove(tmp) //nolint:errcheck // stale tmp from a previous crash
	f, err := s.create(tmp)
	if err != nil {
		return fmt.Errorf("persist: snapshot create: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()      //nolint:errcheck
		os.Remove(tmp) //nolint:errcheck
		return fmt.Errorf("persist: snapshot write: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()      //nolint:errcheck
		os.Remove(tmp) //nolint:errcheck
		return fmt.Errorf("persist: snapshot sync: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp) //nolint:errcheck
		return fmt.Errorf("persist: snapshot close: %w", err)
	}
	if err := s.rename(tmp, final); err != nil {
		os.Remove(tmp) //nolint:errcheck
		return fmt.Errorf("persist: snapshot rename: %w", err)
	}
	if d, err := os.Open(s.dir); err == nil {
		d.Sync()  //nolint:errcheck // not all filesystems support dir sync
		d.Close() //nolint:errcheck
	}
	return nil
}

// prune removes snapshot generations beyond KeepSnapshots and the WAL
// segments older than the oldest kept snapshot (their records are all
// covered by it).
func (s *Store) prune() {
	snaps := listEpochs(s.dir, snapPrefix, snapSuffix)
	if len(snaps) <= s.cfg.KeepSnapshots {
		return
	}
	drop := snaps[:len(snaps)-s.cfg.KeepSnapshots]
	oldestKept := snaps[len(snaps)-s.cfg.KeepSnapshots]
	for _, e := range drop {
		os.Remove(filepath.Join(s.dir, snapName(e))) //nolint:errcheck
	}
	for _, e := range listEpochs(s.dir, walPrefix, walSuffix) {
		// Segment e holds seqs in (e, nextRotation]; rotations happen at
		// snapshot epochs, so every record in a segment below the oldest
		// kept snapshot is at or below that snapshot's epoch.
		if e < oldestKept {
			os.Remove(filepath.Join(s.dir, walName(e))) //nolint:errcheck
		}
	}
}

func (s *Store) noteErr(op string, err error) {
	s.mu.Lock()
	s.lastErr = op + ": " + err.Error()
	s.mu.Unlock()
}

// Stats implements core.Durability.
//
//enblogue:acquires wal
func (s *Store) Stats() core.DurabilityStats {
	s.mu.Lock()
	st := core.DurabilityStats{
		SnapshotEpoch:  s.snapEpoch,
		LastSnapshotAt: s.lastSnapAt,
		LastErr:        s.lastErr,
	}
	s.mu.Unlock()
	if entries, err := os.ReadDir(s.dir); err == nil {
		for _, ent := range entries {
			if _, ok := parseEpoch(ent.Name(), walPrefix, walSuffix); !ok {
				continue
			}
			st.WALSegments++
			if info, err := ent.Info(); err == nil {
				st.WALBytes += info.Size()
			}
		}
	}
	return st
}

// Close implements core.Durability: it stops the snapshot ticker and syncs
// and closes the live WAL segment. Idempotent.
//
//enblogue:acquires wal
func (s *Store) Close() error {
	s.closeOnce.Do(func() {
		if s.done != nil {
			close(s.done)
			s.wg.Wait()
		}
		s.mu.Lock()
		if s.walF != nil {
			s.walF.Sync() //nolint:errcheck
			s.closeErr = s.walF.Close()
			s.walF = nil
		}
		s.closed = true
		s.mu.Unlock()
	})
	return s.closeErr
}

// listEpochs returns the epochs of dir's snapshot or WAL files, ascending.
func listEpochs(dir, prefix, suffix string) []int64 {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	var out []int64
	for _, ent := range entries {
		if e, ok := parseEpoch(ent.Name(), prefix, suffix); ok {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// recoverResult reports what recovery found.
type recoverResult struct {
	snapEpoch int64     // epoch of the restored snapshot (0 if none)
	snapTime  time.Time // its file modification time
	warn      string    // non-fatal degradation, "" when recovery was clean
}

// Recover restores dir's durable state into e — newest valid snapshot, then
// WAL replay — and returns the recovered document position. e must be a
// freshly built engine with the exporter's semantic configuration and no
// durability of its own (durability-enabled engines recover automatically
// inside New). Unlike the attach path, Recover is strict: a torn trailing
// WAL record (the normal crash artifact) stops replay cleanly, but any
// sequence gap, mid-log corruption, or config mismatch is an error.
func Recover(dir string, e *core.Engine) (int64, error) {
	if _, err := recoverInto(dir, e, e.Config(), true); err != nil {
		return 0, err
	}
	return e.DocsProcessed(), nil
}

// recoverInto is the shared recovery engine. strict turns every degradation
// except a torn trailing record into an error; the attach path instead
// collects them as warnings and recovers the longest trustworthy prefix.
// Returned errors with the engine already partially restored cannot happen:
// every candidate snapshot is fully validated (checksum, structure,
// fingerprint) before any engine state is touched, and a restore failure
// after validation is a hard error in both modes.
func recoverInto(dir string, e *core.Engine, engCfg core.Config, strict bool) (recoverResult, error) {
	var res recoverResult
	var warns []string
	fp := fingerprintOf(engCfg)

	snaps := listEpochs(dir, snapPrefix, snapSuffix)
	restored := int64(0)
	for i := len(snaps) - 1; i >= 0; i-- {
		name := snapName(snaps[i])
		path := filepath.Join(dir, name)
		data, err := os.ReadFile(path)
		var d *decodedSnap
		if err == nil {
			d, err = decodeSnapshot(data)
		}
		if err == nil && d.fp != fp {
			err = fmt.Errorf("persist: %s was written under a different engine configuration (bump or match the config, or move the data directory aside)", name)
		}
		if err != nil {
			if strict {
				return res, err
			}
			warns = append(warns, err.Error())
			continue
		}
		if err := e.RestoreState(d.materialize()); err != nil {
			return res, fmt.Errorf("persist: restoring %s: %w", name, err)
		}
		restored = d.epoch
		res.snapEpoch = d.epoch
		if info, err := os.Stat(path); err == nil {
			res.snapTime = info.ModTime()
		}
		break
	}

	if err := replayWAL(dir, e, restored, strict, &warns); err != nil {
		return res, err
	}
	res.warn = strings.Join(warns, "; ")
	return res, nil
}

// replayWAL feeds every WAL record above the restored position into e, in
// batches, asserting the sequence is contiguous.
func replayWAL(dir string, e *core.Engine, restored int64, strict bool, warns *[]string) error {
	segs := listEpochs(dir, walPrefix, walSuffix)
	next := restored + 1
	batch := make([]*stream.Item, 0, 1024)
	flush := func() {
		if len(batch) > 0 {
			e.ConsumeBatch(batch)
			batch = batch[:0]
		}
	}
	for si, seg := range segs {
		data, err := os.ReadFile(filepath.Join(dir, walName(seg)))
		if err != nil {
			flush()
			if strict {
				return fmt.Errorf("persist: %w", err)
			}
			*warns = append(*warns, "wal read: "+err.Error())
			return nil
		}
		lines := bytes.Split(data, []byte{'\n'})
		for li, line := range lines {
			if len(bytes.TrimSpace(line)) == 0 {
				continue
			}
			seq, it, derr := decodeWALLine(line)
			if derr != nil {
				flush()
				// A torn final record in the final segment is the normal
				// crash artifact: the write was cut mid-line. Everything
				// before it is intact, so recovery stops exactly there.
				if si == len(segs)-1 && blankAfter(lines, li) {
					return nil
				}
				msg := fmt.Sprintf("wal segment %d line %d: %v", seg, li+1, derr)
				if strict {
					return fmt.Errorf("persist: %s", msg)
				}
				*warns = append(*warns, msg)
				return nil
			}
			if seq < next {
				// Covered by the restored snapshot (or by an earlier
				// segment after a crash between rotation and snapshot).
				continue
			}
			if seq != next {
				flush()
				msg := fmt.Sprintf("wal segment %d: sequence gap, want %d got %d", seg, next, seq)
				if strict {
					return fmt.Errorf("persist: %s", msg)
				}
				*warns = append(*warns, msg)
				return nil
			}
			batch = append(batch, it)
			next++
			if len(batch) == cap(batch) {
				flush()
			}
		}
	}
	flush()
	return nil
}

// blankAfter reports whether every line after index i is blank.
func blankAfter(lines [][]byte, i int) bool {
	for _, l := range lines[i+1:] {
		if len(bytes.TrimSpace(l)) != 0 {
			return false
		}
	}
	return true
}

// materialize resolves a validated decoded snapshot into a live
// core.EngineState, interning the tag table and rebuilding packed pair
// keys. Intern IDs assigned here generally differ from the exporting
// process's — rankings are ID-independent, so this is invisible.
func (d *decodedSnap) materialize() core.EngineState {
	keyOf := func(k decKey) pairs.Key {
		return pairs.MakeKey(d.table[k.a], d.table[k.b])
	}
	st := core.EngineState{
		Docs:         d.docs,
		LastSeenNano: d.lastSeenNano,
		NextTickNano: d.nextTickNano,
		NextTickSet:  d.nextTickSet,
		LastTickNano: d.lastTickNano,
		LastTickSet:  d.lastTickSet,
		Tags:         d.tags,
		Dist:         d.dist,
		Seeds:        d.seeds,
	}
	st.Pairs = pairs.ShardedTrackerState{
		NowNano: d.pairsNowNano,
		SinceGC: d.pairsSinceGC,
		Pairs:   make([]pairs.PairState, len(d.pairKeys)),
	}
	for i, k := range d.pairKeys {
		st.Pairs.Pairs[i] = pairs.PairState{Key: keyOf(k), Window: d.pairWindows[i]}
	}
	st.Det = shift.DetectorState{
		CurTickNano: d.detCurTickNano,
		TickCount:   d.detTickCount,
		Pairs:       make([]shift.PairDetState, len(d.detKeys)),
	}
	for i, k := range d.detKeys {
		st.Det.Pairs[i] = shift.PairDetState{
			Key:      keyOf(k),
			Decay:    d.detDecay[i],
			SeenNano: d.detSeen[i],
			Pred:     d.detPred[i],
		}
	}
	st.Last = core.Ranking{Seeds: d.lastSeeds}
	if d.lastAtSet {
		st.Last.At = nanoTime(d.lastAtNano)
	}
	if len(d.topics) > 0 {
		st.Last.Topics = make([]shift.Topic, len(d.topics))
		for i, t := range d.topics {
			t.Pair = keyOf(d.topicKeys[i])
			st.Last.Topics[i] = t
		}
	}
	return st
}
