// Package persist is the engine's durability layer: versioned binary
// snapshots of full engine state plus a JSONL write-ahead log of the ingest
// stream, with recovery = newest valid snapshot + WAL replay. The snapshot
// byte encoding is canonical — it serializes the engine's canonical state
// export (sorted tags, sorted pair keys rendered through a snapshot-local
// tag table, clocks advanced) — so two engines holding the same logical
// state produce identical snapshot bytes regardless of shard count, intern
// order, or arena slot layout. A golden-bytes test pins this per format
// version.
package persist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc64"
	"math"
	"sort"

	"enblogue/internal/core"
	"enblogue/internal/pairs"
	"enblogue/internal/predict"
	"enblogue/internal/shift"
	"enblogue/internal/tagstats"
	"enblogue/internal/window"
)

// snapMagic opens every snapshot file; FormatVersion follows it. Bump
// FormatVersion on ANY byte-layout change and regenerate the golden hash
// (see TestSnapshotGoldenBytes for the procedure).
const (
	snapMagic     = "ENBSNAP1"
	FormatVersion = 1
)

var crcTable = crc64.MakeTable(crc64.ECMA)

// fingerprint is the semantic engine configuration embedded in every
// snapshot: the fields that change what state means. Throughput and wiring
// knobs — Shards, Ingest*, Tagger, Durability itself — are deliberately
// excluded: state snapshotted at one shard count restores at any other
// (rankings are shard-count-independent), and the Tagger only matters at
// ingest time, where WAL replay re-runs it on the raw logged items.
//
// The tiered sketch tail (Config.TailSketch) is likewise excluded, from
// both the fingerprint and the snapshot payload — a deliberate cold-start-
// empty decision. The tail holds only upper-bound estimates for already-
// evicted pairs; every value the scorer reads lives in the exact tier,
// which round-trips bit-identically. Restoring an empty tail costs at most
// a delayed re-promotion of a tail pair that must re-earn its estimate,
// and in exchange snapshots stay byte-identical whether or not the tier is
// enabled, and pre-tier snapshots restore into tier-enabled engines (and
// vice versa) with no format change.
type fingerprint struct {
	WindowBuckets    int64
	WindowResolution int64
	TickEvery        int64
	SeedCount        int64
	SeedCriterion    int64
	SeedMinCount     float64
	SeedWarmupDocs   int64
	MaxPairs         int64
	Measure          int64
	DistributionMode bool
	Predictor        int64
	PredWindow       int64
	PredAlpha        float64
	PredBeta         float64
	PredPeriod       int64
	PredSeasons      int64
	HalfLife         int64
	MinCooccurrence  float64
	UpOnly           bool
	TopK             int64
	UseEntities      bool
}

// fingerprintOf derives the semantic fingerprint from an effective
// (normalized) engine configuration.
func fingerprintOf(c core.Config) fingerprint {
	return fingerprint{
		WindowBuckets:    int64(c.WindowBuckets),
		WindowResolution: int64(c.WindowResolution),
		TickEvery:        int64(c.TickEvery),
		SeedCount:        int64(c.SeedCount),
		SeedCriterion:    int64(c.SeedCriterion),
		SeedMinCount:     c.SeedMinCount,
		SeedWarmupDocs:   int64(c.SeedWarmupDocs),
		MaxPairs:         int64(c.MaxPairs),
		Measure:          int64(c.Measure),
		DistributionMode: c.DistributionMode,
		Predictor:        int64(c.Predictor),
		PredWindow:       int64(c.PredictorConfig.Window),
		PredAlpha:        c.PredictorConfig.Alpha,
		PredBeta:         c.PredictorConfig.Beta,
		PredPeriod:       int64(c.PredictorConfig.Period),
		PredSeasons:      int64(c.PredictorConfig.Seasons),
		HalfLife:         int64(c.HalfLife),
		MinCooccurrence:  c.MinCooccurrence,
		UpOnly:           c.UpOnly,
		TopK:             int64(c.TopK),
		UseEntities:      c.UseEntities,
	}
}

// ---- append-style encoder ----

func appendU8(b []byte, v uint8) []byte   { return append(b, v) }
func appendU32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }
func appendU64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }
func appendI64(b []byte, v int64) []byte  { return appendU64(b, uint64(v)) }
func appendF64(b []byte, v float64) []byte {
	return appendU64(b, math.Float64bits(v))
}
func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}
func appendStr(b []byte, s string) []byte {
	b = appendU32(b, uint32(len(s)))
	return append(b, s...)
}

func appendFingerprint(b []byte, fp fingerprint) []byte {
	b = appendI64(b, fp.WindowBuckets)
	b = appendI64(b, fp.WindowResolution)
	b = appendI64(b, fp.TickEvery)
	b = appendI64(b, fp.SeedCount)
	b = appendI64(b, fp.SeedCriterion)
	b = appendF64(b, fp.SeedMinCount)
	b = appendI64(b, fp.SeedWarmupDocs)
	b = appendI64(b, fp.MaxPairs)
	b = appendI64(b, fp.Measure)
	b = appendBool(b, fp.DistributionMode)
	b = appendI64(b, fp.Predictor)
	b = appendI64(b, fp.PredWindow)
	b = appendF64(b, fp.PredAlpha)
	b = appendF64(b, fp.PredBeta)
	b = appendI64(b, fp.PredPeriod)
	b = appendI64(b, fp.PredSeasons)
	b = appendI64(b, fp.HalfLife)
	b = appendF64(b, fp.MinCooccurrence)
	b = appendBool(b, fp.UpOnly)
	b = appendI64(b, fp.TopK)
	b = appendBool(b, fp.UseEntities)
	return b
}

func appendTimeBuckets(b []byte, s window.TimeBucketsState) []byte {
	b = appendU32(b, uint32(len(s.Buckets)))
	for _, v := range s.Buckets {
		b = appendF64(b, v)
	}
	for _, v := range s.Counts {
		b = appendI64(b, v)
	}
	b = appendI64(b, s.Head)
	b = appendBool(b, s.HeadSet)
	b = appendF64(b, s.Total)
	b = appendI64(b, s.N)
	return b
}

// appendSlot encodes a slot column sparsely: bucket count, then only the
// non-zero (position, value) entries — pair and tag windows are mostly
// zeros.
func appendSlot(b []byte, s window.SlotState) []byte {
	b = appendU32(b, uint32(len(s.Vals)))
	nnz := 0
	for _, v := range s.Vals {
		if v != 0 {
			nnz++
		}
	}
	b = appendU32(b, uint32(nnz))
	for i, v := range s.Vals {
		if v != 0 {
			b = appendU32(b, uint32(i))
			b = appendF64(b, v)
		}
	}
	b = appendI64(b, s.Head)
	b = appendBool(b, s.HeadSet)
	b = appendF64(b, s.Total)
	return b
}

func appendPredict(b []byte, s predict.State) []byte {
	b = appendU32(b, uint32(len(s.Ring)))
	for _, v := range s.Ring {
		b = appendF64(b, v)
	}
	b = appendF64(b, s.F1)
	b = appendF64(b, s.F2)
	b = appendF64(b, s.F3)
	b = appendI64(b, int64(s.N))
	b = appendBool(b, s.Seen)
	return b
}

// tagTableOf collects every tag referenced through a pairs.Key anywhere in
// the state — pair windows, detector entries, ranking topics — sorted and
// deduplicated. Keys are serialized as indexes into this table rather than
// interned IDs, which is what makes snapshot bytes independent of intern
// order (and therefore identical across runs and shard counts).
func tagTableOf(st *core.EngineState) ([]string, map[string]uint32) {
	seen := make(map[string]uint32)
	add := func(k pairs.Key) {
		t1, t2 := k.Tags()
		seen[t1] = 0
		seen[t2] = 0
	}
	for _, p := range st.Pairs.Pairs {
		add(p.Key)
	}
	for _, p := range st.Det.Pairs {
		add(p.Key)
	}
	for _, t := range st.Last.Topics {
		add(t.Pair)
	}
	table := make([]string, 0, len(seen))
	for t := range seen { //enblogue:unordered collects for the explicit sort below
		table = append(table, t)
	}
	sort.Strings(table)
	for i, t := range table {
		seen[t] = uint32(i)
	}
	return table, seen
}

func appendKey(b []byte, k pairs.Key, idx map[string]uint32) []byte {
	t1, t2 := k.Tags()
	b = appendU32(b, idx[t1])
	return appendU32(b, idx[t2])
}

// encodeSnapshot serializes st (an engine's canonical state export) under
// cfg's semantic fingerprint: magic, format version, fingerprint, tag
// table, section per subsystem, trailing CRC64-ECMA over everything before
// it.
func encodeSnapshot(cfg core.Config, st *core.EngineState) []byte {
	b := make([]byte, 0, 4096)
	b = append(b, snapMagic...)
	b = appendU32(b, FormatVersion)
	b = appendFingerprint(b, fingerprintOf(cfg))

	table, idx := tagTableOf(st)
	b = appendU32(b, uint32(len(table)))
	for _, t := range table {
		b = appendStr(b, t)
	}

	// Engine scalars.
	b = appendI64(b, st.Docs)
	b = appendI64(b, st.LastSeenNano)
	b = appendI64(b, st.NextTickNano)
	b = appendBool(b, st.NextTickSet)
	b = appendI64(b, st.LastTickNano)
	b = appendBool(b, st.LastTickSet)

	// Tag statistics.
	b = appendTimeBuckets(b, st.Tags.Docs)
	b = appendI64(b, st.Tags.NowNano)
	b = appendBool(b, st.Tags.NowSet)
	b = appendI64(b, st.Tags.SinceGC)
	b = appendU32(b, uint32(len(st.Tags.Tags)))
	for _, ts := range st.Tags.Tags {
		b = appendStr(b, ts.Tag)
		b = appendSlot(b, ts.Window)
	}

	// Pair windows.
	b = appendI64(b, st.Pairs.NowNano)
	b = appendI64(b, st.Pairs.SinceGC)
	b = appendU32(b, uint32(len(st.Pairs.Pairs)))
	for _, p := range st.Pairs.Pairs {
		b = appendKey(b, p.Key, idx)
		b = appendSlot(b, p.Window)
	}

	// Detector.
	b = appendI64(b, st.Det.CurTickNano)
	b = appendI64(b, st.Det.TickCount)
	b = appendU32(b, uint32(len(st.Det.Pairs)))
	for _, p := range st.Det.Pairs {
		b = appendKey(b, p.Key, idx)
		b = appendF64(b, p.Decay.Value)
		b = appendI64(b, p.Decay.AtNano)
		b = appendBool(b, p.Decay.Set)
		b = appendI64(b, p.SeenNano)
		b = appendPredict(b, p.Pred)
	}

	// Co-tag distributions (DistributionMode only).
	b = appendBool(b, st.Dist != nil)
	if st.Dist != nil {
		b = appendI64(b, st.Dist.NowNano)
		b = appendBool(b, st.Dist.NowSet)
		b = appendI64(b, st.Dist.SinceGC)
		b = appendU32(b, uint32(len(st.Dist.Tags)))
		for _, ts := range st.Dist.Tags {
			b = appendStr(b, ts.Tag)
			b = appendU32(b, uint32(len(ts.Co)))
			for _, cs := range ts.Co {
				b = appendStr(b, cs.Co)
				b = appendTimeBuckets(b, cs.W)
			}
		}
	}

	// Seeds.
	b = appendU32(b, uint32(len(st.Seeds)))
	for _, s := range st.Seeds {
		b = appendStr(b, s)
	}

	// Last published ranking.
	atNano := int64(0)
	if !st.Last.At.IsZero() {
		atNano = st.Last.At.UnixNano()
	}
	b = appendI64(b, atNano)
	b = appendBool(b, !st.Last.At.IsZero())
	b = appendU32(b, uint32(len(st.Last.Seeds)))
	for _, s := range st.Last.Seeds {
		b = appendStr(b, s)
	}
	b = appendU32(b, uint32(len(st.Last.Topics)))
	for _, t := range st.Last.Topics {
		b = appendKey(b, t.Pair, idx)
		b = appendF64(b, t.Score)
		b = appendF64(b, t.Correlation)
		b = appendF64(b, t.Predicted)
		b = appendF64(b, t.Error)
		b = appendF64(b, t.Cooccurrence)
		tAt := int64(0)
		if !t.At.IsZero() {
			tAt = t.At.UnixNano()
		}
		b = appendI64(b, tAt)
		b = appendBool(b, !t.At.IsZero())
		b = appendBool(b, t.Warmup)
	}

	return appendU64(b, crc64.Checksum(b, crcTable))
}

// ---- strict, fuzz-safe decoder ----

// errCorrupt wraps every structural decode failure so callers can
// distinguish corruption (skip to an older snapshot) from environment
// errors.
var errCorrupt = errors.New("persist: corrupt snapshot")

func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", errCorrupt, fmt.Sprintf(format, args...))
}

// reader is a bounds-checked cursor over the snapshot payload. Every length
// and count is validated against the bytes actually remaining before any
// allocation sized by it, so arbitrary input can fail but never panic or
// balloon memory.
type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = corruptf(format, args...)
	}
}

func (r *reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.off+n > len(r.b) {
		r.fail("truncated at offset %d (need %d of %d)", r.off, n, len(r.b)-r.off)
		return nil
	}
	s := r.b[r.off : r.off+n]
	r.off += n
	return s
}

func (r *reader) u8() uint8 {
	s := r.take(1)
	if s == nil {
		return 0
	}
	return s[0]
}

func (r *reader) u32() uint32 {
	s := r.take(4)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(s)
}

func (r *reader) u64() uint64 {
	s := r.take(8)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(s)
}

func (r *reader) i64() int64    { return int64(r.u64()) }
func (r *reader) f64() float64  { return math.Float64frombits(r.u64()) }
func (r *reader) boolean() bool { return r.u8() != 0 }

func (r *reader) str() string {
	n := int(r.u32())
	s := r.take(n)
	if s == nil {
		return ""
	}
	return string(s)
}

// count reads an element count and validates it against the remaining bytes
// given a minimum encoded size per element.
func (r *reader) count(minSize int) int {
	n := int(r.u32())
	if r.err == nil && n*minSize > len(r.b)-r.off {
		r.fail("count %d exceeds remaining input at offset %d", n, r.off)
		return 0
	}
	return n
}

func (r *reader) fingerprint() fingerprint {
	var fp fingerprint
	fp.WindowBuckets = r.i64()
	fp.WindowResolution = r.i64()
	fp.TickEvery = r.i64()
	fp.SeedCount = r.i64()
	fp.SeedCriterion = r.i64()
	fp.SeedMinCount = r.f64()
	fp.SeedWarmupDocs = r.i64()
	fp.MaxPairs = r.i64()
	fp.Measure = r.i64()
	fp.DistributionMode = r.boolean()
	fp.Predictor = r.i64()
	fp.PredWindow = r.i64()
	fp.PredAlpha = r.f64()
	fp.PredBeta = r.f64()
	fp.PredPeriod = r.i64()
	fp.PredSeasons = r.i64()
	fp.HalfLife = r.i64()
	fp.MinCooccurrence = r.f64()
	fp.UpOnly = r.boolean()
	fp.TopK = r.i64()
	fp.UseEntities = r.boolean()
	return fp
}

// timeBuckets decodes a dense window; nbuckets must match the fingerprint's
// window geometry.
func (r *reader) timeBuckets(nbuckets int) window.TimeBucketsState {
	n := r.count(8)
	if r.err == nil && n != nbuckets {
		r.fail("window with %d buckets, config says %d", n, nbuckets)
	}
	if r.err != nil {
		return window.TimeBucketsState{}
	}
	s := window.TimeBucketsState{
		Buckets: make([]float64, n),
		Counts:  make([]int64, n),
	}
	for i := range s.Buckets {
		s.Buckets[i] = r.f64()
	}
	for i := range s.Counts {
		s.Counts[i] = r.i64()
	}
	s.Head = r.i64()
	s.HeadSet = r.boolean()
	s.Total = r.f64()
	s.N = r.i64()
	return s
}

func (r *reader) slot(nbuckets int) window.SlotState {
	n := int(r.u32())
	if r.err == nil && n != nbuckets {
		r.fail("slot with %d buckets, config says %d", n, nbuckets)
	}
	nnz := r.count(12)
	if r.err == nil && nnz > n {
		r.fail("slot with %d non-zero entries in %d buckets", nnz, n)
	}
	if r.err != nil {
		return window.SlotState{}
	}
	s := window.SlotState{Vals: make([]float64, n)}
	prev := -1
	for i := 0; i < nnz; i++ {
		pos := int(r.u32())
		v := r.f64()
		if r.err != nil {
			return window.SlotState{}
		}
		if pos >= n || pos <= prev {
			r.fail("slot entry position %d out of order or range", pos)
			return window.SlotState{}
		}
		prev = pos
		s.Vals[pos] = v
	}
	s.Head = r.i64()
	s.HeadSet = r.boolean()
	s.Total = r.f64()
	return s
}

func (r *reader) predictState() predict.State {
	n := r.count(8)
	var s predict.State
	if r.err != nil {
		return s
	}
	s.Ring = make([]float64, n)
	for i := range s.Ring {
		s.Ring[i] = r.f64()
	}
	s.F1 = r.f64()
	s.F2 = r.f64()
	s.F3 = r.f64()
	s.N = int(r.i64())
	s.Seen = r.boolean()
	return s
}

// decKey is a pair key as two tag-table indexes (in rendered tag order).
type decKey struct{ a, b uint32 }

func (r *reader) key(ntags int) decKey {
	k := decKey{a: r.u32(), b: r.u32()}
	if r.err == nil {
		if int(k.a) >= ntags || int(k.b) >= ntags {
			r.fail("pair key index out of table range")
		} else if k.a == k.b {
			r.fail("pair key with identical tags")
		}
	}
	return k
}

// decodedSnap is a fully validated snapshot, still in table-index form: no
// interning and no engine mutation has happened. materialize resolves it
// into a core.EngineState against a live intern table.
type decodedSnap struct {
	fp    fingerprint
	table []string

	docs         int64
	lastSeenNano int64
	nextTickNano int64
	nextTickSet  bool
	lastTickNano int64
	lastTickSet  bool

	tags tagstats.TrackerState

	pairsNowNano int64
	pairsSinceGC int64
	pairKeys     []decKey
	pairWindows  []window.SlotState

	detCurTickNano int64
	detTickCount   int64
	detKeys        []decKey
	detDecay       []window.DecayState
	detSeen        []int64
	detPred        []predict.State

	dist *pairs.DistState

	seeds []string

	lastAtNano int64
	lastAtSet  bool
	lastSeeds  []string
	topicKeys  []decKey
	topics     []shift.Topic // Pair left zero; filled by materialize

	epoch int64 // alias of docs: the WAL position this snapshot covers
}

// decodeSnapshot parses and validates data. Arbitrary input returns an
// error — never a panic — and a nil error guarantees structural validity:
// checksum verified, all counts bounded, tag table sorted and unique, key
// indexes in range, window geometry matching the embedded fingerprint.
func decodeSnapshot(data []byte) (*decodedSnap, error) {
	if len(data) < len(snapMagic)+4+8 {
		return nil, corruptf("short file (%d bytes)", len(data))
	}
	if string(data[:len(snapMagic)]) != snapMagic {
		return nil, corruptf("bad magic")
	}
	body, sum := data[:len(data)-8], binary.LittleEndian.Uint64(data[len(data)-8:])
	if got := crc64.Checksum(body, crcTable); got != sum {
		return nil, corruptf("checksum mismatch (stored %016x, computed %016x)", sum, got)
	}
	r := &reader{b: body, off: len(snapMagic)}
	if v := r.u32(); v != FormatVersion {
		return nil, corruptf("format version %d, this build reads %d", v, FormatVersion)
	}

	d := &decodedSnap{}
	d.fp = r.fingerprint()
	nb := int(d.fp.WindowBuckets)
	if r.err == nil && (nb <= 0 || nb > 1<<20) {
		r.fail("implausible window bucket count %d", nb)
	}

	ntags := r.count(4)
	d.table = make([]string, 0, min(ntags, 1<<16))
	for i := 0; i < ntags && r.err == nil; i++ {
		t := r.str()
		if r.err != nil {
			break
		}
		if t == "" {
			r.fail("empty tag in table")
			break
		}
		if i > 0 && d.table[i-1] >= t {
			r.fail("tag table not sorted/unique at %d", i)
			break
		}
		d.table = append(d.table, t)
	}

	d.docs = r.i64()
	d.lastSeenNano = r.i64()
	d.nextTickNano = r.i64()
	d.nextTickSet = r.boolean()
	d.lastTickNano = r.i64()
	d.lastTickSet = r.boolean()

	d.tags.Docs = r.timeBuckets(nb)
	d.tags.NowNano = r.i64()
	d.tags.NowSet = r.boolean()
	d.tags.SinceGC = r.i64()
	nt := r.count(4 + 25)
	d.tags.Tags = make([]tagstats.TagState, 0, min(nt, 1<<16))
	for i := 0; i < nt && r.err == nil; i++ {
		var ts tagstats.TagState
		ts.Tag = r.str()
		ts.Window = r.slot(nb)
		if r.err != nil {
			break
		}
		if ts.Tag == "" {
			r.fail("empty tag in tag statistics")
			break
		}
		if i > 0 && d.tags.Tags[i-1].Tag >= ts.Tag {
			r.fail("tag statistics not sorted/unique at %d", i)
			break
		}
		d.tags.Tags = append(d.tags.Tags, ts)
	}

	d.pairsNowNano = r.i64()
	d.pairsSinceGC = r.i64()
	np := r.count(8 + 25)
	for i := 0; i < np && r.err == nil; i++ {
		k := r.key(len(d.table))
		w := r.slot(nb)
		if r.err != nil {
			break
		}
		d.pairKeys = append(d.pairKeys, k)
		d.pairWindows = append(d.pairWindows, w)
	}

	d.detCurTickNano = r.i64()
	d.detTickCount = r.i64()
	nd := r.count(8 + 17 + 8 + 37)
	for i := 0; i < nd && r.err == nil; i++ {
		k := r.key(len(d.table))
		dec := window.DecayState{Value: r.f64(), AtNano: r.i64(), Set: r.boolean()}
		seen := r.i64()
		pred := r.predictState()
		if r.err != nil {
			break
		}
		d.detKeys = append(d.detKeys, k)
		d.detDecay = append(d.detDecay, dec)
		d.detSeen = append(d.detSeen, seen)
		d.detPred = append(d.detPred, pred)
	}

	if r.boolean() {
		dist := &pairs.DistState{}
		dist.NowNano = r.i64()
		dist.NowSet = r.boolean()
		dist.SinceGC = r.i64()
		ndt := r.count(8)
		for i := 0; i < ndt && r.err == nil; i++ {
			var ts pairs.DistTagState
			ts.Tag = r.str()
			if r.err == nil && ts.Tag == "" {
				r.fail("empty tag in distribution state")
				break
			}
			nco := r.count(4)
			for j := 0; j < nco && r.err == nil; j++ {
				var cs pairs.DistCoState
				cs.Co = r.str()
				cs.W = r.timeBuckets(nb)
				if r.err != nil {
					break
				}
				if cs.Co == "" || (j > 0 && ts.Co[j-1].Co >= cs.Co) {
					r.fail("distribution co-tags not sorted/unique under %q", ts.Tag)
					break
				}
				ts.Co = append(ts.Co, cs)
			}
			if r.err != nil {
				break
			}
			if i > 0 && dist.Tags[i-1].Tag >= ts.Tag {
				r.fail("distribution tags not sorted/unique at %d", i)
				break
			}
			dist.Tags = append(dist.Tags, ts)
		}
		d.dist = dist
	}

	ns := r.count(4)
	for i := 0; i < ns && r.err == nil; i++ {
		d.seeds = append(d.seeds, r.str())
	}

	d.lastAtNano = r.i64()
	d.lastAtSet = r.boolean()
	nls := r.count(4)
	for i := 0; i < nls && r.err == nil; i++ {
		d.lastSeeds = append(d.lastSeeds, r.str())
	}
	ntp := r.count(8 + 40 + 10)
	for i := 0; i < ntp && r.err == nil; i++ {
		k := r.key(len(d.table))
		var t shift.Topic
		t.Score = r.f64()
		t.Correlation = r.f64()
		t.Predicted = r.f64()
		t.Error = r.f64()
		t.Cooccurrence = r.f64()
		atNano := r.i64()
		atSet := r.boolean()
		t.Warmup = r.boolean()
		if r.err != nil {
			break
		}
		if atSet {
			t.At = nanoTime(atNano)
		}
		d.topicKeys = append(d.topicKeys, k)
		d.topics = append(d.topics, t)
	}

	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(body) {
		return nil, corruptf("%d trailing bytes after snapshot body", len(body)-r.off)
	}
	d.epoch = d.docs
	return d, nil
}
