package persist

import (
	"fmt"
	"testing"
	"time"

	"enblogue/internal/core"
	"enblogue/internal/stream"
)

// The WAL rides the engine's zero-allocation ingest path: the record
// encoder appends into one reusable buffer and hands it to the file in a
// single Write, so enabling durability must cost at most one allocation
// per document in steady state — the acceptance bound — and in practice
// costs none once the buffer has grown to the record size.

// allocItems is a fixed in-window stream over a small vocabulary, so a
// warmed engine re-consuming it creates no tags, pairs, or ticks.
func allocItems(n int) []*stream.Item {
	base := time.Date(2011, 6, 1, 12, 0, 0, 0, time.UTC)
	items := make([]*stream.Item, n)
	for i := range items {
		items[i] = &stream.Item{
			Time:  base.Add(time.Duration(i) * time.Second),
			DocID: fmt.Sprintf("d%d", i),
			Tags: []string{
				fmt.Sprintf("a%d", i%7),
				fmt.Sprintf("b%d", i%5),
			},
		}
	}
	return items
}

func consumeAllocs(t *testing.T, e *core.Engine, items []*stream.Item) float64 {
	t.Helper()
	for range [3]int{} { // warm: intern vocabulary, grow the WAL buffer
		for _, it := range items {
			e.Consume(it)
		}
	}
	return testing.AllocsPerRun(50, func() {
		for _, it := range items {
			e.Consume(it)
		}
	})
}

func TestWALAppendSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	items := allocItems(100)
	cfg := testConfig(1)
	cfg.TickEvery = 1000 * time.Hour // keep ticks out of the measurement

	plain := core.New(cfg)
	defer plain.Close()
	base := consumeAllocs(t, plain, items)

	durable := core.New(durableConfig(cfg, t.TempDir()))
	defer durable.Close()
	walled := consumeAllocs(t, durable, items)

	// The acceptance bound: ≤ 1 extra allocation per document with the WAL
	// enabled. The implementation target is zero — the whole budget is
	// headroom for map-rehash noise, same as the core pins.
	if extra := walled - base; extra > float64(len(items)) {
		t.Errorf("WAL adds %.1f allocs per %d docs (%.1f vs %.1f), want ≤1/doc",
			extra, len(items), walled, base)
	}
	if walled > base+3 {
		t.Errorf("WAL steady state allocates %.1f per %d docs vs %.1f baseline, want ~0 extra",
			walled, len(items), base)
	}
}
