package persist

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"enblogue/internal/core"
)

// Crash-injection harness: the Store's create and rename seams are swapped
// for fault-point implementations that fail after a byte budget, on fsync,
// on close, or on rename — simulating a crash at every I/O step of the
// snapshot write and the WAL append. After each injected failure the store
// is abandoned (no Close: the crash) and a fresh engine recovers from the
// directory. The invariant under test: recovery always lands on a valid
// pre-crash prefix of the stream — bit-identical to a never-crashed engine
// fed that prefix — or fails with a clean error in strict mode. Never torn
// state, never a wedged engine.

var errInjected = errors.New("injected fault")

// faultFile wraps a real walFile, failing according to its knobs. A shared
// *byteBudget models a device that stops accepting writes mid-stream: the
// prefix that fit is persisted (the torn write), the rest is not.
type faultFile struct {
	f         walFile
	budget    *int64 // remaining writable bytes; nil = unlimited
	failSync  bool
	failClose bool
}

func (ff *faultFile) Write(p []byte) (int, error) {
	if ff.budget == nil {
		return ff.f.Write(p)
	}
	if *ff.budget <= 0 {
		return 0, errInjected
	}
	if int64(len(p)) > *ff.budget {
		n, _ := ff.f.Write(p[:*ff.budget])
		*ff.budget = 0
		return n, errInjected
	}
	*ff.budget -= int64(len(p))
	return ff.f.Write(p)
}

func (ff *faultFile) Sync() error {
	if ff.failSync {
		return errInjected
	}
	return ff.f.Sync()
}

func (ff *faultFile) Close() error {
	err := ff.f.Close()
	if ff.failClose {
		return errInjected
	}
	return err
}

// openCaptured builds a durable engine on dir and returns the Store behind
// it, so tests can reach the injection seams.
func openCaptured(t *testing.T, cfg core.Config) (*core.Engine, *Store) {
	t.Helper()
	var captured *Store
	core.SetDurabilityHook(func(e *core.Engine) (core.WALRecorder, core.Durability, error) {
		s, err := openStore(e)
		if err != nil {
			return nil, nil, err
		}
		captured = s
		return s, s, nil
	})
	defer core.SetDurabilityHook(Attach)
	e := core.New(cfg)
	if captured == nil {
		t.Fatal("durability hook did not run")
	}
	return e, captured
}

// assertRecoversPrefix recovers dir into a fresh engine and asserts the
// result is bit-identical to a never-crashed engine fed the recovered
// prefix. Returns the recovered document count.
func assertRecoversPrefix(t *testing.T, dir string, shards int) int64 {
	t.Helper()
	items := testItems(t)
	b := core.New(durableConfig(testConfig(shards), dir))
	defer b.Close()
	n := b.DocsProcessed()
	if n < 0 || n > int64(len(items)) {
		t.Fatalf("recovered %d docs, outside the stream", n)
	}
	mustEqualState(t, reference(items, int(n), shards), b)
	return n
}

// assertNamedSnapshotsValid decodes every named (non-tmp) snapshot in dir;
// the temp-file + rename protocol must never leave a torn named snapshot.
func assertNamedSnapshotsValid(t *testing.T, dir string) {
	t.Helper()
	for _, epoch := range listEpochs(dir, snapPrefix, snapSuffix) {
		data, err := os.ReadFile(filepath.Join(dir, snapName(epoch)))
		if err != nil {
			t.Fatalf("read snapshot %d: %v", epoch, err)
		}
		if _, err := decodeSnapshot(data); err != nil {
			t.Fatalf("named snapshot %d is torn: %v", epoch, err)
		}
	}
}

// snapshotFault describes one injected failure inside the snapshot write
// path (create, write, sync, close, rename of the temp file).
type snapshotFault struct {
	name string
	arm  func(s *Store, origCreate func(string) (walFile, error))
}

var snapshotFaults = []snapshotFault{
	{"create", func(s *Store, orig func(string) (walFile, error)) {
		s.create = func(path string) (walFile, error) {
			if strings.HasSuffix(path, ".tmp") {
				return nil, errInjected
			}
			return orig(path)
		}
	}},
	{"write", func(s *Store, orig func(string) (walFile, error)) {
		s.create = func(path string) (walFile, error) {
			f, err := orig(path)
			if err != nil || !strings.HasSuffix(path, ".tmp") {
				return f, err
			}
			budget := int64(128) // tear the snapshot 128 bytes in
			return &faultFile{f: f, budget: &budget}, nil
		}
	}},
	{"sync", func(s *Store, orig func(string) (walFile, error)) {
		s.create = func(path string) (walFile, error) {
			f, err := orig(path)
			if err != nil || !strings.HasSuffix(path, ".tmp") {
				return f, err
			}
			return &faultFile{f: f, failSync: true}, nil
		}
	}},
	{"close", func(s *Store, orig func(string) (walFile, error)) {
		s.create = func(path string) (walFile, error) {
			f, err := orig(path)
			if err != nil || !strings.HasSuffix(path, ".tmp") {
				return f, err
			}
			return &faultFile{f: f, failClose: true}, nil
		}
	}},
	{"rename", func(s *Store, _ func(string) (walFile, error)) {
		s.rename = func(oldpath, newpath string) error { return errInjected }
	}},
}

// TestSnapshotCrashPoints injects a failure at every I/O step of the
// snapshot protocol. Each must fail the Snapshot call loudly, leave every
// named snapshot valid, and — because the WAL is untouched — recovery
// after the crash must reproduce the full pre-crash stream.
func TestSnapshotCrashPoints(t *testing.T) {
	items := testItems(t)
	for _, fp := range snapshotFaults {
		t.Run(fp.name, func(t *testing.T) {
			dir := t.TempDir()
			e, s := openCaptured(t, durableConfig(testConfig(2), dir))
			e.ConsumeBatch(items[:400])
			if err := e.Snapshot(); err != nil {
				t.Fatalf("baseline snapshot: %v", err)
			}
			e.ConsumeBatch(items[400:900])

			fp.arm(s, osCreate)
			if err := e.Snapshot(); err == nil {
				t.Fatal("injected snapshot fault did not surface as an error")
			}
			if st, _ := e.DurabilityStats(); st.LastErr == "" {
				t.Error("LastErr empty after injected snapshot failure")
			}
			if st, _ := e.DurabilityStats(); st.SnapshotEpoch != 400 {
				t.Errorf("SnapshotEpoch advanced to %d past a failed snapshot, want 400", st.SnapshotEpoch)
			}
			e.ConsumeBatch(items[900:1000])
			// Crash: abandon e without Close.

			assertNamedSnapshotsValid(t, dir)
			if n := assertRecoversPrefix(t, dir, 2); n != 1000 {
				t.Fatalf("recovered %d docs, want the full 1000 (WAL is intact)", n)
			}
		})
	}
}

// TestSnapshotCrashLeavesStaleTmp models a crash after the temp file was
// written but before cleanup: a stale .tmp (even full of garbage) must be
// invisible to recovery and overwritten by the next snapshot.
func TestSnapshotCrashLeavesStaleTmp(t *testing.T) {
	items := testItems(t)
	dir := t.TempDir()
	a := core.New(durableConfig(testConfig(2), dir))
	a.ConsumeBatch(items[:500])
	a.Close()

	tmp := filepath.Join(dir, snapName(500)+".tmp")
	if err := os.WriteFile(tmp, []byte("torn garbage from a dead process"), 0o644); err != nil {
		t.Fatalf("plant tmp: %v", err)
	}

	b := core.New(durableConfig(testConfig(2), dir))
	defer b.Close()
	if got := b.DocsProcessed(); got != 500 {
		t.Fatalf("recovered %d docs with stale tmp present, want 500", got)
	}
	if err := b.Snapshot(); err != nil {
		t.Fatalf("snapshot over stale tmp: %v", err)
	}
	assertNamedSnapshotsValid(t, dir)
}

// TestWALWriteCrash exhausts the WAL byte budget mid-record: ingest must
// continue un-durably (LastErr set, engine unharmed), and recovery lands
// on the longest intact prefix.
func TestWALWriteCrash(t *testing.T) {
	items := testItems(t)
	dir := t.TempDir()
	e, s := openCaptured(t, durableConfig(testConfig(2), dir))
	e.ConsumeBatch(items[:300])

	// Device stops accepting bytes partway through a record.
	budget := int64(57)
	s.mu.Lock()
	s.walF = &faultFile{f: s.walF, budget: &budget}
	s.mu.Unlock()
	e.ConsumeBatch(items[300:600])

	if got, want := e.DocsProcessed(), int64(600); got != want {
		t.Fatalf("WAL failure throttled ingest: %d docs, want %d", got, want)
	}
	if st, _ := e.DurabilityStats(); !strings.Contains(st.LastErr, "wal append") {
		t.Errorf("LastErr = %q, want a wal append failure", st.LastErr)
	}
	// Crash.

	n := assertRecoversPrefix(t, dir, 2)
	if n < 300 || n >= 600 {
		t.Fatalf("recovered %d docs, want a torn prefix in [300, 600)", n)
	}
}

// TestWALSyncCrash fails every fsync under FsyncAlways: durability degrades
// (LastErr), ingest continues, and — the writes themselves landing — the
// full stream still recovers.
func TestWALSyncCrash(t *testing.T) {
	items := testItems(t)
	dir := t.TempDir()
	cfg := durableConfig(testConfig(2), dir)
	cfg.Durability.Fsync = core.FsyncAlways
	e, s := openCaptured(t, cfg)
	e.ConsumeBatch(items[:100])

	s.mu.Lock()
	s.walF = &faultFile{f: s.walF, failSync: true}
	s.mu.Unlock()
	e.ConsumeBatch(items[100:400])

	if st, _ := e.DurabilityStats(); !strings.Contains(st.LastErr, "wal sync") {
		t.Errorf("LastErr = %q, want a wal sync failure", st.LastErr)
	}
	// Crash.

	if n := assertRecoversPrefix(t, dir, 2); n != 400 {
		t.Fatalf("recovered %d docs, want 400 (writes landed, only fsync failed)", n)
	}
}

// TestWALRotateCrash fails the segment create during snapshot-time
// rotation: the snapshot must error out, documents consumed afterwards are
// knowingly un-logged, and recovery lands exactly at the rotation epoch.
func TestWALRotateCrash(t *testing.T) {
	items := testItems(t)
	dir := t.TempDir()
	e, s := openCaptured(t, durableConfig(testConfig(2), dir))
	e.ConsumeBatch(items[:500])

	s.create = func(path string) (walFile, error) {
		if strings.HasPrefix(filepath.Base(path), walPrefix) {
			return nil, errInjected
		}
		return osCreate(path)
	}
	if err := e.Snapshot(); err == nil {
		t.Fatal("snapshot with failing rotation did not error")
	}
	e.ConsumeBatch(items[500:700]) // un-logged: the live segment is gone
	// Crash.

	if n := assertRecoversPrefix(t, dir, 2); n != 500 {
		t.Fatalf("recovered %d docs, want exactly the 500-doc rotation epoch", n)
	}
}

// TestUnusableDataDirPanics pins the loud-failure contract: a data
// directory that cannot even be created must panic construction rather
// than run silently non-durable.
func TestUnusableDataDirPanics(t *testing.T) {
	dir := t.TempDir()
	blocker := filepath.Join(dir, "not-a-dir")
	if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
		t.Fatalf("plant blocker: %v", err)
	}
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("core.New with an unusable data dir did not panic")
		}
	}()
	core.New(durableConfig(testConfig(1), blocker))
}
