package persist

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"enblogue/internal/core"
	"enblogue/internal/source"
	"enblogue/internal/stream"
)

// The persist test binary wires the durability hook itself — in production
// the root enblogue package does this from init, but persist cannot import
// it (the dependency points the other way).
func init() { core.SetDurabilityHook(Attach) }

// testItems returns a deterministic workload: a few thousand synthetic
// tweets spanning enough event time for several evaluation ticks.
func testItems(t testing.TB) []*stream.Item {
	t.Helper()
	docs := source.GenerateTweets(source.TweetConfig{
		Seed: 7, Span: 6 * time.Hour, TweetsPerMinute: 8,
	})
	items := make([]*stream.Item, len(docs))
	for i := range docs {
		items[i] = docs[i].Item()
	}
	return items
}

// testConfig is a small but tick-active engine configuration.
func testConfig(shards int) core.Config {
	return core.Config{
		WindowBuckets:    6,
		WindowResolution: time.Hour,
		TickEvery:        time.Hour,
		SeedCount:        10,
		SeedWarmupDocs:   20,
		MinCooccurrence:  1,
		TopK:             10,
		Shards:           shards,
	}
}

// durableConfig enables persistence on cfg with the background ticker off
// (tests snapshot explicitly) and fsync off (same-process "crashes" never
// lose page-cache writes).
func durableConfig(cfg core.Config, dir string) core.Config {
	cfg.Durability = core.DurabilityConfig{
		Dir:           dir,
		SnapshotEvery: -1,
		Fsync:         core.FsyncNever,
	}
	return cfg
}

// stateBytes canonically encodes e's full state; two engines in the same
// semantic state produce identical bytes regardless of shard count, intern
// order, or durability settings.
func stateBytes(e *core.Engine) []byte {
	st := e.ExportState()
	return encodeSnapshot(e.Config(), &st)
}

// mustEqualState fails unless both engines hold bit-identical state.
func mustEqualState(t *testing.T, want, got *core.Engine) {
	t.Helper()
	wb, gb := stateBytes(want), stateBytes(got)
	if !bytes.Equal(wb, gb) {
		t.Fatalf("engine states diverge: %d vs %d canonical bytes (docs %d vs %d)",
			len(wb), len(gb), want.DocsProcessed(), got.DocsProcessed())
	}
}

// reference builds a never-persisted engine fed items[:n] — the state every
// recovery in these tests must reproduce exactly.
func reference(items []*stream.Item, n, shards int) *core.Engine {
	e := core.New(testConfig(shards))
	e.ConsumeBatch(items[:n])
	return e
}

// TestRecoverFromWALOnly crashes before any snapshot exists: recovery is a
// pure WAL replay from document one.
func TestRecoverFromWALOnly(t *testing.T) {
	items := testItems(t)
	dir := t.TempDir()

	a := core.New(durableConfig(testConfig(2), dir))
	a.ConsumeBatch(items)
	// Abandon a without Close: the crash. Same-process writes are visible.

	b := core.New(durableConfig(testConfig(2), dir))
	defer b.Close()
	if got, want := b.DocsProcessed(), int64(len(items)); got != want {
		t.Fatalf("recovered %d docs, want %d", got, want)
	}
	mustEqualState(t, reference(items, len(items), 2), b)
	if st, ok := b.DurabilityStats(); !ok || st.LastErr != "" {
		t.Fatalf("recovery not clean: ok=%v lastErr=%q", ok, st.LastErr)
	}
}

// TestRecoverSnapshotPlusTail snapshots mid-stream, keeps consuming, then
// crashes: recovery is snapshot + WAL tail replay, bit-identical to an
// engine that never stopped.
func TestRecoverSnapshotPlusTail(t *testing.T) {
	items := testItems(t)
	snapAt := len(items) / 3
	crashAt := 2 * len(items) / 3
	dir := t.TempDir()

	a := core.New(durableConfig(testConfig(4), dir))
	a.ConsumeBatch(items[:snapAt])
	if err := a.Snapshot(); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	a.ConsumeBatch(items[snapAt:crashAt])
	// Crash.

	b := core.New(durableConfig(testConfig(4), dir))
	defer b.Close()
	if got, want := b.DocsProcessed(), int64(crashAt); got != want {
		t.Fatalf("recovered %d docs, want %d", got, want)
	}
	// The recovered engine keeps ranking identically on the rest of the
	// stream — the durable restart is invisible to the output.
	b.ConsumeBatch(items[crashAt:])
	mustEqualState(t, reference(items, len(items), 4), b)
}

// TestRecoverAcrossShardCounts restores a snapshot written by a 1-shard
// engine into an 8-shard engine: shard count is excluded from the config
// fingerprint and the state is shard-layout independent.
func TestRecoverAcrossShardCounts(t *testing.T) {
	items := testItems(t)
	dir := t.TempDir()

	a := core.New(durableConfig(testConfig(1), dir))
	a.ConsumeBatch(items[:len(items)/2])
	if err := a.Snapshot(); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	a.Close()

	b := core.New(durableConfig(testConfig(8), dir))
	defer b.Close()
	b.ConsumeBatch(items[len(items)/2:])
	mustEqualState(t, reference(items, len(items), 8), b)
}

// TestRecoverStrict pins the strict entry point: Recover into a fresh
// engine reports the exact document position and reproduces the state.
func TestRecoverStrict(t *testing.T) {
	items := testItems(t)
	dir := t.TempDir()

	a := core.New(durableConfig(testConfig(2), dir))
	a.ConsumeBatch(items[:1000])
	if err := a.Snapshot(); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	a.ConsumeBatch(items[1000:1500])
	a.Close()

	b := core.New(testConfig(2))
	defer b.Close()
	pos, err := Recover(dir, b)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if pos != 1500 {
		t.Fatalf("Recover position = %d, want 1500", pos)
	}
	mustEqualState(t, reference(items, 1500, 2), b)
}

// TestTornTailStopsCleanly cuts the final WAL record mid-line — the normal
// crash artifact — and expects recovery (both modes) to stop exactly at
// the last complete record with no error.
func TestTornTailStopsCleanly(t *testing.T) {
	items := testItems(t)
	dir := t.TempDir()

	a := core.New(durableConfig(testConfig(2), dir))
	a.ConsumeBatch(items[:800])
	a.Close()

	seg := filepath.Join(dir, walName(0))
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatalf("read segment: %v", err)
	}
	// Chop the last record roughly in half, leaving no trailing newline.
	lastNL := bytes.LastIndexByte(data[:len(data)-1], '\n')
	cut := lastNL + (len(data)-lastNL)/2
	if err := os.WriteFile(seg, data[:cut], 0o644); err != nil {
		t.Fatalf("truncate segment: %v", err)
	}

	b := core.New(testConfig(2))
	defer b.Close()
	pos, err := Recover(dir, b)
	if err != nil {
		t.Fatalf("Recover with torn tail: %v", err)
	}
	if pos != 799 {
		t.Fatalf("recovered position = %d, want 799 (torn record dropped)", pos)
	}
	mustEqualState(t, reference(items, 799, 2), b)
}

// TestSequenceGapIsStrictError deletes a middle WAL record: strict
// recovery must refuse, the attach path must keep the trustworthy prefix
// and surface a warning.
func TestSequenceGapIsStrictError(t *testing.T) {
	items := testItems(t)
	dir := t.TempDir()

	a := core.New(durableConfig(testConfig(2), dir))
	a.ConsumeBatch(items[:600])
	a.Close()

	seg := filepath.Join(dir, walName(0))
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatalf("read segment: %v", err)
	}
	lines := bytes.SplitAfter(data, []byte{'\n'})
	// Drop record 301 (index 300), keeping everything after it.
	mut := append(append([]byte(nil), bytes.Join(lines[:300], nil)...), bytes.Join(lines[301:], nil)...)
	if err := os.WriteFile(seg, mut, 0o644); err != nil {
		t.Fatalf("rewrite segment: %v", err)
	}

	strict := core.New(testConfig(2))
	defer strict.Close()
	if _, err := Recover(dir, strict); err == nil || !strings.Contains(err.Error(), "sequence gap") {
		t.Fatalf("strict Recover over a gap = %v, want sequence-gap error", err)
	}

	b := core.New(durableConfig(testConfig(2), dir))
	defer b.Close()
	if got := b.DocsProcessed(); got != 300 {
		t.Fatalf("graceful recovery kept %d docs, want the 300-doc prefix", got)
	}
	st, ok := b.DurabilityStats()
	if !ok || !strings.Contains(st.LastErr, "sequence gap") {
		t.Fatalf("graceful recovery did not surface the gap: ok=%v lastErr=%q", ok, st.LastErr)
	}
	mustEqualState(t, reference(items, 300, 2), b)
}

// TestFingerprintMismatch writes a snapshot under one semantic
// configuration and recovers under another: strict mode errors, and the
// error names the configuration, not a decoding failure.
func TestFingerprintMismatch(t *testing.T) {
	items := testItems(t)
	dir := t.TempDir()

	a := core.New(durableConfig(testConfig(2), dir))
	a.ConsumeBatch(items[:500])
	if err := a.Snapshot(); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	a.Close()

	cfg := testConfig(2)
	cfg.WindowBuckets = 12 // semantic change: different window geometry
	b := core.New(cfg)
	defer b.Close()
	if _, err := Recover(dir, b); err == nil || !strings.Contains(err.Error(), "configuration") {
		t.Fatalf("Recover across configs = %v, want configuration error", err)
	}
}

// TestCorruptSnapshotFallsBack flips bytes in the newest snapshot: the
// attach path must fall back to the previous generation plus WAL replay
// and still recover the full stream position.
func TestCorruptSnapshotFallsBack(t *testing.T) {
	items := testItems(t)
	dir := t.TempDir()

	a := core.New(durableConfig(testConfig(2), dir))
	a.ConsumeBatch(items[:400])
	if err := a.Snapshot(); err != nil {
		t.Fatalf("Snapshot 1: %v", err)
	}
	a.ConsumeBatch(items[400:900])
	if err := a.Snapshot(); err != nil {
		t.Fatalf("Snapshot 2: %v", err)
	}
	a.ConsumeBatch(items[900:1100])
	a.Close()

	snap := filepath.Join(dir, snapName(900))
	data, err := os.ReadFile(snap)
	if err != nil {
		t.Fatalf("read snapshot: %v", err)
	}
	for i := len(data) / 2; i < len(data)/2+8 && i < len(data); i++ {
		data[i] ^= 0xff
	}
	if err := os.WriteFile(snap, data, 0o644); err != nil {
		t.Fatalf("corrupt snapshot: %v", err)
	}

	b := core.New(durableConfig(testConfig(2), dir))
	defer b.Close()
	if got, want := b.DocsProcessed(), int64(1100); got != want {
		t.Fatalf("recovered %d docs, want %d (older snapshot + full WAL tail)", got, want)
	}
	st, _ := b.DurabilityStats()
	if !strings.Contains(st.LastErr, "checksum") && !strings.Contains(st.LastErr, "corrupt") {
		t.Fatalf("fallback did not surface the corruption: lastErr=%q", st.LastErr)
	}
	mustEqualState(t, reference(items, 1100, 2), b)
}

// TestPruneRetainsRecoverableSet takes several snapshots with
// KeepSnapshots=1 and checks that pruning never removes files recovery
// still needs.
func TestPruneRetainsRecoverableSet(t *testing.T) {
	items := testItems(t)
	dir := t.TempDir()

	cfg := durableConfig(testConfig(2), dir)
	cfg.Durability.KeepSnapshots = 1
	a := core.New(cfg)
	for _, cutoff := range []int{300, 600, 900} {
		a.ConsumeBatch(items[a.DocsProcessed():int64(cutoff)])
		if err := a.Snapshot(); err != nil {
			t.Fatalf("Snapshot at %d: %v", cutoff, err)
		}
	}
	a.ConsumeBatch(items[900:1000])
	a.Close()

	if snaps := listEpochs(dir, snapPrefix, snapSuffix); len(snaps) != 1 || snaps[0] != 900 {
		t.Fatalf("kept snapshots %v, want [900]", snaps)
	}
	for _, seg := range listEpochs(dir, walPrefix, walSuffix) {
		if seg < 900 {
			t.Fatalf("segment %d survived pruning below the kept snapshot", seg)
		}
	}

	b := core.New(durableConfig(testConfig(2), dir))
	defer b.Close()
	if got := b.DocsProcessed(); got != 1000 {
		t.Fatalf("recovered %d docs after pruning, want 1000", got)
	}
	mustEqualState(t, reference(items, 1000, 2), b)
}

// TestStatsSurface sanity-checks the DurabilityStats wiring end to end.
func TestStatsSurface(t *testing.T) {
	items := testItems(t)
	dir := t.TempDir()

	e := core.New(durableConfig(testConfig(2), dir))
	defer e.Close()
	e.ConsumeBatch(items[:200])
	if err := e.Snapshot(); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	e.ConsumeBatch(items[200:300])
	st, ok := e.DurabilityStats()
	if !ok {
		t.Fatal("DurabilityStats: durability not attached")
	}
	if st.SnapshotEpoch != 200 {
		t.Errorf("SnapshotEpoch = %d, want 200", st.SnapshotEpoch)
	}
	if st.WALSegments == 0 || st.WALBytes == 0 {
		t.Errorf("WAL sizing empty: segments=%d bytes=%d", st.WALSegments, st.WALBytes)
	}
	if st.LastSnapshotAt.IsZero() {
		t.Error("LastSnapshotAt is zero after a successful snapshot")
	}
	if st.LastErr != "" {
		t.Errorf("LastErr = %q, want clean", st.LastErr)
	}

	plain := core.New(testConfig(1))
	defer plain.Close()
	if _, ok := plain.DurabilityStats(); ok {
		t.Error("DurabilityStats reported ok on a non-durable engine")
	}
	if err := plain.Snapshot(); err != core.ErrNoDurability {
		t.Errorf("Snapshot on non-durable engine = %v, want ErrNoDurability", err)
	}
}

// TestWALRecordRoundTrip pins the hand-rolled encoder against the decoder
// across the field shapes the engine emits.
func TestWALRecordRoundTrip(t *testing.T) {
	cases := []*stream.Item{
		{Time: time.Unix(0, 1234567890).UTC()},
		{Time: time.Unix(1700000000, 42).UTC(), DocID: "doc-1", Tags: []string{"a", "b"}},
		{Time: time.Unix(0, 7).UTC(), Tags: []string{"x"}, Entities: []string{"Athens", "SIGMOD"},
			Text: "quote \" backslash \\ newline \n tab \t control \x01 done", Source: "feed"},
		{Time: time.Unix(0, -5).UTC(), DocID: "päivä 🎈", Tags: []string{"ünïcode"}},
	}
	for i, it := range cases {
		line := appendWALRecord(nil, int64(i+1), it)
		seq, got, err := decodeWALLine(line)
		if err != nil {
			t.Fatalf("case %d: decode: %v (line %q)", i, err, line)
		}
		if seq != int64(i+1) {
			t.Fatalf("case %d: seq = %d, want %d", i, seq, i+1)
		}
		if !got.Time.Equal(it.Time) || got.DocID != it.DocID || got.Text != it.Text || got.Source != it.Source {
			t.Fatalf("case %d: round trip mismatch:\n got  %+v\n want %+v", i, got, it)
		}
		if len(got.Tags) != len(it.Tags) || len(got.Entities) != len(it.Entities) {
			t.Fatalf("case %d: slice lengths diverge:\n got  %+v\n want %+v", i, got, it)
		}
		for j := range it.Tags {
			if got.Tags[j] != it.Tags[j] {
				t.Fatalf("case %d: tag %d = %q, want %q", i, j, got.Tags[j], it.Tags[j])
			}
		}
	}
}

// tailConfig is testConfig with the tiered sketch tail enabled and a
// MaxPairs cap small enough that the test workload overflows it, so the
// tail actually absorbs demotions.
func tailConfig(shards int) core.Config {
	cfg := testConfig(shards)
	cfg.MaxPairs = 200
	cfg.TailSketch = core.TailSketchConfig{
		Enabled: true, Epsilon: 0.01, Delta: 0.01, TopK: 128,
	}
	return cfg
}

// TestTailSketchColdStartEmpty pins the tier persistence decision: the
// sketch tail is excluded from snapshots (and from the config fingerprint,
// see encode.go). The exact tier round-trips bit-identically while the
// recovered tail starts empty — estimates are upper bounds over already-
// evicted mass, not durable state.
func TestTailSketchColdStartEmpty(t *testing.T) {
	items := testItems(t)
	dir := t.TempDir()

	a := core.New(durableConfig(tailConfig(2), dir))
	a.ConsumeBatch(items)
	if before := a.TailStats(); !before.Enabled || before.TailPairs == 0 {
		t.Fatalf("workload never populated the tail: %+v", before)
	}
	if err := a.Snapshot(); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	a.Close()

	b := core.New(durableConfig(tailConfig(2), dir))
	defer b.Close()
	// The exact tier restores bit-identically to an engine that never
	// stopped...
	ref := core.New(tailConfig(2))
	ref.ConsumeBatch(items)
	mustEqualState(t, ref, b)
	// ...while the tail cold-starts empty.
	if after := b.TailStats(); after.TailPairs != 0 || after.Promotions != 0 {
		t.Fatalf("recovered tail not empty: %+v", after)
	}
}

// TestTailSketchFingerprintCompatible crosses the tier-enabled/disabled
// boundary in both directions: the tail is not part of the snapshot
// fingerprint, so pre-tier snapshots restore into tier-enabled engines and
// vice versa with no format change.
func TestTailSketchFingerprintCompatible(t *testing.T) {
	items := testItems(t)
	exact := func(shards int) core.Config {
		cfg := tailConfig(shards)
		cfg.TailSketch = core.TailSketchConfig{}
		return cfg
	}

	for _, tc := range []struct {
		name        string
		write, read func(int) core.Config
	}{
		{"exact-into-tiered", exact, tailConfig},
		{"tiered-into-exact", tailConfig, exact},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			a := core.New(durableConfig(tc.write(2), dir))
			a.ConsumeBatch(items[:1000])
			if err := a.Snapshot(); err != nil {
				t.Fatalf("Snapshot: %v", err)
			}
			a.Close()

			b := core.New(durableConfig(tc.read(2), dir))
			defer b.Close()
			if got, want := b.DocsProcessed(), int64(1000); got != want {
				t.Fatalf("recovered %d docs, want %d", got, want)
			}
			if st, ok := b.DurabilityStats(); !ok || st.LastErr != "" {
				t.Fatalf("recovery not clean: ok=%v lastErr=%q", ok, st.LastErr)
			}
		})
	}
}
