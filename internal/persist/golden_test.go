package persist

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"testing"
	"time"

	"enblogue/internal/core"
	"enblogue/internal/stream"
)

// goldenHash is the committed SHA-256 of the canonical snapshot encoding of
// goldenState under FormatVersion 1. It pins the on-disk format: if this
// test fails, snapshots written by older builds can no longer be read back
// byte-compatibly. That is sometimes the right call — but it must be a
// call, not an accident. See the failure message for the procedure.
const goldenHash = "a734b45638210238a72901520fa5021cd44ce0557d93434e170ac3be225e48cc"

// goldenItems is a fixed workload crafted inline (no generator dependency)
// that exercises tags, entities, pairs, and seed warmup while staying
// inside the first tick window: pre-tick state holds only integral counts,
// so the encoding is exact — identical bytes on every architecture.
func goldenItems() []*stream.Item {
	base := time.Date(2011, 6, 1, 12, 0, 0, 0, time.UTC)
	vocab := []string{"athens", "sigmod", "volcano", "ash", "travel", "greece", "keynote", "demo"}
	items := make([]*stream.Item, 0, 64)
	state := uint64(0x9e3779b97f4a7c15)
	next := func(n int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int(state>>33) % n
	}
	for i := 0; i < 64; i++ {
		a, b := next(len(vocab)), next(len(vocab))
		it := &stream.Item{
			Time:  base.Add(time.Duration(i) * 30 * time.Second),
			DocID: fmt.Sprintf("g-%03d", i),
			Tags:  []string{vocab[a], vocab[(a+1+b%3)%len(vocab)]},
		}
		if i%7 == 0 {
			it.Entities = []string{"Athens"}
		}
		items = append(items, it)
	}
	return items
}

func goldenState(shards int) ([]byte, core.Config) {
	cfg := testConfig(shards)
	e := core.New(cfg)
	defer e.Close()
	e.ConsumeBatch(goldenItems())
	st := e.ExportState()
	return encodeSnapshot(cfg, &st), cfg
}

// TestGoldenSnapshotBytes pins three layers of byte stability: the same
// state encodes identically across runs, across shard counts, and to the
// exact bytes every build of FormatVersion 1 has produced.
func TestGoldenSnapshotBytes(t *testing.T) {
	run1, _ := goldenState(1)
	run2, _ := goldenState(1)
	if !bytes.Equal(run1, run2) {
		t.Fatal("two runs over identical state produced different snapshot bytes")
	}
	sharded, _ := goldenState(8)
	if !bytes.Equal(run1, sharded) {
		t.Fatal("snapshot bytes depend on the shard count; the encoding must be layout-independent")
	}

	got := sha256.Sum256(run1)
	if hex.EncodeToString(got[:]) != goldenHash {
		t.Fatalf(`snapshot byte format CHANGED: sha256 = %s, want %s.

If this change is intentional you are breaking read-compatibility with
every snapshot already on disk. The procedure is:
  1. bump FormatVersion in internal/persist/encode.go (decode rejects
     other versions loudly, so old files fail with a clear message
     instead of misparsing),
  2. update goldenHash in this test to the new value above,
  3. note the bump in DESIGN.md §11.
If the change is NOT intentional, you have introduced nondeterminism or
an accidental layout change into encodeSnapshot — fix that instead.`,
			hex.EncodeToString(got[:]), goldenHash)
	}
}

// TestGoldenRoundTrip keeps the golden fixture honest: the pinned bytes
// must decode and restore into an engine that re-exports the same bytes.
func TestGoldenRoundTrip(t *testing.T) {
	data, cfg := goldenState(1)
	d, err := decodeSnapshot(data)
	if err != nil {
		t.Fatalf("decode golden snapshot: %v", err)
	}
	e := core.New(cfg)
	defer e.Close()
	if err := e.RestoreState(d.materialize()); err != nil {
		t.Fatalf("restore golden snapshot: %v", err)
	}
	st := e.ExportState()
	if !bytes.Equal(encodeSnapshot(cfg, &st), data) {
		t.Fatal("golden snapshot did not survive a decode/restore/re-encode round trip")
	}
}
