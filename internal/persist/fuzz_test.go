package persist

import (
	"testing"
	"time"

	"enblogue/internal/core"
	"enblogue/internal/stream"
)

// Decode-side fuzzing: snapshots and WAL lines arrive from disk, possibly
// torn, truncated, or bit-rotted, and the decoders promise an error —
// never a panic, never unbounded allocation from a hostile length field —
// on arbitrary input. Seeds are real encoder output so the fuzzer starts
// inside the format and mutates outward across every validation branch.

func FuzzSnapshotDecode(f *testing.F) {
	data, _ := goldenState(1)
	f.Add(data)
	// A richer state: several ticks, decayed counters, a live ranking.
	cfg := testConfig(2)
	e := core.New(cfg)
	docs := testItems(f)
	e.ConsumeBatch(docs[:1200])
	st := e.ExportState()
	e.Close()
	f.Add(encodeSnapshot(cfg, &st))
	// And structured near-misses: truncations and header damage.
	f.Add(data[:len(data)/2])
	f.Add(data[:9])
	f.Add([]byte("ENBSNAP1"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, b []byte) {
		d, err := decodeSnapshot(b)
		if err != nil {
			return
		}
		// A successfully decoded snapshot must also materialize without
		// panicking: every index was validated during decode.
		_ = d.materialize()
	})
}

func FuzzWALDecode(f *testing.F) {
	samples := []*stream.Item{
		{Time: time.Unix(0, 1234567890).UTC()},
		{Time: time.Unix(1700000000, 0).UTC(), DocID: "doc-1", Tags: []string{"a", "b"},
			Entities: []string{"Athens"}, Text: "quote \" and \\ and \n", Source: "feed"},
	}
	for i, it := range samples {
		f.Add(appendWALRecord(nil, int64(i+1), it))
	}
	f.Add([]byte(`{"seq":0}`))
	f.Add([]byte(`{"seq":1,"t":"not a number"}`))
	f.Add([]byte(`{`))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, line []byte) {
		seq, it, err := decodeWALLine(line)
		if err != nil {
			return
		}
		if seq <= 0 {
			t.Fatalf("decode accepted non-positive seq %d", seq)
		}
		if it == nil {
			t.Fatal("decode returned nil item without error")
		}
		// Accepted records must survive the engine's own round trip: the
		// re-encoded line decodes to the same sequence number.
		re := appendWALRecord(nil, seq, it)
		seq2, _, err := decodeWALLine(re)
		if err != nil || seq2 != seq {
			t.Fatalf("re-encode of accepted record failed: seq %d -> %d, err %v", seq, seq2, err)
		}
	})
}
