package persist

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strconv"
	"time"

	"enblogue/internal/stream"
)

// The write-ahead log is JSONL: one object per consumed document,
//
//	{"seq":N,"t":<unix nanos>,"id":"...","tags":[...],"entities":[...],"text":"...","src":"..."}
//
// with empty fields omitted. seq is the document's 1-based stream position
// (DocsProcessed after counting it); records within a segment are strictly
// seq-ascending and contiguous. The append encoder is hand-rolled so the
// steady-state ingest path allocates nothing per document: it appends into a
// reusable buffer that is handed to the file in a single Write.

// appendWALRecord appends one record line (terminating newline included).
func appendWALRecord(b []byte, seq int64, it *stream.Item) []byte {
	b = append(b, `{"seq":`...)
	b = strconv.AppendInt(b, seq, 10)
	b = append(b, `,"t":`...)
	b = strconv.AppendInt(b, it.Time.UnixNano(), 10)
	if it.DocID != "" {
		b = append(b, `,"id":`...)
		b = appendJSONString(b, it.DocID)
	}
	b = appendStrArray(b, `,"tags":`, it.Tags)
	b = appendStrArray(b, `,"entities":`, it.Entities)
	if it.Text != "" {
		b = append(b, `,"text":`...)
		b = appendJSONString(b, it.Text)
	}
	if it.Source != "" {
		b = append(b, `,"src":`...)
		b = appendJSONString(b, it.Source)
	}
	return append(b, "}\n"...)
}

func appendStrArray(b []byte, prefix string, vals []string) []byte {
	if len(vals) == 0 {
		return b
	}
	b = append(b, prefix...)
	b = append(b, '[')
	for i, v := range vals {
		if i > 0 {
			b = append(b, ',')
		}
		b = appendJSONString(b, v)
	}
	return append(b, ']')
}

const hexDigits = "0123456789abcdef"

// appendJSONString appends s as a JSON string literal. Only the characters
// JSON requires escaped are escaped (backslash, quote, controls); valid
// UTF-8 passes through byte-for-byte, and invalid UTF-8 is passed through
// too — encoding/json on the decode side replaces it, which is acceptable
// for tag text and keeps the encoder allocation-free.
func appendJSONString(b []byte, s string) []byte {
	b = append(b, '"')
	start := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 0x20 && c != '"' && c != '\\' {
			continue
		}
		b = append(b, s[start:i]...)
		switch c {
		case '"', '\\':
			b = append(b, '\\', c)
		case '\n':
			b = append(b, '\\', 'n')
		case '\r':
			b = append(b, '\\', 'r')
		case '\t':
			b = append(b, '\\', 't')
		default:
			b = append(b, '\\', 'u', '0', '0', hexDigits[c>>4], hexDigits[c&0xf])
		}
		start = i + 1
	}
	b = append(b, s[start:]...)
	return append(b, '"')
}

// walRecord is the decode-side shape of one WAL line.
type walRecord struct {
	Seq      int64    `json:"seq"`
	T        int64    `json:"t"`
	ID       string   `json:"id"`
	Tags     []string `json:"tags"`
	Entities []string `json:"entities"`
	Text     string   `json:"text"`
	Src      string   `json:"src"`
}

// decodeWALLine parses one WAL line into (seq, item). Arbitrary bytes
// return an error, never panic. Replay is not a hot path, so the standard
// JSON decoder is fine here.
func decodeWALLine(line []byte) (int64, *stream.Item, error) {
	line = bytes.TrimSpace(line)
	if len(line) == 0 {
		return 0, nil, fmt.Errorf("persist: empty WAL line")
	}
	var rec walRecord
	dec := json.NewDecoder(bytes.NewReader(line))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&rec); err != nil {
		return 0, nil, fmt.Errorf("persist: bad WAL line: %w", err)
	}
	if rec.Seq <= 0 {
		return 0, nil, fmt.Errorf("persist: bad WAL line: seq %d", rec.Seq)
	}
	it := &stream.Item{
		Time:     nanoTime(rec.T),
		DocID:    rec.ID,
		Tags:     rec.Tags,
		Entities: rec.Entities,
		Text:     rec.Text,
		Source:   rec.Src,
	}
	return rec.Seq, it, nil
}

// nanoTime converts unix nanos to a UTC time.Time. The engine compares
// event times by wall clock only, so the location-normalized round trip is
// exact for everything the engine observes.
func nanoTime(n int64) time.Time { return time.Unix(0, n).UTC() }
