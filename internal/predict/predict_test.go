package predict

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func feed(p Predictor, xs ...float64) {
	for _, x := range xs {
		p.Observe(x)
	}
}

func TestNaive(t *testing.T) {
	p := &Naive{}
	if _, ok := p.Predict(); ok {
		t.Error("naive should not predict before any observation")
	}
	feed(p, 1, 2, 3)
	got, ok := p.Predict()
	if !ok || got != 3 {
		t.Errorf("Predict = %v,%v want 3,true", got, ok)
	}
	p.Reset()
	if _, ok := p.Predict(); ok {
		t.Error("naive should not predict after Reset")
	}
}

func TestMovingAverage(t *testing.T) {
	p := NewMovingAverage(3)
	if _, ok := p.Predict(); ok {
		t.Error("MA should not predict when empty")
	}
	feed(p, 3)
	if got, _ := p.Predict(); got != 3 {
		t.Errorf("MA(3) = %v, want 3", got)
	}
	feed(p, 6, 9)
	if got, _ := p.Predict(); got != 6 {
		t.Errorf("MA(3,6,9) = %v, want 6", got)
	}
	feed(p, 12) // 3 falls out → mean(6,9,12)=9
	if got, _ := p.Predict(); got != 9 {
		t.Errorf("MA after slide = %v, want 9", got)
	}
}

func TestEWMAPredictor(t *testing.T) {
	p := NewEWMA(0.5)
	feed(p, 10)
	if got, ok := p.Predict(); !ok || got != 10 {
		t.Errorf("EWMA first = %v,%v", got, ok)
	}
	feed(p, 0)
	if got, _ := p.Predict(); got != 5 {
		t.Errorf("EWMA = %v, want 5", got)
	}
}

func TestHoltTracksLinearTrend(t *testing.T) {
	p := NewHolt(0.5, 0.3)
	if _, ok := p.Predict(); ok {
		t.Error("Holt should not predict with no data")
	}
	// A perfectly linear series should be predicted almost exactly once the
	// trend is learned.
	for i := 0; i < 50; i++ {
		p.Observe(float64(2 * i))
	}
	got, ok := p.Predict()
	if !ok {
		t.Fatal("Holt cannot predict after 50 observations")
	}
	if math.Abs(got-100) > 1 {
		t.Errorf("Holt linear forecast = %v, want ≈100", got)
	}
}

func TestOLSExactOnLine(t *testing.T) {
	p := NewOLS(5)
	for i := 0; i < 5; i++ {
		p.Observe(3 + 2*float64(i))
	}
	got, ok := p.Predict()
	if !ok || math.Abs(got-13) > 1e-9 {
		t.Errorf("OLS forecast = %v,%v want 13", got, ok)
	}
	// Constant series → constant forecast.
	p.Reset()
	feed(p, 7, 7, 7)
	if got, _ := p.Predict(); math.Abs(got-7) > 1e-9 {
		t.Errorf("OLS constant forecast = %v, want 7", got)
	}
	// Single observation falls back to that value.
	p.Reset()
	feed(p, 4)
	if got, _ := p.Predict(); got != 4 {
		t.Errorf("OLS single-point forecast = %v, want 4", got)
	}
}

func TestAR1RecoversAutoregression(t *testing.T) {
	p := NewAR1(32)
	// Generate x_t = 1 + 0.5 x_{t-1} exactly; fixed point is 2.
	x := 0.0
	for i := 0; i < 32; i++ {
		x = 1 + 0.5*x
		p.Observe(x)
	}
	got, ok := p.Predict()
	if !ok {
		t.Fatal("AR1 cannot predict")
	}
	want := 1 + 0.5*x
	if math.Abs(got-want) > 1e-6 {
		t.Errorf("AR1 forecast = %v, want %v", got, want)
	}
}

func TestAR1WarmupAndConstant(t *testing.T) {
	p := NewAR1(8)
	if _, ok := p.Predict(); ok {
		t.Error("AR1 should not predict when empty")
	}
	feed(p, 5)
	if got, _ := p.Predict(); got != 5 {
		t.Errorf("AR1 one-obs forecast = %v, want 5", got)
	}
	p.Reset()
	feed(p, 2, 2, 2, 2)
	if got, _ := p.Predict(); math.Abs(got-2) > 1e-9 {
		t.Errorf("AR1 constant forecast = %v, want 2", got)
	}
}

func TestSeasonalLearnsPeriodicSeries(t *testing.T) {
	// A day/night cycle: 0.2 by "day", 0.05 by "night", period 4 for the
	// test. The seasonal predictor forecasts the dip; a moving average
	// would smear it and flag every trough as a shift.
	cycle := []float64{0.2, 0.2, 0.05, 0.05}
	seasonal := NewSeasonal(4, 3)
	ma := NewMovingAverage(4)
	for i := 0; i < 24; i++ {
		x := cycle[i%4]
		seasonal.Observe(x)
		ma.Observe(x)
	}
	// Next observation is cycle[0] = 0.2.
	sPred, ok := seasonal.Predict()
	if !ok || math.Abs(sPred-0.2) > 1e-9 {
		t.Errorf("seasonal forecast = %v, want 0.2", sPred)
	}
	maPred, _ := ma.Predict()
	if math.Abs(maPred-0.2) < math.Abs(sPred-0.2) {
		t.Errorf("MA (%v) outperformed seasonal (%v) on a periodic series", maPred, sPred)
	}
}

func TestSeasonalWarmupFallsBackToNaive(t *testing.T) {
	s := NewSeasonal(8, 2)
	if _, ok := s.Predict(); ok {
		t.Error("empty seasonal predicted")
	}
	feed(s, 1, 2, 3)
	if got, ok := s.Predict(); !ok || got != 3 {
		t.Errorf("warm-up forecast = %v,%v want naive 3", got, ok)
	}
	s.Reset()
	if _, ok := s.Predict(); ok {
		t.Error("reset seasonal predicted")
	}
}

func TestSeasonalAveragesSeasons(t *testing.T) {
	// Period 2, three seasons stored; same-phase values: 1, 3, 5.
	s := NewSeasonal(2, 3)
	feed(s, 1, 10, 3, 10, 5, 10)
	// Next is phase 0; history at lags 2,4,6 → values 5, 3, 1 → mean 3.
	got, ok := s.Predict()
	if !ok || math.Abs(got-3) > 1e-9 {
		t.Errorf("seasonal mean = %v, want 3", got)
	}
}

func TestConstructorPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"MA zero":         func() { NewMovingAverage(0) },
		"EWMA alpha":      func() { NewEWMA(0) },
		"Holt alpha":      func() { NewHolt(0, 0.1) },
		"Holt beta":       func() { NewHolt(0.1, 2) },
		"OLS window":      func() { NewOLS(1) },
		"AR1 window":      func() { NewAR1(2) },
		"seasonal period": func() { NewSeasonal(1, 2) },
		"seasonal count":  func() { NewSeasonal(4, 0) },
		"unknown kind":    func() { New(Kind(99), Config{}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestKindRoundTrip(t *testing.T) {
	for _, k := range AllKinds() {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseKind(%q) = %v, %v", k.String(), got, err)
		}
		p := New(k, Config{})
		if p == nil {
			t.Errorf("New(%v) = nil", k)
		}
	}
	if _, err := ParseKind("nope"); err == nil {
		t.Error("ParseKind(nope) should fail")
	}
	if Kind(77).String() != "kind(77)" {
		t.Errorf("unknown kind String = %q", Kind(77).String())
	}
}

func TestErrorHelper(t *testing.T) {
	p := &Naive{}
	if _, notReady := Error(p, 5); !notReady {
		t.Error("Error should report notReady before observations")
	}
	p.Observe(3)
	e, notReady := Error(p, 5)
	if notReady || e != 2 {
		t.Errorf("Error = %v,%v want 2,false", e, notReady)
	}
}

// Property: every predictor, fed a constant series, converges to forecast
// that constant (within tolerance), and never predicts NaN/Inf on finite
// bounded input.
func TestPredictorsConstantConvergence(t *testing.T) {
	f := func(c8 uint8) bool {
		c := float64(c8)
		for _, k := range AllKinds() {
			p := New(k, Config{Window: 6, Alpha: 0.5, Beta: 0.5})
			for i := 0; i < 40; i++ {
				p.Observe(c)
			}
			got, ok := p.Predict()
			if !ok {
				return false
			}
			if math.IsNaN(got) || math.Abs(got-c) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: forecasts on bounded random series stay finite and within an
// expanded envelope of the observed range.
func TestPredictorsBounded(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		for _, k := range AllKinds() {
			p := New(k, Config{Window: 8})
			lo, hi := math.Inf(1), math.Inf(-1)
			for i := 0; i < 100; i++ {
				x := rng.Float64()
				if x < lo {
					lo = x
				}
				if x > hi {
					hi = x
				}
				if v, ok := p.Predict(); ok {
					if math.IsNaN(v) || math.IsInf(v, 0) {
						return false
					}
					// OLS/Holt/AR1 may extrapolate beyond the range, but not
					// wildly for values in [0,1].
					if v < lo-5 || v > hi+5 {
						return false
					}
				}
				p.Observe(x)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// A step change must yield a large one-step error for every predictor: the
// signal enBlogue scores on.
func TestStepChangeProducesError(t *testing.T) {
	for _, k := range AllKinds() {
		p := New(k, Config{Window: 8})
		for i := 0; i < 20; i++ {
			p.Observe(0.1)
		}
		e, notReady := Error(p, 0.9)
		if notReady {
			t.Errorf("%v: not ready after 20 observations", k)
			continue
		}
		if e < 0.5 {
			t.Errorf("%v: step error = %v, want >= 0.5", k, e)
		}
	}
}

func BenchmarkPredictors(b *testing.B) {
	for _, k := range AllKinds() {
		b.Run(k.String(), func(b *testing.B) {
			p := New(k, Config{Window: 8})
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				p.Predict()
				p.Observe(float64(i % 13))
			}
		})
	}
}
