package predict_test

import (
	"fmt"

	"enblogue/internal/predict"
)

func ExamplePredictor() {
	// Holt's double exponential smoothing learns a linear trend, so a
	// steadily growing correlation is NOT a shift — only the unexpected is.
	p := predict.New(predict.KindHolt, predict.Config{Alpha: 0.5, Beta: 0.3})
	for i := 0; i < 20; i++ {
		p.Observe(float64(i) * 0.01) // correlation creeping up by 0.01/tick
	}
	forecast, _ := p.Predict()
	fmt.Printf("forecast after trend: %.3f (actual next: 0.200)\n", forecast)

	err, _ := predict.Error(p, 0.90) // a sudden jump instead
	fmt.Printf("error on sudden jump: %.2f\n", err)
	// Output:
	// forecast after trend: 0.200 (actual next: 0.200)
	// error on sudden jump: 0.70
}
