package predict

import "fmt"

// State is the dynamic (per-pair) state of a predictor, kind-agnostic so a
// snapshot encoder handles every predictor with one record shape. Which
// fields are meaningful depends on the concrete kind:
//
//	Naive:          F1=last, Seen
//	MovingAverage:  Ring, F1=sum (the incrementally maintained sum is stored
//	                verbatim — recomputing it would lose rounding history)
//	EWMA:           F1=value, Seen
//	Holt:           F1=level, F2=trend, F3=prev, N
//	OLS, AR1:       Ring
//	Seasonal:       Ring, F1=last, N
//
// Static parameters (window length, alpha, period, ...) are configuration
// and travel separately: Restore targets a predictor freshly constructed
// with the exporter's configuration.
type State struct {
	Ring       []float64 // windowed history, oldest-first
	F1, F2, F3 float64
	N          int
	Seen       bool
}

// exportRing returns r's contents oldest-first.
func exportRing(r *ring) []float64 {
	out := make([]float64, r.len())
	for i := range out {
		out[i] = r.at(i)
	}
	return out
}

// restoreRing replays vals into r oldest-first. More values than r's
// capacity is an error (the exporter had a larger configured window).
func restoreRing(r *ring, vals []float64) error {
	if len(vals) > len(r.buf) {
		return fmt.Errorf("predict: restore %d ring values into capacity %d", len(vals), len(r.buf))
	}
	r.reset()
	for _, v := range vals {
		r.push(v)
	}
	return nil
}

// Export returns p's dynamic state. It panics on predictor types it does not
// know, which indicates a programming error (a new kind added without a
// state mapping).
func Export(p Predictor) State {
	switch v := p.(type) {
	case *Naive:
		return State{F1: v.last, Seen: v.seen}
	case *MovingAverage:
		return State{Ring: exportRing(v.r), F1: v.sum}
	case *EWMA:
		return State{F1: v.value, Seen: v.seen}
	case *Holt:
		return State{F1: v.level, F2: v.trend, F3: v.prev, N: v.n}
	case *OLS:
		return State{Ring: exportRing(v.r)}
	case *AR1:
		return State{Ring: exportRing(v.r)}
	case *Seasonal:
		return State{Ring: exportRing(v.r), F1: v.last, N: v.n}
	default:
		panic(fmt.Sprintf("predict: export of unknown predictor type %T", p))
	}
}

// Restore overwrites p's dynamic state with s. p must be of the same kind
// and configuration as the exporter; out-of-range state is an error.
func Restore(p Predictor, s State) error {
	switch v := p.(type) {
	case *Naive:
		v.last, v.seen = s.F1, s.Seen
	case *MovingAverage:
		if err := restoreRing(v.r, s.Ring); err != nil {
			return err
		}
		v.sum = s.F1
	case *EWMA:
		v.value, v.seen = s.F1, s.Seen
	case *Holt:
		v.level, v.trend, v.prev, v.n = s.F1, s.F2, s.F3, s.N
	case *OLS:
		return restoreRing(v.r, s.Ring)
	case *AR1:
		return restoreRing(v.r, s.Ring)
	case *Seasonal:
		if err := restoreRing(v.r, s.Ring); err != nil {
			return err
		}
		v.last, v.n = s.F1, s.N
	default:
		return fmt.Errorf("predict: restore into unknown predictor type %T", p)
	}
	return nil
}
