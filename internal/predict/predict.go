// Package predict supplies the one-step-ahead time-series predictors used by
// shift detection: "at any point in time we use the previous correlation
// values and try to predict the current ones. If a predicted value is far
// away from the real one then the topic is considered to be emergent."
//
// All predictors consume one observation per evaluation tick and forecast
// the next; they are deliberately small-state so the engine can afford one
// per tracked tag pair.
package predict

import (
	"fmt"
	"math"
)

// Predictor forecasts the next value of a series one step ahead.
type Predictor interface {
	// Predict returns the forecast for the next observation. ok is false
	// until the predictor has enough history to forecast.
	Predict() (value float64, ok bool)
	// Observe feeds the actual next value after Predict was consulted.
	Observe(x float64)
	// Reset discards all history.
	Reset()
}

// Kind names a predictor implementation.
type Kind int

const (
	// KindNaive forecasts the last observed value (random-walk model).
	KindNaive Kind = iota
	// KindMovingAverage forecasts the mean of the last w observations.
	KindMovingAverage
	// KindEWMA forecasts an exponentially weighted moving average.
	KindEWMA
	// KindHolt is double exponential smoothing: level plus trend, catching
	// drifting correlations without flagging them as shifts.
	KindHolt
	// KindOLS fits a least-squares line to the last w observations and
	// extrapolates one step.
	KindOLS
	// KindAR1 fits a first-order autoregressive model over the last w
	// observations.
	KindAR1
	// KindSeasonal forecasts the mean of the observations exactly one,
	// two, ... seasons ago (period p): with hourly ticks and p = 24 it
	// absorbs the day/night rhythm of news and tweet streams, so the
	// nightly correlation dip is not scored as a shift.
	KindSeasonal
)

var kindNames = map[Kind]string{
	KindNaive:         "naive",
	KindMovingAverage: "ma",
	KindEWMA:          "ewma",
	KindHolt:          "holt",
	KindOLS:           "ols",
	KindAR1:           "ar1",
	KindSeasonal:      "seasonal",
}

// AllKinds returns every predictor kind, in declaration order.
func AllKinds() []Kind {
	return []Kind{KindNaive, KindMovingAverage, KindEWMA, KindHolt, KindOLS, KindAR1, KindSeasonal}
}

// String returns the kind name.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// ParseKind resolves a predictor kind by name.
func ParseKind(name string) (Kind, error) {
	for k, s := range kindNames {
		if s == name {
			return k, nil
		}
	}
	return 0, fmt.Errorf("predict: unknown predictor %q", name)
}

// Config parameterises predictor construction.
type Config struct {
	// Window is the history length for MA, OLS and AR1. Zero means 8.
	Window int
	// Alpha is the smoothing factor for EWMA and the level factor for
	// Holt. Zero means 0.3.
	Alpha float64
	// Beta is Holt's trend smoothing factor. Zero means 0.1.
	Beta float64
	// Period is the season length (in observations) for the seasonal
	// predictor. Zero means 24 — one day of hourly ticks.
	Period int
	// Seasons is how many past seasons the seasonal predictor averages.
	// Zero means 3.
	Seasons int
}

func (c Config) withDefaults() Config {
	if c.Window <= 0 {
		c.Window = 8
	}
	if c.Alpha <= 0 || c.Alpha > 1 {
		c.Alpha = 0.3
	}
	if c.Beta <= 0 || c.Beta > 1 {
		c.Beta = 0.1
	}
	if c.Period <= 0 {
		c.Period = 24
	}
	if c.Seasons <= 0 {
		c.Seasons = 3
	}
	return c
}

// New constructs a predictor of the given kind.
func New(k Kind, cfg Config) Predictor {
	cfg = cfg.withDefaults()
	switch k {
	case KindNaive:
		return &Naive{}
	case KindMovingAverage:
		return NewMovingAverage(cfg.Window)
	case KindEWMA:
		return NewEWMA(cfg.Alpha)
	case KindHolt:
		return NewHolt(cfg.Alpha, cfg.Beta)
	case KindOLS:
		return NewOLS(cfg.Window)
	case KindAR1:
		return NewAR1(cfg.Window)
	case KindSeasonal:
		return NewSeasonal(cfg.Period, cfg.Seasons)
	default:
		panic(fmt.Sprintf("predict: unknown kind %d", int(k)))
	}
}

// Naive forecasts the last observed value.
type Naive struct {
	last float64
	seen bool
}

// Predict implements Predictor.
func (n *Naive) Predict() (float64, bool) { return n.last, n.seen }

// Observe implements Predictor.
func (n *Naive) Observe(x float64) { n.last, n.seen = x, true }

// Reset implements Predictor.
func (n *Naive) Reset() { *n = Naive{} }

// ring is a fixed-capacity FIFO of float64 used by windowed predictors.
type ring struct {
	buf  []float64
	head int
	n    int
}

func newRing(capacity int) *ring {
	return &ring{buf: make([]float64, capacity)}
}

func (r *ring) push(x float64) {
	r.buf[(r.head+r.n)%len(r.buf)] = x
	if r.n < len(r.buf) {
		r.n++
	} else {
		r.head = (r.head + 1) % len(r.buf)
	}
}

// at returns the i-th oldest stored value, 0 ≤ i < n.
func (r *ring) at(i int) float64 { return r.buf[(r.head+i)%len(r.buf)] }

func (r *ring) len() int { return r.n }

func (r *ring) reset() { r.head, r.n = 0, 0 }

// MovingAverage forecasts the mean of the last w observations.
type MovingAverage struct {
	r   *ring
	sum float64
}

// NewMovingAverage returns a moving-average predictor over w observations.
// It panics if w < 1.
func NewMovingAverage(w int) *MovingAverage {
	if w < 1 {
		panic("predict: moving average window < 1")
	}
	return &MovingAverage{r: newRing(w)}
}

// Predict implements Predictor.
func (m *MovingAverage) Predict() (float64, bool) {
	if m.r.len() == 0 {
		return 0, false
	}
	return m.sum / float64(m.r.len()), true
}

// Observe implements Predictor.
func (m *MovingAverage) Observe(x float64) {
	if m.r.len() == len(m.r.buf) {
		m.sum -= m.r.at(0)
	}
	m.r.push(x)
	m.sum += x
}

// Reset implements Predictor.
func (m *MovingAverage) Reset() { m.r.reset(); m.sum = 0 }

// EWMA forecasts an exponentially weighted moving average with factor alpha.
type EWMA struct {
	alpha float64
	value float64
	seen  bool
}

// NewEWMA returns an EWMA predictor. It panics if alpha is outside (0, 1].
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 || alpha > 1 {
		panic(fmt.Sprintf("predict: EWMA alpha %v outside (0,1]", alpha))
	}
	return &EWMA{alpha: alpha}
}

// Predict implements Predictor.
func (e *EWMA) Predict() (float64, bool) { return e.value, e.seen }

// Observe implements Predictor.
func (e *EWMA) Observe(x float64) {
	if !e.seen {
		e.value, e.seen = x, true
		return
	}
	e.value = e.alpha*x + (1-e.alpha)*e.value
}

// Reset implements Predictor.
func (e *EWMA) Reset() { e.value, e.seen = 0, false }

// Holt is double exponential smoothing (level + trend). A steadily growing
// correlation is absorbed into the trend term and therefore does not count
// as a sudden shift — exactly the paper's distinction between predictable
// growth and unpredictable jumps.
type Holt struct {
	alpha, beta  float64
	level, trend float64
	n            int
	prev         float64
}

// NewHolt returns a Holt linear predictor. It panics on factors outside
// (0, 1].
func NewHolt(alpha, beta float64) *Holt {
	if alpha <= 0 || alpha > 1 || beta <= 0 || beta > 1 {
		panic(fmt.Sprintf("predict: Holt factors %v/%v outside (0,1]", alpha, beta))
	}
	return &Holt{alpha: alpha, beta: beta}
}

// Predict implements Predictor.
func (h *Holt) Predict() (float64, bool) {
	if h.n < 2 {
		if h.n == 1 {
			return h.prev, true
		}
		return 0, false
	}
	return h.level + h.trend, true
}

// Observe implements Predictor.
func (h *Holt) Observe(x float64) {
	switch h.n {
	case 0:
		h.prev = x
		h.n = 1
		return
	case 1:
		h.level = x
		h.trend = x - h.prev
		h.n = 2
		return
	}
	prevLevel := h.level
	h.level = h.alpha*x + (1-h.alpha)*(h.level+h.trend)
	h.trend = h.beta*(h.level-prevLevel) + (1-h.beta)*h.trend
}

// Reset implements Predictor.
func (h *Holt) Reset() { h.level, h.trend, h.prev, h.n = 0, 0, 0, 0 }

// OLS fits an ordinary-least-squares line to the last w observations
// (x = 0..w-1) and extrapolates one step ahead.
type OLS struct {
	r *ring
}

// NewOLS returns a linear-regression predictor over w observations. It
// panics if w < 2.
func NewOLS(w int) *OLS {
	if w < 2 {
		panic("predict: OLS window < 2")
	}
	return &OLS{r: newRing(w)}
}

// Predict implements Predictor.
func (o *OLS) Predict() (float64, bool) {
	n := o.r.len()
	switch n {
	case 0:
		return 0, false
	case 1:
		return o.r.at(0), true
	}
	// Fit y = a + b·x over x = 0..n-1.
	var sx, sy, sxx, sxy float64
	for i := 0; i < n; i++ {
		x := float64(i)
		y := o.r.at(i)
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	fn := float64(n)
	den := fn*sxx - sx*sx
	if den == 0 {
		return sy / fn, true
	}
	b := (fn*sxy - sx*sy) / den
	a := (sy - b*sx) / fn
	return a + b*fn, true
}

// Observe implements Predictor.
func (o *OLS) Observe(x float64) { o.r.push(x) }

// Reset implements Predictor.
func (o *OLS) Reset() { o.r.reset() }

// AR1 fits x_t = c + φ·x_{t-1} by least squares over the last w
// observations and forecasts one step ahead. φ is clamped to [-1, 1] for
// stability.
type AR1 struct {
	r *ring
}

// NewAR1 returns an AR(1) predictor over w observations. It panics if w < 3.
func NewAR1(w int) *AR1 {
	if w < 3 {
		panic("predict: AR1 window < 3")
	}
	return &AR1{r: newRing(w)}
}

// Predict implements Predictor.
func (a *AR1) Predict() (float64, bool) {
	n := a.r.len()
	switch {
	case n == 0:
		return 0, false
	case n < 3:
		return a.r.at(n - 1), true
	}
	// Regress x_t on x_{t-1} over the stored window.
	var sx, sy, sxx, sxy float64
	m := n - 1
	for i := 0; i < m; i++ {
		x := a.r.at(i)
		y := a.r.at(i + 1)
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	fm := float64(m)
	den := fm*sxx - sx*sx
	last := a.r.at(n - 1)
	if den == 0 {
		return last, true
	}
	phi := (fm*sxy - sx*sy) / den
	if phi > 1 {
		phi = 1
	} else if phi < -1 {
		phi = -1
	}
	c := (sy - phi*sx) / fm
	return c + phi*last, true
}

// Observe implements Predictor.
func (a *AR1) Observe(x float64) { a.r.push(x) }

// Reset implements Predictor.
func (a *AR1) Reset() { a.r.reset() }

// Seasonal forecasts the average of the observations one, two, ... seasons
// back (lag p, 2p, ...). Until a full season of history exists it falls
// back to the last observed value (naive), so warm-up behaviour matches
// the other predictors.
type Seasonal struct {
	period  int
	seasons int
	r       *ring
	last    float64
	n       int
}

// NewSeasonal returns a seasonal predictor with the given period and number
// of seasons to average. It panics if period < 2 or seasons < 1.
func NewSeasonal(period, seasons int) *Seasonal {
	if period < 2 {
		panic("predict: seasonal period < 2")
	}
	if seasons < 1 {
		panic("predict: seasonal seasons < 1")
	}
	return &Seasonal{
		period:  period,
		seasons: seasons,
		r:       newRing(period * seasons),
	}
}

// Predict implements Predictor.
func (s *Seasonal) Predict() (float64, bool) {
	if s.n == 0 {
		return 0, false
	}
	if s.n < s.period {
		return s.last, true // no full season yet: naive fallback
	}
	// The forecast target is the observation s.n; same-phase historical
	// observations sit at lags period, 2·period, ... from it.
	var sum float64
	cnt := 0
	stored := s.r.len()
	for lag := s.period; lag <= stored; lag += s.period {
		sum += s.r.at(stored - lag)
		cnt++
	}
	if cnt == 0 {
		return s.last, true
	}
	return sum / float64(cnt), true
}

// Observe implements Predictor.
func (s *Seasonal) Observe(x float64) {
	s.r.push(x)
	s.last = x
	s.n++
}

// Reset implements Predictor.
func (s *Seasonal) Reset() {
	s.r.reset()
	s.last = 0
	s.n = 0
}

// Error returns the absolute prediction error |actual − predicted|, or 0
// when the predictor has no forecast yet; notReady reports that case so
// callers can skip scoring during warm-up.
func Error(p Predictor, actual float64) (err float64, notReady bool) {
	pred, ok := p.Predict()
	if !ok {
		return 0, true
	}
	return math.Abs(actual - pred), false
}
