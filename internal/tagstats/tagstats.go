// Package tagstats maintains per-tag sliding-window statistics over the
// document stream and implements the paper's first stage, seed tag
// selection: "Seed tags can be determined based on different criteria, such
// as popularity and volatility. We choose seed tags to be popular tags.
// Popularity is easy to measure as it merely requires computing a
// sliding-window average on the document stream."
package tagstats

import (
	"fmt"
	"math"
	"slices"
	"sync"
	"time"

	"enblogue/internal/window"
)

// Criterion selects how seed tags are chosen.
type Criterion int

const (
	// ByPopularity picks the tags with the most documents in the window —
	// the paper's default choice.
	ByPopularity Criterion = iota
	// ByVolatility picks the tags whose windowed count series fluctuates
	// the most (coefficient of variation).
	ByVolatility
	// ByHybrid ranks by popularity × (1 + volatility), favouring tags that
	// are both hot and moving.
	ByHybrid
)

// String returns the criterion name.
func (c Criterion) String() string {
	switch c {
	case ByPopularity:
		return "popularity"
	case ByVolatility:
		return "volatility"
	case ByHybrid:
		return "hybrid"
	default:
		return fmt.Sprintf("criterion(%d)", int(c))
	}
}

// Config parameterises a Tracker.
type Config struct {
	// Buckets and Resolution define the sliding window (span = product).
	Buckets    int
	Resolution time.Duration
	// SweepEvery controls how often (in observed documents) idle tags are
	// evicted. Zero means every 4096 documents.
	SweepEvery int
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.Buckets == 0 {
		out.Buckets = 48
	}
	if out.Resolution == 0 {
		out.Resolution = time.Hour
	}
	if out.SweepEvery == 0 {
		out.SweepEvery = 4096
	}
	return out
}

// TagStat is a snapshot of one tag's windowed statistics.
type TagStat struct {
	Tag        string
	Count      float64 // documents carrying the tag inside the window
	Popularity float64 // fraction of windowed documents carrying the tag
	Volatility float64 // coefficient of variation of the bucket series
}

// Tracker maintains windowed document counts per tag. It is not safe for
// concurrent use; wrap it in a stream.AsyncStage or external lock if
// multiple goroutines feed it.
//
// Per-tag counters live in a shared window.CounterArena rather than one
// heap-allocated counter per tag: the seed-selection scan visits every
// active tag every evaluation tick, and walking slot-ordered slabs (heads,
// totals) is sequential reads where a map of counter pointers is a cache
// miss per tag. slots maps tag → arena slot and revTags is the reverse
// index (empty string = free slot) the scans iterate instead of the map.
type Tracker struct {
	cfg     Config
	slots   map[string]int32
	revTags []string
	// revIDs caches, per slot, the caller-domain tag ID resolved through
	// resolve (NoID until resolved). A resolved ID is cached for the slot's
	// lifetime — resolvers must be stable, i.e. never re-map a tag — so the
	// per-tick selection scan hands IDs to its callback without re-hashing
	// every tag string; unresolved tags are retried each scan, since a tag
	// may enter the resolver's domain after its slot was allocated.
	revIDs  []uint32
	resolve func(tag string) (uint32, bool)
	arena   *window.CounterArena
	docs    *window.Counter
	sinceGC int
	now     time.Time
}

// NoID is the TopAppend callback's "no resolved ID" sentinel: either no
// resolver is installed or the tag is outside the resolver's domain.
const NoID = ^uint32(0)

// SetTagIDResolver installs the tag → ID mapping cached per slot and handed
// to TopAppend callbacks. The mapping must be stable: once a tag resolves to
// an ID, later calls must return the same ID (growing the domain is fine).
func (tr *Tracker) SetTagIDResolver(fn func(tag string) (uint32, bool)) {
	tr.resolve = fn
}

// NewTracker returns a tracker with the given configuration.
func NewTracker(cfg Config) *Tracker {
	c := cfg.withDefaults()
	return &Tracker{
		cfg:   c,
		slots: make(map[string]int32),
		arena: window.NewCounterArena(c.Buckets, c.Resolution),
		docs:  window.NewCounter(c.Buckets, c.Resolution),
	}
}

// Span returns the sliding-window span.
func (tr *Tracker) Span() time.Duration {
	return time.Duration(tr.cfg.Buckets) * tr.cfg.Resolution
}

// smallTagSet bounds the document sizes deduplicated by quadratic scan
// instead of a per-document map — nearly every real document qualifies, so
// the steady-state Observe allocates nothing. pairs.dedupTags applies the
// same idiom with its own constant; the two paths count/pair the same tag
// sets today, so keep their empty-tag and duplicate rules in sync.
const smallTagSet = 16

// Observe records one document with the given tag set at time t. Duplicate
// tags within one document are counted once.
func (tr *Tracker) Observe(t time.Time, tags []string) {
	if t.After(tr.now) {
		tr.now = t
	}
	tr.docs.Inc(t)
	// One timestamp-to-bucket conversion per document, shared by every tag.
	abs := tr.arena.BucketIndex(t)
	if len(tags) <= smallTagSet {
	small:
		for i, tag := range tags {
			if tag == "" {
				continue
			}
			for j := 0; j < i; j++ {
				if tags[j] == tag {
					continue small
				}
			}
			tr.inc(tag, abs)
		}
	} else {
		seen := make(map[string]bool, len(tags))
		for _, tag := range tags {
			if tag == "" || seen[tag] {
				continue
			}
			seen[tag] = true
			tr.inc(tag, abs)
		}
	}
	tr.sinceGC++
	if tr.sinceGC >= tr.cfg.SweepEvery {
		tr.sweep()
	}
}

// inc upserts tag's counter slot and records one document at bucket abs.
func (tr *Tracker) inc(tag string, abs int64) {
	slot, ok := tr.slots[tag]
	if !ok {
		slot = tr.arena.Alloc()
		tr.slots[tag] = slot
		for int(slot) >= len(tr.revTags) {
			tr.revTags = append(tr.revTags, "")
			tr.revIDs = append(tr.revIDs, NoID)
		}
		tr.revTags[slot] = tag
		tr.revIDs[slot] = NoID
	}
	tr.arena.IncAbs(slot, abs)
}

// sweep evicts tags whose windows have emptied, bounding memory to the tags
// active inside the window.
func (tr *Tracker) sweep() {
	tr.sinceGC = 0
	abs := tr.arena.BucketIndex(tr.now)
	for slot, tag := range tr.revTags {
		if tag == "" {
			continue
		}
		if tr.arena.PeekAbs(int32(slot), abs) == 0 {
			delete(tr.slots, tag)
			tr.revTags[slot] = ""
			tr.arena.Release(int32(slot))
		}
	}
}

// Count returns the number of windowed documents carrying tag.
func (tr *Tracker) Count(tag string) float64 {
	slot, ok := tr.slots[tag]
	if !ok {
		return 0
	}
	return tr.arena.PeekAbs(slot, tr.arena.BucketIndex(tr.now))
}

// DocCount returns the number of documents inside the window.
func (tr *Tracker) DocCount() float64 {
	tr.docs.Observe(tr.now)
	return tr.docs.Value()
}

// Counts returns a snapshot of every tracked tag's windowed count, advanced
// to the tracker clock. A lookup of an untracked tag in the returned map
// yields 0, matching Count. The sharded engine takes one snapshot per
// evaluation tick so its parallel shard workers read tag counts without
// touching (and mutating) the tracker concurrently.
func (tr *Tracker) Counts() map[string]float64 {
	out := make(map[string]float64, len(tr.slots))
	abs := tr.arena.BucketIndex(tr.now)
	for slot, tag := range tr.revTags {
		if tag == "" {
			continue
		}
		if v := tr.arena.PeekAbs(int32(slot), abs); v > 0 {
			out[tag] = v
		}
	}
	return out
}

// ForEachCount invokes fn for every tracked tag with a positive windowed
// count, advanced to the tracker clock, in unspecified order. It is the
// allocation-free form of Counts: the sharded engine rebuilds its reusable
// per-tick count index through it instead of materialising a fresh map
// every tick.
func (tr *Tracker) ForEachCount(fn func(tag string, n float64)) {
	abs := tr.arena.BucketIndex(tr.now)
	for slot, tag := range tr.revTags {
		if tag == "" {
			continue
		}
		if v := tr.arena.PeekAbs(int32(slot), abs); v > 0 {
			fn(tag, v)
		}
	}
}

// Popularity returns the sliding-window popularity of tag: the fraction of
// windowed documents that carry it.
func (tr *Tracker) Popularity(tag string) float64 {
	total := tr.DocCount()
	if total == 0 {
		return 0
	}
	return tr.Count(tag) / total
}

// Volatility returns the coefficient of variation (stddev / mean) of the
// tag's per-bucket count series; 0 for unseen or constant tags.
func (tr *Tracker) Volatility(tag string) float64 {
	slot, ok := tr.slots[tag]
	if !ok {
		return 0
	}
	tr.arena.Observe(slot, tr.now)
	return coefficientOfVariation(tr.arena.Series(slot))
}

func coefficientOfVariation(series []float64) float64 {
	if len(series) == 0 {
		return 0
	}
	var sum float64
	for _, v := range series {
		sum += v
	}
	mean := sum / float64(len(series))
	if mean == 0 {
		return 0
	}
	var ss float64
	for _, v := range series {
		d := v - mean
		ss += d * d
	}
	return math.Sqrt(ss/float64(len(series))) / mean
}

// ActiveTags returns the number of tags currently tracked.
func (tr *Tracker) ActiveTags() int { return len(tr.slots) }

// Stats returns the snapshot for a single tag.
func (tr *Tracker) Stats(tag string) TagStat {
	return TagStat{
		Tag:        tag,
		Count:      tr.Count(tag),
		Popularity: tr.Popularity(tag),
		Volatility: tr.Volatility(tag),
	}
}

// Top returns the k highest-scoring tags under the criterion, ties broken
// alphabetically for determinism. Tags with fewer than minCount windowed
// documents are excluded.
func (tr *Tracker) Top(k int, crit Criterion, minCount float64) []TagStat {
	return tr.TopAppend(k, crit, minCount, nil, nil)
}

// statScore evaluates the selection criterion on one stat. Pointer receiver
// argument: the comparators run O(tags·log k) times per tick and a TagStat
// is ~6 words, so by-value passing would copy structs on every comparison.
func statScore(crit Criterion, s *TagStat) float64 {
	switch crit {
	case ByVolatility:
		return s.Volatility
	case ByHybrid:
		return s.Popularity * (1 + s.Volatility)
	default:
		return s.Popularity
	}
}

// statWorse reports whether a ranks strictly below b in seed order: lower
// score, ties by tag descending — the mirror of Top's sort comparator, so a
// bounded min-heap under statWorse keeps exactly the prefix a full
// sort-and-trim would keep (the order is strict: tags are unique).
func statWorse(crit Criterion, a, b *TagStat) bool {
	sa, sb := statScore(crit, a), statScore(crit, b)
	if sa != sb {
		return sa < sb
	}
	return b.Tag < a.Tag
}

// idFor returns slot's cached resolved ID, consulting the resolver (and
// caching a success) when the slot is still unresolved.
func (tr *Tracker) idFor(slot int32, tag string) uint32 {
	id := tr.revIDs[slot]
	if id == NoID && tr.resolve != nil {
		if r, ok := tr.resolve(tag); ok {
			id = r
			tr.revIDs[slot] = id
		}
	}
	return id
}

// TopAppend is Top fused with a count scan, allocation-free in steady
// state: it appends the selection to buf (pass buf[:0] to reuse the backing
// array across ticks) and, when each is non-nil, streams every tracked
// tag's positive windowed count through it along the way, with the tag's
// resolved ID (NoID when unresolved; see SetTagIDResolver). The engine's
// evaluation tick uses this to rebuild its tag-count index and reselect
// seeds in a single pass over the tag map instead of two, with a bounded
// min-heap (O(tags·log k)) replacing the full sort (O(tags·log tags)) and
// the per-tag ID cache replacing an interning-table probe per tag. The
// selected stats — values and order — are identical to Top's.
func (tr *Tracker) TopAppend(k int, crit Criterion, minCount float64, buf []TagStat, each func(tag string, id uint32, n float64)) []TagStat {
	if k <= 0 {
		if each != nil {
			abs := tr.arena.BucketIndex(tr.now)
			for slot, tag := range tr.revTags {
				if tag == "" {
					continue
				}
				if n := tr.arena.PeekAbs(int32(slot), abs); n > 0 {
					each(tag, tr.idFor(int32(slot), tag), n)
				}
			}
		}
		return buf
	}
	total := tr.DocCount()
	h := buf // bounded min-heap region: buf[len(buf):len(buf)+≤k]
	base := len(buf)
	byPop := crit == ByPopularity
	// One timestamp-to-bucket conversion for the whole scan; the walk
	// itself is slot order over the arena slabs — sequential reads, no
	// per-tag pointer chase.
	abs := tr.arena.BucketIndex(tr.now)
	for slot, tag := range tr.revTags {
		if tag == "" {
			continue
		}
		n := tr.arena.PeekAbs(int32(slot), abs)
		if n == 0 {
			continue
		}
		if each != nil {
			each(tag, tr.idFor(int32(slot), tag), n)
		}
		if n < minCount {
			continue
		}
		// Fast reject for the default criterion: with the heap full, most
		// tags rank below the root, and that one comparison needs neither
		// the TagStat nor the statPush call. The condition is exactly
		// !statWorse(root, s) specialised to ByPopularity.
		if byPop && len(h)-base == k {
			pop := 0.0
			if total > 0 {
				pop = n / total
			}
			root := &h[base]
			if pop < root.Popularity || (pop == root.Popularity && tag >= root.Tag) {
				continue
			}
		}
		s := TagStat{Tag: tag, Count: n}
		if total > 0 {
			s.Popularity = n / total
		}
		if crit == ByVolatility || crit == ByHybrid {
			s.Volatility = coefficientOfVariation(tr.arena.Series(int32(slot)))
		}
		h = statPush(h, base, k, crit, &s)
	}
	sel := h[base:]
	slices.SortFunc(sel, func(a, b TagStat) int { return statCmp(crit, &a, &b) })
	return h
}

// statCmp orders stats by descending score, ties by tag ascending — the
// comparator form of statWorse (a before b exactly when b is worse than a),
// for the generic sort: no interface boxing, no per-compare closure through
// sort.Interface.
func statCmp(crit Criterion, a, b *TagStat) int {
	sa, sb := statScore(crit, a), statScore(crit, b)
	if sa != sb {
		if sa > sb {
			return -1
		}
		return 1
	}
	if a.Tag < b.Tag {
		return -1
	}
	if a.Tag > b.Tag {
		return 1
	}
	return 0
}

// statPush folds s into the bounded min-heap occupying h[base:], capacity
// k, whose root is the worst kept stat under statWorse.
func statPush(h []TagStat, base, k int, crit Criterion, s *TagStat) []TagStat {
	heap := h[base:]
	if len(heap) < k {
		h = append(h, *s)
		heap = h[base:]
		for i := len(heap) - 1; i > 0; {
			p := (i - 1) / 2
			if !statWorse(crit, &heap[i], &heap[p]) {
				break
			}
			heap[i], heap[p] = heap[p], heap[i]
			i = p
		}
		return h
	}
	if !statWorse(crit, &heap[0], s) {
		return h // s is no better than the worst kept stat
	}
	heap[0] = *s
	for i := 0; ; {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < len(heap) && statWorse(crit, &heap[l], &heap[m]) {
			m = l
		}
		if r < len(heap) && statWorse(crit, &heap[r], &heap[m]) {
			m = r
		}
		if m == i {
			break
		}
		heap[i], heap[m] = heap[m], heap[i]
		i = m
	}
	return h
}

// SeedSelector periodically materialises the current seed tag set from a
// Tracker. Reselecting on every document would be wasted work; the paper's
// engine reselects at evaluation ticks.
//
// The selector is safe for concurrent use: Reselect swaps in a freshly
// built seed set under an internal lock, and readers (IsSeed, Seeds, Func)
// see either the old or the new set, never a partial one.
type SeedSelector struct {
	K         int
	Criterion Criterion
	MinCount  float64

	mu      sync.RWMutex
	current map[string]bool
	ordered []string
	// fn is the cached predicate closed over current; rebuilt once per
	// Reselect so the per-document Func call allocates no closure.
	fn func(string) bool
}

// NewSeedSelector returns a selector for the top-k tags under crit with the
// given minimum windowed count.
func NewSeedSelector(k int, crit Criterion, minCount float64) *SeedSelector {
	current := make(map[string]bool)
	return &SeedSelector{
		K:         k,
		Criterion: crit,
		MinCount:  minCount,
		current:   current,
		fn:        func(tag string) bool { return current[tag] },
	}
}

// Reselect recomputes the seed set from tr and returns it (ordered by
// descending score). The returned slice is never mutated afterwards.
func (s *SeedSelector) Reselect(tr *Tracker) []string {
	return s.ReselectFrom(tr.Top(s.K, s.Criterion, s.MinCount))
}

// ReselectFrom installs the seed set from an externally computed top-k stat
// slice — the fused-pass form of Reselect: the engine obtains top via
// Tracker.TopAppend (selecting with this selector's K, Criterion, and
// MinCount) while it streams tag counts for its own index, then installs
// the result here. top is only read.
func (s *SeedSelector) ReselectFrom(top []TagStat) []string {
	current := make(map[string]bool, len(top))
	ordered := make([]string, 0, len(top))
	for _, st := range top {
		current[st.Tag] = true
		ordered = append(ordered, st.Tag)
	}
	s.mu.Lock()
	s.current = current
	s.ordered = ordered
	s.fn = func(tag string) bool { return current[tag] }
	s.mu.Unlock()
	return ordered
}

// IsSeed reports whether tag is in the current seed set.
func (s *SeedSelector) IsSeed(tag string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.current[tag]
}

// Func returns a predicate closed over the current seed set snapshot. Hot
// paths that test many tags per document (pair candidate generation) should
// grab one Func per document instead of paying a lock per IsSeed call. The
// closure is cached per Reselect, so calling Func per document allocates
// nothing.
func (s *SeedSelector) Func() func(string) bool {
	s.mu.RLock()
	fn := s.fn
	s.mu.RUnlock()
	return fn
}

// Seeds returns the current ordered seed set. Callers must not mutate it.
func (s *SeedSelector) Seeds() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.ordered
}
