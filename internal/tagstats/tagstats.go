// Package tagstats maintains per-tag sliding-window statistics over the
// document stream and implements the paper's first stage, seed tag
// selection: "Seed tags can be determined based on different criteria, such
// as popularity and volatility. We choose seed tags to be popular tags.
// Popularity is easy to measure as it merely requires computing a
// sliding-window average on the document stream."
package tagstats

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"enblogue/internal/window"
)

// Criterion selects how seed tags are chosen.
type Criterion int

const (
	// ByPopularity picks the tags with the most documents in the window —
	// the paper's default choice.
	ByPopularity Criterion = iota
	// ByVolatility picks the tags whose windowed count series fluctuates
	// the most (coefficient of variation).
	ByVolatility
	// ByHybrid ranks by popularity × (1 + volatility), favouring tags that
	// are both hot and moving.
	ByHybrid
)

// String returns the criterion name.
func (c Criterion) String() string {
	switch c {
	case ByPopularity:
		return "popularity"
	case ByVolatility:
		return "volatility"
	case ByHybrid:
		return "hybrid"
	default:
		return fmt.Sprintf("criterion(%d)", int(c))
	}
}

// Config parameterises a Tracker.
type Config struct {
	// Buckets and Resolution define the sliding window (span = product).
	Buckets    int
	Resolution time.Duration
	// SweepEvery controls how often (in observed documents) idle tags are
	// evicted. Zero means every 4096 documents.
	SweepEvery int
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.Buckets == 0 {
		out.Buckets = 48
	}
	if out.Resolution == 0 {
		out.Resolution = time.Hour
	}
	if out.SweepEvery == 0 {
		out.SweepEvery = 4096
	}
	return out
}

// TagStat is a snapshot of one tag's windowed statistics.
type TagStat struct {
	Tag        string
	Count      float64 // documents carrying the tag inside the window
	Popularity float64 // fraction of windowed documents carrying the tag
	Volatility float64 // coefficient of variation of the bucket series
}

// Tracker maintains windowed document counts per tag. It is not safe for
// concurrent use; wrap it in a stream.AsyncStage or external lock if
// multiple goroutines feed it.
type Tracker struct {
	cfg     Config
	tags    map[string]*window.Counter
	docs    *window.Counter
	sinceGC int
	now     time.Time
}

// NewTracker returns a tracker with the given configuration.
func NewTracker(cfg Config) *Tracker {
	c := cfg.withDefaults()
	return &Tracker{
		cfg:  c,
		tags: make(map[string]*window.Counter),
		docs: window.NewCounter(c.Buckets, c.Resolution),
	}
}

// Span returns the sliding-window span.
func (tr *Tracker) Span() time.Duration {
	return time.Duration(tr.cfg.Buckets) * tr.cfg.Resolution
}

// smallTagSet bounds the document sizes deduplicated by quadratic scan
// instead of a per-document map — nearly every real document qualifies, so
// the steady-state Observe allocates nothing. pairs.dedupTags applies the
// same idiom with its own constant; the two paths count/pair the same tag
// sets today, so keep their empty-tag and duplicate rules in sync.
const smallTagSet = 16

// Observe records one document with the given tag set at time t. Duplicate
// tags within one document are counted once.
func (tr *Tracker) Observe(t time.Time, tags []string) {
	if t.After(tr.now) {
		tr.now = t
	}
	tr.docs.Inc(t)
	if len(tags) <= smallTagSet {
	small:
		for i, tag := range tags {
			if tag == "" {
				continue
			}
			for j := 0; j < i; j++ {
				if tags[j] == tag {
					continue small
				}
			}
			tr.inc(tag, t)
		}
	} else {
		seen := make(map[string]bool, len(tags))
		for _, tag := range tags {
			if tag == "" || seen[tag] {
				continue
			}
			seen[tag] = true
			tr.inc(tag, t)
		}
	}
	tr.sinceGC++
	if tr.sinceGC >= tr.cfg.SweepEvery {
		tr.sweep()
	}
}

// inc upserts tag's counter and records one document at time t.
func (tr *Tracker) inc(tag string, t time.Time) {
	c, ok := tr.tags[tag]
	if !ok {
		c = window.NewCounter(tr.cfg.Buckets, tr.cfg.Resolution)
		tr.tags[tag] = c
	}
	c.Inc(t)
}

// sweep evicts tags whose windows have emptied, bounding memory to the tags
// active inside the window.
func (tr *Tracker) sweep() {
	tr.sinceGC = 0
	for tag, c := range tr.tags {
		c.Observe(tr.now)
		if c.Value() == 0 {
			delete(tr.tags, tag)
		}
	}
}

// Count returns the number of windowed documents carrying tag.
func (tr *Tracker) Count(tag string) float64 {
	c, ok := tr.tags[tag]
	if !ok {
		return 0
	}
	c.Observe(tr.now)
	return c.Value()
}

// DocCount returns the number of documents inside the window.
func (tr *Tracker) DocCount() float64 {
	tr.docs.Observe(tr.now)
	return tr.docs.Value()
}

// Counts returns a snapshot of every tracked tag's windowed count, advanced
// to the tracker clock. A lookup of an untracked tag in the returned map
// yields 0, matching Count. The sharded engine takes one snapshot per
// evaluation tick so its parallel shard workers read tag counts without
// touching (and mutating) the tracker concurrently.
func (tr *Tracker) Counts() map[string]float64 {
	out := make(map[string]float64, len(tr.tags))
	for tag, c := range tr.tags {
		c.Observe(tr.now)
		if v := c.Value(); v > 0 {
			out[tag] = v
		}
	}
	return out
}

// ForEachCount invokes fn for every tracked tag with a positive windowed
// count, advanced to the tracker clock, in unspecified order. It is the
// allocation-free form of Counts: the sharded engine rebuilds its reusable
// per-tick count index through it instead of materialising a fresh map
// every tick.
func (tr *Tracker) ForEachCount(fn func(tag string, n float64)) {
	for tag, c := range tr.tags {
		c.Observe(tr.now)
		if v := c.Value(); v > 0 {
			fn(tag, v)
		}
	}
}

// Popularity returns the sliding-window popularity of tag: the fraction of
// windowed documents that carry it.
func (tr *Tracker) Popularity(tag string) float64 {
	total := tr.DocCount()
	if total == 0 {
		return 0
	}
	return tr.Count(tag) / total
}

// Volatility returns the coefficient of variation (stddev / mean) of the
// tag's per-bucket count series; 0 for unseen or constant tags.
func (tr *Tracker) Volatility(tag string) float64 {
	c, ok := tr.tags[tag]
	if !ok {
		return 0
	}
	c.Observe(tr.now)
	return coefficientOfVariation(c.Series())
}

func coefficientOfVariation(series []float64) float64 {
	if len(series) == 0 {
		return 0
	}
	var sum float64
	for _, v := range series {
		sum += v
	}
	mean := sum / float64(len(series))
	if mean == 0 {
		return 0
	}
	var ss float64
	for _, v := range series {
		d := v - mean
		ss += d * d
	}
	return math.Sqrt(ss/float64(len(series))) / mean
}

// ActiveTags returns the number of tags currently tracked.
func (tr *Tracker) ActiveTags() int { return len(tr.tags) }

// Stats returns the snapshot for a single tag.
func (tr *Tracker) Stats(tag string) TagStat {
	return TagStat{
		Tag:        tag,
		Count:      tr.Count(tag),
		Popularity: tr.Popularity(tag),
		Volatility: tr.Volatility(tag),
	}
}

// Top returns the k highest-scoring tags under the criterion, ties broken
// alphabetically for determinism. Tags with fewer than minCount windowed
// documents are excluded.
func (tr *Tracker) Top(k int, crit Criterion, minCount float64) []TagStat {
	if k <= 0 {
		return nil
	}
	total := tr.DocCount()
	stats := make([]TagStat, 0, len(tr.tags))
	for tag, c := range tr.tags {
		c.Observe(tr.now)
		n := c.Value()
		if n < minCount || n == 0 {
			continue
		}
		s := TagStat{Tag: tag, Count: n}
		if total > 0 {
			s.Popularity = n / total
		}
		if crit == ByVolatility || crit == ByHybrid {
			s.Volatility = coefficientOfVariation(c.Series())
		}
		stats = append(stats, s)
	}
	score := func(s TagStat) float64 {
		switch crit {
		case ByVolatility:
			return s.Volatility
		case ByHybrid:
			return s.Popularity * (1 + s.Volatility)
		default:
			return s.Popularity
		}
	}
	sort.Slice(stats, func(i, j int) bool {
		si, sj := score(stats[i]), score(stats[j])
		if si != sj {
			return si > sj
		}
		return stats[i].Tag < stats[j].Tag
	})
	if len(stats) > k {
		stats = stats[:k]
	}
	return stats
}

// SeedSelector periodically materialises the current seed tag set from a
// Tracker. Reselecting on every document would be wasted work; the paper's
// engine reselects at evaluation ticks.
//
// The selector is safe for concurrent use: Reselect swaps in a freshly
// built seed set under an internal lock, and readers (IsSeed, Seeds, Func)
// see either the old or the new set, never a partial one.
type SeedSelector struct {
	K         int
	Criterion Criterion
	MinCount  float64

	mu      sync.RWMutex
	current map[string]bool
	ordered []string
	// fn is the cached predicate closed over current; rebuilt once per
	// Reselect so the per-document Func call allocates no closure.
	fn func(string) bool
}

// NewSeedSelector returns a selector for the top-k tags under crit with the
// given minimum windowed count.
func NewSeedSelector(k int, crit Criterion, minCount float64) *SeedSelector {
	current := make(map[string]bool)
	return &SeedSelector{
		K:         k,
		Criterion: crit,
		MinCount:  minCount,
		current:   current,
		fn:        func(tag string) bool { return current[tag] },
	}
}

// Reselect recomputes the seed set from tr and returns it (ordered by
// descending score). The returned slice is never mutated afterwards.
func (s *SeedSelector) Reselect(tr *Tracker) []string {
	top := tr.Top(s.K, s.Criterion, s.MinCount)
	current := make(map[string]bool, len(top))
	ordered := make([]string, 0, len(top))
	for _, st := range top {
		current[st.Tag] = true
		ordered = append(ordered, st.Tag)
	}
	s.mu.Lock()
	s.current = current
	s.ordered = ordered
	s.fn = func(tag string) bool { return current[tag] }
	s.mu.Unlock()
	return ordered
}

// IsSeed reports whether tag is in the current seed set.
func (s *SeedSelector) IsSeed(tag string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.current[tag]
}

// Func returns a predicate closed over the current seed set snapshot. Hot
// paths that test many tags per document (pair candidate generation) should
// grab one Func per document instead of paying a lock per IsSeed call. The
// closure is cached per Reselect, so calling Func per document allocates
// nothing.
func (s *SeedSelector) Func() func(string) bool {
	s.mu.RLock()
	fn := s.fn
	s.mu.RUnlock()
	return fn
}

// Seeds returns the current ordered seed set. Callers must not mutate it.
func (s *SeedSelector) Seeds() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.ordered
}
