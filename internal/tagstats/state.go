package tagstats

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"enblogue/internal/window"
)

// This file is the tag tracker's durability surface. Exports are canonical —
// tags sorted lexicographically, every counter advanced to the tracker
// clock — so two trackers holding the same logical state export identical
// state regardless of slot layout or lazy-expiry position. The revIDs cache
// is rebuildable (TopAppend re-resolves on demand) and deliberately not part
// of the state.

// TagState is one tracked tag's exported window column.
type TagState struct {
	Tag    string
	Window window.SlotState
}

// TrackerState is the full serializable state of a Tracker.
type TrackerState struct {
	Tags    []TagState // sorted by Tag
	Docs    window.TimeBucketsState
	NowNano int64
	NowSet  bool
	SinceGC int64
}

// ExportState returns the tracker's full state with tags sorted and every
// counter advanced to the tracker clock.
func (tr *Tracker) ExportState() TrackerState {
	st := TrackerState{
		NowNano: tr.now.UnixNano(),
		NowSet:  !tr.now.IsZero(),
		SinceGC: int64(tr.sinceGC),
		Tags:    make([]TagState, 0, len(tr.slots)),
	}
	if !st.NowSet {
		st.NowNano = 0
	} else {
		// Advance to the shared clock so exported heads agree across slots —
		// expiry is lazy, so this changes only the representation.
		tr.docs.Observe(tr.now)
	}
	st.Docs = tr.docs.ExportState()
	var abs int64
	if st.NowSet {
		abs = tr.arena.BucketIndex(tr.now)
	}
	for slot, tag := range tr.revTags {
		if tag == "" {
			continue
		}
		if st.NowSet {
			tr.arena.ValueAtAbs(int32(slot), abs)
		}
		st.Tags = append(st.Tags, TagState{Tag: tag, Window: tr.arena.ExportSlot(int32(slot))})
	}
	sort.Slice(st.Tags, func(i, j int) bool { return st.Tags[i].Tag < st.Tags[j].Tag })
	return st
}

// RestoreState loads st into an empty tracker (fresh from NewTracker, same
// configured window as the exporter).
func (tr *Tracker) RestoreState(st TrackerState) error {
	if len(tr.slots) != 0 || tr.sinceGC != 0 || !tr.now.IsZero() {
		return errors.New("tagstats: restore into a non-empty tracker")
	}
	if err := tr.docs.RestoreState(st.Docs); err != nil {
		return err
	}
	for _, ts := range st.Tags {
		if ts.Tag == "" {
			return errors.New("tagstats: restore of an empty tag")
		}
		if _, dup := tr.slots[ts.Tag]; dup {
			return fmt.Errorf("tagstats: duplicate tag %q in restore state", ts.Tag)
		}
		slot := tr.arena.Alloc()
		if err := tr.arena.RestoreSlot(slot, ts.Window); err != nil {
			tr.arena.Release(slot)
			return err
		}
		tr.slots[ts.Tag] = slot
		for int(slot) >= len(tr.revTags) {
			tr.revTags = append(tr.revTags, "")
			tr.revIDs = append(tr.revIDs, NoID)
		}
		tr.revTags[slot] = ts.Tag
		tr.revIDs[slot] = NoID
	}
	if st.NowSet {
		tr.now = time.Unix(0, st.NowNano).UTC()
	}
	tr.sinceGC = int(st.SinceGC)
	return nil
}
