package tagstats

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"
)

var t0 = time.Date(2011, 6, 12, 0, 0, 0, 0, time.UTC)

func newTestTracker() *Tracker {
	return NewTracker(Config{Buckets: 24, Resolution: time.Hour})
}

func TestObserveAndCount(t *testing.T) {
	tr := newTestTracker()
	tr.Observe(t0, []string{"iceland", "volcano"})
	tr.Observe(t0.Add(time.Hour), []string{"iceland"})
	if got := tr.Count("iceland"); got != 2 {
		t.Errorf("Count(iceland) = %v, want 2", got)
	}
	if got := tr.Count("volcano"); got != 1 {
		t.Errorf("Count(volcano) = %v, want 1", got)
	}
	if got := tr.Count("absent"); got != 0 {
		t.Errorf("Count(absent) = %v, want 0", got)
	}
	if got := tr.DocCount(); got != 2 {
		t.Errorf("DocCount = %v, want 2", got)
	}
}

func TestDuplicateTagsCountedOnce(t *testing.T) {
	tr := newTestTracker()
	tr.Observe(t0, []string{"a", "a", "", "a"})
	if got := tr.Count("a"); got != 1 {
		t.Errorf("Count(a) = %v, want 1 (dup tags in one doc)", got)
	}
	if got := tr.Count(""); got != 0 {
		t.Errorf("empty tag counted: %v", got)
	}
}

func TestPopularity(t *testing.T) {
	tr := newTestTracker()
	for i := 0; i < 10; i++ {
		tags := []string{"common"}
		if i < 3 {
			tags = append(tags, "rare")
		}
		tr.Observe(t0.Add(time.Duration(i)*time.Minute), tags)
	}
	if got := tr.Popularity("common"); got != 1.0 {
		t.Errorf("Popularity(common) = %v, want 1", got)
	}
	if got := tr.Popularity("rare"); got != 0.3 {
		t.Errorf("Popularity(rare) = %v, want 0.3", got)
	}
}

func TestWindowExpiry(t *testing.T) {
	tr := newTestTracker() // 24h window
	tr.Observe(t0, []string{"old"})
	tr.Observe(t0.Add(48*time.Hour), []string{"new"})
	if got := tr.Count("old"); got != 0 {
		t.Errorf("Count(old) = %v, want 0 after window slide", got)
	}
	if got := tr.Count("new"); got != 1 {
		t.Errorf("Count(new) = %v, want 1", got)
	}
}

func TestSweepEvictsIdleTags(t *testing.T) {
	tr := NewTracker(Config{Buckets: 2, Resolution: time.Minute, SweepEvery: 10})
	tr.Observe(t0, []string{"gone"})
	// Push time far past the window and trigger the sweep threshold.
	for i := 0; i < 12; i++ {
		tr.Observe(t0.Add(time.Hour+time.Duration(i)*time.Minute), []string{"live"})
	}
	if tr.ActiveTags() != 1 {
		t.Errorf("ActiveTags = %d, want 1 (idle tag evicted)", tr.ActiveTags())
	}
	if tr.Count("live") == 0 {
		t.Error("live tag lost by sweep")
	}
}

func TestVolatility(t *testing.T) {
	tr := NewTracker(Config{Buckets: 4, Resolution: time.Hour})
	// "steady" appears once per bucket; "bursty" all in one bucket.
	for i := 0; i < 4; i++ {
		tr.Observe(t0.Add(time.Duration(i)*time.Hour), []string{"steady"})
	}
	for i := 0; i < 4; i++ {
		tr.Observe(t0.Add(3*time.Hour), []string{"bursty"})
	}
	vs, vb := tr.Volatility("steady"), tr.Volatility("bursty")
	if vs != 0 {
		t.Errorf("Volatility(steady) = %v, want 0", vs)
	}
	if vb <= vs {
		t.Errorf("Volatility(bursty)=%v not greater than steady=%v", vb, vs)
	}
	if got := tr.Volatility("absent"); got != 0 {
		t.Errorf("Volatility(absent) = %v, want 0", got)
	}
}

func TestTopByPopularity(t *testing.T) {
	tr := newTestTracker()
	for i := 0; i < 30; i++ {
		tags := []string{"t1"}
		if i%2 == 0 {
			tags = append(tags, "t2")
		}
		if i%3 == 0 {
			tags = append(tags, "t3")
		}
		tr.Observe(t0.Add(time.Duration(i)*time.Minute), tags)
	}
	top := tr.Top(2, ByPopularity, 0)
	if len(top) != 2 || top[0].Tag != "t1" || top[1].Tag != "t2" {
		t.Errorf("Top = %+v, want [t1 t2]", top)
	}
	if top[0].Popularity != 1 {
		t.Errorf("t1 popularity = %v, want 1", top[0].Popularity)
	}
	// minCount filter removes t3 (10 docs) and t2 (15 docs).
	top = tr.Top(5, ByPopularity, 16)
	if len(top) != 1 || top[0].Tag != "t1" {
		t.Errorf("Top with minCount = %+v, want only t1", top)
	}
	if got := tr.Top(0, ByPopularity, 0); got != nil {
		t.Errorf("Top(0) = %v, want nil", got)
	}
}

func TestTopDeterministicTieBreak(t *testing.T) {
	tr := newTestTracker()
	tr.Observe(t0, []string{"b", "a", "c"})
	top := tr.Top(3, ByPopularity, 0)
	got := []string{top[0].Tag, top[1].Tag, top[2].Tag}
	want := []string{"a", "b", "c"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("tie-broken Top = %v, want %v", got, want)
	}
}

func TestTopByVolatilityAndHybrid(t *testing.T) {
	tr := NewTracker(Config{Buckets: 4, Resolution: time.Hour})
	for i := 0; i < 4; i++ {
		tr.Observe(t0.Add(time.Duration(i)*time.Hour), []string{"steady"})
	}
	for i := 0; i < 3; i++ {
		tr.Observe(t0.Add(3*time.Hour), []string{"bursty"})
	}
	top := tr.Top(1, ByVolatility, 0)
	if len(top) != 1 || top[0].Tag != "bursty" {
		t.Errorf("Top by volatility = %+v, want bursty", top)
	}
	// Hybrid should still rank steady (higher popularity 4/7) vs bursty
	// (3/7 but volatile); just check it runs and returns both.
	top = tr.Top(2, ByHybrid, 0)
	if len(top) != 2 {
		t.Errorf("Top hybrid returned %d entries, want 2", len(top))
	}
}

func TestCriterionString(t *testing.T) {
	if ByPopularity.String() != "popularity" ||
		ByVolatility.String() != "volatility" ||
		ByHybrid.String() != "hybrid" {
		t.Error("Criterion.String mismatch")
	}
	if Criterion(99).String() != "criterion(99)" {
		t.Errorf("unknown criterion string = %q", Criterion(99).String())
	}
}

func TestStatsSnapshot(t *testing.T) {
	tr := newTestTracker()
	tr.Observe(t0, []string{"x"})
	tr.Observe(t0, []string{"y"})
	s := tr.Stats("x")
	if s.Tag != "x" || s.Count != 1 || s.Popularity != 0.5 {
		t.Errorf("Stats = %+v", s)
	}
}

func TestSeedSelector(t *testing.T) {
	tr := newTestTracker()
	for i := 0; i < 20; i++ {
		tags := []string{"hot"}
		if i%4 == 0 {
			tags = append(tags, "warm")
		}
		if i == 0 {
			tags = append(tags, "cold")
		}
		tr.Observe(t0.Add(time.Duration(i)*time.Minute), tags)
	}
	sel := NewSeedSelector(2, ByPopularity, 2)
	seeds := sel.Reselect(tr)
	if !reflect.DeepEqual(seeds, []string{"hot", "warm"}) {
		t.Errorf("seeds = %v, want [hot warm]", seeds)
	}
	if !sel.IsSeed("hot") || sel.IsSeed("cold") {
		t.Error("IsSeed membership wrong")
	}
	if !reflect.DeepEqual(sel.Seeds(), seeds) {
		t.Error("Seeds() disagrees with Reselect result")
	}
	// Reselection replaces the set.
	for i := 0; i < 50; i++ {
		tr.Observe(t0.Add(time.Duration(20+i)*time.Minute), []string{"surge"})
	}
	seeds = sel.Reselect(tr)
	if seeds[0] != "surge" {
		t.Errorf("after surge, seeds = %v", seeds)
	}
}

func TestSpanAndDefaults(t *testing.T) {
	tr := NewTracker(Config{})
	if tr.Span() != 48*time.Hour {
		t.Errorf("default Span = %v, want 48h", tr.Span())
	}
	tr2 := NewTracker(Config{Buckets: 10, Resolution: time.Minute})
	if tr2.Span() != 10*time.Minute {
		t.Errorf("Span = %v, want 10m", tr2.Span())
	}
}

// Property: tag counts never exceed the document count, and popularity stays
// in [0, 1], for arbitrary monotone observation sequences.
func TestInvariants(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := NewTracker(Config{Buckets: 8, Resolution: time.Minute, SweepEvery: 16})
		cur := t0
		for i := 0; i < int(n); i++ {
			cur = cur.Add(time.Duration(rng.Intn(90)) * time.Second)
			var tags []string
			for j := 0; j < rng.Intn(4); j++ {
				tags = append(tags, fmt.Sprintf("t%d", rng.Intn(6)))
			}
			tr.Observe(cur, tags)
		}
		total := tr.DocCount()
		for j := 0; j < 6; j++ {
			tag := fmt.Sprintf("t%d", j)
			c := tr.Count(tag)
			if c > total {
				return false
			}
			p := tr.Popularity(tag)
			if p < 0 || p > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkObserve(b *testing.B) {
	tr := NewTracker(Config{Buckets: 48, Resolution: time.Hour})
	tags := make([][]string, 256)
	rng := rand.New(rand.NewSource(3))
	for i := range tags {
		for j := 0; j < 3; j++ {
			tags[i] = append(tags[i], fmt.Sprintf("tag%d", rng.Intn(1000)))
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Observe(t0.Add(time.Duration(i)*time.Second), tags[i%len(tags)])
	}
}

func BenchmarkTop(b *testing.B) {
	tr := NewTracker(Config{Buckets: 48, Resolution: time.Hour})
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 10000; i++ {
		tr.Observe(t0.Add(time.Duration(i)*time.Second),
			[]string{fmt.Sprintf("tag%d", rng.Intn(2000))})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Top(50, ByPopularity, 2)
	}
}
