// Package history records the engine's per-tick rankings and answers
// time-range queries over them — the interactive part of show case 1:
// "users can specify their own time ranges and see how the ranking changes
// with different time periods."
//
// A History is an append-only, time-ordered log of rankings. Range queries
// aggregate a topic's score over the requested period (maximum by default,
// mirroring the engine's max-of-decayed-errors semantics), so the answer to
// "what was emergent during the first week of September" is the topics that
// peaked then, not merely the ones alive at the range's end.
package history

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"enblogue/internal/core"
	"enblogue/internal/pairs"
)

// Aggregate selects how a topic's scores are combined across the ticks of
// a queried range.
type Aggregate int

const (
	// MaxScore ranks topics by their peak score inside the range.
	MaxScore Aggregate = iota
	// MeanScore ranks topics by their average score over the ticks where
	// they appeared.
	MeanScore
	// LastScore ranks topics by their score at the last tick of the range.
	LastScore
)

// String returns the aggregate name.
func (a Aggregate) String() string {
	switch a {
	case MaxScore:
		return "max"
	case MeanScore:
		return "mean"
	case LastScore:
		return "last"
	default:
		return fmt.Sprintf("aggregate(%d)", int(a))
	}
}

// ParseAggregate resolves an aggregate by name.
func ParseAggregate(name string) (Aggregate, error) {
	switch name {
	case "max", "":
		return MaxScore, nil
	case "mean":
		return MeanScore, nil
	case "last":
		return LastScore, nil
	default:
		return 0, fmt.Errorf("history: unknown aggregate %q", name)
	}
}

// Entry is one topic's aggregate over a queried range.
type Entry struct {
	Pair  pairs.Key
	Score float64
	// Ticks is the number of range ticks the topic appeared in.
	Ticks int
	// First and Last bound the topic's appearances inside the range.
	First, Last time.Time
}

// History is a bounded, time-ordered ranking log. It is safe for concurrent
// use: the engine's consuming goroutine records while front-end handlers
// query.
type History struct {
	mu       sync.RWMutex
	rankings []core.Ranking
	maxTicks int
}

// New returns a history retaining up to maxTicks rankings (oldest evicted
// first). maxTicks <= 0 means 10000.
func New(maxTicks int) *History {
	if maxTicks <= 0 {
		maxTicks = 10000
	}
	return &History{maxTicks: maxTicks}
}

// Record appends one ranking. Out-of-order rankings (At before the last
// recorded tick) are rejected so binary search stays valid.
func (h *History) Record(r core.Ranking) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if n := len(h.rankings); n > 0 && r.At.Before(h.rankings[n-1].At) {
		return fmt.Errorf("history: out-of-order tick %v before %v",
			r.At, h.rankings[n-1].At)
	}
	h.rankings = append(h.rankings, r)
	if len(h.rankings) > h.maxTicks {
		// Drop the oldest ticks; copy to release the old backing array.
		keep := make([]core.Ranking, h.maxTicks)
		copy(keep, h.rankings[len(h.rankings)-h.maxTicks:])
		h.rankings = keep
	}
	return nil
}

// Len returns the number of retained ticks.
func (h *History) Len() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return len(h.rankings)
}

// Span returns the covered time range, zero times when empty.
func (h *History) Span() (from, to time.Time) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	if len(h.rankings) == 0 {
		return
	}
	return h.rankings[0].At, h.rankings[len(h.rankings)-1].At
}

// slice returns the retained rankings with At in [from, to]. Zero bounds
// are open on that side.
func (h *History) slice(from, to time.Time) []core.Ranking {
	lo := 0
	if !from.IsZero() {
		lo = sort.Search(len(h.rankings), func(i int) bool {
			return !h.rankings[i].At.Before(from)
		})
	}
	hi := len(h.rankings)
	if !to.IsZero() {
		hi = sort.Search(len(h.rankings), func(i int) bool {
			return h.rankings[i].At.After(to)
		})
	}
	if lo > hi {
		return nil
	}
	return h.rankings[lo:hi]
}

// TopInRange returns the k topics with the highest aggregate score over the
// ticks in [from, to] (zero times are open bounds), best first, ties broken
// by pair string.
func (h *History) TopInRange(from, to time.Time, k int, agg Aggregate) []Entry {
	if k <= 0 {
		return nil
	}
	h.mu.RLock()
	defer h.mu.RUnlock()
	ticks := h.slice(from, to)
	if len(ticks) == 0 {
		return nil
	}
	acc := make(map[pairs.Key]*Entry)
	for _, r := range ticks {
		for _, t := range r.Topics {
			e, ok := acc[t.Pair]
			if !ok {
				e = &Entry{Pair: t.Pair, First: r.At}
				acc[t.Pair] = e
			}
			e.Ticks++
			e.Last = r.At
			switch agg {
			case MeanScore:
				e.Score += t.Score // normalised below
			case LastScore:
				e.Score = t.Score
			default: // MaxScore
				if t.Score > e.Score {
					e.Score = t.Score
				}
			}
		}
	}
	out := make([]Entry, 0, len(acc))
	for _, e := range acc {
		if agg == MeanScore && e.Ticks > 0 {
			e.Score /= float64(e.Ticks)
		}
		out = append(out, *e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Pair.String() < out[j].Pair.String()
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// Trajectory returns the (tick, rank, score) samples of one pair across the
// ticks in [from, to]; rank is -1 at ticks where the pair was absent.
func (h *History) Trajectory(p pairs.Key, from, to time.Time) []TrajPoint {
	h.mu.RLock()
	defer h.mu.RUnlock()
	ticks := h.slice(from, to)
	out := make([]TrajPoint, 0, len(ticks))
	for _, r := range ticks {
		pt := TrajPoint{At: r.At, Rank: -1}
		for i, t := range r.Topics {
			if t.Pair == p {
				pt.Rank = i
				pt.Score = t.Score
				break
			}
		}
		out = append(out, pt)
	}
	return out
}

// TrajPoint is one tick's view of a single topic.
type TrajPoint struct {
	At    time.Time
	Rank  int
	Score float64
}

// At returns the recorded ranking whose tick is the latest not after t, and
// false when none qualifies — "how did the ranking look last Tuesday".
func (h *History) At(t time.Time) (core.Ranking, bool) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	i := sort.Search(len(h.rankings), func(i int) bool {
		return h.rankings[i].At.After(t)
	})
	if i == 0 {
		return core.Ranking{}, false
	}
	return h.rankings[i-1], true
}
